module astra

go 1.22
