package astra

import (
	"testing"
)

func TestRunWithStepFunctions(t *testing.T) {
	job := NewJob(WordCount, 10, 64<<20)
	cfg := Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	coord, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Run(job, cfg, WithStepFunctions())
	if err != nil {
		t.Fatal(err)
	}
	if sf.Cost.Workflow <= 0 {
		t.Fatal("step functions mode must bill transitions")
	}
	if coord.Cost.Workflow != 0 {
		t.Fatal("coordinator mode must not bill transitions")
	}
	// The footnote's claim: the coordinator lambda is cheaper overall.
	if coord.Cost.Total() >= sf.Cost.Total() {
		t.Fatalf("coordinator total %v should undercut step functions %v",
			coord.Cost.Total(), sf.Cost.Total())
	}
}

func TestRunWithCacheIntermediates(t *testing.T) {
	job := NewJob(Sort, 10, 2<<30) // data-heavy: the cache tier pays off
	cfg := Config{
		MapperMemMB: 1792, CoordMemMB: 256, ReducerMemMB: 1792,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	s3, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Run(job, cfg, WithCacheIntermediates())
	if err != nil {
		t.Fatal(err)
	}
	if cache.JCT >= s3.JCT {
		t.Fatalf("cache intermediates (%v) should beat the object store (%v)",
			cache.JCT, s3.JCT)
	}
}

func TestRunConcreteWithOptions(t *testing.T) {
	job := NewJob(WordCount, 6, 12<<10)
	cfg := Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 3,
	}
	rep, outputs, err := RunConcrete(job, cfg, 1, WithStepFunctions(), WithCacheIntermediates())
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 1 || rep.Cost.Workflow <= 0 {
		t.Fatalf("outputs=%d workflow=%v", len(outputs), rep.Cost.Workflow)
	}
}
