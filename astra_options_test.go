package astra

import (
	"testing"
)

// TestRunWithTelemetryStats drives a job with a registry attached and
// checks the three readouts agree: the report's RunStats, the raw
// registry counters, and the virtual run spans — and that attaching
// telemetry leaves the simulated result untouched.
func TestRunWithTelemetryStats(t *testing.T) {
	job := NewJob(WordCount, 10, 64<<20)
	cfg := Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	bare, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewTelemetry()
	rep, err := Run(job, cfg, WithRunTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.JCT != bare.JCT || rep.Cost.Total() != bare.Cost.Total() {
		t.Fatalf("telemetry perturbed the run: JCT %v vs %v, cost %v vs %v",
			rep.JCT, bare.JCT, rep.Cost.Total(), bare.Cost.Total())
	}

	st := rep.Telemetry()
	if st.Invocations != len(rep.Records) {
		t.Fatalf("stats invocations = %d, records = %d", st.Invocations, len(rep.Records))
	}
	if st.ColdStarts == 0 || st.StorePuts == 0 || st.StoreGets == 0 || st.StoreBytesOut == 0 {
		t.Fatalf("platform stats empty: %+v", st)
	}
	if st.PeakConcurrency != rep.PeakConcurrency {
		t.Fatalf("stats peak %d, report peak %d", st.PeakConcurrency, rep.PeakConcurrency)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("astra_lambda_invocations_total"); got != int64(st.Invocations) {
		t.Fatalf("registry invocations = %d, stats = %d", got, st.Invocations)
	}
	if got := snap.Counter("astra_store_put_total"); got != st.StorePuts {
		t.Fatalf("registry puts = %d, stats = %d", got, st.StorePuts)
	}
	runSpans := snap.SpansUnder("run")
	if len(runSpans) == 0 {
		t.Fatal("no run spans recorded")
	}
	for _, sp := range runSpans {
		if !sp.HasVirtual {
			t.Fatalf("run span %q lacks virtual time", sp.Path)
		}
	}
	// The root span must cover the whole job on the virtual clock.
	found := false
	for _, sp := range runSpans {
		if sp.Path == "run" {
			found = true
			if sp.Virt != rep.JCT {
				t.Fatalf("run span virtual duration %v, JCT %v", sp.Virt, rep.JCT)
			}
		}
	}
	if !found {
		t.Fatal("missing root 'run' span")
	}
}

func TestRunWithStepFunctions(t *testing.T) {
	job := NewJob(WordCount, 10, 64<<20)
	cfg := Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	coord, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Run(job, cfg, WithStepFunctions())
	if err != nil {
		t.Fatal(err)
	}
	if sf.Cost.Workflow <= 0 {
		t.Fatal("step functions mode must bill transitions")
	}
	if coord.Cost.Workflow != 0 {
		t.Fatal("coordinator mode must not bill transitions")
	}
	// The footnote's claim: the coordinator lambda is cheaper overall.
	if coord.Cost.Total() >= sf.Cost.Total() {
		t.Fatalf("coordinator total %v should undercut step functions %v",
			coord.Cost.Total(), sf.Cost.Total())
	}
}

func TestRunWithCacheIntermediates(t *testing.T) {
	job := NewJob(Sort, 10, 2<<30) // data-heavy: the cache tier pays off
	cfg := Config{
		MapperMemMB: 1792, CoordMemMB: 256, ReducerMemMB: 1792,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	s3, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Run(job, cfg, WithCacheIntermediates())
	if err != nil {
		t.Fatal(err)
	}
	if cache.JCT >= s3.JCT {
		t.Fatalf("cache intermediates (%v) should beat the object store (%v)",
			cache.JCT, s3.JCT)
	}
}

func TestRunConcreteWithOptions(t *testing.T) {
	job := NewJob(WordCount, 6, 12<<10)
	cfg := Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 3,
	}
	rep, outputs, err := RunConcrete(job, cfg, 1, WithStepFunctions(), WithCacheIntermediates())
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 1 || rep.Cost.Workflow <= 0 {
		t.Fatalf("outputs=%d workflow=%v", len(outputs), rep.Cost.Workflow)
	}
}
