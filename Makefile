# Build and verification targets. `make verify` is the CI gate: static
# vetting plus the full test suite under the race detector (the plan-search
# engine is concurrent by default, so every PR must pass -race).

GO ?= go

.PHONY: build test verify bench bench-all benchdiff race vet examples loadgen serve loadgen-remote

build:
	$(GO) build ./...

# The examples are user-facing documentation that must keep compiling;
# `go build ./...` covers them too, but a dedicated target lets verify
# name them explicitly (and fails fast with a focused error).
examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# -short skips the full evaluation sweeps (internal/experiments), which
# replan every paper artifact and blow the test timeout under race
# instrumentation on small hosts; the sweeps run race-free via `make test`,
# and every concurrency path has dedicated tests that -short keeps.
race:
	$(GO) test -race -short ./...

verify: vet race examples

# Planning-engine micro-benchmarks at the Sort100GB scale, written as
# machine-readable JSON (ns/op, allocs/op, warm-cache hit rate) so runs
# are diffable across commits.
bench:
	$(GO) run ./cmd/astra-microbench -out BENCH_plan.json

# Perf-regression gate: re-run the microbenchmarks (without rewriting the
# baseline) and fail when ns/op regresses >5% or allocs/op >10% against
# the checked-in BENCH_plan.json. CI runs this as a soft gate — shared
# runners are noisy — so a red benchdiff flags a PR for a look rather
# than blocking it.
benchdiff:
	$(GO) run ./cmd/astra-microbench -out "" -diff BENCH_plan.json

# The full `go test -bench` sweep the JSON summary is distilled from.
bench-all:
	$(GO) test -run xxx -bench 'PlanSort100GB|FrontierSort100GB|PlanQuery202' -benchmem .

# Multi-tenant planning throughput smoke: 200 plans of the default shape
# mix through the shared template/prediction caches, capacity report to
# LOADGEN.json (plans/sec, latency quantiles, cache hit rates). Every 8th
# planned request is also executed under a QoS monitor, so the report and
# LOADGEN.prom carry per-shape deadline attainment (astra_qos_slo_*). CI
# runs this and uploads the report as an artifact.
loadgen:
	$(GO) run ./cmd/astra-loadgen -plans 200 -concurrency 4 -seed 1 \
		-run-every 8 -out LOADGEN.json -metrics-out LOADGEN.prom

# The planning service: HTTP/JSON control plane on :8080 with per-tenant
# admission (30 req/s sustained, burst 10) and the observability plane
# (/metrics, /qos, /debug/pprof/*) on the same listener.
serve:
	$(GO) run ./cmd/astra-server -addr :8080 -rate 30 -burst 10 \
		-max-inflight 4 -queue 16

# Drive a running `make serve` instance from the load driver's remote
# client mode: 4 tenants, deterministic shape sequence, report with the
# queue-wait/service-time split and server cache/429 accounting.
loadgen-remote:
	$(GO) run ./cmd/astra-loadgen -target http://localhost:8080 \
		-tenants 4 -plans 150 -concurrency 4 -seed 1 \
		-out SERVER_LOADGEN.json -metrics-out SERVER_LOADGEN.prom
