// Multi-stage log analytics: a pipeline of MapReduce stages (grep-filter
// the logs, then word-count the matches) planned under ONE global budget.
// Astra allocates the budget across stages — the cheap scan stage gets
// frugal lambdas, the compute-heavy aggregation gets the fast ones —
// instead of splitting it evenly.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"astra"
)

func main() {
	p := astra.Pipeline{
		Stages: []astra.PipelineStage{
			{Name: "filter", Profile: astra.Grep},
			{Name: "aggregate", Profile: astra.WordCount},
		},
		InputObjects: 20,
		InputBytes:   20 * (128 << 20), // 2.5 GB of logs
	}
	fmt.Printf("pipeline: %d stages over %.1f GB in %d objects\n\n",
		len(p.Stages), float64(p.InputBytes)/(1<<30), p.InputObjects)

	// The endpoints of the tradeoff.
	fastest, err := astra.PlanPipeline(p, astra.MinTime(1e9))
	if err != nil {
		log.Fatal(err)
	}
	cheapest, err := astra.PlanPipeline(p, astra.MinCost(1e15))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fastest composite:  %.2fs at %s\n", fastest.TotalSec, fastest.TotalCost)
	fmt.Printf("cheapest composite: %.2fs at %s\n\n", cheapest.TotalSec, cheapest.TotalCost)

	// A budget between the extremes: watch the allocation.
	budget := float64(fastest.TotalCost+cheapest.TotalCost) / 2
	plan, err := astra.PlanPipeline(p, astra.MinTime(budget))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget $%.5f -> composite %.2fs at %s\n", budget, plan.TotalSec, plan.TotalCost)
	for _, st := range plan.Stages {
		fmt.Printf("  %-10s %s  (%.2fs, %s)\n",
			st.Stage+":", st.Config, st.Pred.TotalSec(), st.Pred.TotalCost())
	}

	// Execute the composite plan end-to-end on the simulated platform.
	res, err := astra.RunPipeline(p, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured: %.2fs at %s", res.JCT.Seconds(), res.Cost.Total())
	if float64(res.Cost.Total()) <= budget {
		fmt.Println("  [within budget]")
	} else {
		fmt.Println("  [over budget]")
	}
	for i, rep := range res.Stages {
		fmt.Printf("  stage %d: JCT %.2fs, %d mappers -> %d reducers\n",
			i+1, rep.JCT.Seconds(), rep.Orchestration.Mappers(), rep.Orchestration.Reducers())
	}
}
