// WordCount end-to-end: run REAL word-count code through the serverless
// MapReduce engine (concrete mode), verify the result against a direct
// count, and then sweep the configuration space to print the
// time/cost tradeoff frontier that motivates Astra (the paper's Fig. 1
// and Fig. 2, on a user-sized corpus).
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"astra"
)

func main() {
	// A small corpus: 12 objects of 64 KiB of generated text.
	job := astra.NewJob(astra.WordCount, 12, 12*64<<10)
	cfg := astra.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 3, ObjsPerReducer: 2,
	}

	report, outputs, err := astra.RunConcrete(job, cfg, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concrete run: JCT %.2fs, cost %s, %d mappers, %d reducers in %d steps\n\n",
		report.JCT.Seconds(), report.Cost.Total(),
		report.Orchestration.Mappers(), report.Orchestration.Reducers(),
		report.Orchestration.NumSteps())

	fmt.Println("top 10 words:")
	for _, wc := range topWords(string(outputs[0]), 10) {
		fmt.Printf("  %-12s %d\n", wc.word, wc.count)
	}

	// Sweep objects-per-lambda across two memory tiers (profiled mode,
	// instant) and print the tradeoff frontier.
	fmt.Println("\ntradeoff frontier (objects/lambda x memory):")
	fmt.Printf("%-4s  %-12s %-12s  %-12s %-12s\n", "k", "JCT@128MB", "cost@128MB", "JCT@1792MB", "cost@1792MB")
	for k := 1; k <= 6; k++ {
		row := fmt.Sprintf("%-4d", k)
		for _, mem := range []int{128, 1792} {
			c := astra.Config{
				MapperMemMB: mem, CoordMemMB: mem, ReducerMemMB: mem,
				ObjsPerMapper: k, ObjsPerReducer: k,
			}
			rep, err := astra.Run(job, c)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %-12s %-12s",
				fmt.Sprintf("%.2fs", rep.JCT.Seconds()), rep.Cost.Total())
		}
		fmt.Println(row)
	}

	// And what Astra itself would pick, unconstrained.
	plan, err := astra.Plan(job, astra.MinTime(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nastra's pick: %s -> JCT %.2fs, cost %s\n",
		plan.Config, plan.Exact.TotalSec(), plan.Exact.TotalCost())

	// Audit the pick: re-run it with a flight recorder attached, then ask
	// the report for the critical path (which lambda blocked each stage,
	// and where its time went: startup, compute, S3 I/O, waiting) and the
	// per-term model-accuracy table. The recorder is observe-only — this
	// run is bit-identical to an unrecorded one.
	rec := astra.NewFlightRecorder()
	audited, err := astra.Run(job, plan.Config, astra.WithFlightRecorder(rec))
	if err != nil {
		log.Fatal(err)
	}
	aud, err := audited.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(aud.Render())

	// The whole Pareto frontier in one call: every point is undominated.
	// The sweep is anytime — the observer sees the curve sharpen phase by
	// phase, and the final update always matches the returned result.
	front, err := astra.Frontier(job,
		astra.WithFrontierSize(12),
		astra.WithFrontierObserver(func(u astra.FrontierUpdate) {
			fmt.Printf("  frontier phase %d: %d point(s)\n", u.Phase, len(u.Points))
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntime/cost Pareto frontier:")
	for _, pt := range front.Points {
		fmt.Printf("  %6.2fs  %s  (%s)\n",
			pt.Pred.TotalSec(), pt.Pred.TotalCost(), pt.Config)
	}
	fmt.Printf("  (%d searches, %d pruned, %d exact evaluations)\n",
		front.Stats.Searches, front.Stats.Pruned, front.Stats.Evaluations)
}

type wordCount struct {
	word  string
	count int64
}

func topWords(table string, n int) []wordCount {
	var all []wordCount
	for _, line := range strings.Split(table, "\n") {
		if line == "" {
			continue
		}
		w, v, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		c, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			continue
		}
		all = append(all, wordCount{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].word < all[j].word
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
