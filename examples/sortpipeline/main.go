// Sort at paper scale: the 100 GB Sort benchmark in profiled mode (no
// real bytes — the virtual-time platform executes the full control flow
// with size metadata), comparing Astra's budget-constrained plan against
// the paper's three baselines and the VM-based EMR cluster of Fig. 9.
//
//	go run ./examples/sortpipeline
package main

import (
	"fmt"
	"log"

	"astra"
	"astra/internal/emr"
)

func main() {
	job := astra.Sort100GB()
	fmt.Printf("job: %s, %d objects x %d MB (%.1f GB total)\n\n",
		job.Profile.Name, job.NumObjects, job.ObjectSize>>20,
		float64(job.TotalBytes())/(1<<30))

	// The VM-based comparison point: 3 x m3.xlarge, 100 map slots.
	cluster, err := emr.Run(job, emr.PaperCluster())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s JCT %9.2fs   cost %s   (3 x m3.xlarge)\n",
		"EMR:", cluster.JCT.Seconds(), cluster.Cost)

	// Astra, told to spend at most what the cluster costs.
	plan, err := astra.Plan(job, astra.MinTime(float64(cluster.Cost)))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := astra.Run(job, plan.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s JCT %9.2fs   cost %s   (%s)\n",
		"Astra:", rep.JCT.Seconds(), rep.Cost.Total(), plan.Config)

	for i, cfg := range astra.Baselines(job) {
		b, err := astra.Run(job, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s JCT %9.2fs   cost %s\n",
			fmt.Sprintf("Baseline %d:", i+1), b.JCT.Seconds(), b.Cost.Total())
	}

	fmt.Printf("\nAstra vs EMR: %.1f%% faster, %.1f%% cheaper\n",
		100*(1-rep.JCT.Seconds()/cluster.JCT.Seconds()),
		100*(1-float64(rep.Cost.Total())/float64(cluster.Cost)))
	fmt.Printf("shape: %d mappers -> %d range-partitioned reducers in %d step(s)\n",
		rep.Orchestration.Mappers(), rep.Orchestration.Reducers(),
		rep.Orchestration.NumSteps())
}
