// Uservisits query with a QoS deadline: the paper's Query benchmark in
// miniature. Real AMPLab-style uservisits rows are synthesized, the
// aggregation query (total adRevenue by countryCode) runs end-to-end
// through the serverless engine, and Astra is asked for the cheapest
// plan meeting an interactive deadline.
//
//	go run ./examples/uservisits
package main

import (
	"fmt"
	"log"
	"time"

	"astra"
)

func main() {
	// ~6 MB of uservisits rows in 16 objects.
	job := astra.NewJob(astra.Query, 16, 6<<20)

	// First: what is the fastest possible execution? Use it to pick a
	// realistic QoS threshold with some slack.
	fastest, err := astra.Plan(job, astra.MinTime(1e6))
	if err != nil {
		log.Fatal(err)
	}
	deadline := time.Duration(float64(fastest.Exact.JCT()) * 1.5)
	fmt.Printf("fastest possible: %.2fs at %s\n", fastest.Exact.TotalSec(), fastest.Exact.TotalCost())
	fmt.Printf("QoS threshold:    %.2fs (1.5x)\n\n", deadline.Seconds())

	// The cheapest plan meeting the deadline.
	plan, err := astra.Plan(job, astra.MinCost(deadline))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("astra's plan:", plan.Config)
	fmt.Printf("predicted:    JCT %.2fs, cost %s (%.0f%% of the fastest plan's cost)\n\n",
		plan.Exact.TotalSec(), plan.Exact.TotalCost(),
		100*float64(plan.Exact.TotalCost())/float64(fastest.Exact.TotalCost()))

	// Execute it for real: mappers parse rows, reducers merge revenue
	// tables, the final object is the aggregation result.
	report, outputs, err := astra.RunConcrete(job, plan.Config, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured:     JCT %.2fs, cost %s", report.JCT.Seconds(), report.Cost.Total())
	if report.JCT <= deadline {
		fmt.Println("  [within QoS]")
	} else {
		fmt.Println("  [QoS MISSED]")
	}

	fmt.Println("\ntotal adRevenue by country:")
	fmt.Print(indent(string(outputs[0])))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				lines = append(lines, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
