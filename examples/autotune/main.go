// The full autonomous loop: calibrate the workload's real data ratios
// from a sample of its own data, plan against the calibrated profile,
// execute, and verify the prediction — versus planning blind on nominal
// constants.
//
// The "true" workload here is WordCount over this corpus, whose measured
// ratios differ substantially from the nominal profile (the corpus's
// small vocabulary makes count tables tiny). Planning on nominal
// constants mispredicts; planning on the calibrated profile nails it.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"astra"
)

func main() {
	nominal := astra.WordCount
	fmt.Printf("nominal profile:    alpha=%.3f beta=%.3f\n",
		nominal.MapOutputRatio, nominal.ReduceOutputRatio)

	// Step 1: calibrate on a small concrete sample of the user's data.
	calibrated, err := astra.CalibrateProfile(nominal, 8, 32<<10, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated profile: alpha=%.3f beta=%.3f (measured on a 256 KiB sample)\n\n",
		calibrated.MapOutputRatio, calibrated.ReduceOutputRatio)

	// The production job: 5 GB of the same kind of data. Its TRUE
	// behavior follows the calibrated ratios.
	trueJob := astra.NewJob(calibrated, 40, 5<<30)

	// Step 2a: plan BLIND on the nominal profile.
	nominalJob := astra.NewJob(nominal, 40, 5<<30)
	blindPlan, err := astra.Plan(nominalJob, astra.MinTime(0.05))
	if err != nil {
		log.Fatal(err)
	}
	// Execute the blind plan against the true workload.
	blindRun, err := astra.Run(trueJob, blindPlan.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== planning on nominal constants ==")
	fmt.Printf("config:    %s\n", blindPlan.Config)
	fmt.Printf("predicted: %.2fs   measured: %.2fs   (error %+.1f%%)\n\n",
		blindPlan.Exact.TotalSec(), blindRun.JCT.Seconds(),
		100*(blindRun.JCT.Seconds()-blindPlan.Exact.TotalSec())/blindPlan.Exact.TotalSec())

	// Step 2b: plan on the CALIBRATED profile.
	tunedPlan, err := astra.Plan(trueJob, astra.MinTime(0.05))
	if err != nil {
		log.Fatal(err)
	}
	tunedRun, err := astra.Run(trueJob, tunedPlan.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== planning on the calibrated profile ==")
	fmt.Printf("config:    %s\n", tunedPlan.Config)
	fmt.Printf("predicted: %.2fs   measured: %.2fs   (error %+.1f%%)\n\n",
		tunedPlan.Exact.TotalSec(), tunedRun.JCT.Seconds(),
		100*(tunedRun.JCT.Seconds()-tunedPlan.Exact.TotalSec())/tunedPlan.Exact.TotalSec())

	if tunedRun.JCT < blindRun.JCT {
		fmt.Printf("calibration bought a %.1f%% faster execution on the true workload\n",
			100*(1-tunedRun.JCT.Seconds()/blindRun.JCT.Seconds()))
	} else {
		fmt.Println("both plans execute equally fast here; calibration fixed the prediction")
	}
}
