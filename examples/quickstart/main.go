// Quickstart: plan a serverless WordCount job under both of Astra's
// objectives and execute the plans on the simulated platform.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"astra"
)

func main() {
	// A 1 GB WordCount job stored as 20 objects — the smallest input of
	// the paper's evaluation.
	job := astra.WordCount1GB()
	fmt.Printf("job: %s, %d objects, %.1f MB each\n\n",
		job.Profile.Name, job.NumObjects, float64(job.ObjectSize)/(1<<20))

	// Objective 1: the fastest execution that costs at most $0.004.
	plan, err := astra.Plan(job, astra.MinTime(0.004))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== minimize completion time, budget $0.004 ==")
	fmt.Println("config:   ", plan.Config)
	report, err := astra.Run(job, plan.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured:  JCT %.2fs, cost %s\n", report.JCT.Seconds(), report.Cost.Total())
	fmt.Printf("phases:    map %.2fs | coordinator %.2fs | reduce %.2fs (%d steps)\n\n",
		report.Phases.Map.Seconds(), report.Phases.CoordExclusive.Seconds(),
		report.Phases.Reduce.Seconds(), len(report.Phases.Steps))

	// Objective 2: the cheapest execution that finishes within 2 minutes.
	plan2, err := astra.Plan(job, astra.MinCost(2*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== minimize cost, deadline 2m ==")
	fmt.Println("config:   ", plan2.Config)
	report2, err := astra.Run(job, plan2.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured:  JCT %.2fs, cost %s\n\n", report2.JCT.Seconds(), report2.Cost.Total())

	// How do the paper's baselines compare?
	fmt.Println("== the paper's baselines on the same job ==")
	for i, cfg := range astra.Baselines(job) {
		rep, err := astra.Run(job, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %d: JCT %8.2fs, cost %s   (%s)\n",
			i+1, rep.JCT.Seconds(), rep.Cost.Total(), cfg)
	}
}
