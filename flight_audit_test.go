package astra

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"astra/internal/flight"
	"astra/internal/mapreduce"
)

// auditJob is the examples/wordcount corpus: 12 objects of 64 KiB.
func auditJob() Job { return NewJob(WordCount, 12, 12*64<<10) }

// TestFlightRecorderObserveOnly is the tentpole's core contract: attaching
// a recorder must not change the simulated outcome in any way. The whole
// report — timing, cost, records, stats — must be bit-identical with and
// without a recorder, whichever search engine produced the plan.
func TestFlightRecorderObserveOnly(t *testing.T) {
	job := auditJob()
	for _, par := range []struct {
		name string
		n    int
	}{{"serial", 1}, {"parallel", 0}} {
		t.Run(par.name, func(t *testing.T) {
			plan, err := Plan(job, MinTime(1), WithParallelism(par.n))
			if err != nil {
				t.Fatal(err)
			}
			bare, err := Run(job, plan.Config)
			if err != nil {
				t.Fatal(err)
			}
			rec := NewFlightRecorder()
			recorded, err := Run(job, plan.Config, WithFlightRecorder(rec))
			if err != nil {
				t.Fatal(err)
			}
			if len(recorded.Events) == 0 || recorded.Predicted == nil {
				t.Fatal("recorded run must carry events and a predicted breakdown")
			}
			// Strip the recorder-only fields; everything else must match
			// bit for bit.
			recorded.Events = nil
			recorded.Predicted = nil
			if !reflect.DeepEqual(bare, recorded) {
				t.Fatalf("recording changed the simulated outcome:\nbare:     %+v\nrecorded: %+v", bare, recorded)
			}
		})
	}
}

// TestFlightJSONLByteIdentical: two identical recorded runs must export
// byte-identical JSONL streams (the determinism acceptance criterion).
func TestFlightJSONLByteIdentical(t *testing.T) {
	job := auditJob()
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 512, ReducerMemMB: 1024, ObjsPerMapper: 3, ObjsPerReducer: 2}
	export := func() []byte {
		rec := NewFlightRecorder()
		rep, err := Run(job, cfg, WithFlightRecorder(rec))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := flight.WriteJSONL(&buf, rep.Events); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("no events exported")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs exported different JSONL streams")
	}
}

// TestAuditStageSumsToJCT: the critical-path decomposition must be exact —
// stage durations sum to the measured JCT and each stage's four terms sum
// to the stage duration, both within one virtual-time tick.
func TestAuditStageSumsToJCT(t *testing.T) {
	job := auditJob()
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 512, ReducerMemMB: 512, ObjsPerMapper: 2, ObjsPerReducer: 2}
	rec := NewFlightRecorder()
	rep, err := Run(job, cfg, WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	aud, err := rep.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if aud.JCTMeasured != rep.JCT {
		t.Fatalf("audit JCT %v != report JCT %v", aud.JCTMeasured, rep.JCT)
	}
	var sum time.Duration
	for _, st := range aud.Path.Stages {
		sum += st.Duration
		if got := st.Terms.Total(); got != st.Duration {
			t.Errorf("stage %s: terms sum to %v, duration is %v", st.Name, got, st.Duration)
		}
	}
	if d := sum - rep.JCT; d < -time.Nanosecond || d > time.Nanosecond {
		t.Fatalf("stages sum to %v, JCT is %v", sum, rep.JCT)
	}
	if len(aud.Path.Chain) == 0 {
		t.Fatal("audit must report a blocking chain")
	}
}

// TestAuditPredictedMatchesPlan: the audit's predicted headline numbers
// must equal the planner's own predictions for the executed configuration.
func TestAuditPredictedMatchesPlan(t *testing.T) {
	job := auditJob()
	plan, err := Plan(job, MinTime(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewFlightRecorder()
	rep, err := Run(job, plan.Config, WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	aud, err := rep.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if aud.JCTPredicted != plan.Exact.JCT() {
		t.Fatalf("audit predicted JCT %v != plan %v", aud.JCTPredicted, plan.Exact.JCT())
	}
	if aud.CostPredicted != plan.Exact.TotalCost() {
		t.Fatalf("audit predicted cost %v != plan %v", aud.CostPredicted, plan.Exact.TotalCost())
	}
	// The predicted stage list must mirror the measured one positionally.
	if len(aud.Predicted.Stages) != len(aud.Path.Stages) {
		t.Fatalf("predicted %d stages, measured %d", len(aud.Predicted.Stages), len(aud.Path.Stages))
	}
}

// TestAuditWithoutRecorder: a report from an unrecorded run must refuse to
// audit with the sentinel error.
func TestAuditWithoutRecorder(t *testing.T) {
	rep, err := Run(auditJob(), Config{MapperMemMB: 512, CoordMemMB: 512, ReducerMemMB: 512, ObjsPerMapper: 3, ObjsPerReducer: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Audit(); !errors.Is(err, flight.ErrNoEvents) {
		t.Fatalf("Audit without recorder = %v, want flight.ErrNoEvents", err)
	}
}

// TestRecordSeqInvariant: Record.Seq must be assigned to every record,
// strictly increasing in completion order, with or without a recorder
// attached (it is platform bookkeeping, not an observability feature).
func TestRecordSeqInvariant(t *testing.T) {
	job := auditJob()
	cfg := Config{MapperMemMB: 512, CoordMemMB: 512, ReducerMemMB: 512, ObjsPerMapper: 3, ObjsPerReducer: 2}
	for _, recorded := range []bool{false, true} {
		var opts []RunOption
		if recorded {
			opts = append(opts, WithFlightRecorder(NewFlightRecorder()))
		}
		rep, err := Run(job, cfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Records) == 0 {
			t.Fatal("no records")
		}
		prev := int64(0)
		for _, r := range rep.Records {
			if r.Seq <= prev {
				t.Fatalf("recorded=%v: Seq %d after %d (must be strictly increasing)", recorded, r.Seq, prev)
			}
			prev = r.Seq
		}
	}
}

// TestRunStatsStoreCounters checks the report's store counters against a
// hand-computed workload: 4 input objects of 1 MiB, 2 objects per mapper
// and 2 per reducer gives 2 mappers (4 gets, 2 puts), one coordinator
// state write, and 1 reducer (2 gets, 1 put).
func TestRunStatsStoreCounters(t *testing.T) {
	const objSize = int64(1 << 20)
	job := NewJob(WordCount, 4, 4*objSize)
	cfg := Config{MapperMemMB: 512, CoordMemMB: 512, ReducerMemMB: 512, ObjsPerMapper: 2, ObjsPerReducer: 2}
	rep, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats

	if st.StoreGets != 6 {
		t.Errorf("StoreGets = %d, want 6 (4 mapper input reads + 2 reducer shuffle reads)", st.StoreGets)
	}
	if st.StorePuts != 4 {
		t.Errorf("StorePuts = %d, want 4 (2 map outputs + 1 state object + 1 reduce output)", st.StorePuts)
	}

	// Object sizes follow the profile ratios with the driver's exact
	// truncating arithmetic.
	mapOut := int64(float64(2*objSize) * WordCount.MapOutputRatio)
	redOut := int64(float64(2*mapOut) * WordCount.ReduceOutputRatio)
	wantIn := 2*mapOut + mapreduce.StateObjectBytes + redOut // bytes written
	wantOut := 4*objSize + 2*mapOut                          // bytes read
	if st.StoreBytesIn != wantIn {
		t.Errorf("StoreBytesIn = %d, want %d", st.StoreBytesIn, wantIn)
	}
	if st.StoreBytesOut != wantOut {
		t.Errorf("StoreBytesOut = %d, want %d", st.StoreBytesOut, wantOut)
	}
}

// TestWordCountAuditGolden locks the full audit render for the
// examples/wordcount job: the critical path, the per-term accuracy table
// and the MAPE summaries. Regenerate with UPDATE_GOLDEN=1 go test -run
// TestWordCountAuditGolden.
func TestWordCountAuditGolden(t *testing.T) {
	job := auditJob()
	plan, err := Plan(job, MinTime(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewFlightRecorder()
	rep, err := Run(job, plan.Config, WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	aud, err := rep.Audit()
	if err != nil {
		t.Fatal(err)
	}
	got := aud.Render()

	golden := filepath.Join("testdata", "wordcount_audit.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("audit render drifted from golden file (UPDATE_GOLDEN=1 to regenerate):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
