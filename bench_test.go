// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md's per-experiment index maps each to its source),
// plus micro-benchmarks of the planning machinery itself. Run with:
//
//	go test -bench=. -benchmem
//
// The evaluation benches are whole-experiment regenerations, so each
// iteration covers baselines, Astra plans and simulated executions; the
// benchmark framework typically settles on one iteration apiece.
package astra

import (
	"context"
	"testing"
	"time"

	"astra/internal/emr"
	"astra/internal/experiments"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// benchExperiment runs one named experiment generator per iteration.
func benchExperiment(b *testing.B, fn func() (string, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1: Table I ---

func BenchmarkTableI_Orchestration(b *testing.B) {
	benchExperiment(b, experiments.TableI)
}

// --- E2/E3: Fig. 1 and Fig. 2 (one sweep produces both) ---

func BenchmarkFig1_CompletionTime(b *testing.B) {
	benchExperiment(b, experiments.Fig1)
}

func BenchmarkFig2_MonetaryCost(b *testing.B) {
	benchExperiment(b, experiments.Fig2)
}

// --- E4: Fig. 3 ---

func BenchmarkFig3_Timeline(b *testing.B) {
	benchExperiment(b, experiments.Fig3)
}

// --- E5: Fig. 6 ---

func BenchmarkFig6_MemorySweep(b *testing.B) {
	benchExperiment(b, experiments.Fig6)
}

// --- E6/E7: Fig. 7 and Table III (uncached regeneration) ---

func BenchmarkFig7_PerfUnderBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPerfComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII_Allocations(b *testing.B) {
	benchExperiment(b, experiments.TableIII)
}

// --- E8: Fig. 8 (uncached regeneration) ---

func BenchmarkFig8_CostUnderDeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCostComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: Fig. 9 ---

func BenchmarkFig9_EMRComparison(b *testing.B) {
	benchExperiment(b, experiments.Fig9)
}

// --- E10: Spark discussion ---

func BenchmarkSpark_Discussion(b *testing.B) {
	benchExperiment(b, experiments.SparkDiscussion)
}

// --- A1-A3: ablations ---

func BenchmarkAblation_Solvers(b *testing.B) {
	benchExperiment(b, experiments.AblationSolvers)
}

func BenchmarkAblation_DAG(b *testing.B) {
	benchExperiment(b, experiments.AblationDAG)
}

func BenchmarkAblation_ReduceModel(b *testing.B) {
	benchExperiment(b, experiments.AblationReduceModel)
}

// --- Micro-benchmarks: the machinery the experiments are built from ---

// BenchmarkPlanQuery202 measures one full planning pass (DAG build +
// Algorithm 1 + calibration) at the paper's largest instance: 202 input
// objects with the full pruned tier set. The paper reports its solver
// runs "within a few seconds on a laptop".
func BenchmarkPlanQuery202(b *testing.B) {
	params := model.DefaultParams(workload.Query25GB())
	for i := 0; i < b.N; i++ {
		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		if _, err := pl.Plan(optimizer.Objective{
			Goal:   optimizer.MinTimeUnderBudget,
			Budget: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCostModeSort200 measures the cost-objective planning pass
// at the Sort scale.
func BenchmarkPlanCostModeSort200(b *testing.B) {
	params := model.DefaultParams(workload.Sort100GB())
	for i := 0; i < b.N; i++ {
		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		if _, err := pl.Plan(optimizer.Objective{
			Goal:     optimizer.MinCostUnderDeadline,
			Deadline: time.Hour,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPlanSort100GB runs one full planning pass (DAG build + search +
// calibration) at the Sort100GB scale with a fixed pool size. Serial vs
// parallel pairs below measure the engine's multi-core speedup; the chosen
// plan is identical at every pool size, so the pairs are comparable.
func benchPlanSort100GB(b *testing.B, workers int) {
	b.Helper()
	params := model.DefaultParams(workload.Sort100GB())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		pl.Parallelism = workers
		if _, err := pl.Plan(optimizer.Objective{
			Goal:   optimizer.MinTimeUnderBudget,
			Budget: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanSort100GB_Serial(b *testing.B)   { benchPlanSort100GB(b, 1) }
func BenchmarkPlanSort100GB_Parallel(b *testing.B) { benchPlanSort100GB(b, 0) }

// benchFrontierSort100GB sweeps the Sort100GB Pareto frontier (one
// shared cost-mode DAG, phased bounded searches, exact re-evaluations)
// at a fixed pool size — the widest fan-out in the engine and the best
// multi-core showcase.
func benchFrontierSort100GB(b *testing.B, workers int) {
	b.Helper()
	params := model.DefaultParams(workload.Sort100GB())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.SweepFrontier(context.Background(), optimizer.FrontierSpec{
			Params:      params,
			Size:        16,
			Parallelism: workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrontierSort100GB_Serial(b *testing.B)   { benchFrontierSort100GB(b, 1) }
func BenchmarkFrontierSort100GB_Parallel(b *testing.B) { benchFrontierSort100GB(b, 0) }

// BenchmarkPlanSort100GB_CachedReplan measures re-planning under a changed
// budget on a warm planner: the memoized DAG and prediction cache turn the
// second solve into search-only work.
func BenchmarkPlanSort100GB_CachedReplan(b *testing.B) {
	params := model.DefaultParams(workload.Sort100GB())
	pl := optimizer.New(params)
	pl.Solver = optimizer.Auto
	if _, err := pl.Plan(optimizer.Objective{
		Goal: optimizer.MinTimeUnderBudget, Budget: 1,
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		budget := 0.5 + 0.001*float64(i%100)
		if _, err := pl.Plan(optimizer.Objective{
			Goal: optimizer.MinTimeUnderBudget, Budget: pricing.USD(budget),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactPredict measures one engine-faithful model evaluation.
func BenchmarkExactPredict(b *testing.B) {
	m := model.NewExact(model.DefaultParams(workload.WordCount20GB()))
	cfg := mapreduce.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 4,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateWordCount20GB measures one full simulated execution of
// a 40-object job (hundreds of lambdas on the virtual clock).
func BenchmarkSimulateWordCount20GB(b *testing.B) {
	job := workload.WordCount20GB()
	params := model.DefaultParams(job)
	cfg := optimizer.Baseline1(job.NumObjects)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Execute(params, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSort100GB measures the biggest engine run: 200 objects,
// 100 GB, 301 lambdas.
func BenchmarkSimulateSort100GB(b *testing.B) {
	job := workload.Sort100GB()
	params := model.DefaultParams(job)
	cfg := mapreduce.Config{
		MapperMemMB: 1792, CoordMemMB: 1792, ReducerMemMB: 1792,
		ObjsPerMapper: 2, ObjsPerReducer: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Execute(params, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMRModel measures the VM-cluster estimate.
func BenchmarkEMRModel(b *testing.B) {
	job := workload.Sort100GB()
	cluster := emr.PaperCluster()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := emr.Run(job, cluster); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrchestrate measures the Table I recurrence itself.
func BenchmarkOrchestrate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.Orchestrate(202, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}
