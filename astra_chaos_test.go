package astra

import (
	"bytes"
	"testing"
	"time"

	"astra/internal/flight"
)

func chaosJob() Job { return NewJob(WordCount, 12, 96<<20) }

var chaosCfg = Config{MapperMemMB: 1024, CoordMemMB: 512, ReducerMemMB: 1024,
	ObjsPerMapper: 2, ObjsPerReducer: 2}

func chaosTestPlan() *ChaosPlan {
	return &ChaosPlan{Seed: 21, Rules: []ChaosRule{
		{Name: "slow-map", Target: "lambda", Effect: "straggle", Phase: "map",
			Probability: 0.3, Factor: 6},
		{Name: "kill", Target: "lambda", Effect: "fail_mid_flight", Phase: "reduce",
			Probability: 0.15},
		{Name: "flaky-get", Target: "store", Effect: "store_error",
			Ops: []string{"GET"}, Probability: 0.03, Repeat: 1},
	}}
}

// TestChaosDeterminism is the subsystem's headline invariant: the same
// seeded plan yields byte-identical flight-recorder exports run to run,
// whether the preceding planning search ran serial or fully parallel.
func TestChaosDeterminism(t *testing.T) {
	job := chaosJob()
	export := func(parallelism int) []byte {
		// Plan first (exercising the requested engine parallelism), then
		// run under chaos with a recorder.
		if _, err := Plan(job, MinTime(1), WithParallelism(parallelism)); err != nil {
			t.Fatal(err)
		}
		eng, err := NewChaosEngine(chaosTestPlan())
		if err != nil {
			t.Fatal(err)
		}
		rec := NewFlightRecorder()
		rep, err := Run(job, chaosCfg, WithChaos(eng), WithTaskRetries(3),
			WithSpeculation(1.5), WithFlightRecorder(rec))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Resilience.LambdaFaults+int(rep.Resilience.StoreFaults) == 0 {
			t.Fatal("plan injected nothing; test is vacuous")
		}
		var buf bytes.Buffer
		if err := flight.WriteJSONL(&buf, rep.Events); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, again, parallel := export(1), export(1), export(0)
	if len(serial) == 0 {
		t.Fatal("no events exported")
	}
	if !bytes.Equal(serial, again) {
		t.Fatal("same seeded chaos plan exported different JSONL streams across runs")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel planning changed the chaos run's JSONL export")
	}
}

// TestEmptyChaosPlanIsObserveOnly: an engine with no rules must leave the
// report bit-identical to a run with no injector attached.
func TestEmptyChaosPlanIsObserveOnly(t *testing.T) {
	job := chaosJob()
	plain, err := Run(job, chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewChaosEngine(&ChaosPlan{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	under, err := Run(job, chaosCfg, WithChaos(eng))
	if err != nil {
		t.Fatal(err)
	}
	if plain.JCT != under.JCT || plain.Cost != under.Cost ||
		plain.Stats != under.Stats || len(plain.Records) != len(under.Records) {
		t.Fatalf("empty plan perturbed the run:\nplain %+v %+v\nunder %+v %+v",
			plain.JCT, plain.Cost, under.JCT, under.Cost)
	}
	if under.Resilience != plain.Resilience {
		t.Fatalf("resilience sections differ: %+v vs %+v", under.Resilience, plain.Resilience)
	}
}

// TestSpeculationFillsPredictionsFromModel: WithSpeculation with no
// explicit durations gets its straggler thresholds from the planner's
// per-stage breakdown, and a straggled mapper is recovered by a backup.
func TestSpeculationFillsPredictionsFromModel(t *testing.T) {
	job := chaosJob()
	mk := func() *ChaosEngine {
		eng, err := NewChaosEngine(&ChaosPlan{Seed: 8, Rules: []ChaosRule{
			{Target: "lambda", Effect: "straggle", Phase: "map", Factor: 12, MaxCount: 1},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	slow, err := Run(job, chaosCfg, WithChaos(mk()))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(job, chaosCfg, WithChaos(mk()), WithSpeculation(0))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Resilience.Speculation.BackupsLaunched == 0 {
		t.Fatal("no backup launched: model predictions were not filled in")
	}
	if fast.JCT >= slow.JCT {
		t.Fatalf("speculative JCT %v did not improve on %v", fast.JCT, slow.JCT)
	}
}

// TestDeadlineMet: the Report answers the Eq. 20 QoS question directly.
func TestDeadlineMet(t *testing.T) {
	rep, err := Run(chaosJob(), chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DeadlineMet(rep.JCT) || !rep.DeadlineMet(rep.JCT+time.Second) {
		t.Fatal("deadline at or above JCT must be met")
	}
	if rep.DeadlineMet(rep.JCT - time.Nanosecond) {
		t.Fatal("deadline below JCT must be missed")
	}
}
