// Package astra is the public API of the Astra reproduction: autonomous
// configuration and orchestration of serverless analytics jobs with
// cost-efficiency and QoS-awareness (Jarachanthan et al., IPDPS 2021).
//
// A job is a workload profile plus its input layout in the object store.
// The user states one of two objectives — minimize completion time under
// a monetary budget, or minimize monetary cost under a completion-time
// threshold — and Astra searches the coupled configuration space (three
// memory allocations, objects per mapper, objects per reducer) for the
// optimal execution plan, which can then be executed on the bundled
// simulated serverless platform.
//
// Quick start:
//
//	job := astra.WordCount1GB()
//	plan, err := astra.Plan(job, astra.MinTime(0.01))   // <= $0.01
//	report, err := astra.Run(job, plan.Config)          // simulate it
//
// The simulated platform reproduces the semantics the paper's models
// assume of AWS Lambda and S3 (memory-proportional compute speed,
// per-request and per-dispatch latencies, request/duration/storage
// billing) on a deterministic virtual clock, so multi-hour 100 GB jobs
// execute in milliseconds of wall time with exactly reproducible results.
package astra

import (
	"context"
	"sync"
	"time"

	"astra/internal/chaos"
	"astra/internal/flight"
	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/objectstore"
	"astra/internal/optimizer"
	"astra/internal/parallel"
	"astra/internal/pipeline"
	"astra/internal/pricing"
	"astra/internal/profiler"
	"astra/internal/qos"
	"astra/internal/simtime"
	"astra/internal/telemetry"
	"astra/internal/workload"
)

// Core types, re-exported from the implementation packages.
type (
	// Job is a workload profile plus its input layout.
	Job = workload.Job
	// Profile is a workload calibration record.
	Profile = workload.Profile
	// Config is one point of the configuration space: memory tiers and
	// degrees of parallelism.
	Config = mapreduce.Config
	// Orchestration is the derived job shape: mapper loads and the
	// reducing cascade.
	Orchestration = mapreduce.Orchestration
	// Objective is a user requirement (goal + constraint).
	Objective = optimizer.Objective
	// ExecutionPlan is the optimizer's output: a configuration with its
	// model predictions.
	ExecutionPlan = optimizer.Plan
	// Report is a measured execution outcome.
	Report = mapreduce.Report
	// Params is the model parameterization (prices, bandwidth,
	// latencies, speed scaling).
	Params = model.Params
	// USD is a monetary amount.
	USD = pricing.USD
	// Solver selects the plan-search strategy.
	Solver = optimizer.Solver
)

// Workload profiles.
var (
	WordCount = workload.WordCount
	Sort      = workload.Sort
	Query     = workload.Query
)

// Solvers.
const (
	// SolverAuto runs the paper's Algorithm 1 with an exact
	// constrained-shortest-path fallback; the recommended default.
	SolverAuto = optimizer.Auto
	// SolverAlgorithm1 is the paper's heuristic, as written.
	SolverAlgorithm1 = optimizer.Algorithm1
	// SolverCSP is exact label-setting on the configuration DAG.
	SolverCSP = optimizer.CSP
	// SolverBrute exhaustively enumerates small instances.
	SolverBrute = optimizer.Brute
)

// The paper's evaluation inputs.
var (
	WordCount1GB  = workload.WordCount1GB
	WordCount10GB = workload.WordCount10GB
	WordCount20GB = workload.WordCount20GB
	Sort100GB     = workload.Sort100GB
	Query25GB     = workload.Query25GB
)

// NewJob describes a custom input: a profile, the object count, and the
// total dataset size in bytes (split evenly across objects).
func NewJob(pf Profile, numObjects int, totalBytes int64) Job {
	if numObjects <= 0 {
		numObjects = 1
	}
	return Job{Profile: pf, NumObjects: numObjects, ObjectSize: totalBytes / int64(numObjects)}
}

// Errors surfaced by the planner, exported so callers can test with
// errors.Is instead of string-matching.
var (
	// ErrInfeasible is wrapped by Plan when no configuration satisfies
	// the objective's constraint.
	ErrInfeasible = optimizer.ErrNoFeasiblePlan
	// ErrInvalidObjective is wrapped by Plan when the objective is
	// malformed: MinTime with a negative budget, or MinCost with a
	// non-positive deadline.
	ErrInvalidObjective = optimizer.ErrInvalidObjective
)

// MinTime is the Eq. 16 objective: the fastest plan costing at most
// budget dollars. A negative budget is rejected by Plan with
// ErrInvalidObjective.
func MinTime(budgetUSD float64) Objective {
	return Objective{Goal: optimizer.MinTimeUnderBudget, Budget: USD(budgetUSD)}
}

// MinCost is the Eq. 20 objective: the cheapest plan finishing within the
// deadline. A non-positive deadline is rejected by Plan with
// ErrInvalidObjective.
func MinCost(deadline time.Duration) Objective {
	return Objective{Goal: optimizer.MinCostUnderDeadline, Deadline: deadline}
}

// PlanCache memoizes model predictions across planning calls. Share one
// cache (via WithPlanCache) among plans for the same job parameterization
// to make repeated searches — re-planning under a new budget, frontier
// sweeps, A/B solver comparisons — substantially cheaper.
type PlanCache = model.PredictionCache

// NewPlanCache creates an empty prediction cache, safe for concurrent use.
func NewPlanCache() *PlanCache { return model.NewPredictionCache() }

// TemplateCache shares frozen configuration-DAG builds across planning
// calls and planner instances: jobs of the same shape (same object
// count, tier set, price sheet and model parameters) reuse one built
// graph, so a template-hit plan skips the thousands of model
// evaluations behind DAG construction entirely. Misses build once under
// singleflight — a thundering herd of identical jobs performs a single
// build. Plan, Frontier and PlanPipeline use a process-wide shared
// cache by default (see SharedCaches); pass WithTemplateCache to scope
// one explicitly, or WithPrivateCaches to opt a call out of sharing.
type TemplateCache = optimizer.TemplateCache

// TemplateStats summarizes template-cache traffic (hits, misses,
// builds, singleflight waits, evictions, resident entries).
type TemplateStats = optimizer.TemplateStats

// NewTemplateCache creates a bounded DAG-template cache; maxTemplates
// <= 0 selects the default bound. Safe for concurrent use.
func NewTemplateCache(maxTemplates int) *TemplateCache {
	return optimizer.NewTemplateCache(maxTemplates)
}

// Process-wide shared planning caches, created on first use. One
// template cache and one bounded prediction cache serve every Plan/
// Frontier/PlanPipeline call that does not override them, so concurrent
// planner instances amortize cold-plan work instead of each maintaining
// private state.
var (
	sharedOnce      sync.Once
	sharedTemplates *TemplateCache
	sharedPlanCache *PlanCache
)

// sharedPredictionCap bounds the process-wide prediction cache. A cold
// Sort100GB plan memoizes ~2k predictions; 1<<18 entries holds on the
// order of a hundred distinct tenant shapes before eviction while
// keeping worst-case residency bounded.
const sharedPredictionCap = 1 << 18

// SharedCaches returns the process-wide template and prediction caches
// that Plan, Frontier and PlanPipeline use by default. Expose their
// Stats on a dashboard, or pass them to your own optimizer.Planner
// instances to join the shared pool.
func SharedCaches() (*TemplateCache, *PlanCache) {
	sharedOnce.Do(func() {
		sharedTemplates = NewTemplateCache(0)
		sharedPlanCache = model.NewPredictionCacheWithCap(sharedPredictionCap)
	})
	return sharedTemplates, sharedPlanCache
}

// Telemetry is a metrics-and-spans registry: atomic counters, gauges,
// bounded histograms and hierarchical spans over wall and virtual time.
// Attach one to planning (WithTelemetry) and/or execution
// (WithRunTelemetry), then export with Snapshot().WritePrometheus or
// WriteJSON. Telemetry is observe-only — plans and simulated results are
// bit-identical with a registry attached or not — and a nil *Telemetry
// everywhere means zero overhead.
type Telemetry = telemetry.Registry

// TelemetrySnapshot is a frozen registry state, safe to diff and export
// while the live registry keeps counting.
type TelemetrySnapshot = telemetry.Snapshot

// NewTelemetry creates an empty registry, safe for concurrent use.
func NewTelemetry() *Telemetry { return telemetry.New() }

// planSettings is the resolved option set for one planning call.
type planSettings struct {
	params      Params
	hasParams   bool
	solver      Solver
	parallelism int
	cache       *PlanCache
	templates   *TemplateCache
	private     bool
	tel         *Telemetry
}

// resolveCaches applies the sharing policy: explicit caches win, then
// the process-wide shared pair, unless the call opted out entirely.
func (ps *planSettings) resolveCaches() (*TemplateCache, *PlanCache) {
	tc, pc := ps.templates, ps.cache
	if !ps.private {
		stc, spc := SharedCaches()
		if tc == nil {
			tc = stc
		}
		if pc == nil {
			pc = spc
		}
	}
	return tc, pc
}

// PlanOption customizes a planning search (see Plan).
type PlanOption func(*planSettings)

// WithSolver selects the plan-search strategy (default SolverAuto).
func WithSolver(s Solver) PlanOption {
	return func(ps *planSettings) { ps.solver = s }
}

// WithParams substitutes an explicit model parameterization for the job's
// defaults (custom price sheet, bandwidth, latencies, speed scaling).
func WithParams(p Params) PlanOption {
	return func(ps *planSettings) { ps.params, ps.hasParams = p, true }
}

// WithParallelism bounds the search engine's worker pool: 0 (the default)
// uses every available core, 1 forces the serial engine. The chosen plan
// is identical at every setting; only wall-clock time changes.
func WithParallelism(n int) PlanOption {
	return func(ps *planSettings) { ps.parallelism = n }
}

// WithPlanCache shares a prediction cache with the search, so repeated
// planning over the same parameterization skips recomputing model
// evaluations.
func WithPlanCache(c *PlanCache) PlanOption {
	return func(ps *planSettings) { ps.cache = c }
}

// WithTemplateCache shares a DAG-template cache with the search: a plan
// for a job shape whose frozen configuration graph is already cached
// skips DAG construction entirely. The chosen plan is bit-identical
// with a hit, a miss, or no cache at all.
func WithTemplateCache(tc *TemplateCache) PlanOption {
	return func(ps *planSettings) { ps.templates = tc }
}

// WithPrivateCaches opts this call out of the process-wide shared
// template and prediction caches: with no explicit WithPlanCache/
// WithTemplateCache, the search builds and memoizes privately, as a
// cold standalone plan would. Benchmarks and isolation-sensitive tests
// want this; services should not.
func WithPrivateCaches() PlanOption {
	return func(ps *planSettings) { ps.private = true }
}

// WithTelemetry attaches a registry to the search: DAG builds, solver
// rounds, edge relaxations, pool activity and cache traffic are counted,
// and the plan's Search stats and Explain() report gain their full
// detail. The chosen plan is identical with or without it.
func WithTelemetry(reg *Telemetry) PlanOption {
	return func(ps *planSettings) { ps.tel = reg }
}

// Plan searches for the optimal configuration of a job under an
// objective. With no options it uses the job's default model parameters,
// the Auto solver, and a worker pool spanning every available core:
//
//	plan, err := astra.Plan(job, astra.MinTime(0.01),
//	        astra.WithSolver(astra.SolverCSP), astra.WithParallelism(4))
//
// Plan is PlanContext with context.Background(); use PlanContext to bound
// or cancel the search.
func Plan(job Job, obj Objective, opts ...PlanOption) (*ExecutionPlan, error) {
	return PlanContext(context.Background(), job, obj, opts...)
}

// PlanContext is Plan with cancellation: the search engine checks ctx
// throughout DAG construction, path search and candidate evaluation, and
// returns ctx.Err() promptly — leaking no goroutines — if it fires.
func PlanContext(ctx context.Context, job Job, obj Objective, opts ...PlanOption) (*ExecutionPlan, error) {
	ps := planSettings{solver: SolverAuto}
	for _, opt := range opts {
		opt(&ps)
	}
	params := ps.params
	if !ps.hasParams {
		params = model.DefaultParams(job)
	}
	pl := optimizer.New(params)
	pl.Solver = ps.solver
	pl.Parallelism = ps.parallelism
	pl.Templates, pl.Cache = ps.resolveCaches()
	pl.Tel = ps.tel
	return pl.PlanContext(ctx, obj)
}

// PlanWith is Plan with explicit model parameters and solver choice.
//
// Deprecated: use Plan (or PlanContext) with WithParams and WithSolver.
func PlanWith(params Params, obj Objective, solver Solver) (*ExecutionPlan, error) {
	return PlanContext(context.Background(), params.Job, obj, WithParams(params), WithSolver(solver))
}

// BatchRequest is one planning request in a PlanBatch call.
type BatchRequest struct {
	Job       Job
	Objective Objective
}

// BatchResult is one PlanBatch outcome, index-aligned with the request
// slice. Exactly one of Plan and Err is set.
type BatchResult struct {
	Plan *ExecutionPlan
	Err  error
}

// PlanBatch plans many jobs concurrently over one bounded worker pool,
// sharing a single DAG-template cache and prediction cache across every
// request — the multi-tenant front end: a batch of recurring job shapes
// builds each distinct configuration DAG once (under singleflight) and
// every subsequent plan of that shape is a template hit.
//
// Results are index-aligned with requests and deterministic: each plan
// is bit-identical to what Plan would return for the same job and
// objective. Per-request failures (infeasible objectives, invalid
// parameters) land in the corresponding BatchResult.Err; PlanBatch
// itself only returns an error when ctx is cancelled before the batch
// drains.
//
// Options apply batch-wide. WithParallelism bounds the outer pool over
// requests (0 = all cores); each request's inner search runs serial,
// since cross-request concurrency already saturates the pool. WithParams
// substitutes the parameterization template for every request, with each
// request's Job spliced in.
func PlanBatch(ctx context.Context, reqs []BatchRequest, opts ...PlanOption) ([]BatchResult, error) {
	ps := planSettings{solver: SolverAuto}
	for _, opt := range opts {
		opt(&ps)
	}
	tc, pc := ps.resolveCaches()
	if tc == nil {
		tc = NewTemplateCache(0)
	}
	if pc == nil {
		pc = NewPlanCache()
	}
	results := make([]BatchResult, len(reqs))
	if ps.tel != nil {
		ctx = telemetry.NewContext(ctx, ps.tel)
	}
	err := parallel.ForEach(ctx, len(reqs), ps.parallelism, func(i int) {
		req := reqs[i]
		params := ps.params
		if ps.hasParams {
			params.Job = req.Job
		} else {
			params = model.DefaultParams(req.Job)
		}
		pl := optimizer.New(params)
		pl.Solver = ps.solver
		pl.Parallelism = 1
		pl.Templates, pl.Cache = tc, pc
		pl.Tel = ps.tel
		plan, perr := pl.PlanContext(ctx, req.Objective)
		results[i] = BatchResult{Plan: plan, Err: perr}
	})
	if tel := ps.tel; tel != nil {
		var failed int64
		for i := range results {
			if results[i].Err != nil {
				failed++
			}
		}
		tel.Counter(telemetry.MBatchPlans).Add(int64(len(results)) - failed)
		if failed > 0 {
			tel.Counter(telemetry.MBatchErrors).Add(failed)
		}
		PublishCacheStats(tel, tc, pc)
	}
	if err != nil {
		return results, err
	}
	return results, nil
}

// PublishCacheStats reconciles a template cache's and prediction cache's
// cumulative counters into a telemetry registry (astra_plan_template_*
// and astra_predcache_* series), so a /metrics scrape sees cache traffic
// even for caches shared across planner instances. Idempotent: counters
// are set to the caches' totals, not incremented, so repeated publishes
// (every batch, every scrape) never double-count. Either cache may be
// nil; a nil registry is a no-op.
func PublishCacheStats(tel *Telemetry, tc *TemplateCache, pc *PlanCache) {
	if tel == nil {
		return
	}
	if tc != nil {
		st := tc.Stats()
		publishCounterTotal(tel, telemetry.MPlanTemplateHits, int64(st.Hits))
		publishCounterTotal(tel, telemetry.MPlanTemplateMisses, int64(st.Misses))
		publishCounterTotal(tel, telemetry.MPlanTemplateBuilds, int64(st.Builds))
		publishCounterTotal(tel, telemetry.MPlanTemplateEvictions, int64(st.Evictions))
		publishCounterTotal(tel, telemetry.MPlanTemplateWaits, int64(st.Waits))
		tel.Gauge(telemetry.MPlanTemplateEntries).Set(int64(st.Entries))
	}
	if pc != nil {
		hits, misses := pc.Stats()
		publishCounterTotal(tel, telemetry.MPredCacheHits, int64(hits))
		publishCounterTotal(tel, telemetry.MPredCacheMisses, int64(misses))
		publishCounterTotal(tel, telemetry.MPredCacheEvictions, int64(pc.Evictions()))
	}
}

// publishCounterTotal raises a counter to an externally-tracked
// cumulative total without double-counting across publishes.
func publishCounterTotal(tel *Telemetry, name string, total int64) {
	c := tel.Counter(name)
	if d := total - c.Value(); d > 0 {
		c.Add(d)
	}
}

// Baselines returns the paper's three baseline configurations for a job.
func Baselines(job Job) []Config { return optimizer.Baselines(job.NumObjects) }

// RunOption customizes a job's execution.
type RunOption func(*mapreduce.JobSpec)

// WithStepFunctions orchestrates the reduce phase with a managed workflow
// instead of the coordinator lambda (the paper's footnote 1 alternative:
// faster coordination, but billed per state transition).
func WithStepFunctions() RunOption {
	return func(s *mapreduce.JobSpec) { s.Orchestrator = mapreduce.StepFunctions }
}

// WithCacheIntermediates places the job's ephemeral data on a Redis-like
// in-memory tier (10x bandwidth, sub-ms latency, provisioned GB-hour
// pricing) instead of the object store — the Pocket/Locus design point
// from the paper's discussion section.
func WithCacheIntermediates() RunOption {
	cache := objectstore.CacheClass()
	return func(s *mapreduce.JobSpec) { s.IntermediateClass = &cache }
}

// FlightRecorder is a bounded, deterministic event recorder for one run:
// every invocation lifecycle transition (scheduled, queued, cold start,
// running, done/timeout/retry/throttle), every object-store operation, and
// the driver's phase barriers are captured as structured virtual-time
// events. Attach one with WithFlightRecorder; the run's Report then
// carries the event stream (Report.Events), supports Report.Audit(), and
// the events export as deterministic JSONL (flight.WriteJSONL) or an
// OTLP-flavored span tree (flight.WriteOTLP). Recording is observe-only:
// the simulated outcome is bit-identical with or without a recorder, and a
// nil *FlightRecorder costs nothing.
type FlightRecorder = flight.Recorder

// NewFlightRecorder creates a recorder with the default ring capacity
// (events beyond it overwrite the oldest; see flight.NewWithCapacity).
func NewFlightRecorder() *FlightRecorder { return flight.New() }

// WithFlightRecorder attaches a flight recorder to the execution and
// arranges for the report to carry the recorded event stream plus the
// model's per-stage predicted breakdown for the executed configuration
// (enabling the predicted-vs-measured audit).
func WithFlightRecorder(rec *FlightRecorder) RunOption {
	return func(s *mapreduce.JobSpec) { s.Recorder = rec }
}

// Chaos types, re-exported from internal/chaos: a declarative fault plan
// and the deterministic engine that compiles it into platform injectors.
type (
	// ChaosPlan is a seeded set of fault-injection rules (JSON-loadable;
	// see chaos.Plan for the schema).
	ChaosPlan = chaos.Plan
	// ChaosRule is one fault rule: matchers plus an effect.
	ChaosRule = chaos.Rule
	// ChaosEngine compiles a plan into the platform's injector
	// interfaces. Engines are single-run: build a fresh one per Run so
	// rule fire-counters start from zero.
	ChaosEngine = chaos.Engine
	// ChaosStats summarizes what an engine injected during a run.
	ChaosStats = chaos.Stats
	// SpeculationPolicy configures driver-side straggler mitigation
	// (speculative backups, first-finisher-wins).
	SpeculationPolicy = mapreduce.SpeculationPolicy
	// Resilience is the Report section attributing a run's fault and
	// recovery costs.
	Resilience = mapreduce.Resilience
)

// LoadChaosPlan reads and validates a JSON chaos profile from a file.
// Unknown fields and structurally invalid rules are rejected.
func LoadChaosPlan(path string) (*ChaosPlan, error) { return chaos.Load(path) }

// ParseChaosPlan parses and validates a JSON chaos profile from memory.
func ParseChaosPlan(data []byte) (*ChaosPlan, error) { return chaos.ParseBytes(data) }

// NewChaosEngine validates a plan and builds a single-run injection
// engine. Injection is deterministic: every probabilistic decision is a
// pure function of (plan seed, rule, invocation identity), so the same
// seeded plan produces the same faults — and byte-identical flight
// recordings — under serial and parallel planning alike.
func NewChaosEngine(p *ChaosPlan) (*ChaosEngine, error) { return chaos.NewEngine(p) }

// WithChaos subjects the execution to a fault-injection engine: lambda
// attempts can be failed (before start or mid-flight, both billed),
// straggled, forced cold, or throttled, and object-store requests can
// return transient errors, all per the engine's plan. The Report's
// Resilience section attributes what was injected and what recovery cost.
func WithChaos(e *ChaosEngine) RunOption {
	return func(s *mapreduce.JobSpec) {
		s.Injector = e
		s.StoreInjector = e
	}
}

// WithSpeculation enables speculative backups for straggling tasks: when
// a task runs past multiplier times its model-predicted duration, the
// driver launches a duplicate and the first finisher wins (losers are
// cancelled but billed). Pass multiplier <= 0 for the default threshold
// (1.5x). Predicted durations are filled from the planner's per-stage
// breakdown for the executed configuration.
func WithSpeculation(multiplier float64) RunOption {
	return func(s *mapreduce.JobSpec) {
		s.Speculation = &mapreduce.SpeculationPolicy{Multiplier: multiplier}
	}
}

// WithTaskRetries sets how many times a failed mapper or reducer task is
// re-invoked before the job fails (default 0: any task failure fails the
// job). Retried attempts stay billed; set this when running under a
// chaos profile with failure effects.
func WithTaskRetries(n int) RunOption {
	return func(s *mapreduce.JobSpec) { s.TaskRetries = n }
}

// WithSpeculationPolicy is WithSpeculation with the full policy exposed:
// explicit backup budget and per-phase predicted durations. Zero-valued
// predictions are filled from the model.
func WithSpeculationPolicy(p SpeculationPolicy) RunOption {
	return func(s *mapreduce.JobSpec) {
		pol := p
		s.Speculation = &pol
	}
}

// WithRunTelemetry attaches a registry to the execution: lambda
// invocations, cold starts, throttles, object-store traffic and
// virtual-time phase spans are recorded. The simulated outcome is
// identical with or without it.
func WithRunTelemetry(reg *Telemetry) RunOption {
	return func(s *mapreduce.JobSpec) { s.Telemetry = reg }
}

// Streaming QoS monitoring types, re-exported from internal/qos: the
// per-run monitor (drift scores, deadline risk, cost burn) and the
// cross-run per-tenant/per-job SLO ledger.
type (
	// QoSMonitor follows one run's flight-recorder stream in virtual
	// time and maintains drift, deadline-risk and cost-burn state.
	// Observe-only: attaching one never changes the simulated outcome,
	// and a nil monitor costs nothing.
	QoSMonitor = qos.Monitor
	// QoSOptions configures a QoSMonitor (deadline, margins, identity,
	// ledger, telemetry). Unset plan inputs are filled from the
	// planner's predicted breakdown at Run time.
	QoSOptions = qos.Options
	// QoSLedger aggregates SLO outcomes per (tenant, job) across runs.
	QoSLedger = qos.Ledger
	// QoSSnapshot is a frozen monitor state (served by /qos).
	QoSSnapshot = qos.Snapshot
	// QoSLedgerSnapshot is a frozen ledger view.
	QoSLedgerSnapshot = qos.LedgerSnapshot
	// QoSTransition is one recorded risk or drift transition.
	QoSTransition = qos.Transition
	// QoSState is the deadline-risk verdict (on_track/at_risk/breached).
	QoSState = qos.State
)

// NewQoSMonitor creates a streaming QoS monitor. Fields left zero in the
// options are defaulted from the plan when the monitor is attached to a
// run (deadline = 1.5x predicted JCT, 5% risk margin, CUSUM k=0.25 h=1).
func NewQoSMonitor(o QoSOptions) *QoSMonitor { return qos.New(o) }

// NewQoSLedger creates an empty SLO ledger, shareable across monitors
// and runs.
func NewQoSLedger() *QoSLedger { return qos.NewLedger() }

// WithQoSMonitor attaches a streaming QoS monitor to the execution: the
// monitor consumes the run's flight-recorder events at driver barriers
// and maintains per-stage drift scores, a deadline-risk state with exact
// virtual-time transition instants, and cost burn. A flight recorder is
// attached automatically when the spec has none. Monitoring is
// observe-only — the simulated outcome and the recorded event stream are
// bit-identical with or without it.
func WithQoSMonitor(m *QoSMonitor) RunOption {
	return func(s *mapreduce.JobSpec) {
		if m == nil {
			return
		}
		s.QoS = m
	}
}

// Run executes a configuration on a fresh simulated platform in profiled
// mode (any input scale; data is metadata-only) and reports measured
// timing and cost. Run is RunContext with context.Background().
func Run(job Job, cfg Config, opts ...RunOption) (*Report, error) {
	return RunContext(context.Background(), job, cfg, opts...)
}

// RunContext is Run with cancellation: the simulation's event loop checks
// ctx between events and, when it fires, tears the virtual platform down
// and returns ctx.Err(). The ctx deadline bounds wall-clock execution,
// not the simulated clock.
func RunContext(ctx context.Context, job Job, cfg Config, opts ...RunOption) (*Report, error) {
	return runContextWith(ctx, model.DefaultParams(job), cfg, opts...)
}

// RunWith is Run with explicit model parameters.
func RunWith(params Params, cfg Config, opts ...RunOption) (*Report, error) {
	return runContextWith(context.Background(), params, cfg, opts...)
}

func runContextWith(ctx context.Context, params Params, cfg Config, opts ...RunOption) (*Report, error) {
	world, keys, err := newWorld(params, false, 0)
	if err != nil {
		return nil, err
	}
	return world.run(ctx, params.Job, keys, cfg, mapreduce.Profiled, opts)
}

// RunConcrete executes a configuration over real generated data: the
// mappers and reducers run genuine word-count/sort/query code, and the
// final output object's contents are returned alongside the report.
// Intended for correctness checks and small inputs (the host must hold
// the dataset).
func RunConcrete(job Job, cfg Config, seed int64, opts ...RunOption) (*Report, [][]byte, error) {
	params := model.DefaultParams(job)
	world, keys, err := newWorld(params, true, seed)
	if err != nil {
		return nil, nil, err
	}
	var outputs [][]byte
	rep, err := world.runThen(context.Background(), job, keys, cfg, mapreduce.Concrete, opts,
		func(p *simtime.Proc, rep *Report) error {
			for _, key := range rep.OutputKeys {
				obj, err := world.store.Get(p, rep.InterBucket, key)
				if err != nil {
					return err
				}
				outputs = append(outputs, obj.Data)
			}
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	return rep, outputs, nil
}

// world bundles one simulated platform instance.
type world struct {
	sched  *simtime.Scheduler
	store  *objectstore.Store
	plt    *lambda.Platform
	driver *mapreduce.Driver
	params Params
}

func newWorld(params Params, concrete bool, seed int64) (*world, []string, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth:      params.BandwidthBps,
		RequestLatency: params.RequestLatency,
		Pricing:        params.Sheet.Store,
	})
	plt := lambda.New(sched, store, lambda.Config{
		Sheet:           params.Sheet,
		Speed:           params.Speed,
		DispatchLatency: params.DispatchLatency,
		DisableTimeout:  !concrete,
		// Consulted only for injected 429 windows (capacity throttling
		// queues FIFO in the default mode): retry with backoff the way a
		// real SDK would, instead of failing on the first rejection.
		MaxRetries: 8,
	})
	var keys []string
	var err error
	if concrete {
		keys, err = workload.SeedConcrete(store, "input", params.Job, seed)
	} else {
		keys, err = workload.SeedProfiled(store, "input", params.Job)
	}
	if err != nil {
		return nil, nil, err
	}
	return &world{sched: sched, store: store, plt: plt, driver: mapreduce.NewDriver(plt), params: params}, keys, nil
}

// run executes one job on the world; the world's scheduler is consumed.
func (w *world) run(ctx context.Context, job Job, keys []string, cfg Config, mode mapreduce.Mode, opts []RunOption) (*Report, error) {
	return w.runThen(ctx, job, keys, cfg, mode, opts, nil)
}

// runThen executes one job and then, still inside the simulation, hands
// the root process to after (e.g. to retrieve output objects).
func (w *world) runThen(ctx context.Context, job Job, keys []string, cfg Config, mode mapreduce.Mode,
	opts []RunOption, after func(*simtime.Proc, *Report) error) (*Report, error) {
	spec := mapreduce.JobSpec{
		Workload:  job,
		Bucket:    "input",
		InputKeys: keys,
		Mode:      mode,
	}
	for _, opt := range opts {
		opt(&spec)
	}
	if mon, ok := spec.QoS.(*qos.Monitor); ok && mon != nil {
		// The monitor reads the run through the flight recorder; attach
		// one if the caller didn't. Its plan inputs (predicted breakdown,
		// price sheet, default deadline) are filled here so WithQoSMonitor
		// callers don't have to predict the breakdown themselves.
		if spec.Recorder == nil {
			spec.Recorder = flight.New()
		}
		if bd, perr := model.NewExact(w.params).PredictBreakdown(cfg); perr == nil {
			mon.EnsurePlan(bd, w.params.Sheet)
		}
	}
	if pol := spec.Speculation; pol != nil && pol.MapTask == 0 && len(pol.StepTasks) == 0 {
		// Speculation needs per-task predicted durations to recognize a
		// straggler; fill them from the planner's breakdown for this
		// configuration. If prediction fails the run proceeds with
		// speculation effectively disabled (no deadline, no backups).
		if bd, perr := model.NewExact(w.params).PredictBreakdown(cfg); perr == nil {
			pol.FromBreakdown(bd)
		}
	}
	var rep *Report
	var runErr error
	var err error
	// The whole simulated execution runs under the pprof phase=simulate
	// label, so CPU profiles separate planner phases from platform time.
	telemetry.DoPhase(ctx, telemetry.PhaseSimulate, func(ctx context.Context) {
		err = w.sched.RunContext(ctx, func(p *simtime.Proc) {
			rep, runErr = w.driver.Run(p, spec, cfg)
			if runErr == nil && after != nil {
				runErr = after(p, rep)
			}
		})
	})
	if err != nil {
		return nil, err
	}
	if runErr == nil && spec.Recorder != nil {
		// Attach the planner's per-stage breakdown for the executed
		// configuration so Report.Audit() can diff prediction against the
		// recording. Purely additive: the measured outcome is unchanged,
		// and a prediction failure only yields a measurement-only audit.
		if bd, perr := model.NewExact(w.params).PredictBreakdown(cfg); perr == nil {
			rep.Predicted = bd
		}
	}
	return rep, runErr
}

// Pipeline types, re-exported for multi-stage analytics (chains of
// MapReduce stages whose outputs feed the next stage).
type (
	// Pipeline is an ordered chain of stages with an external input.
	Pipeline = pipeline.Pipeline
	// PipelineStage is one MapReduce phase of a pipeline.
	PipelineStage = pipeline.Stage
	// PipelinePlan is a composite plan with one configuration per stage.
	PipelinePlan = pipeline.Plan
	// PipelineResult is a measured pipeline execution.
	PipelineResult = pipeline.Result
)

// Grep is the log-filtering workload profile (pipeline filter stages).
var Grep = workload.Grep

// PlanPipeline allocates a global budget or deadline across a pipeline's
// stages and returns per-stage configurations. It is PlanPipelineContext
// with context.Background().
func PlanPipeline(p Pipeline, obj Objective) (*PipelinePlan, error) {
	return PlanPipelineContext(context.Background(), p, obj)
}

// PlanPipelineContext is PlanPipeline with cancellation and planning
// options (WithParallelism bounds the per-stage frontier sweeps).
func PlanPipelineContext(ctx context.Context, p Pipeline, obj Objective, opts ...PlanOption) (*PipelinePlan, error) {
	if len(p.Stages) == 0 {
		return nil, p.Validate()
	}
	ps := planSettings{}
	for _, opt := range opts {
		opt(&ps)
	}
	params := ps.params
	if !ps.hasParams {
		params = model.DefaultParams(workload.Job{
			Profile:    p.Stages[0].Profile,
			NumObjects: p.InputObjects,
			ObjectSize: p.InputBytes / int64(maxInt(p.InputObjects, 1)),
		})
	}
	pl := pipeline.NewPlanner(params)
	pl.Parallelism = ps.parallelism
	pl.Templates, pl.Cache = ps.resolveCaches()
	return pl.PlanContext(ctx, p, obj)
}

// RunPipeline executes a planned pipeline on a fresh simulated platform.
func RunPipeline(p Pipeline, plan *PipelinePlan) (*PipelineResult, error) {
	params := model.DefaultParams(workload.Job{
		Profile:    p.Stages[0].Profile,
		NumObjects: p.InputObjects,
		ObjectSize: p.InputBytes / int64(maxInt(p.InputObjects, 1)),
	})
	return pipeline.Execute(params, p, plan)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Frontier types, re-exported from the optimizer.
type (
	// FrontierPoint is one Pareto-optimal configuration on a job's
	// time/cost tradeoff curve.
	FrontierPoint = optimizer.FrontierPoint
	// FrontierResult is a computed frontier (fastest first) plus the
	// sweep's search statistics.
	FrontierResult = optimizer.FrontierResult
	// FrontierUpdate is one anytime snapshot of a sweep in progress,
	// delivered to a WithFrontierObserver callback after every phase.
	FrontierUpdate = optimizer.FrontierUpdate
	// FrontierStats describes how a sweep earned its frontier: phases,
	// searches run and pruned, exact-model evaluations, cache traffic.
	FrontierStats = optimizer.FrontierStats
)

// frontierSettings is the resolved option set for one frontier sweep.
// It embeds planSettings so every PlanOption applies unchanged.
type frontierSettings struct {
	planSettings
	size     int
	observer func(FrontierUpdate)
}

// FrontierOption customizes a frontier sweep. Every PlanOption
// (WithParams, WithParallelism, WithPlanCache, WithTelemetry) is also a
// FrontierOption, so planning and sweeping share one options
// vocabulary; WithFrontierSize and WithFrontierObserver are
// frontier-specific.
type FrontierOption interface {
	applyFrontier(*frontierSettings)
}

// applyFrontier makes every PlanOption usable in Frontier calls.
func (o PlanOption) applyFrontier(fs *frontierSettings) { o(&fs.planSettings) }

// frontierOption is a frontier-specific option.
type frontierOption func(*frontierSettings)

func (o frontierOption) applyFrontier(fs *frontierSettings) { o(fs) }

// WithFrontierSize sets the target number of frontier points (default
// 24). The sweep refines until it has that many Pareto points or
// refinement stops making progress; dominance pruning may keep a few
// extra points for free.
func WithFrontierSize(k int) FrontierOption {
	return frontierOption(func(fs *frontierSettings) { fs.size = k })
}

// WithFrontierObserver streams anytime snapshots: fn is called after
// every sweep phase with the frontier refined so far, and once more
// with the final result (Final true, Points identical to the returned
// FrontierResult). Calls are sequential and synchronous on the sweep's
// goroutine; cancel the sweep's context from inside fn to stop early
// and keep the points already on hand.
func WithFrontierObserver(fn func(FrontierUpdate)) FrontierOption {
	return frontierOption(func(fs *frontierSettings) { fs.observer = fn })
}

// Frontier computes a job's time/cost Pareto frontier (fastest first):
// every point is a configuration no other candidate beats on both
// completion time and cost. The sweep is incremental — endpoints first,
// then interpolated midpoints, then bisection of the largest gaps — so
// an observer sees a usable tradeoff curve almost immediately:
//
//	res, err := astra.Frontier(job,
//	        astra.WithFrontierSize(16),
//	        astra.WithFrontierObserver(func(u astra.FrontierUpdate) {
//	                fmt.Printf("phase %d: %d points\n", u.Phase, len(u.Points))
//	        }))
//
// Frontier is FrontierContext with context.Background().
func Frontier(job Job, opts ...FrontierOption) (*FrontierResult, error) {
	return FrontierContext(context.Background(), job, opts...)
}

// FrontierContext is Frontier with cancellation: the DAG build, the
// constrained searches and the exact re-evaluations behind the sweep
// all shard over the worker pool (WithParallelism) and abort with
// ctx.Err() when ctx fires. When no configuration is feasible the
// error matches ErrInfeasible under errors.Is.
func FrontierContext(ctx context.Context, job Job, opts ...FrontierOption) (*FrontierResult, error) {
	var fs frontierSettings
	for _, opt := range opts {
		opt.applyFrontier(&fs)
	}
	params := fs.params
	if !fs.hasParams {
		params = model.DefaultParams(job)
	}
	tc, pc := fs.resolveCaches()
	return optimizer.SweepFrontier(ctx, optimizer.FrontierSpec{
		Params:      params,
		Size:        fs.size,
		Parallelism: fs.parallelism,
		Cache:       pc,
		Templates:   tc,
		Tel:         fs.tel,
		Observer:    fs.observer,
	})
}

// FrontierWith is the historical positional frontier call.
//
// Deprecated: use Frontier with WithFrontierSize, which also returns
// search stats and supports anytime observation.
func FrontierWith(job Job, k int) ([]FrontierPoint, error) {
	return FrontierContextWith(context.Background(), job, k)
}

// FrontierContextWith is the historical positional frontier call with
// cancellation and plan options.
//
// Deprecated: use FrontierContext with WithFrontierSize.
func FrontierContextWith(ctx context.Context, job Job, k int, opts ...PlanOption) ([]FrontierPoint, error) {
	fopts := make([]FrontierOption, 0, len(opts)+1)
	fopts = append(fopts, WithFrontierSize(k))
	for _, o := range opts {
		fopts = append(fopts, o)
	}
	res, err := FrontierContext(ctx, job, fopts...)
	if err != nil {
		return nil, err
	}
	return res.Points, nil
}

// CalibrateProfile measures a workload's real data ratios (mapper output
// per input byte, reducer output per consumed byte) by running the
// application concretely over a small generated sample, and returns the
// profile with the measured ratios substituted. This is the paper's
// model-refinement loop: plan against the workload's observed shape
// rather than nominal constants.
func CalibrateProfile(pf Profile, sampleObjects, bytesPerObject int, seed int64) (Profile, error) {
	cal, err := profiler.Calibrate(pf, profiler.Sample{
		Objects:        sampleObjects,
		BytesPerObject: bytesPerObject,
		Seed:           seed,
	})
	if err != nil {
		return Profile{}, err
	}
	return cal.Profile, nil
}

// Predict estimates a configuration's completion time and cost with the
// engine-faithful model, without executing anything.
func Predict(job Job, cfg Config) (jct time.Duration, cost USD, err error) {
	pred, err := model.NewExact(model.DefaultParams(job)).Predict(cfg)
	if err != nil {
		return 0, 0, err
	}
	return pred.JCT(), pred.TotalCost(), nil
}
