package astra

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"astra/internal/optimizer"
	"astra/internal/telemetry"
)

// TestPlanBatchMatchesIndividualPlans asserts batch planning through the
// shared caches returns, index-aligned, exactly the plans individual
// private-cache Plan calls return for the same requests.
func TestPlanBatchMatchesIndividualPlans(t *testing.T) {
	reqs := []BatchRequest{
		{Job: WordCount1GB(), Objective: MinTime(0.01)},
		{Job: Sort100GB(), Objective: MinTime(1)},
		{Job: WordCount1GB(), Objective: MinTime(0.01)}, // repeat: template hit
		{Job: Query25GB(), Objective: MinTime(0.25)},
		{Job: WordCount10GB(), Objective: MinTime(0.05)},
	}
	results, err := PlanBatch(context.Background(), reqs, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, req := range reqs {
		if results[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, results[i].Err)
		}
		want, err := Plan(req.Job, req.Objective, WithPrivateCaches(), WithParallelism(1))
		if err != nil {
			t.Fatalf("reference plan %d: %v", i, err)
		}
		got, ref := *results[i].Plan, *want
		got.Search, ref.Search = optimizer.SearchStats{}, optimizer.SearchStats{}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("batch plan %d diverges from individual plan:\nbatch: %+v\nsolo:  %+v", i, got, ref)
		}
	}
}

// TestPlanBatchPerRequestErrors asserts an infeasible request fails alone:
// its slot carries the error, the rest of the batch still plans, and the
// telemetry counters split plans from errors.
func TestPlanBatchPerRequestErrors(t *testing.T) {
	tel := NewTelemetry()
	reqs := []BatchRequest{
		{Job: WordCount1GB(), Objective: MinTime(0.01)},
		{Job: WordCount1GB(), Objective: MinTime(0.0000001)}, // unsatisfiable budget
		{Job: Query25GB(), Objective: MinTime(0.25)},
	}
	results, err := PlanBatch(context.Background(), reqs, WithTelemetry(tel), WithPrivateCaches())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("feasible requests failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("unsatisfiable request did not fail")
	}
	if !errors.Is(results[1].Err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", results[1].Err)
	}
	if got := tel.Counter(telemetry.MBatchPlans).Value(); got != 2 {
		t.Errorf("MBatchPlans = %d, want 2", got)
	}
	if got := tel.Counter(telemetry.MBatchErrors).Value(); got != 1 {
		t.Errorf("MBatchErrors = %d, want 1", got)
	}
}

// TestPlanBatchPublishesCacheMetrics asserts a batch through explicit
// shared caches surfaces template and prediction traffic on the registry
// under the astra_plan_template_* / astra_predcache_* names, and that
// re-publishing does not double-count.
func TestPlanBatchPublishesCacheMetrics(t *testing.T) {
	tel := NewTelemetry()
	tc, pc := NewTemplateCache(0), NewPlanCache()
	reqs := make([]BatchRequest, 6)
	for i := range reqs {
		reqs[i] = BatchRequest{Job: WordCount1GB(), Objective: MinTime(0.01)}
	}
	if _, err := PlanBatch(context.Background(), reqs,
		WithTemplateCache(tc), WithPlanCache(pc), WithTelemetry(tel)); err != nil {
		t.Fatal(err)
	}
	hits := tel.Counter(telemetry.MPlanTemplateHits).Value()
	builds := tel.Counter(telemetry.MPlanTemplateBuilds).Value()
	if hits == 0 || builds == 0 {
		t.Fatalf("expected template traffic on the registry, got hits=%d builds=%d", hits, builds)
	}
	st := tc.Stats()
	if hits != int64(st.Hits) || builds != int64(st.Builds) {
		t.Fatalf("registry (hits=%d builds=%d) disagrees with cache stats %+v", hits, builds, st)
	}
	if tel.Counter(telemetry.MPredCacheHits).Value() == 0 {
		t.Error("expected prediction-cache hits on the registry")
	}
	// Idempotent republish.
	PublishCacheStats(tel, tc, pc)
	if got := tel.Counter(telemetry.MPlanTemplateHits).Value(); got != hits {
		t.Errorf("republish changed template hits: %d -> %d", hits, got)
	}
}

// TestSharedCachesAreDefault asserts plain Plan calls join the
// process-wide caches (second identical plan is a template hit) and that
// WithPrivateCaches opts out.
func TestSharedCachesAreDefault(t *testing.T) {
	tc, _ := SharedCaches()
	before := tc.Stats()
	job := WordCount10GB()
	if _, err := Plan(job, MinTime(0.05)); err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(job, MinTime(0.05)); err != nil {
		t.Fatal(err)
	}
	after := tc.Stats()
	if after.Hits+after.Misses == before.Hits+before.Misses {
		t.Fatal("default Plan calls did not touch the shared template cache")
	}
	if after.Hits == before.Hits {
		t.Fatal("repeated identical Plan was not a shared-cache template hit")
	}

	mid := tc.Stats()
	if _, err := Plan(job, MinTime(0.05), WithPrivateCaches()); err != nil {
		t.Fatal(err)
	}
	if got := tc.Stats(); got != mid {
		t.Fatalf("WithPrivateCaches still touched the shared cache: %+v -> %+v", mid, got)
	}
}
