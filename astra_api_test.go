package astra

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"astra/internal/model"
)

func seedJobs() []Job {
	return []Job{WordCount1GB(), WordCount10GB(), WordCount20GB(), Sort100GB(), Query25GB()}
}

// TestParallelPlanMatchesSerialAcrossSeedWorkloads is the top-level
// determinism guarantee: for every seed workload and both objective
// goals, the parallel engine chooses the bit-identical configuration the
// serial engine does.
func TestParallelPlanMatchesSerialAcrossSeedWorkloads(t *testing.T) {
	for _, job := range seedJobs() {
		for _, obj := range []Objective{MinTime(1e9), MinCost(1e6 * time.Hour)} {
			serial, err := Plan(job, obj, WithParallelism(1))
			if err != nil {
				t.Fatalf("%s %v serial: %v", job.Profile.Name, obj.Goal, err)
			}
			par, err := Plan(job, obj, WithParallelism(8))
			if err != nil {
				t.Fatalf("%s %v parallel: %v", job.Profile.Name, obj.Goal, err)
			}
			if par.Config != serial.Config {
				t.Fatalf("%s %v: parallel plan %v, serial plan %v",
					job.Profile.Name, obj.Goal, par.Config, serial.Config)
			}
		}
	}
}

// TestDeprecatedPlanWithMatchesOptions exercises the compatibility shim:
// the pre-redesign entry point must keep returning exactly what the
// options API returns.
func TestDeprecatedPlanWithMatchesOptions(t *testing.T) {
	job := WordCount1GB()
	obj := MinTime(1e9)
	params := model.DefaultParams(job)

	old, err := PlanWith(params, obj, SolverAuto)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Plan(job, obj, WithParams(params), WithSolver(SolverAuto))
	if err != nil {
		t.Fatal(err)
	}
	if old.Config != cur.Config {
		t.Fatalf("PlanWith chose %v, Plan chose %v", old.Config, cur.Config)
	}
}

func TestPlanRejectsMalformedObjectives(t *testing.T) {
	job := WordCount1GB()
	if _, err := Plan(job, MinTime(-0.01)); !errors.Is(err, ErrInvalidObjective) {
		t.Fatalf("negative budget: err = %v, want ErrInvalidObjective", err)
	}
	if _, err := Plan(job, MinCost(0)); !errors.Is(err, ErrInvalidObjective) {
		t.Fatalf("zero deadline: err = %v, want ErrInvalidObjective", err)
	}
	if _, err := Plan(job, MinCost(-time.Minute)); !errors.Is(err, ErrInvalidObjective) {
		t.Fatalf("negative deadline: err = %v, want ErrInvalidObjective", err)
	}
}

func TestPlanReportsInfeasibility(t *testing.T) {
	// A zero budget is well-formed but unsatisfiable: every plan costs
	// something.
	if _, err := Plan(WordCount1GB(), MinTime(0)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestWithPlanCacheShared(t *testing.T) {
	job := WordCount1GB()
	cache := NewPlanCache()
	if _, err := Plan(job, MinTime(1e9), WithPlanCache(cache)); err != nil {
		t.Fatal(err)
	}
	_, missesFirst := cache.Stats()
	if missesFirst == 0 {
		t.Fatal("first plan never consulted the cache")
	}
	if _, err := Plan(job, MinTime(1e9), WithPlanCache(cache)); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Stats(); misses != missesFirst {
		t.Fatalf("re-plan recomputed predictions: misses %d -> %d", missesFirst, misses)
	}
}

// TestPlanContextCancelPrompt verifies a cancelled search returns
// ctx.Err() quickly and leaves no goroutines behind.
func TestPlanContextCancelPrompt(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := PlanContext(ctx, Sort100GB(), MinCost(1e6*time.Hour), WithParallelism(4))
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled or nil (search may win the race)", err)
	}
	if errors.Is(err, context.Canceled) && elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// The pool always joins its workers before returning; give the runtime
	// a moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines: %d before, %d after cancellation", before, after)
	}
}

func TestPlanContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlanContext(ctx, WordCount1GB(), MinTime(1e9)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancel(t *testing.T) {
	job := WordCount1GB()
	plan, err := Plan(job, MinTime(1e9))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, job, plan.Config); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same inputs still run to completion with a live context.
	rep, err := RunContext(context.Background(), job, plan.Config)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JCT <= 0 {
		t.Fatalf("report JCT = %v", rep.JCT)
	}
}

func TestFrontierContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FrontierContext(ctx, WordCount1GB(), WithFrontierSize(8)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelFrontierMatchesSerial pins the frontier sweep's determinism
// contract at the public API.
func TestParallelFrontierMatchesSerial(t *testing.T) {
	job := WordCount1GB()
	serial, err := FrontierContext(context.Background(), job, WithFrontierSize(8), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := FrontierContext(context.Background(), job, WithFrontierSize(8), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Points) != len(par.Points) {
		t.Fatalf("frontier sizes: serial %d, parallel %d", len(serial.Points), len(par.Points))
	}
	for i := range serial.Points {
		if serial.Points[i].Config != par.Points[i].Config {
			t.Fatalf("frontier point %d: serial %v, parallel %v", i, serial.Points[i].Config, par.Points[i].Config)
		}
	}
}

// TestDeprecatedFrontierWithMatchesOptions exercises the compatibility
// shims: the positional frontier entry points must keep returning
// exactly what the options API returns.
func TestDeprecatedFrontierWithMatchesOptions(t *testing.T) {
	job := WordCount1GB()
	old, err := FrontierWith(job, 8)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Frontier(job, WithFrontierSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != len(cur.Points) {
		t.Fatalf("frontier sizes: FrontierWith %d, Frontier %d", len(old), len(cur.Points))
	}
	for i := range old {
		if old[i].Config != cur.Points[i].Config {
			t.Fatalf("point %d: FrontierWith %v, Frontier %v", i, old[i].Config, cur.Points[i].Config)
		}
	}
}

// TestFrontierReportsInfeasibility: the frontier boundary must surface
// the exported sentinel, not leak a bare internal error.
func TestFrontierReportsInfeasibility(t *testing.T) {
	job := WordCount1GB()
	params := model.DefaultParams(job)
	// A single input object over the store's 5 TB object limit makes
	// every orchestration infeasible, so the config graph is empty.
	params.Job.ObjectSize = 6 << 40
	if _, err := Frontier(job, WithParams(params)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanPipelineContextCancelled(t *testing.T) {
	p := Pipeline{
		Stages: []PipelineStage{
			{Name: "filter", Profile: Grep},
			{Name: "aggregate", Profile: WordCount},
		},
		InputObjects: 16, InputBytes: 16 << 20,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlanPipelineContext(ctx, p, MinTime(1e9)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same pipeline plans fine with a live context and matches the
	// non-context entry point.
	got, err := PlanPipelineContext(context.Background(), p, MinTime(1e9), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := PlanPipeline(p, MinTime(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Stages) != len(want.Stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(got.Stages), len(want.Stages))
	}
	for i := range got.Stages {
		if got.Stages[i].Config != want.Stages[i].Config {
			t.Fatalf("stage %d: %v vs %v", i, got.Stages[i].Config, want.Stages[i].Config)
		}
	}
}
