// Package optimizer is Astra's decision engine (Sec. IV): given a job,
// a model parameterization and a user objective — minimize completion
// time under a budget, or minimize cost under a completion-time QoS
// threshold — it searches the configuration space and returns the
// execution plan (memory tiers and degrees of parallelism).
//
// Four solvers are provided:
//
//   - Algorithm1: the paper's method — Dijkstra on the Fig. 5 DAG with
//     iterative removal of constraint-violating edges.
//   - Yen: k-shortest paths on the same DAG until one satisfies the
//     constraint; exact on the DAG, the reference for Algorithm 1's gap.
//   - Rerank: top-K DAG paths re-evaluated with the exact engine model,
//     best feasible wins; repairs the DAG's separability approximations.
//   - Brute: exhaustive enumeration with the exact model; exponential in
//     nothing but simply large, so it is guarded by a work limit and used
//     to validate the others on small instances.
//
// The engine is concurrent: DAG construction and candidate evaluation
// shard across a bounded worker pool (Planner.Parallelism), model
// predictions memoize through a sharded cache keyed by (Config, params
// fingerprint), and built DAGs are reused across the calibration loop and
// Algorithm 1's destructive rounds via cloning. Every search accepts a
// context (PlanContext) for cancellation and deadlines. Results are
// deterministic: a Planner returns the identical Plan at every
// parallelism degree.
package optimizer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"astra/internal/dag"
	"astra/internal/graph"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/parallel"
	"astra/internal/pricing"
	"astra/internal/telemetry"
)

// Goal selects the optimization problem.
type Goal int

const (
	// MinTimeUnderBudget is the Eq. 16 problem: fastest plan whose
	// predicted cost stays within Budget.
	MinTimeUnderBudget Goal = iota
	// MinCostUnderDeadline is the Eq. 20 problem: cheapest plan whose
	// predicted completion time stays within Deadline.
	MinCostUnderDeadline
)

// String names the goal.
func (g Goal) String() string {
	if g == MinCostUnderDeadline {
		return "min-cost-under-deadline"
	}
	return "min-time-under-budget"
}

// Objective is a user requirement: a goal plus its constraint.
type Objective struct {
	Goal Goal
	// Budget constrains MinTimeUnderBudget plans.
	Budget pricing.USD
	// Deadline constrains MinCostUnderDeadline plans.
	Deadline time.Duration
}

// ErrInvalidObjective is wrapped by Validate (and therefore by Plan) when
// an objective is malformed: a negative budget for MinTimeUnderBudget, or
// a non-positive deadline for MinCostUnderDeadline. Callers should test
// with errors.Is.
var ErrInvalidObjective = errors.New("optimizer: invalid objective")

// Validate reports whether the objective is well-formed. A zero budget is
// allowed (it is merely infeasible); a negative one is a caller bug, as is
// a deadline that has already passed before the job starts.
func (obj Objective) Validate() error {
	switch obj.Goal {
	case MinTimeUnderBudget:
		if obj.Budget < 0 {
			return fmt.Errorf("%w: %s with negative budget %v", ErrInvalidObjective, obj.Goal, obj.Budget)
		}
	case MinCostUnderDeadline:
		if obj.Deadline <= 0 {
			return fmt.Errorf("%w: %s with non-positive deadline %v", ErrInvalidObjective, obj.Goal, obj.Deadline)
		}
	default:
		return fmt.Errorf("%w: unknown goal %d", ErrInvalidObjective, int(obj.Goal))
	}
	return nil
}

// Solver selects the search strategy.
type Solver int

const (
	// Algorithm1 is the paper's solver.
	Algorithm1 Solver = iota
	// Yen runs k-shortest paths until the constraint holds.
	Yen
	// Rerank re-evaluates the top DAG paths with the exact model.
	Rerank
	// Brute exhaustively enumerates with the exact model.
	Brute
	// Auto runs Algorithm 1 and falls back to CSP when the heuristic's
	// destructive edge removal disconnects the graph before finding a
	// feasible path (a known failure mode, quantified in ablation A1).
	Auto
	// CSP solves the weight-constrained shortest path on the DAG exactly
	// with label-setting and Pareto dominance pruning.
	CSP
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case Yen:
		return "yen-ksp"
	case Rerank:
		return "rerank"
	case Brute:
		return "brute-force"
	case Auto:
		return "algorithm1+csp"
	case CSP:
		return "label-setting-csp"
	default:
		return "algorithm1"
	}
}

// ErrNoFeasiblePlan is returned when no configuration satisfies the
// objective's constraint.
var ErrNoFeasiblePlan = errors.New("optimizer: no feasible plan")

// Plan is the optimizer's output.
type Plan struct {
	Config    mapreduce.Config
	Objective Objective
	Solver    Solver
	// Paper is the aggregate model's estimate for the chosen config.
	Paper model.Prediction
	// Exact is the engine-faithful estimate; this is what execution will
	// measure.
	Exact model.Prediction
	// Search describes how the plan was found (see SearchStats); the
	// cache and calibration fields are always populated, the search
	// counters only when the Planner carried a telemetry registry.
	Search SearchStats
}

// Summary renders the plan like a Table III column.
func (p Plan) Summary() string {
	return fmt.Sprintf("%s | predicted JCT %v, cost %v",
		p.Config, p.Exact.JCT().Round(time.Millisecond), p.Exact.TotalCost())
}

// Planner searches plans for one job. A Planner memoizes its model
// evaluations and DAG builds, so reusing one Planner across objectives
// (or calibration rounds) is much cheaper than constructing fresh ones;
// it is safe for concurrent use as long as its exported fields are not
// mutated mid-flight.
type Planner struct {
	Params model.Params
	Solver Solver
	// DAGOptions tunes the configuration graph (tier subset, caps).
	DAGOptions dag.Options
	// Parallelism bounds the engine's worker pool: 0 uses every available
	// core, 1 forces the serial path. The chosen plan is identical at
	// every setting.
	Parallelism int
	// Cache memoizes model predictions across solver passes. Left nil, a
	// private cache is created on first use; set it to share one cache
	// across planners for the same parameterization family.
	Cache *model.PredictionCache
	// Templates, when non-nil, shares frozen DAG builds across planner
	// instances: a template hit skips BuildContext entirely and hands
	// the solvers the shared CSR graph (destructive searches already run
	// on a Clone). The per-planner dagCache remains as an L1 in front of
	// it, so a planner reused across objectives does not even pay the
	// fingerprint hash twice.
	Templates *TemplateCache
	// YenMaxPaths bounds the Yen scan (default 200).
	YenMaxPaths int
	// RerankPaths is the K for the rerank solver (default 50).
	RerankPaths int
	// BruteWorkLimit bounds brute-force enumeration (default 2e6 configs).
	BruteWorkLimit int
	// AggregateModel makes the DAG edges use the literal Eq. 9 aggregate
	// reduce-phase charging instead of the per-step default — the model
	// the paper wrote down verbatim, kept for the A3 planning ablation.
	AggregateModel bool
	// Tel, when non-nil, receives spans and counters for every search
	// phase (DAG builds, solver rounds, pool batches, cache traffic).
	// Telemetry is observe-only: the chosen plan is bit-identical with
	// Tel set or nil. Left nil, instrumentation costs one context lookup
	// per phase.
	Tel *telemetry.Registry

	// mu guards the lazily-built memoization state below.
	mu       sync.Mutex
	dagCache map[dagCacheKey]*dag.DAG
	fp       uint64
	fpOK     bool
}

// dagCacheKey identifies one memoized DAG build. DAGOptions and Params
// are fixed for a Planner's lifetime, so the mode and model flavor are
// the only variables.
type dagCacheKey struct {
	mode      dag.Mode
	aggregate bool
}

// paperModel builds the DAG's edge-weight model per the planner's flags.
func (pl *Planner) paperModel() *model.Paper {
	m := model.NewPaper(pl.Params)
	m.Aggregate = pl.AggregateModel
	return m
}

// New creates a planner with the paper's solver.
func New(params model.Params) *Planner {
	return &Planner{Params: params, Solver: Algorithm1}
}

// fingerprint memoizes the parameter fingerprint.
func (pl *Planner) fingerprint() uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !pl.fpOK {
		pl.fp = pl.Params.Fingerprint()
		pl.fpOK = true
	}
	return pl.fp
}

// cache returns the prediction cache, creating a private one on demand.
func (pl *Planner) cache() *model.PredictionCache {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.Cache == nil {
		pl.Cache = model.NewPredictionCache()
	}
	return pl.Cache
}

// exactPredictor returns the memoized engine-faithful predictor.
func (pl *Planner) exactPredictor() model.Predictor {
	return pl.cache().Wrap(model.NewExact(pl.Params), pl.fingerprint(), "exact")
}

// paperPredictor returns the memoized whole-configuration paper model (the
// default per-step formulation, as finish has always used).
func (pl *Planner) paperPredictor() model.Predictor {
	return pl.cache().Wrap(model.NewPaper(pl.Params), pl.fingerprint(), "paper")
}

// dagOpts resolves the DAG options, defaulting the build parallelism to
// the planner's pool size.
func (pl *Planner) dagOpts() dag.Options {
	opts := pl.DAGOptions
	if opts.Parallelism == 0 {
		opts.Parallelism = pl.Parallelism
	}
	return opts
}

// buildDAG returns the memoized DAG for a mode, building it on first use.
// The returned DAG is pristine and shared: read-only searches may use it
// directly; destructive searches must run on a clone (see WithGraph).
func (pl *Planner) buildDAG(ctx context.Context, mode dag.Mode) (*dag.DAG, error) {
	key := dagCacheKey{mode: mode, aggregate: pl.AggregateModel}
	pl.mu.Lock()
	if pl.dagCache == nil {
		pl.dagCache = make(map[dagCacheKey]*dag.DAG)
	}
	if d, ok := pl.dagCache[key]; ok {
		pl.mu.Unlock()
		return d, nil
	}
	pl.mu.Unlock()
	// Built outside the lock: a long build must not block concurrent
	// plans for the other mode. At worst two racing callers build the
	// same DAG and one wins the cache slot; both results are identical.
	// With a shared template cache attached, the build is resolved (and
	// deduplicated across planner instances) there instead.
	var d *dag.DAG
	var err error
	opts := pl.dagOpts()
	if tc := pl.Templates; tc != nil {
		d, err = tc.Get(ctx, TemplateKey{
			Params:    pl.fingerprint(),
			Opts:      opts.Fingerprint(),
			Mode:      mode,
			Aggregate: pl.AggregateModel,
		}, func(ctx context.Context) (*dag.DAG, error) {
			return dag.BuildContext(ctx, pl.paperModel(), mode, opts)
		})
	} else {
		d, err = dag.BuildContext(ctx, pl.paperModel(), mode, opts)
	}
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	if prev, ok := pl.dagCache[key]; ok {
		d = prev
	} else {
		pl.dagCache[key] = d
	}
	pl.mu.Unlock()
	return d, nil
}

// Plan solves the objective with a background context; see PlanContext.
func (pl *Planner) Plan(obj Objective) (*Plan, error) {
	return pl.PlanContext(context.Background(), obj)
}

// PlanContext solves the objective, honoring cancellation and deadlines
// on ctx: a cancelled search stops promptly, leaks no goroutines, and
// returns ctx.Err().
//
// DAG-based solvers enforce the constraint against the paper model, whose
// separability estimators can under-predict; PlanContext therefore
// verifies the chosen configuration against the exact engine model and,
// on a violation, re-solves with a proportionally tightened internal
// constraint until the user's requirement holds (a small calibration
// loop — the "dynamically adjusted and refined" modeling the paper's
// discussion section sketches). The memoized DAG and prediction caches
// make these re-solves incremental rather than from-scratch.
func (pl *Planner) PlanContext(ctx context.Context, obj Objective) (*Plan, error) {
	if err := pl.Params.Validate(); err != nil {
		return nil, err
	}
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	tel := pl.Tel
	ctx = telemetry.NewContext(ctx, tel)
	planSpan := tel.StartSpan("plan")
	defer planSpan.End()
	start := time.Now()
	cache := pl.cache()
	hits0, misses0 := cache.Stats()
	evict0 := cache.Evictions()
	var snap0 telemetry.Snapshot
	if tel != nil {
		snap0 = tel.Snapshot()
	}
	solve := func(o Objective) (mapreduce.Config, error) {
		switch pl.Solver {
		case Brute:
			return pl.bruteSolve(ctx, o)
		case Rerank:
			return pl.rerankSolve(ctx, o)
		default:
			return pl.dagSolve(ctx, o)
		}
	}
	// Brute and Rerank already enforce the constraint under the exact
	// model; no calibration needed.
	needCalibration := pl.Solver != Brute && pl.Solver != Rerank

	// attach stamps the plan with this search's statistics: the cache
	// and calibration fields come from always-on counters, the search
	// counters from registry deltas when telemetry is attached.
	attach := func(plan *Plan, iter int) *Plan {
		st := SearchStats{
			Solver:            pl.Solver,
			Wall:              time.Since(start),
			CalibrationRounds: int64(iter),
		}
		h1, m1 := cache.Stats()
		st.CacheHits = int64(h1 - hits0)
		st.CacheMisses = int64(m1 - misses0)
		st.CacheEvictions = int64(cache.Evictions() - evict0)
		if tel != nil {
			tel.Counter(telemetry.MPlanSolves).Inc()
			tel.Counter(telemetry.MPlanCalibrations).Add(int64(iter))
			tel.Counter(telemetry.MPlanCacheHits).Add(st.CacheHits)
			tel.Counter(telemetry.MPlanCacheMisses).Add(st.CacheMisses)
			tel.Counter(telemetry.MPlanCacheEvictions).Add(st.CacheEvictions)
			snap1 := tel.Snapshot()
			st.fillFromDeltas(snap1, snap0)
			st.Telemetry = true
		}
		plan.Search = st
		return plan
	}

	internal := obj
	const maxCalibrations = 8
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg, err := solve(internal)
		if err != nil {
			return nil, err
		}
		plan, err := pl.finish(cfg, obj)
		if err != nil {
			return nil, err
		}
		if !needCalibration || iter >= maxCalibrations {
			return attach(plan, iter), nil
		}
		switch obj.Goal {
		case MinTimeUnderBudget:
			actual := plan.Exact.TotalCost()
			if actual <= obj.Budget {
				return attach(plan, iter), nil
			}
			internal.Budget = pricing.USD(float64(internal.Budget) * float64(obj.Budget) / float64(actual) * 0.995)
		case MinCostUnderDeadline:
			actual := plan.Exact.JCT()
			if actual <= obj.Deadline {
				return attach(plan, iter), nil
			}
			scale := obj.Deadline.Seconds() / actual.Seconds() * 0.995
			internal.Deadline = time.Duration(float64(internal.Deadline) * scale)
		}
	}
}

// finish attaches both model predictions to a chosen configuration.
func (pl *Planner) finish(cfg mapreduce.Config, obj Objective) (*Plan, error) {
	paperPred, err := pl.paperPredictor().Predict(cfg)
	if err != nil {
		return nil, err
	}
	exactPred, err := pl.exactPredictor().Predict(cfg)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Config:    cfg,
		Objective: obj,
		Solver:    pl.Solver,
		Paper:     paperPred,
		Exact:     exactPred,
	}, nil
}

// mode and budget translate an objective into DAG terms.
func (obj Objective) mode() dag.Mode {
	if obj.Goal == MinCostUnderDeadline {
		return dag.MinimizeCost
	}
	return dag.MinimizeTime
}

func (obj Objective) sideBudget() float64 {
	if obj.Goal == MinCostUnderDeadline {
		return obj.Deadline.Seconds()
	}
	return float64(obj.Budget)
}

// searchErr translates a graph search failure, passing cancellation
// through untouched.
func searchErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if errors.Is(err, graph.ErrInfeasible) || errors.Is(err, graph.ErrNoPath) {
		return fmt.Errorf("%w: %v", ErrNoFeasiblePlan, err)
	}
	return err
}

// dagSolve runs Algorithm 1, CSP or Yen on the Fig. 5 DAG. The build is
// memoized; destructive searches run on a clone.
func (pl *Planner) dagSolve(ctx context.Context, obj Objective) (mapreduce.Config, error) {
	d, err := pl.buildDAG(ctx, obj.mode())
	if err != nil {
		return mapreduce.Config{}, err
	}
	maxPaths := pl.YenMaxPaths
	if maxPaths <= 0 {
		maxPaths = 200
	}
	tel := telemetry.FromContext(ctx)
	var path graph.Path
	switch pl.Solver {
	case Yen:
		sp := tel.StartSpan("plan/solve/yen")
		path, err = d.G.YenUntilCtx(ctx, d.Src, d.Dst, obj.sideBudget(), maxPaths, pl.Parallelism)
		sp.End()
	case CSP:
		sp := tel.StartSpan("plan/solve/csp")
		path, err = d.G.ConstrainedShortestPathCtx(ctx, d.Src, d.Dst, obj.sideBudget())
		sp.End()
	case Auto:
		// Algorithm 1 mutates the graph; run it on a clone so the exact
		// label-setting fallback (and later calibration rounds) reuse the
		// pristine memoized build.
		work := d.WithGraph(d.G.Clone())
		sp := tel.StartSpan("plan/solve/algorithm1")
		path, err = work.G.Algorithm1Ctx(ctx, work.Src, work.Dst, obj.sideBudget())
		sp.End()
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return mapreduce.Config{}, cerr
			}
			sp := tel.StartSpan("plan/solve/csp")
			path, err = d.G.ConstrainedShortestPathCtx(ctx, d.Src, d.Dst, obj.sideBudget())
			sp.End()
		}
	default:
		work := d.WithGraph(d.G.Clone())
		sp := tel.StartSpan("plan/solve/algorithm1")
		path, err = work.G.Algorithm1Ctx(ctx, work.Src, work.Dst, obj.sideBudget())
		sp.End()
	}
	if err != nil {
		return mapreduce.Config{}, searchErr(ctx, err)
	}
	return d.Decode(path)
}

// rerankSolve takes the top-K DAG paths, re-evaluates each with the exact
// model in parallel, and returns the best configuration that satisfies
// the constraint under the exact model. The scan order is fixed, so the
// result does not depend on the pool size.
func (pl *Planner) rerankSolve(ctx context.Context, obj Objective) (mapreduce.Config, error) {
	d, err := pl.buildDAG(ctx, obj.mode())
	if err != nil {
		return mapreduce.Config{}, err
	}
	k := pl.RerankPaths
	if k <= 0 {
		k = 50
	}
	sp := telemetry.FromContext(ctx).StartSpan("plan/solve/rerank")
	defer sp.End()
	paths, err := d.G.YenKSPCtx(ctx, d.Src, d.Dst, k, pl.Parallelism)
	if err != nil {
		return mapreduce.Config{}, err
	}
	if len(paths) == 0 {
		return mapreduce.Config{}, ErrNoFeasiblePlan
	}
	exact := pl.exactPredictor()
	type scored struct {
		cfg  mapreduce.Config
		pred model.Prediction
		ok   bool
	}
	cands := make([]scored, len(paths))
	if err := parallel.ForEach(ctx, len(paths), pl.Parallelism, func(i int) {
		cfg, err := d.Decode(paths[i])
		if err != nil {
			return
		}
		pred, err := exact.Predict(cfg)
		if err != nil {
			return
		}
		cands[i] = scored{cfg: cfg, pred: pred, ok: true}
	}); err != nil {
		return mapreduce.Config{}, err
	}
	var best mapreduce.Config
	bestObjVal := 0.0
	found := false
	for _, c := range cands {
		if !c.ok {
			continue
		}
		objVal, constraint := splitObjective(obj, c.pred)
		if constraint {
			if !found || objVal < bestObjVal {
				best, bestObjVal, found = c.cfg, objVal, true
			}
		}
	}
	if !found {
		return mapreduce.Config{}, ErrNoFeasiblePlan
	}
	return best, nil
}

// splitObjective evaluates a prediction against an objective, returning
// the objective value and whether the constraint holds.
func splitObjective(obj Objective, pred model.Prediction) (float64, bool) {
	if obj.Goal == MinCostUnderDeadline {
		return float64(pred.TotalCost()), pred.TotalSec() <= obj.Deadline.Seconds()
	}
	return pred.TotalSec(), float64(pred.TotalCost()) <= float64(obj.Budget)
}

// bruteCandidate is one (kM, kR) pair's best configuration under the
// exact model, with val/tie carrying the serial comparison state.
type bruteCandidate struct {
	found    bool
	cfg      mapreduce.Config
	val, tie float64
}

// better reports whether challenger beats incumbent under the serial
// scan's strict-improvement rule (ties keep the earlier candidate).
func (c bruteCandidate) better(than bruteCandidate) bool {
	if !c.found {
		return false
	}
	if !than.found {
		return true
	}
	return c.val < than.val || (c.val == than.val && c.tie < than.tie)
}

// bruteSolve enumerates every configuration with the exact model,
// sharding the (kM, kR) enumeration across the worker pool. Each pair's
// inner tier scan runs in the serial order, and pair results fold in
// ascending (kM, kR) order, so the winner is exactly the serial scan's.
func (pl *Planner) bruteSolve(ctx context.Context, obj Objective) (mapreduce.Config, error) {
	tiers := pl.DAGOptions.Tiers
	if len(tiers) == 0 {
		tiers = pl.Params.Sheet.Lambda.MemoryTiers()
	}
	n := pl.Params.Job.NumObjects
	maxKM := pl.DAGOptions.MaxKM
	if maxKM <= 0 || maxKM > n {
		maxKM = n
	}
	maxKR := pl.DAGOptions.MaxKR
	if maxKR <= 0 || maxKR > n {
		maxKR = n
	}
	limit := pl.BruteWorkLimit
	if limit <= 0 {
		limit = 2_000_000
	}
	combos := maxKM * maxKR * len(tiers) * len(tiers) * len(tiers)
	if combos > limit {
		return mapreduce.Config{}, fmt.Errorf(
			"optimizer: brute force over %d configurations exceeds the work limit %d; restrict DAGOptions",
			combos, limit)
	}
	sp := telemetry.FromContext(ctx).StartSpan("plan/solve/brute")
	defer sp.End()
	exact := pl.exactPredictor()
	pairs := make([]bruteCandidate, maxKM*maxKR)
	if err := parallel.ForEach(ctx, len(pairs), pl.Parallelism, func(pi int) {
		kM := pi/maxKR + 1
		kR := pi%maxKR + 1
		orch, err := mapreduce.OrchestrateFor(pl.Params.Job.Profile, n, kM, kR)
		if err != nil {
			return
		}
		if model.Feasible(pl.Params, orch) != nil {
			return
		}
		var best bruteCandidate
		for _, i := range tiers {
			if ctx.Err() != nil {
				return
			}
			for _, a := range tiers {
				for _, s := range tiers {
					cfg := mapreduce.Config{
						MapperMemMB: i, CoordMemMB: a, ReducerMemMB: s,
						ObjsPerMapper: kM, ObjsPerReducer: kR,
					}
					pred, err := exact.Predict(cfg)
					if err != nil {
						continue
					}
					val, ok := splitObjective(obj, pred)
					if !ok {
						continue
					}
					tie := float64(pred.TotalCost())
					if obj.Goal == MinCostUnderDeadline {
						tie = pred.TotalSec()
					}
					if cand := (bruteCandidate{found: true, cfg: cfg, val: val, tie: tie}); cand.better(best) {
						best = cand
					}
				}
			}
		}
		pairs[pi] = best
	}); err != nil {
		return mapreduce.Config{}, err
	}
	var best bruteCandidate
	for _, cand := range pairs {
		if cand.better(best) {
			best = cand
		}
	}
	if !best.found {
		return mapreduce.Config{}, ErrNoFeasiblePlan
	}
	return best.cfg, nil
}
