// Package optimizer is Astra's decision engine (Sec. IV): given a job,
// a model parameterization and a user objective — minimize completion
// time under a budget, or minimize cost under a completion-time QoS
// threshold — it searches the configuration space and returns the
// execution plan (memory tiers and degrees of parallelism).
//
// Four solvers are provided:
//
//   - Algorithm1: the paper's method — Dijkstra on the Fig. 5 DAG with
//     iterative removal of constraint-violating edges.
//   - Yen: k-shortest paths on the same DAG until one satisfies the
//     constraint; exact on the DAG, the reference for Algorithm 1's gap.
//   - Rerank: top-K DAG paths re-evaluated with the exact engine model,
//     best feasible wins; repairs the DAG's separability approximations.
//   - Brute: exhaustive enumeration with the exact model; exponential in
//     nothing but simply large, so it is guarded by a work limit and used
//     to validate the others on small instances.
package optimizer

import (
	"errors"
	"fmt"
	"time"

	"astra/internal/dag"
	"astra/internal/graph"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/pricing"
)

// Goal selects the optimization problem.
type Goal int

const (
	// MinTimeUnderBudget is the Eq. 16 problem: fastest plan whose
	// predicted cost stays within Budget.
	MinTimeUnderBudget Goal = iota
	// MinCostUnderDeadline is the Eq. 20 problem: cheapest plan whose
	// predicted completion time stays within Deadline.
	MinCostUnderDeadline
)

// String names the goal.
func (g Goal) String() string {
	if g == MinCostUnderDeadline {
		return "min-cost-under-deadline"
	}
	return "min-time-under-budget"
}

// Objective is a user requirement: a goal plus its constraint.
type Objective struct {
	Goal Goal
	// Budget constrains MinTimeUnderBudget plans.
	Budget pricing.USD
	// Deadline constrains MinCostUnderDeadline plans.
	Deadline time.Duration
}

// Solver selects the search strategy.
type Solver int

const (
	// Algorithm1 is the paper's solver.
	Algorithm1 Solver = iota
	// Yen runs k-shortest paths until the constraint holds.
	Yen
	// Rerank re-evaluates the top DAG paths with the exact model.
	Rerank
	// Brute exhaustively enumerates with the exact model.
	Brute
	// Auto runs Algorithm 1 and falls back to CSP when the heuristic's
	// destructive edge removal disconnects the graph before finding a
	// feasible path (a known failure mode, quantified in ablation A1).
	Auto
	// CSP solves the weight-constrained shortest path on the DAG exactly
	// with label-setting and Pareto dominance pruning.
	CSP
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case Yen:
		return "yen-ksp"
	case Rerank:
		return "rerank"
	case Brute:
		return "brute-force"
	case Auto:
		return "algorithm1+csp"
	case CSP:
		return "label-setting-csp"
	default:
		return "algorithm1"
	}
}

// ErrNoFeasiblePlan is returned when no configuration satisfies the
// objective's constraint.
var ErrNoFeasiblePlan = errors.New("optimizer: no feasible plan")

// Plan is the optimizer's output.
type Plan struct {
	Config    mapreduce.Config
	Objective Objective
	Solver    Solver
	// Paper is the aggregate model's estimate for the chosen config.
	Paper model.Prediction
	// Exact is the engine-faithful estimate; this is what execution will
	// measure.
	Exact model.Prediction
}

// Summary renders the plan like a Table III column.
func (p Plan) Summary() string {
	return fmt.Sprintf("%s | predicted JCT %v, cost %v",
		p.Config, p.Exact.JCT().Round(time.Millisecond), p.Exact.TotalCost())
}

// Planner searches plans for one job.
type Planner struct {
	Params model.Params
	Solver Solver
	// DAGOptions tunes the configuration graph (tier subset, caps).
	DAGOptions dag.Options
	// YenMaxPaths bounds the Yen scan (default 200).
	YenMaxPaths int
	// RerankPaths is the K for the rerank solver (default 50).
	RerankPaths int
	// BruteWorkLimit bounds brute-force enumeration (default 2e6 configs).
	BruteWorkLimit int
	// AggregateModel makes the DAG edges use the literal Eq. 9 aggregate
	// reduce-phase charging instead of the per-step default — the model
	// the paper wrote down verbatim, kept for the A3 planning ablation.
	AggregateModel bool
}

// paperModel builds the DAG's edge-weight model per the planner's flags.
func (pl *Planner) paperModel() *model.Paper {
	m := model.NewPaper(pl.Params)
	m.Aggregate = pl.AggregateModel
	return m
}

// New creates a planner with the paper's solver.
func New(params model.Params) *Planner {
	return &Planner{Params: params, Solver: Algorithm1}
}

// Plan solves the objective.
//
// DAG-based solvers enforce the constraint against the paper model, whose
// separability estimators can under-predict; Plan therefore verifies the
// chosen configuration against the exact engine model and, on a
// violation, re-solves with a proportionally tightened internal
// constraint until the user's requirement holds (a small calibration
// loop — the "dynamically adjusted and refined" modeling the paper's
// discussion section sketches).
func (pl *Planner) Plan(obj Objective) (*Plan, error) {
	if err := pl.Params.Validate(); err != nil {
		return nil, err
	}
	solve := func(o Objective) (mapreduce.Config, error) {
		switch pl.Solver {
		case Brute:
			return pl.bruteSolve(o)
		case Rerank:
			return pl.rerankSolve(o)
		default:
			return pl.dagSolve(o)
		}
	}
	// Brute and Rerank already enforce the constraint under the exact
	// model; no calibration needed.
	needCalibration := pl.Solver != Brute && pl.Solver != Rerank

	internal := obj
	const maxCalibrations = 8
	for iter := 0; ; iter++ {
		cfg, err := solve(internal)
		if err != nil {
			return nil, err
		}
		plan, err := pl.finish(cfg, obj)
		if err != nil {
			return nil, err
		}
		if !needCalibration || iter >= maxCalibrations {
			return plan, nil
		}
		switch obj.Goal {
		case MinTimeUnderBudget:
			actual := plan.Exact.TotalCost()
			if actual <= obj.Budget {
				return plan, nil
			}
			internal.Budget = pricing.USD(float64(internal.Budget) * float64(obj.Budget) / float64(actual) * 0.995)
		case MinCostUnderDeadline:
			actual := plan.Exact.JCT()
			if actual <= obj.Deadline {
				return plan, nil
			}
			scale := obj.Deadline.Seconds() / actual.Seconds() * 0.995
			internal.Deadline = time.Duration(float64(internal.Deadline) * scale)
		}
	}
}

// finish attaches both model predictions to a chosen configuration.
func (pl *Planner) finish(cfg mapreduce.Config, obj Objective) (*Plan, error) {
	paperPred, err := model.NewPaper(pl.Params).Predict(cfg)
	if err != nil {
		return nil, err
	}
	exactPred, err := model.NewExact(pl.Params).Predict(cfg)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Config:    cfg,
		Objective: obj,
		Solver:    pl.Solver,
		Paper:     paperPred,
		Exact:     exactPred,
	}, nil
}

// mode and budget translate an objective into DAG terms.
func (obj Objective) mode() dag.Mode {
	if obj.Goal == MinCostUnderDeadline {
		return dag.MinimizeCost
	}
	return dag.MinimizeTime
}

func (obj Objective) sideBudget() float64 {
	if obj.Goal == MinCostUnderDeadline {
		return obj.Deadline.Seconds()
	}
	return float64(obj.Budget)
}

// dagSolve runs Algorithm 1 or Yen on the Fig. 5 DAG.
func (pl *Planner) dagSolve(obj Objective) (mapreduce.Config, error) {
	d, err := dag.Build(pl.paperModel(), obj.mode(), pl.DAGOptions)
	if err != nil {
		return mapreduce.Config{}, err
	}
	maxPaths := pl.YenMaxPaths
	if maxPaths <= 0 {
		maxPaths = 200
	}
	var path graph.Path
	switch pl.Solver {
	case Yen:
		path, err = d.G.YenUntil(d.Src, d.Dst, obj.sideBudget(), maxPaths)
	case CSP:
		path, err = d.G.ConstrainedShortestPath(d.Src, d.Dst, obj.sideBudget())
	case Auto:
		path, err = d.G.Algorithm1(d.Src, d.Dst, obj.sideBudget())
		if err != nil {
			// Algorithm 1 mutates the graph; rebuild for the exact
			// label-setting fallback.
			d, err = dag.Build(pl.paperModel(), obj.mode(), pl.DAGOptions)
			if err != nil {
				return mapreduce.Config{}, err
			}
			path, err = d.G.ConstrainedShortestPath(d.Src, d.Dst, obj.sideBudget())
		}
	default:
		path, err = d.G.Algorithm1(d.Src, d.Dst, obj.sideBudget())
	}
	if err != nil {
		if errors.Is(err, graph.ErrInfeasible) || errors.Is(err, graph.ErrNoPath) {
			return mapreduce.Config{}, fmt.Errorf("%w: %v", ErrNoFeasiblePlan, err)
		}
		return mapreduce.Config{}, err
	}
	return d.Decode(path)
}

// rerankSolve takes the top-K DAG paths, re-evaluates each with the exact
// model, and returns the best configuration that satisfies the constraint
// under the exact model.
func (pl *Planner) rerankSolve(obj Objective) (mapreduce.Config, error) {
	d, err := dag.Build(pl.paperModel(), obj.mode(), pl.DAGOptions)
	if err != nil {
		return mapreduce.Config{}, err
	}
	k := pl.RerankPaths
	if k <= 0 {
		k = 50
	}
	paths := d.G.YenKSP(d.Src, d.Dst, k)
	if len(paths) == 0 {
		return mapreduce.Config{}, ErrNoFeasiblePlan
	}
	exact := model.NewExact(pl.Params)
	var best mapreduce.Config
	bestObjVal := 0.0
	found := false
	for _, p := range paths {
		cfg, err := d.Decode(p)
		if err != nil {
			continue
		}
		pred, err := exact.Predict(cfg)
		if err != nil {
			continue
		}
		objVal, constraint := splitObjective(obj, pred)
		if constraint {
			if !found || objVal < bestObjVal {
				best, bestObjVal, found = cfg, objVal, true
			}
		}
	}
	if !found {
		return mapreduce.Config{}, ErrNoFeasiblePlan
	}
	return best, nil
}

// splitObjective evaluates a prediction against an objective, returning
// the objective value and whether the constraint holds.
func splitObjective(obj Objective, pred model.Prediction) (float64, bool) {
	if obj.Goal == MinCostUnderDeadline {
		return float64(pred.TotalCost()), pred.TotalSec() <= obj.Deadline.Seconds()
	}
	return pred.TotalSec(), float64(pred.TotalCost()) <= float64(obj.Budget)
}

// bruteSolve enumerates every configuration with the exact model.
func (pl *Planner) bruteSolve(obj Objective) (mapreduce.Config, error) {
	tiers := pl.DAGOptions.Tiers
	if len(tiers) == 0 {
		tiers = pl.Params.Sheet.Lambda.MemoryTiers()
	}
	n := pl.Params.Job.NumObjects
	maxKM := pl.DAGOptions.MaxKM
	if maxKM <= 0 || maxKM > n {
		maxKM = n
	}
	maxKR := pl.DAGOptions.MaxKR
	if maxKR <= 0 || maxKR > n {
		maxKR = n
	}
	limit := pl.BruteWorkLimit
	if limit <= 0 {
		limit = 2_000_000
	}
	combos := maxKM * maxKR * len(tiers) * len(tiers) * len(tiers)
	if combos > limit {
		return mapreduce.Config{}, fmt.Errorf(
			"optimizer: brute force over %d configurations exceeds the work limit %d; restrict DAGOptions",
			combos, limit)
	}
	exact := model.NewExact(pl.Params)
	var best mapreduce.Config
	bestVal := 0.0
	bestTie := 0.0 // the other metric, for breaking objective ties
	found := false
	for kM := 1; kM <= maxKM; kM++ {
		for kR := 1; kR <= maxKR; kR++ {
			orch, err := mapreduce.OrchestrateFor(pl.Params.Job.Profile, n, kM, kR)
			if err != nil {
				continue
			}
			if model.Feasible(pl.Params, orch) != nil {
				continue
			}
			for _, i := range tiers {
				for _, a := range tiers {
					for _, s := range tiers {
						cfg := mapreduce.Config{
							MapperMemMB: i, CoordMemMB: a, ReducerMemMB: s,
							ObjsPerMapper: kM, ObjsPerReducer: kR,
						}
						pred, err := exact.Predict(cfg)
						if err != nil {
							continue
						}
						val, ok := splitObjective(obj, pred)
						if !ok {
							continue
						}
						tie := float64(pred.TotalCost())
						if obj.Goal == MinCostUnderDeadline {
							tie = pred.TotalSec()
						}
						if !found || val < bestVal || (val == bestVal && tie < bestTie) {
							best, bestVal, bestTie, found = cfg, val, tie, true
						}
					}
				}
			}
		}
	}
	if !found {
		return mapreduce.Config{}, ErrNoFeasiblePlan
	}
	return best, nil
}
