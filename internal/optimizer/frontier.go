package optimizer

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"astra/internal/dag"
	"astra/internal/graph"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/parallel"
	"astra/internal/telemetry"
)

// FrontierPoint is one Pareto-optimal configuration: no other candidate
// is both faster and cheaper under the exact model.
type FrontierPoint struct {
	Config mapreduce.Config
	Pred   model.Prediction
}

// FrontierSpec configures one SweepFrontier call. The zero value plus
// Params is a valid spec: default size, private cache, no observer.
type FrontierSpec struct {
	// Params parameterizes the models and the configuration space.
	Params model.Params
	// Size is the target number of frontier points (default 24). It
	// steers how long gap refinement runs; the sweep may return more
	// points when dominance pruning keeps extras for free.
	Size int
	// DAG tunes the configuration graph (tier subset, caps).
	DAG dag.Options
	// Parallelism bounds the worker pool for every phase — the DAG
	// build, the constrained searches and the exact re-evaluations
	// (0 = all cores, 1 = serial). It is the single knob: when zero,
	// a non-zero DAG.Parallelism is adopted sweep-wide, so the two can
	// no longer disagree. The frontier is identical at every setting.
	Parallelism int
	// Cache memoizes model predictions. Left nil, a private cache is
	// created; set it to share one cache across sweeps and planners for
	// the same parameterization.
	Cache *model.PredictionCache
	// Templates, when non-nil, resolves the sweep's frozen cost-mode DAG
	// through the shared template cache: repeated sweeps (and pipeline
	// stage sweeps) over the same job shape skip the build entirely. The
	// sweep only ever searches the DAG read-only, so the shared graph is
	// used as-is.
	Templates *TemplateCache
	// Tel, when non-nil, receives phase/search/prune counters and the
	// usual search-engine instrumentation. Observe-only.
	Tel *telemetry.Registry
	// Observer, when non-nil, is called after every phase with the
	// frontier refined so far, and once more with the final result
	// (Final true). Calls are sequential and synchronous: a slow
	// observer slows the sweep, and cancelling the sweep's context from
	// inside the observer aborts it promptly.
	Observer func(FrontierUpdate)
}

// workers resolves the sweep-wide parallelism knob.
func (spec FrontierSpec) workers() int {
	if spec.Parallelism != 0 {
		return spec.Parallelism
	}
	return spec.DAG.Parallelism
}

// FrontierUpdate is one anytime snapshot of the sweep.
type FrontierUpdate struct {
	// Phase numbers the schedule 1..n: 1 endpoints, 2 coarse midpoints,
	// 3+ gap-bisection rounds. The final update repeats the last phase
	// number with Final set.
	Phase int
	// Points is the frontier refined so far, fastest first. The slice
	// is the observer's to keep; later phases only ever add points that
	// dominate or extend it, never retract a point the final frontier
	// keeps.
	Points []FrontierPoint
	// Final marks the closing update; Points then equals the Points of
	// the returned FrontierResult.
	Final bool
	// Stats is the work so far.
	Stats FrontierStats
}

// FrontierStats describes how a sweep earned its frontier.
type FrontierStats struct {
	// Phases is the number of schedule phases run (bisection rounds
	// included).
	Phases int64
	// Searches counts graph searches executed; Pruned counts searches
	// the admissible bounds and probe algebra skipped outright.
	Searches int64
	Pruned   int64
	// Evaluations is the number of distinct configurations evaluated
	// with the exact model this sweep (cache hits included).
	Evaluations int64
	// CacheHits/CacheMisses are the prediction-cache traffic
	// attributable to this sweep; misses are fresh model evaluations.
	CacheHits   int64
	CacheMisses int64
	// Wall is the elapsed sweep time.
	Wall time.Duration
}

// CacheHitRate is hits/(hits+misses), 0 when the cache was untouched.
func (st FrontierStats) CacheHitRate() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// FrontierResult is a computed Pareto frontier plus its search stats.
type FrontierResult struct {
	// Points is the frontier, fastest first.
	Points []FrontierPoint
	Stats  FrontierStats
}

// Frontier computes a time/cost Pareto frontier with a background
// context and default options.
//
// Deprecated: use SweepFrontier with a FrontierSpec, which also exposes
// search stats, cache sharing and anytime observation.
func Frontier(params model.Params, k int, opts dag.Options) ([]FrontierPoint, error) {
	return FrontierContext(context.Background(), params, k, opts, 0)
}

// FrontierContext computes a time/cost Pareto frontier for a job,
// sorted fastest first.
//
// Deprecated: use SweepFrontier with a FrontierSpec. Historically the
// separate workers argument silently overrode a caller-set
// opts.Parallelism in the search phases while the DAG build honored
// opts; the shim resolves workers first, then opts.Parallelism, and
// applies that one value everywhere.
func FrontierContext(ctx context.Context, params model.Params, k int, opts dag.Options, workers int) ([]FrontierPoint, error) {
	if workers == 0 {
		workers = opts.Parallelism
	}
	res, err := SweepFrontier(ctx, FrontierSpec{
		Params:      params,
		Size:        k,
		DAG:         opts,
		Parallelism: workers,
	})
	if err != nil {
		return nil, err
	}
	return res.Points, nil
}

// deadlineSlack pads a constrained search's budget or cost limit so a
// bound summed in a different association order cannot exclude its own
// optimum by a few ULPs.
const deadlineSlack = 1e-9

// SweepFrontier computes the time/cost Pareto frontier of a job's
// configuration space as an anytime, incremental search. One cost-mode
// DAG is built and frozen up front and every phase searches it
// read-only; one prediction cache carries exact-model evaluations
// across phases (and, via FrontierSpec.Cache, across sweeps). The
// schedule is:
//
//  1. endpoints — the min-cost path (one Dijkstra) and the cheapest
//     plan at the minimum achievable completion time (one constrained
//     search), which bracket the frontier;
//  2. coarse midpoints — constrained searches at evenly interpolated
//     deadlines between the brackets;
//  3. bisection — repeated rounds that split the largest normalized
//     gaps of the frontier-so-far until Size points are on hand,
//     refinement stops making progress, or the round cap is hit.
//
// Before any search, per-node to-go bounds from the destination
// (graph.ToGoBounds) are computed once; they prune label expansions
// that cannot meet the deadline or undercut the best known cost, and a
// probe algebra over completed searches skips whole deadlines whose
// optimum is already determined (monotonicity of the constrained
// optimum in the deadline). Skips surface as Stats.Pruned and
// astra_frontier_pruned_total.
//
// Every phase fans its searches and evaluations over the spec's worker
// pool in fixed slot order, so the frontier — and every observer
// snapshot — is identical at every parallelism degree. Cancelling ctx
// aborts the sweep and returns ctx.Err(). When no configuration is
// feasible the error wraps ErrNoFeasiblePlan.
func SweepFrontier(ctx context.Context, spec FrontierSpec) (*FrontierResult, error) {
	if err := spec.Params.Validate(); err != nil {
		return nil, err
	}
	// The whole sweep carries the frontier_sweep pprof phase label; the
	// graph entry points it drives re-label their own regions (dijkstra,
	// csp), so a profile decomposes the sweep into its inner searches.
	var res *FrontierResult
	var err error
	telemetry.DoPhase(ctx, telemetry.PhaseFrontierSweep, func(ctx context.Context) {
		res, err = sweepFrontier(ctx, spec)
	})
	return res, err
}

func sweepFrontier(ctx context.Context, spec FrontierSpec) (*FrontierResult, error) {
	k := spec.Size
	if k <= 0 {
		k = 24
	}
	workers := spec.workers()
	dagOpts := spec.DAG
	dagOpts.Parallelism = workers
	tel := spec.Tel
	ctx = telemetry.NewContext(ctx, tel)
	cache := spec.Cache
	if cache == nil {
		cache = model.NewPredictionCache()
	}
	s := &sweep{
		k:       k,
		workers: workers,
		tel:     tel,
		cache:   cache,
		exact:   cache.Wrap(model.NewExact(spec.Params), spec.Params.Fingerprint(), "exact"),
		observe: spec.Observer,
		sides:   make(map[mapreduce.Config]float64),
		start:   time.Now(),
	}
	s.hits0, s.misses0 = cache.Stats()

	// One frozen cost-mode DAG serves the whole sweep: W carries cost
	// (with a time tiebreak), Side carries time, so a deadline-budgeted
	// constrained search returns the cheapest plan at that deadline.
	var d *dag.DAG
	var err error
	if tc := spec.Templates; tc != nil {
		d, err = tc.Get(ctx, KeyFor(spec.Params, dag.MinimizeCost, dagOpts, false),
			func(ctx context.Context) (*dag.DAG, error) {
				return dag.BuildContext(ctx, model.NewPaper(spec.Params), dag.MinimizeCost, dagOpts)
			})
	} else {
		d, err = dag.BuildContext(ctx, model.NewPaper(spec.Params), dag.MinimizeCost, dagOpts)
	}
	if err != nil {
		return nil, err
	}
	s.d = d
	s.bounds = d.G.ToGoBounds(d.Dst)
	s.minTime = s.bounds.SideToGo[d.Src]
	if math.IsInf(s.minTime, 1) {
		return nil, fmt.Errorf("%w: configuration graph is disconnected", ErrNoFeasiblePlan)
	}

	// Phase 1: endpoints. The min-cost path needs no constraint — one
	// Dijkstra — and its Side is the slow end of the bracket; the
	// cheapest plan at the minimum achievable time is one constrained
	// search at the fast end.
	cheap, err := d.G.ShortestPath(d.Src, d.Dst)
	if err != nil {
		return nil, searchErr(ctx, err)
	}
	s.hiTime = cheap.Side
	s.searches++
	s.probes = append(s.probes, probe{deadline: cheap.Side, ok: true, pathW: cheap.W, pathSide: cheap.Side, wLimit: math.Inf(1)})
	if err := s.fold(ctx, []graph.Path{cheap}, []bool{true}); err != nil {
		return nil, err
	}
	if err := s.searchBatch(ctx, []float64{s.minTime * (1 + deadlineSlack)}); err != nil {
		return nil, err
	}
	s.endPhase()

	// Phase 2: coarse midpoints at evenly interpolated deadlines.
	if n := k/2 - 1; n > 0 && s.hiTime > s.minTime {
		dls := make([]float64, 0, n)
		for i := 1; i <= n; i++ {
			dls = append(dls, s.minTime+(s.hiTime-s.minTime)*float64(i)/float64(n+1))
		}
		if err := s.searchBatch(ctx, dls); err != nil {
			return nil, err
		}
	}
	s.endPhase()

	// Phase 3+: bisect the largest gaps of the frontier-so-far until the
	// target size is met or refinement stops paying.
	const maxBisectRounds = 8
	for round := 0; round < maxBisectRounds; round++ {
		front := paretoPrune(s.points)
		if len(front) >= k {
			break
		}
		dls := s.bisectDeadlines(front, k-len(front))
		if len(dls) == 0 {
			break
		}
		before := len(s.sides)
		if err := s.searchBatch(ctx, dls); err != nil {
			return nil, err
		}
		s.endPhase()
		if len(s.sides) == before {
			break
		}
	}

	front := paretoPrune(s.points)
	if len(front) == 0 {
		return nil, fmt.Errorf("%w: no feasible configuration on the frontier", ErrNoFeasiblePlan)
	}
	res := &FrontierResult{Points: front, Stats: s.stats()}
	if s.observe != nil {
		s.observe(FrontierUpdate{
			Phase:  s.phase,
			Points: append([]FrontierPoint(nil), front...),
			Final:  true,
			Stats:  res.Stats,
		})
	}
	if tel != nil {
		tel.Counter(telemetry.MPlanCacheHits).Add(res.Stats.CacheHits)
		tel.Counter(telemetry.MPlanCacheMisses).Add(res.Stats.CacheMisses)
	}
	return res, nil
}

// probe records one resolved deadline: the constrained optimum found
// there (ok) or the fact that nothing beat wLimit (not ok). Probes are
// the sweep's memory — the monotonicity of the constrained optimum in
// the deadline lets them answer later deadlines without a search.
type probe struct {
	deadline float64
	ok       bool
	pathW    float64
	pathSide float64
	wLimit   float64
}

// sweep is the mutable state of one SweepFrontier call.
type sweep struct {
	k       int
	workers int
	d       *dag.DAG
	bounds  *graph.Bounds
	tel     *telemetry.Registry
	cache   *model.PredictionCache
	exact   model.Predictor
	observe func(FrontierUpdate)

	minTime float64
	hiTime  float64

	probes []probe
	// sides maps every decoded configuration to its paper-model path
	// time — the deadline axis — for gap bisection; it doubles as the
	// dedupe set.
	sides  map[mapreduce.Config]float64
	points []FrontierPoint

	phase    int
	searches int64
	pruned   int64
	start    time.Time
	hits0    uint64
	misses0  uint64
}

func (s *sweep) stats() FrontierStats {
	h1, m1 := s.cache.Stats()
	return FrontierStats{
		Phases:      int64(s.phase),
		Searches:    s.searches,
		Pruned:      s.pruned,
		Evaluations: int64(len(s.sides)),
		CacheHits:   int64(h1 - s.hits0),
		CacheMisses: int64(m1 - s.misses0),
		Wall:        time.Since(s.start),
	}
}

// endPhase closes a schedule phase: counts it and emits a snapshot.
func (s *sweep) endPhase() {
	s.phase++
	if s.tel != nil {
		s.tel.Counter(telemetry.MFrontierPhases).Inc()
	}
	if s.observe == nil {
		return
	}
	s.observe(FrontierUpdate{
		Phase:  s.phase,
		Points: paretoPrune(s.points),
		Stats:  s.stats(),
	})
}

// covered reports whether an earlier probe already determines the
// constrained optimum at deadline dl, so searching it would return a
// path (or an infeasibility) the sweep has seen. Two cases:
//
//   - a feasible probe at a deadline ≥ dl whose path already meets dl:
//     that path is feasible at dl and no cheaper path can exist there
//     (the optimum is monotone non-increasing in the deadline);
//   - an infeasible probe at a deadline ≥ dl whose cost limit was at
//     least as permissive as dl's would be: the optimum at dl can only
//     cost more, so dl's search would come back empty too.
func (s *sweep) covered(dl float64) bool {
	if dl < s.minTime {
		return true
	}
	limit := s.wLimitFor(dl)
	for _, p := range s.probes {
		if p.deadline < dl {
			continue
		}
		if p.ok && p.pathSide <= dl {
			return true
		}
		if !p.ok && p.wLimit >= limit {
			return true
		}
	}
	return false
}

// wLimitFor is the tightest valid cost ceiling for a search at deadline
// dl: any feasible probe at a deadline ≤ dl is feasible here too, so
// dl's optimum cannot cost more than the cheapest of them (padded for
// summation-order FP noise).
func (s *sweep) wLimitFor(dl float64) float64 {
	limit := math.Inf(1)
	for _, p := range s.probes {
		if p.ok && p.deadline <= dl && p.pathW < limit {
			limit = p.pathW
		}
	}
	if !math.IsInf(limit, 1) {
		limit *= 1 + deadlineSlack
	}
	return limit
}

// searchBatch resolves a phase's deadlines: prunes the ones earlier
// probes already answer, fans the rest over the pool as bounded
// constrained searches, and folds the results — probes, decoded
// configurations, exact evaluations — in fixed slot order so the
// outcome is independent of the pool size. Prune decisions use only
// pre-batch probes, which keeps them deterministic too.
func (s *sweep) searchBatch(ctx context.Context, deadlines []float64) error {
	type job struct{ dl, wLimit float64 }
	jobs := make([]job, 0, len(deadlines))
	for _, dl := range deadlines {
		if s.covered(dl) {
			s.pruned++
			continue
		}
		jobs = append(jobs, job{dl: dl, wLimit: s.wLimitFor(dl)})
	}
	if s.tel != nil {
		s.tel.Counter(telemetry.MFrontierPruned).Add(int64(len(deadlines) - len(jobs)))
		s.tel.Counter(telemetry.MFrontierSearches).Add(int64(len(jobs)))
	}
	if len(jobs) == 0 {
		return ctx.Err()
	}
	paths := make([]graph.Path, len(jobs))
	ok := make([]bool, len(jobs))
	if err := parallel.ForEach(ctx, len(jobs), s.workers, func(i int) {
		p, err := s.d.G.ConstrainedShortestPathBoundedCtx(ctx, s.d.Src, s.d.Dst, jobs[i].dl, s.bounds, jobs[i].wLimit)
		if err != nil {
			return
		}
		paths[i], ok[i] = p, true
	}); err != nil {
		return err
	}
	s.searches += int64(len(jobs))
	for i := range jobs {
		pr := probe{deadline: jobs[i].dl, ok: ok[i], wLimit: jobs[i].wLimit}
		if ok[i] {
			pr.pathW, pr.pathSide = paths[i].W, paths[i].Side
		}
		s.probes = append(s.probes, pr)
	}
	return s.fold(ctx, paths, ok)
}

// fold decodes a batch's paths, dedupes configurations against the
// sweep so far, and evaluates the new ones with the exact model across
// the pool (input order fixed ⇒ deterministic points slice).
func (s *sweep) fold(ctx context.Context, paths []graph.Path, ok []bool) error {
	var cfgs []mapreduce.Config
	for i, p := range paths {
		if !ok[i] {
			continue
		}
		cfg, err := s.d.Decode(p)
		if err != nil {
			continue
		}
		if _, dup := s.sides[cfg]; dup {
			continue
		}
		s.sides[cfg] = p.Side
		cfgs = append(cfgs, cfg)
	}
	if len(cfgs) == 0 {
		return ctx.Err()
	}
	pts := make([]*FrontierPoint, len(cfgs))
	if err := parallel.ForEach(ctx, len(cfgs), s.workers, func(i int) {
		pred, err := s.exact.Predict(cfgs[i])
		if err != nil {
			return
		}
		pts[i] = &FrontierPoint{Config: cfgs[i], Pred: pred}
	}); err != nil {
		return err
	}
	for _, p := range pts {
		if p != nil {
			s.points = append(s.points, *p)
		}
	}
	return nil
}

// bisectDeadlines proposes up to maxNew fresh deadlines by splitting
// the largest gaps between adjacent frontier points, measured in
// normalized exact (time, cost) space and bisected on the paper-model
// deadline axis (each point's recorded path time). Deadlines earlier
// probes already resolve are dropped rather than proposed.
func (s *sweep) bisectDeadlines(front []FrontierPoint, maxNew int) []float64 {
	if len(front) < 2 || maxNew <= 0 {
		return nil
	}
	tSpan := front[len(front)-1].Pred.TotalSec() - front[0].Pred.TotalSec()
	cSpan := float64(front[0].Pred.TotalCost()) - float64(front[len(front)-1].Pred.TotalCost())
	if tSpan <= 0 {
		tSpan = 1
	}
	if cSpan <= 0 {
		cSpan = 1
	}
	type gap struct {
		size float64
		i    int
	}
	gaps := make([]gap, 0, len(front)-1)
	for i := 0; i+1 < len(front); i++ {
		dt := (front[i+1].Pred.TotalSec() - front[i].Pred.TotalSec()) / tSpan
		dc := (float64(front[i].Pred.TotalCost()) - float64(front[i+1].Pred.TotalCost())) / cSpan
		gaps = append(gaps, gap{size: math.Hypot(dt, dc), i: i})
	}
	sort.Slice(gaps, func(a, b int) bool {
		if gaps[a].size != gaps[b].size {
			return gaps[a].size > gaps[b].size
		}
		return gaps[a].i < gaps[b].i
	})
	var dls []float64
	for _, g := range gaps {
		if len(dls) >= maxNew {
			break
		}
		lo, okLo := s.sides[front[g.i].Config]
		hi, okHi := s.sides[front[g.i+1].Config]
		if !okLo || !okHi {
			continue
		}
		dl := (lo + hi) / 2
		if dl <= s.minTime || dl >= s.hiTime || s.probed(dl) || containsFloat(dls, dl) {
			continue
		}
		dls = append(dls, dl)
	}
	sort.Float64s(dls)
	return dls
}

// probed reports whether a deadline has already been searched (within
// relative FP noise).
func (s *sweep) probed(dl float64) bool {
	for _, p := range s.probes {
		if math.Abs(p.deadline-dl) <= deadlineSlack*dl {
			return true
		}
	}
	return false
}

func containsFloat(xs []float64, x float64) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// paretoPrune removes dominated and duplicate candidates and returns
// the frontier sorted fastest first (total order: time, then cost, then
// configuration, so the output is reproducible even under exact ties).
// A candidate is dominated when another is no worse on both axes and
// strictly better on one; equal (time, cost) pairs with distinct
// configurations all survive. One sort plus one linear pass replaces
// the historical all-pairs scan.
func paretoPrune(cands []FrontierPoint) []FrontierPoint {
	if len(cands) == 0 {
		return nil
	}
	sorted := append([]FrontierPoint(nil), cands...)
	sort.Slice(sorted, func(a, b int) bool {
		ta, tb := sorted[a].Pred.TotalSec(), sorted[b].Pred.TotalSec()
		if ta != tb {
			return ta < tb
		}
		ca, cb := sorted[a].Pred.TotalCost(), sorted[b].Pred.TotalCost()
		if ca != cb {
			return ca < cb
		}
		return configLess(sorted[a].Config, sorted[b].Config)
	})
	seen := map[mapreduce.Config]bool{}
	var front []FrontierPoint
	bestCost := math.Inf(1)
	for i := 0; i < len(sorted); {
		// One group of equal times: its cheapest cost leads the group.
		j := i
		groupCost := float64(sorted[i].Pred.TotalCost())
		for ; j < len(sorted) && sorted[j].Pred.TotalSec() == sorted[i].Pred.TotalSec(); j++ {
		}
		if groupCost < bestCost {
			for _, c := range sorted[i:j] {
				if float64(c.Pred.TotalCost()) != groupCost {
					break // dominated within the group
				}
				if !seen[c.Config] {
					seen[c.Config] = true
					front = append(front, c)
				}
			}
			bestCost = groupCost
		}
		i = j
	}
	return front
}

// configLess is an arbitrary but fixed total order over configurations,
// used only to make exact-tie output order reproducible.
func configLess(a, b mapreduce.Config) bool {
	if a.MapperMemMB != b.MapperMemMB {
		return a.MapperMemMB < b.MapperMemMB
	}
	if a.CoordMemMB != b.CoordMemMB {
		return a.CoordMemMB < b.CoordMemMB
	}
	if a.ReducerMemMB != b.ReducerMemMB {
		return a.ReducerMemMB < b.ReducerMemMB
	}
	if a.ObjsPerMapper != b.ObjsPerMapper {
		return a.ObjsPerMapper < b.ObjsPerMapper
	}
	return a.ObjsPerReducer < b.ObjsPerReducer
}
