package optimizer

import (
	"context"
	"sort"

	"astra/internal/dag"
	"astra/internal/graph"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/parallel"
)

// FrontierPoint is one Pareto-optimal configuration: no other candidate
// is both faster and cheaper under the exact model.
type FrontierPoint struct {
	Config mapreduce.Config
	Pred   model.Prediction
}

// Frontier computes a time/cost Pareto frontier with a background context
// and the default worker pool; see FrontierContext.
func Frontier(params model.Params, k int, opts dag.Options) ([]FrontierPoint, error) {
	return FrontierContext(context.Background(), params, k, opts, 0)
}

// FrontierContext computes a time/cost Pareto frontier for a job, sorted
// fastest first. Candidates are harvested from three sweeps of the
// configuration DAG — the k fastest paths, the k cheapest paths, and
// exact constrained-shortest-path solutions at interpolated deadlines to
// fill the middle — then re-evaluated with the engine-faithful model and
// dominance-pruned. It is the tradeoff curve behind both the single-job
// "what should I pay for speed?" question and the pipeline planner's
// per-stage search.
//
// The two DAG builds, the interpolation sweeps (the label-setting search
// is read-only, so they share one graph) and the exact re-evaluations all
// shard across a bounded pool of workers goroutines (0 = all cores); the
// candidate order is fixed, so the frontier is identical at every pool
// size. Cancelling ctx aborts the sweep and returns ctx.Err().
func FrontierContext(ctx context.Context, params model.Params, k int, opts dag.Options, workers int) ([]FrontierPoint, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 24
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = workers
	}
	m := model.NewPaper(params)
	cache := model.NewPredictionCache()
	exact := cache.Wrap(model.NewExact(params), params.Fingerprint(), "exact")

	// evaluate resolves configurations to frontier points in input order,
	// fanning the exact-model predictions across the pool and dropping
	// infeasible candidates.
	evaluate := func(cfgs []mapreduce.Config) ([]FrontierPoint, error) {
		pts := make([]*FrontierPoint, len(cfgs))
		if err := parallel.ForEach(ctx, len(cfgs), workers, func(i int) {
			pred, err := exact.Predict(cfgs[i])
			if err != nil {
				return
			}
			pts[i] = &FrontierPoint{Config: cfgs[i], Pred: pred}
		}); err != nil {
			return nil, err
		}
		var out []FrontierPoint
		for _, p := range pts {
			if p != nil {
				out = append(out, *p)
			}
		}
		return out, nil
	}

	// The fast end and the cheap end of the space: both DAGs build
	// concurrently, then each is swept for its k best paths.
	var dt, dc *dag.DAG
	var errT, errC error
	if err := parallel.ForEach(ctx, 2, workers, func(i int) {
		if i == 0 {
			dt, errT = dag.BuildContext(ctx, m, dag.MinimizeTime, opts)
		} else {
			dc, errC = dag.BuildContext(ctx, m, dag.MinimizeCost, opts)
		}
	}); err != nil {
		return nil, err
	}
	if errT != nil {
		return nil, errT
	}
	if errC != nil {
		return nil, errC
	}
	var cfgs []mapreduce.Config
	for _, d := range []*dag.DAG{dt, dc} {
		paths, err := d.G.YenKSPCtx(ctx, d.Src, d.Dst, k, workers)
		if err != nil {
			return nil, err
		}
		for _, p := range paths {
			if cfg, err := d.Decode(p); err == nil {
				cfgs = append(cfgs, cfg)
			}
		}
	}
	raw, err := evaluate(cfgs)
	if err != nil {
		return nil, err
	}

	// …and the middle: the cheapest plan at interpolated deadlines. The
	// constrained search leaves the graph untouched, so every sweep runs
	// on the one memoized cost-mode DAG, in parallel.
	if len(raw) >= 2 {
		lo, hi := raw[0].Pred.TotalSec(), raw[0].Pred.TotalSec()
		for _, c := range raw {
			if s := c.Pred.TotalSec(); s < lo {
				lo = s
			} else if s > hi {
				hi = s
			}
		}
		steps := k / 2
		mids := make([]graph.Path, steps)
		midOK := make([]bool, steps)
		if err := parallel.ForEach(ctx, steps-1, workers, func(i int) {
			deadline := lo + (hi-lo)*float64(i+1)/float64(steps)
			if p, err := dc.G.ConstrainedShortestPathCtx(ctx, dc.Src, dc.Dst, deadline); err == nil {
				mids[i+1], midOK[i+1] = p, true
			}
		}); err != nil {
			return nil, err
		}
		var midCfgs []mapreduce.Config
		for i := 1; i < steps; i++ {
			if !midOK[i] {
				continue
			}
			if cfg, err := dc.Decode(mids[i]); err == nil {
				midCfgs = append(midCfgs, cfg)
			}
		}
		midPts, err := evaluate(midCfgs)
		if err != nil {
			return nil, err
		}
		raw = append(raw, midPts...)
	}

	front := paretoPrune(raw)
	if len(front) == 0 {
		return nil, ErrNoFeasiblePlan
	}
	sort.Slice(front, func(a, b int) bool {
		return front[a].Pred.TotalSec() < front[b].Pred.TotalSec()
	})
	return front, nil
}

// paretoPrune removes dominated and duplicate candidates.
func paretoPrune(cands []FrontierPoint) []FrontierPoint {
	var front []FrontierPoint
	for _, c := range cands {
		dominated := false
		for _, o := range cands {
			if o.Pred.TotalSec() <= c.Pred.TotalSec() &&
				o.Pred.TotalCost() <= c.Pred.TotalCost() &&
				(o.Pred.TotalSec() < c.Pred.TotalSec() || o.Pred.TotalCost() < c.Pred.TotalCost()) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	seen := map[mapreduce.Config]bool{}
	out := front[:0]
	for _, c := range front {
		if !seen[c.Config] {
			seen[c.Config] = true
			out = append(out, c)
		}
	}
	return out
}
