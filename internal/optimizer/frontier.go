package optimizer

import (
	"sort"

	"astra/internal/dag"
	"astra/internal/mapreduce"
	"astra/internal/model"
)

// FrontierPoint is one Pareto-optimal configuration: no other candidate
// is both faster and cheaper under the exact model.
type FrontierPoint struct {
	Config mapreduce.Config
	Pred   model.Prediction
}

// Frontier computes a time/cost Pareto frontier for a job, sorted fastest
// first. Candidates are harvested from three sweeps of the configuration
// DAG — the k fastest paths, the k cheapest paths, and exact
// constrained-shortest-path solutions at interpolated deadlines to fill
// the middle — then re-evaluated with the engine-faithful model and
// dominance-pruned. It is the tradeoff curve behind both the single-job
// "what should I pay for speed?" question and the pipeline planner's
// per-stage search.
func Frontier(params model.Params, k int, opts dag.Options) ([]FrontierPoint, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 24
	}
	m := model.NewPaper(params)
	exact := model.NewExact(params)

	var raw []FrontierPoint
	add := func(cfg mapreduce.Config) {
		pred, err := exact.Predict(cfg)
		if err != nil {
			return
		}
		raw = append(raw, FrontierPoint{Config: cfg, Pred: pred})
	}

	// The fast end of the space…
	dt, err := dag.Build(m, dag.MinimizeTime, opts)
	if err != nil {
		return nil, err
	}
	for _, p := range dt.G.YenKSP(dt.Src, dt.Dst, k) {
		if cfg, err := dt.Decode(p); err == nil {
			add(cfg)
		}
	}
	// …the cheap end…
	dc, err := dag.Build(m, dag.MinimizeCost, opts)
	if err != nil {
		return nil, err
	}
	for _, p := range dc.G.YenKSP(dc.Src, dc.Dst, k) {
		if cfg, err := dc.Decode(p); err == nil {
			add(cfg)
		}
	}
	// …and the middle: the cheapest plan at interpolated deadlines.
	if len(raw) >= 2 {
		lo, hi := raw[0].Pred.TotalSec(), raw[0].Pred.TotalSec()
		for _, c := range raw {
			if s := c.Pred.TotalSec(); s < lo {
				lo = s
			} else if s > hi {
				hi = s
			}
		}
		steps := k / 2
		for i := 1; i < steps; i++ {
			deadline := lo + (hi-lo)*float64(i)/float64(steps)
			dcsp, err := dag.Build(m, dag.MinimizeCost, opts)
			if err != nil {
				return nil, err
			}
			if p, err := dcsp.G.ConstrainedShortestPath(dcsp.Src, dcsp.Dst, deadline); err == nil {
				if cfg, err := dcsp.Decode(p); err == nil {
					add(cfg)
				}
			}
		}
	}

	front := paretoPrune(raw)
	if len(front) == 0 {
		return nil, ErrNoFeasiblePlan
	}
	sort.Slice(front, func(a, b int) bool {
		return front[a].Pred.TotalSec() < front[b].Pred.TotalSec()
	})
	return front, nil
}

// paretoPrune removes dominated and duplicate candidates.
func paretoPrune(cands []FrontierPoint) []FrontierPoint {
	var front []FrontierPoint
	for _, c := range cands {
		dominated := false
		for _, o := range cands {
			if o.Pred.TotalSec() <= c.Pred.TotalSec() &&
				o.Pred.TotalCost() <= c.Pred.TotalCost() &&
				(o.Pred.TotalSec() < c.Pred.TotalSec() || o.Pred.TotalCost() < c.Pred.TotalCost()) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	seen := map[mapreduce.Config]bool{}
	out := front[:0]
	for _, c := range front {
		if !seen[c.Config] {
			seen[c.Config] = true
			out = append(out, c)
		}
	}
	return out
}
