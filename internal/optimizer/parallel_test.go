package optimizer

import (
	"context"
	"errors"
	"testing"
	"time"

	"astra/internal/dag"
	"astra/internal/model"
)

func TestObjectiveValidate(t *testing.T) {
	cases := []struct {
		name string
		obj  Objective
		ok   bool
	}{
		{"zero budget", Objective{Goal: MinTimeUnderBudget, Budget: 0}, true},
		{"positive budget", Objective{Goal: MinTimeUnderBudget, Budget: 1}, true},
		{"negative budget", Objective{Goal: MinTimeUnderBudget, Budget: -0.01}, false},
		{"positive deadline", Objective{Goal: MinCostUnderDeadline, Deadline: time.Minute}, true},
		{"zero deadline", Objective{Goal: MinCostUnderDeadline, Deadline: 0}, false},
		{"negative deadline", Objective{Goal: MinCostUnderDeadline, Deadline: -time.Second}, false},
		{"unknown goal", Objective{Goal: Goal(99)}, false},
	}
	for _, tc := range cases {
		err := tc.obj.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && !errors.Is(err, ErrInvalidObjective) {
			t.Errorf("%s: err = %v, want ErrInvalidObjective", tc.name, err)
		}
	}
}

func TestPlanRejectsInvalidObjective(t *testing.T) {
	pl := planner(Auto)
	if _, err := pl.Plan(Objective{Goal: MinTimeUnderBudget, Budget: -1}); !errors.Is(err, ErrInvalidObjective) {
		t.Fatalf("negative budget: err = %v, want ErrInvalidObjective", err)
	}
	if _, err := pl.Plan(Objective{Goal: MinCostUnderDeadline}); !errors.Is(err, ErrInvalidObjective) {
		t.Fatalf("zero deadline: err = %v, want ErrInvalidObjective", err)
	}
}

// TestParallelPlansMatchSerial is the engine's core guarantee: for every
// solver and objective, the parallel search returns the bit-identical
// configuration the serial search does.
func TestParallelPlansMatchSerial(t *testing.T) {
	objectives := []Objective{
		unconstrainedTime(),
		unconstrainedCost(),
		{Goal: MinTimeUnderBudget, Budget: 0.002},
		{Goal: MinCostUnderDeadline, Deadline: 2 * time.Minute},
	}
	solvers := []Solver{Algorithm1, Yen, CSP, Rerank, Brute, Auto}
	for _, s := range solvers {
		for oi, obj := range objectives {
			serial := planner(s)
			serial.Parallelism = 1
			want, werr := serial.Plan(obj)

			for _, workers := range []int{0, 4} {
				par := planner(s)
				par.Parallelism = workers
				got, gerr := par.Plan(obj)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("solver %v obj %d workers %d: err %v vs serial %v",
						s, oi, workers, gerr, werr)
				}
				if werr != nil {
					if !errors.Is(gerr, ErrNoFeasiblePlan) || !errors.Is(werr, ErrNoFeasiblePlan) {
						t.Fatalf("solver %v obj %d: unexpected errors %v / %v", s, oi, gerr, werr)
					}
					continue
				}
				if got.Config != want.Config {
					t.Fatalf("solver %v obj %d workers %d: config %v, serial %v",
						s, oi, workers, got.Config, want.Config)
				}
			}
		}
	}
}

func TestPlanContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range []Solver{Algorithm1, Yen, CSP, Rerank, Brute, Auto} {
		pl := planner(s)
		if _, err := pl.PlanContext(ctx, unconstrainedTime()); !errors.Is(err, context.Canceled) {
			t.Fatalf("solver %v: err = %v, want context.Canceled", s, err)
		}
	}
}

// TestPlannerMemoization verifies that repeated plans on one Planner reuse
// the DAG build and the prediction cache instead of recomputing.
func TestPlannerMemoization(t *testing.T) {
	pl := planner(Auto)
	if _, err := pl.Plan(unconstrainedTime()); err != nil {
		t.Fatal(err)
	}
	if pl.Cache == nil {
		t.Fatal("no prediction cache materialized")
	}
	_, missesAfterFirst := pl.Cache.Stats()
	d1, err := pl.buildDAG(context.Background(), dag.MinimizeTime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(unconstrainedTime()); err != nil {
		t.Fatal(err)
	}
	d2, err := pl.buildDAG(context.Background(), dag.MinimizeTime)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("DAG rebuilt despite memoization")
	}
	hits, misses := pl.Cache.Stats()
	if misses != missesAfterFirst {
		t.Fatalf("second plan recomputed predictions: misses %d -> %d", missesAfterFirst, misses)
	}
	if hits == 0 {
		t.Fatal("second plan never hit the prediction cache")
	}
}

// TestSharedCacheAcrossPlanners exercises WithPlanCache's contract: two
// planners over the same parameterization share memoized predictions.
func TestSharedCacheAcrossPlanners(t *testing.T) {
	cache := model.NewPredictionCache()
	a := planner(Brute)
	a.Cache = cache
	if _, err := a.Plan(unconstrainedTime()); err != nil {
		t.Fatal(err)
	}
	_, missesAfterA := cache.Stats()

	b := planner(Brute)
	b.Cache = cache
	if _, err := b.Plan(unconstrainedTime()); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Stats(); misses != missesAfterA {
		t.Fatalf("second planner recomputed predictions: misses %d -> %d", missesAfterA, misses)
	}
}

func TestPlanContextDeadlinePropagates(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	pl := planner(CSP)
	if _, err := pl.PlanContext(ctx, unconstrainedCost()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
