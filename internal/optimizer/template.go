package optimizer

import (
	"context"
	"sync"
	"sync/atomic"

	"astra/internal/dag"
	"astra/internal/model"
	"astra/internal/telemetry"
)

// TemplateCache shares frozen configuration-DAG builds across planner
// instances. Jobs of the same shape — same N, same tier set, same price
// sheet, same model parameters — produce structurally identical Fig. 5
// graphs whose thousands of RowEval edge evaluations are by far the most
// expensive part of a cold plan; keying the finished CSR graph by a
// fingerprint of (model params, DAG mode, dag.Options, model flavor)
// lets every subsequent plan for that shape skip dag.BuildContext
// entirely. Read-only solvers search the shared template directly;
// destructive ones (Algorithm 1) already run on a Clone, which since the
// CSR refactor is O(m/64) — copy the removal bitset, share the arrays.
//
// Misses build under singleflight: a thundering herd of identical jobs
// performs one build while the rest wait on it. The cache is bounded
// (template count) with least-recently-used eviction; evicted templates
// stay valid for searches already holding them, the arrays are simply no
// longer findable. All methods are safe for concurrent use.
type TemplateCache struct {
	mu      sync.Mutex
	entries map[TemplateKey]*templateEntry
	cap     int
	tick    uint64 // logical clock for LRU

	hits, misses, builds, evictions, waits atomic.Uint64
}

// TemplateKey identifies one DAG template. Two planning calls with equal
// keys are guaranteed (and property-tested) to build bit-identical
// graphs.
type TemplateKey struct {
	// Params is model.Params.Fingerprint(): job shape, profile, price
	// sheet contents, speed model, latencies.
	Params uint64
	// Opts is dag.Options.Fingerprint(): tier list, kM/kR caps,
	// dominated-tier switch (parallelism excluded — it never changes the
	// graph).
	Opts uint64
	// Mode is the shortest-path objective the edge weights encode.
	Mode dag.Mode
	// Aggregate selects the literal Eq. 9 aggregate model flavor.
	Aggregate bool
}

// KeyFor derives the template key for a parameterization.
func KeyFor(params model.Params, mode dag.Mode, opts dag.Options, aggregate bool) TemplateKey {
	return TemplateKey{
		Params:    params.Fingerprint(),
		Opts:      opts.Fingerprint(),
		Mode:      mode,
		Aggregate: aggregate,
	}
}

// templateEntry is one cache slot. ready is closed when the build
// finishes; d/err are immutable afterwards. lastUse orders eviction.
type templateEntry struct {
	ready   chan struct{}
	d       *dag.DAG
	err     error
	lastUse uint64
}

// DefaultTemplateCap bounds NewTemplateCache(0). Templates are a few MB
// apiece at the Sort100GB scale; 64 distinct (shape, mode) pairs is far
// beyond what a tenant mix touches between evictions.
const DefaultTemplateCap = 64

// NewTemplateCache creates a bounded template cache. maxTemplates <= 0
// selects DefaultTemplateCap; there is deliberately no unbounded mode —
// a planning service must not grow without limit with tenant diversity.
func NewTemplateCache(maxTemplates int) *TemplateCache {
	if maxTemplates <= 0 {
		maxTemplates = DefaultTemplateCap
	}
	return &TemplateCache{
		entries: make(map[TemplateKey]*templateEntry),
		cap:     maxTemplates,
	}
}

// TemplateStats is a point-in-time summary of cache traffic.
type TemplateStats struct {
	// Hits served a frozen template with no build; Misses triggered (or
	// joined) a build. Builds counts builds actually executed — under
	// singleflight, Misses - Builds callers waited instead (also counted
	// in Waits).
	Hits, Misses, Builds, Evictions, Waits uint64
	// Entries is the current resident template count.
	Entries int
}

// HitRate is Hits/(Hits+Misses), 0 on an untouched cache.
func (s TemplateStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats reports cumulative cache traffic.
func (tc *TemplateCache) Stats() TemplateStats {
	tc.mu.Lock()
	n := len(tc.entries)
	tc.mu.Unlock()
	return TemplateStats{
		Hits:      tc.hits.Load(),
		Misses:    tc.misses.Load(),
		Builds:    tc.builds.Load(),
		Evictions: tc.evictions.Load(),
		Waits:     tc.waits.Load(),
		Entries:   n,
	}
}

// Get resolves a template, building it through build on a miss. Exactly
// one concurrent caller per key runs build; the rest block on its result
// (or their own ctx). A failed build is not cached: the entry is removed
// before waiters wake, so they retry — a caller whose own build fails
// gets that error, and one builder's cancellation never poisons the key
// for others. The returned DAG is shared and frozen: search it
// read-only, Clone before mutating.
func (tc *TemplateCache) Get(ctx context.Context, key TemplateKey, build func(context.Context) (*dag.DAG, error)) (*dag.DAG, error) {
	tel := telemetry.FromContext(ctx)
	for {
		tc.mu.Lock()
		e, ok := tc.entries[key]
		if ok {
			tc.tick++
			e.lastUse = tc.tick
			tc.mu.Unlock()
			select {
			case <-e.ready:
			default:
				// Someone else is mid-build; joining the flight is a miss
				// that waits rather than works.
				tc.misses.Add(1)
				tc.waits.Add(1)
				tel.Counter(telemetry.MPlanTemplateMisses).Inc()
				tel.Counter(telemetry.MPlanTemplateWaits).Inc()
				select {
				case <-e.ready:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				if e.err != nil {
					// The builder failed and removed the entry; retry (the
					// next round either finds a fresh build or becomes the
					// builder and surfaces its own error).
					continue
				}
				return e.d, nil
			}
			if e.err != nil {
				// Lost a race with a failed builder whose entry removal is
				// in flight; retry.
				continue
			}
			tc.hits.Add(1)
			tel.Counter(telemetry.MPlanTemplateHits).Inc()
			return e.d, nil
		}
		// Miss with no flight underway: this caller builds.
		e = &templateEntry{ready: make(chan struct{})}
		tc.tick++
		e.lastUse = tc.tick
		tc.entries[key] = e
		tc.mu.Unlock()
		tc.misses.Add(1)
		tc.builds.Add(1)
		tel.Counter(telemetry.MPlanTemplateMisses).Inc()
		tel.Counter(telemetry.MPlanTemplateBuilds).Inc()

		d, err := build(ctx)
		if err == nil {
			// Freeze before publishing so no reader ever contends on the
			// lazy CSR build, then bound the cache.
			d.G.Freeze()
			e.d = d
			tc.mu.Lock()
			tc.evictOverCapLocked(key, tel)
			tc.mu.Unlock()
		} else {
			e.err = err
			tc.mu.Lock()
			if tc.entries[key] == e {
				delete(tc.entries, key)
			}
			tc.mu.Unlock()
		}
		close(e.ready)
		if tel != nil {
			tel.Gauge(telemetry.MPlanTemplateEntries).Set(int64(tc.Stats().Entries))
		}
		return d, err
	}
}

// evictOverCapLocked drops least-recently-used ready entries until the
// cache fits its bound. In-flight builds and the just-inserted key are
// never evicted.
func (tc *TemplateCache) evictOverCapLocked(keep TemplateKey, tel *telemetry.Registry) {
	for len(tc.entries) > tc.cap {
		var victim TemplateKey
		var victimEntry *templateEntry
		found := false
		for k, e := range tc.entries {
			if k == keep {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // mid-build; its builder still owns the slot
			}
			if !found || e.lastUse < victimEntry.lastUse {
				victim, victimEntry, found = k, e, true
			}
		}
		if !found {
			return
		}
		delete(tc.entries, victim)
		tc.evictions.Add(1)
		tel.Counter(telemetry.MPlanTemplateEvictions).Inc()
	}
}
