package optimizer

import (
	"testing"
	"time"

	"astra/internal/dag"
	"astra/internal/model"
	"astra/internal/workload"
)

func TestFrontierCoversConstrainedPlans(t *testing.T) {
	params := smallParams()
	front, err := Frontier(params, 16, dag.Options{Tiers: smallTiers})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 2 {
		t.Fatalf("frontier has %d points", len(front))
	}
	// The fast end must match the unconstrained fastest DAG plan; the
	// cheap end must match the unconstrained cheapest.
	pl := planner(CSP)
	fastest, err := pl.Plan(Objective{Goal: MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	cheapest, err := pl.Plan(Objective{Goal: MinCostUnderDeadline, Deadline: 1e6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if front[0].Pred.TotalSec() > fastest.Exact.TotalSec()+1e-9 {
		t.Fatalf("fast end %v slower than the fastest plan %v",
			front[0].Pred.TotalSec(), fastest.Exact.TotalSec())
	}
	last := front[len(front)-1]
	if last.Pred.TotalCost() > cheapest.Exact.TotalCost()+1e-12 {
		t.Fatalf("cheap end %v pricier than the cheapest plan %v",
			last.Pred.TotalCost(), cheapest.Exact.TotalCost())
	}
}

func TestFrontierNoDominatedPoints(t *testing.T) {
	front, err := Frontier(smallParams(), 12, dag.Options{Tiers: smallTiers})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range front {
		for j, b := range front {
			if i == j {
				continue
			}
			if b.Pred.TotalSec() <= a.Pred.TotalSec() &&
				b.Pred.TotalCost() <= a.Pred.TotalCost() &&
				(b.Pred.TotalSec() < a.Pred.TotalSec() || b.Pred.TotalCost() < a.Pred.TotalCost()) {
				t.Fatalf("point %d dominated by %d", i, j)
			}
		}
	}
}

func TestFrontierDefaultK(t *testing.T) {
	front, err := Frontier(smallParams(), 0, dag.Options{Tiers: smallTiers})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier with default k")
	}
}

func TestFrontierRejectsBadParams(t *testing.T) {
	if _, err := Frontier(model.Params{}, 8, dag.Options{}); err == nil {
		t.Fatal("invalid params should fail")
	}
}

func TestAggregateModelPlanning(t *testing.T) {
	// The planner flag must actually change the DAG's weights, and the
	// literal Eq. 9 model — blind to within-step parallelism — must never
	// produce a plan that executes faster (under the engine-faithful
	// model) than the per-step default's.
	params := model.DefaultParams(workload.Job{
		Profile:    workload.Query,
		NumObjects: 24,
		ObjectSize: 48 << 20,
	})
	plan := func(aggregate bool) *Plan {
		p := New(params)
		p.Solver = Auto
		p.AggregateModel = aggregate
		pl, err := p.Plan(Objective{Goal: MinTimeUnderBudget, Budget: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	perStep, aggregate := plan(false), plan(true)
	if perStep.Config == aggregate.Config {
		t.Fatal("the AggregateModel flag changed nothing")
	}
	// On this small instance both picks land within DAG-estimator noise
	// of each other; the substantial quality gap appears at paper scale
	// (ablation A3b). Here we only require the aggregate pick not to be
	// meaningfully better — that would mean the per-step model is wrong.
	if aggregate.Exact.TotalSec() < perStep.Exact.TotalSec()*0.99 {
		t.Fatalf("aggregate-planned config (%.2fs) substantially beat the per-step one (%.2fs)",
			aggregate.Exact.TotalSec(), perStep.Exact.TotalSec())
	}
}
