package optimizer

import (
	"errors"
	"math"
	"testing"
	"time"

	"astra/internal/dag"
	"astra/internal/model"
	"astra/internal/pricing"
	"astra/internal/workload"
)

func smallParams() model.Params {
	return model.DefaultParams(workload.Job{
		Profile:    workload.WordCount,
		NumObjects: 10,
		ObjectSize: 8 << 20,
	})
}

var smallTiers = []int{128, 512, 1024, 1536, 3008}

func planner(s Solver) *Planner {
	pl := New(smallParams())
	pl.Solver = s
	pl.DAGOptions = dag.Options{Tiers: smallTiers}
	return pl
}

// unconstrained returns an objective so loose every plan is feasible.
func unconstrainedTime() Objective {
	return Objective{Goal: MinTimeUnderBudget, Budget: 1e9}
}

func unconstrainedCost() Objective {
	return Objective{Goal: MinCostUnderDeadline, Deadline: 1e6 * time.Hour}
}

func TestAllSolversProduceValidPlans(t *testing.T) {
	for _, s := range []Solver{Algorithm1, Yen, Rerank, Brute} {
		pl := planner(s)
		plan, err := pl.Plan(unconstrainedTime())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		cfg := plan.Config
		if !pl.Params.Sheet.Lambda.ValidMemory(cfg.MapperMemMB) {
			t.Errorf("%v: bad mapper memory %d", s, cfg.MapperMemMB)
		}
		if cfg.ObjsPerMapper < 1 || cfg.ObjsPerMapper > 10 {
			t.Errorf("%v: bad kM %d", s, cfg.ObjsPerMapper)
		}
		if plan.Exact.TotalSec() <= 0 || plan.Exact.TotalCost() <= 0 {
			t.Errorf("%v: degenerate prediction %+v", s, plan.Exact)
		}
	}
}

func TestUnconstrainedTimePlanPicksFastMemory(t *testing.T) {
	plan, err := planner(Brute).Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	// With no budget, the fastest plan uses memory at or above the speed
	// floor for the heavy phases.
	if plan.Config.MapperMemMB < 1536 {
		t.Errorf("unconstrained fastest plan picked mapper memory %d", plan.Config.MapperMemMB)
	}
}

func TestUnconstrainedCostPlanPicksSmallMemory(t *testing.T) {
	plan, err := planner(Brute).Plan(unconstrainedCost())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.MapperMemMB != 128 {
		t.Errorf("cheapest plan picked mapper memory %d, want 128", plan.Config.MapperMemMB)
	}
}

func TestBudgetBindsPlanCost(t *testing.T) {
	// Get the unconstrained fastest plan's cost, then halve the budget:
	// the new plan must respect it (under the exact model for Brute).
	free, err := planner(Brute).Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	budget := free.Exact.TotalCost() / 2
	tight, err := planner(Brute).Plan(Objective{Goal: MinTimeUnderBudget, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Exact.TotalCost() > budget {
		t.Fatalf("plan cost %v exceeds budget %v", tight.Exact.TotalCost(), budget)
	}
	if tight.Exact.TotalSec() < free.Exact.TotalSec()-1e-9 {
		t.Fatal("constrained plan cannot be faster than unconstrained optimum")
	}
}

func TestDeadlineBindsPlanTime(t *testing.T) {
	cheapest, err := planner(Brute).Plan(unconstrainedCost())
	if err != nil {
		t.Fatal(err)
	}
	deadline := cheapest.Exact.JCT() / 2
	tight, err := planner(Brute).Plan(Objective{Goal: MinCostUnderDeadline, Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Exact.JCT() > deadline {
		t.Fatalf("plan JCT %v exceeds deadline %v", tight.Exact.JCT(), deadline)
	}
	if tight.Exact.TotalCost() < cheapest.Exact.TotalCost()-1e-12 {
		t.Fatal("constrained plan cannot be cheaper than unconstrained optimum")
	}
}

func TestInfeasibleObjectives(t *testing.T) {
	for _, s := range []Solver{Algorithm1, Yen, Rerank, Brute} {
		pl := planner(s)
		if _, err := pl.Plan(Objective{Goal: MinTimeUnderBudget, Budget: 1e-12}); !errors.Is(err, ErrNoFeasiblePlan) {
			t.Errorf("%v: err = %v, want ErrNoFeasiblePlan", s, err)
		}
		if _, err := pl.Plan(Objective{Goal: MinCostUnderDeadline, Deadline: time.Nanosecond}); !errors.Is(err, ErrNoFeasiblePlan) {
			t.Errorf("%v: deadline err = %v, want ErrNoFeasiblePlan", s, err)
		}
	}
}

// TestYenMatchesBruteUnconstrained: without a binding constraint the DAG
// shortest path is the DAG-model optimum; the exact-model optimum (Brute)
// must be at least as good under the exact model, and Yen's plan must be
// DAG-optimal.
func TestSolverOptimalityOrdering(t *testing.T) {
	obj := unconstrainedTime()
	yen, err := planner(Yen).Plan(obj)
	if err != nil {
		t.Fatal(err)
	}
	alg1, err := planner(Algorithm1).Plan(obj)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := planner(Brute).Plan(obj)
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained, Algorithm 1 and Yen both return the plain shortest
	// path, so they agree on the paper-model objective.
	if math.Abs(yen.Paper.TotalSec()-alg1.Paper.TotalSec()) > 1e-9 {
		t.Errorf("Yen %v and Algorithm1 %v disagree unconstrained",
			yen.Paper.TotalSec(), alg1.Paper.TotalSec())
	}
	// Brute optimizes the exact model, so under the exact model it is the
	// best of the three.
	if brute.Exact.TotalSec() > yen.Exact.TotalSec()+1e-9 {
		t.Errorf("brute %v slower than yen %v under the exact model",
			brute.Exact.TotalSec(), yen.Exact.TotalSec())
	}
}

func TestRerankRespectsConstraintUnderExactModel(t *testing.T) {
	free, err := planner(Rerank).Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	// Rerank only explores the top-K DAG paths, so it may declare a tight
	// budget infeasible; but any plan it does return must respect the
	// budget under the exact model.
	for _, frac := range []float64{1.0, 0.75, 0.5} {
		budget := free.Exact.TotalCost() * pricing.USD(frac)
		plan, err := planner(Rerank).Plan(Objective{Goal: MinTimeUnderBudget, Budget: budget})
		if errors.Is(err, ErrNoFeasiblePlan) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if plan.Exact.TotalCost() > budget {
			t.Fatalf("rerank plan cost %v exceeds budget %v", plan.Exact.TotalCost(), budget)
		}
	}
	// At the unconstrained plan's own cost, a feasible plan exists within
	// the scanned paths by construction.
	if _, err := planner(Rerank).Plan(Objective{
		Goal: MinTimeUnderBudget, Budget: free.Exact.TotalCost(),
	}); err != nil {
		t.Fatalf("rerank must find a plan at its own unconstrained cost: %v", err)
	}
}

func TestCSPAndAutoSolveTightDeadline(t *testing.T) {
	// A deadline between the cheapest and fastest plans' times: CSP must
	// find the cheapest plan that makes it; Auto must not error.
	fastest, err := planner(Brute).Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	cheapest, err := planner(Brute).Plan(unconstrainedCost())
	if err != nil {
		t.Fatal(err)
	}
	deadline := (fastest.Exact.JCT() + cheapest.Exact.JCT()) / 2
	for _, s := range []Solver{CSP, Auto} {
		plan, err := planner(s).Plan(Objective{Goal: MinCostUnderDeadline, Deadline: deadline})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// The constraint is enforced against the paper model used in the
		// DAG; verify it there.
		if plan.Paper.JCT() > deadline+time.Millisecond {
			t.Fatalf("%v: paper-model JCT %v exceeds deadline %v", s, plan.Paper.JCT(), deadline)
		}
	}
}

func TestBruteWorkLimitGuard(t *testing.T) {
	pl := New(model.DefaultParams(workload.Query25GB()))
	pl.Solver = Brute // 202 objects x full tier set: way over the limit
	if _, err := pl.Plan(unconstrainedTime()); err == nil {
		t.Fatal("expected the work-limit guard to fire")
	}
}

func TestBaselineShapes(t *testing.T) {
	b1, b2, b3 := Baseline1(10), Baseline2(10), Baseline3(10)
	if b1.MapperMemMB != 1536 || b1.ObjsPerMapper != 1 || b1.ObjsPerReducer != 2 {
		t.Fatalf("baseline1 = %+v", b1)
	}
	if b2.MapperMemMB != 128 || b2.ReducerMemMB != 128 {
		t.Fatalf("baseline2 = %+v", b2)
	}
	// Baseline 3: 10 mappers -> kR = 5 -> step 1 has 2 reducers, step 2
	// has 1.
	if b3.ObjsPerReducer != 5 || b3.MapperMemMB != 128 || b3.ReducerMemMB != 1536 {
		t.Fatalf("baseline3 = %+v", b3)
	}
	if len(Baselines(10)) != 3 || len(BaselineNames) != 3 {
		t.Fatal("baseline set changed")
	}
}

func TestAstraBeatsBaselinesOnTime(t *testing.T) {
	// The headline property behind Fig. 7: given a budget equal to the
	// most expensive baseline's cost, Astra's plan is at least as fast as
	// every baseline.
	params := smallParams()
	exact := model.NewExact(params)
	var worstCost pricing.USD
	var bestBaselineTime float64 = math.Inf(1)
	for _, cfg := range Baselines(params.Job.NumObjects) {
		pred, err := exact.Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pred.TotalCost() > worstCost {
			worstCost = pred.TotalCost()
		}
		if pred.TotalSec() < bestBaselineTime {
			bestBaselineTime = pred.TotalSec()
		}
	}
	pl := planner(Brute)
	plan, err := pl.Plan(Objective{Goal: MinTimeUnderBudget, Budget: worstCost})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Exact.TotalSec() > bestBaselineTime+1e-9 {
		t.Fatalf("Astra %vs slower than best baseline %vs under the baselines' budget",
			plan.Exact.TotalSec(), bestBaselineTime)
	}
}

func TestGoalAndSolverStrings(t *testing.T) {
	if MinTimeUnderBudget.String() == "" || MinCostUnderDeadline.String() == "" {
		t.Fatal("goal names empty")
	}
	for _, s := range []Solver{Algorithm1, Yen, Rerank, Brute} {
		if s.String() == "" {
			t.Fatal("solver name empty")
		}
	}
}

func TestPlanSummary(t *testing.T) {
	plan, err := planner(Algorithm1).Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Summary() == "" {
		t.Fatal("empty summary")
	}
}
