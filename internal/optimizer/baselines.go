package optimizer

import (
	"astra/internal/mapreduce"
)

// The three baseline configuration strategies of Sec. V. They encode the
// "vague sense" a user gets from eyeballing Fig. 6 without a model:
// Baseline 1 buys performance, Baseline 2 buys thrift, Baseline 3 mixes.

// Baseline1 is the performance-leaning baseline: 1536 MB for every lambda
// (Fig. 6 shows little improvement above that), one object per mapper for
// maximum mapper parallelism, and two objects per reducer.
func Baseline1(numObjects int) mapreduce.Config {
	return mapreduce.Config{
		MapperMemMB:    1536,
		CoordMemMB:     1536,
		ReducerMemMB:   1536,
		ObjsPerMapper:  1,
		ObjsPerReducer: 2,
	}
}

// Baseline2 is the cost-leaning baseline: the smallest memory block
// (128 MB) everywhere, with Baseline 1's object allocations.
func Baseline2(numObjects int) mapreduce.Config {
	return mapreduce.Config{
		MapperMemMB:    128,
		CoordMemMB:     128,
		ReducerMemMB:   128,
		ObjsPerMapper:  1,
		ObjsPerReducer: 2,
	}
}

// Baseline3 is the hybrid baseline: cheap maximum-parallelism mappers
// (128 MB, one object each) and a two-step reducing phase on 1536 MB
// lambdas — two reducers splitting the objects in the first step and one
// final reducer — which requires objects-per-reducer of ceil(j/2) where j
// is the mapper count (= the object count, since each mapper takes one).
func Baseline3(numObjects int) mapreduce.Config {
	kR := (numObjects + 1) / 2
	if kR < 1 {
		kR = 1
	}
	return mapreduce.Config{
		MapperMemMB:    128,
		CoordMemMB:     1536,
		ReducerMemMB:   1536,
		ObjsPerMapper:  1,
		ObjsPerReducer: kR,
	}
}

// Baselines returns the three baseline configs for a job size, in paper
// order.
func Baselines(numObjects int) []mapreduce.Config {
	return []mapreduce.Config{
		Baseline1(numObjects), Baseline2(numObjects), Baseline3(numObjects),
	}
}

// BaselineNames labels the baselines in figure legends.
var BaselineNames = []string{"Baseline 1", "Baseline 2", "Baseline 3"}
