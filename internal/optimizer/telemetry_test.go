package optimizer

import (
	"strings"
	"testing"
	"time"

	"astra/internal/telemetry"
)

// TestTelemetryDoesNotPerturbPlans is the observe-only guarantee:
// attaching a registry must leave every solver's plan bit-identical,
// serial and parallel alike.
func TestTelemetryDoesNotPerturbPlans(t *testing.T) {
	objectives := []Objective{
		unconstrainedTime(),
		{Goal: MinTimeUnderBudget, Budget: 0.002},
		{Goal: MinCostUnderDeadline, Deadline: 2 * time.Minute},
	}
	for _, s := range []Solver{Algorithm1, Yen, CSP, Rerank, Brute, Auto} {
		for oi, obj := range objectives {
			bare := planner(s)
			bare.Parallelism = 1
			want, werr := bare.Plan(obj)

			for _, workers := range []int{1, 4} {
				pl := planner(s)
				pl.Parallelism = workers
				pl.Tel = telemetry.New()
				got, gerr := pl.Plan(obj)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("solver %v obj %d workers %d: err %v vs bare %v",
						s, oi, workers, gerr, werr)
				}
				if werr != nil {
					continue
				}
				if got.Config != want.Config {
					t.Fatalf("solver %v obj %d workers %d: telemetry changed the plan: %v vs %v",
						s, oi, workers, got.Config, want.Config)
				}
				if got.Exact.JCT() != want.Exact.JCT() || got.Exact.TotalCost() != want.Exact.TotalCost() ||
					got.Paper.JCT() != want.Paper.JCT() || got.Paper.TotalCost() != want.Paper.TotalCost() {
					t.Fatalf("solver %v obj %d workers %d: telemetry changed predictions",
						s, oi, workers)
				}
			}
		}
	}
}

// TestSearchStatsWithRegistry checks that a plan carried out under a
// registry reports its search counters and leaves spans behind.
func TestSearchStatsWithRegistry(t *testing.T) {
	reg := telemetry.New()
	pl := planner(Auto)
	pl.Tel = reg
	plan, err := pl.Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Search
	if !st.Telemetry {
		t.Fatal("SearchStats.Telemetry = false with a registry attached")
	}
	if st.Solver != Auto || st.Wall <= 0 {
		t.Fatalf("solver/wall = %v/%v", st.Solver, st.Wall)
	}
	if st.DAGBuilds < 1 || st.DAGNodes == 0 || st.DAGEdges == 0 {
		t.Fatalf("DAG stats empty: %+v", st)
	}
	if st.DijkstraRuns == 0 || st.EdgesRelaxed == 0 {
		t.Fatalf("no shortest-path work recorded: %+v", st)
	}
	if st.CacheMisses == 0 {
		t.Fatalf("cold plan reported no model evaluations: %+v", st)
	}
	if st.ConfigsEvaluated() != st.CacheMisses {
		t.Fatalf("ConfigsEvaluated = %d, want %d", st.ConfigsEvaluated(), st.CacheMisses)
	}

	snap := reg.Snapshot()
	if n := len(snap.SpansUnder("plan")); n == 0 {
		t.Fatal("no plan spans recorded")
	}
	if snap.Counter(telemetry.MPlanSolves) != 1 {
		t.Fatalf("plan solves = %d, want 1", snap.Counter(telemetry.MPlanSolves))
	}
}

// TestSearchStatsWithoutRegistry: the always-available fields (wall
// time, calibration, cache traffic) still populate, with Telemetry
// false so "zero" is distinguishable from "not measured".
func TestSearchStatsWithoutRegistry(t *testing.T) {
	plan, err := planner(Auto).Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Search
	if st.Telemetry {
		t.Fatal("Telemetry = true without a registry")
	}
	if st.Wall <= 0 || st.CacheMisses == 0 {
		t.Fatalf("always-available stats missing: %+v", st)
	}
	if st.DAGBuilds != 0 || st.DijkstraRuns != 0 {
		t.Fatalf("counter fields populated without a registry: %+v", st)
	}
}

func TestExplainReport(t *testing.T) {
	pl := planner(Auto)
	pl.Tel = telemetry.New()
	plan, err := pl.Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	for _, want := range []string{
		"execution plan", "config:", "solver:", "predicted (exact)",
		"predicted (paper)", "search", "wall time:", "configs evaluated:",
		"prediction cache:", "dag:", "dijkstra:", "pool:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "counters:           disabled") {
		t.Fatalf("explain reports counters disabled despite registry:\n%s", out)
	}

	// Without a registry the report must say the counters are absent
	// rather than print zeros as if measured.
	bare, err := planner(Auto).Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	if out := bare.Explain(); !strings.Contains(out, "disabled") {
		t.Fatalf("bare explain should flag disabled counters:\n%s", out)
	}
}

// TestPlanSnapshotDeltasAreScoped: two consecutive plans on one planner
// must each report only their own search's cache traffic, not the
// registry's running totals.
func TestPlanSnapshotDeltasAreScoped(t *testing.T) {
	pl := planner(Auto)
	pl.Tel = telemetry.New()
	first, err := pl.Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	second, err := pl.Plan(unconstrainedTime())
	if err != nil {
		t.Fatal(err)
	}
	// The second plan reuses the memoized DAG and warm cache: it must not
	// re-report the first search's misses.
	if second.Search.CacheMisses >= first.Search.CacheMisses {
		t.Fatalf("second search misses %d not below first %d — deltas unscoped?",
			second.Search.CacheMisses, first.Search.CacheMisses)
	}
	if second.Search.DAGBuilds != 0 {
		t.Fatalf("second search rebuilt the DAG %d times, want 0 (memoized)",
			second.Search.DAGBuilds)
	}
}
