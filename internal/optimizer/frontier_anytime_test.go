package optimizer

import (
	"context"
	"errors"
	"testing"
	"time"

	"astra/internal/dag"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/telemetry"
	"astra/internal/workload"
)

func sortParams() model.Params {
	return model.DefaultParams(workload.Job{
		Profile:    workload.Sort,
		NumObjects: 20,
		ObjectSize: 16 << 20,
	})
}

// checkFrontierShape fails unless pts is sorted fastest first with no
// point dominated by another.
func checkFrontierShape(t *testing.T, label string, pts []FrontierPoint) {
	t.Helper()
	for i := 1; i < len(pts); i++ {
		if pts[i].Pred.TotalSec() < pts[i-1].Pred.TotalSec() {
			t.Fatalf("%s: not sorted by time at %d", label, i)
		}
	}
	for i, a := range pts {
		for j, b := range pts {
			if i == j {
				continue
			}
			if b.Pred.TotalSec() <= a.Pred.TotalSec() &&
				b.Pred.TotalCost() <= a.Pred.TotalCost() &&
				(b.Pred.TotalSec() < a.Pred.TotalSec() || b.Pred.TotalCost() < a.Pred.TotalCost()) {
				t.Fatalf("%s: point %d dominated by %d", label, i, j)
			}
		}
	}
}

func samePoints(a, b []FrontierPoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Config != b[i].Config || a[i].Pred.TotalSec() != b[i].Pred.TotalSec() ||
			a[i].Pred.TotalCost() != b[i].Pred.TotalCost() {
			return false
		}
	}
	return true
}

// TestFrontierAnytimeMonotonicity is the anytime contract, across two
// workloads and three parallelism degrees:
//
//   - the observer sees at least three progressively refined snapshots,
//   - every snapshot is dominance-consistent and sorted,
//   - a point of the final frontier, once it appears in a snapshot, is
//     never retracted by a later one,
//   - the closing update carries Final and exactly the returned points,
//   - and the final frontier is bit-identical at every pool size.
func TestFrontierAnytimeMonotonicity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		params model.Params
	}{
		{"wordcount", smallParams()},
		{"sort", sortParams()},
	} {
		var reference []FrontierPoint
		for _, workers := range []int{1, 4, 0} {
			var updates []FrontierUpdate
			res, err := SweepFrontier(context.Background(), FrontierSpec{
				Params:      tc.params,
				Size:        12,
				Parallelism: workers,
				Observer:    func(u FrontierUpdate) { updates = append(updates, u) },
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if len(updates) < 3 {
				t.Fatalf("%s workers=%d: only %d snapshots, want >= 3", tc.name, workers, len(updates))
			}
			last := updates[len(updates)-1]
			if !last.Final {
				t.Fatalf("%s workers=%d: last update not Final", tc.name, workers)
			}
			if !samePoints(last.Points, res.Points) {
				t.Fatalf("%s workers=%d: final snapshot differs from the returned frontier", tc.name, workers)
			}
			for i, u := range updates[:len(updates)-1] {
				if u.Final {
					t.Fatalf("%s workers=%d: update %d marked Final early", tc.name, workers, i)
				}
				if i > 0 && u.Phase <= updates[i-1].Phase {
					t.Fatalf("%s workers=%d: phases not increasing (%d then %d)",
						tc.name, workers, updates[i-1].Phase, u.Phase)
				}
			}
			finalSet := make(map[mapreduce.Config]bool, len(res.Points))
			for _, p := range res.Points {
				finalSet[p.Config] = true
			}
			seen := map[mapreduce.Config]bool{}
			for i, u := range updates {
				checkFrontierShape(t, tc.name, u.Points)
				inThis := map[mapreduce.Config]bool{}
				for _, p := range u.Points {
					inThis[p.Config] = true
				}
				for cfg := range seen {
					if !inThis[cfg] {
						t.Fatalf("%s workers=%d: update %d retracted final-frontier point %v",
							tc.name, workers, i, cfg)
					}
				}
				for cfg := range inThis {
					if finalSet[cfg] {
						seen[cfg] = true
					}
				}
			}
			if res.Stats.Phases < 2 || res.Stats.Searches == 0 || res.Stats.Evaluations == 0 {
				t.Fatalf("%s workers=%d: degenerate stats %+v", tc.name, workers, res.Stats)
			}
			if reference == nil {
				reference = res.Points
			} else if !samePoints(reference, res.Points) {
				t.Fatalf("%s: frontier differs at workers=%d", tc.name, workers)
			}
		}
	}
}

// TestFrontierObserverCancelMidPhase: cancelling the sweep's context from
// inside the observer aborts the remaining phases promptly with ctx.Err(),
// and no Final update is ever delivered.
func TestFrontierObserverCancelMidPhase(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var updates []FrontierUpdate
	_, err := SweepFrontier(ctx, FrontierSpec{
		Params: smallParams(),
		Size:   16,
		Observer: func(u FrontierUpdate) {
			updates = append(updates, u)
			cancel()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(updates) == 0 {
		t.Fatal("observer never ran before cancellation")
	}
	for _, u := range updates {
		if u.Final {
			t.Fatal("cancelled sweep still delivered a Final update")
		}
	}
}

// TestFrontierSpecWorkersKnob pins the unified parallelism knob: the
// spec-level Parallelism wins, a DAG-level setting is adopted sweep-wide
// when the spec is silent, and the deprecated FrontierContext no longer
// lets its workers argument silently squash opts.Parallelism.
func TestFrontierSpecWorkersKnob(t *testing.T) {
	if got := (FrontierSpec{Parallelism: 2, DAG: dag.Options{Parallelism: 3}}).workers(); got != 2 {
		t.Fatalf("spec Parallelism should win: got %d", got)
	}
	if got := (FrontierSpec{DAG: dag.Options{Parallelism: 3}}).workers(); got != 3 {
		t.Fatalf("DAG Parallelism should be adopted when spec is silent: got %d", got)
	}
	if got := (FrontierSpec{}).workers(); got != 0 {
		t.Fatalf("zero spec should resolve to 0 (all cores): got %d", got)
	}

	// Behavioral: a DAG-level Parallelism=3 must actually size the pool
	// used by the search phases (the historical bug ran them serial).
	reg := telemetry.New()
	if _, err := SweepFrontier(context.Background(), FrontierSpec{
		Params: smallParams(),
		Size:   8,
		DAG:    dag.Options{Parallelism: 3},
		Tel:    reg,
	}); err != nil {
		t.Fatal(err)
	}
	if peak := reg.Gauge(telemetry.MPoolWorkersPeak).Value(); peak != 3 {
		t.Fatalf("pool workers peak = %d, want 3", peak)
	}

	// The shim resolves the same way and returns the same frontier.
	viaOpts, err := FrontierContext(context.Background(), smallParams(), 8, dag.Options{Parallelism: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaArg, err := FrontierContext(context.Background(), smallParams(), 8, dag.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(viaOpts, viaArg) {
		t.Fatal("shim: opts.Parallelism and workers paths disagree")
	}
}

// hypervolume is the area dominated by a frontier (sorted fastest first)
// up to the reference corner (refT, refC).
func hypervolume(pts []FrontierPoint, refT, refC float64) float64 {
	hv, prevCost := 0.0, refC
	for _, p := range pts {
		tsec, cost := p.Pred.TotalSec(), float64(p.Pred.TotalCost())
		if tsec >= refT || cost >= prevCost {
			continue
		}
		hv += (refT - tsec) * (prevCost - cost)
		prevCost = cost
	}
	return hv
}

// TestFrontierQualityVsUniformReference guards sweep quality against the
// pre-refactor strategy: constrained plans at Size evenly spaced
// deadlines between the endpoints (what the old engine effectively
// computed, rebuilt here with the ordinary planner as an independent
// oracle). The phased sweep's hypervolume must be at least 98% of the
// uniform reference's.
func TestFrontierQualityVsUniformReference(t *testing.T) {
	params := sortParams()
	const k = 12
	res, err := SweepFrontier(context.Background(), FrontierSpec{Params: params, Size: k})
	if err != nil {
		t.Fatal(err)
	}

	pl := New(params)
	pl.Solver = CSP
	fastest, err := pl.Plan(Objective{Goal: MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	cheapest, err := pl.Plan(Objective{Goal: MinCostUnderDeadline, Deadline: 1e6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := fastest.Exact.TotalSec(), cheapest.Exact.TotalSec()
	var ref []FrontierPoint
	for i := 0; i < k; i++ {
		dl := lo + (hi-lo)*float64(i)/float64(k-1)
		p, err := pl.Plan(Objective{
			Goal:     MinCostUnderDeadline,
			Deadline: time.Duration(dl * (1 + 1e-9) * float64(time.Second)),
		})
		if err != nil {
			continue
		}
		ref = append(ref, FrontierPoint{Config: p.Config, Pred: p.Exact})
	}
	ref = paretoPrune(ref)
	if len(ref) < 2 {
		t.Fatalf("reference frontier degenerate: %d points", len(ref))
	}

	// Shared reference corner just past the union's worst point on each
	// axis.
	refT, refC := 0.0, 0.0
	for _, p := range append(append([]FrontierPoint{}, res.Points...), ref...) {
		if s := p.Pred.TotalSec(); s > refT {
			refT = s
		}
		if c := float64(p.Pred.TotalCost()); c > refC {
			refC = c
		}
	}
	refT, refC = refT*1.01, refC*1.01
	hvSweep := hypervolume(res.Points, refT, refC)
	hvRef := hypervolume(ref, refT, refC)
	if hvSweep < hvRef*0.98 {
		t.Fatalf("sweep hypervolume %.6g below 98%% of uniform reference %.6g", hvSweep, hvRef)
	}
}
