package optimizer

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"astra/internal/dag"
	"astra/internal/model"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// TestTemplateKeyNoCollisions is the cache-key safety property: any
// difference in model parameters, tier list, kM/kR caps, dominated-tier
// switch, DAG mode or model flavor must produce a distinct template key —
// a collision would silently serve one tenant another tenant's graph.
func TestTemplateKeyNoCollisions(t *testing.T) {
	base := model.DefaultParams(workload.Sort100GB())

	// One variant per Params field the graph depends on.
	paramVariants := []model.Params{base}
	perturb := func(f func(*model.Params)) {
		p := base
		p.Sheet = clonedSheet(base.Sheet)
		f(&p)
		paramVariants = append(paramVariants, p)
	}
	perturb(func(p *model.Params) { p.Job.NumObjects++ })
	perturb(func(p *model.Params) { p.Job.ObjectSize++ })
	perturb(func(p *model.Params) { p.Job.Profile.Name = "sort-variant" })
	perturb(func(p *model.Params) { p.Job.Profile.USecPerMB *= 1.5 })
	perturb(func(p *model.Params) { p.Job.Profile.CoordSecPerObject += 0.001 })
	perturb(func(p *model.Params) { p.Job.Profile.MapOutputRatio *= 0.5 })
	perturb(func(p *model.Params) { p.Job.Profile.ReduceOutputRatio *= 0.5 })
	perturb(func(p *model.Params) { p.Job.Profile.SingleStepReduce = !p.Job.Profile.SingleStepReduce })
	perturb(func(p *model.Params) { p.BandwidthBps *= 2 })
	perturb(func(p *model.Params) { p.StateObjectBytes++ })
	perturb(func(p *model.Params) { p.RequestLatency += time.Millisecond })
	perturb(func(p *model.Params) { p.DispatchLatency += time.Millisecond })
	perturb(func(p *model.Params) { p.MaxLambdas = 500 })
	perturb(func(p *model.Params) { p.Speed.RefMemMB += 128 })
	perturb(func(p *model.Params) { p.Speed.FloorMemMB += 128 })
	perturb(func(p *model.Params) { p.Sheet.Lambda.PerGBSecond *= 2 })
	perturb(func(p *model.Params) { p.Sheet.Lambda.PerInvocation *= 2 })
	perturb(func(p *model.Params) { p.Sheet.Lambda.MinMemoryMB += 64 })
	perturb(func(p *model.Params) { p.Sheet.Lambda.MaxMemoryMB -= 64 })
	perturb(func(p *model.Params) { p.Sheet.Lambda.MemoryStepMB *= 2 })
	perturb(func(p *model.Params) { p.Sheet.Lambda.BillingQuantum *= 2 })
	perturb(func(p *model.Params) { p.Sheet.Lambda.MaxConcurrency /= 2 })
	perturb(func(p *model.Params) { p.Sheet.Store.PerPut *= 2 })
	perturb(func(p *model.Params) { p.Sheet.Store.PerGet *= 2 })
	perturb(func(p *model.Params) { p.Sheet.Store.StoragePerGBMonth *= 2 })

	optVariants := []dag.Options{
		{},
		{Tiers: []int{1024}},
		{Tiers: []int{1024, 2048}},
		{Tiers: []int{2048, 1024}}, // order matters: it is the node layout
		{MaxKM: 1},
		{MaxKM: 5},
		{MaxKR: 2},
		{MaxKM: 5, MaxKR: 2},
		{KeepDominatedTiers: true},
	}

	seen := make(map[TemplateKey]string)
	for pi, p := range paramVariants {
		for oi, o := range optVariants {
			for _, mode := range []dag.Mode{dag.MinimizeTime, dag.MinimizeCost} {
				for _, agg := range []bool{false, true} {
					k := KeyFor(p, mode, o, agg)
					id := fmt.Sprintf("params[%d]/opts[%d]/mode=%d/agg=%v", pi, oi, mode, agg)
					if prev, dup := seen[k]; dup {
						t.Fatalf("template key collision: %s and %s both map to %+v", prev, id, k)
					}
					seen[k] = id
				}
			}
		}
	}

	// Parallelism must NOT change the key: the built graph is identical
	// at every pool size, and splitting the cache by pool size would
	// throw away exactly the cross-tenant hits the cache exists for.
	for _, par := range []int{0, 1, 4, 64} {
		o := dag.Options{MaxKM: 5, Parallelism: par}
		if got, want := o.Fingerprint(), (dag.Options{MaxKM: 5}).Fingerprint(); got != want {
			t.Fatalf("Options.Fingerprint changed with Parallelism=%d: %x != %x", par, got, want)
		}
	}
}

func clonedSheet(s *pricing.Sheet) *pricing.Sheet {
	c := *s
	return &c
}

// normalizePlan strips the fields that legitimately differ between a
// cold and a cached search — wall-clock and work-count statistics — so
// DeepEqual compares only the decision output: configuration, objective,
// predictions.
func normalizePlan(p *Plan) Plan {
	q := *p
	q.Search = SearchStats{}
	return q
}

// TestTemplateHitPlanIdentical asserts the acceptance property: for every
// solver, a plan served from a shared template cache (both the build-miss
// and the hit) is deep-equal to a cold plan with no cache at all.
func TestTemplateHitPlanIdentical(t *testing.T) {
	params := model.DefaultParams(workload.Sort100GB())
	obj := Objective{Goal: MinTimeUnderBudget, Budget: 1}

	for _, tc := range []struct {
		name   string
		solver Solver
	}{
		{"Algorithm1", Algorithm1},
		{"Yen", Yen},
		{"CSP", CSP},
		{"Auto", Auto},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := func(tpl *TemplateCache) *Plan {
				pl := New(params)
				pl.Solver = tc.solver
				pl.Parallelism = 1
				pl.Templates = tpl
				p, err := pl.Plan(obj)
				if err != nil {
					t.Fatalf("plan (templates=%v): %v", tpl != nil, err)
				}
				return p
			}
			cold := normalizePlan(plan(nil))
			shared := NewTemplateCache(0)
			missPlan := normalizePlan(plan(shared)) // populates the cache
			hitPlan := normalizePlan(plan(shared)) // must be served from it
			if st := shared.Stats(); st.Hits == 0 {
				t.Fatalf("second plan did not hit the template cache: %+v", st)
			}
			if !reflect.DeepEqual(cold, missPlan) {
				t.Errorf("template-miss plan differs from cold plan:\ncold: %+v\nmiss: %+v", cold, missPlan)
			}
			if !reflect.DeepEqual(cold, hitPlan) {
				t.Errorf("template-hit plan differs from cold plan:\ncold: %+v\nhit:  %+v", cold, hitPlan)
			}
		})
	}
}

// TestTemplateCacheSingleflight asserts a thundering herd of identical
// keys performs one build and everyone gets the same frozen graph.
func TestTemplateCacheSingleflight(t *testing.T) {
	params := model.DefaultParams(workload.WordCount1GB())
	tc := NewTemplateCache(0)
	key := KeyFor(params, dag.MinimizeTime, dag.Options{}, false)

	const herd = 16
	var builds int
	var mu sync.Mutex
	release := make(chan struct{}) // holds the builder until the herd has joined
	results := make([]*dag.DAG, herd)
	var wg sync.WaitGroup
	wg.Add(herd)
	for i := 0; i < herd; i++ {
		go func(i int) {
			defer wg.Done()
			d, err := tc.Get(context.Background(), key, func(ctx context.Context) (*dag.DAG, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				<-release
				return dag.BuildContext(ctx, model.NewPaper(params), dag.MinimizeTime, dag.Options{Parallelism: 1})
			})
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			results[i] = d
		}(i)
	}
	// Every non-builder registers as a waiting miss before blocking on
	// the flight; release the builder once the whole herd is aboard.
	for tc.Stats().Waits < herd-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("herd of %d ran %d builds, want 1", herd, builds)
	}
	for i := 1; i < herd; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *dag.DAG than caller 0", i)
		}
	}
	st := tc.Stats()
	if st.Builds != 1 || st.Misses != herd || st.Waits != herd-1 {
		t.Fatalf("stats after herd: %+v (want 1 build, %d misses, %d waits)", st, herd, herd-1)
	}
}

// TestTemplateCacheEviction asserts the LRU bound holds and evictions are
// counted, while an evicted key simply rebuilds.
func TestTemplateCacheEviction(t *testing.T) {
	jobs := []workload.Job{
		workload.WordCount1GB(),
		workload.WordCount10GB(),
		workload.Query25GB(),
	}
	tc := NewTemplateCache(2)
	for _, j := range jobs {
		params := model.DefaultParams(j)
		_, err := tc.Get(context.Background(), KeyFor(params, dag.MinimizeTime, dag.Options{}, false),
			func(ctx context.Context) (*dag.DAG, error) {
				return dag.BuildContext(ctx, model.NewPaper(params), dag.MinimizeTime, dag.Options{Parallelism: 1})
			})
		if err != nil {
			t.Fatalf("build %s: %v", j.Profile.Name, err)
		}
	}
	st := tc.Stats()
	if st.Entries > 2 {
		t.Fatalf("cache holds %d entries, cap is 2", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions counted after overflowing the cap: %+v", st)
	}
}

// TestTemplateRaceHammer drives many goroutines planning a mixed set of
// shapes through one small shared template cache and one small shared
// prediction cache — concurrent first-freezes, singleflight joins and
// evictions all interleaving — and asserts every plan equals its
// serially-computed reference. Run under -race, this is the memory-safety
// gate for cross-planner sharing.
func TestTemplateRaceHammer(t *testing.T) {
	shapes := []workload.Job{
		workload.WordCount1GB(),
		workload.WordCount10GB(),
		workload.Query25GB(),
		workload.Sort100GB(),
	}
	solvers := []Solver{Algorithm1, Auto, CSP}
	obj := Objective{Goal: MinTimeUnderBudget, Budget: 1}

	// Serial references, one per (shape, solver), no sharing anywhere.
	refs := make(map[[2]int]*Plan)
	for si, j := range shapes {
		for vi, sv := range solvers {
			pl := New(model.DefaultParams(j))
			pl.Solver = sv
			pl.Parallelism = 1
			p, err := pl.Plan(obj)
			if err != nil {
				t.Fatalf("reference plan %s/%d: %v", j.Profile.Name, sv, err)
			}
			norm := normalizePlan(p)
			refs[[2]int{si, vi}] = &norm
		}
	}

	// Cap of 2 over 4 shapes x 2 modes forces continuous eviction and
	// rebuild under contention; the tiny prediction cache forces eviction
	// there too.
	tpl := NewTemplateCache(2)
	pred := model.NewPredictionCacheWithCap(512)

	goroutines, iters := 8, 12
	if testing.Short() {
		goroutines, iters = 4, 6
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				si := (g + i) % len(shapes)
				vi := (g * 7 / 3) % len(solvers)
				pl := New(model.DefaultParams(shapes[si]))
				pl.Solver = solvers[vi]
				pl.Parallelism = 1
				pl.Templates, pl.Cache = tpl, pred
				p, err := pl.Plan(obj)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				got := normalizePlan(p)
				if want := refs[[2]int{si, vi}]; !reflect.DeepEqual(&got, want) {
					errs <- fmt.Errorf("goroutine %d iter %d: plan for %s/solver %d diverged from serial reference",
						g, i, shapes[si].Profile.Name, solvers[vi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := tpl.Stats(); st.Evictions == 0 {
		t.Logf("warning: hammer produced no template evictions (stats %+v)", st)
	}
}
