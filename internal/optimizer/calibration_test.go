package optimizer

import (
	"testing"
	"time"

	"astra/internal/dag"
	"astra/internal/model"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// queryParams builds an instance where the DAG's JHat estimators are
// known to be optimistic for kM > 1 plans (scan-heavy profile, enough
// objects that the mapper-count estimate matters).
func queryParams() model.Params {
	return model.DefaultParams(workload.Job{
		Profile:    workload.Query,
		NumObjects: 24,
		ObjectSize: 48 << 20,
	})
}

// TestCalibrationEnforcesDeadlineUnderExactModel: whatever the DAG
// estimators believe, the returned plan must satisfy the user's deadline
// under the engine-faithful model (the calibration loop's contract).
func TestCalibrationEnforcesDeadlineUnderExactModel(t *testing.T) {
	params := queryParams()
	pl := New(params)
	pl.Solver = Brute
	pl.DAGOptions = dag.Options{Tiers: smallTiers}
	fastest, err := pl.Plan(Objective{Goal: MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	cheapest, err := pl.Plan(Objective{Goal: MinCostUnderDeadline, Deadline: 1e6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Sweep deadlines across the feasible range; every returned plan must
	// honor its deadline under the exact model.
	lo, hi := fastest.Exact.JCT(), cheapest.Exact.JCT()
	for _, s := range []Solver{Auto, CSP, Algorithm1} {
		for frac := 0.1; frac < 1.0; frac += 0.2 {
			deadline := lo + time.Duration(float64(hi-lo)*frac)
			p := New(params)
			p.Solver = s
			p.DAGOptions = dag.Options{Tiers: smallTiers}
			plan, err := p.Plan(Objective{Goal: MinCostUnderDeadline, Deadline: deadline})
			if err != nil {
				continue // a heuristic may declare infeasibility; that is allowed
			}
			if plan.Exact.JCT() > deadline {
				t.Errorf("%v at deadline %v: exact JCT %v violates it",
					s, deadline, plan.Exact.JCT())
			}
		}
	}
}

// TestCalibrationEnforcesBudgetUnderExactModel: same contract for the
// budget objective.
func TestCalibrationEnforcesBudgetUnderExactModel(t *testing.T) {
	params := queryParams()
	pl := New(params)
	pl.Solver = Brute
	pl.DAGOptions = dag.Options{Tiers: smallTiers}
	fastest, err := pl.Plan(Objective{Goal: MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	cheapest, err := pl.Plan(Objective{Goal: MinCostUnderDeadline, Deadline: 1e6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(cheapest.Exact.TotalCost()), float64(fastest.Exact.TotalCost())
	for _, s := range []Solver{Auto, CSP} {
		for frac := 0.1; frac < 1.0; frac += 0.2 {
			budget := pricing.USD(lo + (hi-lo)*frac)
			p := New(params)
			p.Solver = s
			p.DAGOptions = dag.Options{Tiers: smallTiers}
			plan, err := p.Plan(Objective{Goal: MinTimeUnderBudget, Budget: budget})
			if err != nil {
				continue
			}
			if plan.Exact.TotalCost() > budget {
				t.Errorf("%v at budget %v: exact cost %v violates it",
					s, budget, plan.Exact.TotalCost())
			}
		}
	}
}

// TestCalibrationDoesNotOvertighten: with a loose constraint, calibration
// must not run at all (the first plan already satisfies), so Auto equals
// the plain Algorithm 1 answer.
func TestCalibrationDoesNotOvertighten(t *testing.T) {
	params := queryParams()
	mk := func(s Solver) *Plan {
		p := New(params)
		p.Solver = s
		p.DAGOptions = dag.Options{Tiers: smallTiers}
		plan, err := p.Plan(Objective{Goal: MinTimeUnderBudget, Budget: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	auto, alg1 := mk(Auto), mk(Algorithm1)
	if auto.Config != alg1.Config {
		t.Fatalf("unconstrained Auto %v differs from Algorithm1 %v", auto.Config, alg1.Config)
	}
}
