package optimizer

import (
	"fmt"
	"strings"
	"time"

	"astra/internal/telemetry"
)

// SearchStats describes how one PlanContext call found its plan. The
// cache and calibration fields are always populated; the counter fields
// (DAG sizes, solver rounds, relaxations, pool activity) require a
// telemetry registry on the Planner and are zero — with Telemetry false
// — without one.
type SearchStats struct {
	// Solver is the strategy that produced the plan.
	Solver Solver
	// Wall is the end-to-end planning time, calibration included.
	Wall time.Duration
	// Telemetry reports whether the counter fields below were measured
	// (a registry was attached) or are merely absent.
	Telemetry bool
	// CalibrationRounds counts constraint-tightening re-solves beyond
	// the first pass (0: the first solution already held under the
	// exact model).
	CalibrationRounds int64

	// Prediction-cache traffic attributable to this search. Misses are
	// fresh model evaluations, so CacheMisses is also the number of
	// distinct (predictor, Config) evaluations this search paid for.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64

	// DAG construction: builds this search triggered (0 when memoized
	// builds were reused) and the graph size of the last build.
	DAGBuilds int64
	DAGNodes  int64
	DAGEdges  int64

	// Shortest-path work across all solver passes.
	DijkstraRuns     int64
	EdgesRelaxed     int64
	Alg1Rounds       int64
	Alg1EdgesDropped int64
	YenRounds        int64
	YenSpurSearches  int64
	CSPLabelsPopped  int64

	// Search-memory recycling: pooled scratch reuses (vs fresh
	// allocations) and constrained-search labels drawn from the arena.
	ScratchReuse       int64
	CSPLabelsAllocated int64

	// Worker-pool activity: batches submitted, total tasks, and the
	// peak concurrently-busy workers observed.
	PoolBatches     int64
	PoolTasks       int64
	PoolWorkersPeak int64
}

// fillFromDeltas populates the counter fields from the growth between
// two snapshots of the planner's registry (gauges are read from the
// later snapshot directly: they describe current state, not traffic).
func (st *SearchStats) fillFromDeltas(now, prev telemetry.Snapshot) {
	st.DAGBuilds = now.CounterDelta(prev, telemetry.MDAGBuilds)
	st.DAGNodes = now.Gauge(telemetry.MDAGNodes)
	st.DAGEdges = now.Gauge(telemetry.MDAGEdges)
	st.DijkstraRuns = now.CounterDelta(prev, telemetry.MSearchDijkstraRuns)
	st.EdgesRelaxed = now.CounterDelta(prev, telemetry.MSearchEdgesRelaxed)
	st.Alg1Rounds = now.CounterDelta(prev, telemetry.MAlg1Rounds)
	st.Alg1EdgesDropped = now.CounterDelta(prev, telemetry.MAlg1EdgesRemoved)
	st.YenRounds = now.CounterDelta(prev, telemetry.MYenRounds)
	st.YenSpurSearches = now.CounterDelta(prev, telemetry.MYenSpurSearches)
	st.CSPLabelsPopped = now.CounterDelta(prev, telemetry.MCSPLabelsPopped)
	st.ScratchReuse = now.CounterDelta(prev, telemetry.MSearchScratchReuse)
	st.CSPLabelsAllocated = now.CounterDelta(prev, telemetry.MCSPLabelsAllocated)
	st.PoolBatches = now.CounterDelta(prev, telemetry.MPoolBatches)
	st.PoolTasks = now.CounterDelta(prev, telemetry.MPoolTasks)
	st.PoolWorkersPeak = now.Gauge(telemetry.MPoolWorkersPeak)
}

// ConfigsEvaluated is the number of fresh model evaluations the search
// paid for (cache misses; hits were free).
func (st SearchStats) ConfigsEvaluated() int64 { return st.CacheMisses }

// CacheHitRate is hits/(hits+misses), 0 when the cache was untouched.
func (st SearchStats) CacheHitRate() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// Explain renders a human-readable plan report: the chosen
// configuration, both model predictions, and how the search found it.
// It is the optimizer-side analogue of a database EXPLAIN.
func (p Plan) Explain() string {
	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	line("execution plan")
	line("  config:             %s", p.Config)
	switch p.Objective.Goal {
	case MinCostUnderDeadline:
		line("  objective:          %s (deadline %v)", p.Objective.Goal, p.Objective.Deadline)
	default:
		line("  objective:          %s (budget %v)", p.Objective.Goal, p.Objective.Budget)
	}
	line("  solver:             %s", p.Solver)
	line("  predicted (exact):  JCT %v, cost %v",
		p.Exact.JCT().Round(time.Millisecond), p.Exact.TotalCost())
	line("  predicted (paper):  JCT %v, cost %v",
		p.Paper.JCT().Round(time.Millisecond), p.Paper.TotalCost())
	st := p.Search
	line("search")
	line("  wall time:          %v", st.Wall.Round(time.Microsecond))
	line("  calibration rounds: %d", st.CalibrationRounds)
	line("  configs evaluated:  %d", st.ConfigsEvaluated())
	line("  prediction cache:   %d hits / %d misses / %d evictions (%.1f%% hit rate)",
		st.CacheHits, st.CacheMisses, st.CacheEvictions, 100*st.CacheHitRate())
	if !st.Telemetry {
		line("  counters:           disabled (attach a telemetry registry for search counters)")
		return b.String()
	}
	line("  dag:                %d build(s), %d nodes, %d edges", st.DAGBuilds, st.DAGNodes, st.DAGEdges)
	line("  dijkstra:           %d run(s), %d edges relaxed", st.DijkstraRuns, st.EdgesRelaxed)
	if st.Alg1Rounds > 0 {
		line("  algorithm1:         %d round(s), %d edge(s) removed", st.Alg1Rounds, st.Alg1EdgesDropped)
	}
	if st.YenRounds > 0 {
		line("  yen:                %d round(s), %d spur search(es)", st.YenRounds, st.YenSpurSearches)
	}
	if st.CSPLabelsPopped > 0 {
		line("  csp:                %d label(s) popped, %d allocated from arena", st.CSPLabelsPopped, st.CSPLabelsAllocated)
	}
	line("  scratch reuse:      %d pooled search buffer(s) recycled", st.ScratchReuse)
	line("  pool:               %d batch(es), %d task(s), peak %d worker(s)",
		st.PoolBatches, st.PoolTasks, st.PoolWorkersPeak)
	return b.String()
}
