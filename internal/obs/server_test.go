package obs_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"astra/internal/flight"
	"astra/internal/obs"
	"astra/internal/optimizer"
	"astra/internal/telemetry"
)

// get fetches url and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// startServer starts a server on a free port and registers shutdown.
func startServer(t *testing.T, o obs.Options) *obs.Server {
	t.Helper()
	s := obs.NewServer(o)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestEndpointsSmoke(t *testing.T) {
	s := startServer(t, obs.Options{})

	if code, body := get(t, s.URL()+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, _ := get(t, s.URL()+"/events"); code != http.StatusNotFound {
		t.Fatalf("/events without recorder: code %d, want 404", code)
	}
	if code, _ := get(t, s.URL()+"/explain"); code != http.StatusNotFound {
		t.Fatalf("/explain before publish: code %d, want 404", code)
	}
	s.PublishExplain("chosen plan: because\n")
	if code, body := get(t, s.URL()+"/explain"); code != 200 || body != "chosen plan: because\n" {
		t.Fatalf("/explain: %d %q", code, body)
	}
	if code, _ := get(t, s.URL()+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}

	// /metrics renders the per-endpoint request counters the earlier GETs
	// incremented, proving labeled series survive the exposition round trip.
	code, body := get(t, s.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: code %d", code)
	}
	want := telemetry.MObsHTTPRequests + `{path="/healthz"} 1`
	if !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %q in:\n%s", want, body)
	}
	if n := strings.Count(body, "# TYPE "+telemetry.MObsHTTPRequests+" "); n != 1 {
		t.Fatalf("want exactly one TYPE line for %s, got %d", telemetry.MObsHTTPRequests, n)
	}
}

func TestEventsReplayAndGapAccounting(t *testing.T) {
	rec := flight.NewWithCapacity(4)
	reg := telemetry.New()
	for i := 1; i <= 10; i++ {
		rec.Emit(flight.Event{Kind: "test", Name: fmt.Sprintf("e%d", i)})
	}
	s := startServer(t, obs.Options{Telemetry: reg, Flight: rec})

	// A client resuming from seq 2 finds events 3..6 overwritten: the
	// handler reports the gap as a comment and counts the drops.
	code, body := get(t, s.URL()+"/events?follow=0&since=2")
	if code != 200 {
		t.Fatalf("/events: code %d", code)
	}
	if !strings.Contains(body, ": gap 4 event(s) overwritten") {
		t.Fatalf("missing gap comment in:\n%s", body)
	}
	for seq := 7; seq <= 10; seq++ {
		if !strings.Contains(body, fmt.Sprintf("id: %d\n", seq)) {
			t.Fatalf("missing frame id %d in:\n%s", seq, body)
		}
	}
	if strings.Contains(body, "id: 6\n") {
		t.Fatalf("overwritten event 6 should not be replayed:\n%s", body)
	}
	if got := reg.Counter(telemetry.MObsSSEDropped).Value(); got != 4 {
		t.Fatalf("dropped counter = %d, want 4", got)
	}

	// A fresh client (since=0) just starts at the retained tail, no gap.
	_, body = get(t, s.URL()+"/events?follow=0")
	if strings.Contains(body, ": gap") {
		t.Fatalf("fresh client should not see a gap:\n%s", body)
	}
}

func TestFrontierReplayAndBoundedHistory(t *testing.T) {
	reg := telemetry.New()
	s := startServer(t, obs.Options{Telemetry: reg, FrontierHistory: 2})

	observe := s.FrontierObserver()
	for i := 1; i <= 5; i++ {
		observe(optimizer.FrontierUpdate{Phase: i, Final: i == 5})
	}
	code, body := get(t, s.URL()+"/frontier?follow=0")
	if code != 200 {
		t.Fatalf("/frontier: code %d", code)
	}
	if !strings.Contains(body, ": gap 3 update(s) dropped") {
		t.Fatalf("missing drop comment in:\n%s", body)
	}
	if !strings.Contains(body, `"phase":4`) || !strings.Contains(body, `"phase":5`) {
		t.Fatalf("retained updates missing in:\n%s", body)
	}
	if strings.Contains(body, `"phase":3`) {
		t.Fatalf("evicted update replayed:\n%s", body)
	}
	if !strings.Contains(body, `"final":true`) {
		t.Fatalf("final update missing in:\n%s", body)
	}
	if got := reg.Counter(telemetry.MObsSSEDropped).Value(); got != 3 {
		t.Fatalf("dropped counter = %d, want 3", got)
	}
}

// TestShutdownReleasesSSEClients is the graceful-shutdown and
// goroutine-leak gate: live follow-mode SSE clients on both streams must
// be released by Shutdown, and the whole plane — HTTP server, sampler,
// handlers — must leave no goroutines behind.
func TestShutdownReleasesSSEClients(t *testing.T) {
	// Retire keep-alive connections from earlier tests so the baseline
	// only counts goroutines this test is responsible for.
	http.DefaultClient.CloseIdleConnections()
	before := runtime.NumGoroutine()

	rec := flight.New()
	rec.Emit(flight.Event{Kind: "test", Name: "e1"})
	s := obs.NewServer(obs.Options{
		Flight:         rec,
		RuntimeMetrics: true,
		SampleEvery:    time.Millisecond,
		PollEvery:      time.Millisecond,
	})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// Two live tail clients; each confirms it received the first frame,
	// then blocks reading until the server ends the stream.
	released := make(chan error, 2)
	for _, path := range []string{"/events", "/frontier"} {
		go func(path string) {
			resp, err := http.Get(s.URL() + path)
			if err != nil {
				released <- err
				return
			}
			defer resp.Body.Close()
			_, err = io.Copy(io.Discard, resp.Body)
			released <- err
		}(path)
	}
	// Wait until both clients are connected (gauge reaches 2).
	deadline := time.Now().Add(5 * time.Second)
	for s.Registry().Gauge(telemetry.MObsSSEClients).Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Registry().Gauge(telemetry.MObsSSEClients).Value(); got < 2 {
		t.Fatalf("sse client gauge = %d, want 2", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-released:
			if err != nil {
				t.Fatalf("sse client ended with error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("sse client still connected after Shutdown")
		}
	}
	if got := s.Registry().Gauge(telemetry.MObsSSEClients).Value(); got != 0 {
		t.Fatalf("sse client gauge = %d after shutdown, want 0", got)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	// Same leak-check pattern as TestPlanContextCancelPrompt: give the
	// runtime a moment to retire the handler and sampler goroutines.
	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines: %d before, %d after shutdown", before, after)
	}
}

// TestFrontierFollowSeesLiveUpdates checks a follow-mode client receives
// updates appended after it connected, and is closed by the final one
// once the log is closed by Shutdown.
func TestFrontierFollowSeesLiveUpdates(t *testing.T) {
	s := startServer(t, obs.Options{PollEvery: time.Millisecond})
	observe := s.FrontierObserver()
	observe(optimizer.FrontierUpdate{Phase: 1})

	resp, err := http.Get(s.URL() + "/frontier")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	readFrame := func() string {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") {
				return strings.TrimPrefix(line, "data: ")
			}
		}
		return ""
	}
	if d := readFrame(); !strings.Contains(d, `"phase":1`) {
		t.Fatalf("first frame = %q", d)
	}
	observe(optimizer.FrontierUpdate{Phase: 2})
	if d := readFrame(); !strings.Contains(d, `"phase":2`) {
		t.Fatalf("live frame = %q", d)
	}
}
