// Package obs is Astra's live observability plane: an embeddable,
// gracefully-shutdownable HTTP server that any binary (cmd/astra,
// astra-bench, experiments drivers, a future astra-server) mounts next
// to its work to make an in-flight plan or run watchable.
//
// Endpoints:
//
//	GET /metrics        live telemetry snapshot, Prometheus 0.0.4 text
//	GET /healthz        liveness probe
//	GET /debug/pprof/*  net/http/pprof (profiles carry the planner's
//	                    phase labels; see telemetry.DoPhase)
//	GET /events         flight-recorder events as Server-Sent Events
//	GET /frontier       anytime FrontierUpdate snapshots as SSE
//	GET /explain        the last published Plan.Explain() report
//	GET /qos            streaming QoS monitor snapshot (JSON); ?sse=1
//	                    streams risk/drift transitions as SSE
//	GET /audit          the last published model-accuracy audit
//	                    (text; ?format=json for the structured form)
//
// The server is observe-only, like the telemetry registry and flight
// recorder it fronts: mounting it never perturbs planning or simulated
// results. Streaming is pull-shaped and bounded — /events follows the
// recorder's ring by sequence number (ring overwrites surface as counted
// gaps, so a slow client can never grow server memory), and /frontier
// replays a bounded update log. Shutdown(ctx) stops the runtime sampler,
// releases every connected SSE client, and drains the HTTP server.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"sync"
	"time"

	"astra/internal/flight"
	"astra/internal/mapreduce"
	"astra/internal/optimizer"
	"astra/internal/qos"
	"astra/internal/telemetry"
)

// Options configures a Server. The zero value is usable: a private
// registry, no flight recorder (404 on /events), no runtime sampler.
type Options struct {
	// Telemetry is the registry /metrics snapshots. Left nil, the server
	// creates a private one (so its own request counters still export).
	Telemetry *telemetry.Registry
	// Flight is the recorder /events follows. Nil disables /events.
	Flight *flight.Recorder
	// RuntimeMetrics starts the runtime/metrics sampler goroutine,
	// publishing astra_go_* gauges and histograms into the registry.
	RuntimeMetrics bool
	// SampleEvery is the sampler cadence (default 250ms).
	SampleEvery time.Duration
	// PollEvery is the /events follow-mode poll cadence (default 25ms).
	PollEvery time.Duration
	// FrontierHistory bounds the retained FrontierUpdate log (default
	// 64; older updates are dropped and counted).
	FrontierHistory int
	// QoS mounts a streaming QoS monitor on /qos. Nil disables the
	// endpoint until PublishQoS is called.
	QoS *qos.Monitor
}

// Server is one observability plane instance. Construct with NewServer,
// mount via Handler or Start, and always Shutdown when done.
type Server struct {
	reg       *telemetry.Registry
	rec       *flight.Recorder
	pollEvery time.Duration
	sampler   *Sampler
	frontier  *updateLog

	mux       *http.ServeMux
	srv       *http.Server
	ln        net.Listener
	serveDone chan struct{}

	closing   chan struct{}
	closeOnce sync.Once

	mu        sync.Mutex
	explain   string
	qos       *qos.Monitor
	audit     *flight.Audit
	auditText string
}

// NewServer builds a server over the given sources. The sampler (when
// requested) starts immediately, so registry scrapes show runtime health
// even before Start.
func NewServer(o Options) *Server {
	reg := o.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	poll := o.PollEvery
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	hist := o.FrontierHistory
	if hist <= 0 {
		hist = 64
	}
	s := &Server{
		reg:       reg,
		rec:       o.Flight,
		pollEvery: poll,
		frontier:  newUpdateLog(hist, reg.Counter(telemetry.MObsSSEDropped)),
		mux:       http.NewServeMux(),
		closing:   make(chan struct{}),
		qos:       o.QoS,
	}
	if o.RuntimeMetrics {
		s.sampler = NewSampler(reg, o.SampleEvery)
		s.sampler.Start()
	}
	s.handle("/healthz", s.handleHealthz)
	s.handle("/metrics", s.handleMetrics)
	s.handle("/explain", s.handleExplain)
	s.handle("/events", s.handleEvents)
	s.handle("/frontier", s.handleFrontier)
	s.handle("/qos", s.handleQoS)
	s.handle("/audit", s.handleAudit)
	s.handle("/debug/pprof/", httppprof.Index)
	s.handle("/debug/pprof/cmdline", httppprof.Cmdline)
	s.handle("/debug/pprof/profile", httppprof.Profile)
	s.handle("/debug/pprof/symbol", httppprof.Symbol)
	s.handle("/debug/pprof/trace", httppprof.Trace)
	return s
}

// handle mounts a handler behind a per-endpoint labeled request counter.
func (s *Server) handle(path string, h http.HandlerFunc) {
	counter := s.reg.Counter(telemetry.LabelSeries(telemetry.MObsHTTPRequests, "path", path))
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		counter.Inc()
		h(w, r)
	})
}

// Registry returns the registry backing /metrics (the one passed in
// Options, or the private default).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Handler exposes the route table for embedding into an existing server.
// Callers embedding the handler still own calling Shutdown to stop the
// sampler and release SSE clients.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.serveDone = make(chan struct{})
	go func() {
		defer close(s.serveDone)
		_ = s.srv.Serve(ln) // http.ErrServerClosed on Shutdown
	}()
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL is the server's base URL ("" before Start).
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Shutdown gracefully stops the plane: the runtime sampler exits, every
// SSE client is released (their handlers return, so active connections
// drain), and the HTTP server (when Start was used) shuts down within
// ctx. Safe to call more than once and without Start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		close(s.closing)
		s.frontier.close()
		if s.sampler != nil {
			s.sampler.Stop()
		}
	})
	if s.srv == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		return err
	}
	select {
	case <-s.serveDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

// PublishExplain stores a plan's Explain() report for GET /explain.
func (s *Server) PublishExplain(report string) {
	s.mu.Lock()
	s.explain = report
	s.mu.Unlock()
}

// FrontierObserver adapts the server into a WithFrontierObserver
// callback: each anytime FrontierUpdate is rendered once and appended to
// the bounded /frontier log, where connected SSE clients pick it up.
// The callback is synchronous and cheap (one JSON marshal plus a locked
// append); it never blocks on slow clients.
func (s *Server) FrontierObserver() func(optimizer.FrontierUpdate) {
	return func(u optimizer.FrontierUpdate) {
		wire := frontierUpdateWire{
			Phase: u.Phase,
			Final: u.Final,
			Stats: frontierStatsWire{
				Phases:      u.Stats.Phases,
				Searches:    u.Stats.Searches,
				Pruned:      u.Stats.Pruned,
				Evaluations: u.Stats.Evaluations,
			},
		}
		for _, pt := range u.Points {
			wire.Points = append(wire.Points, frontierPointWire{
				JCTSeconds: pt.Pred.TotalSec(),
				CostUSD:    float64(pt.Pred.TotalCost()),
				Config:     pt.Config,
			})
		}
		b, err := json.Marshal(wire)
		if err != nil {
			return
		}
		s.frontier.append(b)
	}
}

// frontierUpdateWire is the /frontier SSE data schema. Wall-clock stats
// are deliberately omitted so two identical seeded sweeps stream
// byte-identical updates.
type frontierUpdateWire struct {
	Phase  int                 `json:"phase"`
	Final  bool                `json:"final"`
	Points []frontierPointWire `json:"points"`
	Stats  frontierStatsWire   `json:"stats"`
}

type frontierPointWire struct {
	JCTSeconds float64          `json:"jct_seconds"`
	CostUSD    float64          `json:"cost_usd"`
	Config     mapreduce.Config `json:"config"`
}

type frontierStatsWire struct {
	Phases      int64 `json:"phases"`
	Searches    int64 `json:"searches"`
	Pruned      int64 `json:"pruned"`
	Evaluations int64 `json:"evaluations"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.Snapshot().WritePrometheus(w)
}

func (s *Server) handleExplain(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	report := s.explain
	s.mu.Unlock()
	if report == "" {
		http.Error(w, "no plan explained yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, report)
}

// sseParams reads the shared SSE query knobs: since (resume point) and
// follow (live-tail; default true — follow=0 replays and closes, which
// is what scripted clients diffing two runs want).
func sseParams(r *http.Request) (since int64, follow bool) {
	q := r.URL.Query()
	since, _ = strconv.ParseInt(q.Get("since"), 10, 64)
	follow = true
	if v := q.Get("follow"); v == "0" || v == "false" {
		follow = false
	}
	return since, follow
}

// sseHeaders marks the response as an event stream and returns the
// flusher (nil when the ResponseWriter cannot stream).
func sseHeaders(w http.ResponseWriter) http.Flusher {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	f, _ := w.(http.Flusher)
	return f
}

// handleEvents streams the flight recorder as SSE frames (id = event
// sequence number, data = the event's deterministic JSON). The client's
// pace bounds nothing but its own connection: the handler polls
// EventsSince at the server's cadence, the ring keeps rotating, and any
// events the ring overwrote before the client caught up are surfaced as
// one ": gap ..." comment and counted in astra_obs_sse_dropped_total.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "no flight recorder mounted", http.StatusNotFound)
		return
	}
	since, follow := sseParams(r)
	flusher := sseHeaders(w)
	clients := s.reg.Gauge(telemetry.MObsSSEClients)
	clients.Add(1)
	defer clients.Add(-1)
	dropped := s.reg.Counter(telemetry.MObsSSEDropped)

	last := since
	for {
		evs := s.rec.EventsSince(last)
		if len(evs) > 0 {
			if want := last + 1; evs[0].Seq > want && last > 0 {
				gap := evs[0].Seq - want
				dropped.Add(gap)
				fmt.Fprintf(w, ": gap %d event(s) overwritten\n\n", gap)
			}
			for _, ev := range evs {
				b, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, b)
				last = ev.Seq
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if !follow {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		case <-time.After(s.pollEvery):
		}
	}
}

// handleFrontier streams the bounded FrontierUpdate log as SSE frames
// (id = 1-based update index). follow=0 replays the log and closes;
// otherwise the handler waits for appends until the client disconnects
// or the server shuts down.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	since, follow := sseParams(r)
	flusher := sseHeaders(w)
	clients := s.reg.Gauge(telemetry.MObsSSEClients)
	clients.Add(1)
	defer clients.Add(-1)

	next := since
	for {
		// Capture the wake channel before reading, so an append racing
		// the read still closes the channel we block on below.
		wake, closed := s.frontier.wait()
		frames, from, n := s.frontier.since(next)
		if from > next {
			fmt.Fprintf(w, ": gap %d update(s) dropped\n\n", from-next)
		}
		for i, b := range frames {
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", from+int64(i)+1, b)
		}
		next = n
		if flusher != nil {
			flusher.Flush()
		}
		if !follow {
			return
		}
		if len(frames) > 0 {
			continue
		}
		if closed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		case <-wake:
		}
	}
}
