package obs_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"astra/internal/flight"
	"astra/internal/mapreduce"
	"astra/internal/obs"
	"astra/internal/qos"
)

func qosTestMonitor() *qos.Monitor {
	bd := &flight.Breakdown{
		JCT: 20 * time.Second,
		Stages: []flight.Stage{
			{Name: "map", Duration: 10 * time.Second},
			{Name: "step-00", Duration: 10 * time.Second},
		},
	}
	m := qos.New(qos.Options{Predicted: bd, Deadline: 30 * time.Second,
		Tenant: "t", Job: "j"})
	m.BeginRun(nil, 0, []mapreduce.QoSStage{
		{Name: "map", Tasks: 1}, {Name: "step-00", Tasks: 1},
	})
	return m
}

// TestQoSEndpoint: 404 before a monitor is mounted; JSON snapshot and SSE
// transition replay once one is published.
func TestQoSEndpoint(t *testing.T) {
	s := startServer(t, obs.Options{})
	if code, _ := get(t, s.URL()+"/qos"); code != http.StatusNotFound {
		t.Fatalf("/qos without monitor: code %d, want 404", code)
	}

	mon := qosTestMonitor()
	// Drive the monitor past its at_risk crossing and the deadline, so
	// both risk transitions exist.
	mon.Poll(40 * time.Second)
	s.PublishQoS(mon)

	code, body := get(t, s.URL()+"/qos")
	if code != 200 {
		t.Fatalf("/qos: code %d", code)
	}
	var snap qos.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/qos not JSON: %v\n%s", err, body)
	}
	if snap.State != "breached" || len(snap.Transitions) != 2 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}

	code, stream := get(t, s.URL()+"/qos?sse=1&follow=0")
	if code != 200 {
		t.Fatalf("/qos sse: code %d", code)
	}
	if !strings.Contains(stream, "id: 1\n") || !strings.Contains(stream, "id: 2\n") {
		t.Fatalf("sse stream missing transition frames:\n%s", stream)
	}
	if !strings.Contains(stream, `"at_risk"`) || !strings.Contains(stream, `"breached"`) {
		t.Fatalf("sse stream missing states:\n%s", stream)
	}

	// Resume from the first transition: only the second is replayed.
	_, tail := get(t, s.URL()+"/qos?sse=1&follow=0&since=1")
	if strings.Contains(tail, "id: 1\n") || !strings.Contains(tail, "id: 2\n") {
		t.Fatalf("sse resume from since=1 wrong:\n%s", tail)
	}
}

// TestAuditEndpoint: 404 before publish; text render and JSON form after.
func TestAuditEndpoint(t *testing.T) {
	s := startServer(t, obs.Options{})
	if code, _ := get(t, s.URL()+"/audit"); code != http.StatusNotFound {
		t.Fatalf("/audit before publish: code %d, want 404", code)
	}
	s.PublishAudit(nil) // must stay unmounted
	if code, _ := get(t, s.URL()+"/audit"); code != http.StatusNotFound {
		t.Fatalf("/audit after nil publish: code %d, want 404", code)
	}

	audit := flight.BuildAudit(
		&flight.CriticalPath{JCT: 11 * time.Second},
		&flight.Breakdown{JCT: 10 * time.Second}, 0.5)
	s.PublishAudit(audit)
	code, body := get(t, s.URL()+"/audit")
	if code != 200 || body != audit.Render() {
		t.Fatalf("/audit text: %d\n%s", code, body)
	}
	code, body = get(t, s.URL()+"/audit?format=json")
	if code != 200 {
		t.Fatalf("/audit json: code %d", code)
	}
	var back flight.Audit
	if err := json.Unmarshal([]byte(body), &back); err != nil {
		t.Fatalf("/audit?format=json not JSON: %v\n%s", err, body)
	}
	if back.JCTPredicted != audit.JCTPredicted || back.JCTMeasured != audit.JCTMeasured {
		t.Fatalf("/audit json round-trip lost data: %+v", back)
	}
}
