package obs_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"astra"
	"astra/internal/obs"
	"astra/internal/telemetry"
)

// TestScrapeUnderLoadMatchesFinalSnapshot is the race hammer: while a
// plan and a run execute, concurrent clients pound /metrics and tail
// /events. Run under -race this flushes out unsynchronized access across
// the registry, the recorder and the SSE handlers; afterwards the last
// scrape must equal the registry's own snapshot rendering, proving the
// scrape path is just a view, not a second bookkeeping.
func TestScrapeUnderLoadMatchesFinalSnapshot(t *testing.T) {
	tel := astra.NewTelemetry()
	rec := astra.NewFlightRecorder()
	s := startServer(t, obs.Options{Telemetry: tel, Flight: rec, PollEvery: time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				resp, err := http.Get(s.URL() + "/metrics")
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, s.URL()+"/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body) // until ctx cancels the request
	}()

	job := astra.WordCount1GB()
	plan, err := astra.Plan(job, astra.MinTime(1e9),
		astra.WithTelemetry(tel), astra.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	s.PublishExplain(plan.Explain())
	if _, err := astra.Run(job, plan.Config,
		astra.WithRunTelemetry(tel), astra.WithFlightRecorder(rec)); err != nil {
		t.Fatal(err)
	}

	cancel()
	wg.Wait()
	http.DefaultClient.CloseIdleConnections()
	// The events handler decrements the client gauge on its way out; wait
	// for it so the final scrape sees a quiesced registry.
	deadline := time.Now().Add(5 * time.Second)
	for tel.Snapshot().Gauge(telemetry.MObsSSEClients) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Quiesced: one more scrape, then render the registry directly. The
	// scrape's own request-count increment lands before rendering, so the
	// two texts must be byte-equal.
	_, scraped := get(t, s.URL()+"/metrics")
	var direct bytes.Buffer
	if err := tel.Snapshot().WritePrometheus(&direct); err != nil {
		t.Fatal(err)
	}
	if scraped != direct.String() {
		t.Fatalf("final scrape diverges from registry snapshot:\n--- scrape ---\n%s\n--- snapshot ---\n%s",
			scraped, direct.String())
	}
}

// TestEventStreamByteIdenticalAcrossRuns re-runs the same seeded job
// twice, each with a fresh recorder and server, and requires the full
// /events replay to be byte-identical: virtual-time events plus a
// deterministic wire format mean the stream itself is reproducible.
func TestEventStreamByteIdenticalAcrossRuns(t *testing.T) {
	job := astra.WordCount1GB()
	cfg := astra.Baselines(job)[0]

	stream := func() string {
		rec := astra.NewFlightRecorder()
		s := startServer(t, obs.Options{Flight: rec})
		if _, err := astra.Run(job, cfg, astra.WithFlightRecorder(rec)); err != nil {
			t.Fatal(err)
		}
		_, body := get(t, s.URL()+"/events?follow=0")
		return body
	}
	first := stream()
	second := stream()
	if first != second {
		t.Fatalf("event streams differ across identical seeded runs:\nlen %d vs %d",
			len(first), len(second))
	}
	if len(first) == 0 {
		t.Fatal("event stream empty")
	}
}

// TestCPUProfileCarriesPhaseLabels drives planning work while the
// server's own pprof endpoint captures a short CPU profile, then checks
// the profile's string table for the phase label vocabulary. The profile
// is gzipped protobuf; with no pprof parser dependency, scanning the
// decompressed bytes for the label strings is sufficient — label keys
// and values live in the string table verbatim.
func TestCPUProfileCarriesPhaseLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling window too slow for -short")
	}
	s := startServer(t, obs.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		job := astra.Sort100GB()
		for ctx.Err() == nil {
			_, _ = astra.PlanContext(ctx, job, astra.MinCost(1e6*time.Hour), astra.WithParallelism(2))
		}
	}()

	for attempt := 0; attempt < 3; attempt++ {
		resp, err := http.Get(s.URL() + "/debug/pprof/profile?seconds=1")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("profile fetch: code %d err %v", resp.StatusCode, err)
		}
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("profile not gzipped: %v", err)
		}
		prof, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("decompress profile: %v", err)
		}
		if bytes.Contains(prof, []byte("phase")) &&
			(bytes.Contains(prof, []byte("algorithm1")) || bytes.Contains(prof, []byte("dijkstra"))) {
			return
		}
	}
	t.Fatal("no CPU sample carried the planner phase label after 3 windows")
}
