package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"astra/internal/flight"
	"astra/internal/qos"
	"astra/internal/telemetry"
)

// PublishQoS mounts (or swaps) the streaming QoS monitor served on /qos.
// Like PublishExplain, this is a cheap pointer swap — callers typically
// publish the monitor right after building it for a run.
func (s *Server) PublishQoS(m *qos.Monitor) {
	s.mu.Lock()
	s.qos = m
	s.mu.Unlock()
}

// PublishAudit stores a run's model-accuracy audit for GET /audit. The
// text render is produced once here so every request serves the same
// bytes.
func (s *Server) PublishAudit(a *flight.Audit) {
	if a == nil {
		return
	}
	text := a.Render()
	s.mu.Lock()
	s.audit, s.auditText = a, text
	s.mu.Unlock()
}

// handleQoS serves the streaming QoS monitor: by default one JSON
// snapshot (state, projected JCT, slack, per-stage drift scores, cost
// burn, transition history); with ?sse=1 an SSE stream of risk/drift
// transitions (id = transition sequence number, resumable via since,
// follow=0 replays and closes).
func (s *Server) handleQoS(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	mon := s.qos
	s.mu.Unlock()
	if mon == nil {
		http.Error(w, "no qos monitor mounted", http.StatusNotFound)
		return
	}
	if v := r.URL.Query().Get("sse"); v == "" || v == "0" || v == "false" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(mon.Snapshot())
		return
	}
	since, follow := sseParams(r)
	flusher := sseHeaders(w)
	clients := s.reg.Gauge(telemetry.MObsSSEClients)
	clients.Add(1)
	defer clients.Add(-1)

	last := int(since)
	for {
		txs := mon.TransitionsSince(last)
		for _, tr := range txs {
			b, err := json.Marshal(tr)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", tr.Seq, b)
			last = tr.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if !follow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		case <-time.After(s.pollEvery):
		}
	}
}

// handleAudit serves the last published model-accuracy audit: the text
// render by default, the structured audit as JSON with ?format=json.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	audit, text := s.audit, s.auditText
	s.mu.Unlock()
	if audit == nil {
		http.Error(w, "no audit published yet", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(audit)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}
