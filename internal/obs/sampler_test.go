package obs_test

import (
	"runtime"
	"testing"
	"time"

	"astra/internal/obs"
	"astra/internal/telemetry"
)

func TestSamplerPublishesRuntimeHealth(t *testing.T) {
	reg := telemetry.New()
	s := obs.NewSampler(reg, time.Hour) // ticker irrelevant; sample by hand
	s.SampleOnce()

	if g := reg.Gauge(telemetry.MGoGoroutines).Value(); g <= 0 {
		t.Fatalf("goroutine gauge = %d, want > 0", g)
	}
	if g := reg.Gauge(telemetry.MGoMemTotalBytes).Value(); g <= 0 {
		t.Fatalf("total memory gauge = %d, want > 0", g)
	}
	if c := reg.Counter(telemetry.MGoSamples).Value(); c != 1 {
		t.Fatalf("samples counter = %d, want 1", c)
	}

	// Force GC activity, resample, and check the pause histogram only
	// grows (per-bucket deltas must never observe negative counts).
	runtime.GC()
	s.SampleOnce()
	snap := reg.Snapshot()
	if h, ok := snap.Histograms[telemetry.MGoGCPauseSeconds]; ok && h.Count < 0 {
		t.Fatalf("gc pause count = %d", h.Count)
	}
	if c := reg.Counter(telemetry.MGoSamples).Value(); c != 2 {
		t.Fatalf("samples counter = %d, want 2", c)
	}
}

func TestSamplerStopIdempotentAndWithoutStart(t *testing.T) {
	reg := telemetry.New()

	// Stop without Start must not hang.
	s := obs.NewSampler(reg, time.Millisecond)
	s.Stop()
	s.Stop()

	// Start then Stop joins the goroutine.
	s = obs.NewSampler(reg, time.Millisecond)
	s.Start()
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	s.Stop()
	if c := reg.Counter(telemetry.MGoSamples).Value(); c < 1 {
		t.Fatalf("samples counter = %d, want >= 1", c)
	}
}
