package obs

import (
	"net/http"
	"strings"
)

// PrefixHandler returns the route table mounted under a path prefix
// ("/obs" serves /obs/metrics, /obs/healthz, /obs/debug/pprof/*, ...),
// for embedding next to an application's own routes. Two things make
// the naive http.StripPrefix composition wrong on its own, and both are
// handled here: ServeMux's canonicalizing redirects (/debug/pprof ->
// /debug/pprof/) emit post-strip Locations that would escape the
// prefix, so they are rewritten to keep it; and the wrapping writer
// preserves http.Flusher, so the SSE endpoints keep streaming when
// mounted under a prefix.
func (s *Server) PrefixHandler(prefix string) http.Handler {
	prefix = strings.TrimRight(prefix, "/")
	if prefix == "" {
		return s.mux
	}
	strip := http.StripPrefix(prefix, s.mux)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		strip.ServeHTTP(&prefixWriter{ResponseWriter: w, prefix: prefix}, r)
	})
}

// prefixWriter re-roots absolute-path Location headers under the mount
// prefix and forwards Flush so SSE streaming survives the wrap.
type prefixWriter struct {
	http.ResponseWriter
	prefix string
}

func (w *prefixWriter) WriteHeader(code int) {
	if loc := w.Header().Get("Location"); strings.HasPrefix(loc, "/") &&
		!strings.HasPrefix(loc, w.prefix+"/") {
		w.Header().Set("Location", w.prefix+loc)
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *prefixWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
