package obs

import (
	"runtime/metrics"
	"sync"
	"time"

	"astra/internal/telemetry"
)

// Sampler periodically reads the Go runtime's own instrumentation
// (runtime/metrics) and republishes it into a telemetry registry as
// astra_go_* series, so one /metrics scrape carries both the simulator's
// domain counters and the process health needed to interpret them (GC
// pressure during a frontier sweep, goroutine growth during SSE fan-out).
//
// Scalars become gauges. Runtime histograms are cumulative-free bucket
// count vectors, so each tick diffs against the previous sample and feeds
// the per-bucket increase into a registry histogram via ObserveN, using a
// representative value per bucket (the finite right edge, else the left).
type Sampler struct {
	reg   *telemetry.Registry
	every time.Duration

	samples []metrics.Sample
	prev    map[string][]uint64 // histogram name -> last seen bucket counts

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// The runtime metrics we republish. Names are stable runtime/metrics keys;
// unknown keys (older toolchains) read as KindBad and are skipped.
var sampledMetrics = []struct {
	key   string
	name  string // telemetry series name
	gauge bool   // scalar gauge vs histogram
}{
	{"/sched/goroutines:goroutines", telemetry.MGoGoroutines, true},
	{"/memory/classes/heap/objects:bytes", telemetry.MGoHeapObjectsBytes, true},
	{"/memory/classes/total:bytes", telemetry.MGoMemTotalBytes, true},
	{"/gc/cycles/total:gc-cycles", telemetry.MGoGCCycles, true},
	{"/gc/pauses:seconds", telemetry.MGoGCPauseSeconds, false},
	{"/sched/latencies:seconds", telemetry.MGoSchedLatSeconds, false},
}

// Pause and latency distributions live between ~100ns and ~1s; the
// registry histogram needs explicit bounds, so use a decade ladder.
var runtimeSecondsBounds = []float64{
	1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1,
}

// NewSampler builds a sampler publishing into reg every interval
// (default 250ms). Call Start to begin and Stop to halt it.
func NewSampler(reg *telemetry.Registry, every time.Duration) *Sampler {
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	s := &Sampler{
		reg:   reg,
		every: every,
		prev:  make(map[string][]uint64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.samples = make([]metrics.Sample, len(sampledMetrics))
	for i, m := range sampledMetrics {
		s.samples[i].Name = m.key
	}
	return s
}

// Start launches the sampling goroutine. Safe to call once; the first
// tick happens immediately so short-lived processes still export.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.every)
			defer t.Stop()
			s.SampleOnce()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.SampleOnce()
				}
			}
		}()
	})
}

// Stop halts the goroutine and waits for it to exit. Safe to call even
// if Start never ran, and more than once.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) })
	<-s.done
}

// SampleOnce reads the runtime metrics and publishes one tick. Exported
// so tests (and one-shot exporters) can sample without the goroutine.
func (s *Sampler) SampleOnce() {
	metrics.Read(s.samples)
	for i, m := range sampledMetrics {
		v := s.samples[i].Value
		switch v.Kind() {
		case metrics.KindUint64:
			s.reg.Gauge(m.name).Set(int64(v.Uint64()))
		case metrics.KindFloat64:
			s.reg.Gauge(m.name).Set(int64(v.Float64()))
		case metrics.KindFloat64Histogram:
			if m.gauge {
				continue
			}
			s.publishHistogram(m.name, v.Float64Histogram())
		}
	}
	s.reg.Counter(telemetry.MGoSamples).Inc()
}

// publishHistogram feeds the since-last-tick growth of a runtime
// histogram into the registry, one ObserveN per grown bucket.
func (s *Sampler) publishHistogram(name string, h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	tel := s.reg.Histogram(name, runtimeSecondsBounds)
	prev := s.prev[name]
	for i, c := range h.Counts {
		var p uint64
		if i < len(prev) {
			p = prev[i]
		}
		if c <= p {
			continue
		}
		tel.ObserveN(bucketValue(h.Buckets, i), int64(c-p))
	}
	cp := make([]uint64, len(h.Counts))
	copy(cp, h.Counts)
	s.prev[name] = cp
}

// bucketValue picks a representative value for runtime bucket i, whose
// range is [Buckets[i], Buckets[i+1]). Prefer the finite right edge
// (conservative for latency), falling back to the left edge, then 0.
func bucketValue(bounds []float64, i int) float64 {
	if i+1 < len(bounds) && isFinite(bounds[i+1]) {
		return bounds[i+1]
	}
	if i < len(bounds) && isFinite(bounds[i]) {
		return bounds[i]
	}
	return 0
}

func isFinite(f float64) bool {
	return f == f && f < 1e308 && f > -1e308
}
