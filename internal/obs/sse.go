package obs

import (
	"sync"

	"astra/internal/telemetry"
)

// updateLog is a bounded, append-only log of pre-rendered SSE payloads
// with absolute indexing: entry i keeps index i forever, even after the
// bound pushes it out, so clients resume by index and dropped prefixes
// are detectable (and counted) rather than silently reread. It backs
// /frontier; appends come from the sweep's observer callback, reads from
// any number of SSE handlers.
type updateLog struct {
	mu      sync.Mutex
	cap     int
	start   int64 // absolute index of frames[0]
	frames  [][]byte
	closed  bool
	wake    chan struct{} // closed on append/close, then renewed
	dropped *telemetry.Counter
}

func newUpdateLog(capacity int, dropped *telemetry.Counter) *updateLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &updateLog{cap: capacity, wake: make(chan struct{}), dropped: dropped}
}

// append adds one payload, evicting the oldest past the bound.
func (l *updateLog) append(b []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.frames = append(l.frames, b)
	if len(l.frames) > l.cap {
		evict := len(l.frames) - l.cap
		l.frames = append([][]byte(nil), l.frames[evict:]...)
		l.start += int64(evict)
		l.dropped.Add(int64(evict))
	}
	close(l.wake)
	l.wake = make(chan struct{})
}

// since returns the retained payloads with absolute index >= from, the
// absolute index of the first returned payload, and the index to resume
// from next. The returned slice aliases immutable payloads.
func (l *updateLog) since(from int64) (frames [][]byte, first, next int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.start {
		from = l.start
	}
	i := from - l.start
	if i >= int64(len(l.frames)) {
		return nil, from, from
	}
	out := make([][]byte, len(l.frames)-int(i))
	copy(out, l.frames[i:])
	return out, from, l.start + int64(len(l.frames))
}

// wait returns a channel closed on the next append, plus whether the log
// is already closed (no more appends will come).
func (l *updateLog) wait() (<-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wake, l.closed
}

// close marks the log final and wakes every waiter.
func (l *updateLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake)
	l.wake = make(chan struct{})
}
