package obs_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"astra/internal/obs"
	"astra/internal/optimizer"
)

// TestPrefixHandler is the mount-under-a-path regression gate: every
// plane endpoint must keep working when the handler is embedded at
// /obs/ inside a larger mux, ServeMux's canonicalizing redirects must
// not escape the prefix, and SSE replay must still stream (the wrapping
// writer has to preserve http.Flusher).
func TestPrefixHandler(t *testing.T) {
	s := obs.NewServer(obs.Options{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	observe := s.FrontierObserver()
	observe(optimizer.FrontierUpdate{Phase: 1, Final: true})

	mux := http.NewServeMux()
	mux.Handle("/obs/", s.PrefixHandler("/obs"))
	host := httptest.NewServer(mux)
	t.Cleanup(host.Close)

	// Do not follow redirects: the Location header itself is under test.
	client := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := client.Get(host.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	body := func(resp *http.Response) string {
		t.Helper()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				return sb.String()
			}
		}
	}

	if resp := get("/obs/healthz"); resp.StatusCode != 200 || !strings.Contains(body(resp), "ok") {
		t.Fatalf("/obs/healthz: code %d", resp.StatusCode)
	}
	if resp := get("/obs/metrics"); resp.StatusCode != 200 ||
		!strings.Contains(body(resp), "astra_obs_http_requests_total") {
		t.Fatalf("/obs/metrics missing request counters (code %d)", resp.StatusCode)
	}

	// ServeMux canonicalizes /debug/pprof to /debug/pprof/; mounted under
	// a prefix the redirect must come back inside the mount, not at root.
	resp := get("/obs/debug/pprof")
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("/obs/debug/pprof: code %d, want 301", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/obs/debug/pprof/" {
		t.Fatalf("redirect Location = %q, want /obs/debug/pprof/", loc)
	}

	// SSE replay through the prefix: the wrapped writer must still flush.
	resp = get("/obs/frontier?follow=0")
	if resp.StatusCode != 200 {
		t.Fatalf("/obs/frontier: code %d", resp.StatusCode)
	}
	if got := body(resp); !strings.Contains(got, `"phase":1`) || !strings.Contains(got, `"final":true`) {
		t.Fatalf("frontier replay under prefix missing update:\n%s", got)
	}

	// Outside the mount nothing leaks through.
	if resp := get("/healthz"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/healthz outside mount: code %d, want 404", resp.StatusCode)
	}
}
