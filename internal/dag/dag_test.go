package dag

import (
	"math"
	"testing"

	"astra/internal/graph"
	"astra/internal/model"
	"astra/internal/workload"
)

func testModel() *model.Paper {
	return model.NewPaper(model.DefaultParams(workload.Job{
		Profile:    workload.WordCount,
		NumObjects: 10,
		ObjectSize: 8 << 20,
	}))
}

var testTiers = []int{128, 512, 1024, 3008}

func TestBuildShape(t *testing.T) {
	d, err := Build(testModel(), MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	L, n := 4, 10
	wantNodes := 2 + L + n + n + n*L + L
	if d.G.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d", d.G.NumNodes(), wantNodes)
	}
	if d.G.NumEdges() == 0 {
		t.Fatal("no edges")
	}
}

func TestShortestPathDecodesToValidConfig(t *testing.T) {
	m := testModel()
	d, err := Build(m, MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.G.ShortestPath(d.Src, d.Dst)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := d.Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if !m.P.Sheet.Lambda.ValidMemory(cfg.MapperMemMB) ||
		!m.P.Sheet.Lambda.ValidMemory(cfg.CoordMemMB) ||
		!m.P.Sheet.Lambda.ValidMemory(cfg.ReducerMemMB) {
		t.Fatalf("invalid memories in %v", cfg)
	}
	if cfg.ObjsPerMapper < 1 || cfg.ObjsPerMapper > 10 ||
		cfg.ObjsPerReducer < 1 || cfg.ObjsPerReducer > 10 {
		t.Fatalf("invalid parallelism in %v", cfg)
	}
}

// TestPathWeightMatchesModelComponents: any full path's weight must equal
// the sum of the model's four edge components for the decoded config.
func TestPathWeightMatchesModelComponents(t *testing.T) {
	m := testModel()
	d, err := Build(m, MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	paths := d.G.YenKSP(d.Src, d.Dst, 10)
	if len(paths) < 5 {
		t.Fatalf("only %d paths", len(paths))
	}
	for _, p := range paths {
		cfg, err := d.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		e1 := m.MapperTime(cfg.MapperMemMB, cfg.ObjsPerMapper)
		e2, err := m.TransferTime(cfg.ObjsPerMapper, cfg.ObjsPerReducer)
		if err != nil {
			t.Fatal(err)
		}
		e3 := m.CoordCompute(cfg.CoordMemMB)
		e4, err := m.ReduceCompute(cfg.ReducerMemMB, cfg.ObjsPerReducer)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(p.W - (e1 + e2 + e3 + e4)); diff > 1e-9 {
			t.Fatalf("%v: path weight %v != component sum %v", cfg, p.W, e1+e2+e3+e4)
		}
	}
}

// TestShortestPathIsGlobalOptimum: enumerate the whole (small) space and
// verify the DAG's shortest path attains the minimum of the same
// edge-decomposed objective.
func TestShortestPathIsGlobalOptimum(t *testing.T) {
	m := testModel()
	d, err := Build(m, MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.G.ShortestPath(d.Src, d.Dst)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for _, i := range testTiers {
		for kM := 1; kM <= 10; kM++ {
			for kR := 1; kR <= 10; kR++ {
				for _, a := range testTiers {
					for _, s := range testTiers {
						e1 := m.MapperTime(i, kM)
						e2, err := m.TransferTime(kM, kR)
						if err != nil {
							continue
						}
						e3 := m.CoordCompute(a)
						e4, err := m.ReduceCompute(s, kR)
						if err != nil {
							continue
						}
						if v := e1 + e2 + e3 + e4; v < best {
							best = v
						}
					}
				}
			}
		}
	}
	if math.Abs(p.W-best) > 1e-9 {
		t.Fatalf("shortest path %v != brute-force optimum %v", p.W, best)
	}
}

func TestCostModeSwapsWeights(t *testing.T) {
	m := testModel()
	dt, err := Build(m, MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	dc, err := Build(m, MinimizeCost, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := dt.G.ShortestPath(dt.Src, dt.Dst)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := dc.G.ShortestPath(dc.Src, dc.Dst)
	if err != nil {
		t.Fatal(err)
	}
	// The cheapest path's cost cannot exceed the fastest path's cost, and
	// vice versa for time.
	if pc.W > pt.Side+1e-12 {
		t.Fatalf("cost-mode optimum %v worse than time-mode side cost %v", pc.W, pt.Side)
	}
	if pt.W > pc.Side+1e-12 {
		t.Fatalf("time-mode optimum %v worse than cost-mode side time %v", pt.W, pc.Side)
	}
	// Cost mode should choose small memory; time mode large mapper memory.
	ct, _ := dt.Decode(pt)
	cc, _ := dc.Decode(pc)
	if cc.MapperMemMB > ct.MapperMemMB {
		t.Fatalf("cost mode picked bigger mapper memory (%d) than time mode (%d)",
			cc.MapperMemMB, ct.MapperMemMB)
	}
}

func TestLambdaLimitPrunesParallelism(t *testing.T) {
	p := model.DefaultParams(workload.Job{
		Profile:    workload.WordCount,
		NumObjects: 10,
		ObjectSize: 8 << 20,
	})
	p.MaxLambdas = 4 // at most 4 mappers -> kM >= 3
	d, err := Build(model.NewPaper(p), MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	paths := d.G.YenKSP(d.Src, d.Dst, 20)
	for _, path := range paths {
		cfg, err := d.Decode(path)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.ObjsPerMapper < 3 {
			t.Fatalf("config %v violates the 4-lambda limit", cfg)
		}
	}
}

func TestDecodeRejectsMalformedPaths(t *testing.T) {
	d, err := Build(testModel(), MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	short := graph.Path{Nodes: []int{d.Src, d.Dst}}
	if _, err := d.Decode(short); err == nil {
		t.Fatal("short path should fail to decode")
	}
	wrongEnds := graph.Path{Nodes: []int{d.Dst, 2, 3, 4, 5, 6, d.Src}}
	if _, err := d.Decode(wrongEnds); err == nil {
		t.Fatal("reversed path should fail to decode")
	}
}

func TestModeString(t *testing.T) {
	if MinimizeTime.String() != "minimize-time" || MinimizeCost.String() != "minimize-cost" {
		t.Fatal("mode names changed")
	}
}
