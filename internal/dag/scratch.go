package dag

import (
	"sync"

	"astra/internal/telemetry"
)

// pairW is one precomputed edge weight pair; ok distinguishes a real
// value from an infeasible (absent) combination. The zero value is
// "absent", which is what lets the pooled buffers be recycled with a
// plain clear.
type pairW struct {
	ok   bool
	t, c float64
}

// buildScratch holds the per-build weight-slot buffers of BuildContext's
// phase 1 — the only cold-plan allocations that scale with L x N. The
// buffers are flat, index-addressed backing arrays (each slot written by
// exactly one pool worker), recycled across builds through buildPool so
// a planning service's steady state allocates none of them.
type buildScratch struct {
	mapFeasible []bool    // by kM-1
	mapT, mapC  []float64 // by (kM-1)*L + tierIndex
	transfer    []pairW   // by (kM-1)*maxKR + (kR-1)
	coord       []pairW   // by (kR-1)*L + tierIndex
	reduce      []pairW   // by (kR-1)*L + tierIndex
	feasKM      []int
	used        bool
}

var buildPool = sync.Pool{New: func() any { return &buildScratch{} }}

// grow returns s resized to n, reusing capacity and clearing the kept
// prefix (the zero value of every buffer element means "absent").
func growPairs(s []pairW, n int) []pairW {
	if cap(s) < n {
		return make([]pairW, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = pairW{}
	}
	return s
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// getBuildScratch checks a scratch out of the pool, sized (and cleared)
// for an L-tier, maxKM x maxKR build.
func getBuildScratch(L, maxKM, maxKR int, tel *telemetry.Registry) *buildScratch {
	sc := buildPool.Get().(*buildScratch)
	if sc.used {
		tel.Counter(telemetry.MDAGScratchReuse).Inc()
	}
	sc.used = true
	sc.mapFeasible = growBools(sc.mapFeasible, maxKM)
	sc.mapT = growFloats(sc.mapT, maxKM*L)
	sc.mapC = growFloats(sc.mapC, maxKM*L)
	sc.transfer = growPairs(sc.transfer, maxKM*maxKR)
	sc.coord = growPairs(sc.coord, maxKR*L)
	sc.reduce = growPairs(sc.reduce, maxKR*L)
	sc.feasKM = sc.feasKM[:0]
	return sc
}

func putBuildScratch(sc *buildScratch) { buildPool.Put(sc) }
