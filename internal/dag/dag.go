// Package dag constructs the configuration DAG of the paper's Fig. 5: a
// layered graph whose source-to-destination paths enumerate complete
// resource configurations, with edge weights carrying the phase times (or
// phase costs) of the model so the optimal configuration is a shortest
// path.
//
// Column layout (left to right): source, mapper memory tier (x_i), mapper
// parallelism (expressed as objects-per-mapper, which fixes j), objects
// per reducer (k_R), coordinator memory tier, reducer memory tier,
// destination. Coordinator-memory nodes are keyed (k_R, a) so the final
// edge set can compute the reduce-phase terms that need k_R — the minimal
// state augmentation that makes the paper's drawing well-defined.
//
// Every edge carries both the objective weight and the other metric as a
// side weight, so the constrained searches (Algorithm 1, Yen, exact
// label-setting) can enforce the budget or deadline along the path.
//
// Edge-weight evaluation — thousands of analytic model calls over L
// memory tiers and N fan-in candidates — is sharded across a bounded
// worker pool (Options.Parallelism); the weights are computed into
// per-index slots and the graph is assembled serially in a fixed order,
// so the built DAG is bit-for-bit identical at every parallelism degree.
package dag

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"

	"astra/internal/graph"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/parallel"
	"astra/internal/telemetry"
)

// Mode selects which metric is the shortest-path objective.
type Mode int

const (
	// MinimizeTime puts phase times on the objective and monetary cost on
	// the side weight (the Eq. 16 problem).
	MinimizeTime Mode = iota
	// MinimizeCost puts monetary cost on the objective and time on the
	// side weight (the Eq. 20 problem).
	MinimizeCost
)

// String names the mode.
func (m Mode) String() string {
	if m == MinimizeCost {
		return "minimize-cost"
	}
	return "minimize-time"
}

// Options tunes DAG construction.
type Options struct {
	// Tiers overrides the memory tier candidates (default: every tier on
	// the price sheet, the paper's L = 46).
	Tiers []int
	// MaxKM caps objects-per-mapper candidates (default: N).
	MaxKM int
	// MaxKR caps objects-per-reducer candidates (default: N).
	MaxKR int
	// KeepDominatedTiers disables the pruning of memory tiers above the
	// speed floor (used by ablations that want the paper's full L = 46).
	KeepDominatedTiers bool
	// Parallelism bounds the worker pool used for edge-weight evaluation:
	// 0 means every available core, 1 forces the serial path. The built
	// graph is identical at every setting.
	Parallelism int
}

// Fingerprint returns a stable hash of everything in the options that
// shapes the built graph: the tier list, the kM/kR caps, and the
// dominated-tier switch. Parallelism is deliberately excluded — the
// built DAG is bit-identical at every pool size — so a template cached
// under one parallelism degree serves callers at any other.
func (o Options) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	u64(uint64(len(o.Tiers)))
	for _, t := range o.Tiers {
		u64(uint64(int64(t)))
	}
	u64(uint64(int64(o.MaxKM)))
	u64(uint64(int64(o.MaxKR)))
	if o.KeepDominatedTiers {
		u64(1)
	} else {
		u64(0)
	}
	return h.Sum64()
}

// DAG is a built configuration graph.
type DAG struct {
	G        *graph.Graph
	Src, Dst int
	Mode     Mode

	tiers  []int
	maxKM  int
	maxKR  int
	nTiers int

	// node id bases for decoding
	iBase, kmBase, krBase, kraBase, sBase int
}

// Build constructs the DAG for the model under the given mode. It is
// BuildContext with a background context.
func Build(m *model.Paper, mode Mode, opts Options) (*DAG, error) {
	return BuildContext(context.Background(), m, mode, opts)
}

// BuildContext constructs the DAG, evaluating edge weights on a bounded
// worker pool and honoring cancellation: if ctx fires mid-build, the
// partial work is discarded and ctx.Err() is returned.
func BuildContext(ctx context.Context, m *model.Paper, mode Mode, opts Options) (*DAG, error) {
	if err := m.P.Validate(); err != nil {
		return nil, err
	}
	tel := telemetry.FromContext(ctx)
	buildSpan := tel.StartSpan("plan/dag-build")
	defer buildSpan.End()
	tiers := opts.Tiers
	if len(tiers) == 0 {
		tiers = m.P.Sheet.Lambda.MemoryTiers()
	}
	// Tiers strictly above the speed floor are dominated: the speed model
	// gives them no extra compute speed while the GB-second price keeps
	// rising, so no optimum — for either objective — ever uses one.
	if floor := m.P.Speed.FloorMemMB; floor > 0 && !opts.KeepDominatedTiers {
		kept := tiers[:0:0]
		for _, t := range tiers {
			if t <= floor {
				kept = append(kept, t)
			}
		}
		if len(kept) > 0 && kept[len(kept)-1] < floor && m.P.Sheet.Lambda.ValidMemory(floor) {
			kept = append(kept, floor)
		}
		if len(kept) > 0 {
			tiers = kept
		}
	}
	n := m.P.Job.NumObjects
	maxKM := opts.MaxKM
	if maxKM <= 0 || maxKM > n {
		maxKM = n
	}
	maxKR := opts.MaxKR
	if maxKR <= 0 || maxKR > n {
		maxKR = n
	}
	L := len(tiers)
	workers := opts.Parallelism

	d := &DAG{
		Mode:   mode,
		tiers:  tiers,
		maxKM:  maxKM,
		maxKR:  maxKR,
		nTiers: L,
	}
	// Node ids: [src, dst, i x L, kM x maxKM, kR x maxKR, (kR,a) x maxKR*L, s x L]
	d.Src = 0
	d.Dst = 1
	d.iBase = 2
	d.kmBase = d.iBase + L
	d.krBase = d.kmBase + maxKM
	d.kraBase = d.krBase + maxKR
	d.sBase = d.kraBase + maxKR*L

	// --- Phase 1: evaluate every edge weight into indexed slots. Each
	// slot is written by exactly one worker, so the values (and therefore
	// the assembled graph) do not depend on scheduling. The slots live in
	// a pooled scratch (flat backing arrays recycled across builds), so a
	// steady stream of cold builds stops allocating them.
	sc := getBuildScratch(L, maxKM, maxKR, tel)
	defer putBuildScratch(sc)

	// Mapper column: feasibility plus L (time, cost) pairs per kM.
	if err := parallel.ForEach(ctx, maxKM, workers, func(i int) {
		kM := i + 1
		orch, err := mapreduce.OrchestrateFor(m.P.Job.Profile, n, kM, 2)
		if err != nil {
			return
		}
		if err := model.Feasible(m.P, orch); err != nil {
			return
		}
		sc.mapFeasible[kM-1] = true
		for ti, mem := range tiers {
			sc.mapT[(kM-1)*L+ti] = m.MapperTime(mem, kM)
			sc.mapC[(kM-1)*L+ti] = m.MapperCostFor(orch, mem, kM)
		}
	}); err != nil {
		return nil, err
	}

	// Transfer column: one (time, cost) pair per feasible (kM, kR).
	for kM := 1; kM <= maxKM; kM++ {
		if sc.mapFeasible[kM-1] {
			sc.feasKM = append(sc.feasKM, kM)
		}
	}
	if err := parallel.ForEach(ctx, len(sc.feasKM), workers, func(i int) {
		kM := sc.feasKM[i]
		row := sc.transfer[(kM-1)*maxKR : kM*maxKR]
		var e model.RowEval // orchestration + shapes bound once per kR
		for kR := 1; kR <= maxKR; kR++ {
			if err := m.BindRowFor(&e, kM, kR); err != nil {
				continue
			}
			row[kR-1] = pairW{ok: true, t: e.TransferTime(), c: e.GlueCost(kR)}
		}
	}); err != nil {
		return nil, err
	}

	// Coordinator column: one (time, cost) pair per (kR, tier).
	if err := parallel.ForEach(ctx, maxKR, workers, func(i int) {
		kR := i + 1
		row := sc.coord[(kR-1)*L : kR*L]
		var e model.RowEval
		if err := m.BindRowHat(&e, kR); err == nil {
			for ta, mem := range tiers {
				row[ta] = pairW{ok: true, t: m.CoordCompute(mem), c: e.CoordCost(mem)}
			}
		}
	}); err != nil {
		return nil, err
	}

	// Reducer column: Eq. 9 compute and VP+WP cost depend only on
	// (kR, s); one evaluation per pair, fanned out over kR.
	if err := parallel.ForEach(ctx, maxKR, workers, func(i int) {
		kR := i + 1
		row := sc.reduce[(kR-1)*L : kR*L]
		var e model.RowEval
		if err := m.BindRowHat(&e, kR); err == nil {
			for ts, mem := range tiers {
				row[ts] = pairW{ok: true, t: e.ReduceCompute(mem), c: e.ReduceCost(mem)}
			}
		}
	}); err != nil {
		return nil, err
	}

	// --- Phase 2: assemble the graph serially, in a fixed column order,
	// from the precomputed slots. The edge log is reserved to the slot
	// census up front, so assembly appends without reallocation. ---
	total := d.sBase + L
	g := graph.New(total)
	d.G = g
	edgeCount := 2 * L // source and destination columns
	edgeCount += len(sc.feasKM) * L
	for _, p := range sc.transfer {
		if p.ok {
			edgeCount++
		}
	}
	for _, p := range sc.coord {
		if p.ok {
			edgeCount++
		}
	}
	for kR := 1; kR <= maxKR; kR++ {
		okReduce := 0
		for ts := 0; ts < L; ts++ {
			if sc.reduce[(kR-1)*L+ts].ok {
				okReduce++
			}
		}
		edgeCount += okReduce * L // one fan per coordinator tier
	}
	g.Reserve(edgeCount)

	// tieEps breaks objective ties toward the cheaper side metric:
	// with the speed floor, many configurations have identical times and
	// Dijkstra would otherwise pick an arbitrary (pricier) one.
	const tieEps = 1e-7
	addEdge := func(u, v int, timeW, costW float64) {
		if math.IsInf(timeW, 1) || math.IsInf(costW, 1) {
			return // infeasible combination: no edge
		}
		if mode == MinimizeTime {
			g.AddEdge(u, v, timeW+tieEps*costW, costW)
		} else {
			g.AddEdge(u, v, costW+tieEps*timeW, timeW)
		}
	}

	// source -> mapper memory tiers.
	for ti := range tiers {
		addEdge(d.Src, d.iBase+ti, 0, 0)
	}

	// mapper-mem -> objects-per-mapper: Eq. 4 time, U1+V1+W1 cost.
	// Infeasible kM values (mapper count over the lambda limit R) have no
	// row and contribute no edges.
	for kM := 1; kM <= maxKM; kM++ {
		if !sc.mapFeasible[kM-1] {
			continue
		}
		for ti := range tiers {
			addEdge(d.iBase+ti, d.kmBase+(kM-1), sc.mapT[(kM-1)*L+ti], sc.mapC[(kM-1)*L+ti])
		}
	}

	// objects-per-mapper -> objects-per-reducer: transfer times, glue
	// costs (requests + invocations).
	for kM := 1; kM <= maxKM; kM++ {
		for kR := 1; kR <= maxKR; kR++ {
			if w := sc.transfer[(kM-1)*maxKR+(kR-1)]; w.ok {
				addEdge(d.kmBase+(kM-1), d.krBase+(kR-1), w.t, w.c)
			}
		}
	}

	// objects-per-reducer -> (kR, coordinator memory): c2 time, V2+W2 cost.
	for kR := 1; kR <= maxKR; kR++ {
		for ta := range tiers {
			if w := sc.coord[(kR-1)*L+ta]; w.ok {
				addEdge(d.krBase+(kR-1), d.kraBase+(kR-1)*L+ta, w.t, w.c)
			}
		}
	}

	// (kR, coord-mem) -> reducer memory: Eq. 9 compute, VP+WP cost.
	for kR := 1; kR <= maxKR; kR++ {
		for ta := 0; ta < L; ta++ {
			from := d.kraBase + (kR-1)*L + ta
			for ts := range tiers {
				if w := sc.reduce[(kR-1)*L+ts]; w.ok {
					addEdge(from, d.sBase+ts, w.t, w.c)
				}
			}
		}
	}

	// reducer memory -> destination.
	for ts := range tiers {
		addEdge(d.sBase+ts, d.Dst, 0, 0)
	}
	tel.Counter(telemetry.MDAGBuilds).Inc()
	tel.Gauge(telemetry.MDAGNodes).Set(int64(g.NumNodes()))
	tel.Gauge(telemetry.MDAGEdges).Set(int64(g.NumEdges()))
	return d, nil
}

// WithGraph returns a shallow copy of the DAG whose searches run on g —
// typically a Clone of the original graph, so destructive searches
// (Algorithm 1) can reuse one memoized build.
func (d *DAG) WithGraph(g *graph.Graph) *DAG {
	c := *d
	c.G = g
	return &c
}

// Decode maps a source-to-destination path back to a configuration.
func (d *DAG) Decode(p graph.Path) (mapreduce.Config, error) {
	if len(p.Nodes) != 7 || p.Nodes[0] != d.Src || p.Nodes[6] != d.Dst {
		return mapreduce.Config{}, fmt.Errorf("dag: path %v is not a full configuration", p.Nodes)
	}
	L := d.nTiers
	iIdx := p.Nodes[1] - d.iBase
	kM := p.Nodes[2] - d.kmBase + 1
	kR := p.Nodes[3] - d.krBase + 1
	kra := p.Nodes[4] - d.kraBase
	aIdx := kra % L
	if kra/L+1 != kR {
		return mapreduce.Config{}, fmt.Errorf("dag: path switches k_R mid-way: %v", p.Nodes)
	}
	sIdx := p.Nodes[5] - d.sBase
	if iIdx < 0 || iIdx >= L || sIdx < 0 || sIdx >= L || aIdx < 0 ||
		kM < 1 || kM > d.maxKM || kR < 1 || kR > d.maxKR {
		return mapreduce.Config{}, fmt.Errorf("dag: path %v decodes out of range", p.Nodes)
	}
	return mapreduce.Config{
		MapperMemMB:    d.tiers[iIdx],
		CoordMemMB:     d.tiers[aIdx],
		ReducerMemMB:   d.tiers[sIdx],
		ObjsPerMapper:  kM,
		ObjsPerReducer: kR,
	}, nil
}
