// Package dag constructs the configuration DAG of the paper's Fig. 5: a
// layered graph whose source-to-destination paths enumerate complete
// resource configurations, with edge weights carrying the phase times (or
// phase costs) of the model so the optimal configuration is a shortest
// path.
//
// Column layout (left to right): source, mapper memory tier (x_i), mapper
// parallelism (expressed as objects-per-mapper, which fixes j), objects
// per reducer (k_R), coordinator memory tier, reducer memory tier,
// destination. Coordinator-memory nodes are keyed (k_R, a) so the final
// edge set can compute the reduce-phase terms that need k_R — the minimal
// state augmentation that makes the paper's drawing well-defined.
//
// Every edge carries both the objective weight and the other metric as a
// side weight, so the constrained searches (Algorithm 1, Yen, exact
// label-setting) can enforce the budget or deadline along the path.
package dag

import (
	"fmt"
	"math"

	"astra/internal/graph"
	"astra/internal/mapreduce"
	"astra/internal/model"
)

// Mode selects which metric is the shortest-path objective.
type Mode int

const (
	// MinimizeTime puts phase times on the objective and monetary cost on
	// the side weight (the Eq. 16 problem).
	MinimizeTime Mode = iota
	// MinimizeCost puts monetary cost on the objective and time on the
	// side weight (the Eq. 20 problem).
	MinimizeCost
)

// String names the mode.
func (m Mode) String() string {
	if m == MinimizeCost {
		return "minimize-cost"
	}
	return "minimize-time"
}

// Options tunes DAG construction.
type Options struct {
	// Tiers overrides the memory tier candidates (default: every tier on
	// the price sheet, the paper's L = 46).
	Tiers []int
	// MaxKM caps objects-per-mapper candidates (default: N).
	MaxKM int
	// MaxKR caps objects-per-reducer candidates (default: N).
	MaxKR int
	// KeepDominatedTiers disables the pruning of memory tiers above the
	// speed floor (used by ablations that want the paper's full L = 46).
	KeepDominatedTiers bool
}

// DAG is a built configuration graph.
type DAG struct {
	G        *graph.Graph
	Src, Dst int
	Mode     Mode

	tiers  []int
	maxKM  int
	maxKR  int
	nTiers int

	// node id bases for decoding
	iBase, kmBase, krBase, kraBase, sBase int
}

// Build constructs the DAG for the model under the given mode.
func Build(m *model.Paper, mode Mode, opts Options) (*DAG, error) {
	if err := m.P.Validate(); err != nil {
		return nil, err
	}
	tiers := opts.Tiers
	if len(tiers) == 0 {
		tiers = m.P.Sheet.Lambda.MemoryTiers()
	}
	// Tiers strictly above the speed floor are dominated: the speed model
	// gives them no extra compute speed while the GB-second price keeps
	// rising, so no optimum — for either objective — ever uses one.
	if floor := m.P.Speed.FloorMemMB; floor > 0 && !opts.KeepDominatedTiers {
		kept := tiers[:0:0]
		for _, t := range tiers {
			if t <= floor {
				kept = append(kept, t)
			}
		}
		if len(kept) > 0 && kept[len(kept)-1] < floor && m.P.Sheet.Lambda.ValidMemory(floor) {
			kept = append(kept, floor)
		}
		if len(kept) > 0 {
			tiers = kept
		}
	}
	n := m.P.Job.NumObjects
	maxKM := opts.MaxKM
	if maxKM <= 0 || maxKM > n {
		maxKM = n
	}
	maxKR := opts.MaxKR
	if maxKR <= 0 || maxKR > n {
		maxKR = n
	}
	L := len(tiers)

	d := &DAG{
		Mode:   mode,
		tiers:  tiers,
		maxKM:  maxKM,
		maxKR:  maxKR,
		nTiers: L,
	}
	// Node ids: [src, dst, i x L, kM x maxKM, kR x maxKR, (kR,a) x maxKR*L, s x L]
	d.Src = 0
	d.Dst = 1
	d.iBase = 2
	d.kmBase = d.iBase + L
	d.krBase = d.kmBase + maxKM
	d.kraBase = d.krBase + maxKR
	d.sBase = d.kraBase + maxKR*L
	total := d.sBase + L
	g := graph.New(total)
	d.G = g

	// tieEps breaks objective ties toward the cheaper side metric:
	// with the speed floor, many configurations have identical times and
	// Dijkstra would otherwise pick an arbitrary (pricier) one.
	const tieEps = 1e-7
	addEdge := func(u, v int, timeW, costW float64) {
		if math.IsInf(timeW, 1) || math.IsInf(costW, 1) {
			return // infeasible combination: no edge
		}
		if mode == MinimizeTime {
			g.AddEdge(u, v, timeW+tieEps*costW, costW)
		} else {
			g.AddEdge(u, v, costW+tieEps*timeW, timeW)
		}
	}

	// source -> mapper memory tiers.
	for ti := range tiers {
		addEdge(d.Src, d.iBase+ti, 0, 0)
	}

	// mapper-mem -> objects-per-mapper: Eq. 4 time, U1+V1+W1 cost.
	// Skip kM values whose mapper count exceeds the lambda limit R.
	feasKM := make([]bool, maxKM+1)
	for kM := 1; kM <= maxKM; kM++ {
		orch, err := mapreduce.OrchestrateFor(m.P.Job.Profile, n, kM, 2)
		if err != nil {
			continue
		}
		if err := model.Feasible(m.P, orch); err != nil {
			continue
		}
		feasKM[kM] = true
		for ti, mem := range tiers {
			addEdge(d.iBase+ti, d.kmBase+(kM-1),
				m.MapperTime(mem, kM), m.MapperCost(mem, kM))
		}
	}

	// objects-per-mapper -> objects-per-reducer: transfer times, glue
	// costs (requests + invocations).
	for kM := 1; kM <= maxKM; kM++ {
		if !feasKM[kM] {
			continue
		}
		for kR := 1; kR <= maxKR; kR++ {
			tt, err := m.TransferTime(kM, kR)
			if err != nil {
				continue
			}
			gc, err := m.GlueCost(kM, kR)
			if err != nil {
				continue
			}
			addEdge(d.kmBase+(kM-1), d.krBase+(kR-1), tt, gc)
		}
	}

	// objects-per-reducer -> (kR, coordinator memory): c2 time, V2+W2 cost.
	for kR := 1; kR <= maxKR; kR++ {
		for ta, mem := range tiers {
			cc, err := m.CoordCost(mem, kR)
			if err != nil {
				continue
			}
			addEdge(d.krBase+(kR-1), d.kraBase+(kR-1)*L+ta,
				m.CoordCompute(mem), cc)
		}
	}

	// (kR, coord-mem) -> reducer memory: Eq. 9 compute, VP+WP cost.
	// Weight depends only on (kR, s); memoize per pair.
	type rw struct{ t, c float64 }
	memo := make(map[[2]int]rw, maxKR*L)
	for kR := 1; kR <= maxKR; kR++ {
		for ts, mem := range tiers {
			rc, err1 := m.ReduceCompute(mem, kR)
			cc, err2 := m.ReduceCost(mem, kR)
			if err1 != nil || err2 != nil {
				continue
			}
			memo[[2]int{kR, ts}] = rw{t: rc, c: cc}
		}
	}
	for kR := 1; kR <= maxKR; kR++ {
		for ta := 0; ta < L; ta++ {
			from := d.kraBase + (kR-1)*L + ta
			for ts := range tiers {
				w, ok := memo[[2]int{kR, ts}]
				if !ok {
					continue
				}
				addEdge(from, d.sBase+ts, w.t, w.c)
			}
		}
	}

	// reducer memory -> destination.
	for ts := range tiers {
		addEdge(d.sBase+ts, d.Dst, 0, 0)
	}
	return d, nil
}

// Decode maps a source-to-destination path back to a configuration.
func (d *DAG) Decode(p graph.Path) (mapreduce.Config, error) {
	if len(p.Nodes) != 7 || p.Nodes[0] != d.Src || p.Nodes[6] != d.Dst {
		return mapreduce.Config{}, fmt.Errorf("dag: path %v is not a full configuration", p.Nodes)
	}
	L := d.nTiers
	iIdx := p.Nodes[1] - d.iBase
	kM := p.Nodes[2] - d.kmBase + 1
	kR := p.Nodes[3] - d.krBase + 1
	kra := p.Nodes[4] - d.kraBase
	aIdx := kra % L
	if kra/L+1 != kR {
		return mapreduce.Config{}, fmt.Errorf("dag: path switches k_R mid-way: %v", p.Nodes)
	}
	sIdx := p.Nodes[5] - d.sBase
	if iIdx < 0 || iIdx >= L || sIdx < 0 || sIdx >= L || aIdx < 0 ||
		kM < 1 || kM > d.maxKM || kR < 1 || kR > d.maxKR {
		return mapreduce.Config{}, fmt.Errorf("dag: path %v decodes out of range", p.Nodes)
	}
	return mapreduce.Config{
		MapperMemMB:    d.tiers[iIdx],
		CoordMemMB:     d.tiers[aIdx],
		ReducerMemMB:   d.tiers[sIdx],
		ObjsPerMapper:  kM,
		ObjsPerReducer: kR,
	}, nil
}
