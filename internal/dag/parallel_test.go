package dag

import (
	"context"
	"errors"
	"testing"

	"astra/internal/graph"
	"astra/internal/model"
	"astra/internal/workload"
)

// sameGraph reports whether two graphs are structurally identical: same
// node count and, for every node, the same live edges in the same order
// with bit-identical weights.
func sameGraph(a, b *graph.Graph) (string, bool) {
	if a.NumNodes() != b.NumNodes() {
		return "node count", false
	}
	if a.NumEdges() != b.NumEdges() {
		return "edge count", false
	}
	for u := 0; u < a.NumNodes(); u++ {
		ea, eb := a.EdgesFrom(u), b.EdgesFrom(u)
		if len(ea) != len(eb) {
			return "out-degree", false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return "edge weight/order", false
			}
		}
	}
	return "", true
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	jobs := []workload.Job{
		{Profile: workload.WordCount, NumObjects: 10, ObjectSize: 8 << 20},
		{Profile: workload.Sort, NumObjects: 40, ObjectSize: 32 << 20},
	}
	for _, job := range jobs {
		m := model.NewPaper(model.DefaultParams(job))
		for _, mode := range []Mode{MinimizeTime, MinimizeCost} {
			serial, err := Build(m, mode, Options{Tiers: testTiers, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 2, 8} {
				par, err := Build(m, mode, Options{Tiers: testTiers, Parallelism: workers})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", job.Profile.Name, workers, err)
				}
				if why, ok := sameGraph(serial.G, par.G); !ok {
					t.Fatalf("%s mode=%v workers=%d: graphs differ (%s)",
						job.Profile.Name, mode, workers, why)
				}
			}
		}
	}
}

func TestBuildContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildContext(ctx, testModel(), MinimizeTime, Options{Tiers: testTiers})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWithGraphSharesDecoder(t *testing.T) {
	d, err := Build(testModel(), MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	clone := d.WithGraph(d.G.Clone())
	if clone.G == d.G {
		t.Fatal("WithGraph returned the original graph")
	}
	if clone.Src != d.Src || clone.Dst != d.Dst {
		t.Fatal("WithGraph changed terminals")
	}
	p, err := clone.G.ShortestPath(clone.Src, clone.Dst)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := clone.Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := d.G.ShortestPath(d.Src, d.Dst)
	if err != nil {
		t.Fatal(err)
	}
	ocfg, err := d.Decode(orig)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != ocfg {
		t.Fatalf("clone decodes %v, original %v", cfg, ocfg)
	}
}
