package dag

import (
	"testing"

	"astra/internal/model"
	"astra/internal/workload"
)

func TestDominatedTierPruning(t *testing.T) {
	m := testModel() // speed floor at 1792
	full := m.P.Sheet.Lambda.MemoryTiers()
	d, err := Build(m, MinimizeTime, Options{Tiers: full})
	if err != nil {
		t.Fatal(err)
	}
	// Pruned tier set: 128..1792 = 27 tiers.
	wantL := 27
	n := m.P.Job.NumObjects
	wantNodes := 2 + wantL + n + n + n*wantL + wantL
	if d.G.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d (pruned to %d tiers)", d.G.NumNodes(), wantNodes, wantL)
	}
}

func TestKeepDominatedTiers(t *testing.T) {
	m := testModel()
	full := m.P.Sheet.Lambda.MemoryTiers()
	d, err := Build(m, MinimizeTime, Options{Tiers: full, KeepDominatedTiers: true})
	if err != nil {
		t.Fatal(err)
	}
	wantL := len(full) // all 46
	n := m.P.Job.NumObjects
	wantNodes := 2 + wantL + n + n + n*wantL + wantL
	if d.G.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d (L = 46 kept)", d.G.NumNodes(), wantNodes)
	}
}

func TestFloorAppendedWhenMissing(t *testing.T) {
	// A tier list ending below the floor gets the floor appended so the
	// fastest speed remains reachable.
	m := testModel()
	d, err := Build(m, MinimizeTime, Options{Tiers: []int{128, 512}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.G.ShortestPath(d.Src, d.Dst)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := d.Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MapperMemMB != 1792 {
		t.Fatalf("fastest plan uses %d MB, want the appended 1792 floor", cfg.MapperMemMB)
	}
}

func TestMaxKMAndKRCaps(t *testing.T) {
	m := testModel()
	d, err := Build(m, MinimizeTime, Options{Tiers: testTiers, MaxKM: 3, MaxKR: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.G.YenKSP(d.Src, d.Dst, 10) {
		cfg, err := d.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.ObjsPerMapper > 3 || cfg.ObjsPerReducer > 2 {
			t.Fatalf("caps violated: %v", cfg)
		}
	}
}

func TestBuildRejectsInvalidParams(t *testing.T) {
	bad := model.NewPaper(model.Params{})
	if _, err := Build(bad, MinimizeTime, Options{}); err == nil {
		t.Fatal("invalid params should fail")
	}
}

func TestSingleStepProfileDAG(t *testing.T) {
	// Sort's single-step orchestration flows through the DAG builder too.
	p := model.DefaultParams(workload.Job{
		Profile: workload.Sort, NumObjects: 12, ObjectSize: 8 << 20,
	})
	d, err := Build(model.NewPaper(p), MinimizeTime, Options{Tiers: testTiers})
	if err != nil {
		t.Fatal(err)
	}
	path, err := d.G.ShortestPath(d.Src, d.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(path); err != nil {
		t.Fatal(err)
	}
}
