package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"astra/internal/objectstore"
	"astra/internal/pricing"
	"astra/internal/simtime"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, pf := range []Profile{WordCount, Sort, Query, SparkWordCount, SparkSQL} {
		if err := pf.Validate(); err != nil {
			t.Errorf("%s: %v", pf.Name, err)
		}
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x"},
		{Name: "x", USecPerMB: 1},
		{Name: "x", USecPerMB: 1, MapOutputRatio: 1},
		{Name: "x", USecPerMB: 1, MapOutputRatio: 1, ReduceOutputRatio: 1, CoordSecPerObject: -1},
	}
	for i, pf := range bad {
		if err := pf.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestByName(t *testing.T) {
	pf, err := ByName("sort")
	if err != nil || pf.Name != "sort" {
		t.Fatalf("ByName(sort) = %v, %v", pf, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestPaperJobSizes(t *testing.T) {
	cases := []struct {
		job     Job
		wantGB  float64
		wantTol float64
	}{
		{WordCount1GB(), 1, 0.01},
		{WordCount10GB(), 10, 0.01},
		{WordCount20GB(), 20, 0.01},
		{Sort100GB(), 97.656, 0.01}, // 200 x 500 MiB = 97.656 GiB ~ "100 GB"
		{Query25GB(), 25.4, 0.01},
	}
	for _, c := range cases {
		gotGB := float64(c.job.TotalBytes()) / (1 << 30)
		if gotGB < c.wantGB-c.wantTol || gotGB > c.wantGB+c.wantTol {
			t.Errorf("%s: total = %.3f GiB, want ~%.3f", c.job.Profile.Name, gotGB, c.wantGB)
		}
	}
}

func TestQueryHas202Objects(t *testing.T) {
	if n := Query25GB().NumObjects; n != 202 {
		t.Fatalf("Query objects = %d, want the paper's 202", n)
	}
	if n := Sort100GB().NumObjects; n != 200 {
		t.Fatalf("Sort objects = %d, want the paper's 200", n)
	}
}

func TestJobValidate(t *testing.T) {
	good := WordCount1GB()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.NumObjects = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero objects should be invalid")
	}
	bad = good
	bad.ObjectSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero size should be invalid")
	}
}

func TestCorpusTextDeterministicAndSized(t *testing.T) {
	a := CorpusText(42, 1000)
	b := CorpusText(42, 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must give same bytes")
	}
	if len(a) != 1000 {
		t.Fatalf("len = %d, want 1000", len(a))
	}
	c := CorpusText(43, 1000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
	// Must be tokenizable words from the vocabulary.
	for _, w := range strings.Fields(string(a[:500])) {
		found := false
		for _, v := range corpusWords {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("unexpected token %q", w)
		}
	}
}

func TestSortRecordsFormat(t *testing.T) {
	data := SortRecords(7, 1000)
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != 10 {
		t.Fatalf("%d records, want 10", len(lines))
	}
	for _, ln := range lines {
		if len(ln) != SortRecordSize-1 { // newline stripped
			t.Fatalf("record length = %d", len(ln))
		}
	}
	// Minimum one record even for tiny sizes.
	if len(SortRecords(7, 5)) != SortRecordSize {
		t.Fatal("tiny size should yield one record")
	}
}

func TestUserVisitsSchema(t *testing.T) {
	data := UserVisitsRows(1, 2000)
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) < 2 {
		t.Fatal("expected multiple rows")
	}
	fields := strings.Split(string(lines[0]), ",")
	// sourceIP, visitDate, adRevenue, userAgent, countryCode,
	// languageCode, searchWord, duration
	if len(fields) != 8 {
		t.Fatalf("%d fields, want 8: %q", len(fields), lines[0])
	}
	if !strings.Contains(fields[1], "-") {
		t.Fatalf("visitDate = %q", fields[1])
	}
}

func TestGeneratorDeterminismProperty(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		size := int(sz)%4096 + 1
		for _, gen := range []Generator{CorpusText, SortRecords, UserVisitsRows} {
			if !bytes.Equal(gen(seed, size), gen(seed, size)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorFor(t *testing.T) {
	for _, pf := range []Profile{WordCount, Sort, Query, SparkWordCount, SparkSQL} {
		if _, err := GeneratorFor(pf); err != nil {
			t.Errorf("%s: %v", pf.Name, err)
		}
	}
	if _, err := GeneratorFor(Profile{Name: "zzz"}); err == nil {
		t.Fatal("unknown profile should error")
	}
}

func TestSeedConcreteAndProfiled(t *testing.T) {
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{Bandwidth: 1 << 30, Pricing: pricing.AWS().Store})
	job := Job{Profile: WordCount, NumObjects: 5, ObjectSize: 1024}
	keys, err := SeedConcrete(store, "in", job, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 || store.ObjectCount("in") != 5 {
		t.Fatalf("keys = %v, count = %d", keys, store.ObjectCount("in"))
	}
	if store.StoredBytes() != 5*1024 {
		t.Fatalf("stored = %d", store.StoredBytes())
	}

	big := Sort100GB()
	keys2, err := SeedProfiled(store, "big", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys2) != 200 {
		t.Fatalf("profiled keys = %d", len(keys2))
	}
	if store.StoredBytes() != 5*1024+big.TotalBytes() {
		t.Fatalf("stored = %d, want input+profiled", store.StoredBytes())
	}
	// Seeding is free: no requests metered.
	if m := store.Metrics(); m.Puts != 0 {
		t.Fatalf("seeding metered %d puts", m.Puts)
	}
}

func TestSeedRejectsInvalidJob(t *testing.T) {
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{Bandwidth: 1, Pricing: pricing.AWS().Store})
	if _, err := SeedConcrete(store, "b", Job{Profile: WordCount}, 0); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := SeedProfiled(store, "b", Job{Profile: Profile{Name: "zzz", USecPerMB: 1, MapOutputRatio: 1, ReduceOutputRatio: 1}, NumObjects: 1, ObjectSize: 1}); err != nil {
		t.Fatal("profiled seeding should not need a generator:", err)
	}
}

func TestInputKeyStable(t *testing.T) {
	if InputKey(3) != "input/part-00003" {
		t.Fatalf("InputKey(3) = %q", InputKey(3))
	}
}
