package workload

import (
	"bytes"
	"fmt"
	"math/rand"

	"astra/internal/objectstore"
)

// Generator produces approximately size bytes of deterministic input data
// from a seed. Exact output length may differ by up to one record.
type Generator func(seed int64, size int) []byte

// corpusWords is the vocabulary for WordCount inputs; a Zipf-ish skew is
// induced by sampling the head of the list more often.
var corpusWords = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "at",
	"be", "this", "have", "from", "or", "one", "had", "by", "word", "but",
	"not", "what", "all", "were", "we", "when", "your", "can", "said", "there",
	"use", "an", "each", "which", "she", "do", "how", "their", "if", "will",
	"lambda", "serverless", "analytics", "astra", "mapreduce", "shuffle",
	"object", "storage", "function", "memory", "latency", "budget", "cost",
}

// CorpusText generates whitespace-separated words for WordCount, broken
// into newline-terminated lines of a dozen words so line-oriented
// applications (Grep) see realistic text.
func CorpusText(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	buf.Grow(size + 16)
	words := 0
	for buf.Len() < size {
		// Squaring the uniform variate skews selection toward the head,
		// giving a heavy-tailed word distribution like real text.
		u := rng.Float64()
		idx := int(u * u * float64(len(corpusWords)))
		if idx >= len(corpusWords) {
			idx = len(corpusWords) - 1
		}
		buf.WriteString(corpusWords[idx])
		words++
		if words%12 == 0 {
			buf.WriteByte('\n')
		} else {
			buf.WriteByte(' ')
		}
	}
	return buf.Bytes()[:size]
}

// SortRecordSize is the gensort-style record size: a 10-byte key, a
// 2-byte separator and an 87-byte payload plus newline.
const SortRecordSize = 100

// SortRecords generates newline-terminated 100-byte records with random
// 10-byte keys, the classic sort-benchmark format.
func SortRecords(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	n := size / SortRecordSize
	if n == 0 {
		n = 1
	}
	var buf bytes.Buffer
	buf.Grow(n * SortRecordSize)
	const keyAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	payload := bytes.Repeat([]byte{'x'}, SortRecordSize-13)
	for i := 0; i < n; i++ {
		for k := 0; k < 10; k++ {
			buf.WriteByte(keyAlphabet[rng.Intn(len(keyAlphabet))])
		}
		buf.WriteString("  ")
		buf.Write(payload)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Countries used by the uservisits synthesizer.
var countries = []string{"USA", "CHN", "IND", "BRA", "DEU", "FRA", "GBR", "JPN", "CAN", "AUS"}
var languages = []string{"en", "zh", "hi", "pt", "de", "fr", "ja", "es"}
var searchWords = []string{"cloud", "lambda", "price", "news", "travel", "music", "sports", "food"}

// UserVisitsRows generates CSV rows with the AMPLab uservisits schema the
// paper describes: sourceIP, visitDate, adRevenue, userAgent, countryCode,
// languageCode, searchWord, duration.
func UserVisitsRows(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	buf.Grow(size + 128)
	for buf.Len() < size {
		fmt.Fprintf(&buf, "%d.%d.%d.%d,%04d-%02d-%02d,%.2f,Mozilla/5.0,%s,%s,%s,%d\n",
			rng.Intn(224)+1, rng.Intn(256), rng.Intn(256), rng.Intn(256),
			1980+rng.Intn(30), 1+rng.Intn(12), 1+rng.Intn(28),
			rng.Float64()*1000,
			countries[rng.Intn(len(countries))],
			languages[rng.Intn(len(languages))],
			searchWords[rng.Intn(len(searchWords))],
			1+rng.Intn(10000))
	}
	return buf.Bytes()
}

// GeneratorFor returns the concrete data generator for a profile.
func GeneratorFor(pf Profile) (Generator, error) {
	switch pf.Name {
	case WordCount.Name, SparkWordCount.Name, Grep.Name:
		return CorpusText, nil
	case Sort.Name:
		return SortRecords, nil
	case Query.Name, SparkSQL.Name:
		return UserVisitsRows, nil
	default:
		return nil, fmt.Errorf("workload: no generator for profile %q", pf.Name)
	}
}

// InputKey names the i-th input object under the conventional layout.
func InputKey(i int) string { return fmt.Sprintf("input/part-%05d", i) }

// SeedConcrete materializes a job's input objects with real generated
// bytes (setup-time, free of request billing) and returns the keys.
func SeedConcrete(store *objectstore.Store, bucket string, job Job, seed int64) ([]string, error) {
	gen, err := GeneratorFor(job.Profile)
	if err != nil {
		return nil, err
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	keys := make([]string, job.NumObjects)
	for i := 0; i < job.NumObjects; i++ {
		keys[i] = InputKey(i)
		store.Seed(bucket, keys[i], gen(seed+int64(i), int(job.ObjectSize)))
	}
	return keys, nil
}

// SeedProfiled registers a job's input objects as size-only metadata,
// letting 100 GB inputs exist without 100 GB of host memory.
func SeedProfiled(store *objectstore.Store, bucket string, job Job) ([]string, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	keys := make([]string, job.NumObjects)
	for i := 0; i < job.NumObjects; i++ {
		keys[i] = InputKey(i)
		store.SeedProfiled(bucket, keys[i], job.ObjectSize)
	}
	return keys, nil
}
