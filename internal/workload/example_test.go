package workload_test

import (
	"fmt"

	"astra/internal/workload"
)

// The paper's five evaluation inputs, with the object layouts its Sec. V
// describes (Sort: 200 x 500 MB; Query: 25.4 GB in 202 objects).
func ExamplePaperJobs() {
	for _, job := range workload.PaperJobs() {
		fmt.Printf("%-10s %3d objects x %4d MB\n",
			job.Profile.Name, job.NumObjects, job.ObjectSize>>20)
	}
	// Output:
	// wordcount   20 objects x   51 MB
	// wordcount   24 objects x  426 MB
	// wordcount   40 objects x  512 MB
	// sort       200 objects x  500 MB
	// query      202 objects x  128 MB
}

// Generators are deterministic in their seed.
func ExampleCorpusText() {
	a := workload.CorpusText(42, 24)
	b := workload.CorpusText(42, 24)
	fmt.Println(string(a))
	fmt.Println(string(a) == string(b))
	// Output:
	// that the have and the it
	// true
}
