// Package workload defines the analytics workloads of the paper's
// evaluation — WordCount, Sort, and Query over the AMPLab uservisits
// dataset — as (a) calibration profiles consumed by the performance/cost
// models and the profiled execution mode, and (b) deterministic data
// generators for concrete execution.
//
// A profile captures everything the Astra models need to know about an
// application: per-MB compute demand at the reference memory tier (u in
// Eq. 3), the mapper output ratio (intermediate data per input byte), the
// per-step reducer output ratio, and the coordinator's per-object work.
package workload

import (
	"fmt"
)

// Profile is the calibration record for one application.
type Profile struct {
	// Name identifies the application.
	Name string
	// USecPerMB is compute seconds per MB of input, measured at the
	// platform's reference memory tier (1024 MB).
	USecPerMB float64
	// MapOutputRatio is bytes of intermediate data emitted per byte of
	// mapper input (the d -> e proportionality of Sec. III-A).
	MapOutputRatio float64
	// ReduceOutputRatio is bytes emitted per byte consumed at each
	// reducer step (the q_p recurrence of Table II).
	ReduceOutputRatio float64
	// CoordSecPerObject is the coordinator's compute seconds per
	// intermediate object, at the reference tier.
	CoordSecPerObject float64
	// SingleStepReduce marks applications whose reducers emit final,
	// partitioned output after one step (TeraSort-style range-partitioned
	// sort), instead of cascading until a single object remains
	// (aggregations like WordCount and Query). This is how the paper's
	// Table III shows Sort finishing with 7 reducers in 1 step.
	SingleStepReduce bool
}

// Validate reports whether the profile is physically sensible.
func (pf Profile) Validate() error {
	if pf.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if pf.USecPerMB <= 0 {
		return fmt.Errorf("workload %s: USecPerMB must be positive", pf.Name)
	}
	if pf.MapOutputRatio <= 0 || pf.ReduceOutputRatio <= 0 {
		return fmt.Errorf("workload %s: output ratios must be positive", pf.Name)
	}
	if pf.CoordSecPerObject < 0 {
		return fmt.Errorf("workload %s: negative coordinator work", pf.Name)
	}
	return nil
}

// The benchmark profiles. Compute densities and data ratios are calibrated
// so the figures' shapes match the paper (see DESIGN.md Sec. 6):
// WordCount is compute-heavy with strong data reduction, Sort is
// data-volume-bound with no reduction, Query scans a lot and aggregates to
// almost nothing.
var (
	// WordCount tokenizes text and counts word frequencies.
	WordCount = Profile{
		Name:              "wordcount",
		USecPerMB:         0.12,
		MapOutputRatio:    0.10,
		ReduceOutputRatio: 0.90,
		CoordSecPerObject: 0.02,
	}
	// Sort globally sorts fixed-size records; all bytes flow through
	// every phase, and reducers emit final range partitions after a
	// single step.
	Sort = Profile{
		Name:              "sort",
		USecPerMB:         0.035,
		MapOutputRatio:    1.0,
		ReduceOutputRatio: 1.0,
		CoordSecPerObject: 0.02,
		SingleStepReduce:  true,
	}
	// Query filters and aggregates the uservisits table (the AMPLab
	// benchmark's aggregation query).
	Query = Profile{
		Name:              "query",
		USecPerMB:         0.055,
		MapOutputRatio:    0.05,
		ReduceOutputRatio: 0.50,
		CoordSecPerObject: 0.02,
	}
	// SparkWordCount and SparkSQL model the discussion-section Spark
	// experiments: similar data flow with higher per-byte constants for
	// the JVM+Spark task overheads.
	SparkWordCount = Profile{
		Name:              "spark-wordcount",
		USecPerMB:         0.16,
		MapOutputRatio:    0.10,
		ReduceOutputRatio: 0.90,
		CoordSecPerObject: 0.03,
	}
	SparkSQL = Profile{
		Name:              "spark-sql",
		USecPerMB:         0.075,
		MapOutputRatio:    0.05,
		ReduceOutputRatio: 0.50,
		CoordSecPerObject: 0.03,
	}
	// Grep scans text for matching lines: very light compute, strong
	// selectivity, and concatenating reducers (the filter stage of
	// multi-stage log-analytics pipelines).
	Grep = Profile{
		Name:              "grep",
		USecPerMB:         0.02,
		MapOutputRatio:    0.08,
		ReduceOutputRatio: 1.0,
		CoordSecPerObject: 0.02,
		SingleStepReduce:  true,
	}
)

// ByName resolves a profile from its name.
func ByName(name string) (Profile, error) {
	for _, pf := range []Profile{WordCount, Sort, Query, SparkWordCount, SparkSQL, Grep} {
		if pf.Name == name {
			return pf, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Job describes one benchmark input: a profile plus the input layout in
// the object store.
type Job struct {
	Profile    Profile
	NumObjects int
	ObjectSize int64 // bytes per input object
}

// TotalBytes reports the input dataset size.
func (j Job) TotalBytes() int64 { return int64(j.NumObjects) * j.ObjectSize }

// TotalMB reports the input dataset size in MB (the D constant).
func (j Job) TotalMB() float64 { return float64(j.TotalBytes()) / (1 << 20) }

// Validate reports whether the job is well-formed.
func (j Job) Validate() error {
	if err := j.Profile.Validate(); err != nil {
		return err
	}
	if j.NumObjects <= 0 {
		return fmt.Errorf("workload %s: NumObjects must be positive", j.Profile.Name)
	}
	if j.ObjectSize <= 0 {
		return fmt.Errorf("workload %s: ObjectSize must be positive", j.Profile.Name)
	}
	return nil
}

const (
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// The paper's five evaluation inputs (Sec. V "Workloads"). Object counts
// are chosen so the allocations in Table III are feasible: e.g. Query is
// "25.4 GB stored in S3 as 202 objects" verbatim from the paper.

// WordCount1GB is the 1 GB WordCount input: 20 objects of ~51 MB.
func WordCount1GB() Job {
	return Job{Profile: WordCount, NumObjects: 20, ObjectSize: gb / 20}
}

// WordCount10GB is the 10 GB WordCount input: 24 objects of ~427 MB.
func WordCount10GB() Job {
	return Job{Profile: WordCount, NumObjects: 24, ObjectSize: 10 * gb / 24}
}

// WordCount20GB is the 20 GB WordCount input: 40 objects of 512 MB.
func WordCount20GB() Job {
	return Job{Profile: WordCount, NumObjects: 40, ObjectSize: 20 * gb / 40}
}

// Sort100GB is the 100 GB Sort input: 200 objects of 500 MB (Sec. V:
// "each of the 200 objects is as large as 500 MB").
func Sort100GB() Job {
	return Job{Profile: Sort, NumObjects: 200, ObjectSize: 500 * mb}
}

// Query25GB is the 25.4 GB uservisits input in 202 objects (Sec. V).
func Query25GB() Job {
	total := 25.4 * float64(gb)
	return Job{Profile: Query, NumObjects: 202, ObjectSize: int64(total / 202)}
}

// MotivationJob is the Sec. II toy input: 10 objects, 2 MB total.
func MotivationJob() Job {
	return Job{Profile: WordCount, NumObjects: 10, ObjectSize: 2 * mb / 10}
}

// PaperJobs returns the five evaluation inputs in the order the figures
// plot them.
func PaperJobs() []Job {
	return []Job{
		WordCount1GB(), WordCount10GB(), WordCount20GB(), Sort100GB(), Query25GB(),
	}
}
