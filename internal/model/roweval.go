package model

import (
	"astra/internal/mapreduce"
)

// RowEval caches the per-orchestration state that one DAG column row
// shares across every memory tier: the step shapes, their Q/R totals,
// the storage-held byte totals, and the SHat-priced waiting time. The
// DAG builder binds one RowEval per (kM, kR) or per kR and then asks it
// for each tier's weight, so the orchestration and shape slices are
// derived once per row instead of once per edge. A zero RowEval is
// ready to bind; rebinding reuses the shape buffer.
//
// Every method reproduces the corresponding Paper method's arithmetic
// in the same order, so the hoisted weights are bit-identical to the
// per-edge originals.
type RowEval struct {
	m      *Paper
	orch   mapreduce.Orchestration
	shapes []stepShape

	q, r     float64 // Q and R totals over the steps
	held2    float64 // D + S + Q: bytes held during the coordinator phase
	heldP    float64 // D + S + R: bytes held during the reduce phase
	d2       float64 // coordinator state-object write time
	waitSHat float64 // waiting bill at the SHat tier (all steps but the last)
}

// BindRowFor binds the row to the exact orchestration of a (kM, kR)
// pair (the transfer/glue column).
func (m *Paper) BindRowFor(e *RowEval, kM, kR int) error {
	orch, err := m.orchFor(kM, kR)
	if err != nil {
		return err
	}
	m.BindRow(e, orch)
	return nil
}

// BindRowHat binds the row to the JHat-estimated orchestration for kR
// (the coordinator and reducer columns).
func (m *Paper) BindRowHat(e *RowEval, kR int) error {
	orch, err := m.orchHat(kR)
	if err != nil {
		return err
	}
	m.BindRow(e, orch)
	return nil
}

// BindRow derives the tier-independent row state from an orchestration.
func (m *Paper) BindRow(e *RowEval, orch mapreduce.Orchestration) {
	e.m = m
	e.orch = orch
	e.shapes = m.reduceShapeInto(e.shapes[:0], orch)
	e.q, e.r = qTotals(e.shapes)
	D := float64(m.P.Job.TotalBytes())
	S := D * m.P.Job.Profile.MapOutputRatio
	e.held2 = D + S + e.q
	e.heldP = D + S + e.r
	e.d2 = float64(orch.NumSteps()) * (m.P.latSec() + m.P.xferSec(m.P.StateObjectBytes))
	e.waitSHat = 0
	for p := 0; p < len(e.shapes)-1; p++ {
		e.waitSHat += m.stepTime(e.shapes[p], m.sHat())
	}
}

// TransferTime is Paper.TransferTime for the bound (kM, kR) row.
func (e *RowEval) TransferTime() float64 {
	d3 := 0.0
	for _, s := range e.shapes {
		d3 += e.m.stepTransfer(s)
	}
	return e.d2 + d3
}

// GlueCost is Paper.GlueCost for the bound (kM, kR) row.
func (e *RowEval) GlueCost(kR int) float64 {
	m := e.m
	st := m.P.Sheet.Store
	l := m.P.Sheet.Lambda
	g := e.orch.Reducers()
	u2 := float64(st.RequestCost(0, int64(e.orch.NumSteps())))
	up := float64(st.RequestCost(int64(g)*int64(kR), int64(g)))
	return u2 + up + float64(l.InvocationCost(1)) + float64(l.InvocationCost(g))
}

// CoordCost is Paper.CoordCost at one coordinator tier of the bound
// JHat row.
func (e *RowEval) CoordCost(memMB int) float64 {
	m := e.m
	st := m.P.Sheet.Store
	l := m.P.Sheet.Lambda
	t2 := m.P.dispSec() + m.P.coordComputeSec(m.jHat(), memMB) + e.d2
	v2 := float64(st.StorageCost(t2 * e.held2))
	w2 := float64(l.PerSecond(memMB)) * (t2 + e.waitSHat)
	return v2 + w2
}

// ReduceCompute is Paper.ReduceCompute at one reducer tier of the bound
// JHat row.
func (e *RowEval) ReduceCompute(memMB int) float64 {
	total := 0.0
	for _, s := range e.shapes {
		total += e.m.stepCompute(s, memMB)
	}
	return total
}

// ReduceCost is Paper.ReduceCost at one reducer tier of the bound JHat
// row.
func (e *RowEval) ReduceCost(memMB int) float64 {
	m := e.m
	st := m.P.Sheet.Store
	l := m.P.Sheet.Lambda
	tp := 0.0
	for _, s := range e.shapes {
		tp += m.stepTime(s, memMB)
	}
	wp := m.reducerBillSec(e.orch, e.shapes, memMB) * float64(l.PerSecond(memMB))
	vp := float64(st.StorageCost(tp * e.heldP))
	return vp + wp
}

// MapperCostFor is Paper.MapperCost evaluated against a caller-supplied
// orchestration (any kR: the mapper terms ignore the reducer shape), so
// the DAG builder can reuse the feasibility check's orchestration for
// all L tiers of a kM row.
func (m *Paper) MapperCostFor(orch mapreduce.Orchestration, memMB, kM int) float64 {
	st := m.P.Sheet.Store
	l := m.P.Sheet.Lambda
	j := orch.Mappers()
	t1 := m.MapperTime(memMB, kM)
	u1 := float64(st.RequestCost(int64(kM)*int64(j), int64(j)))
	v1 := float64(st.StorageCost(float64(m.P.Job.TotalBytes()) * t1))
	w1 := m.mapperBillSec(orch, memMB)*float64(l.PerSecond(memMB)) +
		float64(l.InvocationCost(j))
	return u1 + v1 + w1
}

// reduceShapeInto is reduceShape appending into a reused buffer.
func (m *Paper) reduceShapeInto(dst []stepShape, orch mapreduce.Orchestration) []stepShape {
	q := float64(m.P.Job.TotalBytes()) * m.P.Job.Profile.MapOutputRatio
	beta := m.P.Job.Profile.ReduceOutputRatio
	for _, step := range orch.Steps {
		maxLoad := 0
		for _, l := range step.Loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		perObj := q / float64(step.Objects())
		dst = append(dst, stepShape{
			totalIn:  q,
			totalOut: q * beta,
			busyIn:   perObj * float64(maxLoad),
			busyLoad: maxLoad,
			reducers: step.Reducers(),
		})
		q *= beta
	}
	return dst
}
