package model

import (
	"sync"
	"testing"

	"astra/internal/mapreduce"
	"astra/internal/workload"
)

func cacheTestParams() Params {
	return DefaultParams(workload.Job{
		Profile:    workload.WordCount,
		NumObjects: 10,
		ObjectSize: 8 << 20,
	})
}

func TestFingerprintStable(t *testing.T) {
	a, b := cacheTestParams(), cacheTestParams()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical params hash differently: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
}

func TestFingerprintSeparatesParams(t *testing.T) {
	base := cacheTestParams()
	mutants := []func(*Params){
		func(p *Params) { p.Job.NumObjects++ },
		func(p *Params) { p.Job.ObjectSize *= 2 },
		func(p *Params) { p.Job.Profile.USecPerMB *= 1.5 },
		func(p *Params) { p.Job.Profile.SingleStepReduce = !p.Job.Profile.SingleStepReduce },
		func(p *Params) { p.BandwidthBps *= 2 },
		func(p *Params) { p.MaxLambdas++ },
	}
	for i, mutate := range mutants {
		p := cacheTestParams()
		mutate(&p)
		if p.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutant %d hashes equal to base", i)
		}
	}
}

// countingPredictor counts Predict invocations that reach the underlying
// model, so tests can prove the cache short-circuits repeats.
type countingPredictor struct {
	mu    sync.Mutex
	calls int
	under Predictor
}

func (cp *countingPredictor) Predict(cfg mapreduce.Config) (Prediction, error) {
	cp.mu.Lock()
	cp.calls++
	cp.mu.Unlock()
	return cp.under.Predict(cfg)
}

func (cp *countingPredictor) count() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.calls
}

func TestPredictionCacheHitsAndMisses(t *testing.T) {
	params := cacheTestParams()
	counted := &countingPredictor{under: NewExact(params)}
	cache := NewPredictionCache()
	pred := cache.Wrap(counted, params.Fingerprint(), "exact")

	cfg := mapreduce.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	first, err := pred.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := pred.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if counted.count() != 1 {
		t.Fatalf("underlying predictor ran %d times, want 1", counted.count())
	}
	if first.TotalSec() != second.TotalSec() || first.TotalCost() != second.TotalCost() {
		t.Fatal("cached prediction differs from computed prediction")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestPredictionCacheCachesErrors(t *testing.T) {
	params := cacheTestParams()
	counted := &countingPredictor{under: NewExact(params)}
	pred := NewPredictionCache().Wrap(counted, params.Fingerprint(), "exact")

	bad := mapreduce.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 0, ObjsPerReducer: 2, // invalid: no mapper load
	}
	if _, err := pred.Predict(bad); err == nil {
		t.Fatal("invalid configuration predicted without error")
	}
	if _, err := pred.Predict(bad); err == nil {
		t.Fatal("cached error lost on second probe")
	}
	if counted.count() != 1 {
		t.Fatalf("error probe recomputed %d times, want 1", counted.count())
	}
}

func TestPredictionCacheSeparatesKinds(t *testing.T) {
	params := cacheTestParams()
	cache := NewPredictionCache()
	fp := params.Fingerprint()
	exact := cache.Wrap(NewExact(params), fp, "exact")
	paper := cache.Wrap(NewPaper(params), fp, "paper")

	cfg := mapreduce.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	pe, err := exact.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := paper.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The two models disagree on this configuration; the cache must not
	// collapse their entries.
	if pe.TotalSec() == pp.TotalSec() && pe.TotalCost() == pp.TotalCost() {
		t.Skip("models coincide on this configuration; kind separation unobservable")
	}
	if _, m := cache.Stats(); m != 2 {
		t.Fatalf("misses = %d, want 2 (one per kind)", m)
	}
}

// TestPredictionCacheBoundedEvicts exercises the per-shard cap: a tiny
// bounded cache holding far fewer entries than the probed config space
// must evict, keep serving correct values, and count the displacements.
func TestPredictionCacheBoundedEvicts(t *testing.T) {
	params := cacheTestParams()
	unbounded := NewPredictionCache().Wrap(NewExact(params), params.Fingerprint(), "exact")
	cache := NewPredictionCacheWithCap(cacheShards) // one entry per shard
	pred := cache.Wrap(NewExact(params), params.Fingerprint(), "exact")

	var cfgs []mapreduce.Config
	for kM := 1; kM <= 10; kM++ {
		for kR := 1; kR <= 10; kR++ {
			cfgs = append(cfgs, mapreduce.Config{
				MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
				ObjsPerMapper: kM, ObjsPerReducer: kR,
			})
		}
	}
	// Two passes: the second re-probes entries the first pass may have
	// displaced, and every answer must still match the unbounded cache.
	for pass := 0; pass < 2; pass++ {
		for _, cfg := range cfgs {
			got, gerr := pred.Predict(cfg)
			want, werr := unbounded.Predict(cfg)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("cfg %+v: err %v vs %v", cfg, gerr, werr)
			}
			if gerr == nil && (got.TotalSec() != want.TotalSec() || got.TotalCost() != want.TotalCost()) {
				t.Fatalf("cfg %+v: bounded cache returned a different prediction", cfg)
			}
		}
	}
	if cache.Evictions() == 0 {
		t.Fatalf("no evictions despite %d configs over a %d-entry cap", len(cfgs), cacheShards)
	}
	total := 0
	for i := range cache.shards {
		cache.shards[i].mu.RLock()
		total += len(cache.shards[i].m)
		cache.shards[i].mu.RUnlock()
	}
	if total > cacheShards {
		t.Fatalf("bounded cache holds %d entries, cap %d", total, cacheShards)
	}
}

func TestPredictionCacheConcurrent(t *testing.T) {
	params := cacheTestParams()
	cache := NewPredictionCache()
	pred := cache.Wrap(NewExact(params), params.Fingerprint(), "exact")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for kM := 1; kM <= 5; kM++ {
				for kR := 1; kR <= 5; kR++ {
					cfg := mapreduce.Config{
						MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
						ObjsPerMapper: kM, ObjsPerReducer: kR,
					}
					pred.Predict(cfg)
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := cache.Stats()
	if hits+misses != 8*25 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*25)
	}
	if misses > 25 {
		t.Fatalf("misses = %d for 25 distinct configs", misses)
	}
}
