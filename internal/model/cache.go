package model

import (
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"astra/internal/mapreduce"
)

// Fingerprint returns a stable hash of the parameterization: two Params
// with the same fingerprint produce the same predictions for every
// configuration. It keys the prediction cache, so repeated solver passes
// (and Algorithm 1's iterative edge-removal rounds) over the same job stop
// re-deriving identical model evaluations.
func (p Params) Fingerprint() uint64 {
	h := fnv.New64a()
	u64 := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	i64 := func(v int64) { u64(uint64(v)) }
	str := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }

	// Job shape and profile.
	str(p.Job.Profile.Name)
	f64(p.Job.Profile.USecPerMB)
	f64(p.Job.Profile.CoordSecPerObject)
	f64(p.Job.Profile.MapOutputRatio)
	f64(p.Job.Profile.ReduceOutputRatio)
	if p.Job.Profile.SingleStepReduce {
		i64(1)
	} else {
		i64(0)
	}
	i64(int64(p.Job.NumObjects))
	i64(p.Job.ObjectSize)

	// Platform constants.
	f64(p.BandwidthBps)
	i64(p.StateObjectBytes)
	i64(int64(p.RequestLatency))
	i64(int64(p.DispatchLatency))
	i64(int64(p.MaxLambdas))
	i64(int64(p.Speed.RefMemMB))
	i64(int64(p.Speed.FloorMemMB))

	// Price sheet contents (not pointer identity: equal sheets hash equal).
	if p.Sheet != nil {
		l := p.Sheet.Lambda
		f64(float64(l.PerGBSecond))
		f64(float64(l.PerInvocation))
		i64(int64(l.MinMemoryMB))
		i64(int64(l.MaxMemoryMB))
		i64(int64(l.MemoryStepMB))
		i64(int64(l.BillingQuantum))
		i64(int64(l.Timeout))
		i64(int64(l.MaxConcurrency))
		st := p.Sheet.Store
		f64(float64(st.PerPut))
		f64(float64(st.PerGet))
		f64(float64(st.StoragePerGBMonth))
		i64(st.MaxObjectBytes)
	}
	return h.Sum64()
}

// cacheKey identifies one memoized prediction: the parameter fingerprint,
// a predictor namespace (the paper and exact models disagree for the same
// configuration), and the configuration itself.
type cacheKey struct {
	fp   uint64
	kind string
	cfg  mapreduce.Config
}

// cacheVal holds a memoized Predict outcome, errors included, so repeated
// infeasible probes are as cheap as repeated hits.
type cacheVal struct {
	pred Prediction
	err  error
}

// cacheShards is the shard count; a power of two so the shard pick is a
// mask. 64 shards keeps contention negligible at the pool sizes the
// planner uses.
const cacheShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey]cacheVal
}

// PredictionCache is a sharded, concurrency-safe memoization cache for
// model predictions, keyed by (params fingerprint, predictor kind,
// Config). A single cache may serve many parameterizations and predictors
// at once; the zero value is not usable — use NewPredictionCache.
type PredictionCache struct {
	shards [cacheShards]cacheShard
	// shardCap bounds each shard's entry count (0: unbounded). When a
	// full shard takes a new entry, an arbitrary resident entry is
	// evicted; cached values equal recomputed ones, so eviction affects
	// only speed, never results.
	shardCap int

	hits, misses, evictions atomic.Uint64
}

// NewPredictionCache creates an empty, unbounded cache.
func NewPredictionCache() *PredictionCache {
	return NewPredictionCacheWithCap(0)
}

// NewPredictionCacheWithCap creates an empty cache bounded to roughly
// maxEntries memoized predictions (0 or negative: unbounded). The bound
// is enforced per shard, so the real capacity is rounded up to a
// multiple of the shard count.
func NewPredictionCacheWithCap(maxEntries int) *PredictionCache {
	c := &PredictionCache{}
	if maxEntries > 0 {
		c.shardCap = (maxEntries + cacheShards - 1) / cacheShards
	}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]cacheVal)
	}
	return c
}

// shardFor picks the shard for a key by rehashing its volatile parts.
func (c *PredictionCache) shardFor(k cacheKey) *cacheShard {
	h := k.fp
	h ^= uint64(k.cfg.MapperMemMB) * 0x9e3779b97f4a7c15
	h ^= uint64(k.cfg.ReducerMemMB) * 0xbf58476d1ce4e5b9
	h ^= uint64(k.cfg.CoordMemMB) * 0x94d049bb133111eb
	h ^= uint64(k.cfg.ObjsPerMapper)<<32 | uint64(k.cfg.ObjsPerReducer)
	h ^= h >> 33
	return &c.shards[h&(cacheShards-1)]
}

// Stats reports cumulative hit and miss counts.
func (c *PredictionCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions reports how many entries a bounded cache has displaced.
func (c *PredictionCache) Evictions() uint64 { return c.evictions.Load() }

// predict resolves one configuration through the cache, computing and
// storing on a miss.
func (c *PredictionCache) predict(k cacheKey, compute Predictor, cfg mapreduce.Config) (Prediction, error) {
	sh := c.shardFor(k)
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v.pred, v.err
	}
	c.misses.Add(1)
	pred, err := compute.Predict(cfg)
	sh.mu.Lock()
	if _, present := sh.m[k]; !present && c.shardCap > 0 && len(sh.m) >= c.shardCap {
		for victim := range sh.m {
			delete(sh.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	sh.m[k] = cacheVal{pred: pred, err: err}
	sh.mu.Unlock()
	return pred, err
}

// cachedPredictor memoizes an underlying predictor through a shared cache.
type cachedPredictor struct {
	cache *PredictionCache
	under Predictor
	fp    uint64
	kind  string
}

// Predict implements Predictor.
func (cp cachedPredictor) Predict(cfg mapreduce.Config) (Prediction, error) {
	return cp.cache.predict(cacheKey{fp: cp.fp, kind: cp.kind, cfg: cfg}, cp.under, cfg)
}

// Wrap returns a Predictor that memoizes under through the cache. kind
// namespaces predictors that disagree for the same configuration (e.g.
// "exact" vs "paper"); fp is the parameter fingerprint the underlying
// predictor was built from. The returned predictor is safe for concurrent
// use if under is.
func (c *PredictionCache) Wrap(under Predictor, fp uint64, kind string) Predictor {
	return cachedPredictor{cache: c, under: under, fp: fp, kind: kind}
}
