package model

import (
	"math"
	"testing"

	"astra/internal/mapreduce"
	"astra/internal/workload"
)

func testParams() Params {
	return DefaultParams(workload.Job{
		Profile:    workload.WordCount,
		NumObjects: 12,
		ObjectSize: 8 << 20,
	})
}

func cfg(i, kM, kR, a, s int) mapreduce.Config {
	return mapreduce.Config{
		MapperMemMB: i, CoordMemMB: a, ReducerMemMB: s,
		ObjsPerMapper: kM, ObjsPerReducer: kR,
	}
}

func TestParamsValidate(t *testing.T) {
	p := testParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.BandwidthBps = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
	bad = p
	bad.Sheet = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil sheet should fail")
	}
	bad = p
	bad.StateObjectBytes = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative state size should fail")
	}
}

func TestPaperPredictComponentsPositive(t *testing.T) {
	m := NewPaper(testParams())
	pr, err := m.Predict(cfg(1024, 2, 2, 256, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if pr.MapSec <= 0 || pr.CoordSec <= 0 || pr.ReduceSec <= 0 {
		t.Fatalf("non-positive time component: %+v", pr)
	}
	if pr.LambdaCost <= 0 || pr.RequestCost <= 0 || pr.StorageCost <= 0 {
		t.Fatalf("non-positive cost component: %+v", pr)
	}
	if pr.TotalSec() != pr.MapSec+pr.CoordSec+pr.ReduceSec {
		t.Fatal("TotalSec is not the sum of phases")
	}
	if len(pr.StepSec) != pr.Orch.NumSteps() {
		t.Fatalf("StepSec has %d entries for %d steps", len(pr.StepSec), pr.Orch.NumSteps())
	}
	sum := 0.0
	for _, s := range pr.StepSec {
		sum += s
	}
	if math.Abs(sum-pr.ReduceSec) > 1e-9 {
		t.Fatalf("step times sum %v != ReduceSec %v", sum, pr.ReduceSec)
	}
}

func TestPaperMoreMemoryNeverSlower(t *testing.T) {
	m := NewPaper(testParams())
	prev := math.Inf(1)
	for _, mem := range []int{128, 256, 512, 1024, 1792, 3008} {
		pr, err := m.Predict(cfg(mem, 2, 2, mem, mem))
		if err != nil {
			t.Fatal(err)
		}
		if pr.TotalSec() > prev+1e-9 {
			t.Fatalf("JCT increased when memory grew to %d MB", mem)
		}
		prev = pr.TotalSec()
	}
}

func TestPaperSpeedFlatteningAboveFloor(t *testing.T) {
	m := NewPaper(testParams())
	at1792, _ := m.Predict(cfg(1792, 2, 2, 1792, 1792))
	at3008, _ := m.Predict(cfg(3008, 2, 2, 3008, 3008))
	if math.Abs(at1792.TotalSec()-at3008.TotalSec()) > 1e-9 {
		t.Fatalf("time should flatten above the floor: %v vs %v",
			at1792.TotalSec(), at3008.TotalSec())
	}
	if at3008.TotalCost() <= at1792.TotalCost() {
		t.Fatal("bigger memory above the floor must cost strictly more")
	}
}

// TestPaperDAGEdgeDecomposition: with kM = 1 (so j = N = JHat), the four
// Fig. 5 edge weights must sum exactly to the full model's objective.
func TestPaperDAGEdgeDecomposition(t *testing.T) {
	m := NewPaper(testParams())
	c := cfg(512, 1, 3, 256, 1024)
	pr, err := m.Predict(c)
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.MapperTime(c.MapperMemMB, c.ObjsPerMapper)
	e2, err := m.TransferTime(c.ObjsPerMapper, c.ObjsPerReducer)
	if err != nil {
		t.Fatal(err)
	}
	e3 := m.CoordCompute(c.CoordMemMB)
	e4, err := m.ReduceCompute(c.ReducerMemMB, c.ObjsPerReducer)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs((e1 + e2 + e3 + e4) - pr.TotalSec()); diff > 1e-9 {
		t.Fatalf("edge sum %v != objective %v (diff %v)", e1+e2+e3+e4, pr.TotalSec(), diff)
	}
}

// TestPaperCostEdgeDecomposition: with kM = 1 (JHat exact) and the
// reducer memory equal to the SHat estimate, the four cost-mode edge
// weights must sum to the full model's cost objective.
func TestPaperCostEdgeDecomposition(t *testing.T) {
	m := NewPaper(testParams())
	c := cfg(512, 1, 3, 256, m.sHat())
	pr, err := m.Predict(c)
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.MapperCost(c.MapperMemMB, c.ObjsPerMapper)
	e2, err := m.GlueCost(c.ObjsPerMapper, c.ObjsPerReducer)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := m.CoordCost(c.CoordMemMB, c.ObjsPerReducer)
	if err != nil {
		t.Fatal(err)
	}
	e4, err := m.ReduceCost(c.ReducerMemMB, c.ObjsPerReducer)
	if err != nil {
		t.Fatal(err)
	}
	sum := e1 + e2 + e3 + e4
	if diff := math.Abs(sum - float64(pr.TotalCost())); diff > 1e-12 {
		t.Fatalf("cost edge sum %v != objective %v (diff %v)", sum, pr.TotalCost(), diff)
	}
}

func TestPaperCostEdgesPositiveAcrossSpace(t *testing.T) {
	m := NewPaper(testParams())
	for kR := 1; kR <= 12; kR++ {
		for _, mem := range []int{128, 1024, 3008} {
			if c := m.MapperCost(mem, kR); c <= 0 {
				t.Fatalf("MapperCost(%d,%d) = %v", mem, kR, c)
			}
			if g, err := m.GlueCost(1, kR); err != nil || g <= 0 {
				t.Fatalf("GlueCost(1,%d) = %v, %v", kR, g, err)
			}
			if cc, err := m.CoordCost(mem, kR); err != nil || cc <= 0 {
				t.Fatalf("CoordCost(%d,%d) = %v, %v", mem, kR, cc, err)
			}
			if rc, err := m.ReduceCost(mem, kR); err != nil || rc <= 0 {
				t.Fatalf("ReduceCost(%d,%d) = %v, %v", mem, kR, rc, err)
			}
		}
	}
}

func TestMaxKMFor(t *testing.T) {
	cases := []struct{ j, n, want int }{
		{12, 12, 1}, {6, 12, 2}, {4, 12, 3}, {1, 12, 12}, {5, 12, 3}, {20, 12, 1},
	}
	for _, c := range cases {
		if got := maxKMFor(c.j, c.n); got != c.want {
			t.Errorf("maxKMFor(%d,%d) = %d, want %d", c.j, c.n, got, c.want)
		}
	}
}

func TestFeasibleConstraints(t *testing.T) {
	p := testParams()
	orch, _ := mapreduce.Orchestrate(12, 2, 2)
	if err := Feasible(p, orch); err != nil {
		t.Fatalf("small job should be feasible: %v", err)
	}
	// Tighten the lambda limit below the mapper count.
	p.MaxLambdas = 3
	orch, _ = mapreduce.Orchestrate(12, 1, 2)
	if err := Feasible(p, orch); err == nil {
		t.Fatal("12 mappers with R=3 should be infeasible")
	}
	// Shrink the store's object limit below the working set.
	p = testParams()
	p.Sheet.Store.MaxObjectBytes = 1 << 20
	orch, _ = mapreduce.Orchestrate(12, 12, 2)
	if err := Feasible(p, orch); err == nil {
		t.Fatal("96 MB object with a 1 MB store limit should be infeasible")
	}
}

func TestPaperReduceShapeGeometric(t *testing.T) {
	// 12 objects, kM=1 -> 12 mappers; kR=2 -> steps 6,3,2,1.
	m := NewPaper(testParams())
	orch, err := mapreduce.Orchestrate(12, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	shapes := m.reduceShape(orch)
	if len(shapes) != 4 {
		t.Fatalf("%d steps, want 4", len(shapes))
	}
	D := float64(m.P.Job.TotalBytes())
	if math.Abs(shapes[0].totalIn-D*0.10) > 1e-6 {
		t.Fatalf("q0 = %v, want alpha*D", shapes[0].totalIn)
	}
	for p, s := range shapes {
		beta := m.P.Job.Profile.ReduceOutputRatio
		if math.Abs(s.totalOut-s.totalIn*beta) > 1e-6 {
			t.Fatalf("step %d: out %v != beta*in %v", p, s.totalOut, s.totalIn)
		}
		if p > 0 && math.Abs(s.totalIn-shapes[p-1].totalOut) > 1e-6 {
			t.Fatalf("step %d input does not chain from step %d output", p, p-1)
		}
		if s.busyIn <= 0 || s.busyIn > s.totalIn+1e-9 {
			t.Fatalf("step %d busiest reducer input %v out of range (total %v)", p, s.busyIn, s.totalIn)
		}
	}
	Q, R := qTotals(shapes)
	if Q <= 0 || R <= 0 || R >= Q {
		t.Fatalf("Q=%v R=%v (beta<1 requires R<Q)", Q, R)
	}
}

func TestPaperSingleReducerNotFree(t *testing.T) {
	// The default per-step model must charge a single all-consuming
	// reducer for its full sequential input; literal Eq. 9 (Aggregate)
	// charges the same totals either way, which is exactly its blind
	// spot. Dispatch latency is zeroed so the comparison isolates the
	// data-path terms.
	p := testParams()
	p.DispatchLatency = 0
	m := NewPaper(p)
	wide, err := m.Predict(cfg(1024, 1, 3, 1024, 1024)) // parallel reducers
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := m.Predict(cfg(1024, 1, 12, 1024, 1024)) // one reducer eats all 12
	if err != nil {
		t.Fatal(err)
	}
	if narrow.ReduceSec <= wide.StepSec[0] {
		t.Fatalf("single-reducer step %v should cost at least a parallel step %v",
			narrow.ReduceSec, wide.StepSec[0])
	}
}

func TestFewerStepsLessTransfer(t *testing.T) {
	// More objects per reducer -> fewer steps -> less ephemeral data
	// movement (the Fig. 1 mechanism).
	m := NewPaper(testParams())
	deep, err := m.TransferTime(1, 2) // 12 mappers, deep cascade
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := m.TransferTime(1, 12) // single step
	if err != nil {
		t.Fatal(err)
	}
	if shallow >= deep {
		t.Fatalf("shallow cascade transfer %v should beat deep %v", shallow, deep)
	}
}

func TestPredictRejectsBadConfig(t *testing.T) {
	m := NewPaper(testParams())
	if _, err := m.Predict(cfg(1024, 0, 2, 1024, 1024)); err == nil {
		t.Fatal("kM=0 should fail")
	}
	if _, err := m.Predict(cfg(1024, 99, 2, 1024, 1024)); err == nil {
		t.Fatal("kM>N should fail")
	}
	e := NewExact(testParams())
	if _, err := e.Predict(cfg(1024, 2, 0, 1024, 1024)); err == nil {
		t.Fatal("kR=0 should fail")
	}
}

func TestExactBilledSec(t *testing.T) {
	m := NewExact(testParams())
	cases := []struct{ in, want float64 }{
		{0, 0},
		{0.001, 0.001},
		{0.0010001, 0.002},
		{0.0004, 0.001},
		{1.0, 1.0},
	}
	for _, c := range cases {
		if got := m.billedSec(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("billedSec(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestExactSkewRaisesMapTime(t *testing.T) {
	// 12 objects at kM=7 -> loads (7,5): map time governed by the 7-load
	// mapper, worse than kM=6 -> (6,6).
	e := NewExact(testParams())
	balanced, err := e.Predict(cfg(1024, 6, 3, 1024, 1024))
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := e.Predict(cfg(1024, 7, 3, 1024, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if skewed.MapSec <= balanced.MapSec {
		t.Fatalf("skewed map %v should exceed balanced %v", skewed.MapSec, balanced.MapSec)
	}
}

func TestExactVsPaperAgreeOnScale(t *testing.T) {
	// The two models differ (aggregate vs per-step max) but must agree
	// within a small factor on total time and cost.
	e := NewExact(testParams())
	pm := NewPaper(testParams())
	for _, c := range []mapreduce.Config{
		cfg(128, 1, 2, 128, 128),
		cfg(1024, 2, 2, 256, 1024),
		cfg(3008, 4, 3, 3008, 3008),
	} {
		ep, err := e.Predict(c)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := pm.Predict(c)
		if err != nil {
			t.Fatal(err)
		}
		ratio := pp.TotalSec() / ep.TotalSec()
		if ratio < 0.5 || ratio > 3.0 {
			t.Errorf("%v: paper/exact time ratio %v out of range", c, ratio)
		}
		cr := float64(pp.TotalCost()) / float64(ep.TotalCost())
		if cr < 0.3 || cr > 3.0 {
			t.Errorf("%v: paper/exact cost ratio %v out of range", c, cr)
		}
	}
}

func TestAggregateReduceAtLeastPerStepMax(t *testing.T) {
	// Eq. 9 charges reduce totals sequentially, so the aggregate-mode
	// reduce time can never be below the exact per-step-max time.
	e := NewExact(testParams())
	pm := NewPaper(testParams())
	pm.Aggregate = true
	c := cfg(1024, 1, 2, 1024, 1024)
	ep, _ := e.Predict(c)
	pp, _ := pm.Predict(c)
	if pp.ReduceSec < ep.ReduceSec-1e-9 {
		t.Fatalf("aggregate reduce %v < exact %v", pp.ReduceSec, ep.ReduceSec)
	}
}

func TestDefaultPaperReduceTracksExact(t *testing.T) {
	// The default per-step paper model should track the exact model's
	// reduce phase closely (it differs only in averaged object sizes).
	e := NewExact(testParams())
	pm := NewPaper(testParams())
	for _, c := range []mapreduce.Config{
		cfg(1024, 1, 2, 1024, 1024),
		cfg(512, 2, 3, 512, 512),
		cfg(128, 1, 12, 128, 128),
	} {
		ep, err := e.Predict(c)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := pm.Predict(c)
		if err != nil {
			t.Fatal(err)
		}
		ratio := pp.ReduceSec / ep.ReduceSec
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%v: paper/exact reduce ratio %v out of range", c, ratio)
		}
	}
}
