package model

import (
	"fmt"
	"time"

	"astra/internal/flight"
	"astra/internal/mapreduce"
	"astra/internal/pricing"
)

// Exact is the ground-truth predictor: a dry run of the execution engine's
// exact timeline. It tracks per-mapper loads and the heterogeneous object
// sizes they produce, per-step parallel maxima, per-lambda billed
// durations (rounded to the billing quantum), and exact storage
// byte-seconds for every object's actual lifetime. Its predictions match
// what internal/mapreduce.Driver measures for the same configuration (the
// cross-validation tests assert this).
type Exact struct {
	P Params
}

// NewExact builds the exact predictor.
func NewExact(p Params) *Exact { return &Exact{P: p} }

// waveStarts computes when each task of a wave actually begins under a
// FIFO concurrency cap: task i becomes eligible at launch[i] (ascending)
// and starts as soon as a slot frees, slots being held for dur[i]. This
// is the analytic twin of the platform's FIFO semaphore, so the model
// stays exact even when the account concurrency limit binds and lambdas
// queue in waves.
func waveStarts(launch, dur []float64, cap int) []float64 {
	starts := make([]float64, len(launch))
	if cap <= 0 {
		cap = 1
	}
	// Min-heap of running tasks' end times.
	ends := make([]float64, 0, cap)
	push := func(v float64) {
		ends = append(ends, v)
		for i := len(ends) - 1; i > 0; {
			parent := (i - 1) / 2
			if ends[parent] <= ends[i] {
				break
			}
			ends[parent], ends[i] = ends[i], ends[parent]
			i = parent
		}
	}
	pop := func() float64 {
		top := ends[0]
		last := len(ends) - 1
		ends[0] = ends[last]
		ends = ends[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(ends) && ends[l] < ends[small] {
				small = l
			}
			if r < len(ends) && ends[r] < ends[small] {
				small = r
			}
			if small == i {
				break
			}
			ends[i], ends[small] = ends[small], ends[i]
			i = small
		}
		return top
	}
	for i := range launch {
		start := launch[i]
		if len(ends) == cap {
			if free := pop(); free > start {
				start = free
			}
		}
		starts[i] = start
		push(start + dur[i])
	}
	return starts
}

// billedSec rounds an execution duration up to the billing quantum, in
// seconds (matching pricing.Lambda.BilledDuration on the virtual clock).
func (m *Exact) billedSec(sec float64) float64 {
	q := m.P.Sheet.Lambda.BillingQuantum.Seconds()
	if q <= 0 || sec <= 0 {
		return sec
	}
	n := sec / q
	rounded := float64(int64(n)) * q
	if rounded < sec {
		rounded += q
	}
	return rounded
}

// Predict replays the driver's timeline for the configuration.
func (m *Exact) Predict(cfg mapreduce.Config) (Prediction, error) {
	return m.predict(cfg, nil)
}

// PredictBreakdown replays the timeline and additionally decomposes each
// predicted stage into the paper's per-stage terms (startup, compute, I/O,
// waiting), in the same shape the flight recorder's critical-path analyzer
// produces for measured runs — so a run can be audited term-by-term
// against the plan. The breakdown's headline JCT and cost equal Predict's
// exactly (same arithmetic, one code path).
func (m *Exact) PredictBreakdown(cfg mapreduce.Config) (*Breakdown, error) {
	bd := &Breakdown{}
	pr, err := m.predict(cfg, bd)
	if err != nil {
		return nil, err
	}
	bd.JCT = pr.JCT()
	bd.CostUSD = pr.TotalCost()
	return bd, nil
}

// Breakdown is the per-stage prediction shape shared with the flight
// recorder's analyzer.
type Breakdown = flight.Breakdown

// secDur converts model seconds to a virtual duration.
func secDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// stageTerms assembles a predicted stage whose waiting term is the
// residual against the stage duration, mirroring how the analyzer
// decomposes measured stages (terms always sum exactly to the duration).
func stageTerms(name string, memMB int, durSec, startupSec, computeSec, ioSec float64, critical string) flight.Stage {
	st := flight.Stage{
		Name:     name,
		MemoryMB: memMB,
		Duration: secDur(durSec),
		Critical: critical,
	}
	st.Terms.Startup = secDur(startupSec)
	st.Terms.Compute = secDur(computeSec)
	st.Terms.IO = secDur(ioSec)
	st.Terms.Waiting = st.Duration - st.Terms.Startup - st.Terms.Compute - st.Terms.IO
	return st
}

// predict is the shared replay; bd, when non-nil, collects the per-stage
// term decomposition (the hot planning path passes nil and pays nothing).
func (m *Exact) predict(cfg mapreduce.Config, bd *flight.Breakdown) (Prediction, error) {
	if err := m.P.Validate(); err != nil {
		return Prediction{}, err
	}
	orch, err := mapreduce.OrchestrateFor(m.P.Job.Profile, m.P.Job.NumObjects, cfg.ObjsPerMapper, cfg.ObjsPerReducer)
	if err != nil {
		return Prediction{}, err
	}
	l := m.P.Sheet.Lambda
	st := m.P.Sheet.Store
	alpha := m.P.Job.Profile.MapOutputRatio
	beta := m.P.Job.Profile.ReduceOutputRatio

	pr := Prediction{Config: cfg, Orch: orch}

	// storageEvents records (creationTime, size); input objects exist for
	// the whole job. Byte-seconds are integrated once the end time is
	// known.
	type stored struct {
		at   float64
		size int64
	}
	var events []stored

	var gets, puts int64
	var lambdaBill float64
	lat := m.P.latSec()
	disp := m.P.dispSec()

	// --- Mapping phase: the driver dispatches mappers in a loop (mapper
	// m becomes eligible after m+1 dispatch round trips), then awaits
	// all; a binding concurrency cap queues them FIFO into waves. ---
	cap := m.P.maxLambdas()
	mapOutSizes := make([]int64, orch.Mappers())
	mapLaunch := make([]float64, orch.Mappers())
	mapDur := make([]float64, orch.Mappers())
	for mi, load := range orch.MapperLoads {
		in := int64(load) * m.P.Job.ObjectSize
		out := int64(float64(in) * alpha)
		mapOutSizes[mi] = out
		mapLaunch[mi] = float64(mi+1) * disp
		mapDur[mi] = float64(load+1)*lat + m.P.xferSec(in+out) + m.P.computeSec(in, cfg.MapperMemMB)
	}
	mapStarts := waveStarts(mapLaunch, mapDur, cap)
	mapEnd := 0.0
	critMi := 0
	for mi, load := range orch.MapperLoads {
		end := mapStarts[mi] + mapDur[mi]
		events = append(events, stored{at: end, size: mapOutSizes[mi]})
		gets += int64(load)
		puts++
		lambdaBill += m.billedSec(mapDur[mi]) * float64(l.PerSecond(cfg.MapperMemMB))
		if end > mapEnd {
			mapEnd = end
			critMi = mi
		}
	}
	pr.MapSec = mapEnd
	if bd != nil {
		// The critical mapper's terms, mirroring the analyzer: startup is
		// its actual start (dispatch serialization + queueing), I/O its
		// store round trips and transfer, compute its declared CPU work.
		load := orch.MapperLoads[critMi]
		in := int64(load) * m.P.Job.ObjectSize
		io := float64(load+1)*lat + m.P.xferSec(in+mapOutSizes[critMi])
		bd.Stages = append(bd.Stages, stageTerms(
			"map", cfg.MapperMemMB, mapEnd,
			mapStarts[critMi], m.P.computeSec(in, cfg.MapperMemMB), io,
			fmt.Sprintf("map-%d", critMi)))
	}

	// --- Coordinator + reducing cascade. ---
	now := mapEnd + disp // the coordinator's own dispatch
	coordStart := now
	now += m.P.coordComputeSec(orch.Mappers(), cfg.CoordMemMB)
	coordExclusive := now - coordStart + disp

	prevSizes := mapOutSizes
	stateXfer := lat + m.P.xferSec(m.P.StateObjectBytes)
	var coordEnd float64
	var stepStages []flight.Stage
	for pi, step := range orch.Steps {
		// State object write.
		now += stateXfer
		coordExclusive += stateXfer
		events = append(events, stored{at: now, size: m.P.StateObjectBytes})
		puts++

		// Reducers of the step, dispatched serially, running in parallel.
		// The coordinator lambda holds one concurrency slot itself, so
		// cap-1 slots serve the step under a binding limit.
		stepStart := now
		outSizes := make([]int64, step.Reducers())
		redLaunch := make([]float64, step.Reducers())
		redDur := make([]float64, step.Reducers())
		var inSizes []int64
		if bd != nil {
			inSizes = make([]int64, step.Reducers())
		}
		off := 0
		for r, load := range step.Loads {
			var in int64
			for _, sz := range prevSizes[off : off+load] {
				in += sz
			}
			off += load
			if bd != nil {
				inSizes[r] = in
			}
			outSizes[r] = int64(float64(in) * beta)
			redLaunch[r] = stepStart + float64(r+1)*disp
			redDur[r] = float64(load+1)*lat + m.P.xferSec(in+outSizes[r]) + m.P.computeSec(in, cfg.ReducerMemMB)
		}
		// The coordinator holds a concurrency slot of its own. During
		// waited steps it holds it throughout (capacity cap-1); during
		// the FINAL step it exits right after the last dispatch, modeled
		// as a phantom slot-holder from the step start until then.
		var redStarts []float64
		final := pi == len(orch.Steps)-1
		if final {
			launch := append([]float64{stepStart}, redLaunch...)
			dur := append([]float64{float64(step.Reducers()) * disp}, redDur...)
			redStarts = waveStarts(launch, dur, maxIntModel(cap, 1))[1:]
		} else {
			redStarts = waveStarts(redLaunch, redDur, maxIntModel(cap-1, 1))
		}
		stepEnd := stepStart
		critR := 0
		for r, load := range step.Loads {
			end := redStarts[r] + redDur[r]
			events = append(events, stored{at: end, size: outSizes[r]})
			gets += int64(load)
			puts++
			lambdaBill += m.billedSec(redDur[r]) * float64(l.PerSecond(cfg.ReducerMemMB))
			if end > stepEnd {
				stepEnd = end
				critR = r
			}
		}
		if bd != nil {
			load := step.Loads[critR]
			in := inSizes[critR]
			io := float64(load+1)*lat + m.P.xferSec(in+outSizes[critR])
			stepStages = append(stepStages, stageTerms(
				fmt.Sprintf("step-%02d", pi), cfg.ReducerMemMB, stepEnd-stepStart,
				redStarts[critR]-stepStart, m.P.computeSec(in, cfg.ReducerMemMB), io,
				fmt.Sprintf("red-%d-%d", pi, critR)))
		}
		if pi == len(orch.Steps)-1 {
			// The coordinator returns right after dispatching the final
			// step's reducers; the driver awaits their completion.
			coordEnd = stepStart + float64(step.Reducers())*disp
		}
		pr.StepSec = append(pr.StepSec, stepEnd-stepStart)
		pr.ReduceSec += stepEnd - stepStart
		now = stepEnd
		prevSizes = outSizes
	}
	pr.CoordSec = coordExclusive
	if bd != nil {
		// Coordinator-exclusive segment: dispatch (startup), its declared
		// compute, and the state-object writes (I/O). Matches the
		// analyzer's residual orchestration stage.
		bd.Stages = append(bd.Stages, stageTerms(
			"coordinator", cfg.CoordMemMB, coordExclusive,
			disp, m.P.coordComputeSec(orch.Mappers(), cfg.CoordMemMB),
			float64(len(orch.Steps))*stateXfer, "coordinator"))
		bd.Stages = append(bd.Stages, stepStages...)
	}

	// Coordinator bill: its sandbox spans from coordStart until it
	// launches the final step (it waits through steps 1..P-1 and the
	// state writes, then returns).
	coordSpan := coordEnd - coordStart
	lambdaBill += m.billedSec(coordSpan) * float64(l.PerSecond(cfg.CoordMemMB))

	// Invocation fees.
	invocations := orch.TotalLambdas()
	pr.LambdaCost = pricing.USD(lambdaBill) + l.InvocationCost(invocations)

	// Requests.
	pr.RequestCost = st.RequestCost(gets, puts)

	// Storage: input for the whole job plus each created object from its
	// creation to job end.
	end := now
	byteSec := float64(m.P.Job.TotalBytes()) * end
	for _, ev := range events {
		if ev.at < end {
			byteSec += float64(ev.size) * (end - ev.at)
		}
	}
	pr.StorageCost = st.StorageCost(byteSec)
	return pr, nil
}

func maxIntModel(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PredictJCT is a convenience returning just the completion time.
func (m *Exact) PredictJCT(cfg mapreduce.Config) (time.Duration, error) {
	pr, err := m.Predict(cfg)
	if err != nil {
		return 0, err
	}
	return pr.JCT(), nil
}
