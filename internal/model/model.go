// Package model implements Astra's analytic performance and monetary cost
// models for serverless MapReduce jobs (Sec. III of the paper).
//
// Two predictors are provided:
//
//   - Paper: the literal aggregate model of Eq. (1)-(15). The reducing
//     phase is charged on totals (Eq. 9) and costs follow the U/V/W
//     decomposition. Its component methods carry exactly the edge-weight
//     decomposition of the Fig. 5 DAG, so the dag package consumes them
//     directly.
//
//   - Exact: a deterministic dry-run of the execution engine's timeline
//     (per-mapper loads, per-step parallel maxima, per-lambda billing with
//     the billing quantum, exact storage byte-seconds). Exact.Predict on a
//     configuration matches what internal/mapreduce.Driver measures when
//     running that configuration, which is asserted by cross-validation
//     tests; it is the ground truth for the solver ablations.
package model

import (
	"fmt"
	"time"

	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// Params bundles the job- and platform-level constants the models need.
type Params struct {
	// Job is the workload: profile, object count N and object size.
	Job workload.Job
	// Sheet supplies prices and quotas.
	Sheet *pricing.Sheet
	// Speed maps memory allocations to compute speed factors.
	Speed lambda.SpeedModel
	// BandwidthBps is the lambda<->store transfer rate in bytes per
	// second (the B constant).
	BandwidthBps float64
	// StateObjectBytes is the coordinator state object size (l).
	StateObjectBytes int64
	// RequestLatency is the fixed per-request overhead of the object
	// store (first-byte latency). It is what makes deep reducer cascades
	// and high per-lambda object counts expensive beyond pure bandwidth —
	// the mechanism behind the U-shape of the paper's Fig. 1 and Fig. 2.
	RequestLatency time.Duration
	// DispatchLatency is the invoke-API round trip paid serially by
	// whoever launches a wave of lambdas. It is what makes extreme
	// degrees of parallelism (one object per mapper on a 202-object
	// input) pay a real coordination price, pushing the optimum toward
	// moderate kM — the effect behind the paper's Table III choices.
	DispatchLatency time.Duration
	// MaxLambdas caps the per-phase lambda count (the R constant in
	// constraint 18). Zero means the sheet's concurrency limit.
	MaxLambdas int
}

// DefaultBandwidthBps is the default per-connection lambda<->S3 bandwidth:
// 80 MiB/s, in the range measured for AWS Lambda at ~1 GB allocations.
const DefaultBandwidthBps = 80 << 20

// DefaultRequestLatency is the default per-request first-byte latency of
// the object store, in the range measured for S3 GET/PUT.
const DefaultRequestLatency = 20 * time.Millisecond

// DefaultDispatchLatency is the default invoke-API round trip, in the
// range measured for a synchronous SDK invoke loop.
const DefaultDispatchLatency = 500 * time.Millisecond

// DefaultParams returns the standard parameterization for a job: AWS
// prices, the 1024/1792 speed model, 80 MiB/s bandwidth, 20 ms request
// latency and a 1 MB state object.
func DefaultParams(job workload.Job) Params {
	return Params{
		Job:              job,
		Sheet:            pricing.AWS(),
		Speed:            lambda.SpeedModel{RefMemMB: 1024, FloorMemMB: 1792},
		BandwidthBps:     DefaultBandwidthBps,
		StateObjectBytes: mapreduce.StateObjectBytes,
		RequestLatency:   DefaultRequestLatency,
		DispatchLatency:  DefaultDispatchLatency,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := p.Job.Validate(); err != nil {
		return err
	}
	if p.Sheet == nil {
		return fmt.Errorf("model: nil price sheet")
	}
	if p.BandwidthBps <= 0 {
		return fmt.Errorf("model: bandwidth must be positive")
	}
	if p.StateObjectBytes < 0 {
		return fmt.Errorf("model: negative state object size")
	}
	if p.RequestLatency < 0 {
		return fmt.Errorf("model: negative request latency")
	}
	if p.DispatchLatency < 0 {
		return fmt.Errorf("model: negative dispatch latency")
	}
	return nil
}

// latSec is the per-request latency in seconds.
func (p Params) latSec() float64 { return p.RequestLatency.Seconds() }

// dispSec is the per-invocation dispatch latency in seconds.
func (p Params) dispSec() float64 { return p.DispatchLatency.Seconds() }

// maxLambdas resolves the R constant.
func (p Params) maxLambdas() int {
	if p.MaxLambdas > 0 {
		return p.MaxLambdas
	}
	return p.Sheet.Lambda.MaxConcurrency
}

// xferSec is the store transfer time for n bytes (size/B).
func (p Params) xferSec(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / p.BandwidthBps
}

// computeSec is the compute time for n bytes at the given memory tier:
// bytes x u x speed factor (Eq. 3 with u_i realized by the speed model).
func (p Params) computeSec(n int64, memMB int) float64 {
	if n <= 0 {
		return 0
	}
	mb := float64(n) / (1 << 20)
	return mb * p.Job.Profile.USecPerMB * p.Speed.Factor(memMB)
}

// coordComputeSec is the coordinator's compute time for j objects.
func (p Params) coordComputeSec(j, memMB int) float64 {
	return p.Job.Profile.CoordSecPerObject * float64(j) * p.Speed.Factor(memMB)
}

// Prediction is a model's estimate for one configuration.
type Prediction struct {
	Config mapreduce.Config
	Orch   mapreduce.Orchestration

	// Time components, in seconds: mapping phase, coordinator-exclusive
	// time (compute + state writes), reducing phase, and per-step times.
	MapSec    float64
	CoordSec  float64
	ReduceSec float64
	StepSec   []float64

	// Cost components.
	LambdaCost  pricing.USD // duration billing + invocation fees (W + I)
	RequestCost pricing.USD // store request charges (U)
	StorageCost pricing.USD // storage-duration charges (V)
}

// TotalSec reports the predicted job completion time in seconds
// (the objective f of Eq. 16).
func (pr Prediction) TotalSec() float64 { return pr.MapSec + pr.CoordSec + pr.ReduceSec }

// JCT reports the predicted completion time as a duration.
func (pr Prediction) JCT() time.Duration {
	return time.Duration(pr.TotalSec() * float64(time.Second))
}

// TotalCost reports the predicted monetary cost (the objective h of
// Eq. 20).
func (pr Prediction) TotalCost() pricing.USD {
	return pr.LambdaCost + pr.RequestCost + pr.StorageCost
}

// Predictor estimates time and cost for a configuration. Both Paper and
// Exact implement it, as does any future learned model.
type Predictor interface {
	Predict(cfg mapreduce.Config) (Prediction, error)
}

// Feasible checks the paper's constraint (18): the working set fits the
// store's object size limit and the per-phase lambda count respects R.
func Feasible(p Params, orch mapreduce.Orchestration) error {
	r := p.maxLambdas()
	if orch.Mappers() > r {
		return fmt.Errorf("model: %d mappers exceed the lambda limit %d", orch.Mappers(), r)
	}
	for i, s := range orch.Steps {
		if s.Reducers() > r {
			return fmt.Errorf("model: step %d has %d reducers, exceeding the lambda limit %d",
				i+1, s.Reducers(), r)
		}
	}
	// Largest single object along the pipeline must respect the store's
	// object limit (O = 5 TB): either a mapper's output, an input object,
	// or the busiest reducer's output in some step.
	maxObj := float64(p.Job.ObjectSize) * float64(orch.ObjsPerMapper) * p.Job.Profile.MapOutputRatio
	if in := float64(p.Job.ObjectSize); in > maxObj {
		maxObj = in
	}
	q := float64(p.Job.TotalBytes()) * p.Job.Profile.MapOutputRatio
	for _, s := range orch.Steps {
		perObj := q / float64(s.Objects())
		maxLoad := 0
		for _, l := range s.Loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		out := perObj * float64(maxLoad) * p.Job.Profile.ReduceOutputRatio
		if out > maxObj {
			maxObj = out
		}
		q *= p.Job.Profile.ReduceOutputRatio
	}
	if lim := p.Sheet.Store.MaxObjectBytes; lim > 0 && int64(maxObj) > lim {
		return fmt.Errorf("model: object of %d bytes exceeds the store limit %d", int64(maxObj), lim)
	}
	return nil
}
