package model

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestWaveStartsUnlimited(t *testing.T) {
	launch := []float64{1, 2, 3}
	dur := []float64{10, 10, 10}
	starts := waveStarts(launch, dur, 100)
	for i := range launch {
		if starts[i] != launch[i] {
			t.Fatalf("unconstrained start[%d] = %v, want %v", i, starts[i], launch[i])
		}
	}
}

func TestWaveStartsSingleSlot(t *testing.T) {
	// One slot: strictly sequential, but never before the launch time.
	launch := []float64{0, 0.1, 0.2, 50}
	dur := []float64{10, 10, 10, 10}
	starts := waveStarts(launch, dur, 1)
	want := []float64{0, 10, 20, 50}
	for i := range want {
		if math.Abs(starts[i]-want[i]) > 1e-12 {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
}

func TestWaveStartsTwoSlots(t *testing.T) {
	launch := []float64{0, 0, 0, 0}
	dur := []float64{4, 1, 3, 1}
	starts := waveStarts(launch, dur, 2)
	// t=0: tasks 0,1 start. Task 1 ends at 1 -> task 2 starts at 1,
	// ends at 4. Task 0 ends at 4 -> task 3 starts at 4.
	want := []float64{0, 0, 1, 4}
	for i := range want {
		if math.Abs(starts[i]-want[i]) > 1e-12 {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
}

// bruteWave simulates the FIFO queue naively for validation.
func bruteWave(launch, dur []float64, cap int) []float64 {
	starts := make([]float64, len(launch))
	var running []float64 // end times
	for i := range launch {
		// Free finished slots relative to this task's earliest possible
		// start; FIFO order is the iteration order.
		start := launch[i]
		for {
			// Count slots busy at time start.
			busy := 0
			for _, e := range running {
				if e > start {
					busy++
				}
			}
			if busy < cap {
				break
			}
			// Advance to the earliest end among busy slots.
			next := math.Inf(1)
			for _, e := range running {
				if e > start && e < next {
					next = e
				}
			}
			start = next
		}
		starts[i] = start
		running = append(running, start+dur[i])
	}
	return starts
}

func TestWaveStartsMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		cap := 1 + rng.Intn(6)
		launch := make([]float64, n)
		dur := make([]float64, n)
		tl := 0.0
		for i := range launch {
			tl += rng.Float64()
			launch[i] = tl
			dur[i] = rng.Float64() * 10
		}
		got := waveStarts(launch, dur, cap)
		want := bruteWave(launch, dur, cap)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d cap %d: starts[%d] = %v, want %v\nlaunch=%v\ndur=%v",
					trial, cap, i, got[i], want[i], launch, dur)
			}
		}
		// Starts never precede launches and stay FIFO-ordered.
		if !sort.Float64sAreSorted(got) {
			t.Fatalf("trial %d: starts not monotone: %v", trial, got)
		}
		for i := range got {
			if got[i] < launch[i] {
				t.Fatalf("trial %d: task %d started before launch", trial, i)
			}
		}
	}
}

func TestWaveStartsZeroCapClamps(t *testing.T) {
	starts := waveStarts([]float64{0, 0}, []float64{1, 1}, 0)
	if starts[1] != 1 {
		t.Fatalf("cap 0 should clamp to 1 slot: %v", starts)
	}
}
