package model

import (
	"math"
	"testing"
	"time"

	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/objectstore"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/workload"
)

// runOnSimulator executes a profiled job on the real engine with the
// parameters the Exact model assumes.
func runOnSimulator(t *testing.T, p Params, cfg mapreduce.Config) *mapreduce.Report {
	t.Helper()
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth:      p.BandwidthBps,
		RequestLatency: p.RequestLatency,
		Pricing:        p.Sheet.Store,
	})
	pl := lambda.New(sched, store, lambda.Config{
		Sheet:           p.Sheet,
		Speed:           p.Speed,
		DispatchLatency: p.DispatchLatency,
		DisableTimeout:  true,
	})
	keys, err := workload.SeedProfiled(store, "in", p.Job)
	if err != nil {
		t.Fatal(err)
	}
	driver := mapreduce.NewDriver(pl)
	var rep *mapreduce.Report
	err = sched.Run(func(proc *simtime.Proc) {
		rep, err = driver.Run(proc, mapreduce.JobSpec{
			Workload:  p.Job,
			Bucket:    "in",
			InputKeys: keys,
			Mode:      mapreduce.Profiled,
		}, cfg)
		if err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	return rep
}

// TestExactModelMatchesSimulator is the linchpin validation: for a matrix
// of workloads and configurations, the Exact predictor's completion time
// and cost must match the executed job to sub-millisecond / sub-ppm
// precision. This is what entitles the optimizer to trust the model.
func TestExactModelMatchesSimulator(t *testing.T) {
	jobs := []workload.Job{
		{Profile: workload.WordCount, NumObjects: 10, ObjectSize: 16 << 20},
		{Profile: workload.Sort, NumObjects: 14, ObjectSize: 32 << 20},
		{Profile: workload.Query, NumObjects: 9, ObjectSize: 24 << 20},
	}
	configs := []mapreduce.Config{
		{MapperMemMB: 128, CoordMemMB: 128, ReducerMemMB: 128, ObjsPerMapper: 1, ObjsPerReducer: 2},
		{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 3},
		{MapperMemMB: 3008, CoordMemMB: 1024, ReducerMemMB: 1536, ObjsPerMapper: 3, ObjsPerReducer: 1},
		{MapperMemMB: 512, CoordMemMB: 512, ReducerMemMB: 512, ObjsPerMapper: 4, ObjsPerReducer: 4},
	}
	for _, job := range jobs {
		for _, cfg := range configs {
			if cfg.ObjsPerMapper > job.NumObjects {
				continue
			}
			p := DefaultParams(job)
			pred, err := NewExact(p).Predict(cfg)
			if err != nil {
				t.Fatalf("%s %v: %v", job.Profile.Name, cfg, err)
			}
			rep := runOnSimulator(t, p, cfg)

			if dt := absDur(pred.JCT() - rep.JCT); dt > time.Millisecond {
				t.Errorf("%s %v: predicted JCT %v vs measured %v (diff %v)",
					job.Profile.Name, cfg, pred.JCT(), rep.JCT, dt)
			}
			// Lambda cost tolerance: when a duration lands exactly on a
			// billing-quantum boundary (e.g. Sort's 8.96 s at 128 MB),
			// float assembly order decides which 1 ms bucket it rounds
			// into — a ~2e-9 USD artifact per lambda.
			if d := relDiff(float64(pred.LambdaCost), float64(rep.Cost.Lambda)); d > 1e-3 {
				t.Errorf("%s %v: lambda cost %v vs %v", job.Profile.Name, cfg, pred.LambdaCost, rep.Cost.Lambda)
			}
			if d := relDiff(float64(pred.RequestCost), float64(rep.Cost.Requests)); d > 1e-9 {
				t.Errorf("%s %v: request cost %v vs %v", job.Profile.Name, cfg, pred.RequestCost, rep.Cost.Requests)
			}
			if d := relDiff(float64(pred.StorageCost), float64(rep.Cost.Storage)); d > 1e-5 {
				t.Errorf("%s %v: storage cost %v vs %v", job.Profile.Name, cfg, pred.StorageCost, rep.Cost.Storage)
			}
			// Phase decomposition agrees too.
			if dt := absDur(secs(pred.MapSec) - rep.Phases.Map); dt > time.Millisecond {
				t.Errorf("%s %v: map phase %v vs %v", job.Profile.Name, cfg, secs(pred.MapSec), rep.Phases.Map)
			}
			if dt := absDur(secs(pred.ReduceSec) - rep.Phases.Reduce); dt > time.Millisecond {
				t.Errorf("%s %v: reduce phase %v vs %v", job.Profile.Name, cfg, secs(pred.ReduceSec), rep.Phases.Reduce)
			}
		}
	}
}

// TestExactModelMatchesSimulatorAtScale repeats the validation on a
// paper-scale input (the 100 GB Sort) to ensure no drift accumulates over
// hundreds of lambdas.
func TestExactModelMatchesSimulatorAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale validation")
	}
	p := DefaultParams(workload.Sort100GB())
	cfg := mapreduce.Config{
		MapperMemMB: 256, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 4, ObjsPerReducer: 8,
	}
	pred, err := NewExact(p).Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := runOnSimulator(t, p, cfg)
	if dt := absDur(pred.JCT() - rep.JCT); dt > 5*time.Millisecond {
		t.Errorf("JCT: predicted %v vs measured %v", pred.JCT(), rep.JCT)
	}
	if d := relDiff(float64(pred.TotalCost()), float64(rep.Cost.Total())); d > 1e-4 {
		t.Errorf("cost: predicted %v vs measured %v", pred.TotalCost(), rep.Cost.Total())
	}
}

// TestExactModelMatchesSimulatorUnderBindingCap: the cap-aware wave
// computation must keep the model exact even when the account concurrency
// limit queues lambdas (ablation A6's regime).
func TestExactModelMatchesSimulatorUnderBindingCap(t *testing.T) {
	for _, cap := range []int{50, 25, 10, 3} {
		sheet := pricing.AWS()
		sheet.Lambda.MaxConcurrency = cap
		p := DefaultParams(workload.Job{
			Profile: workload.Sort, NumObjects: 60, ObjectSize: 64 << 20,
		})
		p.Sheet = sheet
		p.DispatchLatency = 50 * time.Millisecond
		cfg := mapreduce.Config{
			MapperMemMB: 1792, CoordMemMB: 256, ReducerMemMB: 1792,
			ObjsPerMapper: 1, ObjsPerReducer: 4,
		}
		pred, err := NewExact(p).Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := runOnSimulator(t, p, cfg)
		if dt := absDur(pred.JCT() - rep.JCT); dt > 2*time.Millisecond {
			t.Errorf("cap %d: predicted %v vs measured %v", cap, pred.JCT(), rep.JCT)
		}
	}
	// Multi-step cascade under a cap (coordinator holds a slot during
	// the waited steps).
	sheet := pricing.AWS()
	sheet.Lambda.MaxConcurrency = 6
	p := DefaultParams(workload.Job{
		Profile: workload.WordCount, NumObjects: 24, ObjectSize: 16 << 20,
	})
	p.Sheet = sheet
	p.DispatchLatency = 50 * time.Millisecond
	cfg := mapreduce.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 1, ObjsPerReducer: 2,
	}
	pred, err := NewExact(p).Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := runOnSimulator(t, p, cfg)
	if dt := absDur(pred.JCT() - rep.JCT); dt > 2*time.Millisecond {
		t.Errorf("cascade under cap: predicted %v vs measured %v", pred.JCT(), rep.JCT)
	}
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}
