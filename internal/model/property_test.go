package model

import (
	"math/rand"
	"testing"
	"time"

	"astra/internal/mapreduce"
	"astra/internal/workload"
)

// TestExactMatchesSimulatorRandomized drives the exact-model/engine
// equivalence across randomized jobs and configurations — the
// property-based version of the fixed cross-validation matrix.
func TestExactMatchesSimulatorRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	profiles := []workload.Profile{workload.WordCount, workload.Sort, workload.Query}
	tiers := []int{128, 256, 512, 768, 1024, 1536, 1792, 2048, 3008}
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 30; trial++ {
		job := workload.Job{
			Profile:    profiles[rng.Intn(len(profiles))],
			NumObjects: 2 + rng.Intn(24),
			ObjectSize: int64(1+rng.Intn(64)) << 20,
		}
		cfg := mapreduce.Config{
			MapperMemMB:    tiers[rng.Intn(len(tiers))],
			CoordMemMB:     tiers[rng.Intn(len(tiers))],
			ReducerMemMB:   tiers[rng.Intn(len(tiers))],
			ObjsPerMapper:  1 + rng.Intn(job.NumObjects),
			ObjsPerReducer: 1 + rng.Intn(job.NumObjects),
		}
		p := DefaultParams(job)
		pred, err := NewExact(p).Predict(cfg)
		if err != nil {
			t.Fatalf("trial %d (%s %v): %v", trial, job.Profile.Name, cfg, err)
		}
		rep := runOnSimulator(t, p, cfg)
		if dt := absDur(pred.JCT() - rep.JCT); dt > 2*time.Millisecond {
			t.Errorf("trial %d (%s N=%d objSize=%dMB %v): predicted %v vs measured %v",
				trial, job.Profile.Name, job.NumObjects, job.ObjectSize>>20, cfg,
				pred.JCT(), rep.JCT)
		}
		if d := relDiff(float64(pred.TotalCost()), float64(rep.Cost.Total())); d > 1e-3 {
			t.Errorf("trial %d (%s %v): cost predicted %v vs measured %v",
				trial, job.Profile.Name, cfg, pred.TotalCost(), rep.Cost.Total())
		}
	}
}

// TestPredictionInvariantsRandomized checks structural invariants of both
// predictors over random inputs: positivity, phase additivity, and the
// exact model never exceeding the aggregate model's reduce time.
func TestPredictionInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tiers := []int{128, 512, 1024, 1792, 3008}
	for trial := 0; trial < 100; trial++ {
		job := workload.Job{
			Profile:    workload.WordCount,
			NumObjects: 2 + rng.Intn(40),
			ObjectSize: int64(1+rng.Intn(32)) << 20,
		}
		cfg := mapreduce.Config{
			MapperMemMB:    tiers[rng.Intn(len(tiers))],
			CoordMemMB:     tiers[rng.Intn(len(tiers))],
			ReducerMemMB:   tiers[rng.Intn(len(tiers))],
			ObjsPerMapper:  1 + rng.Intn(job.NumObjects),
			ObjsPerReducer: 1 + rng.Intn(job.NumObjects),
		}
		p := DefaultParams(job)
		exact, err := NewExact(p).Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		agg := NewPaper(p)
		agg.Aggregate = true
		aggPred, err := agg.Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if exact.MapSec <= 0 || exact.CoordSec <= 0 || exact.ReduceSec <= 0 {
			t.Fatalf("trial %d: non-positive phase in %+v", trial, exact)
		}
		sum := 0.0
		for _, s := range exact.StepSec {
			sum += s
		}
		if diff := sum - exact.ReduceSec; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: steps don't sum to reduce phase", trial)
		}
		// Aggregate (sequential totals) reduce time dominates the exact
		// parallel per-step time.
		if aggPred.ReduceSec < exact.ReduceSec-1e-6 {
			t.Fatalf("trial %d (%v): aggregate reduce %v < exact %v",
				trial, cfg, aggPred.ReduceSec, exact.ReduceSec)
		}
		if exact.TotalCost() <= 0 {
			t.Fatalf("trial %d: non-positive cost", trial)
		}
	}
}

// TestMoreMemoryNeverSlowerExactRandomized: the exact model must be
// monotone in memory (equal knobs elsewhere) — the property the whole
// speed model stands on.
func TestMoreMemoryNeverSlowerExactRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		job := workload.Job{
			Profile:    workload.Query,
			NumObjects: 2 + rng.Intn(20),
			ObjectSize: int64(1+rng.Intn(32)) << 20,
		}
		kM := 1 + rng.Intn(job.NumObjects)
		kR := 1 + rng.Intn(job.NumObjects)
		p := DefaultParams(job)
		e := NewExact(p)
		prev := -1.0
		for _, mem := range []int{128, 320, 704, 1024, 1536, 1792} {
			pred, err := e.Predict(mapreduce.Config{
				MapperMemMB: mem, CoordMemMB: mem, ReducerMemMB: mem,
				ObjsPerMapper: kM, ObjsPerReducer: kR,
			})
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && pred.TotalSec() > prev+1e-9 {
				t.Fatalf("trial %d: JCT rose with memory at %d MB", trial, mem)
			}
			prev = pred.TotalSec()
		}
	}
}
