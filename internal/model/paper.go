package model

import (
	"math"

	"astra/internal/mapreduce"
	"astra/internal/pricing"
)

// Paper is the analytic model of Sec. III. Its component methods are the
// edge weights of the Fig. 5 DAG:
//
//	column pair            time weight              cost weight
//	mapper-mem -> mappers  MapperTime (Eq. 4)       MapperCost (U1+V1+W1)
//	mappers -> objs/red    TransferTime (d2+d3)     GlueCost (U2+UP+I2+I3)
//	objs/red -> coord-mem  CoordCompute (c2)        CoordCost (V2+W2')
//	coord-mem -> red-mem   ReduceCompute            ReduceCost (VP+WP)
//
// Weights that the paper's separable DAG cannot know exactly (the mapper
// count j on late edges, the reducer memory s inside the coordinator's
// waiting bill) are estimated with the documented JHat/SHat constants;
// Predict — which sees the whole configuration — uses exact values, so the
// estimation error exists only inside the DAG solver and is quantified by
// the A2 ablation.
type Paper struct {
	P Params
	// JHat is the mapper-count estimate for edges whose column pair does
	// not include j. Zero defaults to N (maximum parallelism).
	JHat int
	// SHat is the reducer-memory estimate for the coordinator's waiting
	// bill on cost-mode edges. Zero defaults to the speed reference tier.
	SHat int
	// Aggregate selects the literal Eq. 9 reduce-phase charging: totals
	// across all steps, blind to within-step parallelism. Taken
	// literally it makes a single all-consuming reducer (k_R >= j) look
	// free, which contradicts the paper's own Table III choices, so the
	// default is the per-step formulation: each step costs its busiest
	// reducer's time, steps are sequential. Ablation A3 quantifies the
	// difference.
	Aggregate bool
}

// NewPaper builds the paper model with default estimators.
func NewPaper(p Params) *Paper { return &Paper{P: p} }

func (m *Paper) jHat() int {
	if m.JHat > 0 {
		return m.JHat
	}
	return m.P.Job.NumObjects
}

func (m *Paper) sHat() int {
	if m.SHat > 0 {
		return m.SHat
	}
	if m.P.Speed.RefMemMB > 0 {
		return m.P.Speed.RefMemMB
	}
	return 1024
}

// stepShape is the model's view of one reducing step: aggregate input and
// output sizes (Table II's q recurrence) and the busiest reducer's share.
type stepShape struct {
	totalIn  float64 // q_{p-1}
	totalOut float64 // q_p
	busyIn   float64 // busiest reducer's input bytes
	busyLoad int     // busiest reducer's object count
	reducers int     // g_p
}

// reduceShape derives the per-step shapes for an orchestration: the
// aggregate sizes follow the geometric q recurrence, and the busiest
// reducer of step p carries maxLoad_p objects of the step's average size.
// The loop body lives in reduceShapeInto so RowEval can fill a reused
// buffer with the same arithmetic.
func (m *Paper) reduceShape(orch mapreduce.Orchestration) []stepShape {
	return m.reduceShapeInto(make([]stepShape, 0, orch.NumSteps()), orch)
}

// qTotals sums Q (total reduce input) and R (total reduce output) over
// the steps.
func qTotals(shapes []stepShape) (Q, R float64) {
	for _, s := range shapes {
		Q += s.totalIn
		R += s.totalOut
	}
	return Q, R
}

// stepTime is one step's duration: the serialized reducer dispatches plus
// its busiest reducer's request latencies, transfer and compute
// (default), or the step's share of the Eq. 9 aggregate (Aggregate mode).
func (m *Paper) stepTime(s stepShape, memMB int) float64 {
	in, out, load := s.busyIn, s.busyIn*m.P.Job.Profile.ReduceOutputRatio, s.busyLoad
	if m.Aggregate {
		in, out, load = s.totalIn, s.totalOut, s.busyLoad
	}
	return float64(s.reducers)*m.P.dispSec() +
		float64(load+1)*m.P.latSec() +
		(in+out)/m.P.BandwidthBps +
		(in/(1<<20))*m.P.Job.Profile.USecPerMB*m.P.Speed.Factor(memMB)
}

// stepCompute is the compute part of a step's duration.
func (m *Paper) stepCompute(s stepShape, memMB int) float64 {
	in := s.busyIn
	if m.Aggregate {
		in = s.totalIn
	}
	return (in / (1 << 20)) * m.P.Job.Profile.USecPerMB * m.P.Speed.Factor(memMB)
}

// stepTransfer is the non-compute part of a step's duration, including
// the serialized reducer dispatches.
func (m *Paper) stepTransfer(s stepShape) float64 {
	in, out, load := s.busyIn, s.busyIn*m.P.Job.Profile.ReduceOutputRatio, s.busyLoad
	if m.Aggregate {
		in, out = s.totalIn, s.totalOut
	}
	return float64(s.reducers)*m.P.dispSec() +
		float64(load+1)*m.P.latSec() + (in+out)/m.P.BandwidthBps
}

// orchFor computes the job shape for a (kM, kR) pair.
func (m *Paper) orchFor(kM, kR int) (mapreduce.Orchestration, error) {
	return mapreduce.OrchestrateFor(m.P.Job.Profile, m.P.Job.NumObjects, kM, kR)
}

// orchHat computes the job shape for kR with the estimated mapper count.
func (m *Paper) orchHat(kR int) (mapreduce.Orchestration, error) {
	return mapreduce.OrchestrateFor(m.P.Job.Profile, m.P.Job.NumObjects, maxKMFor(m.jHat(), m.P.Job.NumObjects), kR)
}

// maxKMFor inverts a mapper count back to an objects-per-mapper value:
// the smallest kM that yields at most j mappers.
func maxKMFor(j, n int) int {
	if j >= n {
		return 1
	}
	return (n + j - 1) / j
}

// --- Time components (Fig. 5 edge weights, time mode) ---

// mapperExecSec is one mapper's billable execution time for a given
// object load: its GET/PUT request latencies, transfers and compute.
func (m *Paper) mapperExecSec(memMB, load int) float64 {
	in := int64(load) * m.P.Job.ObjectSize
	out := int64(float64(in) * m.P.Job.Profile.MapOutputRatio)
	return float64(load+1)*m.P.latSec() + m.P.xferSec(in+out) + m.P.computeSec(in, memMB)
}

// MapperTime is Eq. (4) with the dispatch serialization added: the j
// launch round trips plus the slowest mapper's execution. With the greedy
// split the slowest mapper carries exactly kM objects.
func (m *Paper) MapperTime(memMB, kM int) float64 {
	j := (m.P.Job.NumObjects + kM - 1) / kM
	return float64(j)*m.P.dispSec() + m.mapperExecSec(memMB, kM)
}

// TransferTime is the second edge set: the coordinator's state-object
// writes (d2) plus the reducing phase's data movement and request
// latencies (d3).
func (m *Paper) TransferTime(kM, kR int) (float64, error) {
	var e RowEval
	if err := m.BindRowFor(&e, kM, kR); err != nil {
		return 0, err
	}
	return e.TransferTime(), nil
}

// CoordCompute is the third edge set: c2 for the estimated mapper count,
// plus the coordinator's own dispatch round trip.
func (m *Paper) CoordCompute(memMB int) float64 {
	return m.P.dispSec() + m.P.coordComputeSec(m.jHat(), memMB)
}

// ReduceCompute is the fourth edge set: the reducing phase's compute time
// for the estimated mapper count, with kR fixing the cascade.
func (m *Paper) ReduceCompute(memMB, kR int) (float64, error) {
	var e RowEval
	if err := m.BindRowHat(&e, kR); err != nil {
		return 0, err
	}
	return e.ReduceCompute(memMB), nil
}

// --- Cost components (Fig. 5 edge weights, cost mode) ---

// MapperCost is the first cost edge set: U1 + V1 + W1 for (i, j).
func (m *Paper) MapperCost(memMB, kM int) float64 {
	orch, err := m.orchFor(kM, 2) // reducer shape irrelevant to mapper terms
	if err != nil {
		return math.Inf(1)
	}
	return m.MapperCostFor(orch, memMB, kM)
}

// mapperBillSec sums the mapping phase's billable seconds: each mapper is
// billed its own execution (dispatch is client-side and unbilled), not
// the phase maximum (the greedy split leaves at most one short-tailed
// mapper).
func (m *Paper) mapperBillSec(orch mapreduce.Orchestration, memMB int) float64 {
	total := 0.0
	for _, load := range orch.MapperLoads {
		total += m.mapperExecSec(memMB, load)
	}
	return total
}

// reducerBillSec sums the reducing phase's billable seconds across every
// reducer's own duration, using each step's average object size.
func (m *Paper) reducerBillSec(orch mapreduce.Orchestration, shapes []stepShape, memMB int) float64 {
	beta := m.P.Job.Profile.ReduceOutputRatio
	total := 0.0
	for p, step := range orch.Steps {
		perObj := shapes[p].totalIn / float64(step.Objects())
		for _, load := range step.Loads {
			in := perObj * float64(load)
			total += float64(load+1)*m.P.latSec() +
				(in+in*beta)/m.P.BandwidthBps +
				(in/(1<<20))*m.P.Job.Profile.USecPerMB*m.P.Speed.Factor(memMB)
		}
	}
	return total
}

// GlueCost is the second cost edge set: the coordinator's and reducers'
// request charges plus their invocation fees (U2 + UP + I2 + I3).
func (m *Paper) GlueCost(kM, kR int) (float64, error) {
	var e RowEval
	if err := m.BindRowFor(&e, kM, kR); err != nil {
		return 0, err
	}
	return e.GlueCost(kR), nil
}

// CoordCost is the third cost edge set: the coordinator's storage term V2
// plus its own compute bill (its waiting bill uses the SHat estimator).
func (m *Paper) CoordCost(memMB, kR int) (float64, error) {
	var e RowEval
	if err := m.BindRowHat(&e, kR); err != nil {
		return 0, err
	}
	return e.CoordCost(memMB), nil
}

// ReduceCost is the fourth cost edge set: VP + WP for (kR, s).
func (m *Paper) ReduceCost(memMB, kR int) (float64, error) {
	var e RowEval
	if err := m.BindRowHat(&e, kR); err != nil {
		return 0, err
	}
	return e.ReduceCost(memMB), nil
}

// Predict evaluates the full model for a configuration. Unlike the DAG
// edge components, Predict knows the whole configuration, so no JHat/SHat
// estimation is involved.
func (m *Paper) Predict(cfg mapreduce.Config) (Prediction, error) {
	if err := m.P.Validate(); err != nil {
		return Prediction{}, err
	}
	orch, err := m.orchFor(cfg.ObjsPerMapper, cfg.ObjsPerReducer)
	if err != nil {
		return Prediction{}, err
	}
	st := m.P.Sheet.Store
	l := m.P.Sheet.Lambda
	j := orch.Mappers()
	g := orch.Reducers()
	P := orch.NumSteps()
	shapes := m.reduceShape(orch)
	Q, R := qTotals(shapes)
	D := float64(m.P.Job.TotalBytes())
	S := D * m.P.Job.Profile.MapOutputRatio

	t1 := m.MapperTime(cfg.MapperMemMB, cfg.ObjsPerMapper)
	t2 := m.P.dispSec() + m.P.coordComputeSec(j, cfg.CoordMemMB) +
		float64(P)*(m.P.latSec()+m.P.xferSec(m.P.StateObjectBytes))
	taus := make([]float64, P)
	tp := 0.0
	for p, s := range shapes {
		taus[p] = m.stepTime(s, cfg.ReducerMemMB)
		tp += taus[p]
	}

	pr := Prediction{
		Config:    cfg,
		Orch:      orch,
		MapSec:    t1,
		CoordSec:  t2,
		ReduceSec: tp,
		StepSec:   taus,
	}

	// Requests (Eq. 10).
	u1 := st.RequestCost(int64(cfg.ObjsPerMapper)*int64(j), int64(j))
	u2 := st.RequestCost(0, int64(P))
	up := st.RequestCost(int64(g)*int64(cfg.ObjsPerReducer), int64(g))
	pr.RequestCost = u1 + u2 + up

	// Storage (Eq. 11).
	v1 := st.StorageCost(D * t1)
	v2 := st.StorageCost(t2 * (D + S + Q))
	vp := st.StorageCost(tp * (D + S + R))
	pr.StorageCost = v1 + v2 + vp

	// Lambda runtime (Eq. 12-15).
	waiting := 0.0
	for p := 0; p < len(taus)-1; p++ {
		waiting += taus[p]
	}
	w1 := float64(l.PerSecond(cfg.MapperMemMB)) * m.mapperBillSec(orch, cfg.MapperMemMB)
	w2 := float64(l.PerSecond(cfg.CoordMemMB)) * (t2 + waiting)
	wp := float64(l.PerSecond(cfg.ReducerMemMB)) * m.reducerBillSec(orch, shapes, cfg.ReducerMemMB)
	inv := l.InvocationCost(j + 1 + g)
	pr.LambdaCost = pricing.USD(w1+w2+wp) + inv
	return pr, nil
}
