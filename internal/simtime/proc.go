package simtime

import "time"

// Proc is a simulated process. All Proc methods must be called from the
// process's own goroutine (i.e., from inside its body or functions it
// calls); a Proc handle held by another process is only valid as a target
// for Join.
type Proc struct {
	s      *Scheduler
	name   string
	resume chan struct{}
	abort  chan struct{}
	body   func(*Proc)

	finished    bool
	joinWaiters []*Proc
}

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.s.Now() }

// Scheduler returns the scheduler this process runs on.
func (p *Proc) Scheduler() *Scheduler { return p.s }

// park hands control back to the scheduler and waits to be resumed. If the
// simulation is being torn down, park unwinds the goroutine.
func (p *Proc) park() {
	p.s.parked <- struct{}{}
	select {
	case <-p.resume:
	case <-p.abort:
		panic(errAborted)
	}
}

// block parks the process with no scheduled resume; some other process or
// callback must call Scheduler.wake to continue it. The reason is reported
// in deadlock diagnostics.
func (p *Proc) block(reason string) {
	p.s.blocked[p] = reason
	p.park()
}

// Sleep advances the process by d of virtual time. Negative durations are
// treated as zero (the process still yields, preserving FIFO fairness among
// same-instant events).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.s.push(&Event{at: p.s.now + d, kind: evResume, proc: p})
	p.park()
}

// Yield reschedules the process at the current instant, letting other
// ready processes run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Spawn starts a child process at the current virtual time and returns its
// handle, which may be passed to Join.
func (p *Proc) Spawn(name string, body func(*Proc)) *Proc {
	return p.s.spawnAt(p.s.now, name, body)
}

// Join blocks until target finishes. Joining an already-finished process
// returns immediately.
func (p *Proc) Join(target *Proc) {
	if target.finished {
		return
	}
	target.joinWaiters = append(target.joinWaiters, p)
	p.block("join " + target.name)
}

// JoinAll joins every process in targets, in order.
func (p *Proc) JoinAll(targets []*Proc) {
	for _, t := range targets {
		p.Join(t)
	}
}

// Parallel runs n copies of body (invoked with indices 0..n-1) as child
// processes and waits for all of them. It is the fork-join idiom used for
// the mapper and reducer waves.
func (p *Proc) Parallel(n int, name string, body func(q *Proc, i int)) {
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i] = p.Spawn(name, func(q *Proc) { body(q, i) })
	}
	p.JoinAll(procs)
}
