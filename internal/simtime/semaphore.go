package simtime

import "fmt"

// Semaphore is a counting semaphore with strict FIFO admission: a large
// request at the head of the queue blocks smaller requests behind it, so
// admission order is deterministic and starvation-free. It models the
// Lambda platform's account-level concurrency limit.
type Semaphore struct {
	s     *Scheduler
	cap   int
	avail int
	queue []semWait

	// peakInUse tracks the high-water mark of acquired units, handy for
	// asserting a run never exceeded the concurrency the model assumed.
	peakInUse int
}

type semWait struct {
	p *Proc
	n int
}

// NewSemaphore creates a semaphore with the given capacity.
func (s *Scheduler) NewSemaphore(capacity int) *Semaphore {
	if capacity <= 0 {
		panic("simtime: semaphore capacity must be positive")
	}
	return &Semaphore{s: s, cap: capacity, avail: capacity}
}

// Cap reports the semaphore's capacity.
func (sem *Semaphore) Cap() int { return sem.cap }

// InUse reports the number of units currently held.
func (sem *Semaphore) InUse() int { return sem.cap - sem.avail }

// PeakInUse reports the maximum number of units ever held simultaneously.
func (sem *Semaphore) PeakInUse() int { return sem.peakInUse }

// QueueLen reports the number of processes waiting to acquire.
func (sem *Semaphore) QueueLen() int { return len(sem.queue) }

func (sem *Semaphore) noteAcquired() {
	if in := sem.InUse(); in > sem.peakInUse {
		sem.peakInUse = in
	}
}

// Acquire takes n units, blocking p in FIFO order until they are
// available. Requesting more units than the capacity panics.
func (sem *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("simtime: Acquire of non-positive unit count")
	}
	if n > sem.cap {
		panic(fmt.Sprintf("simtime: Acquire(%d) exceeds capacity %d", n, sem.cap))
	}
	if len(sem.queue) == 0 && sem.avail >= n {
		sem.avail -= n
		sem.noteAcquired()
		return
	}
	sem.queue = append(sem.queue, semWait{p: p, n: n})
	p.block("semaphore")
}

// TryAcquire takes n units without blocking, reporting whether it
// succeeded. It respects FIFO order: it fails if anyone is queued.
func (sem *Semaphore) TryAcquire(n int) bool {
	if n <= 0 || n > sem.cap {
		return false
	}
	if len(sem.queue) == 0 && sem.avail >= n {
		sem.avail -= n
		sem.noteAcquired()
		return true
	}
	return false
}

// Release returns n units and admits queued waiters that now fit, in FIFO
// order. Releasing more than is held panics.
func (sem *Semaphore) Release(n int) {
	if n <= 0 {
		panic("simtime: Release of non-positive unit count")
	}
	sem.avail += n
	if sem.avail > sem.cap {
		panic(fmt.Sprintf("simtime: Release(%d) overflows capacity %d", n, sem.cap))
	}
	for len(sem.queue) > 0 && sem.avail >= sem.queue[0].n {
		w := sem.queue[0]
		sem.queue = sem.queue[1:]
		sem.avail -= w.n
		sem.noteAcquired()
		sem.s.wake(w.p)
	}
}
