package simtime

import (
	"runtime"
	"testing"
	"time"
)

// goroutinesSettled polls until the goroutine count drops to at most
// want, tolerating scheduler lag.
func goroutinesSettled(want int) bool {
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= want {
			return true
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	return false
}

// TestNoGoroutineLeakAfterClean: a completed simulation leaves no process
// goroutines behind.
func TestNoGoroutineLeakAfterClean(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_, err := Elapsed(func(p *Proc) {
			p.Parallel(20, "w", func(q *Proc, j int) { q.Sleep(time.Millisecond) })
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !goroutinesSettled(before + 2) {
		t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
	}
}

// TestNoGoroutineLeakAfterDeadlock: the abort path unwinds every blocked
// process goroutine.
func TestNoGoroutineLeakAfterDeadlock(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s := NewScheduler()
		err := s.Run(func(p *Proc) {
			l := s.NewLatch()
			for j := 0; j < 10; j++ {
				p.Spawn("stuck", func(q *Proc) { l.Wait(q) })
			}
			l.Wait(p) // everyone waits forever
		})
		if err == nil {
			t.Fatal("expected deadlock")
		}
	}
	if !goroutinesSettled(before + 2) {
		t.Fatalf("goroutines leaked after deadlock: %d -> %d", before, runtime.NumGoroutine())
	}
}

// TestNoGoroutineLeakAfterPanic: a panicking process aborts the whole
// simulation and everything unwinds.
func TestNoGoroutineLeakAfterPanic(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s := NewScheduler()
		err := s.Run(func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Spawn("sleeper", func(q *Proc) { q.Sleep(time.Hour) })
			}
			p.Spawn("bomb", func(q *Proc) {
				q.Sleep(time.Second)
				panic("boom")
			})
			p.Sleep(2 * time.Hour)
		})
		if err == nil {
			t.Fatal("expected panic to surface")
		}
	}
	if !goroutinesSettled(before + 2) {
		t.Fatalf("goroutines leaked after panic: %d -> %d", before, runtime.NumGoroutine())
	}
}
