package simtime

import (
	"strings"
	"testing"
	"time"
)

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	// 10 workers, each holding a unit for 1s, capacity 2 -> 5 waves -> 5s.
	elapsed, err := Elapsed(func(p *Proc) {
		sem := p.Scheduler().NewSemaphore(2)
		p.Parallel(10, "w", func(q *Proc, i int) {
			sem.Acquire(q, 1)
			q.Sleep(time.Second)
			sem.Release(1)
		})
		if sem.PeakInUse() != 2 {
			t.Errorf("peak = %d, want 2", sem.PeakInUse())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", elapsed)
	}
}

func TestSemaphoreFIFONoBypass(t *testing.T) {
	// A large request at the head must not be bypassed by later small ones.
	var order []string
	_, err := Elapsed(func(p *Proc) {
		sem := p.Scheduler().NewSemaphore(4)
		sem.Acquire(p, 3) // 1 left
		big := p.Spawn("big", func(q *Proc) {
			sem.Acquire(q, 2)
			order = append(order, "big")
			sem.Release(2)
		})
		small := p.Spawn("small", func(q *Proc) {
			q.Sleep(time.Millisecond) // queues after big
			sem.Acquire(q, 1)
			order = append(order, "small")
			sem.Release(1)
		})
		p.Sleep(time.Second)
		sem.Release(3)
		p.Join(big)
		p.Join(small)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("admission order = %v, want [big small]", order)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	_, err := Elapsed(func(p *Proc) {
		sem := p.Scheduler().NewSemaphore(2)
		if !sem.TryAcquire(2) {
			t.Error("TryAcquire(2) on empty semaphore should succeed")
		}
		if sem.TryAcquire(1) {
			t.Error("TryAcquire(1) on full semaphore should fail")
		}
		sem.Release(2)
		if !sem.TryAcquire(1) {
			t.Error("TryAcquire(1) after release should succeed")
		}
		sem.Release(1)
		if sem.TryAcquire(0) || sem.TryAcquire(3) {
			t.Error("TryAcquire out of range should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreReleaseOverflowPanics(t *testing.T) {
	s := NewScheduler()
	err := s.Run(func(p *Proc) {
		sem := s.NewSemaphore(1)
		sem.Release(1)
	})
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("err = %v, want overflow panic", err)
	}
}

func TestSemaphoreAcquireBeyondCapPanics(t *testing.T) {
	s := NewScheduler()
	err := s.Run(func(p *Proc) {
		sem := s.NewSemaphore(1)
		sem.Acquire(p, 2)
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds capacity") {
		t.Fatalf("err = %v, want capacity panic", err)
	}
}

func TestPSResourceSingleJobExactDuration(t *testing.T) {
	// 100 units at 10 units/s -> 10s.
	elapsed, err := Elapsed(func(p *Proc) {
		r := p.Scheduler().NewPSResource(10)
		r.Use(p, 100)
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := absDur(elapsed - 10*time.Second); d > time.Millisecond {
		t.Fatalf("elapsed = %v, want ~10s", elapsed)
	}
}

func TestPSResourceFairSharing(t *testing.T) {
	// Two equal jobs share the link: both finish at 2x the solo time.
	elapsed, err := Elapsed(func(p *Proc) {
		r := p.Scheduler().NewPSResource(10)
		p.Parallel(2, "xfer", func(q *Proc, i int) { r.Use(q, 100) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := absDur(elapsed - 20*time.Second); d > time.Millisecond {
		t.Fatalf("elapsed = %v, want ~20s", elapsed)
	}
}

func TestPSResourceStaggeredArrivals(t *testing.T) {
	// Job A: 100 units starting at t=0. Job B: 100 units starting at t=5s.
	// 0..5s: A alone, served 50. 5s..: both at rate 5/s. A has 50 left ->
	// finishes at 15s. B then alone with 50 left at 10/s -> finishes at 20s.
	var aDone, bDone Time
	elapsed, err := Elapsed(func(p *Proc) {
		r := p.Scheduler().NewPSResource(10)
		a := p.Spawn("a", func(q *Proc) {
			r.Use(q, 100)
			aDone = q.Now()
		})
		b := p.Spawn("b", func(q *Proc) {
			q.Sleep(5 * time.Second)
			r.Use(q, 100)
			bDone = q.Now()
		})
		p.Join(a)
		p.Join(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := absDur(aDone - 15*time.Second); d > time.Millisecond {
		t.Fatalf("a finished at %v, want ~15s", aDone)
	}
	if d := absDur(bDone - 20*time.Second); d > time.Millisecond {
		t.Fatalf("b finished at %v, want ~20s", bDone)
	}
	if d := absDur(elapsed - 20*time.Second); d > time.Millisecond {
		t.Fatalf("elapsed = %v, want ~20s", elapsed)
	}
}

func TestPSResourceConservation(t *testing.T) {
	var r *PSResource
	_, err := Elapsed(func(p *Proc) {
		r = p.Scheduler().NewPSResource(7)
		p.Parallel(5, "xfer", func(q *Proc, i int) {
			q.Sleep(time.Duration(i) * 300 * time.Millisecond)
			r.Use(q, float64(10*(i+1)))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 + 20 + 30 + 40 + 50
	if diff := r.Served() - want; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("served = %v, want %v", r.Served(), want)
	}
	if r.InFlight() != 0 {
		t.Fatalf("in-flight = %d after all jobs done", r.InFlight())
	}
}

func TestPSResourceZeroAmountImmediate(t *testing.T) {
	elapsed, err := Elapsed(func(p *Proc) {
		r := p.Scheduler().NewPSResource(1)
		r.Use(p, 0)
		r.Use(p, -5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("elapsed = %v, want 0", elapsed)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
