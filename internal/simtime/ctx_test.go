package simtime

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewScheduler()
	err := s.RunContext(ctx, func(p *Proc) {
		t.Error("root process ran under a cancelled context")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewScheduler()
	events := 0
	err := s.RunContext(ctx, func(p *Proc) {
		// An endless virtual-time loop: only cancellation can end it.
		for {
			p.Sleep(time.Second)
			if events++; events == 10_000 {
				cancel()
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if events < 10_000 {
		t.Fatalf("cancel fired after %d events?", events)
	}
}

func TestRunContextCancelTearsDownProcesses(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewScheduler()
	err := s.RunContext(ctx, func(p *Proc) {
		for i := 0; i < 8; i++ {
			p.Spawn("worker", func(w *Proc) {
				for {
					w.Sleep(time.Millisecond)
				}
			})
		}
		p.Sleep(time.Second)
		cancel()
		for {
			p.Sleep(time.Second)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// After teardown the scheduler reports no live or blocked processes.
	if len(s.live) != 0 || len(s.blocked) != 0 {
		t.Fatalf("teardown left %d live, %d blocked", len(s.live), len(s.blocked))
	}
}
