// Package simtime implements a deterministic discrete-event simulation
// scheduler with cooperative process semantics.
//
// The scheduler owns a virtual clock. User code runs inside processes
// (Proc), which advance the clock only through blocking operations such as
// Sleep, Latch.Wait or Semaphore.Acquire. At most one process executes at
// any instant; control is handed between the scheduler and the running
// process over unbuffered channels, so no other locking is required and
// every run with the same inputs produces the same event order and the
// same final clock reading.
//
// This package is the substrate for the simulated AWS Lambda platform and
// object store: a 100 GB analytics job "runs" in milliseconds of wall time
// while the virtual timeline is exactly the one the cost/performance models
// describe.
package simtime

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Time is a point in virtual time, expressed as the offset from the start
// of the simulation.
type Time = time.Duration

// ErrDeadlock is reported (wrapped) by Run when no scheduled events remain
// but one or more processes are still blocked on a Latch, Semaphore or
// other waitable.
var ErrDeadlock = errors.New("simtime: deadlock")

// errAborted is the sentinel panic value used to unwind process goroutines
// when the scheduler tears the simulation down (deadlock or user panic).
var errAborted = errors.New("simtime: aborted")

type eventKind uint8

const (
	evStart  eventKind = iota // launch a new process goroutine
	evResume                  // resume a parked process
	evCall                    // run a non-blocking callback inline
)

// Event is a handle to a scheduled occurrence. It can be canceled as long
// as it has not fired.
type Event struct {
	at       Time
	seq      uint64
	kind     eventKind
	proc     *Proc
	fn       func()
	canceled bool
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event simulation kernel. The zero value is not
// usable; construct with NewScheduler.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventHeap
	parked chan struct{} // handoff: running process -> scheduler

	live    map[*Proc]struct{} // started, not yet finished
	blocked map[*Proc]string   // parked with no scheduled resume -> reason

	err      error
	finished bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{
		parked:  make(chan struct{}),
		live:    make(map[*Proc]struct{}),
		blocked: make(map[*Proc]string),
	}
}

// Now reports the current virtual time. It may be called from process
// context or from evCall callbacks.
func (s *Scheduler) Now() Time { return s.now }

func (s *Scheduler) push(e *Event) *Event {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// At schedules fn to run inline at virtual time t (which must not be in the
// past). fn must not block; it runs in scheduler context.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	return s.push(&Event{at: t, kind: evCall, fn: fn})
}

// After schedules fn to run inline d from now. fn must not block.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

func (s *Scheduler) scheduleResume(p *Proc) {
	s.push(&Event{at: s.now, kind: evResume, proc: p})
}

// wake moves a blocked process back onto the event queue at the current
// virtual time. It must be called from process or callback context.
func (s *Scheduler) wake(p *Proc) {
	delete(s.blocked, p)
	s.scheduleResume(p)
}

// Spawn creates a process that will begin executing body at virtual time t.
func (s *Scheduler) spawnAt(t Time, name string, body func(*Proc)) *Proc {
	p := &Proc{
		s:      s,
		name:   name,
		resume: make(chan struct{}),
		abort:  make(chan struct{}),
		body:   body,
	}
	s.push(&Event{at: t, kind: evStart, proc: p})
	return p
}

// Run starts root as the first process at time zero and drives the event
// loop until no events remain. It returns a non-nil error if any process
// panicked or if the simulation deadlocked (processes blocked forever).
// Run must be called at most once per Scheduler.
func (s *Scheduler) Run(root func(*Proc)) error {
	return s.RunContext(context.Background(), root)
}

// ctxCheckEvents is how many dispatched events RunContext processes
// between context checks: a large simulation dispatches millions of
// events per wall-clock second, so cancellation is still observed within
// microseconds.
const ctxCheckEvents = 256

// RunContext is Run with cancellation: the event loop checks ctx between
// events and, when it fires, tears the simulation down (unwinding every
// live process goroutine) and returns ctx.Err(). Virtual time is
// unrelated to wall time, so a ctx deadline bounds the wall-clock cost of
// the simulation, not the simulated clock.
func (s *Scheduler) RunContext(ctx context.Context, root func(*Proc)) error {
	if s.finished {
		return errors.New("simtime: scheduler already ran")
	}
	if err := ctx.Err(); err != nil {
		s.finished = true
		return err
	}
	s.spawnAt(0, "root", root)
	dispatched := 0
	for s.queue.Len() > 0 {
		if dispatched++; dispatched%ctxCheckEvents == 0 {
			if err := ctx.Err(); err != nil {
				s.abortAll()
				s.finished = true
				return err
			}
		}
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.at
		switch e.kind {
		case evCall:
			e.fn()
			continue
		case evStart:
			s.live[e.proc] = struct{}{}
			go s.runProc(e.proc)
		case evResume:
			e.proc.resume <- struct{}{}
		}
		<-s.parked
		if s.err != nil {
			s.abortAll()
			s.finished = true
			return s.err
		}
	}
	s.finished = true
	if len(s.blocked) > 0 {
		err := fmt.Errorf("%w: %d process(es) blocked: %s",
			ErrDeadlock, len(s.blocked), s.blockedSummary())
		s.abortAll()
		return err
	}
	return nil
}

func (s *Scheduler) blockedSummary() string {
	names := make([]string, 0, len(s.blocked))
	for p, reason := range s.blocked {
		names = append(names, p.name+" ("+reason+")")
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// abortAll unwinds every live process goroutine. Called from scheduler
// context when tearing the simulation down; after it returns, no process
// goroutines remain.
func (s *Scheduler) abortAll() {
	n := 0
	for p := range s.live {
		close(p.abort)
		n++
	}
	for i := 0; i < n; i++ {
		<-s.parked
	}
	s.live = map[*Proc]struct{}{}
	s.blocked = map[*Proc]string{}
}

// runProc executes a process body in its own goroutine and manages the
// control handoff back to the scheduler on completion or panic.
func (s *Scheduler) runProc(p *Proc) {
	defer func() {
		r := recover()
		aborted := false
		if r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errAborted) {
				aborted = true
			} else if s.err == nil {
				s.err = fmt.Errorf("simtime: process %q panicked: %v", p.name, r)
			}
		}
		if !aborted {
			// Safe to touch scheduler state: the scheduler is blocked
			// receiving from s.parked until we signal below.
			p.finished = true
			delete(s.live, p)
			for _, w := range p.joinWaiters {
				s.wake(w)
			}
			p.joinWaiters = nil
		}
		s.parked <- struct{}{}
	}()
	p.body(p)
}

// Elapsed runs a single-process simulation and reports the virtual time
// consumed by body. It is a convenience for tests and simple metering.
func Elapsed(body func(*Proc)) (time.Duration, error) {
	s := NewScheduler()
	err := s.Run(body)
	return s.now, err
}
