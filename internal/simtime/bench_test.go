package simtime

import (
	"testing"
	"time"
)

// BenchmarkSleepEvents measures raw event throughput: one process
// sleeping through b.N events.
func BenchmarkSleepEvents(b *testing.B) {
	b.ReportAllocs()
	_, err := Elapsed(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpawnJoin measures process creation/teardown cost.
func BenchmarkSpawnJoin(b *testing.B) {
	b.ReportAllocs()
	_, err := Elapsed(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c := p.Spawn("w", func(q *Proc) {})
			p.Join(c)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkForkJoin100 measures a 100-way fork-join wave (the mapper
// pattern).
func BenchmarkForkJoin100(b *testing.B) {
	b.ReportAllocs()
	_, err := Elapsed(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Parallel(100, "w", func(q *Proc, j int) {
				q.Sleep(time.Millisecond)
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSemaphoreContention measures FIFO semaphore throughput under
// 10x oversubscription.
func BenchmarkSemaphoreContention(b *testing.B) {
	b.ReportAllocs()
	_, err := Elapsed(func(p *Proc) {
		sem := p.Scheduler().NewSemaphore(10)
		for i := 0; i < b.N; i++ {
			p.Parallel(100, "w", func(q *Proc, j int) {
				sem.Acquire(q, 1)
				q.Sleep(time.Microsecond)
				sem.Release(1)
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPSResource measures the processor-sharing recompute cost with
// 50 concurrent jobs.
func BenchmarkPSResource(b *testing.B) {
	b.ReportAllocs()
	_, err := Elapsed(func(p *Proc) {
		r := p.Scheduler().NewPSResource(1e9)
		for i := 0; i < b.N; i++ {
			p.Parallel(50, "xfer", func(q *Proc, j int) {
				r.Use(q, float64(1000*(j+1)))
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
