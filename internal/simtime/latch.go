package simtime

// Latch is a one-shot completion signal. Processes that Wait before Done
// block until Done is called; Waits after Done return immediately.
type Latch struct {
	s       *Scheduler
	done    bool
	waiters []*Proc
}

// NewLatch creates an unreleased latch.
func (s *Scheduler) NewLatch() *Latch { return &Latch{s: s} }

// Done releases the latch, waking all waiters at the current virtual time.
// It is idempotent and must be called from process or callback context.
func (l *Latch) Done() {
	if l.done {
		return
	}
	l.done = true
	for _, w := range l.waiters {
		l.s.wake(w)
	}
	l.waiters = nil
}

// IsDone reports whether the latch has been released.
func (l *Latch) IsDone() bool { return l.done }

// Wait blocks p until the latch is released.
func (l *Latch) Wait(p *Proc) {
	if l.done {
		return
	}
	l.waiters = append(l.waiters, p)
	p.block("latch")
}

// Counter is a countdown latch: it releases once Add has been balanced by
// the configured number of Done calls. Used to model barrier-style phase
// completion (e.g., "all mappers finished").
type Counter struct {
	s       *Scheduler
	n       int
	waiters []*Proc
}

// NewCounter creates a countdown latch expecting n Done calls.
func (s *Scheduler) NewCounter(n int) *Counter { return &Counter{s: s, n: n} }

// Done decrements the counter; when it reaches zero all waiters wake.
// Calling Done more times than the initial count panics: that is always a
// bookkeeping bug in the simulation harness.
func (c *Counter) Done() {
	if c.n <= 0 {
		panic("simtime: Counter.Done called more times than its count")
	}
	c.n--
	if c.n == 0 {
		for _, w := range c.waiters {
			c.s.wake(w)
		}
		c.waiters = nil
	}
}

// Wait blocks p until the count reaches zero.
func (c *Counter) Wait(p *Proc) {
	if c.n == 0 {
		return
	}
	c.waiters = append(c.waiters, p)
	p.block("counter")
}
