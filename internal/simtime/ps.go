package simtime

import "math"

// PSResource is a processor-sharing resource: a fixed service capacity
// (units per virtual second) divided equally among all in-flight jobs, the
// classic fluid model of a shared network link. It is an optional
// refinement over the paper's fixed per-lambda bandwidth: with PSResource a
// burst of 200 concurrent mappers genuinely contends for aggregate
// S3-facing bandwidth.
//
// Whenever a job arrives or departs, remaining work is advanced at the old
// rate and the next completion is rescheduled, so completion times are
// exact for piecewise-constant rates.
type PSResource struct {
	s          *Scheduler
	capacity   float64 // units per second
	jobs       map[*psJob]struct{}
	lastUpdate Time
	pending    *Event

	// Served accumulates total units served, for conservation checks.
	served float64
}

type psJob struct {
	remaining float64
	latch     *Latch
}

// NewPSResource creates a processor-sharing resource with the given
// capacity in units per virtual second.
func (s *Scheduler) NewPSResource(capacity float64) *PSResource {
	if capacity <= 0 {
		panic("simtime: PSResource capacity must be positive")
	}
	return &PSResource{s: s, capacity: capacity, jobs: make(map[*psJob]struct{})}
}

// Capacity reports the configured capacity (units per second).
func (r *PSResource) Capacity() float64 { return r.capacity }

// InFlight reports the number of jobs currently being served.
func (r *PSResource) InFlight() int { return len(r.jobs) }

// Served reports total units served so far.
func (r *PSResource) Served() float64 { return r.served }

// perJobRate is the current service rate each job receives.
func (r *PSResource) perJobRate() float64 {
	if len(r.jobs) == 0 {
		return 0
	}
	return r.capacity / float64(len(r.jobs))
}

// advance applies service accrued since lastUpdate to every job.
func (r *PSResource) advance() {
	now := r.s.Now()
	if now <= r.lastUpdate {
		r.lastUpdate = now
		return
	}
	rate := r.perJobRate()
	sec := (now - r.lastUpdate).Seconds()
	for j := range r.jobs {
		done := rate * sec
		if done > j.remaining {
			done = j.remaining
		}
		j.remaining -= done
		r.served += done
	}
	r.lastUpdate = now
}

// reschedule cancels any pending completion event and schedules the next
// one for the job closest to finishing.
func (r *PSResource) reschedule() {
	if r.pending != nil {
		r.pending.Cancel()
		r.pending = nil
	}
	if len(r.jobs) == 0 {
		return
	}
	minRem := math.Inf(1)
	for j := range r.jobs {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	// Time for the smallest job to finish at the shared rate, rounded up a
	// nanosecond so float truncation can never fire the event before the
	// job has fully drained (which would loop at zero duration).
	sec := minRem * float64(len(r.jobs)) / r.capacity
	d := Time(sec*float64(Time(1e9))) + 1
	r.pending = r.s.After(d, r.onCompletion)
}

// onCompletion fires when at least one job has drained; it releases every
// finished job and schedules the next completion.
func (r *PSResource) onCompletion() {
	r.pending = nil
	r.advance()
	// Anything below a microunit counts as drained; with the rounded-up
	// completion event this only absorbs float noise, never real work.
	const eps = 1e-6
	for j := range r.jobs {
		if j.remaining <= eps {
			r.served += j.remaining
			j.remaining = 0
			delete(r.jobs, j)
			j.latch.Done()
		}
	}
	r.reschedule()
}

// Use blocks p until amount units have been served to it under processor
// sharing. Zero or negative amounts return immediately.
func (r *PSResource) Use(p *Proc, amount float64) {
	if amount <= 0 {
		return
	}
	r.advance()
	j := &psJob{remaining: amount, latch: r.s.NewLatch()}
	r.jobs[j] = struct{}{}
	r.reschedule()
	j.latch.Wait(p)
}
