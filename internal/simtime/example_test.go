package simtime_test

import (
	"fmt"
	"time"

	"astra/internal/simtime"
)

// Two ten-second tasks running in parallel consume ten seconds of
// virtual time — and almost none of wall time.
func ExampleScheduler_Run() {
	s := simtime.NewScheduler()
	err := s.Run(func(p *simtime.Proc) {
		a := p.Spawn("a", func(q *simtime.Proc) { q.Sleep(10 * time.Second) })
		b := p.Spawn("b", func(q *simtime.Proc) { q.Sleep(10 * time.Second) })
		p.Join(a)
		p.Join(b)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Now())
	// Output:
	// 10s
}

// A FIFO semaphore turns 6 one-second tasks into 3 waves of 2.
func ExampleSemaphore() {
	elapsed, err := simtime.Elapsed(func(p *simtime.Proc) {
		sem := p.Scheduler().NewSemaphore(2)
		p.Parallel(6, "task", func(q *simtime.Proc, i int) {
			sem.Acquire(q, 1)
			q.Sleep(time.Second)
			sem.Release(1)
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(elapsed)
	// Output:
	// 3s
}

// Processor sharing: two equal transfers over one link each take twice
// the solo time.
func ExamplePSResource() {
	elapsed, err := simtime.Elapsed(func(p *simtime.Proc) {
		link := p.Scheduler().NewPSResource(100) // 100 units/second
		p.Parallel(2, "xfer", func(q *simtime.Proc, i int) {
			link.Use(q, 100)
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(elapsed.Round(time.Millisecond))
	// Output:
	// 2s
}
