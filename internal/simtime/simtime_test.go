package simtime

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	elapsed, err := Elapsed(func(p *Proc) {
		p.Sleep(3 * time.Second)
		p.Sleep(2 * time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", elapsed)
	}
}

func TestSleepNegativeTreatedAsZero(t *testing.T) {
	elapsed, err := Elapsed(func(p *Proc) { p.Sleep(-time.Second) })
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("elapsed = %v, want 0", elapsed)
	}
}

func TestSpawnJoinParallelism(t *testing.T) {
	// Two 10s children spawned in parallel: total virtual time 10s, not 20s.
	elapsed, err := Elapsed(func(p *Proc) {
		a := p.Spawn("a", func(q *Proc) { q.Sleep(10 * time.Second) })
		b := p.Spawn("b", func(q *Proc) { q.Sleep(10 * time.Second) })
		p.Join(a)
		p.Join(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 10*time.Second {
		t.Fatalf("elapsed = %v, want 10s", elapsed)
	}
}

func TestJoinFinishedProcessReturnsImmediately(t *testing.T) {
	elapsed, err := Elapsed(func(p *Proc) {
		a := p.Spawn("a", func(q *Proc) { q.Sleep(time.Second) })
		p.Sleep(5 * time.Second)
		p.Join(a) // already done
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", elapsed)
	}
}

func TestParallelForkJoin(t *testing.T) {
	var order []int
	elapsed, err := Elapsed(func(p *Proc) {
		p.Parallel(4, "w", func(q *Proc, i int) {
			q.Sleep(time.Duration(i+1) * time.Second)
			order = append(order, i)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 4*time.Second {
		t.Fatalf("elapsed = %v, want 4s", elapsed)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicEventOrderAtSameInstant(t *testing.T) {
	run := func() []int {
		var order []int
		_, err := Elapsed(func(p *Proc) {
			p.Parallel(8, "w", func(q *Proc, i int) {
				q.Sleep(time.Second) // all wake at the same instant
				order = append(order, i)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("run %d differs: %v vs %v", trial, got, first)
			}
		}
	}
	// FIFO among same-instant events means spawn order is completion order.
	for i, v := range first {
		if v != i {
			t.Fatalf("same-instant order = %v, want ascending", first)
		}
	}
}

func TestAfterCallbackFires(t *testing.T) {
	var fired Time
	elapsed, err := Elapsed(func(p *Proc) {
		p.Scheduler().After(3*time.Second, func() { fired = p.Scheduler().Now() })
		p.Sleep(10 * time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 3*time.Second {
		t.Fatalf("callback fired at %v, want 3s", fired)
	}
	if elapsed != 10*time.Second {
		t.Fatalf("elapsed = %v, want 10s", elapsed)
	}
}

func TestEventCancel(t *testing.T) {
	fired := false
	_, err := Elapsed(func(p *Proc) {
		ev := p.Scheduler().After(time.Second, func() { fired = true })
		ev.Cancel()
		p.Sleep(5 * time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestAtInThePastClampsToNow(t *testing.T) {
	var fired Time = -1
	_, err := Elapsed(func(p *Proc) {
		p.Sleep(5 * time.Second)
		p.Scheduler().At(time.Second, func() { fired = p.Scheduler().Now() })
		p.Sleep(time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 5*time.Second {
		t.Fatalf("past-dated callback fired at %v, want clamped to 5s", fired)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := NewScheduler()
	err := s.Run(func(p *Proc) {
		l := s.NewLatch()
		l.Wait(p) // nobody will ever Done it
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "latch") {
		t.Fatalf("deadlock diagnostic %q should name the latch", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	s := NewScheduler()
	err := s.Run(func(p *Proc) {
		p.Spawn("bomb", func(q *Proc) { panic("boom") })
		p.Sleep(time.Hour)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagated", err)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	s := NewScheduler()
	if err := s.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(func(p *Proc) {}); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestLatchWakesAllWaiters(t *testing.T) {
	elapsed, err := Elapsed(func(p *Proc) {
		l := p.Scheduler().NewLatch()
		var ws []*Proc
		for i := 0; i < 3; i++ {
			ws = append(ws, p.Spawn("w", func(q *Proc) {
				l.Wait(q)
				q.Sleep(time.Second)
			}))
		}
		p.Sleep(10 * time.Second)
		l.Done()
		l.Done() // idempotent
		p.JoinAll(ws)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 11*time.Second {
		t.Fatalf("elapsed = %v, want 11s", elapsed)
	}
}

func TestLatchWaitAfterDone(t *testing.T) {
	elapsed, err := Elapsed(func(p *Proc) {
		l := p.Scheduler().NewLatch()
		l.Done()
		l.Wait(p) // immediate
		p.Sleep(time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != time.Second {
		t.Fatalf("elapsed = %v, want 1s", elapsed)
	}
}

func TestCounterBarrier(t *testing.T) {
	elapsed, err := Elapsed(func(p *Proc) {
		c := p.Scheduler().NewCounter(3)
		for i := 0; i < 3; i++ {
			i := i
			p.Spawn("w", func(q *Proc) {
				q.Sleep(time.Duration(i+1) * time.Second)
				c.Done()
			})
		}
		c.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s (slowest worker)", elapsed)
	}
}

func TestCounterZeroWaitImmediate(t *testing.T) {
	_, err := Elapsed(func(p *Proc) {
		c := p.Scheduler().NewCounter(0)
		c.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounterOverDonePanics(t *testing.T) {
	s := NewScheduler()
	err := s.Run(func(p *Proc) {
		c := s.NewCounter(1)
		c.Done()
		c.Done()
	})
	if err == nil || !strings.Contains(err.Error(), "Counter.Done") {
		t.Fatalf("err = %v, want over-Done panic", err)
	}
}

func TestElapsedReportsVirtualNotWallTime(t *testing.T) {
	start := time.Now()
	elapsed, err := Elapsed(func(p *Proc) { p.Sleep(24 * time.Hour) })
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 24*time.Hour {
		t.Fatalf("elapsed = %v, want 24h", elapsed)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("simulating 24h took %v of wall time", wall)
	}
}
