package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"

	"astra/internal/lambda"
	"astra/internal/objectstore"
	"astra/internal/simtime"
)

func mustEngine(t *testing.T, p *Plan) *Engine {
	t.Helper()
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := ParseBytes([]byte(`{"seed":1,"rules":[{"target":"lambda","effect":"straggle","factr":8}]}`))
	if err == nil || !strings.Contains(err.Error(), "factr") {
		t.Fatalf("want unknown-field error naming the typo, got %v", err)
	}
}

func TestParseAcceptsDurationStrings(t *testing.T) {
	p, err := ParseBytes([]byte(`{"seed":2,"rules":[
		{"target":"lambda","effect":"throttle","from":"10s","for":"1m30s"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if time.Duration(r.From) != 10*time.Second || time.Duration(r.For) != 90*time.Second {
		t.Fatalf("from/for = %v/%v", time.Duration(r.From), time.Duration(r.For))
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		want string
	}{
		{"unknown target", Rule{Target: "network", Effect: StoreError}, "unknown target"},
		{"store effect on lambda", Rule{Target: TargetLambda, Effect: StoreError}, "not a lambda effect"},
		{"lambda effect on store", Rule{Target: TargetStore, Effect: Straggle}, "not a store effect"},
		{"store matchers on lambda rule", Rule{Target: TargetLambda, Effect: Straggle, Factor: 2, Bucket: "b"}, "store matchers"},
		{"lambda matchers on store rule", Rule{Target: TargetStore, Effect: StoreError, Phase: "map"}, "lambda matchers"},
		{"unknown phase", Rule{Target: TargetLambda, Effect: ColdStart, Phase: "shuffle"}, "unknown phase"},
		{"unknown op", Rule{Target: TargetStore, Effect: StoreError, Ops: []string{"POST"}}, "unknown op"},
		{"probability out of range", Rule{Target: TargetLambda, Effect: ColdStart, Probability: 1.5}, "probability"},
		{"straggle without factor", Rule{Target: TargetLambda, Effect: Straggle}, "factor > 1"},
		{"factor on non-straggle", Rule{Target: TargetLambda, Effect: ColdStart, Factor: 2}, "only valid for straggle"},
		{"throttle without window", Rule{Target: TargetLambda, Effect: Throttle}, "positive"},
		{"window on non-throttle", Rule{Target: TargetLambda, Effect: ColdStart, For: Duration(time.Second)}, "only valid for throttle"},
		{"negative max_count", Rule{Target: TargetLambda, Effect: ColdStart, MaxCount: -1}, "negative"},
	}
	for _, c := range cases {
		p := &Plan{Rules: []Rule{c.rule}}
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestDrawsAreIdentityKeyed is the determinism core: the same invocation
// identity gets the same decision regardless of how many other draws
// happened first or in what order, so scheduling interleavings cannot
// change the injected fault set.
func TestDrawsAreIdentityKeyed(t *testing.T) {
	plan := func() *Plan {
		return &Plan{Seed: 11, Rules: []Rule{{
			Target: TargetLambda, Effect: Straggle, Factor: 4, Probability: 0.5,
		}}}
	}
	refs := make([]lambda.InvokeRef, 40)
	for i := range refs {
		refs[i] = lambda.InvokeRef{Function: "mapper", Label: "map-" + string(rune('a'+i%26)), Attempt: i / 26}
	}

	e1 := mustEngine(t, plan())
	got1 := make([]bool, len(refs))
	for i, ref := range refs {
		_, got1[i] = e1.InvokeFault(ref, 0)
	}

	// Same plan, reversed consultation order: decisions must match per
	// identity.
	e2 := mustEngine(t, plan())
	got2 := make([]bool, len(refs))
	for i := len(refs) - 1; i >= 0; i-- {
		_, got2[i] = e2.InvokeFault(refs[i], 0)
	}
	for i := range refs {
		if got1[i] != got2[i] {
			t.Fatalf("identity %v: decision depends on call order (%v vs %v)", refs[i], got1[i], got2[i])
		}
	}

	// A different seed must change the pattern (sanity that the seed is
	// actually in the key).
	e3 := mustEngine(t, &Plan{Seed: 12, Rules: plan().Rules})
	same := 0
	for i, ref := range refs {
		if _, hit := e3.InvokeFault(ref, 0); hit == got1[i] {
			same++
		}
	}
	if same == len(refs) {
		t.Fatal("seed change did not alter any decision")
	}
}

func TestMaxCountBoundsFires(t *testing.T) {
	e := mustEngine(t, &Plan{Seed: 1, Rules: []Rule{{
		Name: "once", Target: TargetLambda, Effect: ColdStart, MaxCount: 1,
	}}})
	hits := 0
	for i := 0; i < 5; i++ {
		ref := lambda.InvokeRef{Function: "mapper", Label: "map-0", Attempt: i}
		if f, ok := e.InvokeFault(ref, 0); ok && f.ForceCold {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("rule fired %d times, want 1 (max_count)", hits)
	}
	st := e.Stats()
	if len(st.ByRule) != 1 || st.ByRule[0].Fired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreRepeatHeals(t *testing.T) {
	e := mustEngine(t, &Plan{Seed: 5, Rules: []Rule{{
		Target: TargetStore, Effect: StoreError, Ops: []string{"GET"}, Repeat: 2,
	}}})
	var errs int
	for i := 0; i < 6; i++ {
		if err := e.OpFault(objectstore.OpGet, "b", "k"); err != nil {
			if !errors.Is(err, ErrStoreFault) {
				t.Fatalf("wrong error type: %v", err)
			}
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("key faulted %d times, want exactly Repeat=2 then healed", errs)
	}
	// Other ops and keys are unaffected.
	if err := e.OpFault(objectstore.OpPut, "b", "k"); err != nil {
		t.Fatalf("PUT matched a GET-only rule: %v", err)
	}
	if err := e.OpFault(objectstore.OpGet, "b", "other"); err == nil {
		t.Fatal("fresh key should still be afflicted (probability 1 rule)")
	}
}

func TestThrottleWindow(t *testing.T) {
	e := mustEngine(t, &Plan{Seed: 3, Rules: []Rule{{
		Target: TargetLambda, Effect: Throttle,
		From: Duration(10 * time.Second), For: Duration(5 * time.Second),
	}}})
	ref := lambda.InvokeRef{Function: "mapper", Label: "map-0"}
	if e.ThrottleInjected(ref, 9*simtime.Time(time.Second)) {
		t.Fatal("throttled before the window opened")
	}
	if !e.ThrottleInjected(ref, 12*simtime.Time(time.Second)) {
		t.Fatal("not throttled inside the window")
	}
	if e.ThrottleInjected(ref, 15*simtime.Time(time.Second)) {
		t.Fatal("throttled at the window's exclusive end")
	}
	if e.Stats().Throttles != 1 {
		t.Fatalf("throttle count = %d, want 1", e.Stats().Throttles)
	}
}

func TestEffectsCompose(t *testing.T) {
	// A straggle rule and a cold-start rule matching the same attempt
	// compose into one InvokeFault carrying both effects.
	e := mustEngine(t, &Plan{Seed: 9, Rules: []Rule{
		{Target: TargetLambda, Effect: Straggle, Factor: 3},
		{Target: TargetLambda, Effect: ColdStart},
	}})
	f, ok := e.InvokeFault(lambda.InvokeRef{Function: "mapper", Label: "map-1"}, 0)
	if !ok || f.Straggle != 3 || !f.ForceCold {
		t.Fatalf("composed fault = %+v (ok=%v), want straggle 3 + forced cold", f, ok)
	}
	if got := e.Stats().LambdaFaults; got != 1 {
		t.Fatalf("LambdaFaults = %d, want 1 (one attempt afflicted)", got)
	}
}

func TestPhaseMatching(t *testing.T) {
	e := mustEngine(t, &Plan{Seed: 2, Rules: []Rule{{
		Target: TargetLambda, Effect: ColdStart, Phase: "reduce",
	}}})
	if _, ok := e.InvokeFault(lambda.InvokeRef{Function: "f", Label: "map-3"}, 0); ok {
		t.Fatal("reduce rule hit a map label")
	}
	if _, ok := e.InvokeFault(lambda.InvokeRef{Function: "f", Label: "red-0-2"}, 0); !ok {
		t.Fatal("reduce rule missed a red-P-R label")
	}
	if _, ok := e.InvokeFault(lambda.InvokeRef{Function: "f", Label: "coordinator"}, 0); ok {
		t.Fatal("reduce rule hit the coordinator")
	}
}
