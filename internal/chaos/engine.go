package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"astra/internal/lambda"
	"astra/internal/objectstore"
	"astra/internal/simtime"
)

// ErrStoreFault wraps every store error the engine fabricates.
var ErrStoreFault = errors.New("chaos: injected store fault")

// Engine compiles a Plan into the platform injector interfaces
// (lambda.Injector and objectstore.Injector). It is safe for concurrent
// use, but its decisions never depend on call order: every probabilistic
// draw is a pure function of (seed, rule, invocation identity), so the
// same seeded plan injects the same faults regardless of scheduling
// interleaving. Counters (MaxCount, Repeat) are the only mutable state,
// and within one deterministic simulation they advance identically run to
// run.
//
// Use a fresh Engine per run: counters carry across runs otherwise.
type Engine struct {
	plan *Plan

	mu       sync.Mutex
	fired    []int          // per-rule total fires (MaxCount bookkeeping)
	keyFails map[string]int // (rule, bucket, key) -> store faults so far (Repeat)
	occ      map[string]uint64
	stats    Stats
}

// Stats summarizes what an engine injected.
type Stats struct {
	LambdaFaults int // invocation attempts given at least one effect
	StoreFaults  int // store requests aborted
	Throttles    int // injected 429 rejections
	ByRule       []RuleCount
}

// RuleCount is one rule's fire count.
type RuleCount struct {
	Rule  string
	Fired int
}

// NewEngine validates the plan and builds an engine for one run.
func NewEngine(p *Plan) (*Engine, error) {
	if p == nil {
		p = &Plan{}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		plan:     p,
		fired:    make([]int, len(p.Rules)),
		keyFails: make(map[string]int),
		occ:      make(map[string]uint64),
	}, nil
}

// Plan returns the engine's validated plan.
func (e *Engine) Plan() *Plan { return e.plan }

// Stats snapshots the engine's injection counts.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.ByRule = make([]RuleCount, len(e.plan.Rules))
	for i := range e.plan.Rules {
		st.ByRule[i] = RuleCount{Rule: e.ruleName(i), Fired: e.fired[i]}
	}
	return st
}

func (e *Engine) ruleName(i int) string {
	if n := e.plan.Rules[i].Name; n != "" {
		return n
	}
	return fmt.Sprintf("rule-%d", i)
}

// splitmix64 finalizes a hash into well-mixed 64 bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw hashes the seed plus an identity (FNV-1a over NUL-joined parts,
// splitmix-finalized) into a uniform 64-bit value. It is the engine's only
// randomness source: no sequential stream, no shared cursor.
func (e *Engine) draw(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range parts {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0
		h *= prime64
	}
	return splitmix64(h ^ splitmix64(uint64(e.plan.Seed)))
}

// unit maps a draw to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// pass reports whether the rule's probability gate opens for the identity.
func (e *Engine) pass(i int, r *Rule, parts ...string) bool {
	p := r.Probability
	if p == 0 || p >= 1 {
		return true // 0 means "always" (probability unset)
	}
	key := append([]string{strconv.Itoa(i)}, parts...)
	return unit(e.draw(key...)) < p
}

// phaseOf maps the driver's labeling scheme to a rule phase.
func phaseOf(label string) string {
	switch {
	case strings.HasPrefix(label, "map-"):
		return "map"
	case strings.HasPrefix(label, "red-"):
		return "reduce"
	case label == "coordinator":
		return "coordinator"
	}
	return ""
}

// matchLambda reports whether the rule's matchers hit the attempt.
func matchLambda(r *Rule, ref lambda.InvokeRef) bool {
	if r.Function != "" && r.Function != ref.Function {
		return false
	}
	if r.Phase != "" && r.Phase != phaseOf(ref.Label) {
		return false
	}
	if r.Attempt != nil && *r.Attempt != ref.Attempt {
		return false
	}
	return true
}

// InvokeFault implements lambda.Injector: effects from every matching
// non-throttle lambda rule compose into one InvokeFault. Each rule draws
// independently under the attempt's identity.
func (e *Engine) InvokeFault(ref lambda.InvokeRef, now simtime.Time) (lambda.InvokeFault, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out lambda.InvokeFault
	have := false
	att := strconv.Itoa(ref.Attempt)
	for i := range e.plan.Rules {
		r := &e.plan.Rules[i]
		if r.Target != TargetLambda || r.Effect == Throttle || !matchLambda(r, ref) {
			continue
		}
		if r.MaxCount > 0 && e.fired[i] >= r.MaxCount {
			continue
		}
		if !e.pass(i, r, "invoke", ref.Function, ref.Label, att) {
			continue
		}
		rule := e.ruleName(i)
		switch r.Effect {
		case FailBeforeStart:
			if out.FailBeforeStart {
				continue // already rejected; don't double-count
			}
			out.FailBeforeStart = true
			out.Rule, out.Err = rule, r.Error
		case FailMidFlight:
			if out.FailMidFlight {
				continue
			}
			out.FailMidFlight = true
			// Kill at one of the handler's first few platform API calls,
			// drawn from the same identity so it is reproducible.
			out.FailAtCall = 1 + int(e.draw(strconv.Itoa(i), "failat", ref.Function, ref.Label, att)%4)
			if out.Rule == "" {
				out.Rule, out.Err = rule, r.Error
			}
		case Straggle:
			if r.Factor <= out.Straggle {
				continue
			}
			out.Straggle = r.Factor
			if out.Rule == "" {
				out.Rule = rule
			}
		case ColdStart:
			if out.ForceCold {
				continue
			}
			out.ForceCold = true
			if out.Rule == "" {
				out.Rule = rule
			}
		}
		e.fired[i]++
		have = true
	}
	if have {
		e.stats.LambdaFaults++
	}
	return out, have
}

// ThrottleInjected implements lambda.Injector: the attempt is rejected
// when any throttle rule's window contains now and its gate opens. The
// gate draw includes the virtual-time instant, so each retry of a
// backed-off attempt re-draws — a storm rejects each request with the
// rule's probability, rather than condemning one caller for the whole
// window — and a backoff past the window always clears. Virtual time is
// identical run to run, so determinism is unaffected.
func (e *Engine) ThrottleInjected(ref lambda.InvokeRef, now simtime.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	att := strconv.Itoa(ref.Attempt) + "\x00" + strconv.FormatInt(int64(now), 10)
	for i := range e.plan.Rules {
		r := &e.plan.Rules[i]
		if r.Target != TargetLambda || r.Effect != Throttle {
			continue
		}
		from := simtime.Time(r.From)
		if now < from || now >= from+simtime.Time(r.For) {
			continue
		}
		if !matchLambda(r, ref) {
			continue
		}
		if r.MaxCount > 0 && e.fired[i] >= r.MaxCount {
			continue
		}
		if !e.pass(i, r, "throttle", ref.Function, ref.Label, att) {
			continue
		}
		e.fired[i]++
		e.stats.Throttles++
		return true
	}
	return false
}

// OpFault implements objectstore.Injector. With Repeat set, one draw per
// (rule, key) decides whether the key is afflicted; an afflicted key fails
// its first Repeat matching requests and then heals, so bounded retries
// recover. With Repeat zero every matching request draws independently
// under a per-key occurrence counter.
func (e *Engine) OpFault(op objectstore.Op, bucket, key string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.plan.Rules {
		r := &e.plan.Rules[i]
		if r.Target != TargetStore {
			continue
		}
		if len(r.Ops) > 0 && !opListed(r.Ops, op) {
			continue
		}
		if r.Bucket != "" && r.Bucket != bucket {
			continue
		}
		if r.KeyPrefix != "" && !strings.HasPrefix(key, r.KeyPrefix) {
			continue
		}
		if r.MaxCount > 0 && e.fired[i] >= r.MaxCount {
			continue
		}
		kk := strconv.Itoa(i) + "\x00" + bucket + "\x00" + key
		if r.Repeat > 0 {
			if e.keyFails[kk] >= r.Repeat {
				continue // healed
			}
			if !e.pass(i, r, "store", bucket, key) {
				continue
			}
			e.keyFails[kk]++
		} else {
			n := e.occ[kk]
			e.occ[kk]++
			if !e.pass(i, r, "store", bucket, key, strconv.FormatUint(n, 10)) {
				continue
			}
		}
		e.fired[i]++
		e.stats.StoreFaults++
		msg := r.Error
		if msg == "" {
			msg = "transient error"
		}
		return fmt.Errorf("%w: %s (rule %s, %s %s/%s)", ErrStoreFault, msg, e.ruleName(i), op, bucket, key)
	}
	return nil
}

func opListed(ops []string, op objectstore.Op) bool {
	for _, o := range ops {
		if o == string(op) {
			return true
		}
	}
	return false
}
