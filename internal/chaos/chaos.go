// Package chaos implements deterministic, seeded fault injection for the
// simulated serverless platform: a Plan is a list of Rules targeting
// lambda invocations or object-store requests, and an Engine compiles the
// plan into the injector interfaces the platform consults
// (lambda.Injector, objectstore.Injector).
//
// Determinism is the core contract. Every probabilistic decision is drawn
// from a PRNG keyed by the plan seed plus a *stable invocation identity*
// — (function, label, attempt) for lambdas, (op, bucket, key, occurrence)
// for store requests — never from a shared sequential stream. The same
// seed therefore yields the same faults whether planning ran serial or
// parallel, whether the race detector reorders goroutine startup, and
// regardless of how many unrelated draws happened first. Two runs of the
// same seeded plan produce byte-identical flight-recorder exports.
//
// Effects model the adversity real platforms exhibit:
//
//   - fail_before_start: the invocation is rejected at admission (no
//     duration billed — only the invocation fee, like an AWS sandbox
//     init failure).
//   - fail_mid_flight: the handler is killed partway through (at one of
//     its platform API calls); the elapsed duration is billed, per AWS
//     semantics for crashed functions.
//   - straggle: the invocation's compute and store transfers run slower
//     by Factor — the straggler model Starling's duplicate-request
//     mitigation targets.
//   - cold_start: the warm-container pool is bypassed, forcing the
//     cold-start penalty.
//   - throttle: a virtual-time window [From, From+For) during which
//     matching invocation attempts are rejected 429-style, subject to
//     the platform's retry policy.
//   - store_error: a matching store request fails before any state
//     change or time charge (transient errors; Repeat bounds how many
//     times each key faults, so retries eventually succeed).
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Target selects what a rule injects into.
type Target string

// Rule targets.
const (
	// TargetLambda matches invocation attempts on the lambda platform.
	TargetLambda Target = "lambda"
	// TargetStore matches object-store requests.
	TargetStore Target = "store"
)

// Effect identifies what a matched rule does.
type Effect string

// Rule effects. The first five apply to TargetLambda, StoreError to
// TargetStore.
const (
	FailBeforeStart Effect = "fail_before_start"
	FailMidFlight   Effect = "fail_mid_flight"
	Straggle        Effect = "straggle"
	ColdStart       Effect = "cold_start"
	Throttle        Effect = "throttle"
	StoreError      Effect = "store_error"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("30s", "1m30s") so plans are human-writable JSON.
type Duration time.Duration

// UnmarshalJSON accepts a duration string or a bare number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Rule is one fault-injection rule. Zero matcher fields match anything;
// Probability 0 means 1 (always, when the other matchers hit).
type Rule struct {
	// Name labels the rule in events and reports.
	Name string `json:"name,omitempty"`
	// Target selects lambda invocations or store requests.
	Target Target `json:"target"`
	// Effect is what the rule injects.
	Effect Effect `json:"effect"`

	// Function matches the lambda's registered name exactly ("" = any).
	Function string `json:"function,omitempty"`
	// Phase matches the driver's labeling scheme: "map" (labels map-N),
	// "reduce" (red-P-R), or "coordinator". "" matches any phase.
	Phase string `json:"phase,omitempty"`
	// Attempt, when set, matches only that attempt number (0 = the first
	// dispatch of a task identity, 1 = its first retry or backup, ...).
	Attempt *int `json:"attempt,omitempty"`

	// Probability gates the rule per identity draw (0 or 1 = always).
	Probability float64 `json:"probability,omitempty"`
	// MaxCount bounds how many times the rule fires in total (0 = no
	// bound).
	MaxCount int `json:"max_count,omitempty"`

	// Factor is the straggle slowdown multiplier (>1; required for the
	// straggle effect).
	Factor float64 `json:"factor,omitempty"`

	// From/For bound a throttle window in virtual time since run start.
	From Duration `json:"from,omitempty"`
	For  Duration `json:"for,omitempty"`

	// Ops lists the store request classes the rule matches (GET, PUT,
	// LIST, HEAD, DELETE, COPY); empty matches every class.
	Ops []string `json:"ops,omitempty"`
	// Bucket matches the bucket name exactly ("" = any).
	Bucket string `json:"bucket,omitempty"`
	// KeyPrefix matches keys by prefix ("" = any).
	KeyPrefix string `json:"key_prefix,omitempty"`
	// Repeat bounds store faults per key: each afflicted key fails its
	// first Repeat matching requests, then heals (0 = every matching
	// request draws independently).
	Repeat int `json:"repeat,omitempty"`
	// Error customizes the injected error message.
	Error string `json:"error,omitempty"`
}

// Plan is a complete fault profile: a PRNG seed plus the rule list.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// lambdaEffects and storeEffects partition the effect vocabulary for
// validation.
var lambdaEffects = map[Effect]bool{
	FailBeforeStart: true, FailMidFlight: true, Straggle: true,
	ColdStart: true, Throttle: true,
}

var validOps = map[string]bool{
	"GET": true, "PUT": true, "LIST": true, "HEAD": true,
	"DELETE": true, "COPY": true,
}

// Validate checks the plan's rules for structural errors: unknown
// targets/effects/phases/ops, effect-target mismatches, and missing or
// nonsensical effect parameters.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		where := fmt.Sprintf("chaos: rule %d (%s)", i, r.Name)
		switch r.Target {
		case TargetLambda:
			if !lambdaEffects[r.Effect] {
				return fmt.Errorf("%s: effect %q is not a lambda effect", where, r.Effect)
			}
			if len(r.Ops) > 0 || r.Bucket != "" || r.KeyPrefix != "" || r.Repeat != 0 {
				return fmt.Errorf("%s: store matchers on a lambda rule", where)
			}
		case TargetStore:
			if r.Effect != StoreError {
				return fmt.Errorf("%s: effect %q is not a store effect", where, r.Effect)
			}
			if r.Function != "" || r.Phase != "" || r.Attempt != nil {
				return fmt.Errorf("%s: lambda matchers on a store rule", where)
			}
			for _, op := range r.Ops {
				if !validOps[op] {
					return fmt.Errorf("%s: unknown op class %q", where, op)
				}
			}
		default:
			return fmt.Errorf("%s: unknown target %q", where, r.Target)
		}
		switch r.Phase {
		case "", "map", "reduce", "coordinator":
		default:
			return fmt.Errorf("%s: unknown phase %q (want map, reduce or coordinator)", where, r.Phase)
		}
		if r.Probability < 0 || r.Probability > 1 {
			return fmt.Errorf("%s: probability %v outside [0,1]", where, r.Probability)
		}
		if r.Effect == Straggle && r.Factor <= 1 {
			return fmt.Errorf("%s: straggle needs factor > 1, got %v", where, r.Factor)
		}
		if r.Effect != Straggle && r.Factor != 0 {
			return fmt.Errorf("%s: factor is only valid for straggle", where)
		}
		if r.Effect == Throttle && r.For <= 0 {
			return fmt.Errorf("%s: throttle needs a positive \"for\" window", where)
		}
		if r.Effect != Throttle && (r.From != 0 || r.For != 0) {
			return fmt.Errorf("%s: from/for are only valid for throttle", where)
		}
		if r.MaxCount < 0 || r.Repeat < 0 {
			return fmt.Errorf("%s: negative max_count or repeat", where)
		}
	}
	return nil
}

// Parse decodes a plan from JSON, rejecting unknown fields so a typo in a
// profile fails fast instead of silently not injecting.
func Parse(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ParseBytes is Parse over an in-memory document.
func ParseBytes(b []byte) (*Plan, error) { return Parse(bytes.NewReader(b)) }

// Load reads and validates a plan file.
func Load(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
