// Remote-client mode: the same deterministic shape sequence, driven over
// HTTP against a running astra-server instead of an in-process planner.
// The driver measures what a tenant of the planning service would see —
// end-to-end latency split into queue wait and service time (from the
// server's timing headers), 429s absorbed by the retry loop, response
// cache verdicts — and keeps Result's shape identical to a local run so
// LOADGEN.json consumers need not care which mode produced it.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"astra/internal/api"
	"astra/internal/telemetry"
)

// maxRetryPause caps how long the client honors a 429's retry_after_ms
// before re-attempting; a load driver exists to apply pressure, not to
// sleep through a long refill window.
const maxRetryPause = 200 * time.Millisecond

// maxAttempts bounds the per-request 429 retry loop so a pathological
// quota (rate far below the offered load) degrades into counted errors
// instead of a livelock.
const maxAttempts = 1000

// wireRequest renders one shape as the service's wire form. The reverse
// mapping is total because profile names and wire workload names are the
// same strings.
func wireRequest(s Shape, execute bool, sloFactor float64) api.PlanRequest {
	req := api.PlanRequest{
		Workload:    s.Job.Profile.Name,
		NumObjects:  s.Job.NumObjects,
		ObjectBytes: s.Job.ObjectSize,
		Execute:     execute,
	}
	if execute && sloFactor > 0 {
		req.SLOFactor = sloFactor
	}
	if s.Objective.Deadline > 0 {
		req.Objective = api.ObjectiveSpec{Goal: "min_cost", Deadline: s.Objective.Deadline.String()}
	} else {
		req.Objective = api.ObjectiveSpec{Goal: "min_time", BudgetUSD: float64(s.Objective.Budget)}
	}
	return req
}

// sample is one completed remote request's client-side accounting.
type sample struct {
	total   time.Duration
	queue   time.Duration
	service time.Duration
	shape   int
	run     *api.RunOutcome
}

// runRemote replays the spec's mix against spec.TargetURL.
func runRemote(ctx context.Context, spec Spec) (*Result, error) {
	workers := spec.Concurrency
	if workers <= 0 {
		workers = 1
	}
	tenants := spec.Tenants
	if tenants <= 0 {
		tenants = 1
	}
	weights := make([]int, len(spec.Shapes))
	total := 0
	for i, s := range spec.Shapes {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	maxPlans := spec.MaxPlans
	if maxPlans <= 0 {
		maxPlans = 1 << 30
	}
	var deadline time.Time
	if spec.Duration > 0 {
		deadline = time.Now().Add(spec.Duration)
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	base := spec.TargetURL

	perWorker := make([][]sample, workers)
	var next, planned, failed atomic.Int64
	var rateLimited, transport, cacheHits, cacheMisses atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w%tenants)
			for {
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= maxPlans {
					return
				}
				si := shapeFor(spec.Shapes, weights, total, spec.Seed, i)
				execute := spec.RunEvery > 0 && i%spec.RunEvery == 0
				req := wireRequest(spec.Shapes[si], execute, spec.SLOFactor)
				s, retried, err := planRemote(ctx, client, base, tenant, &req)
				rateLimited.Add(int64(retried))
				if err != nil {
					transport.Add(1)
					failed.Add(1)
					continue
				}
				switch s.cacheVerdict {
				case "hit":
					cacheHits.Add(1)
				case "miss":
					cacheMisses.Add(1)
				}
				planned.Add(1)
				s.shape = si
				perWorker[w] = append(perWorker[w], s.sample)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var samples []sample
	for _, s := range perWorker {
		samples = append(samples, s...)
	}
	res := &Result{
		Plans:           int(planned.Load()),
		Errors:          int(failed.Load()),
		Concurrency:     workers,
		Elapsed:         elapsed,
		PerShape:        make(map[string]int, len(spec.Shapes)),
		RateLimited:     int(rateLimited.Load()),
		TransportErrors: int(transport.Load()),
		RespCacheHits:   int(cacheHits.Load()),
		RespCacheMisses: int(cacheMisses.Load()),
	}
	if elapsed > 0 {
		res.PlansPerSec = float64(res.Plans) / elapsed.Seconds()
	}
	res.P50, res.P95, res.P99 = quantiles(samples, func(s sample) time.Duration { return s.total })
	res.QueueP50, res.QueueP95, res.QueueP99 = quantiles(samples, func(s sample) time.Duration { return s.queue })
	res.ServiceP50, res.ServiceP95, res.ServiceP99 = quantiles(samples, func(s sample) time.Duration { return s.service })
	for _, s := range samples {
		res.PerShape[spec.Shapes[s.shape].Name]++
		if s.run != nil {
			if res.SLOPerShape == nil {
				res.SLOPerShape = make(map[string]ShapeSLO, len(spec.Shapes))
			}
			agg := res.SLOPerShape[spec.Shapes[s.shape].Name]
			agg.Runs++
			res.Runs++
			if s.run.Attained {
				agg.Attained++
				res.DeadlineAttained++
			} else {
				agg.Breached++
				res.DeadlineBreached++
			}
			res.SLOPerShape[spec.Shapes[s.shape].Name] = agg
		}
	}
	for _, s := range spec.Shapes {
		if _, ok := res.PerShape[s.Name]; !ok {
			res.PerShape[s.Name] = 0
		}
	}
	publishClientTiming(spec.Tel, res)
	return res, nil
}

// quantiles sorts one extracted dimension and reads the usual three.
func quantiles(samples []sample, dim func(sample) time.Duration) (p50, p95, p99 time.Duration) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	vals := make([]time.Duration, len(samples))
	for i, s := range samples {
		vals[i] = dim(s)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	n := len(vals)
	return vals[n/2], vals[min(n-1, n*95/100)], vals[min(n-1, n*99/100)]
}

// publishClientTiming exports the driver's client-side view onto the
// registry: p95 queue/service gauges plus remote outcome counters.
func publishClientTiming(tel *telemetry.Registry, res *Result) {
	if tel == nil {
		return
	}
	tel.Gauge(telemetry.MLoadgenQueueWait).Set(res.QueueP95.Nanoseconds())
	tel.Gauge(telemetry.MLoadgenServiceTime).Set(res.ServiceP95.Nanoseconds())
	if res.RateLimited > 0 {
		tel.Counter(telemetry.MLoadgenRateLimited).Add(int64(res.RateLimited))
	}
	if res.TransportErrors > 0 {
		tel.Counter(telemetry.MLoadgenTransport).Add(int64(res.TransportErrors))
	}
}

type remoteSample struct {
	sample
	cacheVerdict string
}

// planRemote POSTs one plan request, absorbing 429s by honoring (a
// capped) Retry-After and re-attempting. It returns the sample, how many
// 429s were absorbed, and an error only for transport failures or
// terminal statuses.
func planRemote(ctx context.Context, client *http.Client, base, tenant string, req *api.PlanRequest) (remoteSample, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return remoteSample{}, 0, err
	}
	retried := 0
	t0 := time.Now()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return remoteSample{}, retried, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/plan", bytes.NewReader(body))
		if err != nil {
			return remoteSample{}, retried, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(api.TenantHeader, tenant)
		resp, err := client.Do(hreq)
		if err != nil {
			return remoteSample{}, retried, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			var env api.ErrorResponse
			_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&env)
			resp.Body.Close()
			retried++
			pause := time.Duration(env.RetryAfterMS) * time.Millisecond
			if pause <= 0 || pause > maxRetryPause {
				pause = maxRetryPause
			}
			select {
			case <-time.After(pause):
			case <-ctx.Done():
				return remoteSample{}, retried, ctx.Err()
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			return remoteSample{}, retried, fmt.Errorf("loadgen: %s: %s", resp.Status, bytes.TrimSpace(b))
		}
		var planResp api.PlanResponse
		err = json.NewDecoder(resp.Body).Decode(&planResp)
		resp.Body.Close()
		if err != nil {
			return remoteSample{}, retried, err
		}
		s := remoteSample{
			sample: sample{
				total:   time.Since(t0),
				queue:   headerNs(resp.Header.Get(api.QueueHeader)),
				service: headerNs(resp.Header.Get(api.ServiceHeader)),
				run:     planResp.Run,
			},
			cacheVerdict: resp.Header.Get(api.CacheHeader),
		}
		return s, retried, nil
	}
	return remoteSample{}, retried, fmt.Errorf("loadgen: gave up after %d rate-limited attempts", maxAttempts)
}

func headerNs(v string) time.Duration {
	n, _ := strconv.ParseInt(v, 10, 64)
	return time.Duration(n)
}
