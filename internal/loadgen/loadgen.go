// Package loadgen drives the planning engine at a sustained request
// rate: a seeded, weighted mix of job shapes is replayed by a fixed pool
// of concurrent tenants, every plan flowing through one shared
// DAG-template cache and one shared prediction cache. The output is the
// planner's capacity profile — sustained plans/sec, latency quantiles,
// and cache hit rates — the numbers a multi-tenant planning service is
// sized by.
//
// The workload sequence is deterministic: the shape planned as request i
// is a pure function of (Seed, i), independent of worker scheduling, so
// two runs with the same spec plan the same multiset of jobs and every
// plan is bit-identical to a standalone Plan call for that shape.
package loadgen

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/qos"
	"astra/internal/telemetry"
	"astra/internal/workload"
)

// Shape is one job kind in the replayed mix.
type Shape struct {
	// Name labels the shape in reports.
	Name string
	// Job is the workload planned for this shape.
	Job workload.Job
	// Objective is the planning goal submitted with the job.
	Objective optimizer.Objective
	// Weight is the shape's relative frequency in the mix (<= 0 treated
	// as 1).
	Weight int
}

// Spec configures one load run.
type Spec struct {
	// Shapes is the weighted mix; at least one is required.
	Shapes []Shape
	// Concurrency is the number of simultaneous tenants (<= 0: 1). Each
	// tenant runs a serial inner search; cross-tenant concurrency is the
	// parallelism under test.
	Concurrency int
	// MaxPlans stops the run after this many plans. Zero means no count
	// bound (Duration must then be set).
	MaxPlans int
	// Duration stops the run after this much wall time (checked between
	// plans). Zero means no time bound (MaxPlans must then be set).
	Duration time.Duration
	// Seed fixes the shape sequence; two runs with equal Seed and shapes
	// plan the same multiset of jobs.
	Seed int64
	// Templates and Cache are the shared planning caches. Left nil,
	// fresh ones are created for the run, so the report includes the
	// cold ramp-up.
	Templates *optimizer.TemplateCache
	Cache     *model.PredictionCache
	// Tel, when non-nil, receives pool and planner telemetry.
	Tel *telemetry.Registry
	// Solver selects the search strategy (default optimizer.Auto).
	Solver optimizer.Solver
	// RunEvery, when > 0, executes every RunEvery-th planned request on a
	// fresh simulated platform with a streaming QoS monitor attached
	// (ExecuteMonitored). Which requests execute is a pure function of the
	// request index, so a count-bounded run executes a deterministic set.
	RunEvery int
	// SLOFactor scales each executed run's deadline relative to its
	// predicted JCT (<= 0: 1.05).
	SLOFactor float64
	// Ledger, when non-nil, aggregates executed runs' SLO outcomes
	// per shape (a fresh one is created when RunEvery > 0 and none is
	// passed, so Result SLO accounting always works).
	Ledger *qos.Ledger
	// TargetURL switches the driver into remote-client mode: instead of
	// planning in-process, every request is POSTed to a running
	// astra-server at this base URL ("http://host:port"). Templates,
	// Cache, and Solver are then server-side concerns and ignored here.
	TargetURL string
	// Tenants spreads remote requests across this many tenant identities
	// ("tenant-0" .. "tenant-N-1") via the X-Astra-Tenant header (<= 0:
	// 1). Local runs plan anonymously and ignore it.
	Tenants int
}

// Result is the run's capacity profile.
type Result struct {
	Plans       int           `json:"plans"`
	Errors      int           `json:"errors"`
	Concurrency int           `json:"concurrency"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	PlansPerSec float64       `json:"plans_per_sec"`

	// Per-plan end-to-end latency quantiles (queue wait + service time;
	// in remote mode also transport).
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`

	// Queue wait vs service time, separated. Locally there is no accept
	// queue, so queue quantiles are zero and service equals plan latency;
	// remotely both come from the server's X-Astra-Queue-Ns /
	// X-Astra-Service-Ns timing headers.
	QueueP50   time.Duration `json:"queue_p50_ns"`
	QueueP95   time.Duration `json:"queue_p95_ns"`
	QueueP99   time.Duration `json:"queue_p99_ns"`
	ServiceP50 time.Duration `json:"service_p50_ns"`
	ServiceP95 time.Duration `json:"service_p95_ns"`
	ServiceP99 time.Duration `json:"service_p99_ns"`

	// Remote-mode outcome counters: 429 responses absorbed by the retry
	// loop, requests abandoned on transport failure, and the server's
	// response-cache verdicts as seen through X-Astra-Cache.
	RateLimited     int `json:"rate_limited"`
	TransportErrors int `json:"transport_errors"`
	RespCacheHits   int `json:"respcache_hits"`
	RespCacheMisses int `json:"respcache_misses"`

	// Cache traffic over the run (deltas for caches the run created,
	// cumulative totals for caches passed in).
	TemplateStats     optimizer.TemplateStats `json:"template_stats"`
	TemplateHitRate   float64                 `json:"template_hit_rate"`
	PredictionHits    uint64                  `json:"prediction_hits"`
	PredictionMisses  uint64                  `json:"prediction_misses"`
	PredictionHitRate float64                 `json:"prediction_hit_rate"`

	// PerShape counts how many plans each shape received.
	PerShape map[string]int `json:"per_shape"`

	// SLO accounting for executed runs (RunEvery > 0): totals plus the
	// per-shape attainment split.
	Runs             int                 `json:"runs"`
	DeadlineAttained int                 `json:"deadline_attained"`
	DeadlineBreached int                 `json:"deadline_breached"`
	SLOPerShape      map[string]ShapeSLO `json:"slo_per_shape,omitempty"`
}

// ShapeSLO is one shape's deadline-attainment split across executed runs.
type ShapeSLO struct {
	Runs     int `json:"runs"`
	Attained int `json:"attained"`
	Breached int `json:"breached"`
}

// DefaultMix is the standard four-shape tenant mix: frequent small
// word counts, occasional large sorts and queries — the recurring-shape
// regime the template cache exists for.
func DefaultMix() []Shape {
	return []Shape{
		{Name: "wordcount-1gb", Job: workload.WordCount1GB(), Objective: minTime(0.01), Weight: 4},
		{Name: "wordcount-10gb", Job: workload.WordCount10GB(), Objective: minTime(0.05), Weight: 2},
		{Name: "sort-100gb", Job: workload.Sort100GB(), Objective: minTime(1), Weight: 2},
		{Name: "query-25gb", Job: workload.Query25GB(), Objective: minTime(0.25), Weight: 1},
	}
}

func minTime(budget float64) optimizer.Objective {
	return optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: pricing.USD(budget)}
}

// MixByNames filters DefaultMix to the named shapes, preserving weights.
func MixByNames(names []string) ([]Shape, error) {
	all := DefaultMix()
	byName := make(map[string]Shape, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	var mix []Shape
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown shape %q (have %s)", n, shapeNames(all))
		}
		mix = append(mix, s)
	}
	return mix, nil
}

func shapeNames(shapes []Shape) string {
	out := ""
	for i, s := range shapes {
		if i > 0 {
			out += ", "
		}
		out += s.Name
	}
	return out
}

// splitmix64 is the pure per-index hash behind the deterministic shape
// sequence (Vigna's SplitMix64 finalizer).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shapeFor picks the shape of request i: a weighted draw that is a pure
// function of (seed, i), so the sequence is scheduling-independent.
func shapeFor(shapes []Shape, weights []int, total int, seed int64, i int) int {
	r := int(splitmix64(uint64(seed)^(uint64(i)*0x5851f42d4c957f2d)) % uint64(total))
	for s, w := range weights {
		if r < w {
			return s
		}
		r -= w
	}
	return len(shapes) - 1
}

// Run replays the spec's mix and reports the capacity profile. Per-plan
// failures are counted (Result.Errors), not fatal; Run returns an error
// only for an invalid spec or a cancelled context.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if len(spec.Shapes) == 0 {
		return nil, fmt.Errorf("loadgen: no shapes in mix")
	}
	if spec.MaxPlans <= 0 && spec.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: need MaxPlans or Duration")
	}
	if spec.TargetURL != "" {
		return runRemote(ctx, spec)
	}
	workers := spec.Concurrency
	if workers <= 0 {
		workers = 1
	}
	tc := spec.Templates
	if tc == nil {
		tc = optimizer.NewTemplateCache(0)
	}
	pc := spec.Cache
	if pc == nil {
		pc = model.NewPredictionCache()
	}

	weights := make([]int, len(spec.Shapes))
	total := 0
	for i, s := range spec.Shapes {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}

	// Pre-resolve per-shape parameterizations once; the planner per
	// request is then cheap to construct.
	params := make([]model.Params, len(spec.Shapes))
	for i, s := range spec.Shapes {
		params[i] = model.DefaultParams(s.Job)
	}

	maxPlans := spec.MaxPlans
	if maxPlans <= 0 {
		// Time-bounded run: bound the index space generously; the
		// deadline stops the claim loop long before it drains.
		maxPlans = 1 << 30
	}
	var deadline time.Time
	if spec.Duration > 0 {
		deadline = time.Now().Add(spec.Duration)
	}

	if spec.Tel != nil {
		ctx = telemetry.NewContext(ctx, spec.Tel)
	}

	ledger := spec.Ledger
	if ledger == nil && spec.RunEvery > 0 {
		ledger = qos.NewLedger()
	}

	perWorkerLat := make([][]time.Duration, workers)
	perWorkerShape := make([][]int64, workers)
	perWorkerSLO := make([][]ShapeSLO, workers)
	for w := range perWorkerShape {
		perWorkerShape[w] = make([]int64, len(spec.Shapes))
		perWorkerSLO[w] = make([]ShapeSLO, len(spec.Shapes))
	}
	var next, planned, failed atomic.Int64

	// Tenants are plain goroutines, not the planning pool: a load driver
	// must honor the requested concurrency even when it oversubscribes
	// the cores — queueing delay under oversubscription is part of the
	// latency profile being measured.
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= maxPlans {
					return
				}
				si := shapeFor(spec.Shapes, weights, total, spec.Seed, i)
				pl := optimizer.New(params[si])
				pl.Solver = spec.Solver
				pl.Parallelism = 1
				pl.Templates, pl.Cache = tc, pc
				pl.Tel = spec.Tel
				t0 := time.Now()
				plan, perr := pl.PlanContext(ctx, spec.Shapes[si].Objective)
				lat := time.Since(t0)
				if perr != nil {
					failed.Add(1)
					continue
				}
				planned.Add(1)
				perWorkerLat[w] = append(perWorkerLat[w], lat)
				perWorkerShape[w][si]++
				if spec.RunEvery > 0 && i%spec.RunEvery == 0 {
					// Execute this plan under a QoS monitor; run failures
					// count like plan failures, SLO outcomes settle into
					// the shared ledger and the per-shape split.
					rep, mon, rerr := ExecuteMonitored(params[si],
						spec.Shapes[si].Name, plan.Config, spec.SLOFactor, ledger)
					if rerr != nil {
						failed.Add(1)
						continue
					}
					_ = rep
					perWorkerSLO[w][si].Runs++
					if mon.State() == qos.Breached {
						perWorkerSLO[w][si].Breached++
					} else {
						perWorkerSLO[w][si].Attained++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var lats []time.Duration
	for _, l := range perWorkerLat {
		lats = append(lats, l...)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })

	res := &Result{
		Plans:       int(planned.Load()),
		Errors:      int(failed.Load()),
		Concurrency: workers,
		Elapsed:     elapsed,
		PerShape:    make(map[string]int, len(spec.Shapes)),
	}
	if elapsed > 0 {
		res.PlansPerSec = float64(res.Plans) / elapsed.Seconds()
	}
	if n := len(lats); n > 0 {
		res.P50 = lats[n/2]
		res.P95 = lats[min(n-1, n*95/100)]
		res.P99 = lats[min(n-1, n*99/100)]
		// No accept queue in-process: service time is the whole latency.
		res.ServiceP50, res.ServiceP95, res.ServiceP99 = res.P50, res.P95, res.P99
	}
	publishClientTiming(spec.Tel, res)
	for si, s := range spec.Shapes {
		var c int64
		for w := range perWorkerShape {
			c += perWorkerShape[w][si]
		}
		res.PerShape[s.Name] = int(c)
	}
	if spec.RunEvery > 0 {
		res.SLOPerShape = make(map[string]ShapeSLO, len(spec.Shapes))
		for si, s := range spec.Shapes {
			var agg ShapeSLO
			for w := range perWorkerSLO {
				agg.Runs += perWorkerSLO[w][si].Runs
				agg.Attained += perWorkerSLO[w][si].Attained
				agg.Breached += perWorkerSLO[w][si].Breached
			}
			res.SLOPerShape[s.Name] = agg
			res.Runs += agg.Runs
			res.DeadlineAttained += agg.Attained
			res.DeadlineBreached += agg.Breached
		}
		ledger.Publish(spec.Tel)
	}
	res.TemplateStats = tc.Stats()
	res.TemplateHitRate = res.TemplateStats.HitRate()
	res.PredictionHits, res.PredictionMisses = pc.Stats()
	if t := res.PredictionHits + res.PredictionMisses; t > 0 {
		res.PredictionHitRate = float64(res.PredictionHits) / float64(t)
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
