package loadgen

import (
	"context"
	"testing"
	"time"

	"astra/internal/optimizer"
	"astra/internal/qos"
)

// TestShapeSequenceDeterministic asserts the shape of request i is a pure
// function of (seed, i) — scheduling-independent replay.
func TestShapeSequenceDeterministic(t *testing.T) {
	shapes := DefaultMix()
	weights := make([]int, len(shapes))
	total := 0
	for i, s := range shapes {
		weights[i] = s.Weight
		total += s.Weight
	}
	seen := make(map[int]int, len(shapes))
	for i := 0; i < 10000; i++ {
		a := shapeFor(shapes, weights, total, 42, i)
		b := shapeFor(shapes, weights, total, 42, i)
		if a != b {
			t.Fatalf("shapeFor(seed=42, i=%d) unstable: %d then %d", i, a, b)
		}
		seen[a]++
	}
	// Every shape must appear, and roughly in weight proportion: the
	// heaviest (weight 4 of 9) should clearly outnumber the lightest
	// (weight 1 of 9).
	for si := range shapes {
		if seen[si] == 0 {
			t.Fatalf("shape %d never drawn in 10000 requests", si)
		}
	}
	if seen[0] <= seen[3] {
		t.Fatalf("weight-4 shape drawn %d times, weight-1 shape %d — weighting is not applied", seen[0], seen[3])
	}
	// A different seed must give a different sequence.
	diff := 0
	for i := 0; i < 1000; i++ {
		if shapeFor(shapes, weights, total, 42, i) != shapeFor(shapes, weights, total, 43, i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed does not influence the shape sequence")
	}
}

// TestRunMaxPlans drives a small fixed-size run and checks the capacity
// report's accounting.
func TestRunMaxPlans(t *testing.T) {
	const plans = 30
	res, err := Run(context.Background(), Spec{
		Shapes:      DefaultMix(),
		Concurrency: 3,
		MaxPlans:    plans,
		Seed:        1,
		Solver:      optimizer.Auto,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plans != plans || res.Errors != 0 {
		t.Fatalf("planned %d (errors %d), want %d clean plans", res.Plans, res.Errors, plans)
	}
	sum := 0
	for _, c := range res.PerShape {
		sum += c
	}
	if sum != plans {
		t.Fatalf("per-shape counts sum to %d, want %d", sum, plans)
	}
	if res.PlansPerSec <= 0 || res.Elapsed <= 0 {
		t.Fatalf("throughput not computed: %.1f plans/sec over %v", res.PlansPerSec, res.Elapsed)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("latency quantiles malformed: p50=%v p99=%v", res.P50, res.P99)
	}
	// Thirty plans over four shapes through fresh caches: a handful of
	// builds, the rest hits.
	if res.TemplateStats.Builds == 0 || res.TemplateHitRate == 0 {
		t.Fatalf("template cache saw no traffic: %+v", res.TemplateStats)
	}
	if res.TemplateStats.Hits+res.TemplateStats.Misses < plans {
		t.Fatalf("template traffic %d below plan count %d", res.TemplateStats.Hits+res.TemplateStats.Misses, plans)
	}
}

// TestRunDuration checks the time-bounded mode terminates and reports.
func TestRunDuration(t *testing.T) {
	res, err := Run(context.Background(), Spec{
		Shapes:      DefaultMix()[:1], // fastest shape only
		Concurrency: 2,
		Duration:    100 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plans == 0 {
		t.Fatal("duration-bounded run planned nothing")
	}
}

// TestSpecValidation rejects underspecified runs and unknown mix names.
func TestSpecValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{MaxPlans: 1}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := Run(context.Background(), Spec{Shapes: DefaultMix()}); err == nil {
		t.Error("run with neither MaxPlans nor Duration accepted")
	}
	if _, err := MixByNames([]string{"sort-100gb", "no-such-shape"}); err == nil {
		t.Error("unknown shape name accepted")
	}
	mix, err := MixByNames([]string{"sort-100gb", "query-25gb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].Name != "sort-100gb" {
		t.Fatalf("MixByNames returned %+v", mix)
	}
}

// TestRunExecutesMonitoredRuns drives a mixed plan/execute run and checks
// the SLO accounting: every RunEvery-th request executes under a QoS
// monitor, outcomes split into attained/breached, and the shared ledger
// sees the same totals.
func TestRunExecutesMonitoredRuns(t *testing.T) {
	const plans = 8
	ledger := qos.NewLedger()
	res, err := Run(context.Background(), Spec{
		Shapes:      DefaultMix()[:1], // fastest shape only
		Concurrency: 2,
		MaxPlans:    plans,
		Seed:        1,
		RunEvery:    2,
		Ledger:      ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("RunEvery=2 over 8 plans executed nothing")
	}
	if res.Runs != res.DeadlineAttained+res.DeadlineBreached {
		t.Fatalf("runs %d != attained %d + breached %d",
			res.Runs, res.DeadlineAttained, res.DeadlineBreached)
	}
	// Profiled-mode execution replays the profile the model was fit on,
	// so a 5%-grace deadline must be attained on a clean platform.
	if res.DeadlineAttained == 0 {
		t.Fatal("no executed run attained its deadline")
	}
	var shape ShapeSLO
	for _, s := range res.SLOPerShape {
		shape.Runs += s.Runs
		shape.Attained += s.Attained
		shape.Breached += s.Breached
	}
	if shape.Runs != res.Runs || shape.Attained != res.DeadlineAttained {
		t.Fatalf("per-shape SLO %+v does not sum to totals %d/%d",
			shape, res.Runs, res.DeadlineAttained)
	}
	lsnap := ledger.Snapshot()
	if lsnap.Runs != res.Runs || lsnap.Attained != res.DeadlineAttained {
		t.Fatalf("ledger saw %d/%d, result says %d/%d",
			lsnap.Runs, lsnap.Attained, res.Runs, res.DeadlineAttained)
	}
	for _, e := range lsnap.Entries {
		if e.Tenant != "loadgen" {
			t.Fatalf("ledger entry under tenant %q, want loadgen", e.Tenant)
		}
	}
}
