package loadgen

import (
	"time"

	"astra/internal/flight"
	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/objectstore"
	"astra/internal/qos"
	"astra/internal/simtime"
	"astra/internal/workload"
)

// ExecuteMonitored runs one planned configuration on a fresh simulated
// platform with a streaming QoS monitor attached, settling the outcome
// into the shared ledger under the "loadgen" tenant and the shape's name.
// The run's SLO deadline is sloFactor x the predicted JCT (<= 0 defaults
// to 1.05 — a 5% grace over the plan's promise), so attainment measures
// how reliably execution honors the planner's Eq. 20 contract under the
// fleet's shapes. Each call builds its own scheduler, store and platform,
// so concurrent tenants can execute monitored runs independently.
func ExecuteMonitored(p model.Params, shapeName string, cfg mapreduce.Config,
	sloFactor float64, ledger *qos.Ledger) (*mapreduce.Report, *qos.Monitor, error) {
	return ExecuteMonitoredAs(p, "loadgen", shapeName, cfg, sloFactor, ledger)
}

// ExecuteMonitoredAs is ExecuteMonitored with the ledger tenant made
// explicit, so the planning service can settle executed requests under
// the calling tenant's SLO row rather than a shared synthetic one.
func ExecuteMonitoredAs(p model.Params, tenant, shapeName string, cfg mapreduce.Config,
	sloFactor float64, ledger *qos.Ledger) (*mapreduce.Report, *qos.Monitor, error) {
	if sloFactor <= 0 {
		sloFactor = 1.05
	}
	bd, err := model.NewExact(p).PredictBreakdown(cfg)
	if err != nil {
		return nil, nil, err
	}
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth:      p.BandwidthBps,
		RequestLatency: p.RequestLatency,
		Pricing:        p.Sheet.Store,
	})
	plt := lambda.New(sched, store, lambda.Config{
		Sheet:           p.Sheet,
		Speed:           p.Speed,
		DispatchLatency: p.DispatchLatency,
		DisableTimeout:  true,
		MaxRetries:      8,
	})
	keys, err := workload.SeedProfiled(store, "input", p.Job)
	if err != nil {
		return nil, nil, err
	}
	mon := qos.New(qos.Options{
		Deadline: time.Duration(sloFactor * float64(bd.JCT)),
		Tenant:   tenant,
		Job:      shapeName,
		Ledger:   ledger,
	})
	mon.EnsurePlan(bd, p.Sheet)
	spec := mapreduce.JobSpec{
		Workload:  p.Job,
		Bucket:    "input",
		InputKeys: keys,
		Mode:      mapreduce.Profiled,
		Recorder:  flight.New(),
		QoS:       mon,
	}
	driver := mapreduce.NewDriver(plt)
	var rep *mapreduce.Report
	var runErr error
	if err := sched.Run(func(proc *simtime.Proc) {
		rep, runErr = driver.Run(proc, spec, cfg)
	}); err != nil {
		return nil, nil, err
	}
	if runErr != nil {
		return nil, nil, runErr
	}
	return rep, mon, nil
}
