package loadgen_test

import (
	"context"
	"testing"
	"time"

	"astra/internal/loadgen"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/qos"
	"astra/internal/server"
	"astra/internal/telemetry"
)

// TestRemoteDriver is the client-mode integration gate: the driver
// replays its mix against a live astra-server, absorbs 429s from a tight
// quota, splits latency via the server's timing headers, and observes
// the server-side response cache through X-Astra-Cache.
func TestRemoteDriver(t *testing.T) {
	tel := telemetry.New()
	svc := server.NewService(server.ServiceConfig{
		Templates: optimizer.NewTemplateCache(0),
		Cache:     model.NewPredictionCache(),
		Tel:       tel,
		Ledger:    qos.NewLedger(),
	})
	srv := server.New(server.Config{
		Service:   svc,
		Telemetry: tel,
		// A quota tight enough that the retry loop must absorb some 429s,
		// but generous enough that the run still finishes promptly.
		Quota: server.TenantQuota{Rate: 200, Burst: 5, MaxInFlight: 4, MaxQueue: 16},
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	clientTel := telemetry.New()
	res, err := loadgen.Run(context.Background(), loadgen.Spec{
		Shapes: []loadgen.Shape{
			loadgen.DefaultMix()[0], // wordcount-1gb
			loadgen.DefaultMix()[1], // wordcount-10gb
		},
		Concurrency: 4,
		Tenants:     2,
		MaxPlans:    40,
		Seed:        7,
		Tel:         clientTel,
		TargetURL:   srv.URL(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransportErrors != 0 {
		t.Fatalf("transport errors = %d, want 0", res.TransportErrors)
	}
	if res.Plans != 40 {
		t.Fatalf("plans = %d (%d errors), want 40", res.Plans, res.Errors)
	}
	// Two distinct fingerprints: everything past the two cold misses is a
	// server-side response-cache hit.
	if res.RespCacheMisses != 2 || res.RespCacheHits != 38 {
		t.Fatalf("respcache hits/misses = %d/%d, want 38/2", res.RespCacheHits, res.RespCacheMisses)
	}
	if res.ServiceP50 < 0 || res.QueueP50 < 0 {
		t.Fatalf("negative timing: queue %v service %v", res.QueueP50, res.ServiceP50)
	}
	// The client published its view onto its own registry.
	if clientTel.Gauge(telemetry.MLoadgenServiceTime).Value() < 0 {
		t.Fatal("service-time gauge unpublished")
	}
	if got := res.PerShape["wordcount-1gb"] + res.PerShape["wordcount-10gb"]; got != 40 {
		t.Fatalf("per-shape accounting = %v", res.PerShape)
	}
	// Server-side accounting agrees with the client's view.
	if st := srv.RespCache().Stats(); st.Hits != 38 || st.Misses != 2 {
		t.Fatalf("server respcache stats = %+v", st)
	}
}

// TestLocalRunSplitsTiming: in-process runs report the queue/service
// split too (no queue locally, so service equals total latency).
func TestLocalRunSplitsTiming(t *testing.T) {
	res, err := loadgen.Run(context.Background(), loadgen.Spec{
		Shapes:      loadgen.DefaultMix()[:1],
		Concurrency: 2,
		MaxPlans:    8,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueP95 != 0 {
		t.Fatalf("local queue wait = %v, want 0", res.QueueP95)
	}
	if res.ServiceP50 != res.P50 || res.ServiceP99 != res.P99 {
		t.Fatalf("local service quantiles %v/%v diverge from totals %v/%v",
			res.ServiceP50, res.ServiceP99, res.P50, res.P99)
	}
}
