package api

import (
	"errors"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"astra/internal/optimizer"
)

func validPlan() PlanRequest {
	return PlanRequest{
		Workload:    "wordcount",
		NumObjects:  10,
		ObjectBytes: 1 << 20,
		Objective:   ObjectiveSpec{Goal: "min_time", BudgetUSD: 1},
	}
}

func TestPlanRequestResolve(t *testing.T) {
	req := validPlan()
	job, obj, solver, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if job.Profile.Name != "wordcount" || job.NumObjects != 10 || job.ObjectSize != 1<<20 {
		t.Fatalf("job = %+v", job)
	}
	if obj.Goal != optimizer.MinTimeUnderBudget || solver != optimizer.Auto {
		t.Fatalf("obj %+v solver %v", obj, solver)
	}

	// total_bytes splits evenly across objects.
	req = validPlan()
	req.ObjectBytes = 0
	req.TotalBytes = 100 << 20
	job, _, _, err = req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if job.ObjectSize != 10<<20 {
		t.Fatalf("object size = %d, want %d", job.ObjectSize, 10<<20)
	}
}

func TestPlanRequestResolveRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PlanRequest)
	}{
		{"unknown workload", func(r *PlanRequest) { r.Workload = "nope" }},
		{"zero objects", func(r *PlanRequest) { r.NumObjects = 0 }},
		{"both sizes", func(r *PlanRequest) { r.TotalBytes = 1 << 20 }},
		{"no size", func(r *PlanRequest) { r.ObjectBytes = 0 }},
		{"bad goal", func(r *PlanRequest) { r.Objective.Goal = "fastest" }},
		{"min_time with deadline", func(r *PlanRequest) { r.Objective.Deadline = "10s" }},
		{"bad solver", func(r *PlanRequest) { r.Solver = "quantum" }},
	}
	for _, tc := range cases {
		req := validPlan()
		tc.mutate(&req)
		if _, _, _, err := req.Resolve(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", tc.name, err)
		}
	}
}

func TestObjectiveSpecMinCost(t *testing.T) {
	obj, err := ObjectiveSpec{Goal: "min_cost", Deadline: "90s"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if obj.Goal != optimizer.MinCostUnderDeadline || obj.Deadline != 90*time.Second {
		t.Fatalf("obj = %+v", obj)
	}
	if _, err := (ObjectiveSpec{Goal: "min_cost", Deadline: "soon"}).Resolve(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad deadline err = %v", err)
	}
	if _, err := (ObjectiveSpec{Goal: "min_cost", Deadline: "90s", BudgetUSD: 1}).Resolve(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("mixed constraint err = %v", err)
	}
}

func TestDecodeStrict(t *testing.T) {
	if _, err := DecodePlanRequest(strings.NewReader(`{"workload":"wordcount","wat":1}`)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown field err = %v", err)
	}
	if _, err := DecodePlanRequest(strings.NewReader(`{"workload":"wordcount"} garbage`)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("trailing data err = %v", err)
	}
	if _, err := DecodePlanBatchRequest(strings.NewReader(`{"requests":[]}`)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty batch err = %v", err)
	}
}

// TestFingerprintStability pins the cache-key contract: tenant never
// participates, equivalent sizes collapse to one key, and any
// plan-changing field separates keys.
func TestFingerprintStability(t *testing.T) {
	a, b := validPlan(), validPlan()
	a.Tenant, b.Tenant = "acme", "globex"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("tenant leaked into the fingerprint")
	}
	// total_bytes and the equivalent object_bytes share a key.
	b = validPlan()
	b.ObjectBytes = 0
	b.TotalBytes = 10 << 20
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equivalent sizes differ:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	for name, mutate := range map[string]func(*PlanRequest){
		"workload":  func(r *PlanRequest) { r.Workload = "sort" },
		"objects":   func(r *PlanRequest) { r.NumObjects = 20 },
		"size":      func(r *PlanRequest) { r.ObjectBytes = 2 << 20 },
		"goal":      func(r *PlanRequest) { r.Objective = ObjectiveSpec{Goal: "min_cost", Deadline: "60s"} },
		"budget":    func(r *PlanRequest) { r.Objective.BudgetUSD = 2 },
		"solver":    func(r *PlanRequest) { r.Solver = "yen" },
		"execute":   func(r *PlanRequest) { r.Execute = true },
		"slofactor": func(r *PlanRequest) { r.Execute = true; r.SLOFactor = 1.5 },
	} {
		c := validPlan()
		mutate(&c)
		if c.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
}

func TestFrontierRequestFromQuery(t *testing.T) {
	q := url.Values{}
	q.Set("workload", "sort")
	q.Set("objects", "200")
	q.Set("total_bytes", "1073741824")
	q.Set("size", "16")
	q.Set("tenant", "acme")
	req, err := FrontierRequestFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if req.Workload != "sort" || req.NumObjects != 200 || req.TotalBytes != 1<<30 ||
		req.Size != 16 || req.Tenant != "acme" {
		t.Fatalf("req = %+v", req)
	}
	if _, err := req.Resolve(); err != nil {
		t.Fatal(err)
	}
	q.Set("objects", "many")
	if _, err := FrontierRequestFromQuery(q); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad int err = %v", err)
	}
}

func TestErrorCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrInvalid, http.StatusBadRequest},
		{optimizer.ErrInvalidObjective, http.StatusBadRequest},
		{optimizer.ErrNoFeasiblePlan, http.StatusUnprocessableEntity},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := ErrorCode(tc.err); got != tc.want {
			t.Errorf("ErrorCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestResolveTenant(t *testing.T) {
	if got := ResolveTenant("hdr", "body"); got != "hdr" {
		t.Fatalf("header precedence: %q", got)
	}
	if got := ResolveTenant("", "body"); got != "body" {
		t.Fatalf("body fallback: %q", got)
	}
	if got := ResolveTenant("", ""); got != "anonymous" {
		t.Fatalf("anonymous fallback: %q", got)
	}
}
