// Package api is the typed request/response surface of the Astra
// planning service: the gRPC-shaped structs that internal/server's
// Service interface speaks, together with their canonical JSON encoding,
// strict decoding, validation, and request fingerprinting. Keeping the
// schema in a leaf package lets the HTTP server and the load-driver
// client share one definition (no drift between what the server parses
// and what the client sends) and leaves room to bolt a proto surface
// onto the same structs later.
//
// The error taxonomy is part of the schema: a request that fails to
// parse or validate maps to 400 (ErrInvalid, optimizer.ErrInvalidObjective),
// an objective no configuration satisfies maps to 422
// (optimizer.ErrNoFeasiblePlan), and anything else is a 500. Admission
// rejections (429) and drain rejections (503) are produced by the server
// layer, not by request semantics, so they live there.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"astra/internal/mapreduce"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/qos"
	"astra/internal/workload"
)

// ErrInvalid is wrapped by every request-validation failure, so servers
// can map the whole class to one status code with errors.Is.
var ErrInvalid = errors.New("api: invalid request")

// maxRequestBytes bounds a decoded request body; a planning request is
// a few hundred bytes, so anything near the cap is abuse, not load.
const maxRequestBytes = 1 << 20

// PlanRequest asks for one optimal configuration.
type PlanRequest struct {
	// Tenant identifies the caller for admission control and SLO
	// accounting. The X-Astra-Tenant header takes precedence; left
	// empty everywhere, the server accounts the request to "anonymous".
	Tenant string `json:"tenant,omitempty"`
	// Workload names a calibration profile: wordcount, sort, query,
	// grep, spark-wordcount, or spark-sql.
	Workload string `json:"workload"`
	// NumObjects is the input object count (> 0).
	NumObjects int `json:"num_objects"`
	// TotalBytes sizes the dataset (split evenly across objects).
	// Exactly one of TotalBytes and ObjectBytes must be positive.
	TotalBytes int64 `json:"total_bytes,omitempty"`
	// ObjectBytes sizes each input object directly.
	ObjectBytes int64 `json:"object_bytes,omitempty"`
	// Objective is the planning goal and its constraint.
	Objective ObjectiveSpec `json:"objective"`
	// Solver optionally selects the search strategy: auto (default),
	// algorithm1, yen, rerank, brute, or csp.
	Solver string `json:"solver,omitempty"`
	// Execute additionally runs the chosen plan on a fresh simulated
	// platform under a streaming QoS monitor; the response gains a Run
	// section and the outcome settles into the server's SLO ledger under
	// (tenant, workload). Executed requests bypass the response cache.
	Execute bool `json:"execute,omitempty"`
	// SLOFactor scales an executed run's deadline relative to the
	// predicted JCT (<= 0: the server default, 1.05).
	SLOFactor float64 `json:"slo_factor,omitempty"`
}

// ObjectiveSpec is the wire form of an optimizer.Objective.
type ObjectiveSpec struct {
	// Goal is "min_time" (fastest under budget) or "min_cost" (cheapest
	// under deadline); "time" and "cost" are accepted aliases.
	Goal string `json:"goal"`
	// BudgetUSD constrains min_time plans.
	BudgetUSD float64 `json:"budget_usd,omitempty"`
	// Deadline constrains min_cost plans, as a Go duration string
	// ("90s", "5m").
	Deadline string `json:"deadline,omitempty"`
}

// profiles maps wire workload names to calibration profiles.
func profiles() map[string]workload.Profile {
	return map[string]workload.Profile{
		"wordcount":       workload.WordCount,
		"sort":            workload.Sort,
		"query":           workload.Query,
		"grep":            workload.Grep,
		"spark-wordcount": workload.SparkWordCount,
		"spark-sql":       workload.SparkSQL,
	}
}

// Workloads lists the accepted workload names, sorted.
func Workloads() []string {
	return []string{"grep", "query", "sort", "spark-sql", "spark-wordcount", "wordcount"}
}

// resolveJob validates the shared job fields and builds the workload.Job.
func resolveJob(name string, numObjects int, totalBytes, objectBytes int64) (workload.Job, error) {
	pf, ok := profiles()[strings.ToLower(name)]
	if !ok {
		return workload.Job{}, fmt.Errorf("%w: unknown workload %q (have %s)",
			ErrInvalid, name, strings.Join(Workloads(), ", "))
	}
	if numObjects <= 0 {
		return workload.Job{}, fmt.Errorf("%w: num_objects must be positive, got %d", ErrInvalid, numObjects)
	}
	switch {
	case totalBytes > 0 && objectBytes > 0:
		return workload.Job{}, fmt.Errorf("%w: set total_bytes or object_bytes, not both", ErrInvalid)
	case totalBytes > 0:
		objectBytes = totalBytes / int64(numObjects)
	case objectBytes > 0:
		// already per-object
	default:
		return workload.Job{}, fmt.Errorf("%w: one of total_bytes, object_bytes must be positive", ErrInvalid)
	}
	if objectBytes <= 0 {
		return workload.Job{}, fmt.Errorf("%w: %d objects over %d bytes leaves empty objects", ErrInvalid, numObjects, totalBytes)
	}
	return workload.Job{Profile: pf, NumObjects: numObjects, ObjectSize: objectBytes}, nil
}

// Resolve validates the objective spec into an optimizer.Objective.
func (o ObjectiveSpec) Resolve() (optimizer.Objective, error) {
	switch strings.ToLower(o.Goal) {
	case "min_time", "min-time", "time":
		if o.Deadline != "" {
			return optimizer.Objective{}, fmt.Errorf("%w: min_time takes budget_usd, not deadline", ErrInvalid)
		}
		return optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: pricing.USD(o.BudgetUSD)}, nil
	case "min_cost", "min-cost", "cost":
		if o.BudgetUSD != 0 {
			return optimizer.Objective{}, fmt.Errorf("%w: min_cost takes deadline, not budget_usd", ErrInvalid)
		}
		d, err := time.ParseDuration(o.Deadline)
		if err != nil {
			return optimizer.Objective{}, fmt.Errorf("%w: bad deadline %q: %v", ErrInvalid, o.Deadline, err)
		}
		return optimizer.Objective{Goal: optimizer.MinCostUnderDeadline, Deadline: d}, nil
	default:
		return optimizer.Objective{}, fmt.Errorf("%w: goal must be min_time or min_cost, got %q", ErrInvalid, o.Goal)
	}
}

// ParseSolver maps a wire solver name to the optimizer constant; ""
// selects Auto.
func ParseSolver(name string) (optimizer.Solver, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		return optimizer.Auto, nil
	case "algorithm1", "alg1":
		return optimizer.Algorithm1, nil
	case "yen":
		return optimizer.Yen, nil
	case "rerank":
		return optimizer.Rerank, nil
	case "brute":
		return optimizer.Brute, nil
	case "csp":
		return optimizer.CSP, nil
	default:
		return 0, fmt.Errorf("%w: unknown solver %q", ErrInvalid, name)
	}
}

// Resolve validates the request into the planner's input types. The
// objective is only structurally checked here; Objective.Validate (and
// therefore ErrInvalidObjective) stays with the planner so the wire
// layer and the library agree on one source of truth.
func (r *PlanRequest) Resolve() (workload.Job, optimizer.Objective, optimizer.Solver, error) {
	job, err := resolveJob(r.Workload, r.NumObjects, r.TotalBytes, r.ObjectBytes)
	if err != nil {
		return workload.Job{}, optimizer.Objective{}, 0, err
	}
	obj, err := r.Objective.Resolve()
	if err != nil {
		return workload.Job{}, optimizer.Objective{}, 0, err
	}
	solver, err := ParseSolver(r.Solver)
	if err != nil {
		return workload.Job{}, optimizer.Objective{}, 0, err
	}
	return job, obj, solver, nil
}

// Fingerprint is the canonical response-cache key: a stable rendering of
// every field that changes the plan. Tenant is deliberately excluded —
// planning is tenant-independent, so identical requests from different
// tenants share one cached response. Executed requests bypass the cache
// entirely, but Execute still participates so a stale key can never
// alias the two forms.
func (r *PlanRequest) Fingerprint() string {
	objBytes := r.ObjectBytes
	if r.TotalBytes > 0 && r.NumObjects > 0 {
		objBytes = r.TotalBytes / int64(r.NumObjects)
	}
	return strings.Join([]string{
		"plan",
		strings.ToLower(r.Workload),
		strconv.Itoa(r.NumObjects),
		strconv.FormatInt(objBytes, 10),
		strings.ToLower(r.Objective.Goal),
		strconv.FormatFloat(r.Objective.BudgetUSD, 'g', -1, 64),
		r.Objective.Deadline,
		strings.ToLower(r.Solver),
		strconv.FormatBool(r.Execute),
		strconv.FormatFloat(r.SLOFactor, 'g', -1, 64),
	}, "|")
}

// decodeStrict decodes one JSON document, rejecting unknown fields (so a
// typo'd option is a 400, not a silent default) and trailing garbage.
func decodeStrict(rd io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(rd, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after request body", ErrInvalid)
	}
	return nil
}

// DecodePlanRequest strictly parses one PlanRequest body.
func DecodePlanRequest(rd io.Reader) (*PlanRequest, error) {
	var req PlanRequest
	if err := decodeStrict(rd, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// PlanBatchRequest plans many jobs in one call; results are
// index-aligned with Requests. Per-item Tenant fields are ignored — the
// batch is admitted and accounted as one request from its caller.
type PlanBatchRequest struct {
	Tenant   string        `json:"tenant,omitempty"`
	Requests []PlanRequest `json:"requests"`
}

// DecodePlanBatchRequest strictly parses one batch body.
func DecodePlanBatchRequest(rd io.Reader) (*PlanBatchRequest, error) {
	var req PlanBatchRequest
	if err := decodeStrict(rd, &req); err != nil {
		return nil, err
	}
	if len(req.Requests) == 0 {
		return nil, fmt.Errorf("%w: batch has no requests", ErrInvalid)
	}
	return &req, nil
}

// FrontierRequest asks for a job's time/cost Pareto frontier.
type FrontierRequest struct {
	Tenant      string `json:"tenant,omitempty"`
	Workload    string `json:"workload"`
	NumObjects  int    `json:"num_objects"`
	TotalBytes  int64  `json:"total_bytes,omitempty"`
	ObjectBytes int64  `json:"object_bytes,omitempty"`
	// Size is the target number of frontier points (<= 0: the sweep
	// default, 24).
	Size int `json:"size,omitempty"`
}

// Resolve validates the request into the sweep's job.
func (r *FrontierRequest) Resolve() (workload.Job, error) {
	return resolveJob(r.Workload, r.NumObjects, r.TotalBytes, r.ObjectBytes)
}

// Fingerprint is the canonical cache key for a non-streaming frontier.
func (r *FrontierRequest) Fingerprint() string {
	objBytes := r.ObjectBytes
	if r.TotalBytes > 0 && r.NumObjects > 0 {
		objBytes = r.TotalBytes / int64(r.NumObjects)
	}
	return strings.Join([]string{
		"frontier",
		strings.ToLower(r.Workload),
		strconv.Itoa(r.NumObjects),
		strconv.FormatInt(objBytes, 10),
		strconv.Itoa(r.Size),
	}, "|")
}

// DecodeFrontierRequest strictly parses one frontier body.
func DecodeFrontierRequest(rd io.Reader) (*FrontierRequest, error) {
	var req FrontierRequest
	if err := decodeStrict(rd, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// FrontierRequestFromQuery builds a FrontierRequest from URL query
// parameters, the GET form of the endpoint:
//
//	GET /v1/frontier?workload=sort&objects=200&total_bytes=107374182400&size=16
func FrontierRequestFromQuery(q url.Values) (*FrontierRequest, error) {
	req := &FrontierRequest{
		Tenant:   q.Get("tenant"),
		Workload: q.Get("workload"),
	}
	for _, f := range []struct {
		key string
		dst *int64
	}{
		{"total_bytes", &req.TotalBytes},
		{"object_bytes", &req.ObjectBytes},
	} {
		if v := q.Get(f.key); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad %s %q", ErrInvalid, f.key, v)
			}
			*f.dst = n
		}
	}
	for _, f := range []struct {
		key string
		dst *int
	}{
		{"objects", &req.NumObjects},
		{"size", &req.Size},
	} {
		if v := q.Get(f.key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("%w: bad %s %q", ErrInvalid, f.key, v)
			}
			*f.dst = n
		}
	}
	return req, nil
}

// TenantSLORequest asks for one tenant's SLO ledger rows.
type TenantSLORequest struct {
	Tenant string `json:"tenant"`
}

// PlanResponse is one planned configuration. Wall-clock search time is
// deliberately absent so identical requests produce identical bodies —
// the property the response cache and the determinism tests lean on.
type PlanResponse struct {
	Config              mapreduce.Config `json:"config"`
	PredictedJCTSeconds float64          `json:"predicted_jct_seconds"`
	PredictedCostUSD    float64          `json:"predicted_cost_usd"`
	Solver              string           `json:"solver"`
	Search              SearchSummary    `json:"search"`
	Explain             string           `json:"explain,omitempty"`
	Run                 *RunOutcome      `json:"run,omitempty"`
}

// SearchSummary is the deterministic subset of the plan's search stats.
type SearchSummary struct {
	CalibrationRounds int64 `json:"calibration_rounds"`
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	DAGBuilds         int64 `json:"dag_builds"`
}

// RunOutcome reports an executed plan's measured result against its SLO.
type RunOutcome struct {
	MeasuredJCTSeconds float64 `json:"measured_jct_seconds"`
	MeasuredCostUSD    float64 `json:"measured_cost_usd"`
	DeadlineSeconds    float64 `json:"deadline_seconds"`
	Attained           bool    `json:"attained"`
}

// PlanBatchResponse carries index-aligned per-request outcomes.
type PlanBatchResponse struct {
	Results []BatchResult `json:"results"`
}

// BatchResult is one batch slot: exactly one of Plan and Error is set.
type BatchResult struct {
	Plan  *PlanResponse `json:"plan,omitempty"`
	Error string        `json:"error,omitempty"`
	// Code is the per-request status under the service's error taxonomy
	// (400 invalid, 422 infeasible, 500 otherwise); 0 when Plan is set.
	Code int `json:"code,omitempty"`
}

// FrontierUpdate is one anytime snapshot on the wire; the final update
// of a stream byte-matches the body a non-streaming request returns.
type FrontierUpdate struct {
	Phase  int             `json:"phase"`
	Final  bool            `json:"final"`
	Points []FrontierPoint `json:"points"`
	Stats  FrontierStats   `json:"stats"`
}

// FrontierPoint is one Pareto point on the wire.
type FrontierPoint struct {
	JCTSeconds float64          `json:"jct_seconds"`
	CostUSD    float64          `json:"cost_usd"`
	Config     mapreduce.Config `json:"config"`
}

// FrontierStats is the deterministic subset of the sweep's stats
// (wall-clock and cache traffic omitted: both vary run to run).
type FrontierStats struct {
	Phases      int64 `json:"phases"`
	Searches    int64 `json:"searches"`
	Pruned      int64 `json:"pruned"`
	Evaluations int64 `json:"evaluations"`
}

// FrontierResponse is the completed sweep: its final update.
type FrontierResponse struct {
	Final FrontierUpdate
}

// TenantSLOResponse is one tenant's slice of the SLO ledger.
type TenantSLOResponse struct {
	Tenant   string            `json:"tenant"`
	Runs     int               `json:"runs"`
	Attained int               `json:"attained"`
	Breached int               `json:"breached"`
	Entries  []qos.LedgerEntry `json:"entries,omitempty"`
}

// ErrorResponse is the JSON error envelope every non-2xx status carries.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429s: the precise wait the integer-second
	// Retry-After header rounds up from.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorCode maps a service error onto the taxonomy: 400 for requests
// that are malformed or carry an invalid objective, 422 for objectives
// no configuration satisfies, 500 otherwise.
func ErrorCode(err error) int {
	switch {
	case errors.Is(err, ErrInvalid), errors.Is(err, optimizer.ErrInvalidObjective):
		return http.StatusBadRequest
	case errors.Is(err, optimizer.ErrNoFeasiblePlan):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// Tenant resolution order: header, then body field, then "anonymous".
func ResolveTenant(header, body string) string {
	if header != "" {
		return header
	}
	if body != "" {
		return body
	}
	return "anonymous"
}

// TenantHeader is the HTTP header carrying the caller's tenant id.
const TenantHeader = "X-Astra-Tenant"

// Response headers carrying per-request server timing; bodies stay
// byte-identical across cache hits so timing rides out of band.
const (
	QueueHeader   = "X-Astra-Queue-Ns"
	ServiceHeader = "X-Astra-Service-Ns"
	CacheHeader   = "X-Astra-Cache" // "hit" | "miss" | "bypass"
)
