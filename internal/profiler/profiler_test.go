package profiler

import (
	"testing"

	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/workload"
)

func TestCalibrateSortRatiosNearOne(t *testing.T) {
	// Sort moves every byte through every phase: measured alpha and beta
	// must both be ~1 regardless of the declared profile values.
	declared := workload.Sort
	declared.MapOutputRatio = 0.5 // deliberately wrong
	cal, err := Calibrate(declared, Sample{Objects: 8, BytesPerObject: 10_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cal.MapOutputRatio < 0.95 || cal.MapOutputRatio > 1.05 {
		t.Fatalf("sort alpha = %v, want ~1", cal.MapOutputRatio)
	}
	if cal.ReduceOutputRatio < 0.95 || cal.ReduceOutputRatio > 1.05 {
		t.Fatalf("sort beta = %v, want ~1", cal.ReduceOutputRatio)
	}
	// The calibrated profile carries the measured values and keeps u.
	if cal.Profile.MapOutputRatio != cal.MapOutputRatio {
		t.Fatal("profile not updated")
	}
	if cal.Profile.USecPerMB != declared.USecPerMB {
		t.Fatal("compute density must be preserved")
	}
}

func TestCalibrateWordCountShrinks(t *testing.T) {
	cal, err := Calibrate(workload.WordCount, Sample{Objects: 8, BytesPerObject: 20_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A counted corpus is far smaller than the raw text.
	if cal.MapOutputRatio >= 0.5 {
		t.Fatalf("wordcount alpha = %v, want well below raw size", cal.MapOutputRatio)
	}
	// Merging count tables of a fixed vocabulary barely shrinks them:
	// beta should be near 1 — notably different from the nominal 0.9.
	if cal.ReduceOutputRatio <= 0.5 || cal.ReduceOutputRatio > 1.1 {
		t.Fatalf("wordcount beta = %v", cal.ReduceOutputRatio)
	}
}

func TestCalibrateQueryAggregatesHard(t *testing.T) {
	cal, err := Calibrate(workload.Query, Sample{Objects: 8, BytesPerObject: 20_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Ten countries' revenue table is tiny relative to the raw rows.
	if cal.MapOutputRatio >= 0.1 {
		t.Fatalf("query alpha = %v, want tiny", cal.MapOutputRatio)
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	a, err := Calibrate(workload.WordCount, Sample{Objects: 6, BytesPerObject: 8_000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(workload.WordCount, Sample{Objects: 6, BytesPerObject: 8_000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.MapOutputRatio != b.MapOutputRatio || a.ReduceOutputRatio != b.ReduceOutputRatio {
		t.Fatal("same sample must calibrate identically")
	}
}

func TestCalibrateRejectsBadSamples(t *testing.T) {
	if _, err := Calibrate(workload.WordCount, Sample{Objects: 2, BytesPerObject: 100}); err == nil {
		t.Fatal("too few objects should fail")
	}
	if _, err := Calibrate(workload.WordCount, Sample{Objects: 8, BytesPerObject: 0}); err == nil {
		t.Fatal("zero size should fail")
	}
}

// TestCalibratedProfilePlans: the measured profile slots straight into
// the planner — the refinement loop end to end.
func TestCalibratedProfilePlans(t *testing.T) {
	cal, err := Calibrate(workload.WordCount, Sample{Objects: 8, BytesPerObject: 16_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	job := workload.Job{Profile: cal.Profile, NumObjects: 20, ObjectSize: 64 << 20}
	pl := optimizer.New(model.DefaultParams(job))
	pl.Solver = optimizer.Auto
	plan, err := pl.Plan(optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Exact.TotalSec() <= 0 {
		t.Fatal("degenerate plan")
	}
}
