// Package profiler closes the loop from execution back to the model: it
// runs a small concrete sample of an application on the simulated
// platform and measures the data ratios the analytic models need — the
// mapper output ratio (alpha) and the per-step reducer output ratio
// (beta) — from the actual object sizes the application produced.
//
// This is the "as Astra sees more types of workloads, the modeling ...
// could be dynamically adjusted and refined to achieve better accuracy"
// mechanism of the paper's discussion section: a declared profile's
// ratios are nominal; Calibrate replaces them with ratios observed on a
// sample of the user's own data, so the planner optimizes against the
// workload's real shape.
package profiler

import (
	"fmt"
	"math"

	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/objectstore"
	"astra/internal/simtime"
	"astra/internal/workload"
)

// Sample describes the calibration run: a small concrete dataset.
type Sample struct {
	// Objects is the sample object count (>= 4 so a reduce tree forms).
	Objects int
	// BytesPerObject is the sample object size (keep it small: the host
	// materializes the data).
	BytesPerObject int
	// Seed makes the generated sample reproducible.
	Seed int64
}

// Calibration is the measured outcome.
type Calibration struct {
	// Profile is the input profile with measured ratios substituted.
	Profile workload.Profile
	// MapOutputRatio and ReduceOutputRatio are the measured values.
	MapOutputRatio    float64
	ReduceOutputRatio float64
	// MapOutBytes and InputBytes document the measurement.
	InputBytes, MapOutBytes int64
}

// Calibrate runs the application concretely over a generated sample and
// measures its data ratios. The profile's compute density (u) is kept:
// in the simulated platform compute time is charged from the declared
// density, so only the genuinely emergent quantities — object sizes —
// are measured.
func Calibrate(pf workload.Profile, s Sample) (*Calibration, error) {
	if s.Objects < 4 {
		return nil, fmt.Errorf("profiler: need at least 4 sample objects, got %d", s.Objects)
	}
	if s.BytesPerObject <= 0 {
		return nil, fmt.Errorf("profiler: sample object size must be positive")
	}
	job := workload.Job{
		Profile:    pf,
		NumObjects: s.Objects,
		ObjectSize: int64(s.BytesPerObject),
	}
	params := model.DefaultParams(job)
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth:      params.BandwidthBps,
		RequestLatency: params.RequestLatency,
		Pricing:        params.Sheet.Store,
	})
	pl := lambda.New(sched, store, lambda.Config{
		Sheet:           params.Sheet,
		Speed:           params.Speed,
		DispatchLatency: params.DispatchLatency,
	})
	keys, err := workload.SeedConcrete(store, "sample", job, s.Seed)
	if err != nil {
		return nil, err
	}
	// A config that produces a multi-step reduce tree (for aggregations)
	// so beta can be observed: 2 objects per mapper, 2 per reducer.
	cfg := mapreduce.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	driver := mapreduce.NewDriver(pl)

	cal := &Calibration{Profile: pf}
	runErr := sched.Run(func(p *simtime.Proc) {
		rep, err := driver.Run(p, mapreduce.JobSpec{
			Workload:  job,
			Bucket:    "sample",
			InputKeys: keys,
			Mode:      mapreduce.Concrete,
		}, cfg)
		if err != nil {
			panic(err)
		}
		sizeOf := func(bucket, key string) int64 {
			obj, err := store.Head(p, bucket, key)
			if err != nil {
				panic(err)
			}
			return obj.Size
		}
		cal.InputBytes = job.TotalBytes()

		// Mapper outputs.
		mapKeys, err := store.List(p, rep.InterBucket, "map/")
		if err != nil {
			panic(err)
		}
		for _, k := range mapKeys {
			cal.MapOutBytes += sizeOf(rep.InterBucket, k)
		}
		cal.MapOutputRatio = float64(cal.MapOutBytes) / float64(cal.InputBytes)

		// Per-step reducer outputs: beta is the geometric mean of the
		// per-step output/input byte ratios.
		prevBytes := cal.MapOutBytes
		logSum, steps := 0.0, 0
		for pi := 0; pi < rep.Orchestration.NumSteps(); pi++ {
			stepKeys, err := store.List(p, rep.InterBucket, fmt.Sprintf("red/%02d/", pi))
			if err != nil {
				panic(err)
			}
			var out int64
			for _, k := range stepKeys {
				out += sizeOf(rep.InterBucket, k)
			}
			if prevBytes > 0 && out > 0 {
				logSum += math.Log(float64(out) / float64(prevBytes))
				steps++
			}
			prevBytes = out
		}
		if steps > 0 {
			cal.ReduceOutputRatio = math.Exp(logSum / float64(steps))
		} else {
			cal.ReduceOutputRatio = pf.ReduceOutputRatio
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	if cal.MapOutputRatio <= 0 {
		return nil, fmt.Errorf("profiler: sample produced no intermediate data")
	}
	cal.Profile.MapOutputRatio = cal.MapOutputRatio
	cal.Profile.ReduceOutputRatio = cal.ReduceOutputRatio
	return cal, nil
}
