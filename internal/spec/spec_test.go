package spec

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"astra/internal/mapreduce"
	"astra/internal/optimizer"
)

const validDoc = `{
  "workload": "query",
  "size_gb": 1.5,
  "objects": 12,
  "objective": "cost",
  "deadline": "3m",
  "solver": "csp",
  "orchestrator": "step-functions",
  "intermediates": "cache",
  "task_retries": 2
}`

func TestParseValid(t *testing.T) {
	f, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	job, err := f.Job()
	if err != nil {
		t.Fatal(err)
	}
	if job.Profile.Name != "query" || job.NumObjects != 12 {
		t.Fatalf("job = %+v", job)
	}
	wantObj := int64(1.5 * float64(int64(1)<<30) / 12)
	if job.ObjectSize != wantObj {
		t.Fatalf("object size = %d, want %d", job.ObjectSize, wantObj)
	}
	obj, err := f.ObjectiveValue()
	if err != nil {
		t.Fatal(err)
	}
	if obj.Goal != optimizer.MinCostUnderDeadline || obj.Deadline != 3*time.Minute {
		t.Fatalf("objective = %+v", obj)
	}
	s, err := f.SolverValue()
	if err != nil || s != optimizer.CSP {
		t.Fatalf("solver = %v, %v", s, err)
	}
	var js mapreduce.JobSpec
	f.ApplyExecution(&js)
	if js.Orchestrator != mapreduce.StepFunctions || js.IntermediateClass == nil || js.TaskRetries != 2 {
		t.Fatalf("execution options = %+v", js)
	}
}

func TestParseDefaults(t *testing.T) {
	f, err := Parse([]byte(`{"workload":"wordcount","size_gb":1,"objects":10,"objective":"time"}`))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := f.ObjectiveValue()
	if err != nil {
		t.Fatal(err)
	}
	if obj.Goal != optimizer.MinTimeUnderBudget || obj.Budget < 1e8 {
		t.Fatalf("unconstrained budget = %+v", obj)
	}
	s, err := f.SolverValue()
	if err != nil || s != optimizer.Auto {
		t.Fatalf("default solver = %v", s)
	}
	var js mapreduce.JobSpec
	f.ApplyExecution(&js)
	if js.Orchestrator != mapreduce.CoordinatorLambda || js.IntermediateClass != nil {
		t.Fatalf("defaults = %+v", js)
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	bad := []string{
		`not json`,
		`{"workload":"zzz","size_gb":1,"objects":1,"objective":"time"}`,
		`{"workload":"sort","size_gb":0,"objects":1,"objective":"time"}`,
		`{"workload":"sort","size_gb":1,"objects":0,"objective":"time"}`,
		`{"workload":"sort","size_gb":1,"objects":1,"objective":"speed"}`,
		`{"workload":"sort","size_gb":1,"objects":1,"objective":"cost","deadline":"soon"}`,
		`{"workload":"sort","size_gb":1,"objects":1,"objective":"time","solver":"magic"}`,
		`{"workload":"sort","size_gb":1,"objects":1,"objective":"time","orchestrator":"human"}`,
		`{"workload":"sort","size_gb":1,"objects":1,"objective":"time","intermediates":"tape"}`,
		`{"workload":"sort","size_gb":1,"objects":1,"objective":"time","task_retries":-1}`,
	}
	for i, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("case %d should fail: %s", i, doc)
		}
	}
}

func TestLoadFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	if err := os.WriteFile(path, []byte(validDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Workload != "query" {
		t.Fatalf("loaded = %+v", f)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}
