// Package spec defines the JSON job-specification format the astra CLI
// accepts: a declarative description of the workload, the user objective
// and execution options — the "user submits a job with flexibly-specified
// requirements" interface of the paper, as a file.
//
//	{
//	  "workload":  "query",
//	  "size_gb":   25.4,
//	  "objects":   202,
//	  "objective": "cost",
//	  "deadline":  "3m",
//	  "solver":    "auto",
//	  "orchestrator": "coordinator",
//	  "intermediates": "default",
//	  "task_retries": 1
//	}
package spec

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"astra/internal/mapreduce"
	"astra/internal/objectstore"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// File is the declarative job specification.
type File struct {
	// Workload names a profile: wordcount, sort, query, grep,
	// spark-wordcount, spark-sql.
	Workload string `json:"workload"`
	// SizeGB is the total input size.
	SizeGB float64 `json:"size_gb"`
	// Objects is the input object count.
	Objects int `json:"objects"`
	// Objective is "time" (minimize JCT under BudgetUSD) or "cost"
	// (minimize cost under Deadline).
	Objective string `json:"objective"`
	// BudgetUSD constrains the time objective; zero means unconstrained.
	BudgetUSD float64 `json:"budget_usd,omitempty"`
	// Deadline constrains the cost objective (Go duration syntax); empty
	// means unconstrained.
	Deadline string `json:"deadline,omitempty"`
	// Solver is auto (default), algorithm1, yen, csp, rerank or brute.
	Solver string `json:"solver,omitempty"`
	// Orchestrator is coordinator (default) or step-functions.
	Orchestrator string `json:"orchestrator,omitempty"`
	// Intermediates is default or cache (a Redis-like ephemeral tier).
	Intermediates string `json:"intermediates,omitempty"`
	// TaskRetries re-invokes failed mappers/reducers.
	TaskRetries int `json:"task_retries,omitempty"`
}

// Parse decodes and validates a spec document.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Load reads and parses a spec file from disk.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return Parse(data)
}

// Validate checks the document against the accepted vocabulary.
func (f *File) Validate() error {
	if _, err := workload.ByName(f.Workload); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if f.SizeGB <= 0 {
		return fmt.Errorf("spec: size_gb must be positive")
	}
	if f.Objects <= 0 {
		return fmt.Errorf("spec: objects must be positive")
	}
	switch f.Objective {
	case "time", "cost":
	default:
		return fmt.Errorf("spec: objective must be %q or %q, got %q", "time", "cost", f.Objective)
	}
	if f.Deadline != "" {
		if _, err := time.ParseDuration(f.Deadline); err != nil {
			return fmt.Errorf("spec: bad deadline: %w", err)
		}
	}
	switch f.Solver {
	case "", "auto", "algorithm1", "yen", "csp", "rerank", "brute":
	default:
		return fmt.Errorf("spec: unknown solver %q", f.Solver)
	}
	switch f.Orchestrator {
	case "", "coordinator", "step-functions":
	default:
		return fmt.Errorf("spec: unknown orchestrator %q", f.Orchestrator)
	}
	switch f.Intermediates {
	case "", "default", "cache":
	default:
		return fmt.Errorf("spec: unknown intermediates class %q", f.Intermediates)
	}
	if f.TaskRetries < 0 {
		return fmt.Errorf("spec: task_retries must be non-negative")
	}
	return nil
}

// Job materializes the workload description.
func (f *File) Job() (workload.Job, error) {
	pf, err := workload.ByName(f.Workload)
	if err != nil {
		return workload.Job{}, err
	}
	total := int64(f.SizeGB * float64(int64(1)<<30))
	return workload.Job{
		Profile:    pf,
		NumObjects: f.Objects,
		ObjectSize: total / int64(f.Objects),
	}, nil
}

// ObjectiveValue materializes the optimization objective; unconstrained
// dimensions get effectively-infinite limits.
func (f *File) ObjectiveValue() (optimizer.Objective, error) {
	switch f.Objective {
	case "time":
		obj := optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: pricing.USD(f.BudgetUSD)}
		if f.BudgetUSD <= 0 {
			obj.Budget = 1e9
		}
		return obj, nil
	case "cost":
		obj := optimizer.Objective{Goal: optimizer.MinCostUnderDeadline}
		if f.Deadline == "" {
			obj.Deadline = 1e6 * time.Hour
			return obj, nil
		}
		d, err := time.ParseDuration(f.Deadline)
		if err != nil {
			return optimizer.Objective{}, err
		}
		obj.Deadline = d
		return obj, nil
	}
	return optimizer.Objective{}, fmt.Errorf("spec: objective %q", f.Objective)
}

// SolverValue materializes the solver choice (Auto by default).
func (f *File) SolverValue() (optimizer.Solver, error) {
	switch f.Solver {
	case "", "auto":
		return optimizer.Auto, nil
	case "algorithm1":
		return optimizer.Algorithm1, nil
	case "yen":
		return optimizer.Yen, nil
	case "csp":
		return optimizer.CSP, nil
	case "rerank":
		return optimizer.Rerank, nil
	case "brute":
		return optimizer.Brute, nil
	}
	return 0, fmt.Errorf("spec: unknown solver %q", f.Solver)
}

// ApplyExecution folds the execution options into a job spec.
func (f *File) ApplyExecution(s *mapreduce.JobSpec) {
	if f.Orchestrator == "step-functions" {
		s.Orchestrator = mapreduce.StepFunctions
	}
	if f.Intermediates == "cache" {
		cache := objectstore.CacheClass()
		s.IntermediateClass = &cache
	}
	s.TaskRetries = f.TaskRetries
}
