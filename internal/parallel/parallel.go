// Package parallel provides the bounded worker pool underneath Astra's
// concurrent plan-search engine. Work is expressed as an index space
// [0, n); callers write results into pre-sized slots so the output is
// deterministic regardless of scheduling, and cancellation is observed
// between work items so a cancelled search returns promptly without
// leaking goroutines.
//
// When the context carries a telemetry registry, each ForEach batch
// reports its size, worker count and peak in-flight workers; with no
// registry attached the pool is byte-for-byte the uninstrumented loop.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"astra/internal/telemetry"
)

// Workers resolves a requested parallelism degree: values <= 0 mean "use
// every available core" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), distributing indices over at
// most workers goroutines (resolved via Workers). fn must write its result
// into a caller-owned slot for index i; it must not touch other indices'
// state. ForEach blocks until every started invocation has returned, so no
// goroutines outlive the call, and returns ctx.Err() if the context was
// cancelled before all indices were claimed (already-claimed items still
// finish).
func ForEach(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// Effective parallelism is bounded by schedulable cores: spinning up
	// a multi-worker pool on a single-P runtime only adds goroutine
	// churn (the 1-CPU bench host measured parallel plans slower than
	// serial for exactly this reason). The pool-size gauge still records
	// the requested sizing — that is the knob under test — while the
	// degrade is counted separately.
	effective := workers
	if procs := runtime.GOMAXPROCS(0); effective > procs {
		effective = procs
	}
	if tel := telemetry.FromContext(ctx); tel != nil {
		tel.Counter(telemetry.MPoolBatches).Inc()
		tel.Counter(telemetry.MPoolTasks).Add(int64(n))
		tel.Gauge(telemetry.MPoolWorkersPeak).SetMax(int64(workers))
		tel.Gauge(telemetry.MPoolQueueDepthPeak).SetMax(int64(n))
		tel.Histogram(telemetry.MPoolBatchSize, telemetry.SizeBuckets).Observe(float64(n))
		if effective == 1 && workers > 1 {
			tel.Counter(telemetry.MPoolSerialDegrades).Inc()
		}
	}
	if effective == 1 {
		// Serial fast path: no goroutines, identical iteration order.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	workers = effective
	busyPeak := telemetry.FromContext(ctx).Gauge(telemetry.MPoolBusyWorkersPeak)
	var busy atomic.Int64
	var next int64
	var wg sync.WaitGroup
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if busyPeak != nil {
					busyPeak.SetMax(busy.Add(1))
				}
				fn(i)
				if busyPeak != nil {
					busy.Add(-1)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
