package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 237
		var counts [n]int64
		if err := ForEach(context.Background(), n, workers, func(i int) {
			atomic.AddInt64(&counts[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) {
		t.Fatal("fn called for empty index space")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int64(0)
	err := ForEach(ctx, 1000, 4, func(int) { atomic.AddInt64(&ran, 1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if atomic.LoadInt64(&ran) != 0 {
		t.Fatalf("%d items ran after pre-cancelled context", ran)
	}
}

func TestForEachCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	err := ForEach(ctx, 100000, 4, func(i int) {
		if atomic.AddInt64(&ran, 1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= 100000 {
		t.Fatal("cancellation did not stop the sweep")
	}
}

func TestForEachNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ForEach(ctx, 10000, 8, func(i int) {
		if i == 5 {
			cancel()
		}
	})
	cancel()
	// ForEach waits for its pool before returning; allow brief scheduler
	// noise from unrelated runtime goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines: %d before, %d after", before, after)
	}
}
