package qos

import (
	"sort"
	"sync"
	"time"

	"astra/internal/pricing"
	"astra/internal/telemetry"
)

// burnWindow is the sliding window (in runs) over which per-key breach
// burn rates are computed — recent history for alerting, independent of
// lifetime attainment.
const burnWindow = 32

// Outcome is one finished run's SLO verdict, recorded into a Ledger by
// Monitor.EndRun (or directly by a caller that measured a run some other
// way).
type Outcome struct {
	Tenant     string
	Job        string
	Deadline   time.Duration
	JCT        time.Duration
	Attained   bool
	FinalState State
	// Reason categorizes a breach ("" when attained), e.g.
	// "deadline_exceeded (drift: map/compute)".
	Reason    string
	CostUSD   pricing.USD
	WastedUSD pricing.USD
}

type ledgerKey struct{ tenant, job string }

type ledgerEntry struct {
	runs     int
	attained int
	breached int
	reasons  map[string]int
	// recent is a bounded FIFO of the last burnWindow outcomes
	// (true = breached).
	recent []bool
	cost   pricing.USD
	wasted pricing.USD
}

// Ledger aggregates SLO outcomes per (tenant, job) across runs. It is
// safe for concurrent use and a nil *Ledger is a no-op everywhere, so a
// shared ledger can be threaded through fleets of monitors without
// plumbing conditionals.
type Ledger struct {
	mu      sync.Mutex
	entries map[ledgerKey]*ledgerEntry
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: make(map[ledgerKey]*ledgerEntry)}
}

// Record folds one run outcome into the ledger.
func (l *Ledger) Record(o Outcome) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := ledgerKey{o.Tenant, o.Job}
	e := l.entries[k]
	if e == nil {
		e = &ledgerEntry{reasons: make(map[string]int)}
		l.entries[k] = e
	}
	e.runs++
	if o.Attained {
		e.attained++
	} else {
		e.breached++
		reason := o.Reason
		if reason == "" {
			reason = "deadline_exceeded"
		}
		e.reasons[reason]++
	}
	e.recent = append(e.recent, !o.Attained)
	if len(e.recent) > burnWindow {
		e.recent = e.recent[len(e.recent)-burnWindow:]
	}
	e.cost += o.CostUSD
	e.wasted += o.WastedUSD
}

// BreachReason is one breach category's count within a ledger entry.
type BreachReason struct {
	Reason string `json:"reason"`
	Count  int    `json:"count"`
}

// LedgerEntry is one (tenant, job) row of a ledger snapshot.
type LedgerEntry struct {
	Tenant   string `json:"tenant"`
	Job      string `json:"job"`
	Runs     int    `json:"runs"`
	Attained int    `json:"attained"`
	Breached int    `json:"breached"`
	// AttainmentRate is attained/runs over the entry's lifetime.
	AttainmentRate float64 `json:"attainment_rate"`
	// WindowRuns and WindowBurnRate cover the last burnWindow runs:
	// the breached fraction of recent history.
	WindowRuns     int            `json:"window_runs"`
	WindowBurnRate float64        `json:"window_burn_rate"`
	BreachReasons  []BreachReason `json:"breach_reasons,omitempty"`
	CostUSD        float64        `json:"cost_usd"`
	WastedUSD      float64        `json:"wasted_usd"`
}

// LedgerSnapshot is a frozen, deterministically ordered view of the
// ledger: entries sorted by tenant then job, breach reasons by count
// (descending) then name.
type LedgerSnapshot struct {
	Runs     int           `json:"runs"`
	Attained int           `json:"attained"`
	Breached int           `json:"breached"`
	Entries  []LedgerEntry `json:"entries,omitempty"`
}

// Snapshot freezes the ledger.
func (l *Ledger) Snapshot() LedgerSnapshot {
	if l == nil {
		return LedgerSnapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]ledgerKey, 0, len(l.entries))
	for k := range l.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tenant != keys[j].tenant {
			return keys[i].tenant < keys[j].tenant
		}
		return keys[i].job < keys[j].job
	})
	var snap LedgerSnapshot
	for _, k := range keys {
		e := l.entries[k]
		le := LedgerEntry{
			Tenant:    k.tenant,
			Job:       k.job,
			Runs:      e.runs,
			Attained:  e.attained,
			Breached:  e.breached,
			CostUSD:   float64(e.cost),
			WastedUSD: float64(e.wasted),
		}
		if e.runs > 0 {
			le.AttainmentRate = float64(e.attained) / float64(e.runs)
		}
		le.WindowRuns = len(e.recent)
		if le.WindowRuns > 0 {
			burned := 0
			for _, b := range e.recent {
				if b {
					burned++
				}
			}
			le.WindowBurnRate = float64(burned) / float64(le.WindowRuns)
		}
		for reason, n := range e.reasons {
			le.BreachReasons = append(le.BreachReasons, BreachReason{Reason: reason, Count: n})
		}
		sort.Slice(le.BreachReasons, func(i, j int) bool {
			if le.BreachReasons[i].Count != le.BreachReasons[j].Count {
				return le.BreachReasons[i].Count > le.BreachReasons[j].Count
			}
			return le.BreachReasons[i].Reason < le.BreachReasons[j].Reason
		})
		snap.Runs += e.runs
		snap.Attained += e.attained
		snap.Breached += e.breached
		snap.Entries = append(snap.Entries, le)
	}
	return snap
}

// Publish mirrors the ledger's totals into the registry as astra_qos_slo_*
// counters, plus per-(tenant, job) labeled attainment series. Counters are
// raised to the ledger's running totals, so repeated publishes are
// idempotent.
func (l *Ledger) Publish(reg *telemetry.Registry) {
	if l == nil || reg == nil {
		return
	}
	snap := l.Snapshot()
	raiseCounter(reg, telemetry.MQoSSLORuns, int64(snap.Runs))
	raiseCounter(reg, telemetry.MQoSSLOAttained, int64(snap.Attained))
	raiseCounter(reg, telemetry.MQoSSLOBreached, int64(snap.Breached))
	for _, e := range snap.Entries {
		key := e.Tenant + "/" + e.Job
		raiseCounter(reg, telemetry.LabelSeries(telemetry.MQoSSLORuns, "key", key), int64(e.Runs))
		raiseCounter(reg, telemetry.LabelSeries(telemetry.MQoSSLOAttained, "key", key), int64(e.Attained))
		raiseCounter(reg, telemetry.LabelSeries(telemetry.MQoSSLOBreached, "key", key), int64(e.Breached))
	}
}
