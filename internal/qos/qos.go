// Package qos implements the streaming QoS monitor: an online,
// observe-only consumer of a run's flight-recorder event stream that
// maintains, in virtual time, (a) per-stage predicted-vs-observed term
// errors with a CUSUM drift score per term, (b) a deadline-risk estimate
// (projected JCT, slack, and an on_track/at_risk/breached state with the
// exact virtual instant each transition fired), and (c) cost burn (spent
// vs predicted-at-this-point, wasted speculative/failed spend folded in).
// Across runs, outcomes aggregate into a per-tenant/per-job SLO ledger.
//
// The monitor is the sensing layer for closed-loop adaptive replanning
// (ROADMAP item 5): it quantifies how far reality has diverged from the
// plan's Eq. 16-22 promise while the job is still running, instead of
// discovering a blown deadline post-hoc.
//
// Determinism contract: every piece of monitor state is a pure fold over
// the recorded event stream. Risk-state crossings between events are
// computed analytically (schedule slip grows linearly while a milestone is
// overdue), so the recorded transition instants do not depend on when the
// driver happened to Poll — two identical runs report byte-identical
// transition sequences regardless of polling cadence or planning
// parallelism. Like the telemetry registry and the flight recorder, a nil
// *Monitor is a zero-cost no-op on every method and attaching one never
// changes the simulated outcome.
package qos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"astra/internal/flight"
	"astra/internal/mapreduce"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/telemetry"
)

// State is the monitor's deadline-risk verdict. Transitions are monotone
// (on_track -> at_risk -> breached): schedule slip is a running maximum,
// so a job that has fallen behind its predicted schedule never silently
// recovers its risk state — the replanner, not the monitor, decides
// whether recovery actions worked.
type State int

const (
	// OnTrack: the projected JCT is within the risk threshold.
	OnTrack State = iota
	// AtRisk: the projected JCT exceeds (1 - RiskMargin) x deadline; the
	// deadline itself has not passed yet.
	AtRisk
	// Breached: the deadline passed with the run still incomplete.
	Breached
)

// String renders the state the way the /qos endpoint and the ledger
// report it.
func (s State) String() string {
	switch s {
	case AtRisk:
		return "at_risk"
	case Breached:
		return "breached"
	default:
		return "on_track"
	}
}

// termNames fixes the per-stage term order everywhere the monitor
// reports: the paper's Eq. 3-10 decomposition, matching flight.StageTerms.
var termNames = [4]string{"startup", "compute", "io", "waiting"}

// Options configures a Monitor. The zero value is usable once EnsurePlan
// supplies a predicted breakdown: deadline defaults to 1.5x the predicted
// JCT, risk margin to 5%, CUSUM slack to 0.25 and threshold to 1.0.
type Options struct {
	// Predicted is the plan's per-stage breakdown for the executed
	// configuration (Exact.PredictBreakdown). Left nil, EnsurePlan fills
	// it; without one the monitor tracks progress and cost only (no
	// drift scores, no deadline risk).
	Predicted *flight.Breakdown
	// Deadline is the QoS completion-time threshold (Eq. 20). Zero means
	// "1.5x the predicted JCT", resolved by EnsurePlan.
	Deadline time.Duration
	// RiskMargin is the at_risk guard band: the monitor flips to at_risk
	// when the projected JCT exceeds (1 - RiskMargin) x Deadline, so the
	// warning strictly precedes the breach. Zero means 0.05; values are
	// clamped to [0, 0.5].
	RiskMargin float64
	// DriftSlack is the CUSUM slack k (per-task normalized error absorbed
	// before the score accumulates). Zero means 0.25.
	DriftSlack float64
	// DriftThreshold is the CUSUM alarm level h. Zero means 1.0.
	DriftThreshold float64
	// Tenant and Job identify the run in the SLO ledger and snapshots.
	Tenant, Job string
	// Ledger, if set, receives the run's Outcome at EndRun.
	Ledger *Ledger
	// Telemetry, if set, receives astra_qos_* gauges and counters on
	// every Poll and at EndRun.
	Telemetry *telemetry.Registry
}

// Transition is one recorded monitor event: a deadline-risk state change
// (kind "risk") or a per-term drift alarm (kind "drift"). At is virtual
// time since the run start, so two identical runs serialize identical
// transitions regardless of when the wall clock started.
type Transition struct {
	Seq    int           `json:"seq"`
	Kind   string        `json:"kind"`
	State  string        `json:"state,omitempty"`
	Stage  string        `json:"stage,omitempty"`
	Term   string        `json:"term,omitempty"`
	At     time.Duration `json:"at_ns"`
	Reason string        `json:"reason"`
}

// invTrack accumulates one invocation's attributed intervals while it is
// in flight.
type invTrack struct {
	label      string
	schedStart simtime.Time
	compute    time.Duration
	io         time.Duration
	st         *stageTrack
}

// stageTrack is one driver stage lined up against its predicted schedule.
type stageTrack struct {
	name  string
	tasks int
	// milestone marks stages whose predicted cumulative end anchors the
	// deadline-risk projection. The coordinator is excluded: its lambda's
	// completion spans the step barriers it waits on (Eq. 14 bills the
	// full span), so its done event is not a schedule milestone — but its
	// predicted duration still offsets the steps behind it.
	milestone bool
	// predEnd is the stage's predicted cumulative end, relative to run
	// start (breakdown stage durations sum to the predicted JCT).
	predEnd time.Duration
	predDur time.Duration
	pred    flight.StageTerms

	done       map[string]bool
	completed  bool
	completeAt time.Duration
	obsSum     [4]time.Duration
	obsN       int
	cusum      [4]float64
	drifted    [4]bool
}

// Monitor is a streaming QoS monitor for one run at a time (BeginRun
// resets it; reuse sequentially, with a shared Ledger carrying history
// across runs). All methods are nil-receiver-safe no-ops and safe for
// concurrent use: the driver polls from inside the simulation while SSE
// handlers snapshot from serving goroutines.
type Monitor struct {
	mu sync.Mutex

	pred      *flight.Breakdown
	sheet     *pricing.Sheet
	deadline  time.Duration
	margin    float64
	slack     float64
	threshold float64
	tenant    string
	job       string
	ledger    *Ledger
	tel       *telemetry.Registry

	rec     *flight.Recorder
	began   bool
	ended   bool
	t0      simtime.Time
	clock   simtime.Time
	end     simtime.Time
	lastSeq int64

	stages []*stageTrack
	byName map[string]*stageTrack
	invs   map[int64]*invTrack

	state       State
	slip        time.Duration
	transitions []Transition
	drifted     int

	lambdaUSD pricing.USD
	wastedUSD pricing.USD
	gets      int64
	puts      int64
}

// New creates a monitor. A nil return is never produced; a nil *Monitor
// is nonetheless safe everywhere it can be attached.
func New(o Options) *Monitor {
	m := &Monitor{
		pred:      o.Predicted,
		deadline:  o.Deadline,
		margin:    o.RiskMargin,
		slack:     o.DriftSlack,
		threshold: o.DriftThreshold,
		tenant:    o.Tenant,
		job:       o.Job,
		ledger:    o.Ledger,
		tel:       o.Telemetry,
	}
	if m.margin == 0 {
		m.margin = 0.05
	}
	if m.margin < 0 {
		m.margin = 0
	}
	if m.margin > 0.5 {
		m.margin = 0.5
	}
	if m.slack <= 0 {
		m.slack = 0.25
	}
	if m.threshold <= 0 {
		m.threshold = 1.0
	}
	return m
}

// EnsurePlan fills the monitor's unset plan inputs: the predicted
// breakdown (drift references and the milestone schedule), the price
// sheet (cost burn), and — when no explicit deadline was configured — a
// default deadline of 1.5x the predicted JCT. Explicitly-set options are
// never overridden, so callers can layer it after their own Options.
func (m *Monitor) EnsurePlan(bd *flight.Breakdown, sheet *pricing.Sheet) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pred == nil {
		m.pred = bd
	}
	if m.sheet == nil {
		m.sheet = sheet
	}
	if m.deadline <= 0 && m.pred != nil {
		m.deadline = m.pred.JCT + m.pred.JCT/2
	}
}

// riskThresholdLocked is the projected-JCT level that flips on_track to
// at_risk: (1 - margin) x deadline.
func (m *Monitor) riskThresholdLocked() time.Duration {
	return m.deadline - time.Duration(m.margin*float64(m.deadline))
}

// BeginRun resets the monitor for one run: it anchors at the recorder's
// current sequence number, lines the driver's stage plan up against the
// predicted breakdown, and (when the plan alone already exceeds the risk
// threshold) records an immediate at_risk transition at t=0.
func (m *Monitor) BeginRun(rec *flight.Recorder, t0 simtime.Time, stages []mapreduce.QoSStage) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rec = rec
	m.began, m.ended = true, false
	m.t0, m.clock, m.end = t0, t0, 0
	m.lastSeq = rec.Seq()
	m.invs = make(map[int64]*invTrack)
	m.state, m.slip = OnTrack, 0
	m.transitions = nil
	m.drifted = 0
	m.lambdaUSD, m.wastedUSD, m.gets, m.puts = 0, 0, 0, 0

	want := make(map[string]int, len(stages))
	order := make([]string, 0, len(stages))
	for _, st := range stages {
		want[st.Name] = st.Tasks
		order = append(order, st.Name)
	}
	m.stages = m.stages[:0]
	m.byName = make(map[string]*stageTrack, len(stages))
	add := func(tr *stageTrack) {
		tr.done = make(map[string]bool, tr.tasks)
		m.stages = append(m.stages, tr)
		m.byName[tr.name] = tr
	}
	if m.pred != nil {
		// Predicted stages in breakdown order carry the cumulative
		// schedule; cumulative ends are conservative (each includes the
		// full predicted orchestration overhead ahead of the stage), so a
		// run matching the model produces zero slip.
		cum := time.Duration(0)
		for _, ps := range m.pred.Stages {
			cum += ps.Duration
			tasks, ok := want[ps.Name]
			if !ok {
				continue
			}
			delete(want, ps.Name)
			add(&stageTrack{
				name: ps.Name, tasks: tasks,
				milestone: ps.Name != "coordinator",
				predEnd:   cum, predDur: ps.Duration, pred: ps.Terms,
			})
		}
	}
	// Driver stages with no predicted counterpart (measurement-only
	// monitors, or orchestration variants the breakdown does not model):
	// progress-tracked, but neither drift-scored nor milestones.
	for _, name := range order {
		if tasks, ok := want[name]; ok {
			add(&stageTrack{name: name, tasks: tasks})
		}
	}

	if m.pred != nil && m.deadline > 0 && m.pred.JCT > m.riskThresholdLocked() {
		m.setStateLocked(AtRisk, 0, fmt.Sprintf(
			"planned JCT %v already exceeds the risk threshold %v (deadline %v)",
			m.pred.JCT, m.riskThresholdLocked(), m.deadline))
	}
	m.publishLocked()
}

// Poll consumes newly recorded events and advances the risk clock to now.
// Polling cadence affects only when live snapshots update — recorded
// transitions are a pure function of the event stream.
func (m *Monitor) Poll(now simtime.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.began || m.ended {
		return
	}
	m.ingestLocked()
	m.advanceLocked(now)
	m.publishLocked()
}

// EndRun folds the run's remaining events (speculative-loser drain and
// phase markers included), settles the final state, and records the
// outcome into the ledger. Events timestamped after the JCT (drained
// losers die at their next platform call) still bill into cost burn, but
// never advance risk past the run end.
func (m *Monitor) EndRun(end simtime.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.began || m.ended {
		return
	}
	m.ended, m.end = true, end
	m.ingestLocked()
	m.advanceLocked(end)
	if m.ledger != nil {
		jct := end - m.t0
		attained := m.deadline <= 0 || jct <= m.deadline
		m.ledger.Record(Outcome{
			Tenant:     m.tenant,
			Job:        m.job,
			Deadline:   m.deadline,
			JCT:        jct,
			Attained:   attained,
			FinalState: m.state,
			Reason:     m.breachReasonLocked(attained),
			CostUSD:    m.spentLocked(),
			WastedUSD:  m.wastedUSD,
		})
		m.ledger.Publish(m.tel)
	}
	m.publishLocked()
}

// breachReasonLocked categorizes a missed deadline for the ledger: the
// deadline verdict, refined with the first drifted (stage, term) when
// drift was detected — the first diagnosis a replanner would reach for.
func (m *Monitor) breachReasonLocked(attained bool) string {
	if attained {
		return ""
	}
	for _, st := range m.stages {
		for i, d := range st.drifted {
			if d {
				return fmt.Sprintf("deadline_exceeded (drift: %s/%s)", st.name, termNames[i])
			}
		}
	}
	return "deadline_exceeded"
}

// ingestLocked folds every event recorded since the last fold.
func (m *Monitor) ingestLocked() {
	if m.rec == nil {
		return
	}
	evs := m.rec.EventsSince(m.lastSeq)
	for i := range evs {
		m.applyLocked(&evs[i])
		m.lastSeq = evs[i].Seq
	}
}

// applyLocked folds one event.
func (m *Monitor) applyLocked(ev *flight.Event) {
	m.advanceLocked(ev.Time)
	switch ev.Kind {
	case flight.KindInvokeScheduled:
		it := &invTrack{label: ev.Label, schedStart: ev.Start}
		it.st = m.stageForLabelLocked(ev.Label)
		m.invs[ev.Inv] = it
	case flight.KindCompute:
		if it := m.invs[ev.Inv]; it != nil {
			it.compute += ev.Time - ev.Start
		}
	case flight.KindStoreGet, flight.KindStorePut, flight.KindStoreHead,
		flight.KindStoreList, flight.KindStoreDelete, flight.KindStoreCopy:
		if it := m.invs[ev.Inv]; it != nil {
			it.io += ev.Time - ev.Start
		}
		switch ev.Kind {
		case flight.KindStoreGet:
			m.gets++
		case flight.KindStorePut:
			m.puts++
		}
	case flight.KindInvokeDone:
		m.billLocked(ev, false)
		m.completeTaskLocked(ev)
	case flight.KindInvokeTimeout, flight.KindInvokeError, flight.KindInvokeCanceled:
		m.billLocked(ev, true)
	}
}

// billLocked charges one terminal invocation event: quantum-rounded
// duration billing plus the flat invocation fee (Eq. 13-15's W and I
// terms). Timeouts, errors and cancelled speculative losers bill into
// wasted as well. Storage-duration and workflow fees accrue at
// run granularity, not per event, and are excluded from the burn.
func (m *Monitor) billLocked(ev *flight.Event, wasted bool) {
	if m.sheet == nil {
		return
	}
	c := m.sheet.Lambda.DurationCost(ev.MemoryMB, ev.Time-ev.Start) +
		m.sheet.Lambda.InvocationCost(1)
	m.lambdaUSD += c
	if wasted {
		m.wastedUSD += c
	}
}

// spentLocked is the running bill: lambda spend plus store request fees.
func (m *Monitor) spentLocked() pricing.USD {
	if m.sheet == nil {
		return 0
	}
	return m.lambdaUSD + m.sheet.Store.RequestCost(m.gets, m.puts)
}

// completeTaskLocked marks a task label done on a successful completion
// and feeds the stage's drift scores with the task's observed terms.
func (m *Monitor) completeTaskLocked(ev *flight.Event) {
	it := m.invs[ev.Inv]
	if it == nil || it.st == nil || it.st.done[it.label] {
		return
	}
	st := it.st
	st.done[it.label] = true
	m.observeTermsLocked(st, it, ev)
	if !st.completed && st.tasks > 0 && len(st.done) >= st.tasks {
		st.completed = true
		st.completeAt = ev.Time - m.t0
	}
}

// observeTermsLocked decomposes one completed task into the per-stage
// terms and updates the stage's one-sided CUSUM scores: x is the task's
// error normalized by the predicted term (floored at 1% of the stage
// duration so near-zero terms don't explode the score), and the score
// accumulates max(0, S + x - k). Clean runs keep S at zero because
// observed per-task terms are bounded by the predicted critical task's.
func (m *Monitor) observeTermsLocked(st *stageTrack, it *invTrack, ev *flight.Event) {
	total := ev.Time - it.schedStart
	startup := ev.Start - it.schedStart
	waiting := total - startup - it.compute - it.io
	obs := [4]time.Duration{startup, it.compute, it.io, waiting}
	for i := range obs {
		st.obsSum[i] += obs[i]
	}
	st.obsN++
	if st.predDur <= 0 {
		return
	}
	pred := [4]time.Duration{st.pred.Startup, st.pred.Compute, st.pred.IO, st.pred.Waiting}
	floor := st.predDur / 100
	if floor < time.Millisecond {
		floor = time.Millisecond
	}
	for i := range obs {
		if st.name == "coordinator" && termNames[i] == "waiting" {
			// The coordinator's measured span includes the step barriers
			// it waits on (Eq. 14 bills the full span); its waiting
			// residual is structural, not drift.
			continue
		}
		denom := pred[i]
		if denom < floor {
			denom = floor
		}
		x := float64(obs[i]-pred[i]) / float64(denom)
		s := st.cusum[i] + x - m.slack
		if s < 0 {
			s = 0
		}
		st.cusum[i] = s
		if s >= m.threshold && !st.drifted[i] {
			st.drifted[i] = true
			m.drifted++
			m.appendTransitionLocked(Transition{
				Kind: "drift", Stage: st.name, Term: termNames[i],
				At: ev.Time - m.t0,
				Reason: fmt.Sprintf("cusum %.2f >= %.2f after task %s",
					s, m.threshold, it.label),
			})
		}
	}
}

// advanceLocked moves the risk clock to t, updating schedule slip against
// the earliest incomplete milestone and recording any state crossing at
// its exact analytic instant. Once the run has ended, t is capped at the
// recorded end so post-JCT billing events never extend the risk window.
func (m *Monitor) advanceLocked(t simtime.Time) {
	if m.ended && t > m.end {
		t = m.end
	}
	if t <= m.clock {
		return
	}
	prev := m.clock
	m.clock = t
	_ = prev
	if m.pred == nil || m.deadline <= 0 {
		return
	}
	var e *stageTrack
	for _, st := range m.stages {
		if st.milestone && !st.completed {
			e = st
			break
		}
	}
	rel := t - m.t0
	if e != nil && rel > e.predEnd {
		if s := rel - e.predEnd; s > m.slip {
			m.slip = s
		}
	}
	theta := m.riskThresholdLocked()
	if m.state == OnTrack && m.pred.JCT+m.slip > theta {
		// The slip crossed (theta - predicted JCT) while milestone e was
		// overdue; slip grows linearly there, so the crossing instant is
		// exact: predEnd + (theta - predJCT), never before the milestone
		// itself became overdue.
		at := rel
		if e != nil {
			at = e.predEnd + (theta - m.pred.JCT)
			if at < e.predEnd {
				at = e.predEnd
			}
		}
		m.setStateLocked(AtRisk, at, fmt.Sprintf(
			"projected JCT %v exceeds risk threshold %v (predicted %v, slip %v, deadline %v)",
			m.pred.JCT+m.slip, theta, m.pred.JCT, m.slip, m.deadline))
	}
	if m.state != Breached && rel > m.deadline {
		m.setStateLocked(Breached, m.deadline, fmt.Sprintf(
			"run still incomplete at the deadline %v", m.deadline))
	}
}

func (m *Monitor) setStateLocked(s State, at time.Duration, reason string) {
	m.state = s
	m.appendTransitionLocked(Transition{Kind: "risk", State: s.String(), At: at, Reason: reason})
}

func (m *Monitor) appendTransitionLocked(tr Transition) {
	tr.Seq = len(m.transitions) + 1
	m.transitions = append(m.transitions, tr)
}

// stageForLabelLocked maps an invocation label to its stage: the driver
// labels mappers "map-N", the coordinator "coordinator", and step-P
// reducers "red-P-R" (speculative attempts reuse the primary's label, so
// attempts of one task land on one stage entry).
func (m *Monitor) stageForLabelLocked(label string) *stageTrack {
	switch {
	case strings.HasPrefix(label, "map-"):
		return m.byName["map"]
	case label == "coordinator":
		return m.byName["coordinator"]
	case strings.HasPrefix(label, "red-"):
		rest := label[len("red-"):]
		if i := strings.IndexByte(rest, '-'); i > 0 {
			if p, err := strconv.Atoi(rest[:i]); err == nil {
				return m.byName[fmt.Sprintf("step-%02d", p)]
			}
		}
	}
	return nil
}

// projectedLocked is the monitor's JCT estimate: the measured JCT once
// the run ended, otherwise the predicted JCT plus the observed schedule
// slip.
func (m *Monitor) projectedLocked() time.Duration {
	if m.ended {
		return m.end - m.t0
	}
	if m.pred == nil {
		return 0
	}
	return m.pred.JCT + m.slip
}

// TransitionsSince returns the transitions with Seq > after, oldest
// first — the /qos SSE resume primitive.
func (m *Monitor) TransitionsSince(after int) []Transition {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after >= len(m.transitions) {
		return nil
	}
	out := make([]Transition, len(m.transitions)-after)
	copy(out, m.transitions[after:])
	return out
}

// State reports the current deadline-risk state.
func (m *Monitor) State() State {
	if m == nil {
		return OnTrack
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// TermStatus is one term's drift line in a snapshot.
type TermStatus struct {
	Term      string        `json:"term"`
	Predicted time.Duration `json:"predicted_ns"`
	// ObservedMean is the mean observed per-task value (0 before any task
	// of the stage completed).
	ObservedMean time.Duration `json:"observed_mean_ns"`
	Score        float64       `json:"score"`
	Drifted      bool          `json:"drifted"`
}

// StageStatus is one stage's progress and drift lines in a snapshot.
type StageStatus struct {
	Name        string        `json:"name"`
	Tasks       int           `json:"tasks"`
	Done        int           `json:"done"`
	Completed   bool          `json:"completed"`
	Milestone   bool          `json:"milestone"`
	PredEnd     time.Duration `json:"pred_end_ns"`
	CompletedAt time.Duration `json:"completed_at_ns,omitempty"`
	Terms       []TermStatus  `json:"terms,omitempty"`
}

// CostStatus is the burn section of a snapshot.
type CostStatus struct {
	SpentUSD     float64 `json:"spent_usd"`
	PredictedUSD float64 `json:"predicted_usd"`
	WastedUSD    float64 `json:"wasted_usd"`
}

// Snapshot is a frozen monitor state, JSON-stable: stages in schedule
// order, terms in the fixed startup/compute/io/waiting order, transitions
// in firing order.
type Snapshot struct {
	Tenant string `json:"tenant,omitempty"`
	Job    string `json:"job,omitempty"`
	State  string `json:"state"`
	Began  bool   `json:"began"`
	Ended  bool   `json:"ended"`

	Elapsed      time.Duration `json:"elapsed_ns"`
	Deadline     time.Duration `json:"deadline_ns"`
	PredictedJCT time.Duration `json:"predicted_jct_ns"`
	ProjectedJCT time.Duration `json:"projected_jct_ns"`
	Slack        time.Duration `json:"slack_ns"`
	Slip         time.Duration `json:"slip_ns"`

	Stages       []StageStatus `json:"stages,omitempty"`
	Cost         CostStatus    `json:"cost"`
	DriftedTerms int           `json:"drifted_terms"`
	Transitions  []Transition  `json:"transitions,omitempty"`
}

// Snapshot freezes the monitor's current state.
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{State: OnTrack.String()}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		Tenant:       m.tenant,
		Job:          m.job,
		State:        m.state.String(),
		Began:        m.began,
		Ended:        m.ended,
		Elapsed:      m.clock - m.t0,
		Deadline:     m.deadline,
		ProjectedJCT: m.projectedLocked(),
		Slip:         m.slip,
		DriftedTerms: m.drifted,
	}
	if m.pred != nil {
		snap.PredictedJCT = m.pred.JCT
	}
	if m.deadline > 0 {
		snap.Slack = m.deadline - snap.ProjectedJCT
	}
	snap.Cost.SpentUSD = float64(m.spentLocked())
	snap.Cost.WastedUSD = float64(m.wastedUSD)
	if m.pred != nil && m.pred.JCT > 0 {
		frac := float64(snap.Elapsed) / float64(m.pred.JCT)
		if frac > 1 {
			frac = 1
		}
		snap.Cost.PredictedUSD = float64(m.pred.CostUSD) * frac
	}
	for _, st := range m.stages {
		ss := StageStatus{
			Name: st.name, Tasks: st.tasks, Done: len(st.done),
			Completed: st.completed, Milestone: st.milestone,
			PredEnd: st.predEnd, CompletedAt: st.completeAt,
		}
		if st.predDur > 0 {
			pred := [4]time.Duration{st.pred.Startup, st.pred.Compute, st.pred.IO, st.pred.Waiting}
			for i := range termNames {
				ts := TermStatus{
					Term: termNames[i], Predicted: pred[i],
					Score: st.cusum[i], Drifted: st.drifted[i],
				}
				if st.obsN > 0 {
					ts.ObservedMean = st.obsSum[i] / time.Duration(st.obsN)
				}
				ss.Terms = append(ss.Terms, ts)
			}
		}
		snap.Stages = append(snap.Stages, ss)
	}
	if len(m.transitions) > 0 {
		snap.Transitions = make([]Transition, len(m.transitions))
		copy(snap.Transitions, m.transitions)
	}
	return snap
}

// microUSD encodes a dollar amount for an integer gauge.
func microUSD(v pricing.USD) int64 { return int64(float64(v) * 1e6) }

// publishLocked mirrors the monitor's headline state into the telemetry
// registry as astra_qos_* series. Counters are raised to the monitor's
// totals (never incremented blindly), so repeated publishes are
// idempotent.
func (m *Monitor) publishLocked() {
	if m.tel == nil {
		return
	}
	m.tel.Gauge(telemetry.MQoSState).Set(int64(m.state))
	m.tel.Gauge(telemetry.MQoSDeadlineNanos).Set(int64(m.deadline))
	if m.pred != nil {
		m.tel.Gauge(telemetry.MQoSPredictedJCTNanos).Set(int64(m.pred.JCT))
	}
	proj := m.projectedLocked()
	m.tel.Gauge(telemetry.MQoSProjectedJCTNanos).Set(int64(proj))
	if m.deadline > 0 {
		m.tel.Gauge(telemetry.MQoSSlackNanos).Set(int64(m.deadline - proj))
	}
	m.tel.Gauge(telemetry.MQoSSlipNanos).Set(int64(m.slip))
	m.tel.Gauge(telemetry.MQoSDriftedTerms).Set(int64(m.drifted))
	m.tel.Gauge(telemetry.MQoSSpentMicroUSD).Set(microUSD(m.spentLocked()))
	m.tel.Gauge(telemetry.MQoSWastedMicroUSD).Set(microUSD(m.wastedUSD))
	if m.pred != nil && m.pred.JCT > 0 {
		frac := float64(m.clock-m.t0) / float64(m.pred.JCT)
		if frac > 1 {
			frac = 1
		}
		m.tel.Gauge(telemetry.MQoSPredictedMicroUSD).Set(microUSD(pricing.USD(float64(m.pred.CostUSD) * frac)))
	}
	raiseCounter(m.tel, telemetry.MQoSTransitions, int64(len(m.transitions)))
}

// raiseCounter lifts a counter to an externally-tracked total without
// double-counting across publishes.
func raiseCounter(reg *telemetry.Registry, name string, total int64) {
	c := reg.Counter(name)
	if d := total - c.Value(); d > 0 {
		c.Add(d)
	}
}
