package qos

import (
	"testing"
	"time"

	"astra/internal/flight"
	"astra/internal/mapreduce"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/telemetry"
)

// testBreakdown is a synthetic predicted schedule: map 10s, coordinator
// 2s, one reducing step 8s — predicted JCT 20s.
func testBreakdown() *flight.Breakdown {
	return &flight.Breakdown{
		JCT:     20 * time.Second,
		CostUSD: 1.0,
		Stages: []flight.Stage{
			{Name: "map", Duration: 10 * time.Second, Terms: flight.StageTerms{
				Startup: 1 * time.Second, Compute: 5 * time.Second,
				IO: 3 * time.Second, Waiting: 1 * time.Second}},
			{Name: "coordinator", Duration: 2 * time.Second, Terms: flight.StageTerms{
				Startup: 500 * time.Millisecond, Compute: 1 * time.Second,
				IO: 500 * time.Millisecond}},
			{Name: "step-00", Duration: 8 * time.Second, Terms: flight.StageTerms{
				Startup: 1 * time.Second, Compute: 4 * time.Second,
				IO: 2 * time.Second, Waiting: 1 * time.Second}},
		},
	}
}

func testStages() []mapreduce.QoSStage {
	return []mapreduce.QoSStage{
		{Name: "map", Tasks: 2},
		{Name: "coordinator", Tasks: 1},
		{Name: "step-00", Tasks: 2},
	}
}

// TestRiskCrossingInstantIsAnalytic: with the map milestone predicted to
// end at 10s, predicted JCT 20s, deadline 30s and a 5% margin (threshold
// 28.5s), an overdue map stage must flip at_risk at exactly
// 10s + (28.5s - 20s) = 18.5s and breach at exactly the 30s deadline —
// regardless of when Poll happens to run.
func TestRiskCrossingInstantIsAnalytic(t *testing.T) {
	mk := func() *Monitor {
		m := New(Options{Predicted: testBreakdown(), Deadline: 30 * time.Second})
		m.BeginRun(nil, 0, testStages())
		return m
	}
	coarse := mk()
	coarse.Poll(40 * time.Second)
	fine := mk()
	for _, at := range []time.Duration{9 * time.Second, 18 * time.Second,
		19 * time.Second, 28 * time.Second, 31 * time.Second, 40 * time.Second} {
		fine.Poll(simtime.Time(at))
	}
	for name, m := range map[string]*Monitor{"coarse": coarse, "fine": fine} {
		txs := m.TransitionsSince(0)
		if len(txs) != 2 {
			t.Fatalf("%s: got %d transitions, want 2: %+v", name, len(txs), txs)
		}
		if txs[0].State != "at_risk" || txs[0].At != 18500*time.Millisecond {
			t.Fatalf("%s: at_risk transition %+v, want at 18.5s", name, txs[0])
		}
		if txs[1].State != "breached" || txs[1].At != 30*time.Second {
			t.Fatalf("%s: breach transition %+v, want at 30s", name, txs[1])
		}
	}
}

// TestOnScheduleRunStaysOnTrack: completing every milestone on or ahead
// of its predicted end accumulates no slip and records no transitions.
func TestOnScheduleRunStaysOnTrack(t *testing.T) {
	rec := flight.New()
	m := New(Options{Predicted: testBreakdown(), Deadline: 30 * time.Second})
	m.BeginRun(rec, 0, testStages())
	// Each task's terms track the prediction: 1s startup, the predicted
	// compute span, and the remainder attributed to I/O, leaving a zero
	// waiting residual.
	emitTask := func(inv int64, label string, start, end, compute time.Duration) {
		begin := start + time.Second
		rec.Emit(flight.Event{Kind: flight.KindInvokeScheduled, Inv: inv,
			Label: label, Start: simtime.Time(start), Time: simtime.Time(start)})
		if compute > 0 {
			rec.Emit(flight.Event{Kind: flight.KindCompute, Inv: inv,
				Start: simtime.Time(begin), Time: simtime.Time(begin + compute)})
			rec.Emit(flight.Event{Kind: flight.KindStoreGet, Inv: inv,
				Start: simtime.Time(begin + compute), Time: simtime.Time(end)})
		}
		rec.Emit(flight.Event{Kind: flight.KindInvokeDone, Inv: inv, Label: label,
			Start: simtime.Time(begin), Time: simtime.Time(end),
			MemoryMB: 1024})
	}
	emitTask(1, "map-0", 0, 8*time.Second, 5*time.Second)
	emitTask(2, "map-1", 0, 9*time.Second, 5*time.Second)
	m.Poll(9 * time.Second)
	emitTask(3, "red-0-0", 12*time.Second, 18*time.Second, 4*time.Second)
	emitTask(4, "red-0-1", 12*time.Second, 19*time.Second, 4*time.Second)
	emitTask(5, "coordinator", 10*time.Second, 19500*time.Millisecond, 0)
	m.EndRun(19500 * time.Millisecond)
	snap := m.Snapshot()
	if snap.State != "on_track" || len(snap.Transitions) != 0 {
		t.Fatalf("on-schedule run left on_track: %+v", snap)
	}
	if snap.Slip != 0 {
		t.Fatalf("on-schedule run slipped %v", snap.Slip)
	}
	if snap.ProjectedJCT != 19500*time.Millisecond {
		t.Fatalf("ended projection %v, want measured 19.5s", snap.ProjectedJCT)
	}
}

// TestPlannedOverrunIsAtRiskFromStart: when the plan alone exceeds the
// risk threshold, the monitor flags at_risk at t=0.
func TestPlannedOverrunIsAtRiskFromStart(t *testing.T) {
	m := New(Options{Predicted: testBreakdown(), Deadline: 20 * time.Second})
	m.BeginRun(nil, 0, testStages())
	txs := m.TransitionsSince(0)
	if len(txs) != 1 || txs[0].State != "at_risk" || txs[0].At != 0 {
		t.Fatalf("planned overrun not flagged at t=0: %+v", txs)
	}
}

// TestDriftCUSUM: a stage whose observed compute term blows past the
// prediction must raise exactly one drift transition for (map, compute),
// while on-prediction terms stay quiet.
func TestDriftCUSUM(t *testing.T) {
	rec := flight.New()
	m := New(Options{Predicted: testBreakdown(), Deadline: time.Hour})
	m.BeginRun(rec, 0, testStages())
	// Task map-0: startup 1s (as predicted), compute 15s (predicted 5s:
	// normalized error (15-5)/5 = 2.0 >= k + h), no IO.
	rec.Emit(flight.Event{Kind: flight.KindInvokeScheduled, Inv: 1, Label: "map-0",
		Start: 0, Time: 0})
	rec.Emit(flight.Event{Kind: flight.KindCompute, Inv: 1,
		Start: simtime.Time(time.Second), Time: simtime.Time(16 * time.Second)})
	rec.Emit(flight.Event{Kind: flight.KindInvokeDone, Inv: 1, Label: "map-0",
		Start: simtime.Time(time.Second), Time: simtime.Time(16 * time.Second),
		MemoryMB: 1024})
	m.Poll(16 * time.Second)
	var drifts []Transition
	for _, tr := range m.TransitionsSince(0) {
		if tr.Kind == "drift" {
			drifts = append(drifts, tr)
		}
	}
	if len(drifts) != 1 {
		t.Fatalf("got %d drift transitions, want 1: %+v", len(drifts), drifts)
	}
	if drifts[0].Stage != "map" || drifts[0].Term != "compute" {
		t.Fatalf("drift attributed to %s/%s, want map/compute", drifts[0].Stage, drifts[0].Term)
	}
	snap := m.Snapshot()
	if snap.DriftedTerms != 1 {
		t.Fatalf("snapshot drifted terms %d, want 1", snap.DriftedTerms)
	}
}

// TestCostBurnBillsTerminalEvents: terminal invocation events bill
// duration + invocation fees; failed attempts land in wasted too.
func TestCostBurnBillsTerminalEvents(t *testing.T) {
	sheet := pricing.AWS()
	rec := flight.New()
	m := New(Options{Deadline: time.Hour})
	m.EnsurePlan(testBreakdown(), sheet)
	m.BeginRun(rec, 0, testStages())
	rec.Emit(flight.Event{Kind: flight.KindInvokeScheduled, Inv: 1, Label: "map-0"})
	rec.Emit(flight.Event{Kind: flight.KindInvokeDone, Inv: 1, Label: "map-0",
		Start: 0, Time: simtime.Time(10 * time.Second), MemoryMB: 1024})
	rec.Emit(flight.Event{Kind: flight.KindInvokeScheduled, Inv: 2, Label: "map-1"})
	rec.Emit(flight.Event{Kind: flight.KindInvokeError, Inv: 2, Label: "map-1",
		Start: 0, Time: simtime.Time(5 * time.Second), MemoryMB: 1024})
	rec.Emit(flight.Event{Kind: flight.KindStoreGet, Inv: 1, Bucket: "b", Key: "k",
		Start: 0, Time: simtime.Time(time.Second)})
	m.Poll(10 * time.Second)
	snap := m.Snapshot()
	wantOK := sheet.Lambda.DurationCost(1024, 10*time.Second) + sheet.Lambda.InvocationCost(1)
	wantBad := sheet.Lambda.DurationCost(1024, 5*time.Second) + sheet.Lambda.InvocationCost(1)
	wantSpent := float64(wantOK + wantBad + sheet.Store.RequestCost(1, 0))
	if snap.Cost.SpentUSD != wantSpent {
		t.Fatalf("spent %v, want %v", snap.Cost.SpentUSD, wantSpent)
	}
	if snap.Cost.WastedUSD != float64(wantBad) {
		t.Fatalf("wasted %v, want %v", snap.Cost.WastedUSD, float64(wantBad))
	}
}

// TestEnsurePlanDefaultsDeadline: an unset deadline defaults to 1.5x the
// predicted JCT, and explicit options are never overridden.
func TestEnsurePlanDefaultsDeadline(t *testing.T) {
	m := New(Options{})
	m.EnsurePlan(testBreakdown(), pricing.AWS())
	if got := m.Snapshot().Deadline; got != 30*time.Second {
		t.Fatalf("default deadline %v, want 30s", got)
	}
	m2 := New(Options{Deadline: 7 * time.Second})
	m2.EnsurePlan(testBreakdown(), pricing.AWS())
	if got := m2.Snapshot().Deadline; got != 7*time.Second {
		t.Fatalf("explicit deadline overridden: %v", got)
	}
}

// TestLedgerAggregation: outcomes aggregate per (tenant, job) with
// deterministic ordering, windowed burn rates, and idempotent publishing.
func TestLedgerAggregation(t *testing.T) {
	l := NewLedger()
	l.Record(Outcome{Tenant: "b", Job: "sort", Attained: true, CostUSD: 1})
	l.Record(Outcome{Tenant: "a", Job: "wc", Attained: false,
		Reason: "deadline_exceeded", CostUSD: 2, WastedUSD: 0.5})
	l.Record(Outcome{Tenant: "a", Job: "wc", Attained: true, CostUSD: 1})
	snap := l.Snapshot()
	if snap.Runs != 3 || snap.Attained != 2 || snap.Breached != 1 {
		t.Fatalf("totals %+v", snap)
	}
	if len(snap.Entries) != 2 || snap.Entries[0].Tenant != "a" || snap.Entries[1].Tenant != "b" {
		t.Fatalf("entry order %+v", snap.Entries)
	}
	e := snap.Entries[0]
	if e.Runs != 2 || e.AttainmentRate != 0.5 || e.WindowRuns != 2 || e.WindowBurnRate != 0.5 {
		t.Fatalf("entry a/wc %+v", e)
	}
	if len(e.BreachReasons) != 1 || e.BreachReasons[0].Reason != "deadline_exceeded" {
		t.Fatalf("breach reasons %+v", e.BreachReasons)
	}
	reg := telemetry.New()
	l.Publish(reg)
	l.Publish(reg) // must not double-count
	if got := reg.Counter(telemetry.MQoSSLORuns).Value(); got != 3 {
		t.Fatalf("published runs %d, want 3", got)
	}
	if got := reg.Counter(telemetry.MQoSSLOAttained).Value(); got != 2 {
		t.Fatalf("published attained %d, want 2", got)
	}
}

// TestMonitorRecordsLedgerOutcome: EndRun settles the run into the
// attached ledger with the breach category.
func TestMonitorRecordsLedgerOutcome(t *testing.T) {
	l := NewLedger()
	m := New(Options{Predicted: testBreakdown(), Deadline: 30 * time.Second,
		Tenant: "t", Job: "j", Ledger: l})
	m.BeginRun(nil, 0, testStages())
	m.Poll(40 * time.Second)
	m.EndRun(45 * time.Second)
	snap := l.Snapshot()
	if snap.Runs != 1 || snap.Breached != 1 {
		t.Fatalf("ledger %+v", snap)
	}
	if r := snap.Entries[0].BreachReasons; len(r) != 1 || r[0].Reason != "deadline_exceeded" {
		t.Fatalf("breach reasons %+v", r)
	}
	// EndRun is idempotent: a second call must not double-record.
	m.EndRun(45 * time.Second)
	if got := l.Snapshot().Runs; got != 1 {
		t.Fatalf("double EndRun recorded %d runs", got)
	}
}

// TestNilSafety: every method on nil receivers is a no-op.
func TestNilSafety(t *testing.T) {
	var m *Monitor
	m.EnsurePlan(testBreakdown(), pricing.AWS())
	m.BeginRun(flight.New(), 0, testStages())
	m.Poll(time.Second)
	m.EndRun(2 * time.Second)
	if s := m.Snapshot(); s.State != "on_track" {
		t.Fatalf("nil snapshot %+v", s)
	}
	if txs := m.TransitionsSince(0); txs != nil {
		t.Fatalf("nil transitions %+v", txs)
	}
	var l *Ledger
	l.Record(Outcome{})
	l.Publish(telemetry.New())
	if s := l.Snapshot(); s.Runs != 0 {
		t.Fatalf("nil ledger %+v", s)
	}
}
