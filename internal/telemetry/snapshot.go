package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// HistogramSnapshot is one histogram's frozen state. Counts are
// per-bucket (non-cumulative); the last entry counts observations above
// every bound (+Inf).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a point-in-time copy of a registry: safe to read, diff and
// export while the live registry keeps moving.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans"`
	SpanDrops  int64                        `json:"span_drops"`
}

// Snapshot freezes the registry's current state. On a nil registry it
// returns an empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    math.Float64frombits(h.sumBits.Load()),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	r.mu.RUnlock()
	r.spanMu.Lock()
	s.Spans = append([]SpanRecord(nil), r.spans...)
	s.SpanDrops = r.spanDrops
	r.spanMu.Unlock()
	return s
}

// Counter reads one counter from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge reads one gauge from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// CounterDelta reports how much a counter grew since an earlier
// snapshot of the same registry.
func (s Snapshot) CounterDelta(prev Snapshot, name string) int64 {
	return s.Counters[name] - prev.Counters[name]
}

// SpansUnder returns the snapshot's spans whose path equals prefix or
// lives beneath it, in completion order.
func (s Snapshot) SpansUnder(prefix string) []SpanRecord {
	var out []SpanRecord
	for _, sp := range s.Spans {
		if sp.Path == prefix || strings.HasPrefix(sp.Path, prefix+"/") {
			out = append(out, sp)
		}
	}
	return out
}

// sortedKeys returns map keys in lexicographic order so exports are
// deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promFloat renders a float per the Prometheus 0.0.4 text exposition
// rules: the special values are spelled "+Inf", "-Inf" and "NaN", and
// everything else uses Go's shortest %g form (which the format accepts).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// labelEscaper rewrites a label value per the 0.0.4 text format: the only
// characters with escape sequences are backslash, double-quote and
// newline; every other byte passes through raw (label values are
// arbitrary UTF-8, so Go's %q — which escapes non-ASCII — is wrong here).
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue renders a label value for the text exposition format.
func EscapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// LabelSeries builds a labeled series name — family{k1="v1",k2="v2"} —
// escaping each value per the exposition rules. Pairs are emitted in the
// given order; callers wanting one series must pass a stable order. The
// exporter understands these names: the TYPE comment uses the bare
// family, and histogram suffixes (_bucket, _sum, _count) are spliced in
// before the label set.
func LabelSeries(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// splitSeries separates a series name into its family and label body:
// "f{a=\"1\"}" -> ("f", `a="1"`); a bare name has an empty body.
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// series derives a suffixed series name, merging extra labels with the
// base name's own: series("f{a=\"1\"}", "_bucket", `le="2"`) ->
// `f_bucket{a="1",le="2"}`.
func series(name, suffix, extra string) string {
	family, labels := splitSeries(name)
	switch {
	case labels == "" && extra == "":
		return family + suffix
	case labels == "":
		return family + suffix + "{" + extra + "}"
	case extra == "":
		return family + suffix + "{" + labels + "}"
	}
	return family + suffix + "{" + labels + "," + extra + "}"
}

// writeFamily emits the TYPE comment for a series' family once per
// export (labeled variants of one family share a single comment).
func writeFamily(w io.Writer, seen map[string]bool, name, suffix, kind string) error {
	family, _ := splitSeries(name)
	family += suffix
	if seen[family] {
		return nil
	}
	seen[family] = true
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
	return err
}

// WritePrometheus renders the snapshot's counters, gauges and histograms
// in the Prometheus text exposition format (version 0.0.4): one TYPE
// comment per family, cumulative le-labelled buckets plus _sum and
// _count for histograms. Metric names built with LabelSeries render as
// labeled series under their family's single TYPE comment, label values
// are escaped per the format, non-finite floats are spelled +Inf/-Inf/
// NaN, and the +Inf bucket is always emitted — even for a histogram
// snapshot whose Counts slice is short (e.g. one that crossed a JSON
// round-trip). Span records are not exported here — they are trace
// data, available via WriteJSON and the Gantt renderer.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	seen := make(map[string]bool)
	for _, name := range sortedKeys(s.Counters) {
		if err := writeFamily(w, seen, name, "", "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := writeFamily(w, seen, name, "", "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if err := writeFamily(w, seen, name, "", "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			le := `le="` + EscapeLabelValue(promFloat(bound)) + `"`
			if _, err := fmt.Fprintf(w, "%s %d\n", series(name, "_bucket", le), cum); err != nil {
				return err
			}
		}
		// The +Inf bucket is mandatory and must equal _count; fold in
		// whatever counts remain beyond the explicit bounds.
		for i := len(h.Bounds); i < len(h.Counts); i++ {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series(name, "_bucket", `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
			series(name, "_sum", ""), promFloat(h.Sum),
			series(name, "_count", ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the full snapshot — metrics and span records — as an
// indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
