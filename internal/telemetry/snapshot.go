package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// HistogramSnapshot is one histogram's frozen state. Counts are
// per-bucket (non-cumulative); the last entry counts observations above
// every bound (+Inf).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a point-in-time copy of a registry: safe to read, diff and
// export while the live registry keeps moving.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans"`
	SpanDrops  int64                        `json:"span_drops"`
}

// Snapshot freezes the registry's current state. On a nil registry it
// returns an empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    math.Float64frombits(h.sumBits.Load()),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	r.mu.RUnlock()
	r.spanMu.Lock()
	s.Spans = append([]SpanRecord(nil), r.spans...)
	s.SpanDrops = r.spanDrops
	r.spanMu.Unlock()
	return s
}

// Counter reads one counter from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge reads one gauge from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// CounterDelta reports how much a counter grew since an earlier
// snapshot of the same registry.
func (s Snapshot) CounterDelta(prev Snapshot, name string) int64 {
	return s.Counters[name] - prev.Counters[name]
}

// SpansUnder returns the snapshot's spans whose path equals prefix or
// lives beneath it, in completion order.
func (s Snapshot) SpansUnder(prefix string) []SpanRecord {
	var out []SpanRecord
	for _, sp := range s.Spans {
		if sp.Path == prefix || strings.HasPrefix(sp.Path, prefix+"/") {
			out = append(out, sp)
		}
	}
	return out
}

// sortedKeys returns map keys in lexicographic order so exports are
// deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promFloat renders a float the way Prometheus text exposition expects.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the snapshot's counters, gauges and histograms
// in the Prometheus text exposition format (version 0.0.4): one TYPE
// comment per family, cumulative le-labelled buckets plus _sum and
// _count for histograms. Span records are not exported here — they are
// trace data, available via WriteJSON and the Gantt renderer.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			bound := math.Inf(1)
			if i < len(h.Bounds) {
				bound = h.Bounds[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the full snapshot — metrics and span records — as an
// indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
