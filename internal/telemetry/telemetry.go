// Package telemetry is Astra's dependency-light observability layer:
// atomic counters, gauges, bounded histograms, and hierarchical spans
// over wall and virtual time, collected in a Registry and exported as
// Prometheus text exposition or JSON (see Snapshot).
//
// The design goal is a zero-cost default: every method is safe on a nil
// receiver and returns immediately, so instrumented code holds plain
// pointers and pays a nil-check — no allocation, no locking — when
// telemetry is disabled. Enabling telemetry must not perturb results
// either: metrics are observations only, and the plan-search engine
// stays bit-deterministic with a registry attached (counters are updated
// with atomics; nothing reads them back into the search).
//
// Registries travel through context (NewContext/FromContext) so the
// concurrent search engine's existing context plumbing carries the
// registry down to the graph solvers and the worker pool without new
// parameters. All operations are safe for concurrent use.
package telemetry

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// of *Counter (nil) is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. The zero value of *Gauge
// (nil) is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v; no-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reports the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram: observations are
// counted into the first bucket whose upper bound is >= the value, plus
// an implicit +Inf bucket, with a running sum and count. Buckets are
// fixed at creation; the zero value of *Histogram (nil) is a no-op.
type Histogram struct {
	bounds  []float64      // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value; no-op on a nil receiver.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records the value v as n identical observations in one shot —
// one bucket lookup, one atomic add per field. It exists for samplers
// that translate externally-aggregated histograms (the runtime/metrics
// GC-pause and sched-latency distributions) into registry histograms by
// bucket-count deltas. No-op on a nil receiver or non-positive n.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// DurationBuckets is the default bucket set for wall/virtual durations in
// seconds: 100 us up to ~17 minutes in decade-and-a-half steps.
var DurationBuckets = []float64{1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60, 300, 1000}

// SizeBuckets is the default bucket set for counts and sizes (powers of
// four up to ~one million).
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// SpanRecord is one finished span. Hierarchy is encoded in the path
// ("plan/solve/algorithm1/round"); wall time is always present, virtual
// time only when the instrumented code runs on the simulated clock.
type SpanRecord struct {
	// Path is the '/'-joined span hierarchy.
	Path string `json:"path"`
	// Seq orders spans by completion within one registry.
	Seq int64 `json:"seq"`
	// WallStart is when the span started, on the host clock.
	WallStart time.Time `json:"wall_start"`
	// Wall is the span's wall-clock duration.
	Wall time.Duration `json:"wall_ns"`
	// VirtStart/Virt describe the span on the simulation's virtual
	// clock; valid only when HasVirtual is set.
	VirtStart  time.Duration `json:"virt_start_ns,omitempty"`
	Virt       time.Duration `json:"virt_ns,omitempty"`
	HasVirtual bool          `json:"has_virtual,omitempty"`
}

// Span is an in-flight span. A nil *Span is a no-op, so call sites need
// no branches; Child on a nil span returns nil.
type Span struct {
	reg       *Registry
	path      string
	wallStart time.Time
	virtStart time.Duration
	virtEnd   time.Duration
	hasVirt   bool
}

// Child opens a sub-span whose path extends the receiver's.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, wallStart: time.Now()}
}

// SetVirtual attaches the span's interval on the simulation's virtual
// clock (simtime.Time is a time.Duration, so this stays dependency-free).
func (s *Span) SetVirtual(start, end time.Duration) {
	if s == nil {
		return
	}
	s.virtStart, s.virtEnd, s.hasVirt = start, end, true
}

// End finishes the span and records it into the registry's bounded span
// buffer.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Path:      s.path,
		WallStart: s.wallStart,
		Wall:      time.Since(s.wallStart),
	}
	if s.hasVirt {
		rec.VirtStart = s.virtStart
		rec.Virt = s.virtEnd - s.virtStart
		rec.HasVirtual = true
	}
	s.reg.record(rec)
}

// DefaultSpanCap bounds the per-registry span buffer; completions past
// the cap are counted (SpanDrops) rather than stored, so a pathological
// search cannot grow memory without bound.
const DefaultSpanCap = 8192

// Registry holds one coherent set of metrics and spans. The zero value
// of *Registry (nil) is the no-op default: every method returns
// immediately. Construct with New and share freely across goroutines.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu    sync.Mutex
	spans     []SpanRecord
	spanCap   int
	spanSeq   int64
	spanDrops int64
}

// New creates an empty registry with the default span cap.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spanCap:  DefaultSpanCap,
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (the no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on nil).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later callers' bounds are ignored;
// nil/empty bounds default to DurationBuckets). Returns nil on nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// StartSpan opens a root span (nil on a nil registry).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, path: name, wallStart: time.Now()}
}

// RecordVirtual records a completed span that lived purely on the
// simulation's virtual clock (wall duration zero) — how the platform
// reports phase intervals after a run.
func (r *Registry) RecordVirtual(path string, start, end time.Duration) {
	if r == nil {
		return
	}
	r.record(SpanRecord{
		Path:       path,
		WallStart:  time.Now(),
		VirtStart:  start,
		Virt:       end - start,
		HasVirtual: true,
	})
}

// record appends a finished span, honoring the buffer cap.
func (r *Registry) record(rec SpanRecord) {
	if r == nil {
		return
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	r.spanSeq++
	rec.Seq = r.spanSeq
	if len(r.spans) >= r.spanCap {
		r.spanDrops++
		return
	}
	r.spans = append(r.spans, rec)
}

// SetSpanCap overrides the span buffer bound (for tests and small
// embedded uses). Existing spans are kept even if over the new cap.
func (r *Registry) SetSpanCap(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.spanMu.Lock()
	r.spanCap = n
	r.spanMu.Unlock()
}

// ctxKey keys the registry in a context.
type ctxKey struct{}

// NewContext returns ctx carrying reg. A nil registry returns ctx
// unchanged, so the disabled path allocates nothing.
func NewContext(ctx context.Context, reg *Registry) context.Context {
	if reg == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, reg)
}

// FromContext extracts the registry from ctx, or nil (the no-op
// registry) when absent.
func FromContext(ctx context.Context) *Registry {
	reg, _ := ctx.Value(ctxKey{}).(*Registry)
	return reg
}
