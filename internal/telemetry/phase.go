package telemetry

import (
	"context"
	"runtime/pprof"
)

// Planner and platform phase names, attached as the pprof label "phase"
// around the hot regions of the search engine and the simulator so CPU
// and heap profiles decompose by phase (go tool pprof -tagfocus
// phase=csp, or the /debug/pprof endpoints of the obs server). The
// constants are shared by the labeling call sites and the tests that
// assert a captured profile carries them.
const (
	PhaseDijkstra      = "dijkstra"
	PhaseAlgorithm1    = "algorithm1"
	PhaseYen           = "yen"
	PhaseCSP           = "csp"
	PhaseFrontierSweep = "frontier_sweep"
	PhaseSimulate      = "simulate"
)

// DoPhase runs f with the pprof label phase=name attached to the calling
// goroutine (and propagated, via ctx, to goroutines the region spawns
// with pprof.Do-aware plumbing). Labeling is profile-only metadata: it
// never changes scheduling, results or determinism, and its cost is two
// label-set swaps per call — so call sites wrap whole phases, not inner
// loops.
func DoPhase(ctx context.Context, name string, f func(context.Context)) {
	pprof.Do(ctx, pprof.Labels("phase", name), f)
}
