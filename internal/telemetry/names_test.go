package telemetry

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestChaosAndSpeculationNamesRoundTrip: every chaos and speculation
// metric name must be a valid Prometheus series that survives the
// exposition format round-trip with its value intact.
func TestChaosAndSpeculationNamesRoundTrip(t *testing.T) {
	names := []string{
		MStoreCopies,
		MChaosFaults, MChaosLambdaFaults, MChaosStoreFaults,
		MChaosStraggles, MChaosForcedColdStarts, MChaosThrottleRejects,
		MSpecLaunched, MSpecWins, MSpecLosses, MSpecCancelled, MSpecCommits,
	}
	reg := New()
	for i, n := range names {
		reg.Counter(n).Add(int64(i + 1))
	}
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	values := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		values[line[:sp]] = v
	}
	for i, n := range names {
		if !strings.HasPrefix(n, "astra_") || !strings.HasSuffix(n, "_total") {
			t.Errorf("%s: chaos/speculation counters must be astra_*_total", n)
		}
		if got, ok := values[n]; !ok || got != float64(i+1) {
			t.Errorf("%s: round-trip = %v (present %v), want %d", n, got, ok, i+1)
		}
	}
}

// TestFrontierAndBoundNamesRoundTrip: the frontier sweep's counters and
// the bounded search's prune counter must be valid astra_*_total series
// that survive the Prometheus round-trip.
func TestFrontierAndBoundNamesRoundTrip(t *testing.T) {
	names := []string{
		MFrontierPhases, MFrontierSearches, MFrontierPruned, MCSPBoundPrunes,
	}
	reg := New()
	for i, n := range names {
		reg.Counter(n).Add(int64(i + 1))
	}
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	values := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		values[line[:sp]] = v
	}
	for i, n := range names {
		if !strings.HasPrefix(n, "astra_") || !strings.HasSuffix(n, "_total") {
			t.Errorf("%s: frontier/bound counters must be astra_*_total", n)
		}
		if got, ok := values[n]; !ok || got != float64(i+1) {
			t.Errorf("%s: round-trip = %v (present %v), want %d", n, got, ok, i+1)
		}
	}
}
