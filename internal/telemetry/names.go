package telemetry

// Canonical metric names. Instrumented packages and readers (the explain
// report, the exporter tests) share these constants so a rename cannot
// silently desynchronize producer and consumer.
const (
	// Planner / search engine.
	MPlanSolves          = "astra_plan_solves_total"
	MPlanCalibrations    = "astra_plan_calibration_rounds_total"
	MPlanCacheHits       = "astra_plan_cache_hits_total"
	MPlanCacheMisses     = "astra_plan_cache_misses_total"
	MPlanCacheEvictions  = "astra_plan_cache_evictions_total"
	MDAGBuilds           = "astra_dag_builds_total"
	MDAGNodes            = "astra_dag_nodes"
	MDAGEdges            = "astra_dag_edges"
	MSearchDijkstraRuns  = "astra_search_dijkstra_runs_total"
	MSearchEdgesRelaxed  = "astra_search_edges_relaxed_total"
	MAlg1Rounds          = "astra_algorithm1_rounds_total"
	MAlg1EdgesRemoved    = "astra_algorithm1_edges_removed_total"
	MYenRounds           = "astra_yen_rounds_total"
	MYenSpurSearches     = "astra_yen_spur_searches_total"
	MCSPLabelsPopped     = "astra_csp_labels_popped_total"
	MCSPLabelsAllocated  = "astra_csp_labels_allocated_total"
	MCSPBoundPrunes      = "astra_csp_bound_prunes_total"
	MFrontierPhases      = "astra_frontier_phases_total"
	MFrontierSearches    = "astra_frontier_searches_total"
	MFrontierPruned      = "astra_frontier_pruned_total"
	MSearchScratchReuse  = "astra_search_scratch_reuse_total"
	MDAGScratchReuse     = "astra_dag_build_scratch_reuse_total"
	MPoolBatches         = "astra_pool_batches_total"
	MPoolSerialDegrades  = "astra_pool_serial_degrades_total"
	MPoolTasks           = "astra_pool_tasks_total"
	MPoolWorkersPeak     = "astra_pool_workers_peak"
	MPoolBatchSize       = "astra_pool_batch_size"
	MPoolQueueDepthPeak  = "astra_pool_queue_depth_peak"
	MPoolBusyWorkersPeak = "astra_pool_busy_workers_peak"

	// DAG-template cache (shared frozen CSR graphs across planner
	// instances): a hit skips BuildContext entirely, a wait is a caller
	// that blocked on another goroutine's in-flight build (singleflight).
	MPlanTemplateHits      = "astra_plan_template_hits_total"
	MPlanTemplateMisses    = "astra_plan_template_misses_total"
	MPlanTemplateBuilds    = "astra_plan_template_builds_total"
	MPlanTemplateEvictions = "astra_plan_template_evictions_total"
	MPlanTemplateWaits     = "astra_plan_template_waits_total"
	MPlanTemplateEntries   = "astra_plan_template_entries"

	// Process-wide shared prediction cache (cumulative, published by the
	// batch front-end and the load driver from PredictionCache.Stats so
	// /metrics shows cross-planner reuse, not one search's deltas).
	MPredCacheHits      = "astra_predcache_hits_total"
	MPredCacheMisses    = "astra_predcache_misses_total"
	MPredCacheEvictions = "astra_predcache_evictions_total"

	// Batch planning front-end.
	MBatchPlans  = "astra_batch_plans_total"
	MBatchErrors = "astra_batch_plan_errors_total"

	// Platform: lambda control plane.
	MLambdaInvocations     = "astra_lambda_invocations_total"
	MLambdaColdStarts      = "astra_lambda_cold_starts_total"
	MLambdaTimeouts        = "astra_lambda_timeouts_total"
	MLambdaErrors          = "astra_lambda_errors_total"
	MLambdaThrottles       = "astra_lambda_throttles_total"
	MLambdaRetries         = "astra_lambda_retries_total"
	MLambdaDurationSeconds = "astra_lambda_duration_seconds"
	MLambdaQueuedSeconds   = "astra_lambda_queued_seconds"
	MLambdaConcurrencyPeak = "astra_lambda_concurrency_peak"

	// Flight-recorder audit (model-accuracy gauges). Gauges are int64, so
	// percentages are exported as integer per-mille and absolute time
	// errors as nanoseconds; per-stage gauges are derived via
	// flight.StageGauge.
	MAuditStages            = "astra_audit_stages"
	MAuditJCTAbsErrorNanos  = "astra_audit_jct_abs_error_ns"
	MAuditJCTErrorPermille  = "astra_audit_jct_error_permille"
	MAuditCostErrorPermille = "astra_audit_cost_error_permille"
	MAuditStageMAPEPermille = "astra_audit_stage_mape_permille"

	// Platform: object store.
	MStoreGets     = "astra_store_get_total"
	MStorePuts     = "astra_store_put_total"
	MStoreLists    = "astra_store_list_total"
	MStoreHeads    = "astra_store_head_total"
	MStoreDeletes  = "astra_store_delete_total"
	MStoreCopies   = "astra_store_copy_total"
	MStoreBytesIn  = "astra_store_bytes_in_total"
	MStoreBytesOut = "astra_store_bytes_out_total"

	// Chaos engine: injected faults, by site and effect. MChaosFaults is
	// the cross-target total (lambda attempts faulted + store requests
	// aborted).
	MChaosFaults           = "astra_chaos_faults_total"
	MChaosLambdaFaults     = "astra_chaos_lambda_faults_total"
	MChaosStoreFaults      = "astra_chaos_store_faults_total"
	MChaosStraggles        = "astra_chaos_straggles_total"
	MChaosForcedColdStarts = "astra_chaos_forced_cold_starts_total"
	MChaosThrottleRejects  = "astra_chaos_throttle_rejects_total"

	// Speculative execution (driver-side straggler mitigation).
	MSpecLaunched  = "astra_speculation_backups_launched_total"
	MSpecWins      = "astra_speculation_wins_total"
	MSpecLosses    = "astra_speculation_losses_total"
	MSpecCancelled = "astra_speculation_cancelled_total"
	MSpecCommits   = "astra_speculation_commits_total"

	// Go runtime health, published by the obs package's sampler from
	// runtime/metrics so a /metrics scrape shows the process itself, not
	// just the simulation. Histograms translate the runtime's aggregated
	// distributions via bucket-count deltas (Histogram.ObserveN).
	MGoGoroutines       = "astra_go_goroutines"
	MGoHeapObjectsBytes = "astra_go_heap_objects_bytes"
	MGoMemTotalBytes    = "astra_go_mem_total_bytes"
	MGoGCCycles         = "astra_go_gc_cycles"
	MGoGCPauseSeconds   = "astra_go_gc_pause_seconds"
	MGoSchedLatSeconds  = "astra_go_sched_latency_seconds"
	MGoSamples          = "astra_go_samples_total"

	// Observability server: per-endpoint request counters (labeled
	// series via LabelSeries("astra_obs_http_requests_total", "path",
	// ...)), live SSE client gauge, and events dropped past slow SSE
	// clients (ring overwrites observed as sequence gaps).
	MObsHTTPRequests = "astra_obs_http_requests_total"
	MObsSSEClients   = "astra_obs_sse_clients"
	MObsSSEDropped   = "astra_obs_sse_dropped_total"

	// Streaming QoS monitor (internal/qos). State encodes the risk
	// verdict as an integer (0 on_track, 1 at_risk, 2 breached); times
	// are virtual nanoseconds, dollar amounts integer micro-USD. The SLO
	// counters aggregate ledger outcomes across runs; per-(tenant, job)
	// series are derived via LabelSeries(..., "key", tenant+"/"+job).
	MQoSState             = "astra_qos_state"
	MQoSProjectedJCTNanos = "astra_qos_projected_jct_ns"
	MQoSPredictedJCTNanos = "astra_qos_predicted_jct_ns"
	MQoSDeadlineNanos     = "astra_qos_deadline_ns"
	MQoSSlackNanos        = "astra_qos_slack_ns"
	MQoSSlipNanos         = "astra_qos_slip_ns"
	MQoSTransitions       = "astra_qos_transitions_total"
	MQoSDriftedTerms      = "astra_qos_drifted_terms"
	MQoSSpentMicroUSD     = "astra_qos_cost_spent_microusd"
	MQoSPredictedMicroUSD = "astra_qos_cost_predicted_microusd"
	MQoSWastedMicroUSD    = "astra_qos_cost_wasted_microusd"
	MQoSSLORuns           = "astra_qos_slo_runs_total"
	MQoSSLOAttained       = "astra_qos_slo_attained_total"
	MQoSSLOBreached       = "astra_qos_slo_breached_total"

	// Planning-as-a-service control plane (internal/server). Request
	// counters are labeled series (LabelSeries(MServerRequests,
	// "endpoint", ...), LabelSeries(MServerTenantRequests, "tenant", ...),
	// rejects by tenant+reason); the respcache family counts the TTL'd
	// response cache that sits above the template/prediction caches.
	MServerRequests           = "astra_server_requests_total"
	MServerTenantRequests     = "astra_server_tenant_requests_total"
	MServerRejects            = "astra_server_admission_rejects_total"
	MServerQueueDepth         = "astra_server_queue_depth"
	MServerInFlight           = "astra_server_in_flight"
	MServerRespCacheHits      = "astra_server_respcache_hits_total"
	MServerRespCacheMisses    = "astra_server_respcache_misses_total"
	MServerRespCacheExpired   = "astra_server_respcache_expired_total"
	MServerRespCacheEvictions = "astra_server_respcache_evictions_total"
	MServerRespCacheEntries   = "astra_server_respcache_entries"

	// Load driver client-side accounting: queue wait vs service time as
	// reported by the server's timing headers (nanosecond gauges hold the
	// latest p95), plus remote-mode outcome counters.
	MLoadgenQueueWait   = "astra_loadgen_queue_wait_ns"
	MLoadgenServiceTime = "astra_loadgen_service_time_ns"
	MLoadgenRateLimited = "astra_loadgen_rate_limited_total"
	MLoadgenTransport   = "astra_loadgen_transport_errors_total"
)
