package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilNoOp exercises every method on nil receivers: the disabled
// path must never panic and never allocate registry state.
func TestNilNoOp(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Add(3)
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(7)
	reg.Gauge("g").SetMax(9)
	reg.Gauge("g").Add(-1)
	reg.Histogram("h", nil).Observe(1.5)
	sp := reg.StartSpan("plan")
	sp.Child("solve").End()
	sp.SetVirtual(0, time.Second)
	sp.End()
	reg.RecordVirtual("run", 0, time.Second)
	reg.SetSpanCap(4)

	if v := reg.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d, want 0", v)
	}
	if v := reg.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %d, want 0", v)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}

	ctx := context.Background()
	if got := NewContext(ctx, nil); got != ctx {
		t.Error("NewContext(nil) should return ctx unchanged")
	}
	if got := FromContext(ctx); got != nil {
		t.Errorf("FromContext(bare ctx) = %v, want nil", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	reg := New()
	ctx := NewContext(context.Background(), reg)
	if got := FromContext(ctx); got != reg {
		t.Fatalf("FromContext = %p, want %p", got, reg)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := New()
	reg.Counter("c").Add(5)
	reg.Counter("c").Inc()
	if v := reg.Counter("c").Value(); v != 6 {
		t.Errorf("counter = %d, want 6", v)
	}

	g := reg.Gauge("g")
	g.Set(10)
	g.SetMax(4) // lower: ignored
	if v := g.Value(); v != 10 {
		t.Errorf("gauge after SetMax(4) = %d, want 10", v)
	}
	g.SetMax(15)
	if v := g.Value(); v != 15 {
		t.Errorf("gauge after SetMax(15) = %d, want 15", v)
	}

	h := reg.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms["h"]
	want := []int64{1, 1, 1, 1}
	if len(hs.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(hs.Counts), len(want))
	}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, hs.Counts[i], w)
		}
	}
	if hs.Count != 4 || hs.Sum != 555.5 {
		t.Errorf("count/sum = %d/%v, want 4/555.5", hs.Count, hs.Sum)
	}
}

func TestSpanPathsAndVirtualTime(t *testing.T) {
	reg := New()
	root := reg.StartSpan("plan")
	child := root.Child("solve").Child("yen")
	child.End()
	root.End()
	reg.RecordVirtual("run/map", 2*time.Second, 5*time.Second)

	snap := reg.Snapshot()
	if n := len(snap.Spans); n != 3 {
		t.Fatalf("span count = %d, want 3", n)
	}
	if snap.Spans[0].Path != "plan/solve/yen" {
		t.Errorf("first completed span = %q, want plan/solve/yen", snap.Spans[0].Path)
	}
	under := snap.SpansUnder("plan")
	if len(under) != 2 {
		t.Errorf("SpansUnder(plan) = %d spans, want 2", len(under))
	}
	virt := snap.Spans[2]
	if !virt.HasVirtual || virt.Virt != 3*time.Second || virt.VirtStart != 2*time.Second {
		t.Errorf("virtual span = %+v, want 2s..5s", virt)
	}
	// Seq orders completions.
	for i, sp := range snap.Spans {
		if sp.Seq != int64(i+1) {
			t.Errorf("span[%d].Seq = %d, want %d", i, sp.Seq, i+1)
		}
	}
}

func TestSpanCapDrops(t *testing.T) {
	reg := New()
	reg.SetSpanCap(2)
	for i := 0; i < 5; i++ {
		reg.StartSpan("s").End()
	}
	snap := reg.Snapshot()
	if len(snap.Spans) != 2 {
		t.Errorf("stored spans = %d, want 2", len(snap.Spans))
	}
	if snap.SpanDrops != 3 {
		t.Errorf("span drops = %d, want 3", snap.SpanDrops)
	}
}

// TestConcurrentHammer drives one registry from many goroutines — every
// metric kind plus spans — while other goroutines snapshot and export
// it. Run under -race, this is the subsystem's thread-safety proof; the
// final counts also verify no update was lost.
func TestConcurrentHammer(t *testing.T) {
	reg := New()
	reg.SetSpanCap(64)
	const goroutines = 16
	const perG = 500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("hits").Inc()
				reg.Counter("bytes").Add(8)
				reg.Gauge("depth").SetMax(int64(id*perG + i))
				reg.Histogram("lat", DurationBuckets).Observe(float64(i) * 1e-4)
				sp := reg.StartSpan("hammer")
				sp.Child("inner").End()
				sp.End()
			}
		}(g)
	}
	// Concurrent readers: snapshots and exports must not race with the
	// writers above.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				var buf bytes.Buffer
				if err := snap.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := reg.Snapshot()
	if got := snap.Counter("hits"); got != goroutines*perG {
		t.Errorf("hits = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Counter("bytes"); got != goroutines*perG*8 {
		t.Errorf("bytes = %d, want %d", got, goroutines*perG*8)
	}
	if got := snap.Gauge("depth"); got != goroutines*perG-1 {
		t.Errorf("depth max = %d, want %d", got, goroutines*perG-1)
	}
	if got := snap.Histograms["lat"].Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := len(snap.Spans) + int(snap.SpanDrops); got != goroutines*perG*2 {
		t.Errorf("spans stored+dropped = %d, want %d", got, goroutines*perG*2)
	}
}

// TestWritePrometheusParseBack renders the exposition format and parses
// it back line by line: every sample line must be "name value" (with an
// optional {le=...} label), histogram buckets must be cumulative, and
// the counter values must round-trip.
func TestWritePrometheusParseBack(t *testing.T) {
	reg := New()
	reg.Counter("astra_test_total").Add(42)
	reg.Gauge("astra_test_peak").Set(7)
	h := reg.Histogram("astra_test_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition must end with a newline")
	}

	values := map[string]float64{}
	var bucketCum []float64
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.HasPrefix(name, "astra_test_seconds_bucket{") {
			bucketCum = append(bucketCum, v)
			continue
		}
		values[name] = v
	}
	if values["astra_test_total"] != 42 {
		t.Errorf("counter round-trip = %v, want 42", values["astra_test_total"])
	}
	if values["astra_test_peak"] != 7 {
		t.Errorf("gauge round-trip = %v, want 7", values["astra_test_peak"])
	}
	if values["astra_test_seconds_count"] != 3 || values["astra_test_seconds_sum"] != 101 {
		t.Errorf("histogram sum/count = %v/%v, want 101/3",
			values["astra_test_seconds_sum"], values["astra_test_seconds_count"])
	}
	wantCum := []float64{1, 2, 3} // le=1, le=2, le=+Inf
	if len(bucketCum) != len(wantCum) {
		t.Fatalf("bucket lines = %d, want %d", len(bucketCum), len(wantCum))
	}
	for i, w := range wantCum {
		if bucketCum[i] != w {
			t.Errorf("cumulative bucket[%d] = %v, want %v", i, bucketCum[i], w)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(-2)
	reg.Histogram("h", []float64{1}).Observe(0.5)
	reg.StartSpan("plan").End()

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != -2 {
		t.Errorf("scalar round-trip = %+v", back)
	}
	if len(back.Spans) != 1 || back.Spans[0].Path != "plan" {
		t.Errorf("span round-trip = %+v", back.Spans)
	}
	if back.Histograms["h"].Count != 1 {
		t.Errorf("histogram round-trip = %+v", back.Histograms["h"])
	}
}

func TestCounterDelta(t *testing.T) {
	reg := New()
	reg.Counter("c").Add(5)
	before := reg.Snapshot()
	reg.Counter("c").Add(7)
	after := reg.Snapshot()
	if d := after.CounterDelta(before, "c"); d != 7 {
		t.Errorf("delta = %d, want 7", d)
	}
	if d := after.CounterDelta(before, "absent"); d != 0 {
		t.Errorf("absent delta = %d, want 0", d)
	}
}
