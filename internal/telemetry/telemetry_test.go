package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilNoOp exercises every method on nil receivers: the disabled
// path must never panic and never allocate registry state.
func TestNilNoOp(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Add(3)
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(7)
	reg.Gauge("g").SetMax(9)
	reg.Gauge("g").Add(-1)
	reg.Histogram("h", nil).Observe(1.5)
	sp := reg.StartSpan("plan")
	sp.Child("solve").End()
	sp.SetVirtual(0, time.Second)
	sp.End()
	reg.RecordVirtual("run", 0, time.Second)
	reg.SetSpanCap(4)

	if v := reg.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d, want 0", v)
	}
	if v := reg.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %d, want 0", v)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}

	ctx := context.Background()
	if got := NewContext(ctx, nil); got != ctx {
		t.Error("NewContext(nil) should return ctx unchanged")
	}
	if got := FromContext(ctx); got != nil {
		t.Errorf("FromContext(bare ctx) = %v, want nil", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	reg := New()
	ctx := NewContext(context.Background(), reg)
	if got := FromContext(ctx); got != reg {
		t.Fatalf("FromContext = %p, want %p", got, reg)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := New()
	reg.Counter("c").Add(5)
	reg.Counter("c").Inc()
	if v := reg.Counter("c").Value(); v != 6 {
		t.Errorf("counter = %d, want 6", v)
	}

	g := reg.Gauge("g")
	g.Set(10)
	g.SetMax(4) // lower: ignored
	if v := g.Value(); v != 10 {
		t.Errorf("gauge after SetMax(4) = %d, want 10", v)
	}
	g.SetMax(15)
	if v := g.Value(); v != 15 {
		t.Errorf("gauge after SetMax(15) = %d, want 15", v)
	}

	h := reg.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms["h"]
	want := []int64{1, 1, 1, 1}
	if len(hs.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(hs.Counts), len(want))
	}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, hs.Counts[i], w)
		}
	}
	if hs.Count != 4 || hs.Sum != 555.5 {
		t.Errorf("count/sum = %d/%v, want 4/555.5", hs.Count, hs.Sum)
	}
}

func TestSpanPathsAndVirtualTime(t *testing.T) {
	reg := New()
	root := reg.StartSpan("plan")
	child := root.Child("solve").Child("yen")
	child.End()
	root.End()
	reg.RecordVirtual("run/map", 2*time.Second, 5*time.Second)

	snap := reg.Snapshot()
	if n := len(snap.Spans); n != 3 {
		t.Fatalf("span count = %d, want 3", n)
	}
	if snap.Spans[0].Path != "plan/solve/yen" {
		t.Errorf("first completed span = %q, want plan/solve/yen", snap.Spans[0].Path)
	}
	under := snap.SpansUnder("plan")
	if len(under) != 2 {
		t.Errorf("SpansUnder(plan) = %d spans, want 2", len(under))
	}
	virt := snap.Spans[2]
	if !virt.HasVirtual || virt.Virt != 3*time.Second || virt.VirtStart != 2*time.Second {
		t.Errorf("virtual span = %+v, want 2s..5s", virt)
	}
	// Seq orders completions.
	for i, sp := range snap.Spans {
		if sp.Seq != int64(i+1) {
			t.Errorf("span[%d].Seq = %d, want %d", i, sp.Seq, i+1)
		}
	}
}

func TestSpanCapDrops(t *testing.T) {
	reg := New()
	reg.SetSpanCap(2)
	for i := 0; i < 5; i++ {
		reg.StartSpan("s").End()
	}
	snap := reg.Snapshot()
	if len(snap.Spans) != 2 {
		t.Errorf("stored spans = %d, want 2", len(snap.Spans))
	}
	if snap.SpanDrops != 3 {
		t.Errorf("span drops = %d, want 3", snap.SpanDrops)
	}
}

// TestConcurrentHammer drives one registry from many goroutines — every
// metric kind plus spans — while other goroutines snapshot and export
// it. Run under -race, this is the subsystem's thread-safety proof; the
// final counts also verify no update was lost.
func TestConcurrentHammer(t *testing.T) {
	reg := New()
	reg.SetSpanCap(64)
	const goroutines = 16
	const perG = 500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("hits").Inc()
				reg.Counter("bytes").Add(8)
				reg.Gauge("depth").SetMax(int64(id*perG + i))
				reg.Histogram("lat", DurationBuckets).Observe(float64(i) * 1e-4)
				sp := reg.StartSpan("hammer")
				sp.Child("inner").End()
				sp.End()
			}
		}(g)
	}
	// Concurrent readers: snapshots and exports must not race with the
	// writers above.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				var buf bytes.Buffer
				if err := snap.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := reg.Snapshot()
	if got := snap.Counter("hits"); got != goroutines*perG {
		t.Errorf("hits = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Counter("bytes"); got != goroutines*perG*8 {
		t.Errorf("bytes = %d, want %d", got, goroutines*perG*8)
	}
	if got := snap.Gauge("depth"); got != goroutines*perG-1 {
		t.Errorf("depth max = %d, want %d", got, goroutines*perG-1)
	}
	if got := snap.Histograms["lat"].Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := len(snap.Spans) + int(snap.SpanDrops); got != goroutines*perG*2 {
		t.Errorf("spans stored+dropped = %d, want %d", got, goroutines*perG*2)
	}
}

// TestWritePrometheusParseBack renders the exposition format and parses
// it back line by line: every sample line must be "name value" (with an
// optional {le=...} label), histogram buckets must be cumulative, and
// the counter values must round-trip.
func TestWritePrometheusParseBack(t *testing.T) {
	reg := New()
	reg.Counter("astra_test_total").Add(42)
	reg.Gauge("astra_test_peak").Set(7)
	h := reg.Histogram("astra_test_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition must end with a newline")
	}

	values := map[string]float64{}
	var bucketCum []float64
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.HasPrefix(name, "astra_test_seconds_bucket{") {
			bucketCum = append(bucketCum, v)
			continue
		}
		values[name] = v
	}
	if values["astra_test_total"] != 42 {
		t.Errorf("counter round-trip = %v, want 42", values["astra_test_total"])
	}
	if values["astra_test_peak"] != 7 {
		t.Errorf("gauge round-trip = %v, want 7", values["astra_test_peak"])
	}
	if values["astra_test_seconds_count"] != 3 || values["astra_test_seconds_sum"] != 101 {
		t.Errorf("histogram sum/count = %v/%v, want 101/3",
			values["astra_test_seconds_sum"], values["astra_test_seconds_count"])
	}
	wantCum := []float64{1, 2, 3} // le=1, le=2, le=+Inf
	if len(bucketCum) != len(wantCum) {
		t.Fatalf("bucket lines = %d, want %d", len(bucketCum), len(wantCum))
	}
	for i, w := range wantCum {
		if bucketCum[i] != w {
			t.Errorf("cumulative bucket[%d] = %v, want %v", i, bucketCum[i], w)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(-2)
	reg.Histogram("h", []float64{1}).Observe(0.5)
	reg.StartSpan("plan").End()

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != -2 {
		t.Errorf("scalar round-trip = %+v", back)
	}
	if len(back.Spans) != 1 || back.Spans[0].Path != "plan" {
		t.Errorf("span round-trip = %+v", back.Spans)
	}
	if back.Histograms["h"].Count != 1 {
		t.Errorf("histogram round-trip = %+v", back.Histograms["h"])
	}
}

func TestCounterDelta(t *testing.T) {
	reg := New()
	reg.Counter("c").Add(5)
	before := reg.Snapshot()
	reg.Counter("c").Add(7)
	after := reg.Snapshot()
	if d := after.CounterDelta(before, "c"); d != 7 {
		t.Errorf("delta = %d, want 7", d)
	}
	if d := after.CounterDelta(before, "absent"); d != 0 {
		t.Errorf("absent delta = %d, want 0", d)
	}
}

// TestWritePrometheusAlwaysEmitsInfBucket pins the exposition invariant
// that every histogram carries a le="+Inf" bucket equal to _count, even
// when the snapshot's Counts slice is shorter than Bounds+1 (a snapshot
// assembled by hand or truncated across a JSON hop), or empty outright.
func TestWritePrometheusAlwaysEmitsInfBucket(t *testing.T) {
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{
			"truncated": {Bounds: []float64{1, 2}, Counts: []int64{3}, Sum: 3, Count: 3},
			"empty":     {},
		},
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`truncated_bucket{le="1"} 3`,
		`truncated_bucket{le="2"} 3`,
		`truncated_bucket{le="+Inf"} 3`,
		`empty_bucket{le="+Inf"} 0`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestWritePrometheusNonFiniteFloats checks the 0.0.4 spellings of the
// special float values: NaN, +Inf and -Inf (never Go's "+Inf"-via-%q or
// "NaN" quoted forms).
func TestWritePrometheusNonFiniteFloats(t *testing.T) {
	snap := Snapshot{
		Histograms: map[string]HistogramSnapshot{
			"h": {Bounds: []float64{math.Inf(-1), 1}, Counts: []int64{1, 0, 0},
				Sum: math.NaN(), Count: 1},
		},
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`h_bucket{le="-Inf"} 1`,
		`h_bucket{le="+Inf"} 1`,
		"h_sum NaN",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestWritePrometheusLabeledSeries exercises LabelSeries end to end: one
// TYPE comment per family, label values escaped per the text format
// (backslash, quote, newline), and histogram suffixes spliced before the
// label set with le merged in.
func TestWritePrometheusLabeledSeries(t *testing.T) {
	reg := New()
	reg.Counter(LabelSeries("astra_obs_http_requests_total", "path", "/metrics")).Add(2)
	reg.Counter(LabelSeries("astra_obs_http_requests_total", "path", "/events")).Add(1)
	reg.Counter(LabelSeries("weird_total", "v", "a\\b\"c\nd")).Inc()
	reg.Histogram(LabelSeries("lat_seconds", "op", "get"), []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if got := strings.Count(text, "# TYPE astra_obs_http_requests_total counter\n"); got != 1 {
		t.Errorf("family TYPE lines = %d, want 1\n%s", got, text)
	}
	for _, want := range []string{
		`astra_obs_http_requests_total{path="/metrics"} 2`,
		`astra_obs_http_requests_total{path="/events"} 1`,
		`weird_total{v="a\\b\"c\nd"} 1`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{op="get",le="1"} 1`,
		`lat_seconds_bucket{op="get",le="+Inf"} 1`,
		`lat_seconds_sum{op="get"} 0.5`,
		`lat_seconds_count{op="get"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Escaped newlines must keep the exposition line-oriented: every line
	// is a comment or ends in a parseable float.
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := EscapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("EscapeLabelValue = %q", got)
	}
	if got := LabelSeries("m"); got != "m" {
		t.Errorf("LabelSeries no labels = %q", got)
	}
	if got := LabelSeries("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Errorf("LabelSeries = %q", got)
	}
}

func TestObserveN(t *testing.T) {
	reg := New()
	h := reg.Histogram("h", []float64{1, 10})
	h.ObserveN(0.5, 3)
	h.ObserveN(5, 2)
	h.ObserveN(5, 0)  // no-op
	h.ObserveN(5, -4) // no-op
	var nilH *Histogram
	nilH.ObserveN(1, 1) // no-op
	hs := reg.Snapshot().Histograms["h"]
	if hs.Count != 5 || hs.Sum != 0.5*3+5*2 {
		t.Fatalf("count/sum = %d/%v, want 5/11.5", hs.Count, hs.Sum)
	}
	if hs.Counts[0] != 3 || hs.Counts[1] != 2 || hs.Counts[2] != 0 {
		t.Fatalf("bucket counts = %v", hs.Counts)
	}
}
