// Package emr simulates a VM-based Elastic-MapReduce-style cluster: the
// comparison system of the paper's Fig. 9 (three m3.xlarge on-demand
// instances, 100 concurrent map tasks).
//
// The model is slot-and-wave scheduling, the standard Hadoop/EMR
// abstraction: map tasks run in waves over a fixed slot pool, a shuffle
// moves the intermediate data across the cluster fabric, reduce tasks run
// in waves, and the bill is instance-hours for the whole span (plus
// cluster provisioning, which is billed but does not help the job). This
// captures exactly the two effects the paper's comparison turns on: a
// small static cluster cannot burst the way a thousand lambdas can
// (WordCount 20 GB loses big), but for long shuffle-heavy jobs the
// cluster's fixed price is competitive (Sort 100 GB is close).
package emr

import (
	"fmt"
	"time"

	"astra/internal/pricing"
	"astra/internal/workload"
)

// ClusterConfig describes the cluster.
type ClusterConfig struct {
	// VMs is the instance count.
	VMs int
	// VMType prices the instances.
	VMType pricing.VM
	// MapSlots is the cluster-wide concurrent map task count (the paper
	// sets 100).
	MapSlots int
	// ReduceSlots is the cluster-wide concurrent reduce task count.
	ReduceSlots int
	// NetBps is each VM's network bandwidth in bytes/second (S3 reads and
	// shuffle).
	NetBps float64
	// CPUFactor scales the workload's reference compute density to one VM
	// slot: task compute time = bytes x u x CPUFactor.
	CPUFactor float64
	// Provision is cluster startup time: billed, not useful.
	Provision time.Duration
	// TaskOverhead is per-task launch latency (JVM/scheduler).
	TaskOverhead time.Duration
}

// PaperCluster returns the Fig. 9 setup: 3 m3.xlarge instances with 100
// concurrent map tasks.
func PaperCluster() ClusterConfig {
	return ClusterConfig{
		VMs:         3,
		VMType:      pricing.AWS().VMs["m3.xlarge"],
		MapSlots:    100,
		ReduceSlots: 8,
		NetBps:      120 << 20, // ~1 Gb/s per instance, in bytes/s
		// Per-byte processing through the full Hadoop stack (task JVMs,
		// record serialization, streaming pipes) measures well slower
		// than the same logic in a lean lambda handler; 1.5x the
		// reference-tier density reflects that stack tax on the
		// previous-generation m3 cores.
		CPUFactor:    1.5,
		Provision:    90 * time.Second,
		TaskOverhead: 2 * time.Second,
	}
}

// Validate reports whether the cluster is well-formed.
func (c ClusterConfig) Validate() error {
	if c.VMs <= 0 || c.MapSlots <= 0 || c.ReduceSlots <= 0 {
		return fmt.Errorf("emr: cluster needs positive VM and slot counts")
	}
	if c.NetBps <= 0 || c.CPUFactor <= 0 {
		return fmt.Errorf("emr: cluster needs positive bandwidth and CPU factor")
	}
	return nil
}

// Result is one job's outcome on the cluster.
type Result struct {
	JCT         time.Duration
	Cost        pricing.USD
	MapTime     time.Duration
	ShuffleTime time.Duration
	ReduceTime  time.Duration
	MapWaves    int
	ReduceWaves int
}

// Run estimates the job on the cluster.
func Run(job workload.Job, c ClusterConfig) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if err := job.Validate(); err != nil {
		return Result{}, err
	}
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	mb := func(n float64) float64 { return n / (1 << 20) }

	// Concurrent tasks share each VM's NIC and time-share its cores: 100
	// map slots on 12 vCPUs run CPU-bound tasks ~8x slower apiece.
	cores := c.VMs * c.VMType.VCPUs
	activeMap := job.NumObjects
	if activeMap > c.MapSlots {
		activeMap = c.MapSlots
	}
	mapSlotsPerVM := (activeMap + c.VMs - 1) / c.VMs
	perTaskNet := c.NetBps / float64(mapSlotsPerVM)
	cpuOver := 1.0
	if activeMap > cores {
		cpuOver = float64(activeMap) / float64(cores)
	}

	// --- Map waves: one task per input object. ---
	taskIn := float64(job.ObjectSize)
	taskOut := taskIn * job.Profile.MapOutputRatio
	mapTask := c.TaskOverhead.Seconds() +
		taskIn/perTaskNet + // read from object storage
		mb(taskIn)*job.Profile.USecPerMB*c.CPUFactor*cpuOver +
		taskOut/c.NetBps/8 // spill locally; disk is fast relative to NIC
	mapWaves := (job.NumObjects + c.MapSlots - 1) / c.MapSlots
	mapTime := float64(mapWaves) * mapTask

	// --- Shuffle: the intermediate data crosses the fabric once; each VM
	// pulls its share at NIC speed. ---
	inter := float64(job.TotalBytes()) * job.Profile.MapOutputRatio
	shuffle := inter / float64(c.VMs) / c.NetBps

	// --- Reduce waves: one task per reduce slot, one wave (classic
	// single-wave reduce), processing its partition. ---
	redSlotsPerVM := (c.ReduceSlots + c.VMs - 1) / c.VMs
	perRedNet := c.NetBps / float64(redSlotsPerVM)
	redOver := 1.0
	if c.ReduceSlots > cores {
		redOver = float64(c.ReduceSlots) / float64(cores)
	}
	redIn := inter / float64(c.ReduceSlots)
	redOut := redIn * job.Profile.ReduceOutputRatio
	reduceTask := c.TaskOverhead.Seconds() +
		mb(redIn)*job.Profile.USecPerMB*c.CPUFactor*redOver +
		redOut/perRedNet // write result back to object storage
	reduceWaves := 1
	reduceTime := float64(reduceWaves) * reduceTask

	jct := mapTime + shuffle + reduceTime
	billedSpan := c.Provision + secs(jct)
	cost := c.VMType.VMCost(billedSpan) * pricing.USD(c.VMs)

	return Result{
		JCT:         secs(jct),
		Cost:        cost,
		MapTime:     secs(mapTime),
		ShuffleTime: secs(shuffle),
		ReduceTime:  secs(reduceTime),
		MapWaves:    mapWaves,
		ReduceWaves: reduceWaves,
	}, nil
}
