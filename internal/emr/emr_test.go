package emr

import (
	"testing"
	"time"

	"astra/internal/workload"
)

func TestRunBasicShape(t *testing.T) {
	res, err := Run(workload.WordCount20GB(), PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 || res.Cost <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	got := res.MapTime + res.ShuffleTime + res.ReduceTime
	if diff := got - res.JCT; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("phases %v do not tile JCT %v", got, res.JCT)
	}
	// 40 objects over 100 slots: one map wave.
	if res.MapWaves != 1 {
		t.Fatalf("map waves = %d, want 1", res.MapWaves)
	}
}

func TestMoreObjectsMoreWaves(t *testing.T) {
	job := workload.Job{Profile: workload.Sort, NumObjects: 250, ObjectSize: 100 << 20}
	res, err := Run(job, PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	if res.MapWaves != 3 {
		t.Fatalf("250 tasks over 100 slots: waves = %d, want 3", res.MapWaves)
	}
}

func TestBiggerClusterFasterAndCostTradeoff(t *testing.T) {
	job := workload.Sort100GB()
	small := PaperCluster()
	big := PaperCluster()
	big.VMs = 12
	big.MapSlots = 400
	big.ReduceSlots = 32
	rs, err := Run(job, small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(job, big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.JCT >= rs.JCT {
		t.Fatalf("4x cluster not faster: %v vs %v", rb.JCT, rs.JCT)
	}
}

func TestProvisioningBilledNotCounted(t *testing.T) {
	job := workload.WordCount1GB()
	c := PaperCluster()
	c.Provision = 0
	r0, err := Run(job, c)
	if err != nil {
		t.Fatal(err)
	}
	c.Provision = time.Hour
	r1, err := Run(job, c)
	if err != nil {
		t.Fatal(err)
	}
	if r1.JCT != r0.JCT {
		t.Fatal("provisioning must not change JCT")
	}
	if r1.Cost <= r0.Cost {
		t.Fatal("provisioning must be billed")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(workload.WordCount1GB(), ClusterConfig{}); err == nil {
		t.Fatal("zero cluster should fail")
	}
	c := PaperCluster()
	c.NetBps = 0
	if _, err := Run(workload.WordCount1GB(), c); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
	bad := workload.Job{Profile: workload.WordCount}
	if _, err := Run(bad, PaperCluster()); err == nil {
		t.Fatal("invalid job should fail")
	}
}

func TestShuffleScalesWithIntermediateData(t *testing.T) {
	// Sort moves all bytes; WordCount moves 10%: at equal input size the
	// sort shuffle must dominate.
	wc := workload.Job{Profile: workload.WordCount, NumObjects: 40, ObjectSize: 512 << 20}
	srt := workload.Job{Profile: workload.Sort, NumObjects: 40, ObjectSize: 512 << 20}
	rw, err := Run(wc, PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(srt, PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	if rs.ShuffleTime <= rw.ShuffleTime*5 {
		t.Fatalf("sort shuffle %v should dwarf wordcount shuffle %v", rs.ShuffleTime, rw.ShuffleTime)
	}
}
