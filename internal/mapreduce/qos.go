package mapreduce

import (
	"fmt"

	"astra/internal/flight"
	"astra/internal/simtime"
)

// QoSStage describes one driver stage for a streaming QoS monitor: the
// stage name (matching the model's predicted-breakdown stage names: "map",
// "coordinator", "step-NN") and how many tasks must complete before the
// stage's barrier releases.
type QoSStage struct {
	Name  string
	Tasks int
}

// QoSMonitor is the driver's streaming QoS hook: a monitor that follows
// the run's flight-recorder event stream in virtual time and maintains
// drift, deadline-risk and cost-burn state while the job executes.
//
// The contract mirrors Telemetry and Recorder: a monitor is observe-only
// (the simulated outcome is bit-identical with or without one), and every
// method must be safe on a nil concrete receiver. BeginRun is called once
// at the job start with the recorder the run emits into, the virtual start
// instant and the stage plan; Poll is called at driver barriers (each call
// may consume newly recorded events); EndRun is called once after the run's
// final events (including drained speculative losers and phase markers)
// have been recorded.
type QoSMonitor interface {
	BeginRun(rec *flight.Recorder, t0 simtime.Time, stages []QoSStage)
	Poll(now simtime.Time)
	EndRun(end simtime.Time)
}

// qosStages derives the monitor's stage plan from the orchestration: the
// mapper wave, the coordinator (when one drives the reduce phase), and
// each reducing step. Names match Exact.PredictBreakdown's stage names so
// the monitor can line tasks up against the plan's predicted schedule.
func qosStages(spec JobSpec, orch Orchestration) []QoSStage {
	stages := make([]QoSStage, 0, 2+orch.NumSteps())
	stages = append(stages, QoSStage{Name: "map", Tasks: orch.Mappers()})
	if spec.Orchestrator == CoordinatorLambda {
		stages = append(stages, QoSStage{Name: "coordinator", Tasks: 1})
	}
	for pi, step := range orch.Steps {
		stages = append(stages, QoSStage{
			Name:  fmt.Sprintf("step-%02d", pi),
			Tasks: step.Reducers(),
		})
	}
	return stages
}
