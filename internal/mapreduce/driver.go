package mapreduce

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"astra/internal/flight"
	"astra/internal/lambda"
	"astra/internal/objectstore"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/telemetry"
	"astra/internal/workload"
)

// Mode selects how a job's data is handled.
type Mode int

const (
	// Concrete runs real map/reduce code over real bytes.
	Concrete Mode = iota
	// Profiled runs size-only metadata through the same control flow,
	// charging compute and transfer from the workload profile. Used for
	// the 10-100 GB evaluation inputs.
	Profiled
)

// Config is one point in the paper's configuration space: the three
// memory allocations plus the two degree-of-parallelism knobs.
type Config struct {
	MapperMemMB    int
	CoordMemMB     int
	ReducerMemMB   int
	ObjsPerMapper  int
	ObjsPerReducer int
}

// String renders the config the way Table III presents allocations.
func (c Config) String() string {
	return fmt.Sprintf("mem(map/co/red)=%d/%d/%d MB, objs(map)=%d, objs(red)=%d",
		c.MapperMemMB, c.CoordMemMB, c.ReducerMemMB, c.ObjsPerMapper, c.ObjsPerReducer)
}

// Orchestrator selects who drives the reducing cascade.
type Orchestrator int

const (
	// CoordinatorLambda is the paper's choice: a coordinator function
	// writes state objects and invokes reducer waves (footnote 1 calls it
	// "more flexible and cost-efficient").
	CoordinatorLambda Orchestrator = iota
	// StepFunctions replaces the coordinator with a managed workflow:
	// no coordinator lambda, no state objects, but a fee and a latency
	// per state transition.
	StepFunctions
)

// JobSpec describes a submitted job: the workload, where its input lives,
// and the execution mode.
type JobSpec struct {
	Workload workload.Job
	// Bucket holds the input objects.
	Bucket string
	// InputKeys lists the input objects, in assignment order.
	InputKeys []string
	Mode      Mode
	// Orchestrator selects the reduce-phase driver (default: the
	// coordinator lambda).
	Orchestrator Orchestrator
	// IntermediateClass, if set, places the job's ephemeral data
	// (mapper outputs, reducer outputs, state objects) on that storage
	// class — e.g. objectstore.CacheClass() for a Redis-like tier —
	// instead of the store's default class.
	IntermediateClass *objectstore.Class
	// TaskRetries is how many times a failed mapper or reducer is
	// re-invoked before the job aborts. Failed attempts are still billed
	// (their duration ran). Zero means fail-fast.
	TaskRetries int
	// Telemetry, if set, receives platform counters (invocations, cold
	// starts, store traffic) and virtual-time phase spans for the run.
	// Observe-only: the simulated results are identical with or without
	// it.
	Telemetry *telemetry.Registry
	// Recorder, if set, captures the run's full event stream — every
	// invocation lifecycle transition, store request, compute interval
	// and phase window — for export and critical-path analysis (see
	// internal/flight). Observe-only, like Telemetry.
	Recorder *flight.Recorder
	// Injector, if set, is attached to the platform for fault injection:
	// it is consulted on every invocation attempt (internal/chaos
	// provides the standard implementation). Unlike Telemetry/Recorder a
	// nil Injector leaves any previously attached injector in place, so
	// tests driving the platform directly keep their hooks.
	Injector lambda.Injector
	// StoreInjector, if set, is attached to the object store for
	// request-level fault injection. Same attach semantics as Injector.
	StoreInjector objectstore.Injector
	// Speculation, if set, enables straggler mitigation: tasks running
	// past their predicted duration times the policy's multiplier get a
	// speculative backup, first finisher wins, losers are cancelled but
	// billed. See SpeculationPolicy.
	Speculation *SpeculationPolicy
	// QoS, if set, receives streaming QoS callbacks during the run: the
	// monitor follows the flight recorder incrementally and maintains
	// drift, deadline-risk and cost-burn state in virtual time.
	// Observe-only, like Telemetry and Recorder; it requires a Recorder
	// to have anything to read.
	QoS QoSMonitor
}

// PhaseTimes decomposes the job completion time the way Fig. 3 does.
type PhaseTimes struct {
	// Map is the mapping phase duration (T1: until the slowest mapper).
	Map time.Duration
	// CoordExclusive is the coordinator's own compute and state writes,
	// excluding the time it spends waiting on reducer steps (T2).
	CoordExclusive time.Duration
	// Reduce is the total reducing time across steps (TP).
	Reduce time.Duration
	// Steps holds each reducing step's duration.
	Steps []time.Duration
}

// CostBreakdown splits the job bill by source.
type CostBreakdown struct {
	// Lambda covers duration billing plus invocation fees (the W and I
	// terms).
	Lambda pricing.USD
	// Requests covers object-store GET/PUT charges (the U terms).
	Requests pricing.USD
	// Storage covers storage-duration charges accrued during the job
	// (the V terms).
	Storage pricing.USD
	// Workflow covers managed-orchestrator state-transition fees (zero
	// under the coordinator lambda).
	Workflow pricing.USD
}

// Total sums the bill.
func (c CostBreakdown) Total() pricing.USD {
	return c.Lambda + c.Requests + c.Storage + c.Workflow
}

// RunStats summarizes a run's platform activity: what the lambda control
// plane and the object store did on the job's behalf. It is derived from
// invocation records and store counters, so it is populated whether or
// not a telemetry registry was attached.
type RunStats struct {
	// Invocations counts every lambda execution, retries included.
	Invocations int
	// ColdStarts counts invocations that paid the cold-start penalty.
	ColdStarts int
	// Timeouts counts invocations killed at the platform deadline.
	Timeouts int
	// Errors counts invocations failing for any other reason.
	Errors int
	// TaskRetries counts driver- or coordinator-level re-invocations of
	// failed mappers and reducers.
	TaskRetries int
	// Canceled counts invocations intentionally killed as speculative
	// race losers (billed, but not failures).
	Canceled int
	// Throttles counts 429 rejections at the concurrency cap.
	Throttles int
	// PeakConcurrency is the high-water mark of simultaneous lambdas.
	PeakConcurrency int
	// Object-store traffic attributable to the run.
	StoreGets, StorePuts        int64
	StoreBytesIn, StoreBytesOut int64
}

// Report is the outcome of one executed job.
type Report struct {
	Config        Config
	Orchestration Orchestration
	// JCT is the end-to-end job completion time.
	JCT    time.Duration
	Phases PhaseTimes
	Cost   CostBreakdown
	// OutputKeys are the final objects (one per reducer of the last step;
	// a converged job has exactly one).
	OutputKeys []string
	// InterBucket is where intermediate and output objects live.
	InterBucket string
	// Records are the job's lambda invocation records, completion-ordered
	// (Record.Seq is strictly increasing; the driver asserts this
	// invariant).
	Records []lambda.Record
	// Events is the flight recorder's event stream for this run (nil when
	// no Recorder was attached to the JobSpec).
	Events []flight.Event
	// Predicted, when set, is the model's per-term stage breakdown for
	// Config — the astra layer attaches it to recorded runs so Audit can
	// diff prediction against measurement.
	Predicted *flight.Breakdown
	// PeakConcurrency is the job's high-water mark of simultaneous
	// lambdas.
	PeakConcurrency int
	// Stats summarizes platform activity; see RunStats.
	Stats RunStats
	// Resilience attributes the run's adversity: injected faults, retry
	// and speculation activity, and the billed cost of wasted attempts.
	Resilience Resilience
}

// DeadlineMet reports whether the run finished within a QoS deadline (the
// Eq. 20 constraint the planner promised).
func (r *Report) DeadlineMet(deadline time.Duration) bool { return r.JCT <= deadline }

// Telemetry returns the run's platform-activity summary.
func (r *Report) Telemetry() RunStats { return r.Stats }

// Driver executes MapReduce jobs on a Lambda platform.
type Driver struct {
	pl  *lambda.Platform
	seq int
}

// NewDriver creates a driver for the platform.
func NewDriver(pl *lambda.Platform) *Driver { return &Driver{pl: pl} }

type mapperPayload struct {
	Keys []string `json:"keys"`
	Out  string   `json:"out"`
}

type reducerPayload struct {
	Keys []string `json:"keys"`
	Out  string   `json:"out"`
}

type span struct{ start, end simtime.Time }

// jobRun is the shared state of one executing job, closed over by its
// handlers.
type jobRun struct {
	spec        JobSpec
	cfg         Config
	orch        Orchestration
	interBucket string
	app         App

	mapOutKeys    []string
	taskRetries   int
	stepSpans     []span
	finalInvs     []*lambda.Invocation
	finalKeys     []string
	finalLabels   []string
	finalPayloads [][]byte
	finalInKeys   [][]string
	finalStart    simtime.Time

	// policy is the normalized speculation policy (nil = disabled).
	policy *SpeculationPolicy
	// res accumulates the report's resilience section.
	res Resilience
	// outstanding holds cancelled race losers still running at job end;
	// they are drained (for billing) after the JCT is captured.
	outstanding []*lambda.Invocation
}

// Run executes the job under the given configuration and reports timing
// and cost. It must be called from inside a simulation process.
func (d *Driver) Run(p *simtime.Proc, spec JobSpec, cfg Config) (*Report, error) {
	if err := spec.Workload.Validate(); err != nil {
		return nil, err
	}
	if len(spec.InputKeys) != spec.Workload.NumObjects {
		return nil, fmt.Errorf("mapreduce: %d input keys for %d objects",
			len(spec.InputKeys), spec.Workload.NumObjects)
	}
	orch, err := OrchestrateFor(spec.Workload.Profile, spec.Workload.NumObjects, cfg.ObjsPerMapper, cfg.ObjsPerReducer)
	if err != nil {
		return nil, err
	}

	run := &jobRun{spec: spec, cfg: cfg, orch: orch}
	if spec.Speculation != nil {
		pol := spec.Speculation.normalized()
		run.policy = &pol
	}
	if spec.Mode == Concrete {
		app, err := AppFor(spec.Workload.Profile)
		if err != nil {
			return nil, err
		}
		run.app = app
	}

	d.seq++
	jobID := d.seq
	run.interBucket = fmt.Sprintf("job%04d-inter", jobID)
	d.pl.Store().CreateBucket(run.interBucket)
	if spec.IntermediateClass != nil {
		d.pl.Store().SetBucketClass(run.interBucket, *spec.IntermediateClass)
	}

	mapperFn := fmt.Sprintf("job%04d-mapper", jobID)
	coordFn := fmt.Sprintf("job%04d-coordinator", jobID)
	reducerFn := fmt.Sprintf("job%04d-reducer", jobID)
	if _, err := d.pl.Register(mapperFn, cfg.MapperMemMB, d.mapperHandler(run)); err != nil {
		return nil, fmt.Errorf("mapreduce: mapper: %w", err)
	}
	if spec.Orchestrator == CoordinatorLambda {
		coord, err := d.pl.Register(coordFn, cfg.CoordMemMB, d.coordHandler(run, reducerFn))
		if err != nil {
			return nil, fmt.Errorf("mapreduce: coordinator: %w", err)
		}
		// The coordinator is a logical orchestrator lambda: real
		// deployments re-invoke it per step (or use Step Functions), so
		// the per-sandbox timeout does not bound its total lifetime. It
		// is still billed for the full span, per Eq. 14.
		coord.Timeout = 10000 * time.Hour
	}
	if _, err := d.pl.Register(reducerFn, cfg.ReducerMemMB, d.reducerHandler(run)); err != nil {
		return nil, fmt.Errorf("mapreduce: reducer: %w", err)
	}

	store := d.pl.Store()
	// The registry (or nil, detaching any previous job's) observes the
	// platform for the duration of this run; likewise the flight recorder.
	d.pl.SetTelemetry(spec.Telemetry)
	store.SetTelemetry(spec.Telemetry)
	d.pl.SetFlightRecorder(spec.Recorder)
	store.SetFlightRecorder(spec.Recorder)
	if spec.Injector != nil {
		d.pl.SetInjector(spec.Injector)
	}
	if spec.StoreInjector != nil {
		store.SetInjector(spec.StoreInjector)
	}
	chaos0 := d.pl.ChaosCounters()
	storeInj0 := store.InjectedFaults()
	evBase := spec.Recorder.Seq()
	recBase := len(d.pl.Records())
	bill0 := store.Bill()
	store0 := store.Metrics()
	throttles0 := d.pl.Throttles()
	peak0 := d.pl.PeakConcurrency()
	t0 := p.Now()
	if spec.QoS != nil {
		spec.QoS.BeginRun(spec.Recorder, t0, qosStages(spec, orch))
	}

	// --- Mapping phase: mappers dispatched in a loop (each dispatch
	// costs the invoke-API latency), then awaited together. ---
	run.mapOutKeys = make([]string, orch.Mappers())
	{
		off := 0
		invs := make([]*lambda.Invocation, orch.Mappers())
		payloads := make([][]byte, orch.Mappers())
		inKeys := make([][]string, orch.Mappers())
		for m, load := range orch.MapperLoads {
			run.mapOutKeys[m] = fmt.Sprintf("map/part-%05d", m)
			out := run.mapOutKeys[m]
			if run.policy != nil {
				out = attemptKey(out, 0)
			}
			body, err := json.Marshal(mapperPayload{
				Keys: spec.InputKeys[off : off+load],
				Out:  out,
			})
			if err != nil {
				return nil, err
			}
			inKeys[m] = spec.InputKeys[off : off+load]
			off += load
			payloads[m] = body
			invs[m] = d.pl.InvokeAsync(p, mapperFn, fmt.Sprintf("map-%d", m), body)
		}
		if run.policy != nil {
			deadline := run.policy.deadlineFor(t0, run.policy.MapTask)
			for m, iv := range invs {
				m := m
				err := d.awaitSpeculative(procRunner{d, p}, run, specTask{
					fn: mapperFn, label: fmt.Sprintf("map-%d", m),
					bucket: run.interBucket, finalKey: run.mapOutKeys[m],
					payloadFor: func(outKey string) ([]byte, error) {
						return json.Marshal(mapperPayload{Keys: inKeys[m], Out: outKey})
					},
					deadline: deadline, pred: run.policy.MapTask,
				}, iv)
				if err != nil {
					return nil, fmt.Errorf("mapreduce: mapper %d: %w", m, err)
				}
			}
		} else {
			for m, iv := range invs {
				if err := d.awaitWithRetry(p, run, iv, mapperFn,
					fmt.Sprintf("map-%d", m), payloads[m]); err != nil {
					return nil, fmt.Errorf("mapreduce: mapper %d: %w", m, err)
				}
			}
		}
	}
	mapEnd := p.Now()
	if spec.QoS != nil {
		spec.QoS.Poll(mapEnd)
	}

	// --- Reducing phase, driven by the chosen orchestrator. ---
	var coordExclusive time.Duration
	var workflowFee pricing.USD
	var coordSpan span
	switch spec.Orchestrator {
	case StepFunctions:
		coordExclusive, workflowFee, err = d.reduceViaStepFunctions(p, run, reducerFn)
		if err != nil {
			return nil, err
		}
	default:
		coordStart := p.Now()
		if _, err := d.pl.InvokeLabeled(p, coordFn, "coordinator", nil); err != nil {
			return nil, fmt.Errorf("mapreduce: coordinator: %w", err)
		}
		coordEnd := p.Now()
		if spec.QoS != nil {
			spec.QoS.Poll(coordEnd)
		}

		// Wait for the last step's reducers, launched asynchronously by
		// the coordinator.
		if run.policy != nil {
			finalPred := run.policy.stepTask(len(run.orch.Steps) - 1)
			deadline := run.policy.deadlineFor(run.finalStart, finalPred)
			for i, iv := range run.finalInvs {
				i := i
				err := d.awaitSpeculative(procRunner{d, p}, run, specTask{
					fn: reducerFn, label: run.finalLabels[i],
					bucket: run.interBucket, finalKey: run.finalKeys[i],
					payloadFor: func(outKey string) ([]byte, error) {
						return json.Marshal(reducerPayload{Keys: run.finalInKeys[i], Out: outKey})
					},
					deadline: deadline, pred: finalPred,
				}, iv)
				if err != nil {
					return nil, fmt.Errorf("mapreduce: final-step reducer %d: %w", i, err)
				}
			}
		} else {
			for i, iv := range run.finalInvs {
				if err := d.awaitWithRetry(p, run, iv, reducerFn,
					run.finalLabels[i], run.finalPayloads[i]); err != nil {
					return nil, fmt.Errorf("mapreduce: final-step reducer %d: %w", i, err)
				}
			}
		}
		run.stepSpans = append(run.stepSpans, span{run.finalStart, p.Now()})
		if spec.QoS != nil {
			spec.QoS.Poll(p.Now())
		}

		// Coordinator-exclusive time: its wall span minus the steps it
		// sat waiting on (all but the async-launched last one) and minus
		// its overlap with the final step (the final reducers' dispatch
		// loop, which the final step span already covers).
		waited := time.Duration(0)
		for _, s := range run.stepSpans[:len(run.stepSpans)-1] {
			waited += s.end - s.start
		}
		finalOverlap := coordEnd - run.finalStart
		coordExclusive = (coordEnd - coordStart) - waited - finalOverlap
		coordSpan = span{coordStart, coordEnd}
	}
	end := p.Now()

	// Cancelled race losers may still be running (a loser dies at its
	// next platform API call, which can fall after the job end). Drain
	// them so their billing records and store requests land in this
	// report — losers are cancelled but billed. The JCT was captured
	// above; the drain advances only the billing clock.
	for _, iv := range run.outstanding {
		_, _ = iv.Wait(p)
	}

	// --- Assemble the report. ---
	rep := &Report{
		Config:        cfg,
		Orchestration: orch,
		JCT:           end - t0,
		OutputKeys:    run.finalKeys,
		InterBucket:   run.interBucket,
	}
	rep.Phases.Map = mapEnd - t0
	for _, s := range run.stepSpans {
		d := s.end - s.start
		rep.Phases.Steps = append(rep.Phases.Steps, d)
		rep.Phases.Reduce += d
	}
	rep.Phases.CoordExclusive = coordExclusive

	recs := d.pl.Records()[recBase:]
	// Completion-order invariant: records append as invocations finish,
	// so their Seq numbers must be strictly increasing. A violation means
	// platform bookkeeping broke — fail loudly rather than export a
	// nondeterministic trace.
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			return nil, fmt.Errorf("mapreduce: internal: records out of completion order (seq %d after %d)",
				recs[i].Seq, recs[i-1].Seq)
		}
	}
	rep.Records = append(rep.Records, recs...)
	var lambdaCost pricing.USD
	for _, r := range recs {
		lambdaCost += r.Cost
	}
	// Bill through the store so bucket storage classes (e.g. cache-tier
	// intermediates) price themselves.
	bill := store.Bill()
	rep.Cost = CostBreakdown{
		Lambda:   lambdaCost,
		Requests: bill.Requests - bill0.Requests,
		Storage:  bill.Storage - bill0.Storage,
		Workflow: workflowFee,
	}
	if pk := d.pl.PeakConcurrency(); pk > peak0 {
		rep.PeakConcurrency = pk
	}

	// --- Platform-activity summary (always computed) and virtual-time
	// phase spans (when a registry is attached). ---
	st := RunStats{
		TaskRetries:     run.taskRetries,
		Throttles:       d.pl.Throttles() - throttles0,
		PeakConcurrency: rep.PeakConcurrency,
	}
	for _, r := range recs {
		st.Invocations++
		if r.Cold {
			st.ColdStarts++
		}
		switch {
		case errors.Is(r.Err, lambda.ErrTimeout):
			st.Timeouts++
		case errors.Is(r.Err, lambda.ErrCanceled):
			st.Canceled++
		case r.Err != nil:
			st.Errors++
		}
	}
	sm := store.Metrics().Sub(store0)
	st.StoreGets, st.StorePuts = sm.Gets, sm.Puts
	st.StoreBytesIn, st.StoreBytesOut = sm.BytesIn, sm.BytesOut
	rep.Stats = st

	// --- Resilience section: what the injector did, what recovery cost. ---
	cc := d.pl.ChaosCounters().Sub(chaos0)
	run.res.LambdaFaults = cc.Faults
	run.res.FailedBeforeStart = cc.FailedBeforeStart
	run.res.FailedMidFlight = cc.FailedMidFlight
	run.res.Straggled = cc.Straggled
	run.res.ForcedColdStarts = cc.ForcedColdStarts
	run.res.InjectedThrottles = cc.ThrottleRejects
	run.res.StoreFaults = store.InjectedFaults() - storeInj0
	run.res.TaskRetries = run.taskRetries
	for _, r := range recs {
		if r.Err != nil {
			run.res.WastedCost += r.Cost
		}
	}
	rep.Resilience = run.res

	if tel := spec.Telemetry; tel != nil {
		tel.RecordVirtual("run", t0, end)
		tel.RecordVirtual("run/map", t0, mapEnd)
		if spec.Orchestrator == CoordinatorLambda {
			tel.RecordVirtual("run/coordinator", coordSpan.start, coordSpan.end)
		}
		for i, s := range run.stepSpans {
			tel.RecordVirtual(fmt.Sprintf("run/step-%02d", i), s.start, s.end)
		}
	}
	if rec := spec.Recorder; rec != nil {
		// Phase markers anchor the critical-path analyzer; emitted at run
		// end (in a fixed order) so the windows are final.
		rec.Emit(flight.Event{Kind: flight.KindPhase, Name: "map", Start: t0, Time: mapEnd})
		if spec.Orchestrator == CoordinatorLambda {
			rec.Emit(flight.Event{Kind: flight.KindPhase, Name: "coordinator",
				Start: coordSpan.start, Time: coordSpan.end})
		}
		for i, s := range run.stepSpans {
			rec.Emit(flight.Event{Kind: flight.KindPhase,
				Name: fmt.Sprintf("step-%02d", i), Start: s.start, Time: s.end})
		}
		rec.Emit(flight.Event{Kind: flight.KindPhase, Name: "run", Start: t0, Time: end})
		rep.Events = rec.EventsSince(evBase)
	}
	if spec.QoS != nil {
		// The run's events are final (loser drain and phase markers
		// included): let the monitor fold the remainder and settle its
		// ledger. Risk never advances past end; post-end billing (drained
		// losers) still counts toward cost burn.
		spec.QoS.EndRun(end)
	}
	return rep, nil
}

// awaitWithRetry waits for an async task invocation and, on failure,
// re-invokes it synchronously up to the job's retry budget. Each retry
// pays a fresh dispatch round trip and each failed attempt remains
// billed.
func (d *Driver) awaitWithRetry(p *simtime.Proc, run *jobRun, iv *lambda.Invocation,
	fn, label string, payload []byte) error {
	_, err := iv.Wait(p)
	for attempt := 0; err != nil && attempt < run.spec.TaskRetries; attempt++ {
		run.taskRetries++
		_, err = d.pl.InvokeLabeled(p, fn, label, payload)
	}
	return err
}

// reduceViaStepFunctions drives the reducing cascade as a managed
// workflow (footnote 1's alternative): no coordinator lambda and no state
// objects, but each step barrier pays a state-transition delay, and the
// execution is billed per transition — one for start and end, one per
// task state (mappers and reducers), one per step barrier. It returns the
// orchestration-exclusive time (the transition delays) and the workflow
// fee.
func (d *Driver) reduceViaStepFunctions(p *simtime.Proc, run *jobRun, reducerFn string) (time.Duration, pricing.USD, error) {
	sf := d.pl.Sheet().StepFunctions
	orchTime := time.Duration(0)
	prevKeys := run.mapOutKeys
	for pi, step := range run.orch.Steps {
		p.Sleep(sf.TransitionLatency)
		orchTime += sf.TransitionLatency
		stepStart := p.Now()
		outKeys := make([]string, step.Reducers())
		invs := make([]*lambda.Invocation, step.Reducers())
		bodies := make([][]byte, step.Reducers())
		inKeys := make([][]string, step.Reducers())
		off := 0
		for r, load := range step.Loads {
			outKeys[r] = fmt.Sprintf("red/%02d/part-%05d", pi, r)
			out := outKeys[r]
			if run.policy != nil {
				out = attemptKey(out, 0)
			}
			body, err := json.Marshal(reducerPayload{
				Keys: prevKeys[off : off+load],
				Out:  out,
			})
			if err != nil {
				return 0, 0, err
			}
			inKeys[r] = prevKeys[off : off+load]
			off += load
			bodies[r] = body
			invs[r] = d.pl.InvokeAsync(p, reducerFn, fmt.Sprintf("red-%d-%d", pi, r), body)
		}
		if run.policy != nil {
			stepPred := run.policy.stepTask(pi)
			deadline := run.policy.deadlineFor(stepStart, stepPred)
			for r, iv := range invs {
				r := r
				err := d.awaitSpeculative(procRunner{d, p}, run, specTask{
					fn: reducerFn, label: fmt.Sprintf("red-%d-%d", pi, r),
					bucket: run.interBucket, finalKey: outKeys[r],
					payloadFor: func(outKey string) ([]byte, error) {
						return json.Marshal(reducerPayload{Keys: inKeys[r], Out: outKey})
					},
					deadline: deadline, pred: stepPred,
				}, iv)
				if err != nil {
					return 0, 0, fmt.Errorf("mapreduce: step %d reducer %d: %w", pi, r, err)
				}
			}
		} else {
			for r, iv := range invs {
				if err := d.awaitWithRetry(p, run, iv, reducerFn,
					fmt.Sprintf("red-%d-%d", pi, r), bodies[r]); err != nil {
					return 0, 0, fmt.Errorf("mapreduce: step %d reducer %d: %w", pi, r, err)
				}
			}
		}
		run.stepSpans = append(run.stepSpans, span{stepStart, p.Now()})
		if run.spec.QoS != nil {
			run.spec.QoS.Poll(p.Now())
		}
		prevKeys = outKeys
		run.finalKeys = outKeys
	}
	transitions := 2 + run.orch.Mappers() + run.orch.NumSteps() + run.orch.Reducers()
	return orchTime, sf.TransitionCost(transitions), nil
}

// mapperHandler builds the mapper lambda: fetch assigned inputs, compute,
// emit one intermediate object.
func (d *Driver) mapperHandler(run *jobRun) lambda.Handler {
	return func(ctx *lambda.Ctx) ([]byte, error) {
		var pay mapperPayload
		if err := json.Unmarshal(ctx.Payload(), &pay); err != nil {
			return nil, err
		}
		var totalIn int64
		var bodies [][]byte
		for _, key := range pay.Keys {
			obj, err := ctx.Get(run.spec.Bucket, key)
			if err != nil {
				return nil, err
			}
			totalIn += obj.Size
			if run.spec.Mode == Concrete {
				bodies = append(bodies, obj.Data)
			}
		}
		ctx.WorkBytes(totalIn, run.spec.Workload.Profile.USecPerMB)
		if run.spec.Mode == Concrete {
			out, err := run.app.Map(bodies)
			if err != nil {
				return nil, err
			}
			return nil, ctx.Put(run.interBucket, pay.Out, out)
		}
		outSize := int64(float64(totalIn) * run.spec.Workload.Profile.MapOutputRatio)
		return nil, ctx.PutProfiled(run.interBucket, pay.Out, outSize)
	}
}

// reducerHandler builds the reducer lambda: fetch assigned intermediate
// objects, compute, emit one merged object.
func (d *Driver) reducerHandler(run *jobRun) lambda.Handler {
	return func(ctx *lambda.Ctx) ([]byte, error) {
		var pay reducerPayload
		if err := json.Unmarshal(ctx.Payload(), &pay); err != nil {
			return nil, err
		}
		var totalIn int64
		var bodies [][]byte
		for _, key := range pay.Keys {
			obj, err := ctx.Get(run.interBucket, key)
			if err != nil {
				return nil, err
			}
			totalIn += obj.Size
			if run.spec.Mode == Concrete {
				bodies = append(bodies, obj.Data)
			}
		}
		ctx.WorkBytes(totalIn, run.spec.Workload.Profile.USecPerMB)
		if run.spec.Mode == Concrete {
			out, err := run.app.Reduce(bodies)
			if err != nil {
				return nil, err
			}
			return nil, ctx.Put(run.interBucket, pay.Out, out)
		}
		outSize := int64(float64(totalIn) * run.spec.Workload.Profile.ReduceOutputRatio)
		return nil, ctx.PutProfiled(run.interBucket, pay.Out, outSize)
	}
}

// coordHandler builds the coordinator lambda: it derives the reducing
// plan (Table II), writes a state object before each step, drives steps
// 1..P-1 synchronously and launches step P asynchronously, so its billed
// lifetime spans the first P-1 steps exactly as Eq. 14 charges it.
func (d *Driver) coordHandler(run *jobRun, reducerFn string) lambda.Handler {
	return func(ctx *lambda.Ctx) ([]byte, error) {
		ctx.Work(run.spec.Workload.Profile.CoordSecPerObject * float64(run.orch.Mappers()))

		prevKeys := run.mapOutKeys
		steps := run.orch.Steps
		for pi, step := range steps {
			stateKey := fmt.Sprintf("state/step-%02d", pi)
			if err := ctx.PutProfiled(run.interBucket, stateKey, StateObjectBytes); err != nil {
				return nil, err
			}
			outKeys := make([]string, step.Reducers())
			invs := make([]*lambda.Invocation, step.Reducers())
			labels := make([]string, step.Reducers())
			bodies := make([][]byte, step.Reducers())
			inKeys := make([][]string, step.Reducers())
			stepStart := ctx.Now()
			off := 0
			for r, load := range step.Loads {
				outKeys[r] = fmt.Sprintf("red/%02d/part-%05d", pi, r)
				out := outKeys[r]
				if run.policy != nil {
					out = attemptKey(out, 0)
				}
				body, err := json.Marshal(reducerPayload{
					Keys: prevKeys[off : off+load],
					Out:  out,
				})
				if err != nil {
					return nil, err
				}
				inKeys[r] = prevKeys[off : off+load]
				off += load
				labels[r] = fmt.Sprintf("red-%d-%d", pi, r)
				bodies[r] = body
				invs[r] = ctx.InvokeAsync(reducerFn, labels[r], body)
			}
			if pi < len(steps)-1 {
				if run.policy != nil {
					stepPred := run.policy.stepTask(pi)
					deadline := run.policy.deadlineFor(stepStart, stepPred)
					for r, iv := range invs {
						r := r
						err := d.awaitSpeculative(ctxRunner{ctx}, run, specTask{
							fn: reducerFn, label: labels[r],
							bucket: run.interBucket, finalKey: outKeys[r],
							payloadFor: func(outKey string) ([]byte, error) {
								return json.Marshal(reducerPayload{Keys: inKeys[r], Out: outKey})
							},
							deadline: deadline, pred: stepPred,
						}, iv)
						if err != nil {
							return nil, fmt.Errorf("step %d reducer %d: %w", pi, r, err)
						}
					}
				} else {
					for r, iv := range invs {
						_, err := ctx.Wait(iv)
						// Failed reducers are re-invoked by the coordinator,
						// up to the job's retry budget.
						for attempt := 0; err != nil && attempt < run.spec.TaskRetries; attempt++ {
							run.taskRetries++
							_, err = ctx.Wait(ctx.InvokeAsync(reducerFn, labels[r], bodies[r]))
						}
						if err != nil {
							return nil, fmt.Errorf("step %d reducer %d: %w", pi, r, err)
						}
					}
				}
				run.stepSpans = append(run.stepSpans, span{stepStart, ctx.Now()})
				if run.spec.QoS != nil {
					run.spec.QoS.Poll(ctx.Now())
				}
			} else {
				run.finalInvs = invs
				run.finalKeys = outKeys
				run.finalLabels = labels
				run.finalPayloads = bodies
				run.finalInKeys = inKeys
				run.finalStart = stepStart
			}
			prevKeys = outKeys
		}
		return nil, nil
	}
}
