package mapreduce

import (
	"strings"
	"testing"

	"astra/internal/lambda"
	"astra/internal/objectstore"
	"astra/internal/simtime"
)

// runBothOrchestrators executes the same concrete job under the
// coordinator lambda and under Step Functions.
func runBothOrchestrators(t *testing.T) (coord, sf *Report) {
	t.Helper()
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}
	for _, orch := range []Orchestrator{CoordinatorLambda, StepFunctions} {
		w := newJobWorld(lambda.Config{})
		spec := smallWordCountSpec(t, w, 10, 2048)
		spec.Orchestrator = orch
		rep := w.runJob(t, spec, cfg)
		if orch == CoordinatorLambda {
			coord = rep
		} else {
			sf = rep
		}
	}
	return coord, sf
}

func TestStepFunctionsProducesSameResult(t *testing.T) {
	coord, sf := runBothOrchestrators(t)
	if len(coord.OutputKeys) != 1 || len(sf.OutputKeys) != 1 {
		t.Fatalf("outputs: coord %v, sf %v", coord.OutputKeys, sf.OutputKeys)
	}
	if coord.Orchestration.NumSteps() != sf.Orchestration.NumSteps() {
		t.Fatal("orchestration shape must not depend on the orchestrator")
	}
}

func TestStepFunctionsSkipsCoordinatorLambda(t *testing.T) {
	coord, sf := runBothOrchestrators(t)
	// One fewer lambda (no coordinator).
	if len(sf.Records) != len(coord.Records)-1 {
		t.Fatalf("records: coord %d, sf %d (want one fewer)", len(coord.Records), len(sf.Records))
	}
	for _, r := range sf.Records {
		if strings.Contains(r.Function, "coordinator") {
			t.Fatal("step-functions mode must not invoke a coordinator lambda")
		}
	}
}

func TestStepFunctionsWritesNoStateObjects(t *testing.T) {
	// State objects are the coordinator's P extra PUTs; Step Functions
	// keeps state internally.
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}

	puts := func(orch Orchestrator) int64 {
		w := newJobWorld(lambda.Config{})
		spec := smallWordCountSpec(t, w, 10, 1024)
		spec.Orchestrator = orch
		before := w.store.Metrics()
		w.runJob(t, spec, cfg)
		return w.store.Metrics().Sub(before).Puts
	}
	pc, ps := puts(CoordinatorLambda), puts(StepFunctions)
	// 3 reduce steps -> 3 state objects saved.
	if pc-ps != 3 {
		t.Fatalf("PUTs: coordinator %d vs step functions %d, want 3 fewer", pc, ps)
	}
}

func TestStepFunctionsBilledPerTransition(t *testing.T) {
	coord, sf := runBothOrchestrators(t)
	if coord.Cost.Workflow != 0 {
		t.Fatalf("coordinator mode charged workflow fees: %v", coord.Cost.Workflow)
	}
	if sf.Cost.Workflow <= 0 {
		t.Fatal("step-functions mode must charge transition fees")
	}
	// 2 + 5 mappers + 3 steps + 6 reducers = 16 transitions.
	sheet := newJobWorld(lambda.Config{}).pl.Sheet()
	want := sheet.StepFunctions.TransitionCost(16)
	if sf.Cost.Workflow != want {
		t.Fatalf("workflow fee = %v, want %v", sf.Cost.Workflow, want)
	}
}

// TestFootnote1CoordinatorCheaper verifies the paper's footnote 1: the
// coordinator lambda is the more cost-efficient orchestrator ("as step
// function involves state transaction cost, we choose to use a coordinate
// lambda").
func TestFootnote1CoordinatorCheaper(t *testing.T) {
	coord, sf := runBothOrchestrators(t)
	if coord.Cost.Total() >= sf.Cost.Total() {
		t.Fatalf("coordinator mode (%v) should be cheaper than step functions (%v)",
			coord.Cost.Total(), sf.Cost.Total())
	}
}

func TestStepFunctionsPhaseTiling(t *testing.T) {
	_, sf := runBothOrchestrators(t)
	sum := sf.Phases.Map + sf.Phases.CoordExclusive + sf.Phases.Reduce
	if diff := sf.JCT - sum; diff < -1000 || diff > 1000 { // 1 microsecond
		t.Fatalf("JCT %v != phases sum %v", sf.JCT, sum)
	}
}

func TestStepFunctionsProfiledMode(t *testing.T) {
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth: 80 << 20,
		Pricing:   newJobWorld(lambda.Config{}).pl.Sheet().Store,
	})
	_ = store
	// Covered through the facade in practice; here just confirm the
	// profiled path accepts the orchestrator flag.
	w := newJobWorld(lambda.Config{})
	job := smallWordCountSpec(t, w, 8, 1024)
	job.Mode = Concrete
	job.Orchestrator = StepFunctions
	rep := w.runJob(t, job, Config{
		MapperMemMB: 512, CoordMemMB: 512, ReducerMemMB: 512,
		ObjsPerMapper: 4, ObjsPerReducer: 2,
	})
	if rep.JCT <= 0 {
		t.Fatal("degenerate JCT")
	}
}
