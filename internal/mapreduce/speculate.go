package mapreduce

import (
	"fmt"
	"time"

	"astra/internal/flight"
	"astra/internal/lambda"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/telemetry"
)

// SpeculationPolicy enables driver-side straggler mitigation (Starling's
// duplicate-request technique): when a task runs past its model-predicted
// duration times Multiplier, the driver launches a speculative backup of
// the same task and the first finisher wins. Every attempt — original,
// retry, or backup — writes its output under an attempt-suffixed key
// ("<key>.aN"), and the winner is published under the task's final key by
// a server-side copy (the commit step), so duplicate completions can never
// corrupt the next stage's input. Losing attempts are cancelled but remain
// billed for their elapsed duration, per real-platform semantics.
//
// Predicted durations come from the planner's per-stage breakdown
// (model.Exact.PredictBreakdown): MapTask bounds every map task, and
// StepTasks[i] every reducer of reducing step i. A zero prediction
// disables speculation for that phase (tasks still use attempt-suffixed
// keys and the commit step, keeping output handling uniform).
type SpeculationPolicy struct {
	// Multiplier is the straggler threshold: a backup launches once a
	// task's phase has run Multiplier times its predicted duration
	// (default 1.5).
	Multiplier float64
	// MaxBackups bounds speculative launches per task (default 1).
	MaxBackups int
	// MapTask is the predicted map-phase task duration.
	MapTask time.Duration
	// StepTasks holds the predicted per-step reducer durations.
	StepTasks []time.Duration
}

// normalized returns the policy with defaults applied.
func (p *SpeculationPolicy) normalized() SpeculationPolicy {
	out := *p
	if out.Multiplier <= 0 {
		out.Multiplier = 1.5
	}
	if out.MaxBackups <= 0 {
		out.MaxBackups = 1
	}
	return out
}

// FromBreakdown fills the policy's predicted durations from a planner
// breakdown (stage "map" and stages "step-NN", in order).
func (p *SpeculationPolicy) FromBreakdown(bd *flight.Breakdown) {
	if bd == nil {
		return
	}
	p.StepTasks = p.StepTasks[:0]
	for _, st := range bd.Stages {
		switch {
		case st.Name == "map":
			p.MapTask = st.Duration
		case len(st.Name) > 5 && st.Name[:5] == "step-":
			p.StepTasks = append(p.StepTasks, st.Duration)
		}
	}
}

// stepTask returns the predicted duration for reducing step pi (0 when
// unknown, which disables speculation for that step).
func (p SpeculationPolicy) stepTask(pi int) time.Duration {
	if pi < 0 || pi >= len(p.StepTasks) {
		return 0
	}
	return p.StepTasks[pi]
}

// deadlineFor converts a predicted duration into an absolute launch-backup
// instant (0 = disabled).
func (p SpeculationPolicy) deadlineFor(start simtime.Time, predicted time.Duration) simtime.Time {
	if predicted <= 0 {
		return 0
	}
	return start + time.Duration(p.Multiplier*float64(predicted))
}

// SpeculationStats counts the driver's speculation decisions.
type SpeculationStats struct {
	// BackupsLaunched counts speculative duplicates launched past the
	// straggler threshold.
	BackupsLaunched int
	// Wins counts tasks whose speculative backup finished first.
	Wins int
	// Losses counts backups that were cancelled because the original (or
	// an earlier attempt) finished first.
	Losses int
	// Cancelled counts all invocations cancelled as race losers (backups
	// and overtaken originals alike). Cancelled attempts stay billed.
	Cancelled int
	// Commits counts winner outputs published under their final keys.
	Commits int
}

// Resilience summarizes how a run fared under adversity: what the fault
// injector did to it, and what the driver spent recovering. All costs it
// reports are already included in the Report's CostBreakdown — this
// section attributes them.
type Resilience struct {
	// Injected faults, by effect (platform side).
	LambdaFaults      int
	FailedBeforeStart int
	FailedMidFlight   int
	Straggled         int
	ForcedColdStarts  int
	InjectedThrottles int
	// StoreFaults counts object-store requests aborted by the injector.
	StoreFaults int64
	// TaskRetries counts driver/coordinator re-invocations of failed
	// tasks.
	TaskRetries int
	// Speculation summarizes backup launches and race outcomes.
	Speculation SpeculationStats
	// WastedCost is the billed cost of attempts that produced no used
	// output: failed, timed-out and cancelled invocations. It is the
	// price of adversity plus the overhead of mitigation.
	WastedCost pricing.USD
}

// attemptKey suffixes a task output key with its attempt ordinal, making
// concurrent attempts write disjoint objects.
func attemptKey(key string, attempt int) string {
	return fmt.Sprintf("%s.a%d", key, attempt)
}

// runner abstracts who is awaiting a task: the driver process (mappers,
// final-step reducers, Step Functions steps) or the coordinator lambda
// (inner reducing steps). Both expose the same invoke/race/commit
// primitives, so speculation logic is written once.
type runner interface {
	invoke(fn, label string, payload []byte) *lambda.Invocation
	waitAny(invs []*lambda.Invocation, timeout time.Duration) int
	wait(iv *lambda.Invocation) ([]byte, error)
	copyObj(bucket, src, dst string) error
	cancel(iv *lambda.Invocation)
	now() simtime.Time
}

// procRunner drives tasks from the driver's own simulation process.
type procRunner struct {
	d *Driver
	p *simtime.Proc
}

func (r procRunner) invoke(fn, label string, payload []byte) *lambda.Invocation {
	return r.d.pl.InvokeAsync(r.p, fn, label, payload)
}

func (r procRunner) waitAny(invs []*lambda.Invocation, timeout time.Duration) int {
	return r.d.pl.WaitAny(r.p, invs, timeout)
}

func (r procRunner) wait(iv *lambda.Invocation) ([]byte, error) { return iv.Wait(r.p) }

func (r procRunner) copyObj(bucket, src, dst string) error {
	return r.d.pl.Store().Copy(r.p, bucket, src, dst)
}

func (r procRunner) cancel(iv *lambda.Invocation) { r.d.pl.Cancel(iv) }

func (r procRunner) now() simtime.Time { return r.p.Now() }

// ctxRunner drives tasks from inside the coordinator lambda.
type ctxRunner struct{ ctx *lambda.Ctx }

func (r ctxRunner) invoke(fn, label string, payload []byte) *lambda.Invocation {
	return r.ctx.InvokeAsync(fn, label, payload)
}

func (r ctxRunner) waitAny(invs []*lambda.Invocation, timeout time.Duration) int {
	return r.ctx.WaitAny(invs, timeout)
}

func (r ctxRunner) wait(iv *lambda.Invocation) ([]byte, error) { return r.ctx.Wait(iv) }

func (r ctxRunner) copyObj(bucket, src, dst string) error { return r.ctx.Copy(bucket, src, dst) }

func (r ctxRunner) cancel(iv *lambda.Invocation) { r.ctx.Cancel(iv) }

func (r ctxRunner) now() simtime.Time { return r.ctx.Now() }

// specTask describes one task awaited under the speculation policy.
type specTask struct {
	fn, label string
	// bucket/finalKey locate the committed output; attempts write
	// attemptKey(finalKey, n).
	bucket   string
	finalKey string
	// payloadFor builds the task payload writing to the given output key.
	payloadFor func(outKey string) ([]byte, error)
	// deadline is the absolute backup-launch instant (0 = no speculation;
	// the task still commits its winning attempt).
	deadline simtime.Time
	// pred is the predicted task duration; after a backup launches, the
	// next backup's deadline advances by Multiplier*pred so additional
	// duplicates fire only if the backup itself straggles.
	pred time.Duration
}

// awaitSpeculative resolves one task first-finisher-wins: it waits on the
// already-dispatched first attempt, launches a speculative backup if the
// deadline passes, relaunches (spending the job's retry budget) when every
// in-flight attempt has failed, cancels the losers once a winner
// completes, and commits the winner's output under the task's final key.
func (d *Driver) awaitSpeculative(rn runner, run *jobRun, t specTask, first *lambda.Invocation) error {
	pol := run.policy
	tel := run.spec.Telemetry
	active := []*lambda.Invocation{first}
	keys := []string{attemptKey(t.finalKey, 0)}
	isBackup := []bool{false}
	next := 1
	backups := 0
	retries := 0
	deadline := t.deadline

	launch := func(backup bool) error {
		key := attemptKey(t.finalKey, next)
		body, err := t.payloadFor(key)
		if err != nil {
			return err
		}
		iv := rn.invoke(t.fn, t.label, body)
		active = append(active, iv)
		keys = append(keys, key)
		isBackup = append(isBackup, backup)
		next++
		if backup {
			backups++
			// The next duplicate should fire only if this one straggles
			// too: restart the straggler clock from its launch.
			deadline = rn.now() + time.Duration(pol.Multiplier*float64(t.pred))
			run.res.Speculation.BackupsLaunched++
			tel.Counter(telemetry.MSpecLaunched).Inc()
			if rec := run.spec.Recorder; rec != nil {
				rec.Emit(flight.Event{Kind: flight.KindSpecLaunch, Time: rn.now(),
					Function: t.fn, Label: t.label, Name: key})
			}
		}
		return nil
	}

	var lastErr error
	for {
		if len(active) == 0 {
			// Every attempt failed; spend the retry budget.
			if retries >= run.spec.TaskRetries {
				return lastErr
			}
			retries++
			run.taskRetries++
			if err := launch(false); err != nil {
				return err
			}
		}
		// Bound the wait by the backup-launch deadline while speculation
		// budget remains; otherwise wait for the next completion.
		timeout := time.Duration(-1)
		if deadline > 0 && backups < pol.MaxBackups {
			if rem := deadline - rn.now(); rem > 0 {
				timeout = rem
			} else {
				if err := launch(true); err != nil {
					return err
				}
				continue
			}
		}
		idx := rn.waitAny(active, timeout)
		if idx < 0 {
			// Deadline reached with every attempt still running: the task
			// is straggling — duplicate it.
			if err := launch(true); err != nil {
				return err
			}
			continue
		}
		if _, err := rn.wait(active[idx]); err != nil {
			lastErr = err
			active = append(active[:idx], active[idx+1:]...)
			keys = append(keys[:idx], keys[idx+1:]...)
			isBackup = append(isBackup[:idx], isBackup[idx+1:]...)
			continue
		}

		// First finisher wins: cancel the rest (billed losers), then
		// publish the winner under the task's final key.
		for j := range active {
			if j == idx {
				continue
			}
			rn.cancel(active[j])
			run.outstanding = append(run.outstanding, active[j])
			run.res.Speculation.Cancelled++
			tel.Counter(telemetry.MSpecCancelled).Inc()
			if isBackup[j] {
				run.res.Speculation.Losses++
				tel.Counter(telemetry.MSpecLosses).Inc()
			}
		}
		if isBackup[idx] {
			run.res.Speculation.Wins++
			tel.Counter(telemetry.MSpecWins).Inc()
		}
		if backups > 0 {
			if rec := run.spec.Recorder; rec != nil {
				rec.Emit(flight.Event{Kind: flight.KindSpecWin, Time: rn.now(),
					Function: t.fn, Label: t.label, Name: keys[idx]})
			}
		}
		if err := rn.copyObj(t.bucket, keys[idx], t.finalKey); err != nil {
			return fmt.Errorf("commit %s: %w", t.finalKey, err)
		}
		run.res.Speculation.Commits++
		tel.Counter(telemetry.MSpecCommits).Inc()
		return nil
	}
}
