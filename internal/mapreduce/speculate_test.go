package mapreduce

import (
	"errors"
	"testing"
	"time"

	"astra/internal/chaos"
	"astra/internal/lambda"
	"astra/internal/pricing"
	"astra/internal/telemetry"
	"astra/internal/workload"
)

// profiledSpec seeds a profiled (size-only) wordcount job.
func profiledSpec(t *testing.T, w *jobWorld, numObjects int, objectSize int64) JobSpec {
	t.Helper()
	job := workload.Job{Profile: workload.WordCount, NumObjects: numObjects, ObjectSize: objectSize}
	keys, err := workload.SeedProfiled(w.store, "in", job)
	if err != nil {
		t.Fatal(err)
	}
	return JobSpec{Workload: job, Bucket: "in", InputKeys: keys, Mode: Profiled}
}

// engine builds a chaos engine, failing the test on an invalid plan.
func engine(t *testing.T, p *chaos.Plan) *chaos.Engine {
	t.Helper()
	e, err := chaos.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var specCfg = Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
	ObjsPerMapper: 1, ObjsPerReducer: 2}

// stragglerPlan straggles the first matched map attempt by factor.
func stragglerPlan(factor float64) *chaos.Plan {
	return &chaos.Plan{Seed: 7, Rules: []chaos.Rule{{
		Name: "map-straggler", Target: chaos.TargetLambda, Effect: chaos.Straggle,
		Phase: "map", Factor: factor, MaxCount: 1,
	}}}
}

func TestSpeculationBeatsStraggler(t *testing.T) {
	// Clean run: no injector, no speculation — establishes the predicted
	// map-task duration and the adversity-free JCT.
	wClean := newJobWorld(lambda.Config{})
	clean := wClean.runJob(t, profiledSpec(t, wClean, 8, 1<<20), specCfg)

	// Straggler run, retries only: one mapper runs 10x slow and nothing
	// mitigates it.
	wSlow := newJobWorld(lambda.Config{})
	slowSpec := profiledSpec(t, wSlow, 8, 1<<20)
	slowSpec.Injector = engine(t, stragglerPlan(10))
	slow := wSlow.runJob(t, slowSpec, specCfg)
	if slow.JCT <= clean.JCT*2 {
		t.Fatalf("straggler run JCT %v not much worse than clean %v; injection broken?", slow.JCT, clean.JCT)
	}
	if slow.Resilience.Straggled != 1 {
		t.Fatalf("Straggled = %d, want 1", slow.Resilience.Straggled)
	}

	// Straggler run with speculation: a backup launches at 1.5x the
	// predicted map time and wins; JCT recovers to near-clean.
	wSpec := newJobWorld(lambda.Config{})
	spSpec := profiledSpec(t, wSpec, 8, 1<<20)
	spSpec.Injector = engine(t, stragglerPlan(10))
	spSpec.Speculation = &SpeculationPolicy{Multiplier: 1.5, MaxBackups: 1, MapTask: clean.Phases.Map}
	sp := wSpec.runJob(t, spSpec, specCfg)

	if sp.JCT >= slow.JCT {
		t.Fatalf("speculative JCT %v did not beat retries-only %v", sp.JCT, slow.JCT)
	}
	st := sp.Resilience.Speculation
	if st.BackupsLaunched < 1 || st.Wins < 1 {
		t.Fatalf("speculation stats = %+v, want at least one backup and one win", st)
	}
	if st.Cancelled < 1 {
		t.Fatalf("Cancelled = %d, want the straggling original cancelled", st.Cancelled)
	}
	// Every task commits exactly once: 8 mappers + 4 + 2 + 1 reducers.
	if want := sp.Orchestration.TotalLambdas() - 1; st.Commits != want { // minus coordinator
		t.Fatalf("Commits = %d, want %d (one per task)", st.Commits, want)
	}
	if len(sp.OutputKeys) != 1 || sp.OutputKeys[0] != clean.OutputKeys[0] {
		t.Fatalf("OutputKeys = %v, want %v (final keys unchanged by speculation)", sp.OutputKeys, clean.OutputKeys)
	}
}

func TestSpeculativeAndFailedAttemptsAreBilled(t *testing.T) {
	// One straggling mapper (cancelled loser) plus one mid-flight mapper
	// kill (retried): every attempt must appear in Records with its
	// duration billed, and the lambda cost must be exactly the record sum
	// (Eq. 11–15 billing applies to wasted attempts too).
	wClean := newJobWorld(lambda.Config{})
	clean := wClean.runJob(t, profiledSpec(t, wClean, 8, 1<<20), specCfg)

	tel := telemetry.New()
	w := newJobWorld(lambda.Config{})
	spec := profiledSpec(t, w, 8, 1<<20)
	spec.TaskRetries = 1
	spec.Telemetry = tel
	spec.Injector = engine(t, &chaos.Plan{Seed: 3, Rules: []chaos.Rule{
		{Name: "straggler", Target: chaos.TargetLambda, Effect: chaos.Straggle,
			Phase: "map", Factor: 12, MaxCount: 1},
		{Name: "killer", Target: chaos.TargetLambda, Effect: chaos.FailMidFlight,
			Phase: "reduce", MaxCount: 1},
	}})
	spec.Speculation = &SpeculationPolicy{Multiplier: 1.5, MaxBackups: 1, MapTask: clean.Phases.Map}
	rep := w.runJob(t, spec, specCfg)

	res := rep.Resilience
	if res.FailedMidFlight != 1 || res.Straggled != 1 {
		t.Fatalf("resilience = %+v, want one mid-flight kill and one straggle", res)
	}
	if res.TaskRetries != 1 {
		t.Fatalf("TaskRetries = %d, want 1 (the killed reducer)", res.TaskRetries)
	}
	if res.Speculation.Cancelled < 1 {
		t.Fatalf("Cancelled = %d, want the straggling loser", res.Speculation.Cancelled)
	}

	// Attempt-level billing: failed, cancelled and successful records all
	// carry a positive cost, and the report's lambda bill is their sum.
	var sum pricing.USD
	var failed, canceled int
	for _, r := range rep.Records {
		if r.Cost <= 0 {
			t.Fatalf("record %s (%s) cost %v, want > 0 (every attempt is billed)", r.Label, r.Function, r.Cost)
		}
		sum += r.Cost
		switch {
		case errors.Is(r.Err, lambda.ErrCanceled):
			canceled++
		case r.Err != nil:
			failed++
		}
	}
	if sum != rep.Cost.Lambda {
		t.Fatalf("sum of record costs %v != report lambda cost %v", sum, rep.Cost.Lambda)
	}
	if canceled < 1 || failed < 1 {
		t.Fatalf("records: %d canceled, %d failed — want at least one of each", canceled, failed)
	}
	if rep.Stats.Canceled != canceled {
		t.Fatalf("Stats.Canceled = %d, want %d", rep.Stats.Canceled, canceled)
	}
	if res.WastedCost <= 0 || res.WastedCost >= rep.Cost.Lambda {
		t.Fatalf("WastedCost = %v, want in (0, %v)", res.WastedCost, rep.Cost.Lambda)
	}

	// The wasted attempts surface in astra_lambda_invocations_total and
	// the speculation counters.
	snap := tel.Snapshot()
	if got := snap.Counter(telemetry.MLambdaInvocations); got != int64(len(rep.Records)) {
		t.Fatalf("%s = %d, want %d (all attempts counted)", telemetry.MLambdaInvocations, got, len(rep.Records))
	}
	if got := snap.Counter(telemetry.MSpecLaunched); got != int64(res.Speculation.BackupsLaunched) {
		t.Fatalf("%s = %d, want %d", telemetry.MSpecLaunched, got, res.Speculation.BackupsLaunched)
	}
	if got := snap.Counter(telemetry.MSpecCancelled); got != int64(res.Speculation.Cancelled) {
		t.Fatalf("%s = %d, want %d", telemetry.MSpecCancelled, got, res.Speculation.Cancelled)
	}
	if got := snap.Counter(telemetry.MChaosFaults); got != int64(res.LambdaFaults+int(res.StoreFaults)) {
		t.Fatalf("%s = %d, want %d", telemetry.MChaosFaults, got, res.LambdaFaults+int(res.StoreFaults))
	}
}

func TestSpeculationDisabledIsBitIdentical(t *testing.T) {
	// A JobSpec without a policy must execute exactly the pre-speculation
	// path: same JCT, same cost, same record count as a plain run.
	w1 := newJobWorld(lambda.Config{})
	r1 := w1.runJob(t, profiledSpec(t, w1, 8, 1<<20), specCfg)
	w2 := newJobWorld(lambda.Config{})
	spec := profiledSpec(t, w2, 8, 1<<20)
	empty := engine(t, &chaos.Plan{Seed: 99})
	spec.Injector = empty
	spec.StoreInjector = empty
	r2 := w2.runJob(t, spec, specCfg)
	if r1.JCT != r2.JCT || r1.Cost != r2.Cost || len(r1.Records) != len(r2.Records) {
		t.Fatalf("empty chaos plan perturbed the run: JCT %v vs %v, cost %+v vs %+v",
			r1.JCT, r2.JCT, r1.Cost, r2.Cost)
	}
	if r2.Resilience.LambdaFaults != 0 || r2.Resilience.StoreFaults != 0 {
		t.Fatalf("empty plan injected: %+v", r2.Resilience)
	}
}

func TestSpeculationUnderCleanRunOnlyAddsCommits(t *testing.T) {
	// With speculation on but no faults and generous predictions, no
	// backups launch; the only difference is the per-task commit copy.
	w := newJobWorld(lambda.Config{})
	spec := profiledSpec(t, w, 8, 1<<20)
	spec.Speculation = &SpeculationPolicy{Multiplier: 10, MaxBackups: 1,
		MapTask: time.Hour, StepTasks: []time.Duration{time.Hour, time.Hour, time.Hour}}
	rep := w.runJob(t, spec, specCfg)
	st := rep.Resilience.Speculation
	if st.BackupsLaunched != 0 || st.Wins != 0 || st.Cancelled != 0 {
		t.Fatalf("clean run speculated: %+v", st)
	}
	if want := rep.Orchestration.TotalLambdas() - 1; st.Commits != want {
		t.Fatalf("Commits = %d, want %d", st.Commits, want)
	}
	if len(rep.OutputKeys) != 1 {
		t.Fatalf("OutputKeys = %v", rep.OutputKeys)
	}
}
