package mapreduce

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"astra/internal/workload"
)

// App supplies the concrete map and reduce logic for an application. Both
// methods must be deterministic (sorted output) so concrete runs are
// reproducible. Inputs are the raw bodies of the assigned objects.
type App interface {
	// Map transforms input object bodies into one intermediate object.
	Map(inputs [][]byte) ([]byte, error)
	// Reduce merges intermediate objects into one (the same format, so
	// steps chain).
	Reduce(inputs [][]byte) ([]byte, error)
}

// AppFor returns the concrete application for a workload profile.
func AppFor(pf workload.Profile) (App, error) {
	switch pf.Name {
	case workload.WordCount.Name, workload.SparkWordCount.Name:
		return WordCountApp{}, nil
	case workload.Sort.Name:
		return SortApp{}, nil
	case workload.Query.Name, workload.SparkSQL.Name:
		return QueryApp{}, nil
	case workload.Grep.Name:
		return GrepApp{}, nil
	default:
		return nil, fmt.Errorf("mapreduce: no concrete app for profile %q", pf.Name)
	}
}

// WordCountApp counts word frequencies. Intermediate format: one
// "word<TAB>count" pair per line, sorted by word.
type WordCountApp struct{}

func renderCounts(counts map[string]int64) []byte {
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	var buf bytes.Buffer
	for _, w := range words {
		buf.WriteString(w)
		buf.WriteByte('\t')
		buf.WriteString(strconv.FormatInt(counts[w], 10))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func parseCounts(data []byte, into map[string]int64) error {
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		word, val, ok := strings.Cut(line, "\t")
		if !ok {
			return fmt.Errorf("mapreduce: malformed count line %q", line)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("mapreduce: malformed count %q: %v", line, err)
		}
		into[word] += n
	}
	return nil
}

// Map tokenizes the inputs and emits per-word counts.
func (WordCountApp) Map(inputs [][]byte) ([]byte, error) {
	counts := make(map[string]int64)
	for _, in := range inputs {
		for _, w := range strings.Fields(string(in)) {
			counts[w]++
		}
	}
	return renderCounts(counts), nil
}

// Reduce merges count tables.
func (WordCountApp) Reduce(inputs [][]byte) ([]byte, error) {
	counts := make(map[string]int64)
	for _, in := range inputs {
		if err := parseCounts(in, counts); err != nil {
			return nil, err
		}
	}
	return renderCounts(counts), nil
}

// SortApp sorts newline-terminated records lexicographically. Mappers sort
// their chunk (a run); reducers merge sorted runs.
type SortApp struct{}

func splitRecords(data []byte) []string {
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func joinRecords(recs []string) []byte {
	if len(recs) == 0 {
		return nil
	}
	return []byte(strings.Join(recs, "\n") + "\n")
}

// Map sorts the concatenated input records.
func (SortApp) Map(inputs [][]byte) ([]byte, error) {
	var recs []string
	for _, in := range inputs {
		recs = append(recs, splitRecords(in)...)
	}
	sort.Strings(recs)
	return joinRecords(recs), nil
}

// Reduce performs a k-way merge of sorted runs.
func (SortApp) Reduce(inputs [][]byte) ([]byte, error) {
	runs := make([][]string, 0, len(inputs))
	total := 0
	for _, in := range inputs {
		r := splitRecords(in)
		if !sort.StringsAreSorted(r) {
			return nil, fmt.Errorf("mapreduce: reduce input run is not sorted")
		}
		runs = append(runs, r)
		total += len(r)
	}
	out := make([]string, 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best == -1 || r[idx[i]] < runs[best][idx[best]] {
				best = i
			}
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
	}
	return joinRecords(out), nil
}

// GrepApp filters newline-separated text to the lines containing its
// pattern. Mappers emit matching lines; reducers concatenate (a
// single-step, partition-preserving application, useful as the first
// stage of a pipeline).
type GrepApp struct {
	// Pattern is the substring to match; empty matches the package's
	// default pattern.
	Pattern string
}

func (g GrepApp) pattern() string {
	if g.Pattern == "" {
		return "lambda"
	}
	return g.Pattern
}

// Map emits input lines containing the pattern.
func (g GrepApp) Map(inputs [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	pat := g.pattern()
	for _, in := range inputs {
		for _, line := range strings.Split(string(in), "\n") {
			if line != "" && strings.Contains(line, pat) {
				buf.WriteString(line)
				buf.WriteByte('\n')
			}
		}
	}
	return buf.Bytes(), nil
}

// Reduce concatenates matched-line chunks, preserving order.
func (GrepApp) Reduce(inputs [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	for _, in := range inputs {
		buf.Write(in)
	}
	return buf.Bytes(), nil
}

// QueryApp implements the AMPLab-style aggregation query over uservisits
// rows: total adRevenue grouped by countryCode. Intermediate format:
// "country<TAB>revenueCents" per line, sorted by country. Revenue is kept
// in integer cents so merging is exact and associative.
type QueryApp struct{}

func renderRevenue(rev map[string]int64) []byte {
	keys := make([]string, 0, len(rev))
	for k := range rev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&buf, "%s\t%d\n", k, rev[k])
	}
	return buf.Bytes()
}

// Map parses CSV uservisits rows and partially aggregates revenue by
// country.
func (QueryApp) Map(inputs [][]byte) ([]byte, error) {
	rev := make(map[string]int64)
	for _, in := range inputs {
		for _, line := range strings.Split(string(in), "\n") {
			if line == "" {
				continue
			}
			// sourceIP, visitDate, adRevenue, userAgent, countryCode,
			// languageCode, searchWord, duration
			fields := strings.Split(line, ",")
			if len(fields) != 8 {
				// Generated objects are cut at a byte budget, so the last
				// row of an object may be truncated; skip it like a real
				// scan task would skip a partial record at a split edge.
				continue
			}
			revenue, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				continue
			}
			rev[fields[4]] += int64(revenue * 100)
		}
	}
	return renderRevenue(rev), nil
}

// Reduce merges partial revenue tables.
func (QueryApp) Reduce(inputs [][]byte) ([]byte, error) {
	rev := make(map[string]int64)
	for _, in := range inputs {
		for _, line := range strings.Split(string(in), "\n") {
			if line == "" {
				continue
			}
			country, val, ok := strings.Cut(line, "\t")
			if !ok {
				return nil, fmt.Errorf("mapreduce: malformed revenue line %q", line)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, err
			}
			rev[country] += n
		}
	}
	return renderRevenue(rev), nil
}
