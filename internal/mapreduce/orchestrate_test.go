package mapreduce

import (
	"testing"
	"testing/quick"
)

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTableIExact reproduces the paper's Table I for 10 input objects.
func TestTableIExact(t *testing.T) {
	rows, err := TableI(10, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []TableIRow{
		{ObjectsPerLambda: 1, Mappers: 10, StepReducers: []int{1}},
		{ObjectsPerLambda: 2, Mappers: 5, StepReducers: []int{3, 2, 1}},
		{ObjectsPerLambda: 3, Mappers: 4, StepReducers: []int{2, 1}},
		{ObjectsPerLambda: 4, Mappers: 3, StepReducers: []int{1}},
		{ObjectsPerLambda: 5, Mappers: 2, StepReducers: []int{1}},
	}
	for i, w := range want {
		g := rows[i]
		if g.Mappers != w.Mappers || !eqInts(g.StepReducers, w.StepReducers) {
			t.Errorf("k=%d: got mappers=%d steps=%v, want mappers=%d steps=%v",
				w.ObjectsPerLambda, g.Mappers, g.StepReducers, w.Mappers, w.StepReducers)
		}
	}
}

// TestSkewedTail checks the Sec. II-C skew: 10 objects at k=5..9 split as
// (5,5), (6,4), (7,3), (8,2), (9,1).
func TestSkewedTail(t *testing.T) {
	want := map[int][]int{
		5: {5, 5}, 6: {6, 4}, 7: {7, 3}, 8: {8, 2}, 9: {9, 1},
	}
	for k, loads := range want {
		o, err := Orchestrate(10, k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !eqInts(o.MapperLoads, loads) {
			t.Errorf("k=%d: loads = %v, want %v", k, o.MapperLoads, loads)
		}
	}
}

func TestOrchestrateSingleObject(t *testing.T) {
	o, err := Orchestrate(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Mappers() != 1 || o.NumSteps() != 1 || o.Reducers() != 1 {
		t.Fatalf("orchestration for 1 object: %+v", o)
	}
}

func TestOrchestrateKR1SingleStep(t *testing.T) {
	o, err := Orchestrate(10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o.NumSteps() != 1 || o.Steps[0].Reducers() != 1 || o.Steps[0].Loads[0] != 10 {
		t.Fatalf("kR=1 should collapse to one all-consuming reducer: %+v", o.Steps)
	}
}

func TestOrchestrateValidation(t *testing.T) {
	cases := []struct{ n, kM, kR int }{
		{0, 1, 1}, {-3, 1, 1}, {10, 0, 1}, {10, 11, 1}, {10, 1, 0}, {10, 1, -2},
	}
	for _, c := range cases {
		if _, err := Orchestrate(c.n, c.kM, c.kR); err == nil {
			t.Errorf("Orchestrate(%d,%d,%d) should fail", c.n, c.kM, c.kR)
		}
	}
}

func TestTableIIIConsistentRows(t *testing.T) {
	// Table III rows that are internally consistent with the ceil cascade.
	// WordCount 1 GB: 20 objects, 2/mapper, 2/reducer -> 10 mappers, 11
	// reducers in 4 steps.
	o, err := Orchestrate(20, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Mappers() != 10 || o.Reducers() != 11 || o.NumSteps() != 4 {
		t.Errorf("WC1GB: mappers=%d reducers=%d steps=%d, want 10/11/4",
			o.Mappers(), o.Reducers(), o.NumSteps())
	}
	// WordCount 10 GB: 24 objects, 8/mapper, 11/reducer -> 3 mappers,
	// 1 reducer, 1 step.
	o, err = Orchestrate(24, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if o.Mappers() != 3 || o.Reducers() != 1 || o.NumSteps() != 1 {
		t.Errorf("WC10GB: mappers=%d reducers=%d steps=%d, want 3/1/1",
			o.Mappers(), o.Reducers(), o.NumSteps())
	}
	// Query: 202 objects, 1/mapper, 11/reducer -> 202 mappers, 22
	// reducers (19+2+1). The paper lists 22 reducers too; its "4 steps"
	// is off by one against its own Table I recurrence (see EXPERIMENTS.md).
	o, err = Orchestrate(202, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if o.Mappers() != 202 || o.Reducers() != 22 {
		t.Errorf("Query: mappers=%d reducers=%d, want 202/22", o.Mappers(), o.Reducers())
	}
}

// Property: every step consumes exactly the previous step's outputs, the
// cascade converges to one reducer, and loads sum correctly.
func TestOrchestrateInvariantsProperty(t *testing.T) {
	f := func(nRaw, kMRaw, kRRaw uint8) bool {
		n := int(nRaw)%300 + 1
		kM := int(kMRaw)%n + 1
		kR := int(kRRaw)%16 + 1
		o, err := Orchestrate(n, kM, kR)
		if err != nil {
			return false
		}
		sum := 0
		for _, l := range o.MapperLoads {
			if l <= 0 || l > kM {
				return false
			}
			sum += l
		}
		if sum != n {
			return false
		}
		prev := o.Mappers()
		for _, s := range o.Steps {
			if s.Objects() != prev {
				return false
			}
			if kR > 1 {
				for _, l := range s.Loads {
					if l <= 0 || l > kR {
						return false
					}
				}
			}
			prev = s.Reducers()
		}
		return prev == 1 // converges to a single final reducer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalLambdas(t *testing.T) {
	o, err := Orchestrate(10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 5 mappers + 1 coordinator + 6 reducers (3+2+1).
	if o.TotalLambdas() != 12 {
		t.Fatalf("TotalLambdas = %d, want 12", o.TotalLambdas())
	}
}
