package mapreduce

import (
	"bytes"
	"testing"
)

// FuzzOrchestrate drives the Table I recurrence with arbitrary inputs:
// it must never panic, and every accepted input must satisfy the shape
// invariants (loads partition the objects, the cascade converges).
func FuzzOrchestrate(f *testing.F) {
	f.Add(10, 2, 2)
	f.Add(202, 1, 11)
	f.Add(1, 1, 1)
	f.Add(200, 4, 8)
	f.Fuzz(func(t *testing.T, n, kM, kR int) {
		o, err := Orchestrate(n, kM, kR)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		sum := 0
		for _, l := range o.MapperLoads {
			if l <= 0 {
				t.Fatalf("non-positive mapper load in %+v", o)
			}
			sum += l
		}
		if sum != n {
			t.Fatalf("mapper loads sum %d != %d", sum, n)
		}
		prev := o.Mappers()
		for _, s := range o.Steps {
			if s.Objects() != prev {
				t.Fatalf("step consumes %d, previous produced %d", s.Objects(), prev)
			}
			prev = s.Reducers()
		}
		if prev != 1 {
			t.Fatalf("cascade did not converge: %+v", o)
		}
	})
}

// FuzzWordCountRoundTrip feeds arbitrary text through Map and checks the
// intermediate format round-trips through parseCounts.
func FuzzWordCountRoundTrip(f *testing.F) {
	f.Add([]byte("hello world hello"))
	f.Add([]byte(""))
	f.Add([]byte("a\tb\nc"))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := WordCountApp{}.Map([][]byte{data})
		if err != nil {
			t.Fatalf("Map failed on %q: %v", data, err)
		}
		counts := map[string]int64{}
		if err := parseCounts(out, counts); err != nil {
			t.Fatalf("Map emitted unparseable output for %q: %v", data, err)
		}
		// Re-rendering must be stable.
		again := renderCounts(counts)
		if !bytes.Equal(out, again) {
			t.Fatalf("render not canonical for %q", data)
		}
	})
}

// FuzzGrepNeverGrows: grep output is always a subset of the input lines.
func FuzzGrepNeverGrows(f *testing.F) {
	f.Add([]byte("lambda one\ntwo\n"), "lambda")
	f.Fuzz(func(t *testing.T, data []byte, pattern string) {
		if pattern == "" {
			return
		}
		out, err := (GrepApp{Pattern: pattern}).Map([][]byte{data})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > len(data)+1 {
			t.Fatalf("grep output (%d bytes) exceeds input (%d bytes)", len(out), len(data))
		}
	})
}

// FuzzSortPreservesRecords: mapping arbitrary record text keeps the
// record multiset.
func FuzzSortPreservesRecords(f *testing.F) {
	f.Add([]byte("b\na\nc\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := SortApp{}.Map([][]byte{data})
		if err != nil {
			t.Fatal(err)
		}
		if len(splitRecords(out)) != len(splitRecords(data)) {
			t.Fatalf("record count changed: %q -> %q", data, out)
		}
	})
}

// FuzzQueryMapNeverPanics: arbitrary CSV-ish rows must be skipped or
// aggregated, never crash.
func FuzzQueryMapNeverPanics(f *testing.F) {
	f.Add([]byte("1.2.3.4,2001-01-01,10.50,UA,USA,en,cloud,5\n"))
	f.Add([]byte("garbage,,,,\n,,,,,,,\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := (QueryApp{}).Map([][]byte{data}); err != nil {
			t.Fatalf("query map errored on junk: %v", err)
		}
	})
}
