package mapreduce

import (
	"strings"
	"testing"
	"time"

	"astra/internal/lambda"
	"astra/internal/objectstore"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/workload"
)

type jobWorld struct {
	sched  *simtime.Scheduler
	store  *objectstore.Store
	pl     *lambda.Platform
	driver *Driver
}

func newJobWorld(lcfg lambda.Config) *jobWorld {
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth: 80 << 20, // 80 MiB/s, the default B
		Pricing:   pricing.AWS().Store,
	})
	pl := lambda.New(sched, store, lcfg)
	return &jobWorld{sched: sched, store: store, pl: pl, driver: NewDriver(pl)}
}

func (w *jobWorld) runJob(t *testing.T, spec JobSpec, cfg Config) *Report {
	t.Helper()
	var rep *Report
	err := w.sched.Run(func(p *simtime.Proc) {
		var err error
		rep, err = w.driver.Run(p, spec, cfg)
		if err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	return rep
}

func smallWordCountSpec(t *testing.T, w *jobWorld, numObjects, objectSize int) JobSpec {
	t.Helper()
	job := workload.Job{Profile: workload.WordCount, NumObjects: numObjects, ObjectSize: int64(objectSize)}
	keys, err := workload.SeedConcrete(w.store, "in", job, 42)
	if err != nil {
		t.Fatal(err)
	}
	return JobSpec{Workload: job, Bucket: "in", InputKeys: keys, Mode: Concrete}
}

func TestConcreteWordCountCorrectness(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 10, 4096)
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}

	// Expected counts computed directly from the seeded data.
	want := make(map[string]int64)
	err := w.sched.Run(func(p *simtime.Proc) {
		var all [][]byte
		for _, k := range spec.InputKeys {
			obj, err := w.store.Get(p, "in", k)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, obj.Data)
		}
		for _, data := range all {
			for _, wd := range strings.Fields(string(data)) {
				want[wd]++
			}
		}
		rep, err := w.driver.Run(p, spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.OutputKeys) != 1 {
			t.Fatalf("OutputKeys = %v, want exactly one", rep.OutputKeys)
		}
		out, err := w.store.Get(p, rep.InterBucket, rep.OutputKeys[0])
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]int64)
		if err := parseCounts(out.Data, got); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %d distinct words, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportShapeAndAccounting(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 10, 2048)
	cfg := Config{MapperMemMB: 512, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}
	rep := w.runJob(t, spec, cfg)

	o := rep.Orchestration
	if o.Mappers() != 5 || o.NumSteps() != 3 || o.Reducers() != 6 {
		t.Fatalf("orchestration = %d mappers, %d steps, %d reducers", o.Mappers(), o.NumSteps(), o.Reducers())
	}
	// One record per lambda: 5 mappers + 1 coordinator + 6 reducers.
	if len(rep.Records) != o.TotalLambdas() {
		t.Fatalf("records = %d, want %d", len(rep.Records), o.TotalLambdas())
	}
	// Phase decomposition must tile the completion time exactly.
	sum := rep.Phases.Map + rep.Phases.CoordExclusive + rep.Phases.Reduce
	if diff := rep.JCT - sum; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("JCT %v != Map %v + Coord %v + Reduce %v",
			rep.JCT, rep.Phases.Map, rep.Phases.CoordExclusive, rep.Phases.Reduce)
	}
	if len(rep.Phases.Steps) != o.NumSteps() {
		t.Fatalf("step durations = %d, want %d", len(rep.Phases.Steps), o.NumSteps())
	}
	if rep.Cost.Lambda <= 0 || rep.Cost.Requests <= 0 || rep.Cost.Storage <= 0 {
		t.Fatalf("cost breakdown has non-positive component: %+v", rep.Cost)
	}
	if rep.Cost.Total() != rep.Cost.Lambda+rep.Cost.Requests+rep.Cost.Storage {
		t.Fatal("Total mismatch")
	}
}

func TestRequestCountsMatchModel(t *testing.T) {
	// Eq. 10: mappers make kM GETs + 1 PUT each; the coordinator makes P
	// PUTs; reducers make kR(-ish) GETs + 1 PUT each.
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 10, 1024)
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}

	before := w.store.Metrics()
	rep := w.runJob(t, spec, cfg)
	m := w.store.Metrics().Sub(before)

	o := rep.Orchestration
	wantGets := int64(10 /* mapper gets = N */ + o.Mappers() + (o.Reducers() - o.Steps[len(o.Steps)-1].Reducers()) + 0)
	// Reducer GETs: every step's reducers fetch exactly the previous
	// step's outputs = objects consumed per step. Total consumed =
	// mappers + sum of intermediate step outputs = mappers + (reducers -
	// final step reducers)... computed directly instead:
	wantGets = 10 // mapper phase: N input objects
	for _, s := range o.Steps {
		wantGets += int64(s.Objects())
	}
	wantPuts := int64(o.Mappers() + o.NumSteps() /* state objects */ + o.Reducers())
	if m.Gets != wantGets {
		t.Fatalf("GETs = %d, want %d", m.Gets, wantGets)
	}
	if m.Puts != wantPuts {
		t.Fatalf("PUTs = %d, want %d", m.Puts, wantPuts)
	}
}

func TestProfiledModeRunsLargeJob(t *testing.T) {
	w := newJobWorld(lambda.Config{DisableTimeout: true})
	job := workload.Sort100GB()
	keys, err := workload.SeedProfiled(w.store, "in", job)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Workload: job, Bucket: "in", InputKeys: keys, Mode: Profiled}
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 4, ObjsPerReducer: 8}
	rep := w.runJob(t, spec, cfg)
	if rep.Orchestration.Mappers() != 50 {
		t.Fatalf("mappers = %d, want 50", rep.Orchestration.Mappers())
	}
	if rep.JCT <= 0 {
		t.Fatal("JCT must be positive")
	}
	// Sort's data ratios are 1.0, so the input plus all intermediates must
	// still be at rest: well over the 100 GB input — without the host ever
	// holding those bytes.
	if w.store.StoredBytes() < job.TotalBytes() {
		t.Fatalf("stored = %d, want at least the input size", w.store.StoredBytes())
	}
}

func TestProfiledOutputSizesFollowRatios(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	job := workload.Job{Profile: workload.WordCount, NumObjects: 4, ObjectSize: 10 << 20}
	keys, err := workload.SeedProfiled(w.store, "in", job)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Workload: job, Bucket: "in", InputKeys: keys, Mode: Profiled}
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 4}
	var finalSize int64
	err = w.sched.Run(func(p *simtime.Proc) {
		rep, err := w.driver.Run(p, spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := w.store.Get(p, rep.InterBucket, rep.OutputKeys[0])
		if err != nil {
			t.Fatal(err)
		}
		finalSize = obj.Size
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 x 10 MB inputs -> mapper out 0.10x each -> 4 MB total; one
	// reducer at the profile ratio.
	perInput := job.ObjectSize // runtime value, so the float conversion is legal
	alpha, beta := job.Profile.MapOutputRatio, job.Profile.ReduceOutputRatio
	want := int64(float64(perInput) * alpha * 4 * beta)
	tol := want / 100
	if finalSize < want-tol || finalSize > want+tol {
		t.Fatalf("final size = %d, want ~%d", finalSize, want)
	}
}

func TestHigherMemoryReducesJCT(t *testing.T) {
	run := func(mem int) time.Duration {
		w := newJobWorld(lambda.Config{})
		spec := smallWordCountSpec(t, w, 10, 64<<10)
		cfg := Config{MapperMemMB: mem, CoordMemMB: mem, ReducerMemMB: mem, ObjsPerMapper: 2, ObjsPerReducer: 2}
		return w.runJob(t, spec, cfg).JCT
	}
	small, large := run(128), run(1536)
	if large >= small {
		t.Fatalf("JCT at 1536 MB (%v) should beat 128 MB (%v)", large, small)
	}
}

func TestDriverRejectsBadInputs(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	job := workload.Job{Profile: workload.WordCount, NumObjects: 4, ObjectSize: 1024}
	keys, _ := workload.SeedConcrete(w.store, "in", job, 1)
	err := w.sched.Run(func(p *simtime.Proc) {
		// Mismatched key count.
		_, err := w.driver.Run(p, JobSpec{Workload: job, Bucket: "in", InputKeys: keys[:2], Mode: Concrete},
			Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 2})
		if err == nil {
			t.Error("mismatched keys should fail")
		}
		// Invalid memory tier.
		_, err = w.driver.Run(p, JobSpec{Workload: job, Bucket: "in", InputKeys: keys, Mode: Concrete},
			Config{MapperMemMB: 100, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 2})
		if err == nil {
			t.Error("invalid memory should fail")
		}
		// Out-of-range parallelism.
		_, err = w.driver.Run(p, JobSpec{Workload: job, Bucket: "in", InputKeys: keys, Mode: Concrete},
			Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 99, ObjsPerReducer: 2})
		if err == nil {
			t.Error("kM > N should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJobSurvivesConcurrencyThrottling(t *testing.T) {
	sheet := pricing.AWS()
	sheet.Lambda.MaxConcurrency = 3 // far fewer slots than mappers
	w := newJobWorld(lambda.Config{Sheet: sheet})
	spec := smallWordCountSpec(t, w, 12, 1024)
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 3}
	rep := w.runJob(t, spec, cfg)
	if rep.PeakConcurrency > 3 {
		t.Fatalf("peak concurrency %d exceeded the limit", rep.PeakConcurrency)
	}
	if rep.JCT <= 0 {
		t.Fatal("job should still complete")
	}
}

func TestMapperFailurePropagates(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 4, 1024)
	// Sabotage one input object after seeding.
	w.store.SetFault(func(op objectstore.Op, bucket, key string) error {
		if op == objectstore.OpGet && key == spec.InputKeys[2] {
			return objectstore.ErrNoSuchKey
		}
		return nil
	})
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 2}
	err := w.sched.Run(func(p *simtime.Proc) {
		_, err := w.driver.Run(p, spec, cfg)
		if err == nil {
			t.Error("expected mapper failure to surface")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWarmContainersReusedAcrossReduceSteps(t *testing.T) {
	// With cold starts enabled, step-1 reducers boot cold; later steps
	// reuse the warm containers step 1 left behind (same function).
	w := newJobWorld(lambda.Config{ColdStart: 300 * time.Millisecond, KeepAlive: time.Hour})
	spec := smallWordCountSpec(t, w, 10, 1024)
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}
	rep := w.runJob(t, spec, cfg)

	coldByStep := map[string][]bool{}
	for _, r := range rep.Records {
		if strings.HasPrefix(r.Label, "red-") {
			step := strings.Split(r.Label, "-")[1]
			coldByStep[step] = append(coldByStep[step], r.Cold)
		}
	}
	for _, cold := range coldByStep["0"] {
		if !cold {
			t.Fatal("step-1 reducers should all be cold")
		}
	}
	for _, cold := range coldByStep["1"] {
		if cold {
			t.Fatal("step-2 reducers should reuse step-1's warm containers")
		}
	}
}

func TestTwoJobsOnOnePlatform(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 6, 1024)
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}
	err := w.sched.Run(func(p *simtime.Proc) {
		r1, err := w.driver.Run(p, spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := w.driver.Run(p, spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r1.InterBucket == r2.InterBucket {
			t.Error("jobs must get distinct intermediate buckets")
		}
		// Same config, same input: identical duration (warm starts are the
		// only difference and cold start is 0 by default here).
		if r1.JCT != r2.JCT {
			t.Errorf("JCT differs across identical jobs: %v vs %v", r1.JCT, r2.JCT)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
