// Package mapreduce implements the serverless MapReduce framework the
// paper builds on (the AWS reference architecture of Sec. II-B): parallel
// mapper lambdas, a coordinator lambda, and a multi-step tree of reducer
// lambdas exchanging intermediate objects through the object store.
//
// The package has two layers: Orchestrate computes the pure shape of a job
// (Table I of the paper) from the object counts, and Driver executes that
// shape on the simulated Lambda platform, in either concrete mode (real
// bytes, real map/reduce code) or profiled mode (size-only metadata at any
// scale).
package mapreduce

import (
	"fmt"

	"astra/internal/workload"
)

// StateObjectBytes is the size of the reducer state object the coordinator
// writes to the store before each reducing step (the l constant; the paper
// assumes 1 MB).
const StateObjectBytes = 1 << 20

// Step is one reducing step: Loads[i] is the number of input objects
// assigned to reducer i of the step.
type Step struct {
	Loads []int
}

// Reducers reports the number of reducer lambdas in the step (g_p).
func (s Step) Reducers() int { return len(s.Loads) }

// Objects reports the number of input objects consumed by the step.
func (s Step) Objects() int {
	n := 0
	for _, l := range s.Loads {
		n += l
	}
	return n
}

// Orchestration is the complete shape of a serverless MapReduce job for
// given object counts: how many mappers, how objects are distributed, and
// the full reducing-step cascade (the paper's Table I and Table II).
type Orchestration struct {
	NumObjects     int
	ObjsPerMapper  int
	ObjsPerReducer int
	// MapperLoads[i] is the number of input objects mapper i processes.
	MapperLoads []int
	// Steps is the reducing cascade; Steps[p].Reducers() is g_{p+1}.
	Steps []Step
}

// Mappers reports the number of mapper lambdas (j).
func (o Orchestration) Mappers() int { return len(o.MapperLoads) }

// Reducers reports the total number of reducer lambdas across all steps
// (g in the paper).
func (o Orchestration) Reducers() int {
	n := 0
	for _, s := range o.Steps {
		n += s.Reducers()
	}
	return n
}

// NumSteps reports the number of reducing steps (P).
func (o Orchestration) NumSteps() int { return len(o.Steps) }

// TotalLambdas reports every lambda the job invokes: mappers, one
// coordinator, and all reducers.
func (o Orchestration) TotalLambdas() int { return o.Mappers() + 1 + o.Reducers() }

// splitGreedy distributes n objects into loads of k, with the remainder on
// the last worker — the skewed tail distribution the paper describes in
// Sec. II-C (e.g. 10 objects at k=7 gives loads (7,3)).
func splitGreedy(n, k int) []int {
	loads := make([]int, 0, (n+k-1)/k)
	for n > 0 {
		take := k
		if take > n {
			take = n
		}
		loads = append(loads, take)
		n -= take
	}
	return loads
}

// Orchestrate computes the job shape for n input objects with kM objects
// per mapper and kR objects per reducer.
//
// Mappers: j = ceil(n/kM), loads greedy with a skewed tail. Reducing:
// g_1 = ceil(j/kR), then g_p = ceil(g_{p-1}/kR) until a single reducer
// remains; kR <= 1 degenerates to a single one-reducer step consuming all
// j objects (Table I, column 1). A job always has at least one reducing
// step, which produces the final output object.
func Orchestrate(n, kM, kR int) (Orchestration, error) {
	if n <= 0 {
		return Orchestration{}, fmt.Errorf("mapreduce: need a positive object count, got %d", n)
	}
	if kM <= 0 || kM > n {
		return Orchestration{}, fmt.Errorf("mapreduce: objects per mapper %d out of range [1, %d]", kM, n)
	}
	if kR <= 0 {
		return Orchestration{}, fmt.Errorf("mapreduce: objects per reducer %d must be positive", kR)
	}
	o := Orchestration{
		NumObjects:     n,
		ObjsPerMapper:  kM,
		ObjsPerReducer: kR,
		MapperLoads:    splitGreedy(n, kM),
	}
	count := o.Mappers()
	if kR == 1 {
		// A reducer that consumes one object and emits one object would
		// cascade forever; the reference framework collapses this to a
		// single reducer handling everything (Table I, column 1).
		o.Steps = []Step{{Loads: []int{count}}}
		return o, nil
	}
	for {
		step := Step{Loads: splitGreedy(count, kR)}
		o.Steps = append(o.Steps, step)
		count = step.Reducers()
		if count <= 1 {
			break
		}
	}
	return o, nil
}

// OrchestrateFor computes the job shape for a workload profile:
// single-step-reduce applications (Sort) run exactly one reducing step
// whose partitioned outputs are final; aggregations cascade until a
// single object remains.
func OrchestrateFor(pf workload.Profile, n, kM, kR int) (Orchestration, error) {
	if !pf.SingleStepReduce {
		return Orchestrate(n, kM, kR)
	}
	if n <= 0 {
		return Orchestration{}, fmt.Errorf("mapreduce: need a positive object count, got %d", n)
	}
	if kM <= 0 || kM > n {
		return Orchestration{}, fmt.Errorf("mapreduce: objects per mapper %d out of range [1, %d]", kM, n)
	}
	if kR <= 0 {
		return Orchestration{}, fmt.Errorf("mapreduce: objects per reducer %d must be positive", kR)
	}
	o := Orchestration{
		NumObjects:     n,
		ObjsPerMapper:  kM,
		ObjsPerReducer: kR,
		MapperLoads:    splitGreedy(n, kM),
	}
	o.Steps = []Step{{Loads: splitGreedy(o.Mappers(), kR)}}
	return o, nil
}

// TableIRow reproduces one column of the paper's Table I for the
// motivation experiment (10 input objects): the mapper count and the
// reducer count at each step, for k objects per lambda.
type TableIRow struct {
	ObjectsPerLambda int
	Mappers          int
	StepReducers     []int
}

// TableI computes the paper's Table I for n input objects and the given
// per-lambda object counts (the paper uses n=10, k=1..5).
func TableI(n int, ks []int) ([]TableIRow, error) {
	rows := make([]TableIRow, 0, len(ks))
	for _, k := range ks {
		o, err := Orchestrate(n, k, k)
		if err != nil {
			return nil, err
		}
		row := TableIRow{ObjectsPerLambda: k, Mappers: o.Mappers()}
		for _, s := range o.Steps {
			row.StepReducers = append(row.StepReducers, s.Reducers())
		}
		rows = append(rows, row)
	}
	return rows, nil
}
