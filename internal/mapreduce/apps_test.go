package mapreduce

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"astra/internal/workload"
)

func TestAppFor(t *testing.T) {
	for _, pf := range []workload.Profile{
		workload.WordCount, workload.Sort, workload.Query,
		workload.SparkWordCount, workload.SparkSQL,
	} {
		if _, err := AppFor(pf); err != nil {
			t.Errorf("%s: %v", pf.Name, err)
		}
	}
	if _, err := AppFor(workload.Profile{Name: "x"}); err == nil {
		t.Fatal("unknown profile should fail")
	}
}

func countsOf(t *testing.T, data []byte) map[string]int64 {
	t.Helper()
	m := make(map[string]int64)
	if err := parseCounts(data, m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWordCountMapMatchesDirectCount(t *testing.T) {
	in := []byte("a b b c c c a")
	out, err := WordCountApp{}.Map([][]byte{in})
	if err != nil {
		t.Fatal(err)
	}
	m := countsOf(t, out)
	if m["a"] != 2 || m["b"] != 2 || m["c"] != 3 {
		t.Fatalf("counts = %v", m)
	}
}

func TestWordCountReduceMerges(t *testing.T) {
	a, _ := WordCountApp{}.Map([][]byte{[]byte("x x y")})
	b, _ := WordCountApp{}.Map([][]byte{[]byte("y z")})
	out, err := WordCountApp{}.Reduce([][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	m := countsOf(t, out)
	if m["x"] != 2 || m["y"] != 2 || m["z"] != 1 {
		t.Fatalf("merged counts = %v", m)
	}
}

func TestWordCountAssociativityProperty(t *testing.T) {
	// Reducing in any grouping must give the same totals as one big map.
	f := func(seedA, seedB, seedC int64) bool {
		texts := [][]byte{
			workload.CorpusText(seedA, 300),
			workload.CorpusText(seedB, 300),
			workload.CorpusText(seedC, 300),
		}
		app := WordCountApp{}
		direct, _ := app.Map([][]byte{bytes.Join(texts, []byte(" "))})

		var parts [][]byte
		for _, tx := range texts {
			p, _ := app.Map([][]byte{tx})
			parts = append(parts, p)
		}
		ab, _ := app.Reduce(parts[:2])
		merged, _ := app.Reduce([][]byte{ab, parts[2]})

		dm, mm := make(map[string]int64), make(map[string]int64)
		if parseCounts(direct, dm) != nil || parseCounts(merged, mm) != nil {
			return false
		}
		// Joining with spaces cannot split words, so totals must match.
		if len(dm) != len(mm) {
			return false
		}
		for k, v := range dm {
			if mm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWordCountReduceRejectsGarbage(t *testing.T) {
	if _, err := (WordCountApp{}).Reduce([][]byte{[]byte("no-tab-here\n")}); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := (WordCountApp{}).Reduce([][]byte{[]byte("w\tnot-a-number\n")}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSortMapSortsChunk(t *testing.T) {
	in := []byte("ccc\naaa\nbbb\n")
	out, err := SortApp{}.Map([][]byte{in})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "aaa\nbbb\nccc\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSortReduceMergesRuns(t *testing.T) {
	out, err := SortApp{}.Reduce([][]byte{
		[]byte("a\nd\nf\n"),
		[]byte("b\nc\ne\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "a\nb\nc\nd\ne\nf\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSortReduceRejectsUnsortedRun(t *testing.T) {
	if _, err := (SortApp{}).Reduce([][]byte{[]byte("b\na\n")}); err == nil {
		t.Fatal("expected unsorted-run error")
	}
}

func TestSortEndToEndProperty(t *testing.T) {
	f := func(seed int64) bool {
		app := SortApp{}
		data := workload.SortRecords(seed, 2000)
		recs := splitRecords(data)

		// Three mappers over thirds, then a two-level reduce.
		third := len(recs) / 3
		var runs [][]byte
		for i := 0; i < 3; i++ {
			lo, hi := i*third, (i+1)*third
			if i == 2 {
				hi = len(recs)
			}
			run, _ := app.Map([][]byte{joinRecords(recs[lo:hi])})
			runs = append(runs, run)
		}
		lvl1, err := app.Reduce(runs[:2])
		if err != nil {
			return false
		}
		final, err := app.Reduce([][]byte{lvl1, runs[2]})
		if err != nil {
			return false
		}
		out := splitRecords(final)
		if len(out) != len(recs) {
			return false
		}
		return sort.StringsAreSorted(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSortEmptyInput(t *testing.T) {
	out, err := SortApp{}.Map([][]byte{nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %q", out)
	}
	out, err = SortApp{}.Reduce([][]byte{nil, nil})
	if err != nil || len(out) != 0 {
		t.Fatalf("reduce empty = %q, %v", out, err)
	}
}

func TestQueryAggregatesRevenueByCountry(t *testing.T) {
	rows := "1.2.3.4,2001-01-01,10.50,UA,USA,en,cloud,5\n" +
		"5.6.7.8,2002-02-02,2.25,UA,DEU,de,news,9\n" +
		"9.9.9.9,2003-03-03,1.00,UA,USA,en,food,2\n"
	out, err := QueryApp{}.Map([][]byte{[]byte(rows)})
	if err != nil {
		t.Fatal(err)
	}
	got := string(out)
	if !strings.Contains(got, "USA\t1150") || !strings.Contains(got, "DEU\t225") {
		t.Fatalf("out = %q", got)
	}
}

func TestQueryMapSkipsTruncatedRows(t *testing.T) {
	rows := "1.2.3.4,2001-01-01,10.00,UA,USA,en,cloud,5\npartial,row"
	out, err := QueryApp{}.Map([][]byte{[]byte(rows)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "USA\t1000") {
		t.Fatalf("out = %q", out)
	}
	if strings.Count(string(out), "\n") != 1 {
		t.Fatalf("truncated row should be skipped: %q", out)
	}
}

func TestQueryReduceMerges(t *testing.T) {
	out, err := QueryApp{}.Reduce([][]byte{
		[]byte("DEU\t100\nUSA\t250\n"),
		[]byte("USA\t750\nCHN\t10\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "CHN\t10\nDEU\t100\nUSA\t1000\n"
	if string(out) != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestQueryReduceRejectsGarbage(t *testing.T) {
	if _, err := (QueryApp{}).Reduce([][]byte{[]byte("no-tab\n")}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := (QueryApp{}).Reduce([][]byte{[]byte("USA\tNaNish\n")}); err == nil {
		t.Fatal("expected error")
	}
}

func TestQueryTotalRevenuePreservedProperty(t *testing.T) {
	// Splitting rows across mappers must preserve the global revenue sum.
	f := func(seed int64) bool {
		app := QueryApp{}
		data := workload.UserVisitsRows(seed, 4000)
		lines := strings.SplitAfter(string(data), "\n")
		mid := len(lines) / 2
		a, _ := app.Map([][]byte{[]byte(strings.Join(lines[:mid], ""))})
		b, _ := app.Map([][]byte{[]byte(strings.Join(lines[mid:], ""))})
		merged, err := app.Reduce([][]byte{a, b})
		if err != nil {
			return false
		}
		direct, _ := app.Map([][]byte{data})
		return sumRevenue(merged) == sumRevenue(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGrepMapFiltersLines(t *testing.T) {
	in := []byte("the lambda runs\nno match here\nserverless lambda wins\n")
	out, err := GrepApp{}.Map([][]byte{in})
	if err != nil {
		t.Fatal(err)
	}
	want := "the lambda runs\nserverless lambda wins\n"
	if string(out) != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestGrepCustomPattern(t *testing.T) {
	out, err := GrepApp{Pattern: "ERROR"}.Map([][]byte{[]byte("ok\nERROR: bad\nok again\n")})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ERROR: bad\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGrepReduceConcatenates(t *testing.T) {
	out, err := GrepApp{}.Reduce([][]byte{[]byte("a\n"), []byte("b\n"), nil})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "a\nb\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGrepMatchCountInvariantProperty(t *testing.T) {
	// However the input is split across mappers, the total match count is
	// preserved through map+reduce.
	data := workload.CorpusText(11, 3000)
	direct, _ := GrepApp{}.Map([][]byte{data})
	wantLines := strings.Count(string(direct), "\n") + strings.Count(string(direct), " lambda")
	_ = wantLines // corpus is space-separated; matches counted via reduce below

	half := len(data) / 2
	// Split on a space boundary so no token is cut.
	for data[half] != ' ' {
		half++
	}
	a, _ := GrepApp{}.Map([][]byte{data[:half]})
	b, _ := GrepApp{}.Map([][]byte{data[half:]})
	merged, err := GrepApp{}.Reduce([][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(a)+len(b) {
		t.Fatal("reduce must concatenate exactly")
	}
}

func sumRevenue(data []byte) int64 {
	var total int64
	for _, ln := range strings.Split(string(data), "\n") {
		if ln == "" {
			continue
		}
		_, v, _ := strings.Cut(ln, "\t")
		n, _ := strconv.ParseInt(v, 10, 64)
		total += n
	}
	return total
}
