package mapreduce_test

import (
	"fmt"

	"astra/internal/mapreduce"
	"astra/internal/workload"
)

// Reproduce a column of the paper's Table I: 10 input objects with 2
// objects per mapper and per reducer yields 5 mappers and a 3-step
// reducing cascade of 3, 2, 1 reducers.
func ExampleOrchestrate() {
	o, err := mapreduce.Orchestrate(10, 2, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("mappers:", o.Mappers())
	for i, s := range o.Steps {
		fmt.Printf("step %d: %d reducer(s)\n", i+1, s.Reducers())
	}
	// Output:
	// mappers: 5
	// step 1: 3 reducer(s)
	// step 2: 2 reducer(s)
	// step 3: 1 reducer(s)
}

// Sort stops after one range-partitioned step (the paper's Table III
// shows 7 reducers in 1 step for exactly this shape).
func ExampleOrchestrateFor() {
	o, err := mapreduce.OrchestrateFor(workload.Sort, 200, 4, 8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d mappers -> %d reducers in %d step(s)\n",
		o.Mappers(), o.Reducers(), o.NumSteps())
	// Output:
	// 50 mappers -> 7 reducers in 1 step(s)
}

// The concrete WordCount application: real tokenizing and merging.
func ExampleWordCountApp() {
	app := mapreduce.WordCountApp{}
	a, _ := app.Map([][]byte{[]byte("to be or not to be")})
	b, _ := app.Map([][]byte{[]byte("be quick")})
	merged, _ := app.Reduce([][]byte{a, b})
	fmt.Print(string(merged))
	// Output:
	// be	3
	// not	1
	// or	1
	// quick	1
	// to	2
}
