package mapreduce

import (
	"astra/internal/flight"
)

// Audit analyzes the run's recorded event stream: it reconstructs the
// critical path (stage durations sum exactly to JCT, each decomposed into
// startup/compute/IO/waiting) and — when a predicted breakdown is attached
// to the report — diffs the model's per-term predictions against the
// recorded actuals. It requires a flight recorder to have been attached to
// the run (JobSpec.Recorder / astra.WithFlightRecorder); otherwise it
// returns flight.ErrNoEvents.
func (r *Report) Audit() (*flight.Audit, error) {
	path, err := flight.Analyze(r.Events)
	if err != nil {
		return nil, err
	}
	return flight.BuildAudit(path, r.Predicted, r.Cost.Total()), nil
}
