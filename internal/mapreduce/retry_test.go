package mapreduce

import (
	"testing"

	"astra/internal/lambda"
	"astra/internal/objectstore"
	"astra/internal/simtime"
)

// flakyOnce returns a fault hook that fails the first GET of each key in
// keys, then heals — the transient-failure pattern retries exist for.
func flakyOnce(keys ...string) objectstore.FaultFunc {
	seen := map[string]bool{}
	target := map[string]bool{}
	for _, k := range keys {
		target[k] = true
	}
	return func(op objectstore.Op, bucket, key string) error {
		if op == objectstore.OpGet && target[key] && !seen[key] {
			seen[key] = true
			return objectstore.ErrNoSuchKey
		}
		return nil
	}
}

func TestTaskRetryRecoversTransientMapperFault(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 6, 1024)
	spec.TaskRetries = 1
	w.store.SetFault(flakyOnce(spec.InputKeys[3]))
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 2}
	rep := w.runJob(t, spec, cfg)

	// The failed attempt is still billed: one extra record with an error.
	failed := 0
	for _, r := range rep.Records {
		if r.Err != nil {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("failed records = %d, want exactly the one flaky attempt", failed)
	}
	if len(rep.Records) != rep.Orchestration.TotalLambdas()+1 {
		t.Fatalf("records = %d, want %d (+1 retry)", len(rep.Records), rep.Orchestration.TotalLambdas()+1)
	}
}

func TestTaskRetryRecoversReducerFaults(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 8, 1024)
	spec.TaskRetries = 2
	// Fail the first read of two mapper outputs (step-1 reducer inputs)
	// and of a step-1 output (final-step reducer input).
	w.store.SetFault(flakyOnce("map/part-00001", "map/part-00005", "red/00/part-00000"))
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}
	rep := w.runJob(t, spec, cfg)
	if len(rep.OutputKeys) != 1 {
		t.Fatalf("job did not converge: %v", rep.OutputKeys)
	}
}

func TestZeroRetriesFailFast(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 4, 1024)
	w.store.SetFault(flakyOnce(spec.InputKeys[0]))
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 2}
	err := w.sched.Run(func(p *simtime.Proc) {
		if _, err := w.driver.Run(p, spec, cfg); err == nil {
			t.Error("fail-fast job should surface the fault")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRetriesExhaustedStillFails(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 4, 1024)
	spec.TaskRetries = 3
	// Permanent fault: never heals.
	w.store.SetFault(func(op objectstore.Op, bucket, key string) error {
		if op == objectstore.OpGet && key == spec.InputKeys[1] {
			return objectstore.ErrNoSuchKey
		}
		return nil
	})
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 2}
	err := w.sched.Run(func(p *simtime.Proc) {
		if _, err := w.driver.Run(p, spec, cfg); err == nil {
			t.Error("permanent fault should fail the job after retries")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 original + 3 retries of the doomed mapper were attempted.
	doomed := 0
	for _, r := range w.pl.Records() {
		if r.Err != nil {
			doomed++
		}
	}
	if doomed != 4 {
		t.Fatalf("failed attempts = %d, want 4", doomed)
	}
}

func TestRetryWorksUnderStepFunctions(t *testing.T) {
	w := newJobWorld(lambda.Config{})
	spec := smallWordCountSpec(t, w, 6, 1024)
	spec.TaskRetries = 1
	spec.Orchestrator = StepFunctions
	w.store.SetFault(flakyOnce("map/part-00000"))
	cfg := Config{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}
	rep := w.runJob(t, spec, cfg)
	if len(rep.OutputKeys) != 1 {
		t.Fatalf("SF job did not converge: %v", rep.OutputKeys)
	}
}
