package graph

import (
	"context"
	"sort"

	"astra/internal/parallel"
	"astra/internal/telemetry"
)

// YenKSP enumerates up to k loopless shortest paths from src to dst in
// non-decreasing W order (Yen's algorithm). It underlies the
// "keep taking the next-shortest path until one fits the budget" exact
// solver on the configuration DAG, and the k-shortest-path reference the
// paper cites for Algorithm 1. It runs serially; YenKSPCtx is the
// cancellable, parallel variant.
func (g *Graph) YenKSP(src, dst, k int) []Path {
	paths, _ := g.YenKSPCtx(context.Background(), src, dst, k, 1)
	return paths
}

// YenKSPCtx is YenKSP with cancellation and a bounded worker pool: each
// round's spur-node searches (independent Dijkstra runs over a read-only
// view of the graph) are distributed over up to workers goroutines
// (workers <= 0 means all cores). Candidates are merged in spur order, so
// the returned paths are identical to the serial enumeration regardless
// of parallelism. On cancellation the paths found so far are returned
// alongside ctx.Err().
//
// Each spur search borrows a pooled scratch: banned root nodes live in
// the scratch's node flags and banned edges in its CSR-indexed bitset
// (set and unset by index, so no per-spur map or slice is built).
func (g *Graph) YenKSPCtx(ctx context.Context, src, dst, k, workers int) ([]Path, error) {
	if k <= 0 {
		return nil, ctx.Err()
	}
	var paths []Path
	var err error
	telemetry.DoPhase(ctx, telemetry.PhaseYen, func(ctx context.Context) {
		paths, err = g.yenKSPCtx(ctx, src, dst, k, workers)
	})
	return paths, err
}

func (g *Graph) yenKSPCtx(ctx context.Context, src, dst, k, workers int) ([]Path, error) {
	tel := telemetry.FromContext(ctx)
	rounds := tel.Counter(telemetry.MYenRounds)
	spurSearches := tel.Counter(telemetry.MYenSpurSearches)
	runs := tel.Counter(telemetry.MSearchDijkstraRuns)
	relaxations := tel.Counter(telemetry.MSearchEdgesRelaxed)
	first, relaxed0, err := g.shortestPathStats(src, dst)
	runs.Inc()
	relaxations.Add(relaxed0)
	if err != nil {
		return nil, ctx.Err()
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		if err := ctx.Err(); err != nil {
			return paths, err
		}
		roundSpan := tel.StartSpan("plan/solve/yen/round")
		rounds.Inc()
		prevPath := paths[len(paths)-1].Nodes
		// Each node of the previous path (except the last) spawns a spur;
		// the searches are independent and only read the graph, so they
		// fan out across the pool. Results land in per-spur slots —
		// including the relaxation counts, so the telemetry totals are
		// identical at every pool size.
		spurs := make([]Path, len(prevPath)-1)
		spurOK := make([]bool, len(prevPath)-1)
		spurRelaxed := make([]int64, len(prevPath)-1)
		err := parallel.ForEach(ctx, len(prevPath)-1, workers, func(i int) {
			spurNode := prevPath[i]
			rootNodes := prevPath[:i+1]

			sc := g.getScratch(tel)
			defer putScratch(sc)

			// Ban edges used by already-found paths sharing this root,
			// and ban root nodes (except the spur) to keep paths simple.
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) {
					sc.banEdges(g, p.Nodes[i], p.Nodes[i+1])
				}
			}
			banned := sc.bannedNode
			for j := range banned {
				banned[j] = false
			}
			for _, n := range rootNodes[:len(rootNodes)-1] {
				banned[n] = true
			}

			spurRelaxed[i] = g.dijkstra(sc, spurNode, banned, sc.bannedEdge)
			spur, ok := g.assemble(spurNode, dst, sc.prev)
			if !ok {
				return
			}
			total := append(append([]int{}, rootNodes[:len(rootNodes)-1]...), spur.Nodes...)
			if cand, ok := g.weigh(total); ok {
				spurs[i], spurOK[i] = cand, true
			}
		})
		spurSearches.Add(int64(len(spurs)))
		runs.Add(int64(len(spurs)))
		var roundRelaxed int64
		for _, r := range spurRelaxed {
			roundRelaxed += r
		}
		relaxations.Add(roundRelaxed)
		roundSpan.End()
		if err != nil {
			return paths, err
		}
		// Deduplicate and collect in spur order — the same order the
		// serial loop appends in.
		for i := range spurs {
			if !spurOK[i] {
				continue
			}
			if cand := spurs[i]; !containsPath(paths, cand) && !containsPath(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].W < candidates[b].W })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

// YenUntil walks the k-shortest-path stream until a path satisfying the
// side budget appears, scanning at most maxPaths paths. It is exact on
// DAG instances whenever a feasible path exists within the scan horizon.
func (g *Graph) YenUntil(src, dst int, budget float64, maxPaths int) (Path, error) {
	return g.YenUntilCtx(context.Background(), src, dst, budget, maxPaths, 1)
}

// YenUntilCtx is YenUntil with cancellation and a worker pool (see
// YenKSPCtx for the concurrency contract).
func (g *Graph) YenUntilCtx(ctx context.Context, src, dst int, budget float64, maxPaths, workers int) (Path, error) {
	paths, err := g.YenKSPCtx(ctx, src, dst, maxPaths, workers)
	if err != nil {
		return Path{}, err
	}
	if len(paths) == 0 {
		return Path{}, ErrNoPath
	}
	for _, p := range paths {
		if p.Side <= budget {
			return p, nil
		}
	}
	return Path{}, ErrInfeasible
}

// weigh computes a Path's weights from an explicit node sequence,
// reporting false if any hop is missing.
func (g *Graph) weigh(nodes []int) (Path, bool) {
	p := Path{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		ei := g.edgeAt(nodes[i], nodes[i+1])
		if ei < 0 {
			return Path{}, false
		}
		p.W += g.w[ei]
		p.Side += g.side[ei]
	}
	return p, true
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(set []Path, p Path) bool {
	for _, o := range set {
		if len(o.Nodes) != len(p.Nodes) {
			continue
		}
		same := true
		for i := range o.Nodes {
			if o.Nodes[i] != p.Nodes[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
