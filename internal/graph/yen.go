package graph

import (
	"sort"
)

// YenKSP enumerates up to k loopless shortest paths from src to dst in
// non-decreasing W order (Yen's algorithm). It underlies the
// "keep taking the next-shortest path until one fits the budget" exact
// solver on the configuration DAG, and the k-shortest-path reference the
// paper cites for Algorithm 1.
func (g *Graph) YenKSP(src, dst, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, err := g.ShortestPath(src, dst)
	if err != nil {
		return nil
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		prevPath := paths[len(paths)-1].Nodes
		// Each node of the previous path (except the last) spawns a spur.
		for i := 0; i < len(prevPath)-1; i++ {
			spurNode := prevPath[i]
			rootNodes := prevPath[:i+1]

			// Ban edges used by already-found paths sharing this root,
			// and ban root nodes (except the spur) to keep paths simple.
			bannedEdge := make(map[[2]int]bool)
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) {
					bannedEdge[[2]int{p.Nodes[i], p.Nodes[i+1]}] = true
				}
			}
			bannedNode := make([]bool, g.n)
			for _, n := range rootNodes[:len(rootNodes)-1] {
				bannedNode[n] = true
			}

			_, prev := g.dijkstra(spurNode, bannedNode, bannedEdge)
			spur, ok := g.assemble(spurNode, dst, prev)
			if !ok {
				continue
			}
			total := append(append([]int{}, rootNodes[:len(rootNodes)-1]...), spur.Nodes...)
			cand, ok := g.weigh(total)
			if !ok {
				continue
			}
			if !containsPath(paths, cand) && !containsPath(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].W < candidates[b].W })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

// YenUntil walks the k-shortest-path stream (lazily, in batches) until a
// path satisfying the side budget appears, scanning at most maxPaths
// paths. It is exact on DAG instances whenever a feasible path exists
// within the scan horizon.
func (g *Graph) YenUntil(src, dst int, budget float64, maxPaths int) (Path, error) {
	paths := g.YenKSP(src, dst, maxPaths)
	if len(paths) == 0 {
		return Path{}, ErrNoPath
	}
	for _, p := range paths {
		if p.Side <= budget {
			return p, nil
		}
	}
	return Path{}, ErrInfeasible
}

// weigh computes a Path's weights from an explicit node sequence,
// reporting false if any hop is missing.
func (g *Graph) weigh(nodes []int) (Path, bool) {
	p := Path{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		idx := g.edgeAt(nodes[i], nodes[i+1])
		if idx < 0 {
			return Path{}, false
		}
		e := g.adj[nodes[i]][idx]
		p.W += e.W
		p.Side += e.Side
	}
	return p, true
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(set []Path, p Path) bool {
	for _, o := range set {
		if len(o.Nodes) != len(p.Nodes) {
			continue
		}
		same := true
		for i := range o.Nodes {
			if o.Nodes[i] != p.Nodes[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
