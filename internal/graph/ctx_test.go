package graph

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// layered builds a random layered DAG shaped like the configuration DAG:
// width nodes per layer, full bipartite edges between adjacent layers, with
// deterministic pseudo-random weights.
func layered(layers, width int, seed int64) (*Graph, int, int) {
	rng := rand.New(rand.NewSource(seed))
	n := layers*width + 2
	g := New(n)
	src, dst := n-2, n-1
	node := func(l, i int) int { return l*width + i }
	for i := 0; i < width; i++ {
		g.AddEdge(src, node(0, i), rng.Float64()+0.1, rng.Float64()+0.1)
		g.AddEdge(node(layers-1, i), dst, rng.Float64()+0.1, rng.Float64()+0.1)
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				g.AddEdge(node(l, i), node(l+1, j), rng.Float64()+0.1, rng.Float64()+0.1)
			}
		}
	}
	return g, src, dst
}

func TestCloneIsIndependent(t *testing.T) {
	g, src, dst := layered(4, 5, 1)
	clone := g.Clone()
	edgesBefore := g.NumEdges()

	// Algorithm1 destructively removes edges from its receiver.
	if _, err := clone.Algorithm1(src, dst, 2.0); err != nil && !errors.Is(err, ErrInfeasible) {
		t.Fatal(err)
	}
	if g.NumEdges() != edgesBefore {
		t.Fatalf("original lost edges through clone: %d -> %d", edgesBefore, g.NumEdges())
	}

	// The pristine original still solves identically to a fresh build.
	fresh, _, _ := layered(4, 5, 1)
	pg, errG := g.ShortestPath(src, dst)
	pf, errF := fresh.ShortestPath(src, dst)
	if (errG == nil) != (errF == nil) || (errG == nil && pg.W != pf.W) {
		t.Fatalf("original diverged from fresh build: %+v/%v vs %+v/%v", pg, errG, pf, errF)
	}
}

func TestCtxVariantsMatchLegacy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		legacy, src, dst := layered(5, 6, seed)
		fresh, _, _ := layered(5, 6, seed)
		budget := 3.0

		lp, lerr := legacy.ConstrainedShortestPath(src, dst, budget)
		cp, cerr := fresh.ConstrainedShortestPathCtx(context.Background(), src, dst, budget)
		if (lerr == nil) != (cerr == nil) {
			t.Fatalf("seed %d: CSP err %v vs %v", seed, lerr, cerr)
		}
		if lerr == nil && (lp.W != cp.W || !eqNodes(lp.Nodes, cp.Nodes)) {
			t.Fatalf("seed %d: CSP path %+v vs %+v", seed, lp, cp)
		}

		a1, _, _ := layered(5, 6, seed)
		a2, _, _ := layered(5, 6, seed)
		p1, e1 := a1.Algorithm1(src, dst, budget)
		p2, e2 := a2.Algorithm1Ctx(context.Background(), src, dst, budget)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("seed %d: Algorithm1 err %v vs %v", seed, e1, e2)
		}
		if e1 == nil && (p1.W != p2.W || !eqNodes(p1.Nodes, p2.Nodes)) {
			t.Fatalf("seed %d: Algorithm1 path %+v vs %+v", seed, p1, p2)
		}
	}
}

func TestParallelYenMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g, src, dst := layered(5, 6, seed)
		serial := g.YenKSP(src, dst, 12)
		for _, workers := range []int{2, 4, 8} {
			par, err := g.YenKSPCtx(context.Background(), src, dst, 12, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if len(par) != len(serial) {
				t.Fatalf("seed %d workers %d: %d paths, want %d", seed, workers, len(par), len(serial))
			}
			for i := range serial {
				if serial[i].W != par[i].W || !eqNodes(serial[i].Nodes, par[i].Nodes) {
					t.Fatalf("seed %d workers %d: path %d = %+v, want %+v",
						seed, workers, i, par[i], serial[i])
				}
			}
		}
	}
}

func TestSearchCancellation(t *testing.T) {
	g, src, dst := layered(6, 8, 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := g.Clone().Algorithm1Ctx(ctx, src, dst, 2.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Algorithm1Ctx err = %v, want context.Canceled", err)
	}
	if _, err := g.ConstrainedShortestPathCtx(ctx, src, dst, 2.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ConstrainedShortestPathCtx err = %v, want context.Canceled", err)
	}
	if _, err := g.YenKSPCtx(ctx, src, dst, 10, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("YenKSPCtx err = %v, want context.Canceled", err)
	}
	if _, err := g.YenUntilCtx(ctx, src, dst, 2.0, 50, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("YenUntilCtx err = %v, want context.Canceled", err)
	}
}
