package graph

import (
	"sync"

	"astra/internal/telemetry"
)

// bitset is a fixed-capacity bit vector indexed by int32. The zero-length
// bitset is valid and empty.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

func (b bitset) set(i int32)      { b[i>>6] |= 1 << (uint32(i) & 63) }
func (b bitset) unset(i int32)    { b[i>>6] &^= 1 << (uint32(i) & 63) }
func (b bitset) get(i int32) bool { return b[i>>6]&(1<<(uint32(i)&63)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// searchScratch is the reusable working memory of one search: Dijkstra's
// dist/prev/done arrays and frontier heap, Yen's spur-ban sets, and the
// constrained solver's label arena, per-node Pareto fronts and label
// heap. Scratches are pooled via sync.Pool and resized to the graph at
// hand, so Algorithm 1's destructive rounds and Yen's concurrent spur
// searches recycle buffers instead of reallocating per search.
type searchScratch struct {
	// Dijkstra state, indexed by node.
	dist []float64
	prev []int32
	done []bool
	heap heap4

	// Yen spur bans. bannedEdge is indexed by CSR edge index and kept
	// all-zero between uses: putScratch unsets exactly the bits recorded
	// in bannedIdx, so clearing costs O(bans), not O(edges).
	bannedNode []bool
	bannedEdge bitset
	bannedIdx  []int32

	// Constrained-search state: the label slab arena and the per-node
	// Pareto fronts (arena indices sorted by ascending w).
	labels []csLabel
	fronts [][]int32
	lheap  heap4
}

var scratchPool sync.Pool

// getScratch returns a scratch sized for g, reusing a pooled one when
// available. The telemetry registry may be nil; pool hits are surfaced
// through the plan/scratch-reuse counter.
func (g *Graph) getScratch(tel *telemetry.Registry) *searchScratch {
	g.freeze()
	sc, _ := scratchPool.Get().(*searchScratch)
	if sc == nil {
		sc = &searchScratch{}
	} else {
		tel.Counter(telemetry.MSearchScratchReuse).Inc()
	}
	sc.ensure(g.n, len(g.to))
	return sc
}

// putScratch returns a scratch to the pool, restoring the all-zero
// banned-edge invariant first.
func putScratch(sc *searchScratch) {
	for _, ei := range sc.bannedIdx {
		sc.bannedEdge.unset(ei)
	}
	sc.bannedIdx = sc.bannedIdx[:0]
	scratchPool.Put(sc)
}

// ensure sizes the buffers for a graph with n nodes and m CSR edges.
// Node-indexed buffers are resliced (growing only when capacity is
// short); the banned-edge bitset is replaced when too small, which is
// safe because it is all-zero between uses.
func (sc *searchScratch) ensure(n, m int) {
	if cap(sc.dist) >= n {
		sc.dist = sc.dist[:n]
		sc.prev = sc.prev[:n]
		sc.done = sc.done[:n]
		sc.bannedNode = sc.bannedNode[:n]
	} else {
		sc.dist = make([]float64, n)
		sc.prev = make([]int32, n)
		sc.done = make([]bool, n)
		sc.bannedNode = make([]bool, n)
	}
	if cap(sc.fronts) >= n {
		sc.fronts = sc.fronts[:n]
	} else {
		old := sc.fronts
		sc.fronts = make([][]int32, n)
		copy(sc.fronts, old)
	}
	if len(sc.bannedEdge)<<6 < m {
		sc.bannedEdge = newBitset(m)
	}
}

// banEdges flags every live parallel edge u->v in the scratch's
// banned-edge set, matching the (u,v)-keyed semantics of the map this
// bitset replaced.
func (sc *searchScratch) banEdges(g *Graph, u, v int) {
	for ei := g.off[u]; ei < g.off[u+1]; ei++ {
		if !g.removed.get(ei) && g.to[ei] == int32(v) && !sc.bannedEdge.get(ei) {
			sc.bannedEdge.set(ei)
			sc.bannedIdx = append(sc.bannedIdx, ei)
		}
	}
}
