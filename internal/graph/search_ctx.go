package graph

import (
	"container/heap"
	"context"

	"astra/internal/telemetry"
)

// ctxCheckEvery is how many label-queue pops the constrained search
// processes between context checks: frequent enough that cancellation is
// observed within microseconds, rare enough to stay off the profile.
const ctxCheckEvery = 1024

// Clone returns a deep copy of the graph: same nodes, same adjacency
// order, independent edge storage. It is how the planner reuses one
// memoized DAG build across searches that mutate the graph (Algorithm 1's
// destructive edge removal) without re-deriving every edge weight.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, m: g.m, adj: make([][]Edge, g.n)}
	for u, edges := range g.adj {
		if len(edges) == 0 {
			continue
		}
		c.adj[u] = append([]Edge(nil), edges...)
	}
	return c
}

// Algorithm1Ctx is Algorithm1 with cancellation: the context is checked
// before every Dijkstra round (the paper's heuristic can run one round per
// edge in the worst case), and ctx.Err() is returned if it fires. The
// receiver is still mutated by the rounds that did run.
//
// When the context carries a telemetry registry, each edge-removal round
// is recorded as a span and the round/removal/relaxation counts are
// accumulated; with no registry attached the loop is identical to the
// uninstrumented original.
func (g *Graph) Algorithm1Ctx(ctx context.Context, src, dst int, budget float64) (Path, error) {
	tel := telemetry.FromContext(ctx)
	rounds := tel.Counter(telemetry.MAlg1Rounds)
	removals := tel.Counter(telemetry.MAlg1EdgesRemoved)
	runs := tel.Counter(telemetry.MSearchDijkstraRuns)
	relaxations := tel.Counter(telemetry.MSearchEdgesRelaxed)
	maxIter := g.m + 1
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return Path{}, err
		}
		sp := tel.StartSpan("plan/solve/algorithm1/round")
		_, prev, relaxed := g.dijkstra(src, nil, nil)
		rounds.Inc()
		runs.Inc()
		relaxations.Add(relaxed)
		p, ok := g.assemble(src, dst, prev)
		if !ok {
			sp.End()
			return Path{}, ErrInfeasible
		}
		side := 0.0
		violated := false
		for i := 0; i+1 < len(p.Nodes); i++ {
			u, v := p.Nodes[i], p.Nodes[i+1]
			e := g.adj[u][g.edgeAt(u, v)]
			side += e.Side
			if side > budget {
				g.removeEdge(u, v)
				removals.Inc()
				violated = true
				break
			}
		}
		sp.End()
		if !violated {
			return p, nil
		}
	}
	return Path{}, ErrInfeasible
}

// ConstrainedShortestPathCtx is ConstrainedShortestPath with cancellation:
// the label-setting loop checks the context every ctxCheckEvery pops and
// returns ctx.Err() when it fires. The graph is not mutated.
func (g *Graph) ConstrainedShortestPathCtx(ctx context.Context, src, dst int, budget float64) (Path, error) {
	if err := ctx.Err(); err != nil {
		return Path{}, err
	}
	if src == dst {
		return Path{Nodes: []int{src}}, nil
	}
	tel := telemetry.FromContext(ctx)
	popped := tel.Counter(telemetry.MCSPLabelsPopped)
	relaxations := tel.Counter(telemetry.MSearchEdgesRelaxed)
	sets := make([][]*label, g.n)
	start := &label{node: src}
	sets[src] = []*label{start}
	q := &labelPQ{start}
	pops := 0
	var relaxed int64
	defer func() {
		popped.Add(int64(pops))
		relaxations.Add(relaxed)
	}()
	for q.Len() > 0 {
		if pops++; pops%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Path{}, err
			}
		}
		l := heap.Pop(q).(*label)
		if l.node == dst {
			return g.pathFromLabel(l), nil
		}
		// A label is stale if a later insertion evicted it from its
		// node's Pareto set.
		if !contains(sets[l.node], l) {
			continue
		}
		for _, e := range g.adj[l.node] {
			if e.removed {
				continue
			}
			nw, ns := l.w+e.W, l.side+e.Side
			if ns > budget {
				continue
			}
			if dominated(sets[e.To], nw, ns) {
				continue
			}
			nl := &label{node: e.To, w: nw, side: ns, prev: l}
			sets[e.To] = insertLabel(sets[e.To], nl)
			relaxed++
			heap.Push(q, nl)
		}
	}
	if err := ctx.Err(); err != nil {
		return Path{}, err
	}
	return Path{}, ErrInfeasible
}
