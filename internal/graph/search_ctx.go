package graph

import (
	"context"
	"math"

	"astra/internal/telemetry"
)

// ctxCheckEvery is how many label-queue pops the constrained search
// processes between context checks: frequent enough that cancellation is
// observed within microseconds, rare enough to stay off the profile.
const ctxCheckEvery = 1024

// Clone returns a copy of the graph that searches identically but may be
// mutated independently. The frozen CSR arrays are immutable and shared;
// only the removal bitset is copied, so cloning for Algorithm 1's
// destructive rounds costs O(m/64) instead of duplicating every
// adjacency list. It is how the planner reuses one memoized DAG build
// across searches that mutate the graph without re-deriving every edge
// weight.
func (g *Graph) Clone() *Graph {
	g.freeze()
	c := &Graph{
		n:       g.n,
		m:       g.m,
		off:     g.off,
		to:      g.to,
		w:       g.w,
		side:    g.side,
		removed: g.removed.clone(),
	}
	c.frozen.Store(true)
	return c
}

// Algorithm1Ctx is Algorithm1 with cancellation: the context is checked
// before every Dijkstra round (the paper's heuristic can run one round per
// edge in the worst case), and ctx.Err() is returned if it fires. The
// receiver is still mutated by the rounds that did run.
//
// One pooled scratch carries the dist/prev/heap buffers across every
// destructive round, so the per-round cost is the search itself, not
// allocation. When the context carries a telemetry registry, each
// edge-removal round is recorded as a span and the round/removal/
// relaxation counts are accumulated; with no registry attached the loop
// is identical to the uninstrumented original.
func (g *Graph) Algorithm1Ctx(ctx context.Context, src, dst int, budget float64) (Path, error) {
	var p Path
	var err error
	telemetry.DoPhase(ctx, telemetry.PhaseAlgorithm1, func(ctx context.Context) {
		p, err = g.algorithm1Ctx(ctx, src, dst, budget)
	})
	return p, err
}

func (g *Graph) algorithm1Ctx(ctx context.Context, src, dst int, budget float64) (Path, error) {
	tel := telemetry.FromContext(ctx)
	rounds := tel.Counter(telemetry.MAlg1Rounds)
	removals := tel.Counter(telemetry.MAlg1EdgesRemoved)
	runs := tel.Counter(telemetry.MSearchDijkstraRuns)
	relaxations := tel.Counter(telemetry.MSearchEdgesRelaxed)
	sc := g.getScratch(tel)
	defer putScratch(sc)
	maxIter := g.m + 1
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return Path{}, err
		}
		sp := tel.StartSpan("plan/solve/algorithm1/round")
		relaxed := g.dijkstra(sc, src, nil, nil)
		rounds.Inc()
		runs.Inc()
		relaxations.Add(relaxed)
		p, ok := g.assemble(src, dst, sc.prev)
		if !ok {
			sp.End()
			return Path{}, ErrInfeasible
		}
		side := 0.0
		violated := false
		for i := 0; i+1 < len(p.Nodes); i++ {
			ei := g.edgeAt(p.Nodes[i], p.Nodes[i+1])
			side += g.side[ei]
			if side > budget {
				g.removed.set(ei)
				g.m--
				removals.Inc()
				violated = true
				break
			}
		}
		sp.End()
		if !violated {
			return p, nil
		}
	}
	return Path{}, ErrInfeasible
}

// ConstrainedShortestPathCtx is ConstrainedShortestPath with cancellation:
// the label-setting loop checks the context every ctxCheckEvery pops and
// returns ctx.Err() when it fires. The graph is not mutated.
//
// Labels live in the scratch's slab arena and each node's Pareto front
// is a w-sorted list of arena indices, so dominance tests are two O(1)
// probes around a binary search and stale labels are skipped by an
// evicted flag instead of an identity scan. The loop itself lives in
// constrainedSearch (bounds.go), shared with the bound-aware variant.
func (g *Graph) ConstrainedShortestPathCtx(ctx context.Context, src, dst int, budget float64) (Path, error) {
	var p Path
	var err error
	telemetry.DoPhase(ctx, telemetry.PhaseCSP, func(ctx context.Context) {
		p, err = g.constrainedSearch(ctx, src, dst, budget, nil, math.Inf(1))
	})
	return p, err
}
