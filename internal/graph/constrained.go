package graph

import (
	"context"
)

// Algorithm1 is the paper's constrained-path heuristic, as written in
// Fig. "Algorithm 1": run Dijkstra on the objective weights, walk the
// resulting path accumulating the side weight, and when the accumulated
// side reaches the budget, delete the edge where the violation occurred
// and re-run on the reduced graph. It terminates when a path satisfies
// the budget or the graph disconnects.
//
// The receiver is mutated (edges are removed); callers that need the
// graph afterwards should rebuild or Clone it. Algorithm 1 is a
// heuristic: it can return a suboptimal path or miss a feasible one (see
// the solver ablation); ConstrainedShortestPath is the exact reference.
// Algorithm1Ctx is the cancellable variant.
func (g *Graph) Algorithm1(src, dst int, budget float64) (Path, error) {
	return g.Algorithm1Ctx(context.Background(), src, dst, budget)
}

// label is a Pareto-optimal partial path in the bicriteria search.
type label struct {
	node int
	w    float64
	side float64
	prev *label
}

type labelPQ []*label

func (q labelPQ) Len() int            { return len(q) }
func (q labelPQ) Less(i, j int) bool  { return q[i].w < q[j].w }
func (q labelPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *labelPQ) Push(x interface{}) { *q = append(*q, x.(*label)) }
func (q *labelPQ) Pop() interface{} {
	old := *q
	n := len(old)
	l := old[n-1]
	*q = old[:n-1]
	return l
}

// dominated reports whether (w, side) is weakly dominated by any label in
// set.
func dominated(set []*label, w, side float64) bool {
	for _, l := range set {
		if l.w <= w && l.side <= side {
			return true
		}
	}
	return false
}

// insertLabel adds a label to a node's Pareto set, evicting labels it
// dominates.
func insertLabel(set []*label, l *label) []*label {
	out := set[:0]
	for _, o := range set {
		if l.w <= o.w && l.side <= o.side {
			continue // evicted
		}
		out = append(out, o)
	}
	return append(out, l)
}

// ConstrainedShortestPath solves the weight-constrained shortest path
// problem exactly: the minimum-W path from src to dst whose accumulated
// Side does not exceed budget. It is a label-setting search with Pareto
// dominance pruning; with non-negative weights the first label settled at
// dst is optimal. The graph is not mutated, so concurrent searches may
// share one graph. ConstrainedShortestPathCtx is the cancellable variant.
func (g *Graph) ConstrainedShortestPath(src, dst int, budget float64) (Path, error) {
	return g.ConstrainedShortestPathCtx(context.Background(), src, dst, budget)
}

func contains(set []*label, l *label) bool {
	for _, o := range set {
		if o == l {
			return true
		}
	}
	return false
}

// pathFromLabel rebuilds the node sequence of a settled label.
func (g *Graph) pathFromLabel(l *label) Path {
	var rev []int
	for at := l; at != nil; at = at.prev {
		rev = append(rev, at.node)
	}
	nodes := make([]int, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes, W: l.w, Side: l.side}
}
