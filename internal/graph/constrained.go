package graph

import (
	"context"
)

// Algorithm1 is the paper's constrained-path heuristic, as written in
// Fig. "Algorithm 1": run Dijkstra on the objective weights, walk the
// resulting path accumulating the side weight, and when the accumulated
// side reaches the budget, delete the edge where the violation occurred
// and re-run on the reduced graph. It terminates when a path satisfies
// the budget or the graph disconnects.
//
// The receiver is mutated (edges are removed); callers that need the
// graph afterwards should rebuild or Clone it. Algorithm 1 is a
// heuristic: it can return a suboptimal path or miss a feasible one (see
// the solver ablation); ConstrainedShortestPath is the exact reference.
// Algorithm1Ctx is the cancellable variant.
func (g *Graph) Algorithm1(src, dst int, budget float64) (Path, error) {
	return g.Algorithm1Ctx(context.Background(), src, dst, budget)
}

// csLabel is a Pareto-optimal partial path in the bicriteria search,
// allocated from the per-search slab arena. prev is the arena index of
// the predecessor label (-1 for the root), so a label is a flat 32-byte
// record with no pointers for the collector to trace, and the whole
// arena recycles through the scratch pool.
type csLabel struct {
	w, side float64
	node    int32
	prev    int32
	evicted bool
}

// frontFloor returns the number of front entries with w < target. The
// front is sorted by strictly ascending w (sides strictly descending),
// so this is a plain binary search over arena indices.
func frontFloor(labels []csLabel, front []int32, target float64) int {
	lo, hi := 0, len(front)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if labels[front[mid]].w < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// frontDominated reports whether (w, side) is weakly dominated by the
// node's Pareto front, given lo = frontFloor(labels, front, w). With the
// front sorted by w and sides strictly descending, the only candidate
// dominators are the entry just below w and an entry with exactly equal
// w — two O(1) probes instead of a scan over an unordered set.
func frontDominated(labels []csLabel, front []int32, lo int, w, side float64) bool {
	if lo > 0 && labels[front[lo-1]].side <= side {
		return true
	}
	if lo < len(front) && labels[front[lo]].w == w && labels[front[lo]].side <= side {
		return true
	}
	return false
}

// frontInsert adds the (non-dominated) label nidx to a node's Pareto
// front at position lo, evicting the contiguous run of entries the new
// label weakly dominates (their w >= the new label's and, sides being
// sorted descending, exactly the prefix with side >= the new side).
// Evicted labels are flagged in the arena so the pop loop can skip them
// without scanning the front. Returns the updated front slice.
func frontInsert(labels []csLabel, front []int32, lo int, nidx int32, side float64) []int32 {
	t := lo
	for t < len(front) && labels[front[t]].side >= side {
		labels[front[t]].evicted = true
		t++
	}
	if t == lo {
		front = append(front, 0)
		copy(front[lo+1:], front[lo:len(front)-1])
		front[lo] = nidx
		return front
	}
	front[lo] = nidx
	copy(front[lo+1:], front[t:])
	return front[:len(front)-(t-lo)+1]
}

// ConstrainedShortestPath solves the weight-constrained shortest path
// problem exactly: the minimum-W path from src to dst whose accumulated
// Side does not exceed budget. It is a label-setting search with Pareto
// dominance pruning; with non-negative weights the first label settled at
// dst is optimal. The graph is not mutated, so concurrent searches may
// share one graph. ConstrainedShortestPathCtx is the cancellable variant.
func (g *Graph) ConstrainedShortestPath(src, dst int, budget float64) (Path, error) {
	return g.ConstrainedShortestPathCtx(context.Background(), src, dst, budget)
}

// pathFromArena rebuilds the node sequence of a settled label by walking
// prev indices through the arena.
func pathFromArena(labels []csLabel, idx int32) Path {
	l := labels[idx]
	hops := 0
	for at := idx; at >= 0; at = labels[at].prev {
		hops++
	}
	nodes := make([]int, hops)
	for at, i := idx, hops-1; at >= 0; at, i = labels[at].prev, i-1 {
		nodes[i] = int(labels[at].node)
	}
	return Path{Nodes: nodes, W: l.w, Side: l.side}
}
