package graph

import (
	"container/heap"
)

// Algorithm1 is the paper's constrained-path heuristic, as written in
// Fig. "Algorithm 1": run Dijkstra on the objective weights, walk the
// resulting path accumulating the side weight, and when the accumulated
// side reaches the budget, delete the edge where the violation occurred
// and re-run on the reduced graph. It terminates when a path satisfies
// the budget or the graph disconnects.
//
// The receiver is mutated (edges are removed); callers that need the
// graph afterwards should rebuild it. Algorithm 1 is a heuristic: it can
// return a suboptimal path or miss a feasible one (see the solver
// ablation); ConstrainedShortestPath is the exact reference.
func (g *Graph) Algorithm1(src, dst int, budget float64) (Path, error) {
	maxIter := g.m + 1
	for iter := 0; iter < maxIter; iter++ {
		_, prev := g.dijkstra(src, nil, nil)
		p, ok := g.assemble(src, dst, prev)
		if !ok {
			return Path{}, ErrInfeasible
		}
		// Walk the path, accumulating the side weight like the
		// pseudocode's cost counter.
		side := 0.0
		violated := false
		for i := 0; i+1 < len(p.Nodes); i++ {
			u, v := p.Nodes[i], p.Nodes[i+1]
			e := g.adj[u][g.edgeAt(u, v)]
			side += e.Side
			if side > budget {
				g.removeEdge(u, v)
				violated = true
				break
			}
		}
		if !violated {
			return p, nil
		}
	}
	return Path{}, ErrInfeasible
}

// label is a Pareto-optimal partial path in the bicriteria search.
type label struct {
	node int
	w    float64
	side float64
	prev *label
}

type labelPQ []*label

func (q labelPQ) Len() int            { return len(q) }
func (q labelPQ) Less(i, j int) bool  { return q[i].w < q[j].w }
func (q labelPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *labelPQ) Push(x interface{}) { *q = append(*q, x.(*label)) }
func (q *labelPQ) Pop() interface{} {
	old := *q
	n := len(old)
	l := old[n-1]
	*q = old[:n-1]
	return l
}

// dominated reports whether (w, side) is weakly dominated by any label in
// set.
func dominated(set []*label, w, side float64) bool {
	for _, l := range set {
		if l.w <= w && l.side <= side {
			return true
		}
	}
	return false
}

// insertLabel adds a label to a node's Pareto set, evicting labels it
// dominates.
func insertLabel(set []*label, l *label) []*label {
	out := set[:0]
	for _, o := range set {
		if l.w <= o.w && l.side <= o.side {
			continue // evicted
		}
		out = append(out, o)
	}
	return append(out, l)
}

// ConstrainedShortestPath solves the weight-constrained shortest path
// problem exactly: the minimum-W path from src to dst whose accumulated
// Side does not exceed budget. It is a label-setting search with Pareto
// dominance pruning; with non-negative weights the first label settled at
// dst is optimal.
func (g *Graph) ConstrainedShortestPath(src, dst int, budget float64) (Path, error) {
	if src == dst {
		return Path{Nodes: []int{src}}, nil
	}
	sets := make([][]*label, g.n)
	start := &label{node: src}
	sets[src] = []*label{start}
	q := &labelPQ{start}
	for q.Len() > 0 {
		l := heap.Pop(q).(*label)
		if l.node == dst {
			return g.pathFromLabel(l), nil
		}
		// A label is stale if a later insertion evicted it from its
		// node's Pareto set.
		if !contains(sets[l.node], l) {
			continue
		}
		for _, e := range g.adj[l.node] {
			if e.removed {
				continue
			}
			nw, ns := l.w+e.W, l.side+e.Side
			if ns > budget {
				continue
			}
			if dominated(sets[e.To], nw, ns) {
				continue
			}
			nl := &label{node: e.To, w: nw, side: ns, prev: l}
			sets[e.To] = insertLabel(sets[e.To], nl)
			heap.Push(q, nl)
		}
	}
	return Path{}, ErrInfeasible
}

func contains(set []*label, l *label) bool {
	for _, o := range set {
		if o == l {
			return true
		}
	}
	return false
}

// pathFromLabel rebuilds the node sequence of a settled label.
func (g *Graph) pathFromLabel(l *label) Path {
	var rev []int
	for at := l; at != nil; at = at.prev {
		rev = append(rev, at.node)
	}
	nodes := make([]int, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes, W: l.w, Side: l.side}
}
