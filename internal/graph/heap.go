package graph

// heap4 is a non-interface 4-ary index min-heap: parallel arrays of
// payload (a node id or a label-arena index) and float64 priority. It
// replaces container/heap in the hot search loops — pushing through the
// heap.Interface boxes every item into an interface value, one heap
// allocation per relaxation, which dominated the planner's allocation
// profile. The 4-ary shape halves the tree depth of a binary heap and
// keeps the child scan inside one cache line.
type heap4 struct {
	item []int32
	pri  []float64
}

func (h *heap4) len() int { return len(h.item) }

func (h *heap4) reset() {
	h.item = h.item[:0]
	h.pri = h.pri[:0]
}

// push inserts an item with the given priority.
func (h *heap4) push(x int32, p float64) {
	h.item = append(h.item, x)
	h.pri = append(h.pri, p)
	i := len(h.item) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if h.pri[parent] <= p {
			break
		}
		h.item[i] = h.item[parent]
		h.pri[i] = h.pri[parent]
		i = parent
	}
	h.item[i] = x
	h.pri[i] = p
}

// pop removes and returns the minimum-priority item.
func (h *heap4) pop() (int32, float64) {
	top, tp := h.item[0], h.pri[0]
	last := len(h.item) - 1
	x, p := h.item[last], h.pri[last]
	h.item = h.item[:last]
	h.pri = h.pri[:last]
	if last > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= last {
				break
			}
			end := c + 4
			if end > last {
				end = last
			}
			best := c
			for j := c + 1; j < end; j++ {
				if h.pri[j] < h.pri[best] {
					best = j
				}
			}
			if p <= h.pri[best] {
				break
			}
			h.item[i] = h.item[best]
			h.pri[i] = h.pri[best]
			i = best
		}
		h.item[i] = x
		h.pri[i] = p
	}
	return top, tp
}
