// Package graph provides the shortest-path machinery behind Astra's
// optimizer (Sec. IV of the paper): plain Dijkstra, Yen's k-shortest
// simple paths, the paper's Algorithm 1 (Dijkstra with iterative removal
// of constraint-violating edges), and an exact label-setting solver for
// the weight-constrained shortest path problem.
//
// Every edge carries two values: W, the objective weight minimized by the
// search, and Side, the constrained resource accumulated along the path.
// For the paper's performance optimization (Eq. 16) W is phase time and
// Side is phase cost; for cost minimization (Eq. 20) the roles swap.
package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Errors returned by the solvers.
var (
	ErrNoPath     = errors.New("graph: no path")
	ErrInfeasible = errors.New("graph: no path satisfies the side constraint")
)

// Edge is a directed edge with an objective weight and a side weight.
type Edge struct {
	To   int
	W    float64
	Side float64
	// removed supports Algorithm 1's destructive edge deletion without
	// reallocating adjacency lists.
	removed bool
}

// Graph is a directed graph over nodes 0..N-1.
type Graph struct {
	n   int
	adj [][]Edge
	m   int
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n <= 0 {
		panic("graph: node count must be positive")
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges reports the live (non-removed) edge count.
func (g *Graph) NumEdges() int { return g.m }

// EdgesFrom returns a copy of u's live outgoing edges in insertion order.
// It lets callers compare graphs structurally (e.g. a parallel build
// against a serial one) without touching the adjacency storage.
func (g *Graph) EdgesFrom(u int) []Edge {
	if u < 0 || u >= g.n {
		return nil
	}
	var out []Edge
	for _, e := range g.adj[u] {
		if !e.removed {
			out = append(out, e)
		}
	}
	return out
}

// AddEdge inserts a directed edge. Negative objective weights are
// rejected: every solver here assumes non-negativity.
func (g *Graph) AddEdge(u, v int, w, side float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range", u, v))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid weight %v on edge (%d,%d)", w, u, v))
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, W: w, Side: side})
	g.m++
}

// Path is a walk through the graph with its accumulated weights.
type Path struct {
	Nodes []int
	W     float64
	Side  float64
}

// edgeAt returns the index of the live edge u->v, or -1.
func (g *Graph) edgeAt(u, v int) int {
	for i := range g.adj[u] {
		if !g.adj[u][i].removed && g.adj[u][i].To == v {
			return i
		}
	}
	return -1
}

// removeEdge marks the edge u->v removed, reporting whether it existed.
func (g *Graph) removeEdge(u, v int) bool {
	if i := g.edgeAt(u, v); i >= 0 {
		g.adj[u][i].removed = true
		g.m--
		return true
	}
	return false
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstra computes shortest distances from src, honoring banned nodes
// and banned edges (both may be nil). It returns dist and predecessor
// arrays plus the number of successful edge relaxations — the search
// engine's basic unit of work, surfaced through telemetry.
func (g *Graph) dijkstra(src int, bannedNode []bool, bannedEdge map[[2]int]bool) ([]float64, []int, int64) {
	dist := make([]float64, g.n)
	prev := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	if bannedNode != nil && bannedNode[src] {
		return dist, prev, 0
	}
	var relaxed int64
	dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			if e.removed {
				continue
			}
			v := e.To
			if bannedNode != nil && bannedNode[v] {
				continue
			}
			if bannedEdge != nil && bannedEdge[[2]int{u, v}] {
				continue
			}
			if nd := dist[u] + e.W; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				relaxed++
				heap.Push(q, pqItem{node: v, dist: nd})
			}
		}
	}
	return dist, prev, relaxed
}

// assemble reconstructs the path to dst from a predecessor array,
// accumulating both weights.
func (g *Graph) assemble(src, dst int, prev []int) (Path, bool) {
	if src == dst {
		return Path{Nodes: []int{src}}, true
	}
	var rev []int
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	if len(rev) == 0 || rev[len(rev)-1] != src {
		return Path{}, false
	}
	nodes := make([]int, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	p := Path{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		e := g.adj[nodes[i]][g.edgeAt(nodes[i], nodes[i+1])]
		p.W += e.W
		p.Side += e.Side
	}
	return p, true
}

// ShortestPath returns the minimum-W path from src to dst.
func (g *Graph) ShortestPath(src, dst int) (Path, error) {
	p, _, err := g.shortestPathStats(src, dst)
	return p, err
}

// shortestPathStats is ShortestPath plus the relaxation count, for
// instrumented callers.
func (g *Graph) shortestPathStats(src, dst int) (Path, int64, error) {
	_, prev, relaxed := g.dijkstra(src, nil, nil)
	p, ok := g.assemble(src, dst, prev)
	if !ok {
		return Path{}, relaxed, ErrNoPath
	}
	return p, relaxed, nil
}
