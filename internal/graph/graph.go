// Package graph provides the shortest-path machinery behind Astra's
// optimizer (Sec. IV of the paper): plain Dijkstra, Yen's k-shortest
// simple paths, the paper's Algorithm 1 (Dijkstra with iterative removal
// of constraint-violating edges), and an exact label-setting solver for
// the weight-constrained shortest path problem.
//
// Every edge carries two values: W, the objective weight minimized by the
// search, and Side, the constrained resource accumulated along the path.
// For the paper's performance optimization (Eq. 16) W is phase time and
// Side is phase cost; for cost minimization (Eq. 20) the roles swap.
//
// Storage is compressed sparse row (CSR): AddEdge appends to a flat
// arrival-order log, and the first search freezes the log into off/to/
// w/side arrays so every solver walks contiguous memory. Removal
// (Algorithm 1) flips a bit in a per-graph bitset instead of mutating
// the arrays, which also makes Clone O(m/64): clones share the frozen
// arrays and copy only the bitset. See DESIGN.md, "Memory layout of the
// search core".
package graph

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"astra/internal/telemetry"
)

// Errors returned by the solvers.
var (
	ErrNoPath     = errors.New("graph: no path")
	ErrInfeasible = errors.New("graph: no path satisfies the side constraint")
)

// Edge is a directed edge with an objective weight and a side weight.
type Edge struct {
	To   int
	W    float64
	Side float64
}

// Graph is a directed graph over nodes 0..N-1.
//
// Mutating methods (AddEdge, removeEdge, the destructive Algorithm 1)
// require external synchronization; read-only searches may run
// concurrently on one graph.
type Graph struct {
	n int
	m int // live (non-removed) edge count

	// Builder log in arrival order; dropped once frozen into CSR form,
	// reconstructed (live edges only) if AddEdge is called afterwards.
	lu, lv []int32
	lw, ls []float64
	deg    []int32 // per-node log edge counts, for the counted freeze pass

	// Frozen CSR: node u's outgoing edges are indices off[u]..off[u+1]
	// of the parallel to/w/side arrays, in per-node insertion order.
	// The arrays are immutable once built and may be shared by clones;
	// removed is the per-graph deletion bitset over edge indices.
	off     []int32
	to      []int32
	w, side []float64
	removed bitset

	frozen atomic.Bool
	mu     sync.Mutex // serializes the lazy freeze among concurrent readers
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n <= 0 {
		panic("graph: node count must be positive")
	}
	if int64(n) > math.MaxInt32 {
		panic("graph: node count exceeds int32 range")
	}
	return &Graph{n: n}
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges reports the live (non-removed) edge count.
func (g *Graph) NumEdges() int { return g.m }

// AddEdge inserts a directed edge. Negative objective weights are
// rejected: every solver here assumes non-negativity.
func (g *Graph) AddEdge(u, v int, w, side float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range", u, v))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid weight %v on edge (%d,%d)", w, u, v))
	}
	if g.frozen.Load() {
		g.thaw()
	}
	if g.deg == nil {
		g.deg = make([]int32, g.n)
	}
	g.lu = append(g.lu, int32(u))
	g.lv = append(g.lv, int32(v))
	g.lw = append(g.lw, w)
	g.ls = append(g.ls, side)
	g.deg[u]++
	g.m++
}

// Reserve pre-sizes the builder log for at least m additional edges, so
// a caller that knows its edge count up front (the DAG assembler) pays
// one allocation instead of the append doubling cadence. Calling it on a
// frozen graph or with a non-positive m is a no-op.
func (g *Graph) Reserve(m int) {
	if m <= 0 || g.frozen.Load() {
		return
	}
	grow := func(s []float64) []float64 {
		if cap(s)-len(s) >= m {
			return s
		}
		ns := make([]float64, len(s), len(s)+m)
		copy(ns, s)
		return ns
	}
	growI := func(s []int32) []int32 {
		if cap(s)-len(s) >= m {
			return s
		}
		ns := make([]int32, len(s), len(s)+m)
		copy(ns, s)
		return ns
	}
	g.lu, g.lv = growI(g.lu), growI(g.lv)
	g.lw, g.ls = grow(g.lw), grow(g.ls)
	if g.deg == nil {
		g.deg = make([]int32, g.n)
	}
}

// Freeze forces the lazy CSR build now. Searches freeze on first use
// anyway; callers that publish a graph to many goroutines (the template
// cache) freeze eagerly so readers never contend on the build lock.
func (g *Graph) Freeze() { g.freeze() }

// freeze builds the CSR arrays from the log in one counted pass and
// drops the log. It is idempotent and safe to call from concurrent
// readers: the first caller builds, the rest observe the published
// arrays through the atomic flag.
func (g *Graph) freeze() {
	if g.frozen.Load() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.frozen.Load() {
		return
	}
	off := make([]int32, g.n+1)
	for u := 0; u < g.n && g.deg != nil; u++ {
		off[u+1] = off[u] + g.deg[u]
	}
	total := len(g.lu)
	to := make([]int32, total)
	w := make([]float64, total)
	side := make([]float64, total)
	pos := make([]int32, g.n)
	copy(pos, off[:g.n])
	for i, u := range g.lu {
		p := pos[u]
		pos[u] = p + 1
		to[p] = g.lv[i]
		w[p] = g.lw[i]
		side[p] = g.ls[i]
	}
	g.off, g.to, g.w, g.side = off, to, w, side
	g.removed = newBitset(total)
	g.lu, g.lv, g.lw, g.ls, g.deg = nil, nil, nil, nil, nil
	g.frozen.Store(true)
}

// thaw reconstructs the builder log from the frozen CSR (live edges
// only, in CSR order) so AddEdge can extend a graph that has already
// been searched. Removed edges are dropped for good. Callers must hold
// exclusive access (AddEdge is a mutating method).
func (g *Graph) thaw() {
	g.lu = make([]int32, 0, g.m)
	g.lv = make([]int32, 0, g.m)
	g.lw = make([]float64, 0, g.m)
	g.ls = make([]float64, 0, g.m)
	g.deg = make([]int32, g.n)
	for u := 0; u < g.n; u++ {
		for ei := g.off[u]; ei < g.off[u+1]; ei++ {
			if g.removed.get(ei) {
				continue
			}
			g.lu = append(g.lu, int32(u))
			g.lv = append(g.lv, g.to[ei])
			g.lw = append(g.lw, g.w[ei])
			g.ls = append(g.ls, g.side[ei])
			g.deg[u]++
		}
	}
	g.off, g.to, g.w, g.side, g.removed = nil, nil, nil, nil, nil
	g.frozen.Store(false)
}

// EdgesFrom returns a copy of u's live outgoing edges in insertion order.
// It lets callers compare graphs structurally (e.g. a parallel build
// against a serial one) without touching the adjacency storage.
func (g *Graph) EdgesFrom(u int) []Edge {
	if u < 0 || u >= g.n {
		return nil
	}
	g.freeze()
	live := 0
	for ei := g.off[u]; ei < g.off[u+1]; ei++ {
		if !g.removed.get(ei) {
			live++
		}
	}
	if live == 0 {
		return nil
	}
	out := make([]Edge, 0, live)
	for ei := g.off[u]; ei < g.off[u+1]; ei++ {
		if !g.removed.get(ei) {
			out = append(out, Edge{To: int(g.to[ei]), W: g.w[ei], Side: g.side[ei]})
		}
	}
	return out
}

// Path is a walk through the graph with its accumulated weights.
type Path struct {
	Nodes []int
	W     float64
	Side  float64
}

// edgeAt returns the CSR index of the first live edge u->v, or -1.
func (g *Graph) edgeAt(u, v int) int32 {
	g.freeze()
	for ei := g.off[u]; ei < g.off[u+1]; ei++ {
		if !g.removed.get(ei) && g.to[ei] == int32(v) {
			return ei
		}
	}
	return -1
}

// removeEdge marks the edge u->v removed, reporting whether it existed.
func (g *Graph) removeEdge(u, v int) bool {
	if ei := g.edgeAt(u, v); ei >= 0 {
		g.removed.set(ei)
		g.m--
		return true
	}
	return false
}

// dijkstra computes shortest distances from src into the scratch's
// dist/prev buffers, honoring banned nodes and banned edges (both may be
// nil). It returns the number of successful edge relaxations — the
// search engine's basic unit of work, surfaced through telemetry.
func (g *Graph) dijkstra(sc *searchScratch, src int, bannedNode []bool, bannedEdge bitset) int64 {
	g.freeze()
	dist, prev, done := sc.dist, sc.prev, sc.done
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	for i := range prev {
		prev[i] = -1
	}
	for i := range done {
		done[i] = false
	}
	if bannedNode != nil && bannedNode[src] {
		return 0
	}
	off, to, ew, removed := g.off, g.to, g.w, g.removed
	var relaxed int64
	dist[src] = 0
	h := &sc.heap
	h.reset()
	h.push(int32(src), 0)
	for h.len() > 0 {
		u, _ := h.pop()
		if done[u] {
			continue
		}
		done[u] = true
		du := dist[u]
		for ei := off[u]; ei < off[u+1]; ei++ {
			if removed.get(ei) {
				continue
			}
			v := to[ei]
			if bannedNode != nil && bannedNode[v] {
				continue
			}
			if bannedEdge != nil && bannedEdge.get(ei) {
				continue
			}
			if nd := du + ew[ei]; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				relaxed++
				h.push(v, nd)
			}
		}
	}
	return relaxed
}

// assemble reconstructs the path to dst from a predecessor array,
// accumulating both weights. The returned node slice is freshly
// allocated (it outlives the scratch the prev array came from).
func (g *Graph) assemble(src, dst int, prev []int32) (Path, bool) {
	if src == dst {
		return Path{Nodes: []int{src}}, true
	}
	hops := 1
	for at := dst; at != src; hops++ {
		p := prev[at]
		if p < 0 {
			return Path{}, false
		}
		at = int(p)
	}
	nodes := make([]int, hops)
	for at, i := dst, hops-1; ; i-- {
		nodes[i] = at
		if at == src {
			break
		}
		at = int(prev[at])
	}
	p := Path{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		ei := g.edgeAt(nodes[i], nodes[i+1])
		p.W += g.w[ei]
		p.Side += g.side[ei]
	}
	return p, true
}

// ShortestPath returns the minimum-W path from src to dst.
func (g *Graph) ShortestPath(src, dst int) (Path, error) {
	var p Path
	var err error
	telemetry.DoPhase(context.Background(), telemetry.PhaseDijkstra, func(context.Context) {
		p, _, err = g.shortestPathStats(src, dst)
	})
	return p, err
}

// shortestPathStats is ShortestPath plus the relaxation count, for
// instrumented callers.
func (g *Graph) shortestPathStats(src, dst int) (Path, int64, error) {
	sc := g.getScratch(nil)
	defer putScratch(sc)
	relaxed := g.dijkstra(sc, src, nil, nil)
	p, ok := g.assemble(src, dst, sc.prev)
	if !ok {
		return Path{}, relaxed, ErrNoPath
	}
	return p, relaxed, nil
}
