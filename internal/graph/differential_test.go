package graph

import (
	"container/heap"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// This file pins the CSR/arena search core to the pre-refactor solvers:
// refGraph below is a frozen copy of the old adjacency-list
// implementation (container/heap queues, pointer labels, identity-scan
// staleness checks), and the property tests assert that every solver
// returns byte-identical paths on random layered DAGs. Random float
// weights make exact W ties measure-zero, so tie-breaking differences
// between the old binary heap and the new 4-ary heap cannot mask a
// real divergence.

type refEdge struct {
	to      int
	w, side float64
	removed bool
}

type refGraph struct {
	n   int
	adj [][]refEdge
}

func newRefGraph(n int) *refGraph { return &refGraph{n: n, adj: make([][]refEdge, n)} }

func (g *refGraph) addEdge(u, v int, w, side float64) {
	g.adj[u] = append(g.adj[u], refEdge{to: v, w: w, side: side})
}

func (g *refGraph) clone() *refGraph {
	c := &refGraph{n: g.n, adj: make([][]refEdge, g.n)}
	for u, edges := range g.adj {
		c.adj[u] = append([]refEdge(nil), edges...)
	}
	return c
}

func (g *refGraph) edgeAt(u, v int) int {
	for i := range g.adj[u] {
		if !g.adj[u][i].removed && g.adj[u][i].to == v {
			return i
		}
	}
	return -1
}

type refPQItem struct {
	node int
	dist float64
}

type refPQ []refPQItem

func (q refPQ) Len() int           { return len(q) }
func (q refPQ) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q refPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *refPQ) Push(x any)        { *q = append(*q, x.(refPQItem)) }
func (q *refPQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func (g *refGraph) dijkstra(src int, bannedNode []bool, bannedEdge map[[2]int]bool) []int {
	dist := make([]float64, g.n)
	prev := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	if bannedNode != nil && bannedNode[src] {
		return prev
	}
	dist[src] = 0
	q := &refPQ{{node: src}}
	for q.Len() > 0 {
		u := heap.Pop(q).(refPQItem).node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			if e.removed || (bannedNode != nil && bannedNode[e.to]) ||
				(bannedEdge != nil && bannedEdge[[2]int{u, e.to}]) {
				continue
			}
			if nd := dist[u] + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = u
				heap.Push(q, refPQItem{node: e.to, dist: nd})
			}
		}
	}
	return prev
}

func (g *refGraph) assemble(src, dst int, prev []int) (Path, bool) {
	if src == dst {
		return Path{Nodes: []int{src}}, true
	}
	var rev []int
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	if len(rev) == 0 || rev[len(rev)-1] != src {
		return Path{}, false
	}
	nodes := make([]int, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	p := Path{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		e := g.adj[nodes[i]][g.edgeAt(nodes[i], nodes[i+1])]
		p.W += e.w
		p.Side += e.side
	}
	return p, true
}

func (g *refGraph) shortestPath(src, dst int) (Path, bool) {
	return g.assemble(src, dst, g.dijkstra(src, nil, nil))
}

func (g *refGraph) algorithm1(src, dst int, budget float64) (Path, bool) {
	m := 0
	for _, edges := range g.adj {
		m += len(edges)
	}
	for iter := 0; iter <= m; iter++ {
		p, ok := g.assemble(src, dst, g.dijkstra(src, nil, nil))
		if !ok {
			return Path{}, false
		}
		side := 0.0
		violated := false
		for i := 0; i+1 < len(p.Nodes); i++ {
			ei := g.edgeAt(p.Nodes[i], p.Nodes[i+1])
			side += g.adj[p.Nodes[i]][ei].side
			if side > budget {
				g.adj[p.Nodes[i]][ei].removed = true
				violated = true
				break
			}
		}
		if !violated {
			return p, true
		}
	}
	return Path{}, false
}

type refLabel struct {
	node    int
	w, side float64
	prev    *refLabel
}

type refLabelPQ []*refLabel

func (q refLabelPQ) Len() int           { return len(q) }
func (q refLabelPQ) Less(i, j int) bool { return q[i].w < q[j].w }
func (q refLabelPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *refLabelPQ) Push(x any)        { *q = append(*q, x.(*refLabel)) }
func (q *refLabelPQ) Pop() any {
	old := *q
	n := len(old)
	l := old[n-1]
	*q = old[:n-1]
	return l
}

func (g *refGraph) constrained(src, dst int, budget float64) (Path, bool) {
	if src == dst {
		return Path{Nodes: []int{src}}, true
	}
	sets := make([][]*refLabel, g.n)
	start := &refLabel{node: src}
	sets[src] = []*refLabel{start}
	q := &refLabelPQ{start}
	for q.Len() > 0 {
		l := heap.Pop(q).(*refLabel)
		if l.node == dst {
			var rev []int
			for at := l; at != nil; at = at.prev {
				rev = append(rev, at.node)
			}
			nodes := make([]int, len(rev))
			for i := range rev {
				nodes[i] = rev[len(rev)-1-i]
			}
			return Path{Nodes: nodes, W: l.w, Side: l.side}, true
		}
		stale := true
		for _, o := range sets[l.node] {
			if o == l {
				stale = false
				break
			}
		}
		if stale {
			continue
		}
		for _, e := range g.adj[l.node] {
			if e.removed {
				continue
			}
			nw, ns := l.w+e.w, l.side+e.side
			if ns > budget {
				continue
			}
			dominated := false
			for _, o := range sets[e.to] {
				if o.w <= nw && o.side <= ns {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			nl := &refLabel{node: e.to, w: nw, side: ns, prev: l}
			kept := sets[e.to][:0]
			for _, o := range sets[e.to] {
				if nl.w <= o.w && nl.side <= o.side {
					continue
				}
				kept = append(kept, o)
			}
			sets[e.to] = append(kept, nl)
			heap.Push(q, nl)
		}
	}
	return Path{}, false
}

func (g *refGraph) yenKSP(src, dst, k int) []Path {
	first, ok := g.shortestPath(src, dst)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prevPath := paths[len(paths)-1].Nodes
		for i := 0; i+1 < len(prevPath); i++ {
			spurNode := prevPath[i]
			rootNodes := prevPath[:i+1]
			bannedEdge := make(map[[2]int]bool)
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) {
					bannedEdge[[2]int{p.Nodes[i], p.Nodes[i+1]}] = true
				}
			}
			bannedNode := make([]bool, g.n)
			for _, n := range rootNodes[:len(rootNodes)-1] {
				bannedNode[n] = true
			}
			prev := g.dijkstra(spurNode, bannedNode, bannedEdge)
			spur, ok := g.assemble(spurNode, dst, prev)
			if !ok {
				continue
			}
			total := append(append([]int{}, rootNodes[:len(rootNodes)-1]...), spur.Nodes...)
			cand := Path{Nodes: total}
			miss := false
			for j := 0; j+1 < len(total); j++ {
				ei := g.edgeAt(total[j], total[j+1])
				if ei < 0 {
					miss = true
					break
				}
				cand.W += g.adj[total[j]][ei].w
				cand.Side += g.adj[total[j]][ei].side
			}
			if miss || containsPath(paths, cand) || containsPath(candidates, cand) {
				continue
			}
			candidates = append(candidates, cand)
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].W < candidates[b].W })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

// randomPair builds the same random layered DAG as both a CSR Graph and
// a reference graph: `layers` layers of `width` nodes, full bipartite
// edges between adjacent layers with random weights, plus a few random
// skip edges.
func randomPair(rng *rand.Rand, layers, width int) (*Graph, *refGraph, int, int) {
	n := 2 + layers*width
	src, dst := 0, 1
	g := New(n)
	r := newRefGraph(n)
	add := func(u, v int, w, side float64) {
		g.AddEdge(u, v, w, side)
		r.addEdge(u, v, w, side)
	}
	node := func(l, i int) int { return 2 + l*width + i }
	for i := 0; i < width; i++ {
		add(src, node(0, i), rng.Float64()*10, rng.Float64()*10)
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				add(node(l, i), node(l+1, j), rng.Float64()*10, rng.Float64()*10)
			}
		}
	}
	for i := 0; i < width; i++ {
		add(node(layers-1, i), dst, rng.Float64()*10, rng.Float64()*10)
	}
	// Skip edges exercise non-uniform degrees and parallel-edge handling.
	for s := 0; s < layers; s++ {
		l := rng.Intn(layers - 1)
		add(node(l, rng.Intn(width)), node(l+1, rng.Intn(width)), rng.Float64()*10, rng.Float64()*10)
	}
	return g, r, src, dst
}

func samePath(t *testing.T, name string, got Path, gotOK bool, want Path, wantOK bool) {
	t.Helper()
	if gotOK != wantOK {
		t.Fatalf("%s: feasibility mismatch: got ok=%v, reference ok=%v", name, gotOK, wantOK)
	}
	if !gotOK {
		return
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) || got.W != want.W || got.Side != want.Side {
		t.Fatalf("%s: path mismatch:\n  got  %v W=%v Side=%v\n  want %v W=%v Side=%v",
			name, got.Nodes, got.W, got.Side, want.Nodes, want.W, want.Side)
	}
}

func TestDifferentialAgainstReferenceSolvers(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		layers := 2 + rng.Intn(3)
		width := 2 + rng.Intn(3)
		g, ref, src, dst := randomPair(rng, layers, width)
		budget := rng.Float64() * float64(layers+1) * 10

		sp, err := g.ShortestPath(src, dst)
		rp, rok := ref.shortestPath(src, dst)
		samePath(t, "dijkstra", sp, err == nil, rp, rok)

		cp, err := g.ConstrainedShortestPath(src, dst, budget)
		rcp, rok := ref.constrained(src, dst, budget)
		samePath(t, "csp", cp, err == nil, rcp, rok)

		ap, err := g.Clone().Algorithm1(src, dst, budget)
		rap, rok := ref.clone().algorithm1(src, dst, budget)
		samePath(t, "algorithm1", ap, err == nil, rap, rok)

		k := 1 + rng.Intn(6)
		ys := g.YenKSP(src, dst, k)
		rys := ref.yenKSP(src, dst, k)
		if len(ys) != len(rys) {
			t.Fatalf("yen: got %d paths, reference %d", len(ys), len(rys))
		}
		for i := range ys {
			samePath(t, "yen", ys[i], true, rys[i], true)
		}
	}
}

// TestConcurrentConstrainedSharedGraph hammers one shared — initially
// unfrozen — graph with concurrent constrained searches. Run under
// -race it checks the lazy CSR freeze and the scratch pool; every
// goroutine must also agree on the result.
func TestConcurrentConstrainedSharedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, ref, src, dst := randomPair(rng, 4, 4)
	const budget = 35.0
	want, wantOK := ref.constrained(src, dst, budget)

	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p, err := g.ConstrainedShortestPath(src, dst, budget)
				if (err == nil) != wantOK {
					errs <- "feasibility changed across concurrent runs"
					return
				}
				if err == nil && (!reflect.DeepEqual(p.Nodes, want.Nodes) || p.W != want.W || p.Side != want.Side) {
					errs <- "path changed across concurrent runs"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
