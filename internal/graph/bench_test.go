package graph

import (
	"math/rand"
	"testing"
)

// optimizerShapedGraph builds a graph with the Fig. 5 DAG's proportions
// at paper scale (N = 202 objects, pruned tier set).
func optimizerShapedGraph() (*Graph, int, int) {
	rng := rand.New(rand.NewSource(1))
	const (
		L = 27  // pruned tiers (128..1792)
		N = 202 // objects
	)
	// Columns: src, i(L), kM(N), kR(N), (kR,a)(N*L), s(L), dst.
	n := 2 + L + N + N + N*L + L
	g := New(n)
	src, dst := 0, 1
	iBase := 2
	kmBase := iBase + L
	krBase := kmBase + N
	kraBase := krBase + N
	sBase := kraBase + N*L
	for i := 0; i < L; i++ {
		g.AddEdge(src, iBase+i, 0, 0)
	}
	for i := 0; i < L; i++ {
		for k := 0; k < N; k++ {
			g.AddEdge(iBase+i, kmBase+k, rng.Float64()*10, rng.Float64())
		}
	}
	for k := 0; k < N; k++ {
		for r := 0; r < N; r++ {
			g.AddEdge(kmBase+k, krBase+r, rng.Float64()*10, rng.Float64())
		}
	}
	for r := 0; r < N; r++ {
		for a := 0; a < L; a++ {
			g.AddEdge(krBase+r, kraBase+r*L+a, rng.Float64(), rng.Float64())
		}
	}
	for r := 0; r < N; r++ {
		for a := 0; a < L; a++ {
			for s := 0; s < L; s++ {
				g.AddEdge(kraBase+r*L+a, sBase+s, rng.Float64()*10, rng.Float64())
			}
		}
	}
	for s := 0; s < L; s++ {
		g.AddEdge(sBase+s, dst, 0, 0)
	}
	return g, src, dst
}

func BenchmarkDijkstraPaperScale(b *testing.B) {
	g, src, dst := optimizerShapedGraph()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPath(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstrainedSPPaperScale(b *testing.B) {
	g, src, dst := optimizerShapedGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ConstrainedShortestPath(src, dst, 2.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithm1PaperScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, src, dst := optimizerShapedGraph() // Algorithm 1 mutates the graph
		b.StartTimer()
		if _, err := g.Algorithm1(src, dst, 2.5); err != nil && err != ErrInfeasible {
			b.Fatal(err)
		}
	}
}

func BenchmarkYenK20PaperScale(b *testing.B) {
	g, src, dst := optimizerShapedGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := g.YenKSP(src, dst, 20); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}
