package graph_test

import (
	"fmt"

	"astra/internal/graph"
)

// The classic two-route tradeoff: the fast path exceeds the budget, so
// the constrained search takes the cheap one.
func ExampleGraph_ConstrainedShortestPath() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10) // fast, expensive
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1) // slow, cheap
	g.AddEdge(2, 3, 5, 1)

	unconstrained, _ := g.ShortestPath(0, 3)
	fmt.Println("fastest:", unconstrained.Nodes, "weight", unconstrained.W, "side", unconstrained.Side)

	constrained, _ := g.ConstrainedShortestPath(0, 3, 5)
	fmt.Println("budget 5:", constrained.Nodes, "weight", constrained.W, "side", constrained.Side)
	// Output:
	// fastest: [0 1 3] weight 2 side 20
	// budget 5: [0 2 3] weight 10 side 2
}

// Algorithm 1 (the paper's heuristic) on the same instance.
func ExampleGraph_Algorithm1() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	p, err := g.Algorithm1(0, 3, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Nodes)
	// Output:
	// [0 2 3]
}
