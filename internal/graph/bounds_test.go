package graph

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"astra/internal/telemetry"
)

// minToGoRef computes the minimum accumulated pick(e) of any u→dst path
// by value iteration over the reference adjacency — an independent check
// on ToGoBounds' reverse Dijkstra that, unlike ShortestPath's assemble,
// handles parallel edges exactly.
func minToGoRef(r *refGraph, dst int, pick func(refEdge) float64) []float64 {
	dist := make([]float64, r.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[dst] = 0
	for round := 0; round < r.n; round++ {
		changed := false
		for u := 0; u < r.n; u++ {
			for _, e := range r.adj[u] {
				if e.removed {
					continue
				}
				if nd := pick(e) + dist[e.to]; nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestToGoBoundsMatchReference(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, ref, _, dst := randomPair(rng, 2+rng.Intn(3), 2+rng.Intn(3))
		b := g.ToGoBounds(dst)
		wantSide := minToGoRef(ref, dst, func(e refEdge) float64 { return e.side })
		wantW := minToGoRef(ref, dst, func(e refEdge) float64 { return e.w })
		check := func(name string, got, want []float64) {
			for v := 0; v < g.NumNodes(); v++ {
				if math.IsInf(got[v], 1) && math.IsInf(want[v], 1) {
					continue
				}
				if math.Abs(got[v]-want[v]) > 1e-9 {
					t.Fatalf("seed %d: %s[%d] = %v, want %v", seed, name, v, got[v], want[v])
				}
			}
		}
		check("SideToGo", b.SideToGo, wantSide)
		check("WToGo", b.WToGo, wantW)
	}
}

// TestBoundedConstrainedMatchesUnbounded: with admissible bounds and any
// valid upper limit, the bounded search must return exactly the path the
// unbounded solver returns, for feasible and infeasible budgets alike.
func TestBoundedConstrainedMatchesUnbounded(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		layers := 2 + rng.Intn(3)
		g, _, src, dst := randomPair(rng, layers, 2+rng.Intn(3))
		b := g.ToGoBounds(dst)
		for trial := 0; trial < 4; trial++ {
			budget := rng.Float64() * float64(layers+1) * 10
			want, werr := g.ConstrainedShortestPathCtx(ctx, src, dst, budget)

			got, gerr := g.ConstrainedShortestPathBoundedCtx(ctx, src, dst, budget, b, math.Inf(1))
			samePath(t, "bounded(+Inf)", got, gerr == nil, want, werr == nil)

			if werr == nil {
				// The optimum's own W is the tightest valid upper limit —
				// with the relative slack callers must add, because the
				// reverse-summed WToGo can sit a few ULPs above the
				// forward suffix sum of the same edges.
				limit := want.W * (1 + 1e-9)
				got, gerr = g.ConstrainedShortestPathBoundedCtx(ctx, src, dst, budget, b, limit)
				samePath(t, "bounded(optW)", got, gerr == nil, want, werr == nil)
			}
		}
	}
}

// TestBoundedConstrainedPrunes: the bounds must actually cut label work,
// and the cuts must surface on the context's telemetry registry.
func TestBoundedConstrainedPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, _, src, dst := randomPair(rng, 4, 4)
	b := g.ToGoBounds(dst)
	budget := b.SideToGo[src] * 1.05 // tight: most of the space is hopeless

	reg := telemetry.New()
	ctx := telemetry.NewContext(context.Background(), reg)
	want, werr := g.ConstrainedShortestPathCtx(ctx, src, dst, budget)
	got, gerr := g.ConstrainedShortestPathBoundedCtx(ctx, src, dst, budget, b, math.Inf(1))
	samePath(t, "tight budget", got, gerr == nil, want, werr == nil)
	if werr != nil {
		t.Fatalf("budget %v should be feasible (min side %v)", budget, b.SideToGo[src])
	}
	if n := reg.Counter(telemetry.MCSPBoundPrunes).Value(); n == 0 {
		t.Fatal("bounded search pruned no labels under a near-minimal budget")
	}
}

// TestBoundedConstrainedInfeasibleRoot: a budget below the minimal side
// must be rejected at the root without expanding any labels.
func TestBoundedConstrainedInfeasibleRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, _, src, dst := randomPair(rng, 3, 3)
	b := g.ToGoBounds(dst)
	if _, err := g.ConstrainedShortestPathBoundedCtx(context.Background(), src, dst, b.SideToGo[src]*0.5, b, math.Inf(1)); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
