package graph

import (
	"context"
	"math"

	"astra/internal/telemetry"
)

// Bounds carries per-node admissible lower bounds on the remaining weight
// needed to reach one fixed destination: WToGo[v] is the minimum total W
// of any v→dst path and SideToGo[v] the minimum total Side, each computed
// independently (they generally belong to different paths). Because both
// are true single-criterion optima they never overestimate, so a search
// may discard any partial path whose accumulated weight plus the bound
// already violates its budget without losing the constrained optimum.
//
// Bounds are a snapshot of the graph at ToGoBounds time; mutating the
// graph afterwards (edge removal, AddEdge) invalidates them.
type Bounds struct {
	WToGo    []float64
	SideToGo []float64
}

// ToGoBounds computes Bounds for dst by running two Dijkstra sweeps over
// the reverse graph, one per weight. The graph is not mutated, and the
// reverse adjacency is built locally from the frozen CSR (live edges
// only), so concurrent searches may keep using g. SideToGo[src] is the
// global minimum achievable Side of any src→dst path — the fastest
// possible plan when Side carries time — which callers get for free.
func (g *Graph) ToGoBounds(dst int) *Bounds {
	g.freeze()
	// Counted build of the reverse CSR, mirroring freeze.
	rdeg := make([]int32, g.n)
	for u := 0; u < g.n; u++ {
		for ei := g.off[u]; ei < g.off[u+1]; ei++ {
			if !g.removed.get(ei) {
				rdeg[g.to[ei]]++
			}
		}
	}
	roff := make([]int32, g.n+1)
	for v := 0; v < g.n; v++ {
		roff[v+1] = roff[v] + rdeg[v]
	}
	total := roff[g.n]
	rto := make([]int32, total)
	rw := make([]float64, total)
	rside := make([]float64, total)
	pos := make([]int32, g.n)
	copy(pos, roff[:g.n])
	for u := 0; u < g.n; u++ {
		for ei := g.off[u]; ei < g.off[u+1]; ei++ {
			if g.removed.get(ei) {
				continue
			}
			v := g.to[ei]
			p := pos[v]
			pos[v] = p + 1
			rto[p] = int32(u)
			rw[p] = g.w[ei]
			rside[p] = g.side[ei]
		}
	}
	b := &Bounds{}
	telemetry.DoPhase(context.Background(), telemetry.PhaseDijkstra, func(context.Context) {
		b.WToGo = reverseDijkstra(g.n, dst, roff, rto, rw)
		b.SideToGo = reverseDijkstra(g.n, dst, roff, rto, rside)
	})
	return b
}

// reverseDijkstra is a plain single-weight Dijkstra over a prebuilt
// reverse adjacency, returning the distance array (Inf where dst is
// unreachable). It keeps its own heap so it never contends with the
// scratch pool used by the forward searches.
func reverseDijkstra(n, src int, off, to []int32, w []float64) []float64 {
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	done := make([]bool, n)
	var h heap4
	dist[src] = 0
	h.push(int32(src), 0)
	for h.len() > 0 {
		u, _ := h.pop()
		if done[u] {
			continue
		}
		done[u] = true
		du := dist[u]
		for ei := off[u]; ei < off[u+1]; ei++ {
			v := to[ei]
			if nd := du + w[ei]; nd < dist[v] {
				dist[v] = nd
				h.push(v, nd)
			}
		}
	}
	return dist
}

// ConstrainedShortestPathBoundedCtx is ConstrainedShortestPathCtx with
// two admissible pruning rules driven by precomputed to-go bounds:
//
//   - a partial path at v is discarded when its accumulated Side plus
//     SideToGo[v] already exceeds budget (no completion can meet the
//     constraint), and
//   - when its accumulated W plus WToGo[v] exceeds wLimit, an upper
//     bound the caller already holds on the constrained optimum (for
//     example the W of a feasible path found under a tighter budget).
//
// Both rules only ever remove paths that cannot beat the known optimum,
// so with b from ToGoBounds on the same graph the returned path is
// identical to the unbounded search's. Pass wLimit = +Inf when no upper
// bound is known, and pad a finite wLimit by a relative epsilon: the
// reverse-summed WToGo can land a few ULPs above the forward suffix sum
// of the same edges, so an exact optimum used as the limit may otherwise
// prune itself. ErrInfeasible may mean "every path was pruned by
// wLimit" rather than "no path meets budget"; callers holding a wLimit
// already have a point at least that good, so the distinction is moot.
// Labels skipped by the bounds are counted on the context's telemetry
// registry as astra_csp_bound_prunes_total.
func (g *Graph) ConstrainedShortestPathBoundedCtx(ctx context.Context, src, dst int, budget float64, b *Bounds, wLimit float64) (Path, error) {
	var p Path
	var err error
	telemetry.DoPhase(ctx, telemetry.PhaseCSP, func(ctx context.Context) {
		p, err = g.constrainedSearch(ctx, src, dst, budget, b, wLimit)
	})
	return p, err
}

// constrainedSearch is the label-setting core shared by the bounded and
// unbounded constrained entry points. With b == nil and wLimit = +Inf it
// is exactly the historical ConstrainedShortestPathCtx loop. With
// bounds, labels are popped by w + WToGo[node] instead of w — an A*
// ordering whose heuristic is consistent (it is a true shortest-path
// distance), so the first label settled at dst is still the constrained
// optimum while far fewer labels are expanded on the way.
func (g *Graph) constrainedSearch(ctx context.Context, src, dst int, budget float64, b *Bounds, wLimit float64) (Path, error) {
	if err := ctx.Err(); err != nil {
		return Path{}, err
	}
	if src == dst {
		return Path{Nodes: []int{src}}, nil
	}
	tel := telemetry.FromContext(ctx)
	popped := tel.Counter(telemetry.MCSPLabelsPopped)
	relaxations := tel.Counter(telemetry.MSearchEdgesRelaxed)
	allocated := tel.Counter(telemetry.MCSPLabelsAllocated)
	boundPrunes := tel.Counter(telemetry.MCSPBoundPrunes)
	var wToGo, sideToGo []float64
	if b != nil {
		wToGo, sideToGo = b.WToGo, b.SideToGo
		// The root may already be hopeless: the fastest completion busts
		// the budget, or the cheapest busts the caller's upper bound.
		if sideToGo[src] > budget || wToGo[src] > wLimit {
			return Path{}, ErrInfeasible
		}
	}
	sc := g.getScratch(tel)
	defer putScratch(sc)
	labels := sc.labels[:0]
	fronts := sc.fronts
	for i := range fronts {
		fronts[i] = fronts[i][:0]
	}
	h := &sc.lheap
	h.reset()
	labels = append(labels, csLabel{node: int32(src), prev: -1})
	fronts[src] = append(fronts[src], 0)
	if b != nil {
		h.push(0, wToGo[src])
	} else {
		h.push(0, 0)
	}
	pops := 0
	var relaxed, pruned int64
	defer func() {
		sc.labels = labels // hand the grown arena back to the pool
		popped.Add(int64(pops))
		relaxations.Add(relaxed)
		allocated.Add(int64(len(labels)))
		boundPrunes.Add(pruned)
	}()
	off, to, ew, es, removed := g.off, g.to, g.w, g.side, g.removed
	dst32 := int32(dst)
	for h.len() > 0 {
		if pops++; pops%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Path{}, err
			}
		}
		li, _ := h.pop()
		l := labels[li]
		if l.node == dst32 {
			return pathFromArena(labels, li), nil
		}
		// A label is stale if a later insertion evicted it from its
		// node's Pareto front.
		if l.evicted {
			continue
		}
		for ei := off[l.node]; ei < off[l.node+1]; ei++ {
			if removed.get(ei) {
				continue
			}
			v := to[ei]
			nw, ns := l.w+ew[ei], l.side+es[ei]
			if ns > budget {
				continue
			}
			pri := nw
			if b != nil {
				if ns+sideToGo[v] > budget || nw+wToGo[v] > wLimit {
					pruned++
					continue
				}
				pri += wToGo[v]
			}
			front := fronts[v]
			lo := frontFloor(labels, front, nw)
			if frontDominated(labels, front, lo, nw, ns) {
				continue
			}
			nidx := int32(len(labels))
			labels = append(labels, csLabel{w: nw, side: ns, node: v, prev: li})
			fronts[v] = frontInsert(labels, front, lo, nidx, ns)
			relaxed++
			h.push(nidx, pri)
		}
	}
	if err := ctx.Err(); err != nil {
		return Path{}, err
	}
	return Path{}, ErrInfeasible
}
