package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the classic two-route test graph:
// 0 -> 1 -> 3 is fast but expensive, 0 -> 2 -> 3 slow but cheap.
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	return g
}

func eqNodes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestShortestPathBasic(t *testing.T) {
	p, err := diamond().ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !eqNodes(p.Nodes, []int{0, 1, 3}) || p.W != 2 || p.Side != 20 {
		t.Fatalf("path = %+v", p)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, 0)
	if _, err := g.ShortestPath(0, 2); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathSelf(t *testing.T) {
	p, err := diamond().ShortestPath(2, 2)
	if err != nil || len(p.Nodes) != 1 || p.W != 0 {
		t.Fatalf("self path = %+v, %v", p, err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1, 0) },
		func() { g.AddEdge(0, 2, 1, 0) },
		func() { g.AddEdge(0, 1, -1, 0) },
		func() { g.AddEdge(0, 1, math.NaN(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAlgorithm1PicksFeasibleRoute(t *testing.T) {
	// Budget 5 rules out the fast route (side 20); Algorithm 1 must fall
	// back to the slow, cheap one.
	g := diamond()
	p, err := g.Algorithm1(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !eqNodes(p.Nodes, []int{0, 2, 3}) {
		t.Fatalf("path = %+v", p)
	}
	if p.Side > 5 {
		t.Fatalf("budget violated: %+v", p)
	}
}

func TestAlgorithm1UnconstrainedKeepsShortest(t *testing.T) {
	p, err := diamond().Algorithm1(0, 3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !eqNodes(p.Nodes, []int{0, 1, 3}) {
		t.Fatalf("path = %+v", p)
	}
}

func TestAlgorithm1Infeasible(t *testing.T) {
	g := diamond()
	if _, err := g.Algorithm1(0, 3, 0.5); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestConstrainedShortestPathExact(t *testing.T) {
	p, err := diamond().ConstrainedShortestPath(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !eqNodes(p.Nodes, []int{0, 2, 3}) || p.W != 10 || p.Side != 2 {
		t.Fatalf("path = %+v", p)
	}
	// With a loose budget the unconstrained optimum comes back.
	p, err = diamond().ConstrainedShortestPath(0, 3, 100)
	if err != nil || p.W != 2 {
		t.Fatalf("path = %+v, %v", p, err)
	}
	// Infeasible budget.
	if _, err := diamond().ConstrainedShortestPath(0, 3, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestConstrainedBeatsAlgorithm1WhenGreedyFails(t *testing.T) {
	// A graph where Algorithm 1's edge removal discards an edge shared by
	// the only feasible path: 0->1 is shared; the violation happens on
	// 1->2 though, so build a sharper trap: two mid routes.
	//
	//      /-> 1 --(w1,s9)--> 3
	//    0 --> 2 --(w5,s1)--> 3
	// and an expensive first hop to 1 (w0.5, s9): total fast path side 18
	// exceeds budget 10; removal of a fast edge still leaves the cheap
	// route, so both agree here; the point of this test is agreement on
	// optimum value.
	g := New(4)
	g.AddEdge(0, 1, 0.5, 9)
	g.AddEdge(1, 3, 1, 9)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	exact, err := g.ConstrainedShortestPath(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if exact.W != 10 || exact.Side != 2 {
		t.Fatalf("exact = %+v", exact)
	}
}

func TestYenKSPOrderAndSimplicity(t *testing.T) {
	// Grid-ish graph with multiple routes.
	g := New(5)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(0, 2, 2, 0)
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(1, 3, 4, 0)
	g.AddEdge(2, 3, 1, 0)
	g.AddEdge(2, 4, 5, 0)
	g.AddEdge(3, 4, 1, 0)
	paths := g.YenKSP(0, 4, 5)
	if len(paths) < 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].W < paths[i-1].W {
			t.Fatalf("paths out of order: %v", paths)
		}
	}
	// Best: 0-1-2-3-4 = 1+1+1+1 = 4.
	if paths[0].W != 4 {
		t.Fatalf("best = %+v", paths[0])
	}
	for _, p := range paths {
		seen := map[int]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("non-simple path %v", p.Nodes)
			}
			seen[n] = true
		}
	}
}

func TestYenUntil(t *testing.T) {
	g := diamond()
	p, err := g.YenUntil(0, 3, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Side > 5 {
		t.Fatalf("budget violated: %+v", p)
	}
	if _, err := g.YenUntil(0, 3, 0.1, 10); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	empty := New(2)
	if _, err := empty.YenUntil(0, 1, 1, 5); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v", err)
	}
}

// randomDAG builds a layered random DAG resembling the optimizer's shape.
func randomDAG(rng *rand.Rand, layers, width int) (*Graph, int, int) {
	n := layers*width + 2
	g := New(n)
	src, dst := n-2, n-1
	node := func(l, i int) int { return l*width + i }
	for i := 0; i < width; i++ {
		g.AddEdge(src, node(0, i), rng.Float64(), rng.Float64())
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				g.AddEdge(node(l, i), node(l+1, j), rng.Float64()*10, rng.Float64()*10)
			}
		}
	}
	for i := 0; i < width; i++ {
		g.AddEdge(node(layers-1, i), dst, 0, 0)
	}
	return g, src, dst
}

// bruteBest enumerates all src->dst paths in the layered DAG.
func bruteBest(g *Graph, src, dst int, budget float64) (Path, bool) {
	best := Path{W: math.Inf(1)}
	var walk func(at int, nodes []int, w, side float64)
	walk = func(at int, nodes []int, w, side float64) {
		if at == dst {
			if side <= budget && w < best.W {
				best = Path{Nodes: append([]int{}, nodes...), W: w, Side: side}
			}
			return
		}
		for _, e := range g.EdgesFrom(at) {
			walk(e.To, append(nodes, e.To), w+e.W, side+e.Side)
		}
	}
	walk(src, []int{src}, 0, 0)
	return best, !math.IsInf(best.W, 1)
}

func TestConstrainedMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, src, dst := randomDAG(rng, 3, 3)
		budget := float64(budgetRaw%40) + 1
		want, feasible := bruteBest(g, src, dst, budget)
		got, err := g.ConstrainedShortestPath(src, dst, budget)
		if !feasible {
			return errors.Is(err, ErrInfeasible)
		}
		if err != nil {
			return false
		}
		return math.Abs(got.W-want.W) < 1e-9 && got.Side <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1NeverViolatesBudgetProperty(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, src, dst := randomDAG(rng, 3, 3)
		budget := float64(budgetRaw%40) + 1
		p, err := g.Algorithm1(src, dst, budget)
		if err != nil {
			return true // infeasible claims are allowed for the heuristic
		}
		return p.Side <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraMatchesYenFirstPathProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, src, dst := randomDAG(rng, 4, 3)
		sp, err := g.ShortestPath(src, dst)
		if err != nil {
			return false
		}
		yen := g.YenKSP(src, dst, 1)
		return len(yen) == 1 && math.Abs(yen[0].W-sp.W) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdgeBookkeeping(t *testing.T) {
	g := diamond()
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.removeEdge(0, 1) {
		t.Fatal("edge should exist")
	}
	if g.removeEdge(0, 1) {
		t.Fatal("edge already removed")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	p, err := g.ShortestPath(0, 3)
	if err != nil || !eqNodes(p.Nodes, []int{0, 2, 3}) {
		t.Fatalf("path after removal = %+v, %v", p, err)
	}
}
