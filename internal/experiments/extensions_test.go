package experiments

import (
	"strings"
	"testing"
)

func TestProvidersPlansAllSheets(t *testing.T) {
	out, err := Providers()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aws", "gcp-like", "azure-like"} {
		if !strings.Contains(out, want) {
			t.Fatalf("providers missing %q:\n%s", want, out)
		}
	}
	// Azure's 1536 MB ceiling must show in its plan.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "azure-like") && !strings.Contains(line, "1536") {
			t.Fatalf("azure plan should be capped at 1536 MB:\n%s", line)
		}
	}
}

func TestFootnoteOrchestratorCoordinatorCheaper(t *testing.T) {
	out, err := FootnoteOrchestrator()
	if err != nil {
		t.Fatal(err)
	}
	var coordCost, sfCost string
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if strings.HasPrefix(line, "coordinator") {
			coordCost = fields[len(fields)-2]
		}
		if strings.HasPrefix(line, "step functions") {
			sfCost = fields[len(fields)-2]
		}
	}
	if coordCost == "" || sfCost == "" {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !(coordCost < sfCost) { // lexicographic works: same $0.00xxx format
		t.Fatalf("footnote 1 violated: coordinator %s vs step functions %s\n%s",
			coordCost, sfCost, out)
	}
}

func TestEphemeralStorageCacheFasterForSort(t *testing.T) {
	out, err := EphemeralStorage()
	if err != nil {
		t.Fatal(err)
	}
	// Every cache-tier row must report a >= 1.0x speedup.
	found := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "cache tier") {
			continue
		}
		found++
		fields := strings.Fields(line)
		speedup := fields[len(fields)-1]
		if strings.HasPrefix(speedup, "0.") {
			t.Fatalf("cache tier slowed a workload down:\n%s", out)
		}
	}
	if found != 2 {
		t.Fatalf("expected 2 cache rows:\n%s", out)
	}
}

func TestAblationSharedBandwidthMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("large profiled runs")
	}
	out, err := AblationSharedBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	// The 1 GiB/s row must be the slowest (biggest slowdown factor).
	if !strings.Contains(out, "1.0 GiB/s") {
		t.Fatalf("missing rows:\n%s", out)
	}
	var last string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "GiB/s") {
			fields := strings.Fields(line)
			last = fields[len(fields)-1]
		}
	}
	if !strings.HasPrefix(last, "2.") && !strings.HasPrefix(last, "3.") {
		t.Fatalf("tightest cap should slow the job ~2x, got %s:\n%s", last, out)
	}
}

func TestAblationConcurrencyCapBinds(t *testing.T) {
	out, err := AblationConcurrencyCap()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var prevJCT string
	rows := 0
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		rows++
		jct := fields[1]
		// JCT must be non-decreasing as the cap tightens (fixed-width
		// rendering makes lexicographic comparison safe per column).
		if prevJCT != "" && len(jct) == len(prevJCT) && jct < prevJCT {
			t.Fatalf("JCT decreased under a tighter cap:\n%s", out)
		}
		prevJCT = jct
		// Peak concurrency never exceeds the cap.
		capVal, peak := fields[0], fields[2]
		if len(peak) > len(capVal) || (len(peak) == len(capVal) && peak > capVal) {
			t.Fatalf("peak %s exceeded cap %s:\n%s", peak, capVal, out)
		}
	}
	if rows != 4 {
		t.Fatalf("expected 4 rows:\n%s", out)
	}
	// The tightest cap must show a large model error.
	if !strings.Contains(lines[len(lines)-1], "+") {
		t.Fatalf("tightest cap shows no model error:\n%s", out)
	}
}

func TestAggregatePlanningIsWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("planning at paper scale")
	}
	out, err := AblationAggregatePlanning()
	if err != nil {
		t.Fatal(err)
	}
	var perStep, aggregate string
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if strings.HasPrefix(line, "per-step") {
			perStep = fields[len(fields)-1]
		}
		if strings.HasPrefix(line, "Eq. 9") {
			aggregate = fields[len(fields)-1]
		}
	}
	if perStep == "" || aggregate == "" {
		t.Fatalf("missing rows:\n%s", out)
	}
	// Fixed-width "NN.NNs" rendering: lexicographic compare works when
	// lengths match; otherwise longer means bigger.
	worse := len(aggregate) > len(perStep) ||
		(len(aggregate) == len(perStep) && aggregate > perStep)
	if !worse {
		t.Fatalf("aggregate-planned JCT %s should exceed per-step %s:\n%s",
			aggregate, perStep, out)
	}
}

func TestEMRScalingCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("planning at paper scale")
	}
	out, err := EMRScaling()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "astra (serverless)") || !strings.Contains(out, "24 x m3.xlarge") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// Every cluster size must cost more than Astra (the "vs astra cost"
	// multiplier starts with a digit >= 1 and is not 0.x).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "m3.xlarge") {
			fields := strings.Fields(line)
			costX := fields[len(fields)-1]
			if strings.HasPrefix(costX, "0.") {
				t.Fatalf("a VM cluster undercut Astra's cost:\n%s", out)
			}
		}
	}
}

func TestCalibrationMeasuresRealRatios(t *testing.T) {
	out, err := Calibration()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 {
			continue
		}
		switch fields[0] {
		case "sort":
			if fields[2] != "1.000" || fields[4] != "1.000" {
				t.Fatalf("sort must measure ratios of exactly 1:\n%s", out)
			}
		case "grep":
			// Declared 0.08; the measured selectivity must be in the same
			// ballpark (it is a property of the corpus).
			if !strings.HasPrefix(fields[2], "0.0") && !strings.HasPrefix(fields[2], "0.1") {
				t.Fatalf("grep alpha = %s, want ~0.1:\n%s", fields[2], out)
			}
		}
	}
}

func TestAblationBillingQuantumLegacyCostsMore(t *testing.T) {
	out, err := AblationBillingQuantum()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("output:\n%s", out)
	}
	ms1 := strings.Fields(lines[2])[1]
	ms100 := strings.Fields(lines[3])[1]
	if !(ms1 < ms100) { // same $0.00xxx width: lexicographic compare works
		t.Fatalf("legacy billing should cost more: %s vs %s", ms1, ms100)
	}
}
