package experiments

import (
	"fmt"
	"time"

	"astra/internal/dag"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/workload"
)

// ablationJob is small enough for brute force with the full tier set
// restricted to a representative subset.
func ablationJob() workload.Job {
	return workload.Job{Profile: workload.WordCount, NumObjects: 16, ObjectSize: 32 << 20}
}

var ablationTiers = []int{128, 256, 512, 1024, 1536, 1792, 2048, 3008}

// AblationSolvers compares the four solvers on the same constrained
// objective: plan quality (exact-model JCT and cost) and planning time.
func AblationSolvers() (string, error) {
	params := model.DefaultParams(ablationJob())

	// A binding budget: halfway between the cheapest and fastest plans'
	// costs, found with brute force.
	pl := optimizer.New(params)
	pl.Solver = optimizer.Brute
	pl.DAGOptions = dag.Options{Tiers: ablationTiers}
	fastest, err := pl.Plan(optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		return "", err
	}
	cheapest, err := pl.Plan(optimizer.Objective{Goal: optimizer.MinCostUnderDeadline, Deadline: 1e6 * time.Hour})
	if err != nil {
		return "", err
	}
	budget := (fastest.Exact.TotalCost() + cheapest.Exact.TotalCost()) / 2
	obj := optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: budget}

	t := &table{header: []string{"solver", "plan JCT", "plan cost", "within budget", "planning time"}}
	for _, s := range []optimizer.Solver{
		optimizer.Algorithm1, optimizer.Yen, optimizer.CSP, optimizer.Auto,
		optimizer.Rerank, optimizer.Brute,
	} {
		p := optimizer.New(params)
		p.Solver = s
		p.DAGOptions = dag.Options{Tiers: ablationTiers}
		start := time.Now()
		plan, err := p.Plan(obj)
		elapsed := time.Since(start)
		if err != nil {
			t.add(s.String(), "-", "-", fmt.Sprintf("error: %v", err), elapsed.Round(time.Millisecond).String())
			continue
		}
		t.add(s.String(), fmtDur(plan.Exact.JCT()), fmtUSD(plan.Exact.TotalCost()),
			fmt.Sprint(plan.Exact.TotalCost() <= budget),
			elapsed.Round(time.Millisecond).String())
	}
	return fmt.Sprintf("budget = %s\n%s", fmtUSD(budget), t.String()), nil
}

// AblationDAG quantifies the Fig. 5 DAG's separability approximation: the
// DAG shortest path (paper model, JHat estimators) versus the exact-model
// optimum, both evaluated by execution, for a compute-heavy and a
// scan-heavy workload.
func AblationDAG() (string, error) {
	jobs := []workload.Job{
		ablationJob(),
		{Profile: workload.Query, NumObjects: 24, ObjectSize: 48 << 20},
	}
	obj := optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1e9}
	t := &table{header: []string{"workload", "planner", "config", "measured JCT", "measured cost"}}
	for _, job := range jobs {
		params := model.DefaultParams(job)
		for _, s := range []optimizer.Solver{optimizer.Algorithm1, optimizer.Brute} {
			p := optimizer.New(params)
			p.Solver = s
			p.DAGOptions = dag.Options{Tiers: ablationTiers}
			plan, err := p.Plan(obj)
			if err != nil {
				return "", err
			}
			rep, err := Execute(params, plan.Config)
			if err != nil {
				return "", err
			}
			name := "paper DAG (Algorithm 1)"
			if s == optimizer.Brute {
				name = "exact enumeration"
			}
			t.add(job.Profile.Name, name, plan.Config.String(), fmtDur(rep.JCT), fmtUSD(rep.Cost.Total()))
		}
	}
	return t.String(), nil
}

// AblationAggregatePlanning shows what planning on the literal Eq. 9
// aggregate model does to real plan quality: blind to within-step
// parallelism, it cannot distinguish one giant reducer from a wide wave,
// and its unconstrained-fastest pick executes measurably slower than the
// per-step model's.
func AblationAggregatePlanning() (string, error) {
	job := workload.Query25GB()
	params := model.DefaultParams(job)
	obj := optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1e9}

	t := &table{header: []string{"planning model", "chosen config", "measured JCT"}}
	for _, aggregate := range []bool{false, true} {
		p := optimizer.New(params)
		p.Solver = optimizer.Auto
		p.AggregateModel = aggregate
		plan, err := p.Plan(obj)
		if err != nil {
			return "", err
		}
		rep, err := Execute(params, plan.Config)
		if err != nil {
			return "", err
		}
		name := "per-step (default)"
		if aggregate {
			name = "Eq. 9 aggregate (literal)"
		}
		t.add(name, plan.Config.String(), fmtDur(rep.JCT))
	}
	return t.String(), nil
}

// AblationReduceModel compares the literal Eq. 9 aggregate reduce-phase
// model (blind to within-step parallelism), the default per-step model,
// and measured execution. The aggregate column's error grows with the
// width of the reduce fan-out it cannot see.
func AblationReduceModel() (string, error) {
	params := model.DefaultParams(ablationJob())
	perStep := model.NewPaper(params)
	aggregate := model.NewPaper(params)
	aggregate.Aggregate = true
	configs := []mapreduce.Config{
		{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 2},
		{MapperMemMB: 512, CoordMemMB: 512, ReducerMemMB: 512, ObjsPerMapper: 2, ObjsPerReducer: 4},
		{MapperMemMB: 128, CoordMemMB: 128, ReducerMemMB: 128, ObjsPerMapper: 4, ObjsPerReducer: 8},
		{MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024, ObjsPerMapper: 1, ObjsPerReducer: 16},
	}
	t := &table{header: []string{"config", "Eq.9 aggregate", "per-step", "measured"}}
	for _, cfg := range configs {
		ap, err := aggregate.Predict(cfg)
		if err != nil {
			return "", err
		}
		pp, err := perStep.Predict(cfg)
		if err != nil {
			return "", err
		}
		rep, err := Execute(params, cfg)
		if err != nil {
			return "", err
		}
		t.add(cfg.String(), fmtDur(ap.JCT()), fmtDur(pp.JCT()), fmtDur(rep.JCT))
	}
	return t.String(), nil
}
