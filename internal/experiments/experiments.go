// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. II motivation and Sec. V results), plus the solver and
// model ablations this reproduction adds. Each experiment returns typed
// rows and renders the same series the paper plots; astra-bench prints
// them all and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/objectstore"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/telemetry"
	"astra/internal/workload"
)

// Execute runs one profiled job on a fresh simulated platform built from
// the model parameters, so measurements are isolated and deterministic.
func Execute(params model.Params, cfg mapreduce.Config) (*mapreduce.Report, error) {
	var rep *mapreduce.Report
	var runErr error
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth:      params.BandwidthBps,
		RequestLatency: params.RequestLatency,
		Pricing:        params.Sheet.Store,
	})
	pl := lambda.New(sched, store, lambda.Config{
		Sheet:           params.Sheet,
		Speed:           params.Speed,
		DispatchLatency: params.DispatchLatency,
		// The paper's optimization model carries no per-lambda duration
		// constraint (Sec. IV), so evaluation runs disable the 900 s
		// timeout; the examples keep it on.
		DisableTimeout: true,
	})
	keys, err := workload.SeedProfiled(store, "in", params.Job)
	if err != nil {
		return nil, err
	}
	driver := mapreduce.NewDriver(pl)
	telemetry.DoPhase(context.Background(), telemetry.PhaseSimulate, func(context.Context) {
		err = sched.Run(func(p *simtime.Proc) {
			rep, runErr = driver.Run(p, mapreduce.JobSpec{
				Workload:  params.Job,
				Bucket:    "in",
				InputKeys: keys,
				Mode:      mapreduce.Profiled,
			}, cfg)
		})
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return rep, nil
}

// fmtDur renders a duration in seconds with sensible precision.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }

// fmtUSD renders a cost.
func fmtUSD(u pricing.USD) string { return fmt.Sprintf("$%.5f", float64(u)) }

// table is a minimal column-aligned text renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Experiment is one regenerable artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func() (string, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: orchestration of a 10-object job", func() (string, error) { return TableI() }},
		{"fig1", "Fig. 1: completion time vs objects per lambda", func() (string, error) { return Fig1() }},
		{"fig2", "Fig. 2: monetary cost vs objects per lambda", func() (string, error) { return Fig2() }},
		{"fig3", "Fig. 3: job timeline with two sample configurations", func() (string, error) { return Fig3() }},
		{"fig6", "Fig. 6: completion time, mapper time and cost vs memory", func() (string, error) { return Fig6() }},
		{"fig7", "Fig. 7: JCT under a budget, Astra vs baselines", func() (string, error) { return Fig7() }},
		{"table3", "Table III: Astra's performance-optimal allocations", func() (string, error) { return TableIII() }},
		{"fig8", "Fig. 8: cost under a deadline, Astra vs baselines", func() (string, error) { return Fig8() }},
		{"fig9", "Fig. 9: Astra vs EMR (VM-based)", func() (string, error) { return Fig9() }},
		{"spark", "Discussion: Spark workloads, Astra vs VM cluster", func() (string, error) { return SparkDiscussion() }},
		{"providers", "Discussion: the same job planned on other providers' sheets", func() (string, error) { return Providers() }},
		{"footnote1", "Footnote 1: coordinator lambda vs Step Functions", func() (string, error) { return FootnoteOrchestrator() }},
		{"ephemeral", "Discussion: S3 vs cache-tier intermediate storage", func() (string, error) { return EphemeralStorage() }},
		{"ablation-solvers", "Ablation A1: solver comparison", func() (string, error) { return AblationSolvers() }},
		{"ablation-dag", "Ablation A2: paper DAG vs exact model optimum", func() (string, error) { return AblationDAG() }},
		{"ablation-reduce", "Ablation A3: aggregate vs per-step reduce model", func() (string, error) { return AblationReduceModel() }},
		{"ablation-aggregate-planning", "Ablation A3b: planning on the literal Eq. 9 model", func() (string, error) { return AblationAggregatePlanning() }},
		{"ablation-bandwidth", "Ablation A4: per-connection vs shared store bandwidth", func() (string, error) { return AblationSharedBandwidth() }},
		{"ablation-billing", "Ablation A5: 1 ms vs legacy 100 ms billing quantum", func() (string, error) { return AblationBillingQuantum() }},
		{"ablation-concurrency", "Ablation A6: a binding concurrency limit queues lambdas in waves", func() (string, error) { return AblationConcurrencyCap() }},
		{"sensitivity", "Sensitivity: how the optimum moves with bandwidth and dispatch latency", func() (string, error) { return Sensitivity() }},
		{"pipeline", "Extension: global budget allocated across a multi-stage pipeline", func() (string, error) { return PipelineAllocation() }},
		{"calibration", "Extension: declared vs profiler-measured data ratios", func() (string, error) { return Calibration() }},
		{"emr-scaling", "Extension: VM cluster size crossover vs Astra", func() (string, error) { return EMRScaling() }},
		{"resilience", "Extension: QoS under faults — retries vs speculative execution", func() (string, error) { return Resilience() }},
		{"frontier", "Extension: anytime time/cost Pareto frontier at Sort100GB scale", func() (string, error) { return Frontier() }},
	}
}
