package experiments

import (
	"fmt"
	"sync"
	"time"

	"astra/internal/emr"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// jobLabel names an evaluation input the way the figures do.
func jobLabel(job workload.Job) string {
	gb := float64(job.TotalBytes()) / (1 << 30)
	return fmt.Sprintf("%s(%.0fGB)", job.Profile.Name, gb)
}

// PerfRow is one workload's Fig. 7 / Table III data.
type PerfRow struct {
	Job       workload.Job
	Budget    pricing.USD
	Plan      *optimizer.Plan
	Astra     *mapreduce.Report
	Baselines []*mapreduce.Report
}

// ImprovementOverBestBaseline reports Astra's JCT reduction against the
// fastest baseline, as a fraction.
func (r PerfRow) ImprovementOverBestBaseline() float64 {
	best := r.Baselines[0].JCT
	for _, b := range r.Baselines[1:] {
		if b.JCT < best {
			best = b.JCT
		}
	}
	return 1 - r.Astra.JCT.Seconds()/best.Seconds()
}

var (
	perfOnce sync.Once
	perfRows []PerfRow
	perfErr  error
)

// perfComparison runs the Fig. 7 experiment once and caches it (Table III
// reads the same plans).
func perfComparison() ([]PerfRow, error) {
	perfOnce.Do(func() {
		perfRows, perfErr = RunPerfComparison()
	})
	return perfRows, perfErr
}

// RunPerfComparison regenerates the Fig. 7 data uncached: baselines,
// budget, Astra plan and measured executions for every evaluation input.
func RunPerfComparison() ([]PerfRow, error) {
	var rows []PerfRow
	for _, job := range workload.PaperJobs() {
		params := model.DefaultParams(job)
		var row PerfRow
		row.Job = job

		// Run the three baselines. The user-style budget carries 50%
		// headroom over the most expensive baseline — the paper's
		// budgets are exogenous user inputs with room to trade money
		// for speed (its Astra runs land strictly below budget).
		for _, cfg := range optimizer.Baselines(job.NumObjects) {
			rep, err := Execute(params, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s baseline: %w", jobLabel(job), err)
			}
			row.Baselines = append(row.Baselines, rep)
			if c := rep.Cost.Total(); c > row.Budget {
				row.Budget = c
			}
		}
		row.Budget = row.Budget * 3 / 2

		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		plan, err := pl.Plan(optimizer.Objective{
			Goal:   optimizer.MinTimeUnderBudget,
			Budget: row.Budget,
		})
		if err != nil {
			return nil, fmt.Errorf("%s plan: %w", jobLabel(job), err)
		}
		row.Plan = plan
		rep, err := Execute(params, plan.Config)
		if err != nil {
			return nil, fmt.Errorf("%s astra run: %w", jobLabel(job), err)
		}
		row.Astra = rep
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7 renders job completion time under a budget: Astra vs the three
// baselines for the five evaluation inputs.
func Fig7() (string, error) {
	rows, err := perfComparison()
	if err != nil {
		return "", err
	}
	t := &table{header: []string{
		"workload", "budget", "astra cost", "astra JCT",
		"baseline1", "baseline2", "baseline3", "improvement",
	}}
	for _, r := range rows {
		t.add(jobLabel(r.Job), fmtUSD(r.Budget), fmtUSD(r.Astra.Cost.Total()),
			fmtDur(r.Astra.JCT),
			fmtDur(r.Baselines[0].JCT), fmtDur(r.Baselines[1].JCT), fmtDur(r.Baselines[2].JCT),
			fmt.Sprintf("%.1f%%", 100*r.ImprovementOverBestBaseline()))
	}
	return t.String(), nil
}

// TableIII renders the resource allocations Astra chose in the Fig. 7
// runs, in the layout of the paper's Table III.
func TableIII() (string, error) {
	rows, err := perfComparison()
	if err != nil {
		return "", err
	}
	t := &table{header: []string{"field"}}
	for _, r := range rows {
		t.header = append(t.header, jobLabel(r.Job))
	}
	field := func(name string, get func(PerfRow) string) {
		cells := []string{name}
		for _, r := range rows {
			cells = append(cells, get(r))
		}
		t.add(cells...)
	}
	field("map/co/red memory MB", func(r PerfRow) string {
		c := r.Plan.Config
		return fmt.Sprintf("%d/%d/%d", c.MapperMemMB, c.CoordMemMB, c.ReducerMemMB)
	})
	field("objects per mapper", func(r PerfRow) string { return fmt.Sprint(r.Plan.Config.ObjsPerMapper) })
	field("objects per reducer", func(r PerfRow) string { return fmt.Sprint(r.Plan.Config.ObjsPerReducer) })
	field("mappers", func(r PerfRow) string { return fmt.Sprint(r.Astra.Orchestration.Mappers()) })
	field("reducers", func(r PerfRow) string { return fmt.Sprint(r.Astra.Orchestration.Reducers()) })
	field("reduce steps", func(r PerfRow) string { return fmt.Sprint(r.Astra.Orchestration.NumSteps()) })
	return t.String(), nil
}

// CostRow is one workload's Fig. 8 data.
type CostRow struct {
	Job       workload.Job
	Deadline  time.Duration
	Plan      *optimizer.Plan
	Astra     *mapreduce.Report
	Baselines []*mapreduce.Report
}

// ReductionOverCheapestBaseline reports Astra's cost reduction against
// the cheapest baseline, as a fraction.
func (r CostRow) ReductionOverCheapestBaseline() float64 {
	best := r.Baselines[0].Cost.Total()
	for _, b := range r.Baselines[1:] {
		if c := b.Cost.Total(); c < best {
			best = c
		}
	}
	return 1 - float64(r.Astra.Cost.Total())/float64(best)
}

var (
	costOnce sync.Once
	costRows []CostRow
	costErr  error
)

// costComparison runs the Fig. 8 experiment once and caches it: minimize
// cost under a QoS deadline.
func costComparison() ([]CostRow, error) {
	costOnce.Do(func() {
		costRows, costErr = RunCostComparison()
	})
	return costRows, costErr
}

// RunCostComparison regenerates the Fig. 8 data uncached.
func RunCostComparison() ([]CostRow, error) {
	var rows []CostRow
	for _, job := range workload.PaperJobs() {
		params := model.DefaultParams(job)
		var row CostRow
		row.Job = job
		// The QoS threshold is the slowest baseline's completion time:
		// the paper compares Astra's cost against Baseline 2's, which is
		// only meaningful if Baseline 2 itself meets the threshold.
		for _, cfg := range optimizer.Baselines(job.NumObjects) {
			rep, err := Execute(params, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s baseline: %w", jobLabel(job), err)
			}
			row.Baselines = append(row.Baselines, rep)
			if rep.JCT > row.Deadline {
				row.Deadline = rep.JCT
			}
		}
		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		plan, err := pl.Plan(optimizer.Objective{
			Goal:     optimizer.MinCostUnderDeadline,
			Deadline: row.Deadline,
		})
		if err != nil {
			return nil, fmt.Errorf("%s plan: %w", jobLabel(job), err)
		}
		row.Plan = plan
		rep, err := Execute(params, plan.Config)
		if err != nil {
			return nil, fmt.Errorf("%s astra run: %w", jobLabel(job), err)
		}
		row.Astra = rep
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8 renders monetary cost under a completion-time threshold: Astra vs
// the three baselines.
func Fig8() (string, error) {
	rows, err := costComparison()
	if err != nil {
		return "", err
	}
	t := &table{header: []string{
		"workload", "deadline", "astra JCT", "astra cost",
		"baseline1", "baseline2", "baseline3", "reduction",
	}}
	for _, r := range rows {
		t.add(jobLabel(r.Job), fmtDur(r.Deadline), fmtDur(r.Astra.JCT),
			fmtUSD(r.Astra.Cost.Total()),
			fmtUSD(r.Baselines[0].Cost.Total()), fmtUSD(r.Baselines[1].Cost.Total()),
			fmtUSD(r.Baselines[2].Cost.Total()),
			fmt.Sprintf("%.1f%%", 100*r.ReductionOverCheapestBaseline()))
	}
	return t.String(), nil
}

// Fig9 compares Astra against the VM-based EMR cluster (3 x m3.xlarge,
// 100 concurrent map tasks) on WordCount 20 GB and Sort 100 GB: Astra is
// given EMR's spend as its budget and asked to be as fast as possible.
func Fig9() (string, error) {
	t := &table{header: []string{
		"workload", "EMR JCT", "astra JCT", "time win",
		"EMR cost", "astra cost", "cost win",
	}}
	for _, job := range []workload.Job{workload.WordCount20GB(), workload.Sort100GB()} {
		emrRes, err := emr.Run(job, emr.PaperCluster())
		if err != nil {
			return "", err
		}
		params := model.DefaultParams(job)
		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		plan, err := pl.Plan(optimizer.Objective{
			Goal:   optimizer.MinTimeUnderBudget,
			Budget: emrRes.Cost,
		})
		if err != nil {
			return "", fmt.Errorf("%s: %w", jobLabel(job), err)
		}
		rep, err := Execute(params, plan.Config)
		if err != nil {
			return "", err
		}
		t.add(jobLabel(job),
			fmtDur(emrRes.JCT), fmtDur(rep.JCT),
			fmt.Sprintf("%.1f%%", 100*(1-rep.JCT.Seconds()/emrRes.JCT.Seconds())),
			fmtUSD(emrRes.Cost), fmtUSD(rep.Cost.Total()),
			fmt.Sprintf("%.1f%%", 100*(1-float64(rep.Cost.Total())/float64(emrRes.Cost))))
	}
	return t.String(), nil
}

// SparkDiscussion reproduces the discussion-section claim: for Spark
// WordCount and Spark SQL workloads, Astra achieves >= 92 % cost
// reduction over a VM cluster without performance degradation — modeled
// as a min-cost plan whose deadline is the cluster's completion time.
func SparkDiscussion() (string, error) {
	jobs := []workload.Job{
		{Profile: workload.SparkWordCount, NumObjects: 40, ObjectSize: 512 << 20},
		{Profile: workload.SparkSQL, NumObjects: 202, ObjectSize: workload.Query25GB().ObjectSize},
	}
	t := &table{header: []string{
		"workload", "VM JCT", "astra JCT", "VM cost", "astra cost", "cost reduction",
	}}
	for _, job := range jobs {
		// A user-managed vanilla Spark cluster in the classic setup the
		// discussion compares against: on-demand instances billed by the
		// hour, so a minutes-long job pays for three full instance-hours.
		cluster := emr.PaperCluster()
		cluster.VMType.BillMinim = time.Hour
		vm, err := emr.Run(job, cluster)
		if err != nil {
			return "", err
		}
		params := model.DefaultParams(job)
		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		plan, err := pl.Plan(optimizer.Objective{
			Goal:     optimizer.MinCostUnderDeadline,
			Deadline: vm.JCT,
		})
		if err != nil {
			return "", fmt.Errorf("%s: %w", job.Profile.Name, err)
		}
		rep, err := Execute(params, plan.Config)
		if err != nil {
			return "", err
		}
		t.add(job.Profile.Name, fmtDur(vm.JCT), fmtDur(rep.JCT),
			fmtUSD(vm.Cost), fmtUSD(rep.Cost.Total()),
			fmt.Sprintf("%.1f%%", 100*(1-float64(rep.Cost.Total())/float64(vm.Cost))))
	}
	return t.String(), nil
}
