package experiments

import (
	"strings"
	"testing"

	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/workload"
)

func TestExecuteRunsAJob(t *testing.T) {
	params := model.DefaultParams(workload.Job{
		Profile: workload.WordCount, NumObjects: 8, ObjectSize: 4 << 20,
	})
	rep, err := Execute(params, mapreduce.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.JCT <= 0 || rep.Cost.Total() <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
}

func TestTableIRendersPaperLayout(t *testing.T) {
	out, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"objects/lambda", "mappers", "step 1 reducers", "step 3 reducers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TableI missing %q:\n%s", want, out)
		}
	}
}

// TestFig1Shape asserts the paper's Fig. 1 qualitative claims: the
// completion time falls from k=1 toward a minimum in the middle of the
// range and rises again as skew sets in, and bigger memory is faster.
func TestFig1Shape(t *testing.T) {
	points, err := motivationSweep()
	if err != nil {
		t.Fatal(err)
	}
	jct := map[[2]int]float64{}
	for _, p := range points {
		jct[[2]int{p.MemoryMB, p.ObjectsPerLambda}] = p.Report.JCT.Seconds()
	}
	for _, mem := range motivationMemories {
		minK, minV := 0, 0.0
		for k := 1; k <= 9; k++ {
			if v := jct[[2]int{mem, k}]; minK == 0 || v < minV {
				minK, minV = k, v
			}
		}
		if minK <= 2 || minK >= 9 {
			t.Errorf("mem %d: JCT minimum at k=%d, want an interior minimum", mem, minK)
		}
		if jct[[2]int{mem, 1}] <= minV || jct[[2]int{mem, 9}] <= minV {
			t.Errorf("mem %d: no U-shape: k1=%v min=%v k9=%v",
				mem, jct[[2]int{mem, 1}], minV, jct[[2]int{mem, 9}])
		}
	}
	// Bigger memory is never slower at any k.
	for k := 1; k <= 9; k++ {
		if jct[[2]int{1536, k}] > jct[[2]int{128, k}] {
			t.Errorf("k=%d: 1536 MB slower than 128 MB", k)
		}
	}
}

// TestFig2Shape asserts Fig. 2: cost falls as objects per lambda grow
// from 1 toward the middle of the range (fewer lambdas, fewer requests).
func TestFig2Shape(t *testing.T) {
	points, err := motivationSweep()
	if err != nil {
		t.Fatal(err)
	}
	cost := map[[2]int]float64{}
	for _, p := range points {
		cost[[2]int{p.MemoryMB, p.ObjectsPerLambda}] = float64(p.Report.Cost.Total())
	}
	for _, mem := range motivationMemories {
		if cost[[2]int{mem, 5}] >= cost[[2]int{mem, 1}] {
			t.Errorf("mem %d: cost at k=5 (%v) should undercut k=1 (%v)",
				mem, cost[[2]int{mem, 5}], cost[[2]int{mem, 1}])
		}
	}
	// Bigger memory costs more at equal k.
	for k := 1; k <= 9; k++ {
		if cost[[2]int{3008, k}] <= cost[[2]int{128, k}] {
			t.Errorf("k=%d: 3008 MB not costlier than 128 MB", k)
		}
	}
}

func TestFig3RendersTimelines(t *testing.T) {
	out, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(a)", "(b)", "coordinator", "map", "red", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig3 missing %q:\n%s", want, out)
		}
	}
}

// TestFig6Shape asserts Fig. 6: JCT decreases with memory then flattens,
// and the flat region costs strictly more.
func TestFig6Shape(t *testing.T) {
	params := model.DefaultParams(workload.WordCount1GB())
	run := func(mem int) *mapreduce.Report {
		rep, err := Execute(params, mapreduce.Config{
			MapperMemMB: mem, CoordMemMB: mem, ReducerMemMB: mem,
			ObjsPerMapper: 1, ObjsPerReducer: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	small, mid, floor, top := run(128), run(1024), run(1792), run(3008)
	if !(small.JCT > mid.JCT && mid.JCT > floor.JCT) {
		t.Fatalf("JCT should fall with memory: %v, %v, %v", small.JCT, mid.JCT, floor.JCT)
	}
	if floor.JCT != top.JCT {
		t.Fatalf("JCT should flatten above the floor: %v vs %v", floor.JCT, top.JCT)
	}
	if top.Cost.Total() <= floor.Cost.Total() {
		t.Fatal("memory above the floor must cost more for the same time")
	}
	if !(small.Phases.Map > floor.Phases.Map) {
		t.Fatal("mapper phase should shrink with memory")
	}
}

// TestFig7AstraDominatesBaselines asserts the headline Fig. 7 property:
// under its budget, Astra's measured completion time beats every
// baseline's on every workload, and the budget is honored.
func TestFig7AstraDominatesBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	rows, err := perfComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d workloads, want 5", len(rows))
	}
	for _, r := range rows {
		for i, b := range r.Baselines {
			if r.Astra.JCT > b.JCT {
				t.Errorf("%s: Astra JCT %v slower than baseline %d (%v)",
					jobLabel(r.Job), r.Astra.JCT, i+1, b.JCT)
			}
		}
		if r.Astra.Cost.Total() > r.Budget {
			t.Errorf("%s: Astra cost %v exceeds budget %v",
				jobLabel(r.Job), r.Astra.Cost.Total(), r.Budget)
		}
		if r.ImprovementOverBestBaseline() <= 0 {
			t.Errorf("%s: no improvement over baselines", jobLabel(r.Job))
		}
	}
}

// TestFig8AstraCheapestUnderDeadline asserts Fig. 8: Astra meets the QoS
// threshold in measurement and is at least as cheap as every baseline.
func TestFig8AstraCheapestUnderDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	rows, err := costComparison()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Astra.JCT > r.Deadline {
			t.Errorf("%s: Astra JCT %v violates the %v deadline",
				jobLabel(r.Job), r.Astra.JCT, r.Deadline)
		}
		for i, b := range r.Baselines {
			if float64(r.Astra.Cost.Total()) > float64(b.Cost.Total())*1.001 {
				t.Errorf("%s: Astra cost %v above baseline %d (%v)",
					jobLabel(r.Job), r.Astra.Cost.Total(), i+1, b.Cost.Total())
			}
		}
	}
}

func TestFig9AstraCheaperThanEMR(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	out, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wordcount") || !strings.Contains(out, "sort") {
		t.Fatalf("Fig9 output:\n%s", out)
	}
	// The cost-win column must be positive for both rows.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "-") && strings.Contains(line, "%") &&
			strings.Contains(line, "cost win -") {
			t.Fatalf("negative cost win:\n%s", out)
		}
	}
}

func TestSparkDiscussionMeetsPaperClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	out, err := SparkDiscussion()
	if err != nil {
		t.Fatal(err)
	}
	// The paper claims >= 92% cost reduction; assert both rows land at
	// 90%+ (the rendered percentages start with "9").
	count := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "spark-") {
			fields := strings.Fields(line)
			last := fields[len(fields)-1]
			if !strings.HasPrefix(last, "9") {
				t.Errorf("cost reduction %s below the paper's >=92%% claim", last)
			}
			count++
		}
	}
	if count != 2 {
		t.Fatalf("expected 2 spark rows:\n%s", out)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	for _, fn := range []func() (string, error){AblationSolvers, AblationDAG, AblationReduceModel} {
		out, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty ablation output")
		}
	}
}

func TestAllExperimentsEnumerated(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{
		"table1", "fig1", "fig2", "fig3", "fig6", "fig7", "table3", "fig8",
		"fig9", "spark", "providers", "footnote1", "ephemeral", "pipeline",
		"sensitivity", "ablation-solvers", "ablation-dag", "ablation-reduce",
		"ablation-bandwidth", "ablation-billing", "ablation-concurrency",
		"resilience", "frontier",
	} {
		if !ids[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestPipelineAllocationWithinBudget(t *testing.T) {
	out, err := PipelineAllocation()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fastest", "cheapest", "budget", "measured", "filter:", "aggregate:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pipeline output missing %q:\n%s", want, out)
		}
	}
}

func TestSensitivityMovesTheOptimum(t *testing.T) {
	out, err := Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	// Distinct dispatch latencies must yield at least two distinct plans.
	plans := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "mem("); i >= 0 {
			plans[line[i:]] = true
		}
	}
	if len(plans) < 2 {
		t.Fatalf("sensitivity sweep produced a single plan everywhere:\n%s", out)
	}
}
