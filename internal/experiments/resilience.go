package experiments

import (
	"fmt"
	"time"

	"astra/internal/chaos"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// Resilience stress-tests QoS under adversity: WordCount and Sort jobs
// run under three seeded fault profiles — straggler-heavy, throttle-storm
// and lossy-store — with bounded retries alone, and then with speculative
// execution added. Each row averages several seeds and reports completion
// time and cost inflation over the clean run plus the deadline-hit rate
// against a QoS threshold of 1.3x the clean JCT (the Eq. 20 constraint
// re-checked under faults). Speculation buys its JCT recovery with extra
// (billed) backup attempts, so the two modes bracket the time/cost
// tradeoff of mitigation.
func Resilience() (string, error) {
	const (
		seeds       = 5
		retries     = 2
		deadlineX   = 1.3
		specX       = 1.5 // backup threshold: 1.5x predicted task time
		specBackups = 2
	)

	type profile struct {
		name string
		plan func(seed int64) *chaos.Plan
	}
	profiles := []profile{
		{"straggler-heavy", func(seed int64) *chaos.Plan {
			return &chaos.Plan{Seed: seed, Rules: []chaos.Rule{
				{Name: "slow-map", Target: chaos.TargetLambda, Effect: chaos.Straggle,
					Phase: "map", Probability: 0.4, Factor: 10},
				{Name: "slow-red", Target: chaos.TargetLambda, Effect: chaos.Straggle,
					Phase: "reduce", Probability: 0.3, Factor: 8},
			}}
		}},
		{"throttle-storm", func(seed int64) *chaos.Plan {
			return &chaos.Plan{Seed: seed, Rules: []chaos.Rule{
				{Name: "storm", Target: chaos.TargetLambda, Effect: chaos.Throttle,
					Probability: 0.5, For: chaos.Duration(30 * time.Second)},
				{Name: "kill", Target: chaos.TargetLambda, Effect: chaos.FailMidFlight,
					Phase: "map", Probability: 0.05, MaxCount: 2},
			}}
		}},
		{"lossy-store", func(seed int64) *chaos.Plan {
			return &chaos.Plan{Seed: seed, Rules: []chaos.Rule{
				{Name: "flaky-get", Target: chaos.TargetStore, Effect: chaos.StoreError,
					Ops: []string{"GET"}, Probability: 0.05, Repeat: 2},
			}}
		}},
	}

	jobs := []struct {
		name string
		job  workload.Job
		cfg  mapreduce.Config
	}{
		{"wordcount-1GB", workload.Job{Profile: workload.WordCount, NumObjects: 20, ObjectSize: 1 << 30 / 20},
			mapreduce.Config{MapperMemMB: 1024, CoordMemMB: 512, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 2}},
		{"sort-1GB", workload.Job{Profile: workload.Sort, NumObjects: 20, ObjectSize: 1 << 30 / 20},
			mapreduce.Config{MapperMemMB: 1024, CoordMemMB: 512, ReducerMemMB: 1792, ObjsPerMapper: 2, ObjsPerReducer: 2}},
	}

	t := &table{header: []string{"job", "profile", "mitigation", "JCT", "xclean",
		"cost", "xclean", "deadline-hit", "faults", "backups(wins)"}}

	for _, j := range jobs {
		params := model.DefaultParams(j.job)
		clean, err := executeWithSpec(params, j.cfg, nil)
		if err != nil {
			return "", err
		}
		deadline := time.Duration(deadlineX * float64(clean.JCT))
		t.add(j.name, "none", "-", fmtDur(clean.JCT), "1.00x",
			fmtUSD(clean.Cost.Total()), "1.00x", "5/5", "0", "0(0)")

		// Predicted per-stage durations parameterize the straggler
		// threshold, exactly as the CLI's -speculate path fills them.
		bd, err := model.NewExact(params).PredictBreakdown(j.cfg)
		if err != nil {
			return "", err
		}

		for _, pf := range profiles {
			for _, speculate := range []bool{false, true} {
				var jctSum time.Duration
				var costSum pricing.USD
				var hits, faults, backups, wins int
				for s := int64(1); s <= seeds; s++ {
					eng, err := chaos.NewEngine(pf.plan(s))
					if err != nil {
						return "", err
					}
					rep, err := executeWithSpec(params, j.cfg, func(spec *mapreduce.JobSpec) {
						spec.TaskRetries = retries
						spec.Injector = eng
						spec.StoreInjector = eng
						if speculate {
							pol := &mapreduce.SpeculationPolicy{Multiplier: specX, MaxBackups: specBackups}
							pol.FromBreakdown(bd)
							spec.Speculation = pol
						}
					})
					if err != nil {
						return "", fmt.Errorf("%s/%s seed %d: %w", j.name, pf.name, s, err)
					}
					jctSum += rep.JCT
					costSum += rep.Cost.Total()
					if rep.DeadlineMet(deadline) {
						hits++
					}
					r := rep.Resilience
					faults += r.LambdaFaults + int(r.StoreFaults)
					backups += r.Speculation.BackupsLaunched
					wins += r.Speculation.Wins
				}
				jct := jctSum / seeds
				cost := costSum / seeds
				mode := "retries"
				if speculate {
					mode = "retries+spec"
				}
				t.add(j.name, pf.name, mode, fmtDur(jct),
					fmt.Sprintf("%.2fx", float64(jct)/float64(clean.JCT)),
					fmtUSD(cost),
					fmt.Sprintf("%.2fx", float64(cost)/float64(clean.Cost.Total())),
					fmt.Sprintf("%d/%d", hits, seeds),
					fmt.Sprintf("%d", faults),
					fmt.Sprintf("%d(%d)", backups, wins))
			}
		}
	}
	return t.String(), nil
}
