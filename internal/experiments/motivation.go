package experiments

import (
	"fmt"
	"strings"
	"time"

	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/trace"
	"astra/internal/workload"
)

// motivationParams returns the Sec. II toy setting: 10 objects, 2 MB
// total, WordCount logic. The toy job was driven by a lightweight client
// (no framework layers), so the dispatch round trip is the bare invoke
// API latency; with the job this tiny, S3 request latency is what shapes
// the curves.
func motivationParams() model.Params {
	p := model.DefaultParams(workload.MotivationJob())
	p.DispatchLatency = 120 * time.Millisecond
	return p
}

// TableI renders the paper's Table I: the orchestration of a 10-object
// job for 1-5 objects per lambda.
func TableI() (string, error) {
	rows, err := mapreduce.TableI(10, []int{1, 2, 3, 4, 5})
	if err != nil {
		return "", err
	}
	maxSteps := 0
	for _, r := range rows {
		if len(r.StepReducers) > maxSteps {
			maxSteps = len(r.StepReducers)
		}
	}
	t := &table{header: []string{"objects/lambda", "mappers"}}
	for s := 1; s <= maxSteps; s++ {
		t.header = append(t.header, fmt.Sprintf("step %d reducers", s))
	}
	for _, r := range rows {
		cells := []string{fmt.Sprint(r.ObjectsPerLambda), fmt.Sprint(r.Mappers)}
		for s := 0; s < maxSteps; s++ {
			if s < len(r.StepReducers) {
				cells = append(cells, fmt.Sprint(r.StepReducers[s]))
			} else {
				cells = append(cells, "-")
			}
		}
		t.add(cells...)
	}
	return t.String(), nil
}

// motivationMemories are the three allocations Figs. 1-2 sweep.
var motivationMemories = []int{128, 1536, 3008}

// MotivationPoint is one (memory, k) measurement.
type MotivationPoint struct {
	MemoryMB         int
	ObjectsPerLambda int
	Report           *mapreduce.Report
}

// motivationSweep runs the Sec. II experiment: objects per lambda 1..9
// under the three memory allocations (k is used for both kM and kR, as in
// the paper's motivation setup).
func motivationSweep() ([]MotivationPoint, error) {
	params := motivationParams()
	var points []MotivationPoint
	for _, mem := range motivationMemories {
		for k := 1; k <= 9; k++ {
			cfg := mapreduce.Config{
				MapperMemMB: mem, CoordMemMB: mem, ReducerMemMB: mem,
				ObjsPerMapper: k, ObjsPerReducer: k,
			}
			rep, err := Execute(params, cfg)
			if err != nil {
				return nil, fmt.Errorf("k=%d mem=%d: %w", k, mem, err)
			}
			points = append(points, MotivationPoint{MemoryMB: mem, ObjectsPerLambda: k, Report: rep})
		}
	}
	return points, nil
}

// Fig1 renders completion time vs objects per lambda for the three
// memory allocations.
func Fig1() (string, error) {
	points, err := motivationSweep()
	if err != nil {
		return "", err
	}
	return renderMotivation(points, "JCT", func(p MotivationPoint) string {
		return fmtDur(p.Report.JCT)
	}), nil
}

// Fig2 renders monetary cost for the same sweep.
func Fig2() (string, error) {
	points, err := motivationSweep()
	if err != nil {
		return "", err
	}
	return renderMotivation(points, "cost", func(p MotivationPoint) string {
		return fmtUSD(p.Report.Cost.Total())
	}), nil
}

func renderMotivation(points []MotivationPoint, metric string, val func(MotivationPoint) string) string {
	t := &table{header: []string{"objects/lambda"}}
	for _, mem := range motivationMemories {
		t.header = append(t.header, fmt.Sprintf("%s @%dMB", metric, mem))
	}
	byKey := map[[2]int]MotivationPoint{}
	for _, p := range points {
		byKey[[2]int{p.MemoryMB, p.ObjectsPerLambda}] = p
	}
	for k := 1; k <= 9; k++ {
		cells := []string{fmt.Sprint(k)}
		for _, mem := range motivationMemories {
			cells = append(cells, val(byKey[[2]int{mem, k}]))
		}
		t.add(cells...)
	}
	return t.String()
}

// Fig3 renders the job timeline decomposition for the paper's two sample
// configurations: (3 objects per lambda, 128 MB) and (2 objects per
// lambda, 3008 MB).
func Fig3() (string, error) {
	params := motivationParams()
	samples := []mapreduce.Config{
		{MapperMemMB: 128, CoordMemMB: 128, ReducerMemMB: 128, ObjsPerMapper: 3, ObjsPerReducer: 3},
		{MapperMemMB: 3008, CoordMemMB: 3008, ReducerMemMB: 3008, ObjsPerMapper: 2, ObjsPerReducer: 2},
	}
	var b strings.Builder
	for i, cfg := range samples {
		rep, err := Execute(params, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "(%c) %s -> JCT %s\n", 'a'+rune(i), cfg, fmtDur(rep.JCT))
		tl := trace.FromRecords(rep.Records)
		b.WriteString(tl.Render(60))
		b.WriteString(tl.PhaseSummary())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Fig6 sweeps the memory allocation for WordCount (1 GB) with the other
// knobs fixed, reporting completion time, mapper phase time and cost —
// the observation the baselines are built on.
func Fig6() (string, error) {
	params := model.DefaultParams(workload.WordCount1GB())
	t := &table{header: []string{"memory MB", "JCT", "mapper phase", "cost"}}
	for _, mem := range []int{128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2560, 3008} {
		cfg := mapreduce.Config{
			MapperMemMB: mem, CoordMemMB: mem, ReducerMemMB: mem,
			ObjsPerMapper: 1, ObjsPerReducer: 2,
		}
		rep, err := Execute(params, cfg)
		if err != nil {
			return "", err
		}
		t.add(fmt.Sprint(mem), fmtDur(rep.JCT), fmtDur(rep.Phases.Map), fmtUSD(rep.Cost.Total()))
	}
	return t.String(), nil
}
