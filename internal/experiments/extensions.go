package experiments

import (
	"context"
	"fmt"
	"time"

	"astra/internal/emr"
	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/objectstore"
	"astra/internal/optimizer"
	"astra/internal/pipeline"
	"astra/internal/pricing"
	"astra/internal/profiler"
	"astra/internal/simtime"
	"astra/internal/workload"
)

// Frontier sweeps the full time/cost Pareto frontier at paper scale
// (Sort100GB, k = 24) with the anytime engine — the Fig. 1/2 tradeoff
// as one incremental computation instead of a grid of replans — and
// reports the sweep's own economics: searches run, deadlines the probe
// algebra pruned, exact-model evaluations, cache hit rate and phase
// count (each phase delivered a refined snapshot to the observer).
func Frontier() (string, error) {
	params := model.DefaultParams(workload.Sort100GB())
	snapshots := 0
	res, err := optimizer.SweepFrontier(context.Background(), optimizer.FrontierSpec{
		Params:   params,
		Size:     24,
		Observer: func(optimizer.FrontierUpdate) { snapshots++ },
	})
	if err != nil {
		return "", err
	}
	t := &table{header: []string{"predicted JCT", "predicted cost", "configuration"}}
	for _, pt := range res.Points {
		t.add(fmtDur(pt.Pred.JCT()), fmtUSD(pt.Pred.TotalCost()), pt.Config.String())
	}
	st := res.Stats
	return fmt.Sprintf(
		"%d Pareto point(s) in %d phases (%d anytime snapshots): %d searches, %d pruned, %d exact evaluations, cache hit rate %.1f%%\n%s",
		len(res.Points), st.Phases, snapshots, st.Searches, st.Pruned,
		st.Evaluations, 100*st.CacheHitRate(), t.String()), nil
}

// Providers reproduces the discussion-section claim that Astra adapts to
// other FaaS providers "by using their respective platform quotas and
// pricing mechanisms": the same job planned against the AWS, GCP-like and
// Azure-like price sheets, showing how quotas reshape the chosen plan.
func Providers() (string, error) {
	job := workload.WordCount1GB()
	t := &table{header: []string{
		"provider", "tiers", "timeout", "plan", "predicted JCT", "predicted cost",
	}}
	for _, sheet := range []*pricing.Sheet{pricing.AWS(), pricing.GCPLike(), pricing.AzureLike()} {
		params := model.DefaultParams(job)
		params.Sheet = sheet
		// Clamp the speed floor into the provider's configurable range so
		// tier pruning stays meaningful on providers topping out below
		// 1792 MB.
		if params.Speed.FloorMemMB > sheet.Lambda.MaxMemoryMB {
			params.Speed.FloorMemMB = sheet.Lambda.MaxMemoryMB
		}
		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		plan, err := pl.Plan(optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1})
		if err != nil {
			return "", fmt.Errorf("%s: %w", sheet.Provider, err)
		}
		t.add(sheet.Provider,
			fmt.Sprint(sheet.Lambda.NumTiers()),
			sheet.Lambda.Timeout.String(),
			plan.Config.String(),
			fmtDur(plan.Exact.JCT()),
			fmtUSD(plan.Exact.TotalCost()))
	}
	return t.String(), nil
}

// executeShared runs a job with an aggregate processor-sharing store
// bandwidth instead of the per-connection model — the regime real S3
// imposes on very wide fan-outs.
func executeShared(params model.Params, cfg mapreduce.Config, sharedBps float64) (*mapreduce.Report, error) {
	var rep *mapreduce.Report
	var runErr error
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		SharedBandwidth: sharedBps,
		RequestLatency:  params.RequestLatency,
		Pricing:         params.Sheet.Store,
	})
	pl := lambda.New(sched, store, lambda.Config{
		Sheet:           params.Sheet,
		Speed:           params.Speed,
		DispatchLatency: params.DispatchLatency,
		DisableTimeout:  true,
	})
	keys, err := workload.SeedProfiled(store, "in", params.Job)
	if err != nil {
		return nil, err
	}
	driver := mapreduce.NewDriver(pl)
	err = sched.Run(func(p *simtime.Proc) {
		rep, runErr = driver.Run(p, mapreduce.JobSpec{
			Workload:  params.Job,
			Bucket:    "in",
			InputKeys: keys,
			Mode:      mapreduce.Profiled,
		}, cfg)
	})
	if err != nil {
		return nil, err
	}
	return rep, runErr
}

// AblationSharedBandwidth quantifies what the fixed per-connection
// bandwidth assumption (the paper's B, which our models inherit) hides:
// under an aggregate S3 throughput cap, a 200-lambda Sort contends for
// the fabric and slows sharply — the effect that keeps the real paper's
// Sort win over EMR small (5%) where our clean model shows a large one.
func AblationSharedBandwidth() (string, error) {
	job := workload.Sort100GB()
	params := model.DefaultParams(job)
	cfg := mapreduce.Config{
		MapperMemMB: 1792, CoordMemMB: 1792, ReducerMemMB: 1792,
		ObjsPerMapper: 2, ObjsPerReducer: 1,
	}
	t := &table{header: []string{"store model", "JCT", "cost", "slowdown"}}
	base, err := Execute(params, cfg)
	if err != nil {
		return "", err
	}
	t.add("per-connection 80 MiB/s (paper's B)", fmtDur(base.JCT), fmtUSD(base.Cost.Total()), "1.00x")
	for _, aggGBps := range []float64{5, 2.5, 1} {
		rep, err := executeShared(params, cfg, aggGBps*(1<<30))
		if err != nil {
			return "", err
		}
		t.add(fmt.Sprintf("shared %.1f GiB/s aggregate", aggGBps),
			fmtDur(rep.JCT), fmtUSD(rep.Cost.Total()),
			fmt.Sprintf("%.2fx", rep.JCT.Seconds()/base.JCT.Seconds()))
	}
	return t.String(), nil
}

// executeWithSpec runs a job with full JobSpec control (orchestrator,
// intermediate storage class).
func executeWithSpec(params model.Params, cfg mapreduce.Config,
	mut func(*mapreduce.JobSpec)) (*mapreduce.Report, error) {
	var rep *mapreduce.Report
	var runErr error
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth:      params.BandwidthBps,
		RequestLatency: params.RequestLatency,
		Pricing:        params.Sheet.Store,
	})
	pl := lambda.New(sched, store, lambda.Config{
		Sheet:           params.Sheet,
		Speed:           params.Speed,
		DispatchLatency: params.DispatchLatency,
		DisableTimeout:  true,
		// Only consulted for injected 429 windows (resilience experiment).
		MaxRetries: 8,
	})
	keys, err := workload.SeedProfiled(store, "in", params.Job)
	if err != nil {
		return nil, err
	}
	spec := mapreduce.JobSpec{
		Workload:  params.Job,
		Bucket:    "in",
		InputKeys: keys,
		Mode:      mapreduce.Profiled,
	}
	if mut != nil {
		mut(&spec)
	}
	driver := mapreduce.NewDriver(pl)
	err = sched.Run(func(p *simtime.Proc) {
		rep, runErr = driver.Run(p, spec, cfg)
	})
	if err != nil {
		return nil, err
	}
	return rep, runErr
}

// FootnoteOrchestrator reproduces the paper's footnote 1: the coordinator
// lambda versus AWS Step Functions as the reduce-phase orchestrator. The
// paper chose the coordinator because "step function involves state
// transaction cost"; the numbers bear it out.
func FootnoteOrchestrator() (string, error) {
	params := model.DefaultParams(workload.WordCount1GB())
	cfg := mapreduce.Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	t := &table{header: []string{"orchestrator", "JCT", "total cost", "workflow fees"}}
	for _, mode := range []mapreduce.Orchestrator{mapreduce.CoordinatorLambda, mapreduce.StepFunctions} {
		rep, err := executeWithSpec(params, cfg, func(s *mapreduce.JobSpec) { s.Orchestrator = mode })
		if err != nil {
			return "", err
		}
		name := "coordinator lambda (paper)"
		if mode == mapreduce.StepFunctions {
			name = "step functions"
		}
		t.add(name, fmtDur(rep.JCT), fmtUSD(rep.Cost.Total()), fmtUSD(rep.Cost.Workflow))
	}
	return t.String(), nil
}

// EphemeralStorage reproduces the discussion-section point about
// alternative intermediate stores (AWS ElastiCache et al., the
// Pocket/Locus design space): the same job with S3-class versus
// cache-class ephemeral data. The cache tier trades request fees for
// provisioned GB-hours and buys bandwidth — attractive for data-heavy
// Sort, wasteful for aggregations whose intermediates are tiny.
func EphemeralStorage() (string, error) {
	jobs := []workload.Job{
		{Profile: workload.Sort, NumObjects: 50, ObjectSize: 500 << 20},
		workload.WordCount10GB(),
	}
	t := &table{header: []string{"workload", "intermediates", "JCT", "cost", "speedup"}}
	for _, job := range jobs {
		params := model.DefaultParams(job)
		cfg := mapreduce.Config{
			MapperMemMB: 1792, CoordMemMB: 256, ReducerMemMB: 1792,
			ObjsPerMapper: 2, ObjsPerReducer: 2,
		}
		s3rep, err := executeWithSpec(params, cfg, nil)
		if err != nil {
			return "", err
		}
		cache := objectstore.CacheClass()
		cacheRep, err := executeWithSpec(params, cfg, func(s *mapreduce.JobSpec) {
			s.IntermediateClass = &cache
		})
		if err != nil {
			return "", err
		}
		t.add(job.Profile.Name, "object store (paper)", fmtDur(s3rep.JCT), fmtUSD(s3rep.Cost.Total()), "1.00x")
		t.add(job.Profile.Name, "cache tier", fmtDur(cacheRep.JCT), fmtUSD(cacheRep.Cost.Total()),
			fmt.Sprintf("%.2fx", s3rep.JCT.Seconds()/cacheRep.JCT.Seconds()))
	}
	return t.String(), nil
}

// AblationConcurrencyCap measures what happens when the account-level
// concurrency limit (R in constraint 18) binds: a 100-mapper job under
// shrinking caps queues in waves, and the measured JCT diverges from the
// analytic model, which assumes every requested lambda runs immediately.
// The optimizer's Feasible() guard exists precisely to keep plans out of
// this regime.
func AblationConcurrencyCap() (string, error) {
	job := workload.Job{Profile: workload.Sort, NumObjects: 100, ObjectSize: 100 << 20}
	cfg := mapreduce.Config{
		MapperMemMB: 1792, CoordMemMB: 256, ReducerMemMB: 1792,
		ObjsPerMapper: 1, ObjsPerReducer: 4,
	}
	params := model.DefaultParams(job)
	// A light dispatch so the mapper wave genuinely overlaps; otherwise
	// launch serialization caps natural concurrency below the limit.
	params.DispatchLatency = 50 * time.Millisecond
	// The cap-blind prediction assumes every requested lambda starts
	// immediately (the paper model's stance).
	blindParams := params
	blindParams.MaxLambdas = 100000
	blind, err := model.NewExact(blindParams).Predict(cfg)
	if err != nil {
		return "", err
	}
	t := &table{header: []string{
		"concurrency cap", "measured JCT", "peak in use",
		"cap-blind model error", "cap-aware model error",
	}}
	for _, cap := range []int{1000, 50, 25, 10} {
		sheet := pricing.AWS()
		sheet.Lambda.MaxConcurrency = cap
		p := params
		p.Sheet = sheet
		rep, err := executeWithSpec(p, cfg, nil)
		if err != nil {
			return "", err
		}
		aware, err := model.NewExact(p).Predict(cfg)
		if err != nil {
			return "", err
		}
		t.add(fmt.Sprint(cap), fmtDur(rep.JCT), fmt.Sprint(rep.PeakConcurrency),
			fmt.Sprintf("%+.1f%%", 100*(rep.JCT.Seconds()-blind.TotalSec())/blind.TotalSec()),
			fmt.Sprintf("%+.2f%%", 100*(rep.JCT.Seconds()-aware.TotalSec())/aware.TotalSec()))
	}
	return t.String(), nil
}

// PipelineAllocation demonstrates the multi-stage extension: a
// grep-then-wordcount log-analytics pipeline planned under one global
// budget, showing how the budget is allocated across stages (frugal
// lambdas for the scan, fast ones for the aggregation) instead of split
// evenly.
func PipelineAllocation() (string, error) {
	p := pipeline.Pipeline{
		Stages: []pipeline.Stage{
			{Name: "filter", Profile: workload.Grep},
			{Name: "aggregate", Profile: workload.WordCount},
		},
		InputObjects: 20,
		InputBytes:   20 * (128 << 20),
	}
	params := model.DefaultParams(workload.WordCount1GB())
	pl := pipeline.NewPlanner(params)

	fastest, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		return "", err
	}
	cheapest, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinCostUnderDeadline, Deadline: 1e6 * time.Hour})
	if err != nil {
		return "", err
	}
	budget := (fastest.TotalCost + cheapest.TotalCost) / 2
	plan, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: budget})
	if err != nil {
		return "", err
	}
	res, err := pipeline.Execute(params, p, plan)
	if err != nil {
		return "", err
	}

	t := &table{header: []string{"composite", "JCT", "cost"}}
	t.add("fastest", fmtDur(fastest.JCT()), fmtUSD(fastest.TotalCost))
	t.add("cheapest", fmtDur(cheapest.JCT()), fmtUSD(cheapest.TotalCost))
	t.add(fmt.Sprintf("budget %s", fmtUSD(budget)), fmtDur(plan.JCT()), fmtUSD(plan.TotalCost))
	t.add("  measured", fmtDur(res.JCT), fmtUSD(res.Cost.Total()))
	out := t.String() + "\nper-stage allocation under the budget:\n"
	for _, st := range plan.Stages {
		out += fmt.Sprintf("  %-10s %s  (%s, %s)\n",
			st.Stage+":", st.Config, fmtDur(st.Pred.JCT()), fmtUSD(st.Pred.TotalCost()))
	}
	return out, nil
}

// EMRScaling asks where the VM-cluster comparison of Fig. 9 crosses
// over: as the cluster grows, does it ever beat Astra's serverless
// execution on time or cost for the 20 GB WordCount?
func EMRScaling() (string, error) {
	job := workload.WordCount20GB()
	params := model.DefaultParams(job)
	pl := optimizer.New(params)
	pl.Solver = optimizer.Auto
	plan, err := pl.Plan(optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1})
	if err != nil {
		return "", err
	}
	astraRep, err := Execute(params, plan.Config)
	if err != nil {
		return "", err
	}
	t := &table{header: []string{"cluster", "EMR JCT", "EMR cost", "vs astra time", "vs astra cost"}}
	t.add("astra (serverless)", fmtDur(astraRep.JCT), fmtUSD(astraRep.Cost.Total()), "-", "-")
	for _, vms := range []int{3, 6, 12, 24} {
		c := emr.PaperCluster()
		c.VMs = vms
		c.MapSlots = 34 * vms
		c.ReduceSlots = 3 * vms
		res, err := emr.Run(job, c)
		if err != nil {
			return "", err
		}
		t.add(fmt.Sprintf("%d x m3.xlarge", vms), fmtDur(res.JCT), fmtUSD(res.Cost),
			fmt.Sprintf("%.2fx", res.JCT.Seconds()/astraRep.JCT.Seconds()),
			fmt.Sprintf("%.2fx", float64(res.Cost)/float64(astraRep.Cost.Total())))
	}
	return t.String(), nil
}

// Calibration demonstrates the model-refinement loop: each application's
// declared data ratios versus the ratios the profiler measures by
// running the real code over a generated sample.
func Calibration() (string, error) {
	t := &table{header: []string{
		"workload", "declared alpha", "measured alpha", "declared beta", "measured beta",
	}}
	for _, pf := range []workload.Profile{workload.WordCount, workload.Sort, workload.Query, workload.Grep} {
		cal, err := profiler.Calibrate(pf, profiler.Sample{Objects: 8, BytesPerObject: 20_000, Seed: 2026})
		if err != nil {
			return "", fmt.Errorf("%s: %w", pf.Name, err)
		}
		t.add(pf.Name,
			fmt.Sprintf("%.3f", pf.MapOutputRatio),
			fmt.Sprintf("%.3f", cal.MapOutputRatio),
			fmt.Sprintf("%.3f", pf.ReduceOutputRatio),
			fmt.Sprintf("%.3f", cal.ReduceOutputRatio))
	}
	return t.String(), nil
}

// Sensitivity sweeps the two environment constants that most shape the
// optimum — per-connection bandwidth B and the invoke dispatch latency —
// and reports how Astra's unconstrained-fastest plan moves. This is the
// "as Astra sees more types of workloads, the modeling could be
// dynamically adjusted and refined" knob-turning from the discussion
// section, made concrete.
func Sensitivity() (string, error) {
	job := workload.WordCount1GB()
	t := &table{header: []string{"B (MiB/s)", "dispatch", "chosen plan", "predicted JCT"}}
	for _, bMiB := range []float64{40, 80, 160} {
		for _, disp := range []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, time.Second} {
			params := model.DefaultParams(job)
			params.BandwidthBps = bMiB * (1 << 20)
			params.DispatchLatency = disp
			pl := optimizer.New(params)
			pl.Solver = optimizer.Auto
			plan, err := pl.Plan(optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1})
			if err != nil {
				return "", err
			}
			t.add(fmt.Sprintf("%.0f", bMiB), disp.String(),
				plan.Config.String(), fmtDur(plan.Exact.JCT()))
		}
	}
	return t.String(), nil
}

// AblationBillingQuantum compares the post-2020 1 ms billing quantum
// against the legacy 100 ms quantum the paper's experiments ran under:
// jobs of many short lambdas pay visibly more under coarse rounding.
func AblationBillingQuantum() (string, error) {
	job := workload.WordCount1GB()
	cfg := optimizer.Baseline1(job.NumObjects)
	t := &table{header: []string{"billing quantum", "measured cost", "lambda share"}}
	for _, sheet := range []*pricing.Sheet{pricing.AWS(), pricing.AWSLegacyBilling()} {
		params := model.DefaultParams(job)
		params.Sheet = sheet
		rep, err := Execute(params, cfg)
		if err != nil {
			return "", err
		}
		t.add(sheet.Lambda.BillingQuantum.String(),
			fmtUSD(rep.Cost.Total()), fmtUSD(rep.Cost.Lambda))
	}
	return t.String(), nil
}
