package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"astra/internal/lambda"
)

func TestWriteCSV(t *testing.T) {
	tl := FromRecords(sampleRecords())
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // header + 5 lambdas
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][0] != "label" || rows[0][3] != "duration_s" {
		t.Fatalf("header = %v", rows[0])
	}
	// map-0: 0..4s.
	found := false
	for _, r := range rows[1:] {
		if r[0] == "map-0" {
			found = true
			if r[1] != "0.000000" || r[3] != "4.000000" {
				t.Fatalf("map-0 row = %v", r)
			}
		}
	}
	if !found {
		t.Fatal("map-0 missing")
	}
}

func TestWriteJSON(t *testing.T) {
	tl := FromRecords(sampleRecords())
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SpanSec float64 `json:"span_s"`
		Rows    []struct {
			Label    string  `json:"label"`
			StartSec float64 `json:"start_s"`
			EndSec   float64 `json:"end_s"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SpanSec != 14 || len(doc.Rows) != 5 {
		t.Fatalf("doc = %+v", doc)
	}
	for _, r := range doc.Rows {
		if r.EndSec < r.StartSec {
			t.Fatalf("row %q ends before it starts", r.Label)
		}
	}
	if !strings.Contains(buf.String(), "coordinator") {
		t.Fatal("missing coordinator row")
	}
}

// TestWriteCSVExtendedColumns pins the export schema: the historical
// four columns stay first (column-indexed consumers), with mem_mb,
// cold and cost_usd appended.
func TestWriteCSVExtendedColumns(t *testing.T) {
	tl := FromRecords([]lambda.Record{{
		Function: "sort-mapper", Label: "map-0", MemoryMB: 1792, Cold: true,
		Start: 0, End: 2 * time.Second, Cost: 0.000125,
	}})
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []string{"label", "start_s", "end_s", "duration_s", "mem_mb", "cold", "cost_usd"}
	for i, w := range wantHeader {
		if rows[0][i] != w {
			t.Fatalf("header[%d] = %q, want %q (full header %v)", i, rows[0][i], w, rows[0])
		}
	}
	r := rows[1]
	if r[4] != "1792" || r[5] != "true" {
		t.Fatalf("mem/cold = %q/%q, want 1792/true", r[4], r[5])
	}
	cost, err := strconv.ParseFloat(r[6], 64)
	if err != nil || cost != 0.000125 {
		t.Fatalf("cost_usd = %q (%v), want 0.000125", r[6], err)
	}
}

func TestWriteJSONExtendedFields(t *testing.T) {
	tl := FromRecords([]lambda.Record{{
		Function: "sort-mapper", Label: "map-0", MemoryMB: 512, Cold: true,
		Start: 0, End: time.Second, Cost: 0.5,
	}})
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []struct {
			Function string  `json:"function"`
			MemoryMB int     `json:"mem_mb"`
			Cold     bool    `json:"cold"`
			CostUSD  float64 `json:"cost_usd"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	r := doc.Rows[0]
	if r.Function != "sort-mapper" || r.MemoryMB != 512 || !r.Cold || r.CostUSD != 0.5 {
		t.Fatalf("json row = %+v", r)
	}
}

func TestExportEmptyTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := (Timeline{}).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := (Timeline{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
