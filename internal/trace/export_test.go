package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tl := FromRecords(sampleRecords())
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // header + 5 lambdas
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][0] != "label" || rows[0][3] != "duration_s" {
		t.Fatalf("header = %v", rows[0])
	}
	// map-0: 0..4s.
	found := false
	for _, r := range rows[1:] {
		if r[0] == "map-0" {
			found = true
			if r[1] != "0.000000" || r[3] != "4.000000" {
				t.Fatalf("map-0 row = %v", r)
			}
		}
	}
	if !found {
		t.Fatal("map-0 missing")
	}
}

func TestWriteJSON(t *testing.T) {
	tl := FromRecords(sampleRecords())
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SpanSec float64 `json:"span_s"`
		Rows    []struct {
			Label    string  `json:"label"`
			StartSec float64 `json:"start_s"`
			EndSec   float64 `json:"end_s"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SpanSec != 14 || len(doc.Rows) != 5 {
		t.Fatalf("doc = %+v", doc)
	}
	for _, r := range doc.Rows {
		if r.EndSec < r.StartSec {
			t.Fatalf("row %q ends before it starts", r.Label)
		}
	}
	if !strings.Contains(buf.String(), "coordinator") {
		t.Fatal("missing coordinator row")
	}
}

func TestExportEmptyTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := (Timeline{}).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := (Timeline{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
