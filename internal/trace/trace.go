// Package trace renders execution timelines from the platform's
// invocation records — the tool behind the Fig. 3 job decomposition view:
// an ASCII Gantt chart with one row per lambda, grouped into mapper,
// coordinator and reducer-step lanes.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"astra/internal/lambda"
	"astra/internal/pricing"
)

// Row is one lambda's rendered interval, carrying enough of the
// invocation record for cost-annotated exports.
type Row struct {
	Label string
	Start time.Duration
	End   time.Duration
	// Function is the registered function name behind the label.
	Function string
	// MemoryMB is the lambda's memory tier.
	MemoryMB int
	// Cold reports whether the invocation paid a cold start.
	Cold bool
	// Cost is the invocation's billed cost (duration + invocation fee).
	Cost pricing.USD
	// Seq is the record's platform-wide completion sequence number, the
	// final sort tiebreak: it makes row order fully deterministic even if
	// two rows collide on (Start, Label, Function).
	Seq int64
}

// Timeline is an ordered set of rows with a common origin.
type Timeline struct {
	Rows   []Row
	Origin time.Duration // virtual time of the earliest start
	Span   time.Duration
}

// FromRecords builds a timeline from invocation records, normalizing to
// the earliest start.
func FromRecords(records []lambda.Record) Timeline {
	if len(records) == 0 {
		return Timeline{}
	}
	origin := records[0].Start
	var end time.Duration
	for _, r := range records {
		if r.Start < origin {
			origin = r.Start
		}
		if r.End > end {
			end = r.End
		}
	}
	tl := Timeline{Origin: origin, Span: end - origin}
	for _, r := range records {
		label := r.Label
		if label == "" {
			label = r.Function
		}
		tl.Rows = append(tl.Rows, Row{
			Label:    label,
			Start:    r.Start - origin,
			End:      r.End - origin,
			Function: r.Function,
			MemoryMB: r.MemoryMB,
			Cold:     r.Cold,
			Cost:     r.Cost,
			Seq:      r.Seq,
		})
	}
	// Order by (Start, Label, Function, Seq). The Function tiebreak
	// matters when two jobs on one platform reuse a label (e.g. "map-0");
	// Seq — the platform's completion sequence — settles even full
	// collisions, so row order never depends on record interleaving.
	sort.SliceStable(tl.Rows, func(i, j int) bool {
		a, b := tl.Rows[i], tl.Rows[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		return a.Seq < b.Seq
	})
	return tl
}

// Render draws the timeline as an ASCII Gantt chart of the given width
// (in columns for the bar area; labels are padded separately).
func (tl Timeline) Render(width int) string {
	if len(tl.Rows) == 0 {
		return "(empty timeline)\n"
	}
	if width < 10 {
		width = 10
	}
	labelW := 0
	for _, r := range tl.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	span := tl.Span
	if span <= 0 {
		span = time.Nanosecond
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s |%s| total %v\n", labelW, "lambda",
		strings.Repeat("-", width), tl.Span.Round(time.Millisecond))
	for _, r := range tl.Rows {
		startCol := int(float64(r.Start) / float64(span) * float64(width))
		endCol := int(float64(r.End) / float64(span) * float64(width))
		if endCol <= startCol {
			endCol = startCol + 1
		}
		if endCol > width {
			endCol = width
		}
		bar := strings.Repeat(" ", startCol) +
			strings.Repeat("#", endCol-startCol) +
			strings.Repeat(" ", width-endCol)
		fmt.Fprintf(&b, "%-*s |%s| %v..%v\n", labelW, r.Label, bar,
			r.Start.Round(time.Millisecond), r.End.Round(time.Millisecond))
	}
	return b.String()
}

// PhaseSummary aggregates rows by label prefix (text before the first
// '-'), reporting each group's span — a compact Fig. 3 caption.
func (tl Timeline) PhaseSummary() string {
	type agg struct {
		start, end time.Duration
		n          int
	}
	groups := map[string]*agg{}
	var order []string
	for _, r := range tl.Rows {
		key := r.Label
		if i := strings.IndexByte(key, '-'); i > 0 {
			key = key[:i]
		}
		g, ok := groups[key]
		if !ok {
			g = &agg{start: r.Start, end: r.End}
			groups[key] = g
			order = append(order, key)
		}
		if r.Start < g.start {
			g.start = r.Start
		}
		if r.End > g.end {
			g.end = r.End
		}
		g.n++
	}
	var b strings.Builder
	for _, key := range order {
		g := groups[key]
		fmt.Fprintf(&b, "%-12s x%-4d %v .. %v (%v)\n", key, g.n,
			g.start.Round(time.Millisecond), g.end.Round(time.Millisecond),
			(g.end - g.start).Round(time.Millisecond))
	}
	return b.String()
}
