package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV exports the timeline as CSV with one row per lambda. The
// first four columns (label, start_s, end_s, duration_s) keep their
// historical order; the memory tier, cold-start flag and billed cost are
// appended after them so existing column-indexed consumers keep working.
func (tl Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "start_s", "end_s", "duration_s", "mem_mb", "cold", "cost_usd"}); err != nil {
		return err
	}
	for _, r := range tl.Rows {
		rec := []string{
			r.Label,
			fmt.Sprintf("%.6f", r.Start.Seconds()),
			fmt.Sprintf("%.6f", r.End.Seconds()),
			fmt.Sprintf("%.6f", (r.End - r.Start).Seconds()),
			fmt.Sprintf("%d", r.MemoryMB),
			fmt.Sprintf("%t", r.Cold),
			fmt.Sprintf("%.9f", float64(r.Cost)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonRow is the JSON export schema for one lambda.
type jsonRow struct {
	Label     string  `json:"label"`
	StartSec  float64 `json:"start_s"`
	EndSec    float64 `json:"end_s"`
	DurationS float64 `json:"duration_s"`
	Function  string  `json:"function,omitempty"`
	MemoryMB  int     `json:"mem_mb,omitempty"`
	Cold      bool    `json:"cold,omitempty"`
	CostUSD   float64 `json:"cost_usd,omitempty"`
}

// jsonTimeline is the JSON export schema.
type jsonTimeline struct {
	SpanSec float64   `json:"span_s"`
	Rows    []jsonRow `json:"rows"`
}

// WriteJSON exports the timeline as a JSON document suitable for external
// visualization tools.
func (tl Timeline) WriteJSON(w io.Writer) error {
	doc := jsonTimeline{SpanSec: tl.Span.Seconds()}
	for _, r := range tl.Rows {
		doc.Rows = append(doc.Rows, jsonRow{
			Label:     r.Label,
			StartSec:  r.Start.Seconds(),
			EndSec:    r.End.Seconds(),
			DurationS: (r.End - r.Start).Seconds(),
			Function:  r.Function,
			MemoryMB:  r.MemoryMB,
			Cold:      r.Cold,
			CostUSD:   float64(r.Cost),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
