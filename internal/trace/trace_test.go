package trace

import (
	"strings"
	"testing"
	"time"

	"astra/internal/lambda"
)

func sampleRecords() []lambda.Record {
	return []lambda.Record{
		{Function: "f", Label: "map-0", Start: 0, End: 4 * time.Second},
		{Function: "f", Label: "map-1", Start: 0, End: 6 * time.Second},
		{Function: "f", Label: "coordinator", Start: 6 * time.Second, End: 14 * time.Second},
		{Function: "f", Label: "red-0-0", Start: 7 * time.Second, End: 10 * time.Second},
		{Function: "f", Label: "red-1-0", Start: 11 * time.Second, End: 14 * time.Second},
	}
}

func TestFromRecordsNormalizesAndSorts(t *testing.T) {
	recs := sampleRecords()
	// Shift everything by an hour: the timeline must renormalize.
	for i := range recs {
		recs[i].Start += time.Hour
		recs[i].End += time.Hour
	}
	tl := FromRecords(recs)
	if tl.Origin != time.Hour {
		t.Fatalf("origin = %v", tl.Origin)
	}
	if tl.Span != 14*time.Second {
		t.Fatalf("span = %v", tl.Span)
	}
	if tl.Rows[0].Start != 0 {
		t.Fatalf("first row start = %v", tl.Rows[0].Start)
	}
	for i := 1; i < len(tl.Rows); i++ {
		if tl.Rows[i].Start < tl.Rows[i-1].Start {
			t.Fatal("rows not sorted by start")
		}
	}
}

func TestRenderContainsBarsAndLabels(t *testing.T) {
	out := FromRecords(sampleRecords()).Render(40)
	for _, want := range []string{"map-0", "map-1", "coordinator", "red-0-0", "red-1-0", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 6 { // header + 5 rows
		t.Fatalf("%d lines", len(lines))
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	if out := (Timeline{}).Render(40); !strings.Contains(out, "empty") {
		t.Fatalf("empty render = %q", out)
	}
	// Zero-length record should still render a 1-column bar.
	tl := FromRecords([]lambda.Record{{Label: "x", Start: 0, End: 0}})
	if out := tl.Render(20); !strings.Contains(out, "#") {
		t.Fatalf("degenerate render = %q", out)
	}
}

func TestPhaseSummaryGroups(t *testing.T) {
	out := FromRecords(sampleRecords()).PhaseSummary()
	if !strings.Contains(out, "map") || !strings.Contains(out, "coordinator") || !strings.Contains(out, "red") {
		t.Fatalf("summary missing groups:\n%s", out)
	}
	if !strings.Contains(out, "x2") {
		t.Fatalf("mapper group should count 2:\n%s", out)
	}
}

func TestRenderWidthClamp(t *testing.T) {
	out := FromRecords(sampleRecords()).Render(1)
	if out == "" {
		t.Fatal("render with tiny width should still produce output")
	}
}

// TestSortIsDeterministicAcrossLabelCollisions is the regression test
// for the (Start, Label, Function) tiebreak: two jobs sharing one
// platform reuse the label "map-0" at the same start time, and the
// timeline must come out identical however the records are interleaved.
func TestSortIsDeterministicAcrossLabelCollisions(t *testing.T) {
	recs := []lambda.Record{
		{Function: "jobB-mapper", Label: "map-0", Start: 0, End: 3 * time.Second},
		{Function: "jobA-mapper", Label: "map-0", Start: 0, End: 5 * time.Second},
		{Function: "jobA-mapper", Label: "map-1", Start: 0, End: 4 * time.Second},
	}
	want := FromRecords(recs)
	if want.Rows[0].Function != "jobA-mapper" || want.Rows[1].Function != "jobB-mapper" {
		t.Fatalf("colliding labels not ordered by function: %+v", want.Rows)
	}
	// Every permutation of the input must produce the same row order.
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		shuffled := []lambda.Record{recs[p[0]], recs[p[1]], recs[p[2]]}
		got := FromRecords(shuffled)
		for i := range want.Rows {
			if got.Rows[i] != want.Rows[i] {
				t.Fatalf("permutation %v: row %d = %+v, want %+v", p, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

func TestFromRecordsCarriesInvocationDetails(t *testing.T) {
	tl := FromRecords([]lambda.Record{{
		Function: "sort-mapper", Label: "map-0", MemoryMB: 1792, Cold: true,
		Start: 0, End: time.Second, Cost: 0.00123,
	}})
	r := tl.Rows[0]
	if r.Function != "sort-mapper" || r.MemoryMB != 1792 || !r.Cold || r.Cost != 0.00123 {
		t.Fatalf("row missing record details: %+v", r)
	}
}

func TestFallbackLabelIsFunctionName(t *testing.T) {
	tl := FromRecords([]lambda.Record{{Function: "job1-mapper", Start: 0, End: time.Second}})
	if tl.Rows[0].Label != "job1-mapper" {
		t.Fatalf("label = %q", tl.Rows[0].Label)
	}
}
