package lambda

import (
	"errors"
	"math"
	"testing"
	"time"

	"astra/internal/objectstore"
	"astra/internal/pricing"
	"astra/internal/simtime"
)

type world struct {
	sched *simtime.Scheduler
	store *objectstore.Store
	pl    *Platform
}

func newWorld(cfg Config) *world {
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth: 100 << 20, // 100 MiB/s
		Pricing:   pricing.AWS().Store,
	})
	return &world{sched: sched, store: store, pl: New(sched, store, cfg)}
}

func (w *world) run(t *testing.T, body func(p *simtime.Proc)) time.Duration {
	t.Helper()
	if err := w.sched.Run(body); err != nil {
		t.Fatal(err)
	}
	return w.sched.Now()
}

func TestSpeedModelFactor(t *testing.T) {
	m := SpeedModel{RefMemMB: 1024, FloorMemMB: 1792}
	cases := []struct {
		mem  int
		want float64
	}{
		{1024, 1.0},
		{128, 8.0},
		{512, 2.0},
		{2048, 1024.0 / 1792.0}, // flattened at the floor
		{3008, 1024.0 / 1792.0},
		{1792, 1024.0 / 1792.0},
	}
	for _, c := range cases {
		if got := m.Factor(c.mem); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Factor(%d) = %v, want %v", c.mem, got, c.want)
		}
	}
}

func TestSpeedModelNoFloor(t *testing.T) {
	m := SpeedModel{RefMemMB: 1024}
	if got := m.Factor(3008); math.Abs(got-1024.0/3008.0) > 1e-12 {
		t.Fatalf("Factor(3008) without floor = %v", got)
	}
}

func TestWorkScalesWithMemory(t *testing.T) {
	// 8 reference-seconds of work at 128 MB (8x slower than 1024 ref)
	// takes 64 virtual seconds.
	w := newWorld(Config{})
	w.pl.MustRegister("f", 128, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(8)
		return nil, nil
	})
	elapsed := w.run(t, func(p *simtime.Proc) {
		if _, err := w.pl.Invoke(p, "f", nil); err != nil {
			t.Fatal(err)
		}
	})
	if elapsed != 64*time.Second {
		t.Fatalf("elapsed = %v, want 64s", elapsed)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	w := newWorld(Config{})
	w.run(t, func(p *simtime.Proc) {
		_, err := w.pl.Invoke(p, "missing", nil)
		if !errors.Is(err, ErrUnknownFunction) {
			t.Fatalf("err = %v, want ErrUnknownFunction", err)
		}
	})
}

func TestRegisterRejectsInvalidMemory(t *testing.T) {
	w := newWorld(Config{})
	if _, err := w.pl.Register("f", 100, nil); !errors.Is(err, ErrBadMemory) {
		t.Fatalf("err = %v, want ErrBadMemory", err)
	}
	if _, err := w.pl.Register("f", 129, nil); !errors.Is(err, ErrBadMemory) {
		t.Fatalf("err = %v, want ErrBadMemory", err)
	}
}

func TestColdStartAndWarmPool(t *testing.T) {
	w := newWorld(Config{ColdStart: 500 * time.Millisecond, KeepAlive: time.Hour})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(1)
		return nil, nil
	})
	w.run(t, func(p *simtime.Proc) {
		if _, err := w.pl.Invoke(p, "f", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := w.pl.Invoke(p, "f", nil); err != nil {
			t.Fatal(err)
		}
	})
	recs := w.pl.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if !recs[0].Cold {
		t.Fatal("first invocation should be cold")
	}
	if recs[1].Cold {
		t.Fatal("second invocation should reuse the warm container")
	}
	// Cold start is visible on the wall clock but not billed.
	if recs[0].Billed != time.Second {
		t.Fatalf("billed = %v, want 1s (cold start unbilled)", recs[0].Billed)
	}
	if recs[0].Start != 500*time.Millisecond {
		t.Fatalf("handler started at %v, want after the 500ms cold start", recs[0].Start)
	}
}

func TestWarmContainerExpires(t *testing.T) {
	w := newWorld(Config{ColdStart: 500 * time.Millisecond, KeepAlive: time.Second})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) { return nil, nil })
	w.run(t, func(p *simtime.Proc) {
		_, _ = w.pl.Invoke(p, "f", nil)
		p.Sleep(10 * time.Second) // past keep-alive
		_, _ = w.pl.Invoke(p, "f", nil)
	})
	recs := w.pl.Records()
	if !recs[1].Cold {
		t.Fatal("invocation after keep-alive expiry should be cold")
	}
}

func TestConcurrencyLimitBlocks(t *testing.T) {
	sheet := pricing.AWS()
	sheet.Lambda.MaxConcurrency = 2
	w := newWorld(Config{Sheet: sheet})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(1)
		return nil, nil
	})
	elapsed := w.run(t, func(p *simtime.Proc) {
		p.Parallel(6, "inv", func(q *simtime.Proc, i int) {
			if _, err := w.pl.Invoke(q, "f", nil); err != nil {
				t.Error(err)
			}
		})
	})
	// 6 one-second invocations, 2 at a time -> 3 waves -> 3s.
	if elapsed != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", elapsed)
	}
	if w.pl.PeakConcurrency() != 2 {
		t.Fatalf("peak concurrency = %d, want 2", w.pl.PeakConcurrency())
	}
	// Queue wait shows up in the records.
	var queued time.Duration
	for _, r := range w.pl.Records() {
		queued += r.Queued
	}
	if queued != (1+1+2+2)*time.Second {
		t.Fatalf("total queued = %v, want 6s", queued)
	}
}

func TestThrottleErrorModeWithRetries(t *testing.T) {
	sheet := pricing.AWS()
	sheet.Lambda.MaxConcurrency = 1
	w := newWorld(Config{
		Sheet:        sheet,
		Throttle:     ThrottleError,
		MaxRetries:   3,
		RetryBackoff: 300 * time.Millisecond,
	})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(0.5)
		return nil, nil
	})
	var okCount, throttledCount int
	w.run(t, func(p *simtime.Proc) {
		p.Parallel(2, "inv", func(q *simtime.Proc, i int) {
			_, err := w.pl.Invoke(q, "f", nil)
			switch {
			case err == nil:
				okCount++
			case errors.Is(err, ErrThrottled):
				throttledCount++
			default:
				t.Errorf("unexpected error %v", err)
			}
		})
	})
	// Second invocation retries at 300ms and 900ms; the first finishes at
	// 500ms, so a retry lands while capacity is free.
	if okCount != 2 || throttledCount != 0 {
		t.Fatalf("ok = %d, throttled = %d; want both to succeed via retry", okCount, throttledCount)
	}
	if w.pl.Throttles() == 0 {
		t.Fatal("expected at least one recorded throttle")
	}
}

func TestThrottleErrorExhaustsRetries(t *testing.T) {
	sheet := pricing.AWS()
	sheet.Lambda.MaxConcurrency = 1
	w := newWorld(Config{Sheet: sheet, Throttle: ThrottleError, MaxRetries: 1, RetryBackoff: time.Millisecond})
	w.pl.MustRegister("slow", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(100)
		return nil, nil
	})
	var gotThrottled bool
	w.run(t, func(p *simtime.Proc) {
		p.Parallel(2, "inv", func(q *simtime.Proc, i int) {
			if i == 1 {
				q.Sleep(time.Millisecond) // ensure the first invocation holds the slot
			}
			_, err := w.pl.Invoke(q, "slow", nil)
			if errors.Is(err, ErrThrottled) {
				gotThrottled = true
			}
		})
	})
	if !gotThrottled {
		t.Fatal("expected a throttled failure after retries exhausted")
	}
}

func TestTimeoutEnforcedAndBilledAtLimit(t *testing.T) {
	sheet := pricing.AWS()
	sheet.Lambda.Timeout = 2 * time.Second
	w := newWorld(Config{Sheet: sheet})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(10) // way past the 2s timeout
		return nil, nil
	})
	w.run(t, func(p *simtime.Proc) {
		_, err := w.pl.Invoke(p, "f", nil)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	})
	rec := w.pl.Records()[0]
	if rec.Billed != 2*time.Second {
		t.Fatalf("billed = %v, want exactly the 2s timeout", rec.Billed)
	}
	if !errors.Is(rec.Err, ErrTimeout) {
		t.Fatalf("record error = %v", rec.Err)
	}
}

func TestBillingMatchesPricing(t *testing.T) {
	w := newWorld(Config{})
	w.pl.MustRegister("f", 512, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(1) // 2s at 512 MB
		return nil, nil
	})
	w.run(t, func(p *simtime.Proc) {
		if _, err := w.pl.Invoke(p, "f", nil); err != nil {
			t.Fatal(err)
		}
	})
	l := pricing.AWS().Lambda
	want := l.DurationCost(512, 2*time.Second) + l.InvocationCost(1)
	if got := w.pl.Bill(); math.Abs(float64(got-want)) > 1e-15 {
		t.Fatalf("bill = %v, want %v", got, want)
	}
}

func TestHandlerStoreAccessChargesTransfer(t *testing.T) {
	w := newWorld(Config{})
	w.store.Seed("in", "obj", make([]byte, 100<<20)) // 100 MiB at 100 MiB/s = 1s
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		obj, err := ctx.Get("in", "obj")
		if err != nil {
			return nil, err
		}
		if err := ctx.PutProfiled("in", "out", obj.Size/2); err != nil {
			return nil, err
		}
		return nil, nil
	})
	elapsed := w.run(t, func(p *simtime.Proc) {
		if _, err := w.pl.Invoke(p, "f", nil); err != nil {
			t.Fatal(err)
		}
	})
	if elapsed != 1500*time.Millisecond {
		t.Fatalf("elapsed = %v, want 1.5s (1s down + 0.5s up)", elapsed)
	}
}

func TestInvokeAsyncOverlaps(t *testing.T) {
	w := newWorld(Config{})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(5)
		return []byte("done"), nil
	})
	elapsed := w.run(t, func(p *simtime.Proc) {
		a := w.pl.InvokeAsync(p, "f", "a", nil)
		b := w.pl.InvokeAsync(p, "f", "b", nil)
		ra, err := a.Wait(p)
		if err != nil || string(ra) != "done" {
			t.Fatalf("a: %q, %v", ra, err)
		}
		if _, err := b.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
	if elapsed != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s (parallel)", elapsed)
	}
}

func TestRecordLabelsAndPayload(t *testing.T) {
	w := newWorld(Config{})
	w.pl.MustRegister("echo", 1024, func(ctx *Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	w.run(t, func(p *simtime.Proc) {
		resp, err := w.pl.InvokeLabeled(p, "echo", "mapper-3", []byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "ping" {
			t.Fatalf("resp = %q", resp)
		}
	})
	if lbl := w.pl.Records()[0].Label; lbl != "mapper-3" {
		t.Fatalf("label = %q", lbl)
	}
}

func TestTimeoutDuringStoreTransfer(t *testing.T) {
	sheet := pricing.AWS()
	sheet.Lambda.Timeout = time.Second
	w := newWorld(Config{Sheet: sheet})
	w.store.Seed("in", "huge", make([]byte, 500<<20)) // 5s transfer
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		_, err := ctx.Get("in", "huge")
		return nil, err
	})
	w.run(t, func(p *simtime.Proc) {
		_, err := w.pl.Invoke(p, "f", nil)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	})
}

func TestCtxRemaining(t *testing.T) {
	w := newWorld(Config{})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		before := ctx.Remaining()
		ctx.Work(1)
		after := ctx.Remaining()
		if before-after != time.Second {
			t.Errorf("Remaining shrank by %v, want 1s", before-after)
		}
		return nil, nil
	})
	w.run(t, func(p *simtime.Proc) {
		if _, err := w.pl.Invoke(p, "f", nil); err != nil {
			t.Fatal(err)
		}
	})
}
