package lambda

import (
	"errors"
	"fmt"
	"time"

	"astra/internal/simtime"
)

// Errors introduced by fault injection and speculative execution.
var (
	// ErrInjected wraps every fault the chaos injector fabricates; the
	// invocation's elapsed duration is billed, per AWS semantics for
	// crashed functions.
	ErrInjected = errors.New("lambda: injected fault")
	// ErrCanceled is returned by an invocation killed via Platform.Cancel
	// (a speculative loser). The elapsed duration is billed.
	ErrCanceled = errors.New("lambda: invocation canceled")
)

// InvokeRef is the stable identity of one invocation attempt, handed to
// the injector for matching and deterministic probability draws. Attempt
// counts prior dispatches of the same (function, label) pair: 0 is the
// first dispatch of a task, 1 its first retry or speculative backup, and
// so on. Per-identity dispatch order is deterministic even when global
// interleaving is not, which is what makes attempt numbers a sound PRNG
// key.
type InvokeRef struct {
	Function string
	Label    string
	Attempt  int
}

// InvokeFault is the set of effects an injector imposes on one invocation
// attempt. Effects compose: a straggling invocation can also be forced
// cold.
type InvokeFault struct {
	// Rule names the matched rule, for events and error messages.
	Rule string
	// FailBeforeStart rejects the invocation at admission: no handler
	// runs, no duration is billed, only the invocation fee.
	FailBeforeStart bool
	// FailMidFlight kills the handler at its FailAtCall-th platform API
	// call (1-based); if the handler makes fewer calls, it is failed on
	// return. Elapsed duration is billed either way.
	FailMidFlight bool
	FailAtCall    int
	// ForceCold bypasses the warm-container pool for this attempt.
	ForceCold bool
	// Straggle slows the invocation's compute and store transfers by this
	// factor (> 1; 0 or 1 means no straggle).
	Straggle float64
	// Err customizes the injected error message.
	Err string
}

// errFor builds the error an injected failure surfaces.
func (flt InvokeFault) errFor(effect string) error {
	msg := flt.Err
	if msg == "" {
		msg = effect
	}
	if flt.Rule != "" {
		return fmt.Errorf("%w: %s (rule %s)", ErrInjected, msg, flt.Rule)
	}
	return fmt.Errorf("%w: %s", ErrInjected, msg)
}

// Injector decides fault injection for the platform. Implementations must
// be deterministic functions of (identity, virtual time) — never of call
// interleaving — so seeded runs reproduce exactly. internal/chaos provides
// the standard implementation.
type Injector interface {
	// InvokeFault reports the effects to impose on an invocation attempt,
	// and whether any apply.
	InvokeFault(ref InvokeRef, now simtime.Time) (InvokeFault, bool)
	// ThrottleInjected reports whether the attempt should be rejected
	// 429-style at the current instant (throttle windows). The platform
	// re-asks on each of its retries, so a window naturally clears.
	ThrottleInjected(ref InvokeRef, now simtime.Time) bool
}

// SetInjector attaches a fault injector consulted on every invocation
// attempt (nil detaches). An injector that injects nothing leaves the run
// bit-identical to one with no injector attached.
func (pl *Platform) SetInjector(inj Injector) { pl.inj = inj }

// ChaosCounters snapshots the platform-side injected-fault counts.
type ChaosCounters struct {
	// Faults counts invocation attempts that received at least one effect.
	Faults int
	// Per-effect counts. ThrottleRejects counts injected 429s (also
	// included in the platform's Throttles()).
	FailedBeforeStart int
	FailedMidFlight   int
	Straggled         int
	ForcedColdStarts  int
	ThrottleRejects   int
	// Canceled counts invocations killed via Cancel.
	Canceled int
}

// Sub returns the counter deltas c - o, for scoping one run.
func (c ChaosCounters) Sub(o ChaosCounters) ChaosCounters {
	return ChaosCounters{
		Faults:            c.Faults - o.Faults,
		FailedBeforeStart: c.FailedBeforeStart - o.FailedBeforeStart,
		FailedMidFlight:   c.FailedMidFlight - o.FailedMidFlight,
		Straggled:         c.Straggled - o.Straggled,
		ForcedColdStarts:  c.ForcedColdStarts - o.ForcedColdStarts,
		ThrottleRejects:   c.ThrottleRejects - o.ThrottleRejects,
		Canceled:          c.Canceled - o.Canceled,
	}
}

// ChaosCounters reports cumulative injected-fault counts.
func (pl *Platform) ChaosCounters() ChaosCounters { return pl.chaos }

// cancelCell carries a cooperative cancellation request from the driver to
// the handler. The handler observes it at its next platform API call —
// like a real sandbox, a cancelled function dies the next time it would
// make progress, and its elapsed duration stays billed.
type cancelCell struct{ requested bool }

// Cancel requests cancellation of an in-flight asynchronous invocation.
// Completed invocations are unaffected; the cancelled handler is killed at
// its next platform API call with ErrCanceled and billed for its elapsed
// duration (the speculative-execution loser semantics: cancelled but
// billed).
func (pl *Platform) Cancel(iv *Invocation) {
	if iv == nil || iv.cancel == nil || iv.done.IsDone() || iv.cancel.requested {
		return
	}
	iv.cancel.requested = true
	pl.chaos.Canceled++
}

// WaitAny blocks until one of invs completes or timeout elapses, returning
// the lowest index of a completed invocation, or -1 on timeout. A negative
// timeout waits indefinitely. This is the wait-any primitive speculative
// execution races attempts with.
func (pl *Platform) WaitAny(p *simtime.Proc, invs []*Invocation, timeout time.Duration) int {
	for i, iv := range invs {
		if iv.done.IsDone() {
			return i
		}
	}
	if len(invs) == 0 && timeout < 0 {
		return -1
	}
	// One watcher proc per invocation funnels completions into a fresh
	// combined latch (Done is idempotent); a timer event releases it on
	// timeout. The parent parks exactly once, so the scheduler never
	// double-wakes it. Watchers outlive this call harmlessly: they wake
	// when their invocation completes, find the latch released, and exit.
	combined := pl.sched.NewLatch()
	for _, iv := range invs {
		iv := iv
		p.Spawn("waitany", func(q *simtime.Proc) {
			iv.done.Wait(q)
			combined.Done()
		})
	}
	var ev *simtime.Event
	if timeout >= 0 {
		ev = pl.sched.After(timeout, combined.Done)
	}
	combined.Wait(p)
	if ev != nil {
		ev.Cancel()
	}
	for i, iv := range invs {
		if iv.done.IsDone() {
			return i
		}
	}
	return -1
}
