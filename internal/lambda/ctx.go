package lambda

import (
	"time"

	"astra/internal/flight"
	"astra/internal/objectstore"
	"astra/internal/simtime"
)

// Ctx is the execution context handed to a Handler. All platform
// interaction goes through it so the timeout can be enforced at every
// blocking call, the way the real sandbox kills an over-deadline function
// the next time it would make progress.
type Ctx struct {
	platform *Platform
	fn       *Function
	proc     *simtime.Proc
	payload  []byte
	deadline simtime.Time
}

// Payload returns the invocation payload.
func (c *Ctx) Payload() []byte { return c.payload }

// MemoryMB reports the function's memory allocation.
func (c *Ctx) MemoryMB() int { return c.fn.MemoryMB }

// Now reports the current virtual time.
func (c *Ctx) Now() simtime.Time { return c.proc.Now() }

// Remaining reports time left before the deadline (may be negative).
func (c *Ctx) Remaining() time.Duration { return c.deadline - c.proc.Now() }

// checkDeadline panics with ErrTimeout once the deadline has passed. The
// panic unwinds the handler; Platform.runHandler converts it to an error.
func (c *Ctx) checkDeadline() {
	if c.proc.Now() >= c.deadline {
		panic(ErrTimeout)
	}
}

// Work charges refSeconds of compute measured at the platform's reference
// memory tier, scaled by the function's speed factor. This is how handlers
// declare CPU work: d * u_i in the paper's Eq. (3), with u_i realized by
// the speed model.
func (c *Ctx) Work(refSeconds float64) {
	c.checkDeadline()
	if refSeconds <= 0 {
		return
	}
	scaled := refSeconds * c.platform.cfg.Speed.Factor(c.fn.MemoryMB)
	t0 := c.proc.Now()
	c.proc.Sleep(time.Duration(scaled * float64(time.Second)))
	if rec := c.platform.rec; rec != nil {
		rec.Interval(c.proc, flight.KindCompute, t0, c.proc.Now())
	}
	c.checkDeadline()
}

// WorkBytes charges compute for processing n bytes at refSecPerMB
// reference-seconds per MB.
func (c *Ctx) WorkBytes(n int64, refSecPerMB float64) {
	c.Work(float64(n) / (1 << 20) * refSecPerMB)
}

// Get reads an object through the store, charging transfer time.
func (c *Ctx) Get(bucket, key string) (*objectstore.Object, error) {
	c.checkDeadline()
	obj, err := c.platform.store.Get(c.proc, bucket, key)
	c.checkDeadline()
	return obj, err
}

// Put writes concrete bytes through the store.
func (c *Ctx) Put(bucket, key string, data []byte) error {
	c.checkDeadline()
	err := c.platform.store.Put(c.proc, bucket, key, data)
	c.checkDeadline()
	return err
}

// PutProfiled writes a size-only object through the store.
func (c *Ctx) PutProfiled(bucket, key string, size int64) error {
	c.checkDeadline()
	err := c.platform.store.PutProfiled(c.proc, bucket, key, size)
	c.checkDeadline()
	return err
}

// List lists keys with a prefix through the store.
func (c *Ctx) List(bucket, prefix string) ([]string, error) {
	c.checkDeadline()
	keys, err := c.platform.store.List(c.proc, bucket, prefix)
	c.checkDeadline()
	return keys, err
}

// Delete removes an object through the store.
func (c *Ctx) Delete(bucket, key string) error {
	c.checkDeadline()
	err := c.platform.store.Delete(c.proc, bucket, key)
	c.checkDeadline()
	return err
}

// InvokeAsync lets a handler launch another function (the coordinator
// lambda invoking reducers). The child invocation runs concurrently; the
// caller's clock does not advance.
func (c *Ctx) InvokeAsync(name, label string, payload []byte) *Invocation {
	c.checkDeadline()
	return c.platform.InvokeAsync(c.proc, name, label, payload)
}

// Wait blocks the handler until an async invocation completes.
func (c *Ctx) Wait(iv *Invocation) ([]byte, error) {
	c.checkDeadline()
	t0 := c.proc.Now()
	resp, err := iv.Wait(c.proc)
	if rec := c.platform.rec; rec != nil {
		if now := c.proc.Now(); now > t0 {
			rec.Interval(c.proc, flight.KindWait, t0, now)
		}
	}
	c.checkDeadline()
	return resp, err
}
