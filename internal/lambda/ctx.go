package lambda

import (
	"time"

	"astra/internal/flight"
	"astra/internal/objectstore"
	"astra/internal/simtime"
)

// Ctx is the execution context handed to a Handler. All platform
// interaction goes through it so the timeout can be enforced at every
// blocking call, the way the real sandbox kills an over-deadline function
// the next time it would make progress.
type Ctx struct {
	platform *Platform
	fn       *Function
	proc     *simtime.Proc
	payload  []byte
	deadline simtime.Time

	// Fault-injection state (set by the platform from the injector's
	// InvokeFault; all zero on a clean invocation).
	straggle   float64     // >1: compute and transfers run this much slower
	failAtCall int         // kill the handler at its Nth platform API call
	injectErr  error       // the error the kill surfaces
	injectRule string      // rule name, for the chaos event
	cancel     *cancelCell // cooperative cancellation request
	calls      int         // platform API calls made so far
}

// apiCall counts one platform API call and applies cooperative kills: a
// pending cancellation or the injected mid-flight fault fires here, the
// way a real sandbox dies the next time it would make progress.
func (c *Ctx) apiCall() {
	c.calls++
	if c.failAtCall > 0 && c.calls >= c.failAtCall {
		c.failAtCall = 0 // fire once
		pl := c.platform
		pl.chaos.FailedMidFlight++
		if rec := pl.rec; rec != nil {
			rec.Emit(flight.Event{Kind: flight.KindChaosFault, Time: c.proc.Now(),
				Inv: rec.InvocationOf(c.proc), Function: c.fn.Name,
				Name: "fail_mid_flight", Rule: c.injectRule})
		}
		panic(c.injectErr)
	}
}

// stretch applies the straggle factor to the store operation that ran over
// [t0, now]: the invocation's I/O takes Straggle times as long.
func (c *Ctx) stretch(t0 simtime.Time) {
	if c.straggle > 1 {
		if el := c.proc.Now() - t0; el > 0 {
			c.proc.Sleep(time.Duration(float64(el) * (c.straggle - 1)))
		}
	}
}

// Payload returns the invocation payload.
func (c *Ctx) Payload() []byte { return c.payload }

// MemoryMB reports the function's memory allocation.
func (c *Ctx) MemoryMB() int { return c.fn.MemoryMB }

// Now reports the current virtual time.
func (c *Ctx) Now() simtime.Time { return c.proc.Now() }

// Remaining reports time left before the deadline (may be negative).
func (c *Ctx) Remaining() time.Duration { return c.deadline - c.proc.Now() }

// checkDeadline panics with ErrCanceled on a pending cancellation, or
// ErrTimeout once the deadline has passed. The panic unwinds the handler;
// Platform.runHandler converts it to an error.
func (c *Ctx) checkDeadline() {
	if c.cancel != nil && c.cancel.requested {
		panic(ErrCanceled)
	}
	if c.proc.Now() >= c.deadline {
		panic(ErrTimeout)
	}
}

// Work charges refSeconds of compute measured at the platform's reference
// memory tier, scaled by the function's speed factor. This is how handlers
// declare CPU work: d * u_i in the paper's Eq. (3), with u_i realized by
// the speed model.
func (c *Ctx) Work(refSeconds float64) {
	c.checkDeadline()
	c.apiCall()
	if refSeconds <= 0 {
		return
	}
	scaled := refSeconds * c.platform.cfg.Speed.Factor(c.fn.MemoryMB)
	if c.straggle > 1 {
		scaled *= c.straggle
	}
	t0 := c.proc.Now()
	c.proc.Sleep(time.Duration(scaled * float64(time.Second)))
	if rec := c.platform.rec; rec != nil {
		rec.Interval(c.proc, flight.KindCompute, t0, c.proc.Now())
	}
	c.checkDeadline()
}

// WorkBytes charges compute for processing n bytes at refSecPerMB
// reference-seconds per MB.
func (c *Ctx) WorkBytes(n int64, refSecPerMB float64) {
	c.Work(float64(n) / (1 << 20) * refSecPerMB)
}

// Get reads an object through the store, charging transfer time.
func (c *Ctx) Get(bucket, key string) (*objectstore.Object, error) {
	c.checkDeadline()
	c.apiCall()
	t0 := c.proc.Now()
	obj, err := c.platform.store.Get(c.proc, bucket, key)
	c.stretch(t0)
	c.checkDeadline()
	return obj, err
}

// Put writes concrete bytes through the store.
func (c *Ctx) Put(bucket, key string, data []byte) error {
	c.checkDeadline()
	c.apiCall()
	t0 := c.proc.Now()
	err := c.platform.store.Put(c.proc, bucket, key, data)
	c.stretch(t0)
	c.checkDeadline()
	return err
}

// PutProfiled writes a size-only object through the store.
func (c *Ctx) PutProfiled(bucket, key string, size int64) error {
	c.checkDeadline()
	c.apiCall()
	t0 := c.proc.Now()
	err := c.platform.store.PutProfiled(c.proc, bucket, key, size)
	c.stretch(t0)
	c.checkDeadline()
	return err
}

// Copy duplicates an object server-side through the store (no transfer
// through the function; a PUT-class request). Speculative execution uses
// it as the commit step publishing a winner's attempt-suffixed output
// under its final key.
func (c *Ctx) Copy(bucket, src, dst string) error {
	c.checkDeadline()
	c.apiCall()
	t0 := c.proc.Now()
	err := c.platform.store.Copy(c.proc, bucket, src, dst)
	c.stretch(t0)
	c.checkDeadline()
	return err
}

// List lists keys with a prefix through the store.
func (c *Ctx) List(bucket, prefix string) ([]string, error) {
	c.checkDeadline()
	c.apiCall()
	t0 := c.proc.Now()
	keys, err := c.platform.store.List(c.proc, bucket, prefix)
	c.stretch(t0)
	c.checkDeadline()
	return keys, err
}

// Delete removes an object through the store.
func (c *Ctx) Delete(bucket, key string) error {
	c.checkDeadline()
	c.apiCall()
	t0 := c.proc.Now()
	err := c.platform.store.Delete(c.proc, bucket, key)
	c.stretch(t0)
	c.checkDeadline()
	return err
}

// InvokeAsync lets a handler launch another function (the coordinator
// lambda invoking reducers). The child invocation runs concurrently; the
// caller's clock does not advance.
func (c *Ctx) InvokeAsync(name, label string, payload []byte) *Invocation {
	c.checkDeadline()
	c.apiCall()
	return c.platform.InvokeAsync(c.proc, name, label, payload)
}

// Wait blocks the handler until an async invocation completes.
func (c *Ctx) Wait(iv *Invocation) ([]byte, error) {
	c.checkDeadline()
	c.apiCall()
	t0 := c.proc.Now()
	resp, err := iv.Wait(c.proc)
	if rec := c.platform.rec; rec != nil {
		if now := c.proc.Now(); now > t0 {
			rec.Interval(c.proc, flight.KindWait, t0, now)
		}
	}
	c.checkDeadline()
	return resp, err
}

// WaitAny blocks the handler until one of the invocations completes or the
// timeout elapses, returning the lowest completed index or -1 on timeout
// (negative timeout = wait indefinitely). This is the racing primitive for
// speculative backups launched by a coordinator.
func (c *Ctx) WaitAny(invs []*Invocation, timeout time.Duration) int {
	c.checkDeadline()
	c.apiCall()
	t0 := c.proc.Now()
	idx := c.platform.WaitAny(c.proc, invs, timeout)
	if rec := c.platform.rec; rec != nil {
		if now := c.proc.Now(); now > t0 {
			rec.Interval(c.proc, flight.KindWait, t0, now)
		}
	}
	c.checkDeadline()
	return idx
}

// Cancel requests cancellation of an in-flight invocation this handler
// launched (first-finisher-wins losers). The loser is killed at its next
// platform API call and stays billed.
func (c *Ctx) Cancel(iv *Invocation) {
	c.platform.Cancel(iv)
}
