package lambda

import (
	"testing"
	"time"

	"astra/internal/simtime"
)

func TestDispatchLatencySerializesAsyncLaunches(t *testing.T) {
	w := newWorld(Config{DispatchLatency: 100 * time.Millisecond})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(1)
		return nil, nil
	})
	elapsed := w.run(t, func(p *simtime.Proc) {
		var invs []*Invocation
		for i := 0; i < 5; i++ {
			invs = append(invs, w.pl.InvokeAsync(p, "f", "", nil))
		}
		for _, iv := range invs {
			if _, err := iv.Wait(p); err != nil {
				t.Error(err)
			}
		}
	})
	// 5 serialized dispatches (0.5s) + the last lambda's 1s execution.
	if elapsed != 1500*time.Millisecond {
		t.Fatalf("elapsed = %v, want 1.5s", elapsed)
	}
}

func TestDispatchLatencyOnSyncInvoke(t *testing.T) {
	w := newWorld(Config{DispatchLatency: 250 * time.Millisecond})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(1)
		return nil, nil
	})
	elapsed := w.run(t, func(p *simtime.Proc) {
		if _, err := w.pl.Invoke(p, "f", nil); err != nil {
			t.Fatal(err)
		}
	})
	if elapsed != 1250*time.Millisecond {
		t.Fatalf("elapsed = %v, want 1.25s", elapsed)
	}
}

func TestDispatchExcludedFromBilling(t *testing.T) {
	w := newWorld(Config{DispatchLatency: time.Second})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) {
		ctx.Work(0.5)
		return nil, nil
	})
	w.run(t, func(p *simtime.Proc) {
		if _, err := w.pl.Invoke(p, "f", nil); err != nil {
			t.Fatal(err)
		}
	})
	rec := w.pl.Records()[0]
	if rec.Billed != 500*time.Millisecond {
		t.Fatalf("billed = %v; dispatch is client-side and must not be billed", rec.Billed)
	}
	if rec.Start != time.Second {
		t.Fatalf("handler started at %v, want after the 1s dispatch", rec.Start)
	}
}

func TestZeroDispatchIsFree(t *testing.T) {
	w := newWorld(Config{})
	w.pl.MustRegister("f", 1024, func(ctx *Ctx) ([]byte, error) { return nil, nil })
	elapsed := w.run(t, func(p *simtime.Proc) {
		iv := w.pl.InvokeAsync(p, "f", "", nil)
		if _, err := iv.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
	if elapsed != 0 {
		t.Fatalf("elapsed = %v, want 0", elapsed)
	}
}
