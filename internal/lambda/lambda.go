// Package lambda implements the FaaS substitute: a virtual-time serverless
// platform with the semantics the Astra models assume of AWS Lambda.
//
//   - Memory tiers from the price sheet (128-3008 MB in 64 MB steps).
//   - Compute speed proportional to allocated memory, with a configurable
//     flattening point (real Lambda stops adding single-thread speed around
//     1792 MB when the second vCPU arrives — this is what makes memory
//     tiers above ~1.5 GB unattractive in the paper's Fig. 6).
//   - An account-level concurrency limit (1000) enforced FIFO, or
//     optionally as 429-style throttle errors with retries.
//   - Cold starts against a per-function warm-container pool with a
//     keep-alive TTL.
//   - A hard execution timeout (900 s) enforced at every platform API
//     call the handler makes.
//   - Per-invocation billing records: duration rounded up to the billing
//     quantum x allocated GB x GB-second price, plus the invocation fee.
//
// Handlers execute real Go code; only time is virtual. Compute cost is
// declared through Ctx.Work in reference-seconds, which the platform
// scales by the memory-dependent speed factor.
package lambda

import (
	"errors"
	"fmt"
	"time"

	"astra/internal/flight"
	"astra/internal/objectstore"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/telemetry"
)

// Errors returned by the platform.
var (
	ErrTimeout         = errors.New("lambda: function timed out")
	ErrThrottled       = errors.New("lambda: concurrency limit exceeded (429)")
	ErrUnknownFunction = errors.New("lambda: unknown function")
	ErrBadMemory       = errors.New("lambda: invalid memory size")
)

// Handler is user function code. It returns a response payload. Returning
// an error fails the invocation; the duration is still billed.
type Handler func(ctx *Ctx) ([]byte, error)

// SpeedModel maps a memory allocation to a compute speed factor.
type SpeedModel struct {
	// RefMemMB is the tier at which Ctx.Work's reference seconds apply
	// unscaled (workload profiles are calibrated at this tier).
	RefMemMB int
	// FloorMemMB is the allocation beyond which single-thread speed stops
	// improving. Zero disables flattening (pure proportionality).
	FloorMemMB int
}

// Factor reports the multiplier applied to reference compute time at the
// given memory size: <1 is faster than the reference tier.
func (m SpeedModel) Factor(memMB int) float64 {
	ref := m.RefMemMB
	if ref <= 0 {
		ref = 1024
	}
	eff := memMB
	if m.FloorMemMB > 0 && eff > m.FloorMemMB {
		eff = m.FloorMemMB
	}
	if eff <= 0 {
		eff = 1
	}
	return float64(ref) / float64(eff)
}

// ThrottleMode selects the behavior when the concurrency limit is hit.
type ThrottleMode int

const (
	// ThrottleBlock queues invocations FIFO until capacity frees (the
	// behavior of synchronous invokes driven by a patient client).
	ThrottleBlock ThrottleMode = iota
	// ThrottleError fails invocations with ErrThrottled, subject to the
	// retry policy — AWS's 429 behavior.
	ThrottleError
)

// Config parameterizes the platform.
type Config struct {
	Sheet *pricing.Sheet
	Speed SpeedModel
	// ColdStart is the unbilled initialization penalty when no warm
	// container is available.
	ColdStart time.Duration
	// DispatchLatency is the invoke-API round trip paid by the CALLER
	// before each invocation starts. Callers that launch a wave of
	// lambdas in a loop (the driver launching mappers, the coordinator
	// launching reducers) therefore serialize this cost — the mechanism
	// that makes very high degrees of parallelism expensive in practice.
	DispatchLatency time.Duration
	// KeepAlive is how long an idle container stays warm.
	KeepAlive time.Duration
	// Throttle selects queueing vs 429 errors at the concurrency limit.
	Throttle ThrottleMode
	// DisableTimeout lifts the per-function execution deadline. The
	// paper's optimization model (Sec. IV) carries no per-lambda duration
	// constraint, so the large profiled experiments run with this set;
	// realistic deployments keep enforcement on.
	DisableTimeout bool
	// MaxRetries bounds automatic retries for ThrottleError mode.
	MaxRetries int
	// RetryBackoff is the (deterministic, linear) backoff between retries.
	RetryBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.Sheet == nil {
		c.Sheet = pricing.AWS()
	}
	if c.Speed.RefMemMB == 0 {
		c.Speed.RefMemMB = 1024
	}
	if c.Speed.FloorMemMB == 0 {
		c.Speed.FloorMemMB = 1792
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = 10 * time.Minute
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	return c
}

// Function is a registered function: code plus configuration.
type Function struct {
	Name     string
	MemoryMB int
	Timeout  time.Duration
	Handler  Handler

	warm []simtime.Time // expiry times of idle warm containers (FIFO)
}

// Record describes one completed (or failed) invocation.
type Record struct {
	// Seq is a stable, monotonically-assigned completion sequence number
	// (1-based): records append in completion order, so Seq is strictly
	// increasing across Records() and gives exports a deterministic
	// tiebreak beyond (Start, Label, Function).
	Seq      int64
	Function string
	Label    string
	MemoryMB int
	Cold     bool
	Queued   time.Duration // time spent waiting for concurrency
	Start    simtime.Time  // handler start (after cold start)
	End      simtime.Time
	Billed   time.Duration
	Cost     pricing.USD // duration cost + invocation fee
	Err      error
}

// Duration reports the billed-relevant execution duration.
func (r Record) Duration() time.Duration { return r.End - r.Start }

// Platform is the simulated FaaS control plane.
type Platform struct {
	sched *simtime.Scheduler
	store *objectstore.Store
	cfg   Config

	concurrency *simtime.Semaphore
	funcs       map[string]*Function
	records     []Record
	recSeq      int64
	throttles   int
	retries     int
	tel         *telemetry.Registry
	rec         *flight.Recorder

	inj      Injector
	attempts map[string]int // (function \x00 label) -> dispatches so far
	chaos    ChaosCounters
}

// New creates a platform bound to the scheduler and object store.
func New(sched *simtime.Scheduler, store *objectstore.Store, cfg Config) *Platform {
	cfg = cfg.withDefaults()
	return &Platform{
		sched:       sched,
		store:       store,
		cfg:         cfg,
		concurrency: sched.NewSemaphore(cfg.Sheet.Lambda.MaxConcurrency),
		funcs:       make(map[string]*Function),
		attempts:    make(map[string]int),
	}
}

// Sheet exposes the price sheet the platform bills against.
func (pl *Platform) Sheet() *pricing.Sheet { return pl.cfg.Sheet }

// Speed exposes the compute speed model.
func (pl *Platform) Speed() SpeedModel { return pl.cfg.Speed }

// Store exposes the object store functions read and write through.
func (pl *Platform) Store() *objectstore.Store { return pl.store }

// Register installs a function. Memory must be a valid tier and the
// timeout must respect the platform limit.
func (pl *Platform) Register(name string, memMB int, handler Handler) (*Function, error) {
	l := pl.cfg.Sheet.Lambda
	if !l.ValidMemory(memMB) {
		return nil, fmt.Errorf("%w: %d MB", ErrBadMemory, memMB)
	}
	timeout := l.Timeout
	if pl.cfg.DisableTimeout {
		timeout = 10000 * time.Hour
	}
	f := &Function{Name: name, MemoryMB: memMB, Timeout: timeout, Handler: handler}
	pl.funcs[name] = f
	return f, nil
}

// MustRegister is Register for static setup code; it panics on error.
func (pl *Platform) MustRegister(name string, memMB int, handler Handler) *Function {
	f, err := pl.Register(name, memMB, handler)
	if err != nil {
		panic(err)
	}
	return f
}

// Records returns all invocation records so far, in completion order.
func (pl *Platform) Records() []Record { return pl.records }

// Throttles reports how many 429 rejections occurred (ThrottleError mode).
func (pl *Platform) Throttles() int { return pl.throttles }

// Retries reports how many throttled invocations were retried.
func (pl *Platform) Retries() int { return pl.retries }

// SetTelemetry attaches a registry that receives per-invocation counters
// and latency histograms (see telemetry.MLambda*). Telemetry is
// observe-only: the simulation's virtual-time results are identical with
// or without it. A nil registry detaches.
func (pl *Platform) SetTelemetry(reg *telemetry.Registry) { pl.tel = reg }

// SetFlightRecorder attaches a flight recorder that receives every
// invocation lifecycle transition as a structured virtual-time event.
// Like telemetry, recording is observe-only: the simulation's results are
// bit-identical with or without it. A nil recorder detaches.
func (pl *Platform) SetFlightRecorder(rec *flight.Recorder) { pl.rec = rec }

// PeakConcurrency reports the high-water mark of simultaneous executions.
func (pl *Platform) PeakConcurrency() int { return pl.concurrency.PeakInUse() }

// Bill sums the Lambda-side bill: duration costs plus invocation fees for
// every invocation, successful or not.
func (pl *Platform) Bill() pricing.USD {
	var total pricing.USD
	for _, r := range pl.records {
		total += r.Cost
	}
	return total
}

// takeWarm pops a still-warm container for f, expiring stale entries.
func (pl *Platform) takeWarm(f *Function) bool {
	now := pl.sched.Now()
	for len(f.warm) > 0 {
		exp := f.warm[0]
		f.warm = f.warm[1:]
		if exp > now {
			return true
		}
	}
	return false
}

// Invoke runs a registered function synchronously in the calling process,
// returning its response payload. Queueing, cold start, execution and
// billing all happen on the virtual clock.
func (pl *Platform) Invoke(p *simtime.Proc, name string, payload []byte) ([]byte, error) {
	return pl.InvokeLabeled(p, name, "", payload)
}

// InvokeLabeled is Invoke with a label recorded for tracing.
func (pl *Platform) InvokeLabeled(p *simtime.Proc, name, label string, payload []byte) ([]byte, error) {
	dispStart := pl.sched.Now()
	if pl.cfg.DispatchLatency > 0 {
		p.Sleep(pl.cfg.DispatchLatency)
	}
	return pl.invokeDispatched(p, name, label, payload, pl.recordScheduled(p, name, label, dispStart), nil)
}

// recordScheduled allocates an invocation identity and emits the
// scheduled event covering the dispatch round trip. Returns 0 (no
// identity) without a recorder.
func (pl *Platform) recordScheduled(p *simtime.Proc, name, label string, dispStart simtime.Time) int64 {
	rec := pl.rec
	if rec == nil {
		return 0
	}
	inv := rec.NextInvocation()
	rec.Emit(flight.Event{
		Kind: flight.KindInvokeScheduled, Time: pl.sched.Now(), Start: dispStart,
		Inv: inv, By: rec.InvocationOf(p), Function: name, Label: label,
	})
	return inv
}

// chaosEvent records one applied injector effect into the flight recorder.
func (pl *Platform) chaosEvent(inv int64, fn, label, effect, rule string) {
	if rec := pl.rec; rec != nil {
		rec.Emit(flight.Event{Kind: flight.KindChaosFault, Time: pl.sched.Now(),
			Inv: inv, Function: fn, Label: label, Name: effect, Rule: rule})
	}
}

// invokeDispatched runs an invocation whose dispatch latency has already
// been paid by the caller; inv is its flight-recorder identity (0 without
// a recorder) and h the async handle carrying the cancel cell (nil for
// synchronous invokes).
func (pl *Platform) invokeDispatched(p *simtime.Proc, name, label string, payload []byte, inv int64, h *Invocation) ([]byte, error) {
	f, ok := pl.funcs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, name)
	}

	// Consult the fault injector under this attempt's stable identity.
	var flt InvokeFault
	var ref InvokeRef
	if pl.inj != nil {
		ak := name + "\x00" + label
		ref = InvokeRef{Function: name, Label: label, Attempt: pl.attempts[ak]}
		pl.attempts[ak]++
		var faulted bool
		if flt, faulted = pl.inj.InvokeFault(ref, pl.sched.Now()); faulted {
			pl.chaos.Faults++
			pl.tel.Counter(telemetry.MChaosFaults).Inc()
			pl.tel.Counter(telemetry.MChaosLambdaFaults).Inc()
		}
	}

	if flt.FailBeforeStart {
		// Rejected at admission: no sandbox, no duration — only the
		// invocation fee is billed.
		pl.chaos.FailedBeforeStart++
		pl.chaosEvent(inv, f.Name, label, "fail_before_start", flt.Rule)
		err := flt.errFor("failed before start")
		now := pl.sched.Now()
		pl.recSeq++
		record := Record{
			Seq: pl.recSeq, Function: f.Name, Label: label, MemoryMB: f.MemoryMB,
			Start: now, End: now, Cost: pl.cfg.Sheet.Lambda.InvocationCost(1), Err: err,
		}
		pl.records = append(pl.records, record)
		if h != nil {
			h.record = record
		}
		if rec := pl.rec; rec != nil {
			rec.Emit(flight.Event{Kind: flight.KindInvokeError, Time: now, Start: now,
				Inv: inv, Rec: record.Seq, Function: f.Name, Label: label,
				MemoryMB: f.MemoryMB, Err: err.Error()})
		}
		if tel := pl.tel; tel != nil {
			tel.Counter(telemetry.MLambdaInvocations).Inc()
			tel.Counter(telemetry.MLambdaErrors).Inc()
		}
		return nil, err
	}

	// Injected throttle windows reject 429-style regardless of the real
	// concurrency level, subject to the same retry policy as capacity
	// throttles.
	if pl.inj != nil {
		for ta := 0; pl.inj.ThrottleInjected(ref, pl.sched.Now()); ta++ {
			pl.throttles++
			pl.chaos.ThrottleRejects++
			pl.tel.Counter(telemetry.MLambdaThrottles).Inc()
			pl.tel.Counter(telemetry.MChaosThrottleRejects).Inc()
			pl.chaosEvent(inv, f.Name, label, "throttle", "")
			if rec := pl.rec; rec != nil {
				rec.Emit(flight.Event{Kind: flight.KindInvokeThrottled, Time: pl.sched.Now(),
					Inv: inv, Function: f.Name, Label: label})
			}
			if ta >= pl.cfg.MaxRetries {
				return nil, ErrThrottled
			}
			pl.retries++
			pl.tel.Counter(telemetry.MLambdaRetries).Inc()
			if rec := pl.rec; rec != nil {
				rec.Emit(flight.Event{Kind: flight.KindInvokeRetry, Time: pl.sched.Now(),
					Inv: inv, Function: f.Name, Label: label})
			}
			p.Sleep(time.Duration(ta+1) * pl.cfg.RetryBackoff)
		}
	}

	enqueue := pl.sched.Now()
	if pl.cfg.Throttle == ThrottleBlock {
		pl.concurrency.Acquire(p, 1)
	} else {
		acquired := false
		for attempt := 0; attempt <= pl.cfg.MaxRetries; attempt++ {
			if pl.concurrency.TryAcquire(1) {
				acquired = true
				break
			}
			pl.throttles++
			pl.tel.Counter(telemetry.MLambdaThrottles).Inc()
			if rec := pl.rec; rec != nil {
				rec.Emit(flight.Event{Kind: flight.KindInvokeThrottled, Time: pl.sched.Now(),
					Inv: inv, Function: f.Name, Label: label})
			}
			if attempt < pl.cfg.MaxRetries {
				pl.retries++
				pl.tel.Counter(telemetry.MLambdaRetries).Inc()
				if rec := pl.rec; rec != nil {
					rec.Emit(flight.Event{Kind: flight.KindInvokeRetry, Time: pl.sched.Now(),
						Inv: inv, Function: f.Name, Label: label})
				}
				p.Sleep(time.Duration(attempt+1) * pl.cfg.RetryBackoff)
			}
		}
		if !acquired {
			return nil, ErrThrottled
		}
	}
	defer pl.concurrency.Release(1)
	queued := pl.sched.Now() - enqueue
	if queued > 0 {
		if rec := pl.rec; rec != nil {
			rec.Emit(flight.Event{Kind: flight.KindInvokeQueued, Time: enqueue + queued,
				Start: enqueue, Inv: inv, Function: f.Name, Label: label})
		}
	}

	var cold bool
	if flt.ForceCold {
		cold = true
		pl.chaos.ForcedColdStarts++
		pl.tel.Counter(telemetry.MChaosForcedColdStarts).Inc()
		pl.chaosEvent(inv, f.Name, label, "cold_start", flt.Rule)
	} else {
		cold = !pl.takeWarm(f)
	}
	if cold {
		coldFrom := pl.sched.Now()
		if pl.cfg.ColdStart > 0 {
			p.Sleep(pl.cfg.ColdStart)
		}
		if rec := pl.rec; rec != nil {
			rec.Emit(flight.Event{Kind: flight.KindInvokeColdStart, Time: pl.sched.Now(),
				Start: coldFrom, Inv: inv, Function: f.Name, Label: label})
		}
	}

	start := pl.sched.Now()
	ctx := &Ctx{
		platform: pl,
		fn:       f,
		proc:     p,
		payload:  payload,
		deadline: start + f.Timeout,
	}
	if h != nil {
		ctx.cancel = h.cancel
	}
	if flt.Straggle > 1 {
		ctx.straggle = flt.Straggle
		pl.chaos.Straggled++
		pl.tel.Counter(telemetry.MChaosStraggles).Inc()
		pl.chaosEvent(inv, f.Name, label, "straggle", flt.Rule)
	}
	if flt.FailMidFlight {
		ctx.failAtCall = flt.FailAtCall
		if ctx.failAtCall <= 0 {
			ctx.failAtCall = 1
		}
		ctx.injectErr = flt.errFor("killed mid-flight")
		ctx.injectRule = flt.Rule
	}
	if rec := pl.rec; rec != nil {
		rec.Emit(flight.Event{Kind: flight.KindInvokeRunning, Time: start,
			Inv: inv, Function: f.Name, Label: label, MemoryMB: f.MemoryMB, Cold: cold})
		rec.SetScope(p, inv)
	}
	var resp []byte
	var err error
	if ctx.cancel != nil && ctx.cancel.requested {
		// Canceled before the handler started: nothing ran, nothing billed
		// beyond the fee below (end == start).
		err = ErrCanceled
	} else {
		resp, err = pl.runHandler(ctx)
	}
	pl.rec.ClearScope(p)
	if flt.FailMidFlight && err == nil {
		// The handler made fewer platform calls than the injected kill
		// point: fail it on return instead. The full duration is billed.
		resp, err = nil, ctx.injectErr
		pl.chaos.FailedMidFlight++
		pl.chaosEvent(inv, f.Name, label, "fail_mid_flight", flt.Rule)
	}
	end := pl.sched.Now()
	if errors.Is(err, ErrTimeout) {
		// The platform kills the sandbox at the deadline; bill exactly the
		// timeout regardless of how far past it the handler's last
		// blocking call landed.
		end = ctx.deadline
	}

	l := pl.cfg.Sheet.Lambda
	billed := l.BilledDuration(end - start)
	pl.recSeq++
	record := Record{
		Seq:      pl.recSeq,
		Function: f.Name,
		Label:    label,
		MemoryMB: f.MemoryMB,
		Cold:     cold,
		Queued:   queued,
		Start:    start,
		End:      end,
		Billed:   billed,
		Cost:     l.DurationCost(f.MemoryMB, end-start) + l.InvocationCost(1),
		Err:      err,
	}
	pl.records = append(pl.records, record)
	if h != nil {
		h.record = record
	}

	if rec := pl.rec; rec != nil {
		kind := flight.KindInvokeDone
		errMsg := ""
		switch {
		case errors.Is(err, ErrTimeout):
			kind = flight.KindInvokeTimeout
			errMsg = err.Error()
		case errors.Is(err, ErrCanceled):
			kind = flight.KindInvokeCanceled
			errMsg = err.Error()
		case err != nil:
			kind = flight.KindInvokeError
			errMsg = err.Error()
		}
		rec.Emit(flight.Event{Kind: kind, Time: end, Start: start,
			Inv: inv, Rec: record.Seq, Function: f.Name, Label: label,
			MemoryMB: f.MemoryMB, Cold: cold, Err: errMsg})
	}

	if tel := pl.tel; tel != nil {
		tel.Counter(telemetry.MLambdaInvocations).Inc()
		if cold {
			tel.Counter(telemetry.MLambdaColdStarts).Inc()
		}
		switch {
		case errors.Is(err, ErrTimeout):
			tel.Counter(telemetry.MLambdaTimeouts).Inc()
		case errors.Is(err, ErrCanceled):
			// Intentional kills (speculative losers) are not failures;
			// the driver counts them under astra_speculation_*.
		case err != nil:
			tel.Counter(telemetry.MLambdaErrors).Inc()
		}
		tel.Histogram(telemetry.MLambdaDurationSeconds, telemetry.DurationBuckets).Observe((end - start).Seconds())
		tel.Histogram(telemetry.MLambdaQueuedSeconds, telemetry.DurationBuckets).Observe(queued.Seconds())
		tel.Gauge(telemetry.MLambdaConcurrencyPeak).SetMax(int64(pl.concurrency.PeakInUse()))
	}

	// Container returns to the warm pool — unless it was killed by an
	// injected fault or a cancellation, in which case the sandbox is gone.
	if !errors.Is(err, ErrInjected) && !errors.Is(err, ErrCanceled) {
		f.warm = append(f.warm, pl.sched.Now()+pl.cfg.KeepAlive)
	}
	return resp, err
}

// runHandler executes the user handler, converting panics into errors so a
// buggy handler fails one invocation rather than the whole simulation.
func (pl *Platform) runHandler(ctx *Ctx) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				switch {
				case errors.Is(e, ErrTimeout):
					err, resp = ErrTimeout, nil
					return
				case errors.Is(e, ErrCanceled):
					err, resp = ErrCanceled, nil
					return
				case errors.Is(e, ErrInjected):
					err, resp = e, nil
					return
				}
			}
			panic(r) // simulation bugs still abort loudly
		}
	}()
	return ctx.fn.Handler(ctx)
}

// Invocation is a handle to an asynchronous invocation.
type Invocation struct {
	done   *simtime.Latch
	resp   []byte
	err    error
	label  string
	cancel *cancelCell
	record Record
}

// Wait blocks until the invocation completes and returns its result.
func (iv *Invocation) Wait(p *simtime.Proc) ([]byte, error) {
	iv.done.Wait(p)
	return iv.resp, iv.err
}

// Record returns the invocation's billing record (zero until completion).
// Speculative-execution accounting uses it to price losing attempts.
func (iv *Invocation) Record() Record { return iv.record }

// InvokeAsync launches the function in a child process and returns a
// handle. The caller pays the dispatch latency (so loops of InvokeAsync
// serialize dispatch, like real invoke-API loops); the execution itself
// runs concurrently.
func (pl *Platform) InvokeAsync(p *simtime.Proc, name, label string, payload []byte) *Invocation {
	dispStart := pl.sched.Now()
	if pl.cfg.DispatchLatency > 0 {
		p.Sleep(pl.cfg.DispatchLatency)
	}
	inv := pl.recordScheduled(p, name, label, dispStart)
	iv := &Invocation{done: pl.sched.NewLatch(), label: label, cancel: &cancelCell{}}
	p.Spawn("invoke:"+name, func(q *simtime.Proc) {
		iv.resp, iv.err = pl.invokeDispatched(q, name, label, payload, inv, iv)
		iv.done.Done()
	})
	return iv
}
