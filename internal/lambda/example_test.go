package lambda_test

import (
	"fmt"
	"time"

	"astra/internal/lambda"
	"astra/internal/objectstore"
	"astra/internal/pricing"
	"astra/internal/simtime"
)

// A function at 128 MB runs its compute 8x slower than at the 1024 MB
// reference tier, and the bill reflects the measured (virtual) duration.
func ExamplePlatform_Invoke() {
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth: 80 << 20,
		Pricing:   pricing.AWS().Store,
	})
	platform := lambda.New(sched, store, lambda.Config{})
	platform.MustRegister("crunch", 128, func(ctx *lambda.Ctx) ([]byte, error) {
		ctx.Work(1) // one reference-second of compute
		return []byte("done"), nil
	})
	err := sched.Run(func(p *simtime.Proc) {
		resp, err := platform.Invoke(p, "crunch", nil)
		if err != nil {
			panic(err)
		}
		fmt.Println(string(resp))
	})
	if err != nil {
		panic(err)
	}
	rec := platform.Records()[0]
	fmt.Println("ran for", rec.Billed)
	fmt.Println("billed", rec.Cost)
	// Output:
	// done
	// ran for 8s
	// billed $0.000017
}

// Cold starts hit only the first invocation; the warm pool serves the
// second.
func ExamplePlatform_coldStart() {
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth: 80 << 20,
		Pricing:   pricing.AWS().Store,
	})
	platform := lambda.New(sched, store, lambda.Config{
		ColdStart: 250 * time.Millisecond,
		KeepAlive: 10 * time.Minute,
	})
	platform.MustRegister("f", 1024, func(ctx *lambda.Ctx) ([]byte, error) { return nil, nil })
	err := sched.Run(func(p *simtime.Proc) {
		platform.Invoke(p, "f", nil)
		platform.Invoke(p, "f", nil)
	})
	if err != nil {
		panic(err)
	}
	for i, r := range platform.Records() {
		fmt.Printf("invocation %d cold=%v\n", i+1, r.Cold)
	}
	// Output:
	// invocation 1 cold=true
	// invocation 2 cold=false
}
