package pipeline

import (
	"context"
	"testing"
	"time"

	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// logAnalytics is the canonical two-stage pipeline: grep-filter the logs,
// then word-count the matches.
func logAnalytics() Pipeline {
	return Pipeline{
		Stages: []Stage{
			{Name: "filter", Profile: workload.Grep},
			{Name: "aggregate", Profile: workload.WordCount},
		},
		InputObjects: 16,
		InputBytes:   16 * (64 << 20),
	}
}

func templParams() model.Params {
	return model.DefaultParams(workload.WordCount1GB()) // Job is overwritten per stage
}

func TestValidate(t *testing.T) {
	if err := (Pipeline{}).Validate(); err == nil {
		t.Fatal("empty pipeline should fail")
	}
	p := logAnalytics()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.InputObjects = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero input should fail")
	}
	bad := logAnalytics()
	bad.Stages[0].Profile = workload.Profile{Name: "x"}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid profile should fail")
	}
}

func TestOutputOfChainsShapes(t *testing.T) {
	in := stageIO{objects: 16, bytes: 16 << 20}
	cfg := mapreduce.Config{MapperMemMB: 1024, CoordMemMB: 1024, ReducerMemMB: 1024, ObjsPerMapper: 2, ObjsPerReducer: 4}
	out, err := outputOf(workload.Grep, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Grep: 8 mappers, single step, ceil(8/4)=2 reducers -> 2 objects.
	if out.objects != 2 {
		t.Fatalf("out.objects = %d, want 2", out.objects)
	}
	wantBytes := int64(float64(in.bytes) * 0.08 * 1.0)
	if out.bytes != wantBytes {
		t.Fatalf("out.bytes = %d, want %d", out.bytes, wantBytes)
	}
}

func TestPlanUnconstrainedAndExecute(t *testing.T) {
	p := logAnalytics()
	pl := NewPlanner(templParams())
	plan, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 2 {
		t.Fatalf("%d stage plans", len(plan.Stages))
	}
	if plan.TotalSec <= 0 || plan.TotalCost <= 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	// Execute and compare against the prediction.
	res, err := Execute(templParams(), p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("%d stage reports", len(res.Stages))
	}
	rel := (res.JCT.Seconds() - plan.TotalSec) / plan.TotalSec
	if rel < -0.02 || rel > 0.02 {
		t.Fatalf("measured %.2fs vs predicted %.2fs", res.JCT.Seconds(), plan.TotalSec)
	}
	relCost := float64(res.Cost.Total()-plan.TotalCost) / float64(plan.TotalCost)
	if relCost < -0.02 || relCost > 0.02 {
		t.Fatalf("measured cost %v vs predicted %v", res.Cost.Total(), plan.TotalCost)
	}
}

func TestBudgetAllocatedAcrossStages(t *testing.T) {
	p := logAnalytics()
	pl := NewPlanner(templParams())
	free, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinCostUnderDeadline, Deadline: 1e6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.TotalCost >= free.TotalCost {
		t.Fatalf("cheapest composite %v should undercut fastest %v", cheap.TotalCost, free.TotalCost)
	}
	// A budget between the extremes must be honored and interpolate time.
	budget := (free.TotalCost + cheap.TotalCost) / 2
	mid, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if mid.TotalCost > budget {
		t.Fatalf("composite cost %v exceeds budget %v", mid.TotalCost, budget)
	}
	if mid.TotalSec < free.TotalSec-1e-9 {
		t.Fatal("budgeted composite cannot be faster than the unconstrained optimum")
	}
	if mid.TotalSec > cheap.TotalSec+1e-9 {
		t.Fatal("budgeted composite should not be slower than the cheapest plan")
	}
}

func TestDeadlineHonoredEndToEnd(t *testing.T) {
	p := logAnalytics()
	pl := NewPlanner(templParams())
	free, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Duration(free.TotalSec*1.5) * time.Second
	plan, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinCostUnderDeadline, Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(templParams(), p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT > deadline {
		t.Fatalf("measured %v violates the %v deadline", res.JCT, deadline)
	}
}

func TestInfeasibleObjective(t *testing.T) {
	p := logAnalytics()
	pl := NewPlanner(templParams())
	if _, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: pricing.USD(1e-12)}); err == nil {
		t.Fatal("impossible budget should fail")
	}
	if _, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinCostUnderDeadline, Deadline: time.Nanosecond}); err == nil {
		t.Fatal("impossible deadline should fail")
	}
}

func TestThreeStagePipeline(t *testing.T) {
	p := Pipeline{
		Stages: []Stage{
			{Name: "filter", Profile: workload.Grep},
			{Name: "sessionize", Profile: workload.Query},
			{Name: "count", Profile: workload.WordCount},
		},
		InputObjects: 12,
		InputBytes:   12 * (32 << 20),
	}
	pl := NewPlanner(templParams())
	pl.FrontierSize = 10
	plan, err := pl.Plan(p, optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(templParams(), p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("%d stages executed", len(res.Stages))
	}
	rel := (res.JCT.Seconds() - plan.TotalSec) / plan.TotalSec
	if rel < -0.02 || rel > 0.02 {
		t.Fatalf("measured %.2fs vs predicted %.2fs", res.JCT.Seconds(), plan.TotalSec)
	}
}

func TestExecuteRejectsMismatchedPlan(t *testing.T) {
	p := logAnalytics()
	if _, err := Execute(templParams(), p, &Plan{}); err == nil {
		t.Fatal("plan/pipeline stage mismatch should fail")
	}
}

func TestParetoFrontProperties(t *testing.T) {
	p := logAnalytics()
	pl := NewPlanner(templParams())
	front, err := pl.stageFrontier(context.Background(), workload.Grep, stageIO{objects: 16, bytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i, a := range front {
		for j, b := range front {
			if i == j {
				continue
			}
			if b.Pred.TotalSec() <= a.Pred.TotalSec() && b.Pred.TotalCost() <= a.Pred.TotalCost() &&
				(b.Pred.TotalSec() < a.Pred.TotalSec() || b.Pred.TotalCost() < a.Pred.TotalCost()) {
				t.Fatalf("frontier contains dominated candidate %v", a.Config)
			}
		}
	}
	_ = p
}
