// Package pipeline extends Astra from single jobs to multi-stage
// analytics pipelines — the "other data analytics workloads which are
// directly in or convertible to the MapReduce form" of the paper's
// discussion section, and the DAG-of-jobs shape its introduction
// motivates. A pipeline is a chain of MapReduce stages: each stage's
// final objects become the next stage's input.
//
// Planning generalizes the paper's single-job optimization: each stage's
// configuration space is reduced to a Pareto frontier of (time, cost)
// plans with the exact model, frontiers are composed stage by stage with
// dominance pruning (a resource-constrained shortest path over the stage
// chain), and the global budget or deadline selects the best composite —
// so a budget is *allocated* across stages rather than split evenly.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// Stage is one MapReduce phase of the pipeline.
type Stage struct {
	// Name labels the stage in plans and reports.
	Name string
	// Profile supplies the stage's compute density and data ratios.
	Profile workload.Profile
}

// Pipeline is an ordered chain of stages with an external input.
type Pipeline struct {
	Stages []Stage
	// Input describes the first stage's input objects.
	InputObjects int
	InputBytes   int64 // total
}

// Validate reports whether the pipeline is well-formed.
func (pl Pipeline) Validate() error {
	if len(pl.Stages) == 0 {
		return fmt.Errorf("pipeline: no stages")
	}
	if pl.InputObjects <= 0 || pl.InputBytes <= 0 {
		return fmt.Errorf("pipeline: input must be positive")
	}
	for i, st := range pl.Stages {
		if err := st.Profile.Validate(); err != nil {
			return fmt.Errorf("pipeline stage %d (%s): %w", i, st.Name, err)
		}
	}
	return nil
}

// stageJobs derives each stage's workload.Job from the pipeline input:
// stage i+1 consumes stage i's final objects. Object counts follow the
// chosen configurations, so jobs are derived lazily during search from a
// per-stage (inputObjects, inputBytes) pair.
type stageIO struct {
	objects int
	bytes   int64
}

// outputOf computes a stage's output shape under a configuration.
func outputOf(pf workload.Profile, in stageIO, cfg mapreduce.Config) (stageIO, error) {
	orch, err := mapreduce.OrchestrateFor(pf, in.objects, cfg.ObjsPerMapper, cfg.ObjsPerReducer)
	if err != nil {
		return stageIO{}, err
	}
	outObjects := orch.Steps[orch.NumSteps()-1].Reducers()
	outBytes := float64(in.bytes) * pf.MapOutputRatio
	for range orch.Steps {
		outBytes *= pf.ReduceOutputRatio
	}
	if outBytes < 1 {
		outBytes = 1
	}
	return stageIO{objects: outObjects, bytes: int64(outBytes)}, nil
}

// Candidate is one Pareto-optimal stage plan.
type Candidate struct {
	Config mapreduce.Config
	Pred   model.Prediction
	Out    stageIO
}

// StagePlan is the chosen plan for one stage.
type StagePlan struct {
	Stage  string
	Config mapreduce.Config
	Pred   model.Prediction
}

// Plan is the composite pipeline plan.
type Plan struct {
	Stages []StagePlan
	// TotalSec and TotalCost are the predicted end-to-end values.
	TotalSec  float64
	TotalCost pricing.USD
}

// JCT reports the predicted end-to-end completion time.
func (p Plan) JCT() time.Duration { return time.Duration(p.TotalSec * float64(time.Second)) }

// Planner searches composite plans.
type Planner struct {
	// Params template: Job is overwritten per stage; everything else
	// (sheet, bandwidth, latencies, speed) applies pipeline-wide.
	Params model.Params
	// FrontierSize caps each stage's Pareto frontier (default 24); the
	// composite frontier is pruned to FrontierSize^2 at each join.
	FrontierSize int
	// Parallelism bounds the per-stage frontier sweeps' worker pool
	// (0 = all cores, 1 = serial). Plans are identical at every setting.
	Parallelism int
	// Cache memoizes model predictions across every stage sweep. Left
	// nil, a private cache is created on first use, so stages with the
	// same derived parameterization share evaluations.
	Cache *model.PredictionCache
	// Templates, when non-nil, shares frozen stage-DAG builds across
	// sweeps and across planner instances: pipelines with recurring
	// stage shapes (and concurrent tenants planning the same pipeline)
	// build each distinct shape's DAG once.
	Templates *optimizer.TemplateCache
}

// NewPlanner creates a pipeline planner from a parameter template.
func NewPlanner(params model.Params) *Planner { return &Planner{Params: params} }

func (pl *Planner) frontierSize() int {
	if pl.FrontierSize > 0 {
		return pl.FrontierSize
	}
	return 24
}

// cache returns the shared prediction cache, creating one on demand.
func (pl *Planner) cache() *model.PredictionCache {
	if pl.Cache == nil {
		pl.Cache = model.NewPredictionCache()
	}
	return pl.Cache
}

// stageFrontier computes a Pareto frontier of configurations for one
// stage via optimizer.SweepFrontier, annotating each point with the
// stage's output shape for chaining. Every stage sweep shares the
// planner's prediction cache, so repeated stage shapes reuse their
// exact-model evaluations.
func (pl *Planner) stageFrontier(ctx context.Context, pf workload.Profile, in stageIO) ([]Candidate, error) {
	params := pl.Params
	params.Job = workload.Job{
		Profile:    pf,
		NumObjects: in.objects,
		ObjectSize: maxInt64(in.bytes/int64(in.objects), 1),
	}
	res, err := optimizer.SweepFrontier(ctx, optimizer.FrontierSpec{
		Params:      params,
		Size:        pl.frontierSize(),
		Parallelism: pl.Parallelism,
		Cache:       pl.cache(),
		Templates:   pl.Templates,
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage profile %q: %w", pf.Name, err)
	}
	var front []Candidate
	for _, pt := range res.Points {
		out, err := outputOf(pf, in, pt.Config)
		if err != nil {
			continue
		}
		front = append(front, Candidate{Config: pt.Config, Pred: pt.Pred, Out: out})
	}
	if len(front) == 0 {
		return nil, fmt.Errorf("pipeline: no feasible configuration for stage profile %q", pf.Name)
	}
	return front, nil
}

// composite is a partial pipeline plan during the stage-chain search.
type composite struct {
	stages []StagePlan
	sec    float64
	cost   float64
	out    stageIO
}

// Plan searches the composite space under a global objective; it is
// PlanContext with a background context.
func (pl *Planner) Plan(p Pipeline, obj optimizer.Objective) (*Plan, error) {
	return pl.PlanContext(context.Background(), p, obj)
}

// PlanContext searches the composite space under a global objective,
// honoring cancellation on ctx. Because later stages' inputs depend on
// earlier stages' configurations, the search walks the chain keeping a
// Pareto set of composites (label correcting over the stage DAG).
func (pl *Planner) PlanContext(ctx context.Context, p Pipeline, obj optimizer.Objective) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	frontier := []composite{{out: stageIO{objects: p.InputObjects, bytes: p.InputBytes}}}
	for _, st := range p.Stages {
		// Group current composites by their output shape so each distinct
		// stage input computes its candidate frontier once.
		type key struct {
			objects int
			bytes   int64
		}
		cache := map[key][]Candidate{}
		var next []composite
		for _, comp := range frontier {
			k := key{comp.out.objects, comp.out.bytes}
			cands, ok := cache[k]
			if !ok {
				var err error
				cands, err = pl.stageFrontier(ctx, st.Profile, comp.out)
				if err != nil {
					return nil, fmt.Errorf("stage %q: %w", st.Name, err)
				}
				cache[k] = cands
			}
			for _, c := range cands {
				next = append(next, composite{
					stages: append(append([]StagePlan{}, comp.stages...), StagePlan{
						Stage:  st.Name,
						Config: c.Config,
						Pred:   c.Pred,
					}),
					sec:  comp.sec + c.Pred.TotalSec(),
					cost: comp.cost + float64(c.Pred.TotalCost()),
					out:  c.Out,
				})
			}
		}
		frontier = pruneComposites(next, pl.frontierSize()*pl.frontierSize())
		if len(frontier) == 0 {
			return nil, optimizer.ErrNoFeasiblePlan
		}
	}

	best, found := composite{}, false
	for _, comp := range frontier {
		switch obj.Goal {
		case optimizer.MinTimeUnderBudget:
			if comp.cost <= float64(obj.Budget) && (!found || comp.sec < best.sec) {
				best, found = comp, true
			}
		case optimizer.MinCostUnderDeadline:
			if comp.sec <= obj.Deadline.Seconds() && (!found || comp.cost < best.cost) {
				best, found = comp, true
			}
		}
	}
	if !found {
		return nil, optimizer.ErrNoFeasiblePlan
	}
	return &Plan{
		Stages:    best.stages,
		TotalSec:  best.sec,
		TotalCost: pricing.USD(best.cost),
	}, nil
}

// pruneComposites keeps the Pareto front of composites (by sec, cost),
// capped at limit entries (keeping a time-ordered spread if over).
func pruneComposites(comps []composite, limit int) []composite {
	var front []composite
	for i, c := range comps {
		dominated := false
		for j, o := range comps {
			if i == j {
				continue
			}
			if o.sec <= c.sec && o.cost <= c.cost && (o.sec < c.sec || o.cost < c.cost) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	if len(front) <= limit {
		return front
	}
	// Keep an even spread along the time axis.
	sortBySec(front)
	kept := make([]composite, 0, limit)
	step := float64(len(front)-1) / float64(limit-1)
	prev := -1
	for i := 0; i < limit; i++ {
		idx := int(float64(i) * step)
		if idx == prev {
			continue
		}
		prev = idx
		kept = append(kept, front[idx])
	}
	return kept
}

func sortBySec(cs []composite) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].sec < cs[j-1].sec; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
